// The shards×lanes parity grid: the generation shard count and the
// serve lane count are both pure throughput knobs — the served WMS log
// must be byte-identical (same md5) at every combination, including
// through the fused ShardedStream dispatcher intake that skips the
// event-at-a-time merge. This is the acceptance test for the ring-seam
// generation front half.
package repro

import (
	"crypto/md5"
	"fmt"
	"testing"

	"repro/internal/gismo"
	"repro/internal/simulate"
	"repro/internal/wmslog"
)

// gridModel is the 110k-transfer bench fixture (benchStreamModel's
// shape, reachable from a *testing.T).
func gridModel(t *testing.T) gismo.Model {
	t.Helper()
	m, err := gismo.Scaled(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.BaseArrivalRate *= 60
	return m
}

func TestStreamShardLaneGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full shards×lanes md5 parity grid")
	}
	m := gridModel(t)
	cfg := simulate.DefaultConfig()
	const seed = benchSeed

	serveMD5 := func(shards int, run func(ws *gismo.WorkloadStream, sinks simulate.StreamSinks) (*simulate.StreamResult, error)) ([md5.Size]byte, *simulate.StreamResult) {
		t.Helper()
		ws, err := gismo.NewStream(m, seed, shards)
		if err != nil {
			t.Fatal(err)
		}
		defer ws.Close()
		h := md5.New()
		lw := wmslog.NewWriter(h)
		res, err := run(ws, simulate.StreamSinks{Entry: lw.Write})
		if err != nil {
			t.Fatal(err)
		}
		if err := lw.Flush(); err != nil {
			t.Fatal(err)
		}
		var sum [md5.Size]byte
		h.Sum(sum[:0])
		return sum, res
	}

	baseSum, baseRes := serveMD5(1, func(ws *gismo.WorkloadStream, sinks simulate.StreamSinks) (*simulate.StreamResult, error) {
		return simulate.RunStream(ws, ws.Population(), m.Horizon, cfg, seed, sinks)
	})
	if baseRes.Transfers < 100_000 {
		t.Fatalf("fixture too small for the grid to mean anything: %d transfers", baseRes.Transfers)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		for _, lanes := range []int{1, 2, 4, 8} {
			key := fmt.Sprintf("shards=%d/lanes=%d", shards, lanes)
			lanes := lanes
			sum, res := serveMD5(shards, func(ws *gismo.WorkloadStream, sinks simulate.StreamSinks) (*simulate.StreamResult, error) {
				return simulate.RunStreamSharded(ws, ws.Population(), m.Horizon, cfg, seed, lanes, sinks)
			})
			if sum != baseSum {
				t.Errorf("%s: served log md5 differs from sequential", key)
			}
			if *res != *baseRes {
				t.Errorf("%s: result %+v differs from sequential %+v", key, *res, *baseRes)
			}
		}
	}
}
