# Streaming-pipeline build/test/bench entry points.

GO ?= go
BIN ?= bin

.PHONY: build test race bench bench-gate e2e profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the streaming-pipeline benchmarks (sequential vs sharded
# generation, streamed serving) and renders BENCH_streaming.json —
# ns/op and bytes/op per benchmark — seeding the perf trajectory.
# The bench output is written to a file first so a failing `go test`
# fails the target instead of being masked by a pipe.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkStreaming' -benchmem -count 1 . > bench_streaming.txt
	cat bench_streaming.txt
	$(GO) run ./cmd/benchjson < bench_streaming.txt > BENCH_streaming.json
	@rm -f bench_streaming.txt
	@echo "wrote BENCH_streaming.json"

# bench-gate is the CI perf gate: run the benchmarks fresh, write the
# result to BENCH_fresh.json (uploaded as an artifact), and fail if any
# benchmark's ns/op regressed more than 25% against the committed
# BENCH_streaming.json baseline. Three runs per benchmark; the compare
# gates on each benchmark's best run, damping shared-runner noise.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkStreaming' -benchmem -count 3 . > bench_streaming.txt
	cat bench_streaming.txt
	$(GO) run ./cmd/benchjson < bench_streaming.txt > BENCH_fresh.json
	$(GO) run ./cmd/benchjson -compare BENCH_streaming.json -threshold 0.25 < bench_streaming.txt
	@rm -f bench_streaming.txt

# e2e exercises the full socket path: build lsmserve and lsmload, start
# the server, replay a generated workload (with a flash-crowd scenario)
# over real TCP in compressed time, shut the server down, and verify the
# served log matches the offered workload exactly.
e2e:
	$(GO) build -o $(BIN)/lsmserve ./cmd/lsmserve
	$(GO) build -o $(BIN)/lsmload ./cmd/lsmload
	BIN=$(BIN) ./scripts/e2e.sh

# profile captures pprof/trace artifacts from a representative
# streaming run (the generate → simulate → log pipeline at bench-like
# density) under profiles/. Inspect with `go tool pprof
# profiles/cpu.pprof` / `go tool trace profiles/trace.out`; CI uploads
# the directory on demand (workflow_dispatch with profile=true).
PROFILE_ARGS ?= -stream -scale 5 -days 7 -seed 1
profile:
	$(GO) build -o $(BIN)/lsmgen ./cmd/lsmgen
	mkdir -p profiles
	rm -rf profiles/logs
	$(BIN)/lsmgen -out profiles/logs $(PROFILE_ARGS) \
		-cpuprofile profiles/cpu.pprof \
		-memprofile profiles/mem.pprof \
		-trace profiles/trace.out
	@ls -l profiles/
