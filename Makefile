# Streaming-pipeline build/test/bench entry points.

GO ?= go
BIN ?= bin

.PHONY: verify build lint test race bench bench-gate bench-history fuzz e2e e2e-fleet e2e-twin profile

# Extra flags for the e2e binaries (CI passes E2E_BUILDFLAGS=-race to
# run the socket smokes under the race detector).
E2E_BUILDFLAGS ?=

# verify is the default local gate: compile, contract-lint, test.
verify: build lint test

build:
	$(GO) build ./...

# lint runs lsmvet, the repo's contract checker (DESIGN.md "Enforced
# invariants"): determinism, hotpath allocations, entry retention, and
# seed-lane uniqueness, with //lsm: directives for audited exceptions.
lint:
	$(GO) run ./cmd/lsmvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# BENCH_MATRIX selects the benchmarks that run the -cpu 1,2,4,8
# matrix: the parallel serve path, sharded generation (plus its
# sequential baseline, which speedup_vs_sequential divides by at the
# same GOMAXPROCS), and the fused end-to-end RunStreamed pipeline.
BENCH_MATRIX := BenchmarkStreamingServe|BenchmarkStreamingGenerate(Sequential|Shards)|BenchmarkRunStreamed

# bench runs the streaming-pipeline benchmarks (sequential vs sharded
# generation, streamed serving) and renders BENCH_streaming.json —
# ns/op and bytes/op per benchmark — seeding the perf trajectory. The
# serve, generate, and end-to-end benchmarks additionally run a -cpu
# 1,2,4,8 matrix so each parallel path's scaling
# (metrics.speedup_vs_sequential, computed per GOMAXPROCS against its
# sequential baseline) is part of the record.
# The bench output is written to a file first so a failing `go test`
# fails the target instead of being masked by a pipe; every failing
# step deletes the intermediate so a rerun never ingests stale output,
# and the committed baseline is replaced atomically (write to .tmp,
# then mv) so a failed render cannot truncate it.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkStreaming' -benchmem -count 1 . > bench_streaming.txt || { rm -f bench_streaming.txt; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH_MATRIX)' -benchmem -count 1 -cpu 1,2,4,8 . >> bench_streaming.txt || { rm -f bench_streaming.txt; exit 1; }
	cat bench_streaming.txt
	$(GO) run ./cmd/benchjson < bench_streaming.txt > BENCH_streaming.json.tmp || { rm -f bench_streaming.txt BENCH_streaming.json.tmp; exit 1; }
	mv BENCH_streaming.json.tmp BENCH_streaming.json
	@rm -f bench_streaming.txt
	@echo "wrote BENCH_streaming.json"

# bench-gate is the CI perf gate: run the benchmarks fresh (including
# the -cpu matrix), write the result to bench_fresh.json (uploaded as
# an artifact; lowercase so it can never be mistaken for a committed
# BENCH_*.json baseline), and fail if any benchmark variant's ns/op
# regressed more than 25% — or its speedup_vs_sequential dropped more
# than 15% — against the committed BENCH_streaming.json baseline. The
# gate first refuses to run unless BENCH_streaming.json is the one and
# only BENCH_*.json in the repo root, so it can never silently compare
# against a stray duplicate baseline. On a runner with fewer than 4
# cores the multi-core variants and the speedup metric are skipped
# with a visible warning instead of gated. Three runs per benchmark;
# the compare gates on each variant's best run, damping shared-runner
# noise. The comparison table (pass or fail) is kept in
# bench_compare.txt so CI can publish it to the job's step summary.
bench-gate:
	@baselines="$$(ls BENCH_*.json 2>/dev/null)"; \
	    if [ "$$baselines" != "BENCH_streaming.json" ]; then \
	        echo "bench-gate: expected exactly one baseline (BENCH_streaming.json), found:" >&2; \
	        echo "$${baselines:-  (none)}" >&2; \
	        exit 1; \
	    fi
	$(GO) test -run '^$$' -bench 'BenchmarkStreaming' -benchmem -count 3 . > bench_streaming.txt || { rm -f bench_streaming.txt; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH_MATRIX)' -benchmem -count 3 -cpu 1,2,4,8 . >> bench_streaming.txt || { rm -f bench_streaming.txt; exit 1; }
	cat bench_streaming.txt
	$(GO) run ./cmd/benchjson < bench_streaming.txt > bench_fresh.json || { rm -f bench_streaming.txt; exit 1; }
	$(GO) run ./cmd/benchjson -compare BENCH_streaming.json -threshold 0.25 -min-cores 4 < bench_streaming.txt > bench_compare.txt 2>&1; \
	    status=$$?; cat bench_compare.txt; rm -f bench_streaming.txt; exit $$status

# bench-history renders the perf trajectory of the committed baseline
# (every BENCH_streaming.json revision in git, oldest → newest) as a
# markdown trend table; CI appends it to the bench-gate step summary.
bench-history:
	$(GO) run ./cmd/benchjson -history BENCH_streaming.json

# fuzz runs the wmslog codec fuzzers: the text AppendEntry/ParseAppend
# round trip and the framed-binary round trip. `go test` runs one fuzz
# target per invocation, hence the two steps; new failing inputs are
# minimized into internal/wmslog/testdata/fuzz/ and reproduce with a
# plain `go test ./internal/wmslog`.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzAppendEntryRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/wmslog
	$(GO) test -run '^$$' -fuzz '^FuzzBinaryRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/wmslog

# e2e exercises the full socket path: build lsmserve, lsmload and
# lsmlog, start the server, replay a generated workload (with a
# flash-crowd scenario) over real TCP in compressed time, shut the
# server down, verify the served log matches the offered workload
# exactly, and round-trip the log through the binary format.
e2e:
	$(GO) build $(E2E_BUILDFLAGS) -o $(BIN)/lsmserve ./cmd/lsmserve
	$(GO) build $(E2E_BUILDFLAGS) -o $(BIN)/lsmload ./cmd/lsmload
	$(GO) build $(E2E_BUILDFLAGS) -o $(BIN)/lsmlog ./cmd/lsmlog
	BIN=$(BIN) ./scripts/e2e.sh

# e2e-twin exercises the calibration loop: generate a workload, fit a
# model to its characterization, regenerate a twin and KS-validate it
# strictly, then feed the fitted spec back through lsmgen and check the
# spec round-trips byte-identically.
e2e-twin:
	$(GO) build $(E2E_BUILDFLAGS) -o $(BIN)/lsmgen ./cmd/lsmgen
	$(GO) build $(E2E_BUILDFLAGS) -o $(BIN)/lsmcal ./cmd/lsmcal
	BIN=$(BIN) ./scripts/e2e_twin.sh

# e2e-fleet exercises the horizontal axis: three lsmserve nodes behind
# the lsmfleet redirector serve a replayed flash-crowd workload (hash
# policy, merged-log MATCH, md5 parity with a single-node serve), then
# a second pass SIGKILLs a node mid-replay and validates failover.
e2e-fleet:
	$(GO) build $(E2E_BUILDFLAGS) -o $(BIN)/lsmserve ./cmd/lsmserve
	$(GO) build $(E2E_BUILDFLAGS) -o $(BIN)/lsmload ./cmd/lsmload
	$(GO) build $(E2E_BUILDFLAGS) -o $(BIN)/lsmfleet ./cmd/lsmfleet
	BIN=$(BIN) ./scripts/e2e_fleet.sh

# profile captures pprof/trace artifacts from a representative
# streaming run (the generate → simulate → log pipeline at bench-like
# density) under profiles/. Inspect with `go tool pprof
# profiles/cpu.pprof` / `go tool trace profiles/trace.out`; CI uploads
# the directory on demand (workflow_dispatch with profile=true).
PROFILE_ARGS ?= -stream -scale 5 -days 7 -seed 1
profile:
	$(GO) build -o $(BIN)/lsmgen ./cmd/lsmgen
	mkdir -p profiles
	rm -rf profiles/logs
	$(BIN)/lsmgen -out profiles/logs $(PROFILE_ARGS) \
		-cpuprofile profiles/cpu.pprof \
		-memprofile profiles/mem.pprof \
		-trace profiles/trace.out
	@ls -l profiles/
