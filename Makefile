# Streaming-pipeline build/test/bench entry points.

GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the streaming-pipeline benchmarks (sequential vs sharded
# generation, streamed serving) and renders BENCH_streaming.json —
# ns/op and bytes/op per benchmark — seeding the perf trajectory.
# The bench output is written to a file first so a failing `go test`
# fails the target instead of being masked by a pipe.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkStreaming' -benchmem -count 1 . > bench_streaming.txt
	cat bench_streaming.txt
	$(GO) run ./cmd/benchjson < bench_streaming.txt > BENCH_streaming.json
	@rm -f bench_streaming.txt
	@echo "wrote BENCH_streaming.json"
