package repro

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gismo"
	"repro/internal/sessions"
	"repro/internal/simulate"
	"repro/internal/trace"
	"repro/internal/wmslog"
)

// TestEndToEndDiskRoundTrip drives the entire system the way the paper's
// measurement pipeline ran: generate → serve → write daily log files to
// disk → parse them back → sanitize → characterize, and checks that the
// disk round trip is lossless with respect to every statistic the
// characterization consumes.
func TestEndToEndDiskRoundTrip(t *testing.T) {
	m, err := gismo.Scaled(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	w, err := gismo.Generate(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulate.DefaultConfig()
	cfg.SpanningPerMillion = 10000 // 1%
	res, err := simulate.Run(w, cfg, rng.Uint64())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	files, err := res.WriteLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Three trace days; a transfer ending exactly at the horizon
	// (midnight) is timestamped into a fourth calendar day.
	if len(files) < 3 || len(files) > 4 {
		t.Fatalf("daily files = %d, want 3-4", len(files))
	}
	for _, f := range files {
		if filepath.Ext(f) != ".log" {
			t.Fatalf("unexpected file %s", f)
		}
	}

	entries, st, err := wmslog.ReadFiles(files, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Malformed != 0 {
		t.Fatalf("malformed lines on round trip: %d", st.Malformed)
	}
	if len(entries) != len(res.Entries) {
		t.Fatalf("entries: wrote %d, read %d", len(res.Entries), len(entries))
	}

	tr, err := trace.FromEntries(entries, cfg.Epoch, m.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	clean, report := tr.Sanitize()
	if report.DroppedSpanning != res.Injected {
		t.Errorf("sanitize dropped %d spanning, injected %d", report.DroppedSpanning, res.Injected)
	}

	// The disk-round-tripped trace must match the simulator's in-memory
	// trace on every aggregate the characterization uses.
	mem := res.Trace
	if clean.NumTransfers() != mem.NumTransfers() {
		t.Errorf("transfers: %d vs %d", clean.NumTransfers(), mem.NumTransfers())
	}
	if clean.NumClients() != mem.NumClients() {
		t.Errorf("clients: %d vs %d", clean.NumClients(), mem.NumClients())
	}
	if clean.TotalBytes() != mem.TotalBytes() {
		t.Errorf("bytes: %d vs %d", clean.TotalBytes(), mem.TotalBytes())
	}
	if clean.DistinctAS() != mem.DistinctAS() {
		t.Errorf("ASes: %d vs %d", clean.DistinctAS(), mem.DistinctAS())
	}
	if clean.DistinctIPs() != mem.DistinctIPs() {
		t.Errorf("IPs: %d vs %d", clean.DistinctIPs(), mem.DistinctIPs())
	}

	// Session structure identical under the same timeout.
	setA, err := sessions.Sessionize(clean, 1500)
	if err != nil {
		t.Fatal(err)
	}
	setB, err := sessions.Sessionize(mem, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if setA.Count() != setB.Count() {
		t.Errorf("sessions: %d vs %d", setA.Count(), setB.Count())
	}

	// And the characterization runs clean on the round-tripped trace.
	char, err := core.Characterize(clean, 1500, []int64{500, 1500, 3000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if char.Basic.Objects != 2 {
		t.Errorf("objects = %d", char.Basic.Objects)
	}
}

// TestSeededRunsFullyReproducible checks that two complete pipeline runs
// under the same seed agree transfer-by-transfer (the determinism
// guarantee DESIGN.md promises).
func TestSeededRunsFullyReproducible(t *testing.T) {
	run := func() *trace.Trace {
		m, err := gismo.Scaled(800, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(123))
		w, err := gismo.Generate(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := simulate.Run(w, simulate.DefaultConfig(), rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	a, b := run(), run()
	if a.NumTransfers() != b.NumTransfers() {
		t.Fatalf("transfer counts differ: %d vs %d", a.NumTransfers(), b.NumTransfers())
	}
	for i := range a.Transfers {
		if a.Transfers[i] != b.Transfers[i] {
			t.Fatalf("transfer %d differs:\n%+v\n%+v", i, a.Transfers[i], b.Transfers[i])
		}
	}
}
