// Quickstart: generate a laptop-scale live streaming workload with the
// paper's Table 2 parameters, run the full hierarchical characterization,
// and print the headline fits next to the values Veloso et al. (IMC 2002)
// report.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	// 1/100 of the paper's population and arrival rate over 7 of its 28
	// days: a few seconds of compute, same distributional structure.
	cfg, err := core.DefaultConfig(100, 7, 1)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== A Hierarchical Characterization of a Live Streaming Media Workload ==")
	fmt.Println("   (synthetic reproduction; see DESIGN.md for the substitution record)")
	fmt.Println()
	if err := rep.Table1().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	c := rep.Char
	fmt.Println("\nThe paper's headline structure, recovered from the synthetic trace:")
	fmt.Printf("  object-driven access: %d clients share %d live objects\n",
		c.Basic.Users, c.Basic.Objects)
	fmt.Printf("  client interest is Zipf-like:   %s\n", c.Client.InterestSessions)
	fmt.Printf("  session ON times are lognormal: %s\n", c.Session.OnFit)
	fmt.Printf("  session OFF times exponential:  %s\n", c.Session.OffFit)
	fmt.Printf("  transfers/session are Zipf:     %s\n", c.Session.PerSessionFit)
	fmt.Printf("  transfer lengths are lognormal: %s (client stickiness, not object size)\n",
		c.Transfer.LengthFit)
	if len(c.Client.Concurrency.ACF) > 1440 {
		fmt.Printf("  diurnal synchrony: ACF of c(t) at the 1-day lag = %.3f\n",
			c.Client.Concurrency.ACF[1440])
	}
	fmt.Printf("  piecewise-Poisson arrivals match measured interarrivals: KS = %.4f\n",
		c.Poisson.KS)

	fmt.Println("\nPaper vs measured:")
	if err := report.MarkdownTable(os.Stdout, rep.Comparisons()); err != nil {
		log.Fatal(err)
	}
}
