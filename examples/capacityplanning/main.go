// Capacity planning: the paper's motivating application (Section 1).
//
// "For live content, turning down a user's request amounts to denying
// access ... admission control is not a viable alternative. Capacity
// planning based on accurate understanding of workload characteristics
// becomes a necessity."
//
// This example uses the generative model as a capacity-planning tool: it
// sweeps the client population scale, simulates each workload, and
// reports the peak concurrent transfers and peak bandwidth the server
// must provision — including the tail risk (how much the busiest
// 15-minute window exceeds the average), which is exactly what the
// diurnal synchrony of live content creates.
//
// Run with:
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/analyze"
	"repro/internal/gismo"
	"repro/internal/report"
	"repro/internal/simulate"
)

func main() {
	fmt.Println("Capacity planning for a live streaming service (3-day design trace)")
	fmt.Println()

	tbl := &report.Table{
		Title: "Provisioning requirements by audience scale",
		Headers: []string{
			"Scale (1/x)", "Sessions", "Transfers",
			"Peak conc.", "Mean conc.", "Peak/mean", "Peak Mbit/s",
		},
	}

	for _, scale := range []float64{400, 200, 100, 50} {
		row, err := planAt(scale)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Reading the table: statistical multiplexing shrinks peak-to-mean as the")
	fmt.Println("audience grows, but the diurnal synchrony of live content keeps it well")
	fmt.Println("above 1 — capacity must track the PEAK column, not the mean. Admission")
	fmt.Println("control cannot shave it: rejected live viewers are lost, not deferred.")
}

func planAt(scale float64) ([]string, error) {
	m, err := gismo.Scaled(scale, 3)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1234))
	w, err := gismo.Generate(m, rng)
	if err != nil {
		return nil, err
	}
	res, err := simulate.Run(w, simulate.DefaultConfig(), rng.Uint64())
	if err != nil {
		return nil, err
	}

	// Concurrency profile of transfers.
	intervals := make([]analyze.Interval, res.Trace.NumTransfers())
	for i, t := range res.Trace.Transfers {
		intervals[i] = analyze.Interval{Start: t.Start, End: t.End()}
	}
	conc, err := analyze.Concurrency(intervals, m.Horizon)
	if err != nil {
		return nil, err
	}
	meanConc := mean(conc.Binned.Values)
	peakConc := conc.Binned.Max()

	// Peak bandwidth: admitted transfers during the busiest 15-minute
	// window, each at its average transfer bandwidth. Approximate with
	// peak concurrency x mean per-transfer bandwidth.
	var bwSum float64
	for _, t := range res.Trace.Transfers {
		bwSum += float64(t.Bandwidth)
	}
	meanBw := bwSum / float64(res.Trace.NumTransfers())
	peakMbps := peakConc * meanBw / 1e6

	ratio := 0.0
	if meanConc > 0 {
		ratio = peakConc / meanConc
	}
	return []string{
		fmt.Sprintf("%.0f", scale),
		fmt.Sprintf("%d", w.SessionCount),
		fmt.Sprintf("%d", res.Trace.NumTransfers()),
		fmt.Sprintf("%.0f", peakConc),
		fmt.Sprintf("%.1f", meanConc),
		fmt.Sprintf("%.1fx", ratio),
		fmt.Sprintf("%.1f", peakMbps),
	}, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
