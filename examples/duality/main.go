// Duality: the paper's central claim, measured side by side.
//
// "Accesses to stored objects are user driven, whereas access to live
// objects is object driven. This reversal of active/passive roles of
// users and objects leads to interesting dualities." (Abstract.)
//
// This example generates one stored-media workload (GISMO's original
// mode: a 1,000-clip library) and one live-media workload (the paper's
// model: 2 live feeds), then measures the two dualities on each side:
//
//  1. What is Zipf? Stored: object popularity. Live: client interest.
//  2. What drives transfer length? Stored: the object's size
//     (strong length/size rank correlation). Live: the client's
//     willingness to stick (no structural correlate).
//
// Run with:
//
//	go run ./examples/duality
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/dist"
	"repro/internal/gismo"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Stored side: a clip library.
	storedModel := gismo.DefaultStored(3, 2000, 0.15)
	stored, err := gismo.GenerateStored(storedModel, rng)
	fatal(err)

	// Live side: the reality show.
	liveModel, err := gismo.Scaled(100, 3)
	fatal(err)
	live, err := gismo.Generate(liveModel, rng)
	fatal(err)

	// --- Duality 1: what is Zipf? -------------------------------------
	objCounts := make([]int, storedModel.NumObjects)
	for _, r := range stored.Requests {
		objCounts[r.Object]++
	}
	popFit, err := dist.FitZipfCounts(objCounts)
	fatal(err)

	clientCounts := make(map[int]int)
	for _, r := range live.Requests {
		clientCounts[r.Client]++
	}
	cc := make([]int, 0, len(clientCounts))
	for _, c := range clientCounts {
		cc = append(cc, c)
	}
	interestFit, err := dist.FitZipfCounts(cc)
	fatal(err)

	// --- Duality 2: what drives transfer length? -----------------------
	sLen := make([]float64, len(stored.Requests))
	sSize := make([]float64, len(stored.Requests))
	for i, r := range stored.Requests {
		sLen[i] = float64(r.Duration)
		sSize[i] = float64(stored.ObjectSeconds[r.Object])
	}
	storedCorr, err := stats.SpearmanCorrelation(sLen, sSize)
	fatal(err)

	lLen := make([]float64, len(live.Requests))
	lObj := make([]float64, len(live.Requests))
	for i, r := range live.Requests {
		lLen[i] = float64(r.Duration)
		lObj[i] = float64(r.Object)
	}
	liveCorr, err := stats.SpearmanCorrelation(lLen, lObj)
	fatal(err)

	tbl := &report.Table{
		Title:   "The live/stored duality (Veloso et al., Section 1 and 3.5)",
		Headers: []string{"Question", "Stored media (user driven)", "Live media (object driven)"},
	}
	tbl.AddRow("workload",
		fmt.Sprintf("%d clips, %d requests", storedModel.NumObjects, len(stored.Requests)),
		fmt.Sprintf("%d feeds, %d requests", liveModel.NumObjects, len(live.Requests)))
	tbl.AddRow("what follows a Zipf law",
		fmt.Sprintf("OBJECT popularity (alpha %.2f)", popFit.Alpha),
		fmt.Sprintf("CLIENT interest (alpha %.2f)", interestFit.Alpha))
	tbl.AddRow("length vs object structure (Spearman)",
		fmt.Sprintf("%.2f — size-driven", storedCorr),
		fmt.Sprintf("%.2f — stickiness-driven", liveCorr))
	fatal(tbl.Render(os.Stdout))

	fmt.Println()
	fmt.Println("Stored media: users choose among many objects, so objects accumulate")
	fmt.Println("Zipf popularity and lengths inherit object size. Live media inverts both:")
	fmt.Println("two always-on objects choose nothing — the skew moves to the clients,")
	fmt.Println("and transfer length becomes a property of viewer behaviour alone.")
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
