// GISMO customization: every knob of the Table 2 generative model, turned.
//
// The paper's Section 6 stresses that the generative processes "can be
// easily adjusted to specific distributions associated with other
// applications". This example builds three custom models —
//
//   - "zappers": viewers who hop between feeds constantly (heavier
//     transfers-per-session Zipf, short transfers),
//   - "lurkers": long-stay passive viewers (longer transfer lengths,
//     few transfers per session),
//   - "loyal fans": a much more skewed client interest profile,
//
// generates each, re-characterizes it, and verifies the knob moved the
// measured statistic in the expected direction.
//
// Run with:
//
//	go run ./examples/gismocustom
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/gismo"
	"repro/internal/report"
	"repro/internal/simulate"
)

func main() {
	base, err := gismo.Scaled(150, 3)
	fatal(err)

	zappers := base
	zappers.TransfersPerSession.Alpha = 1.8 // heavier: more multi-transfer sessions
	zappers.TransferLength.Mu = 3.2         // median ~25 s: constant feed-hopping

	lurkers := base
	lurkers.TransfersPerSession.Alpha = 4.0 // almost always a single transfer
	lurkers.TransferLength.Mu = 5.5         // median ~245 s: stay on one feed

	fans := base
	fans.Interest.Alpha = 1.2 // a hard core of heavy repeat visitors

	tbl := &report.Table{
		Title: "Custom GISMO models, re-characterized",
		Headers: []string{
			"Model", "Sessions", "Transfers", "Xfers/session",
			"Median xfer (s)", "Interest alpha",
		},
	}
	type row struct {
		name  string
		model gismo.Model
		seed  int64
	}
	rows := []row{
		{"baseline (paper)", base, 11},
		{"zappers", zappers, 12},
		{"lurkers", lurkers, 13},
		{"loyal fans", fans, 14},
	}
	measured := map[string]*core.Characterization{}
	for _, r := range rows {
		char, sessions, transfers, err := characterize(r.model, r.seed)
		fatal(err)
		measured[r.name] = char
		tbl.AddRow(
			r.name,
			fmt.Sprintf("%d", sessions),
			fmt.Sprintf("%d", transfers),
			fmt.Sprintf("%.2f", float64(transfers)/float64(sessions)),
			fmt.Sprintf("%.0f", char.Transfer.LengthFit.Median()),
			fmt.Sprintf("%.3f", char.Client.InterestSessions.Alpha),
		)
	}
	fatal(tbl.Render(os.Stdout))

	fmt.Println()
	check := func(name string, ok bool) {
		status := "ok"
		if !ok {
			status = "UNEXPECTED"
		}
		fmt.Printf("  [%s] %s\n", status, name)
	}
	check("zappers run more transfers per session than baseline",
		meanPerSession(measured["zappers"]) > meanPerSession(measured["baseline (paper)"]))
	check("zappers' transfers are shorter",
		measured["zappers"].Transfer.LengthFit.Median() < measured["baseline (paper)"].Transfer.LengthFit.Median())
	check("lurkers' transfers are longer",
		measured["lurkers"].Transfer.LengthFit.Median() > measured["baseline (paper)"].Transfer.LengthFit.Median())
	check("loyal fans concentrate sessions on fewer clients",
		measured["loyal fans"].Client.InterestSessions.Alpha > measured["baseline (paper)"].Client.InterestSessions.Alpha)
}

func characterize(m gismo.Model, seed int64) (*core.Characterization, int, int, error) {
	cfg := core.Config{
		Model:          m,
		Server:         simulate.DefaultConfig(),
		SessionTimeout: 1500,
		Seed:           seed,
	}
	rep, err := core.Run(cfg)
	if err != nil {
		return nil, 0, 0, err
	}
	return rep.Char, rep.Char.Basic.Sessions, rep.Char.Basic.Transfers, nil
}

func meanPerSession(c *core.Characterization) float64 {
	return float64(c.Basic.Transfers) / float64(c.Basic.Sessions)
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
