// Live replay: end-to-end over real sockets.
//
// This example closes the loop the discrete-event simulator takes in one
// step, but over an actual TCP streaming server: generate a small
// workload with the paper's model, replay it against the in-process live
// server in compressed time (1 trace hour ≈ 5 wall seconds), decompress
// the server's transfer log back into trace time, and run the
// characterization pipeline on what the *network* actually did.
//
// Run with:
//
//	go run ./examples/livereplay
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gismo"
	"repro/internal/liveserver"
	"repro/internal/trace"
	"repro/internal/wmslog"
)

func main() {
	// A tiny workload: ~2 days of trace, heavily compressed.
	model, err := gismo.Scaled(2000, 2)
	fatal(err)
	w, err := gismo.Generate(model, rand.New(rand.NewSource(7)))
	fatal(err)
	fmt.Println(w)

	// In-process live server capturing transfer records.
	var mu sync.Mutex
	var records []liveserver.TransferRecord
	scfg := liveserver.DefaultServerConfig()
	scfg.FrameBytes = 512
	scfg.FrameInterval = 10 * time.Millisecond
	scfg.MaxConns = 128
	scfg.Sink = func(r liveserver.TransferRecord) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	}
	srv, err := liveserver.Serve("127.0.0.1:0", scfg)
	fatal(err)
	defer srv.Close()
	fmt.Printf("live server on %s\n", srv.Addr())

	rcfg := liveserver.ReplayConfig{
		Compression:  20000,
		MaxTransfers: 60,
		Concurrency:  24,
		MinWatch:     25 * time.Millisecond,
	}
	replayStart := time.Now()
	res, err := liveserver.Replay(srv.Addr(), w, rcfg)
	fatal(err)
	fmt.Printf("replayed %d transfers in %v wall time: %d ok, %d failed, %d bytes on the wire\n",
		res.Attempted, res.Wall.Round(time.Millisecond), res.Completed, res.Failed, res.Bytes)

	// Decompress the server's log back into trace time and characterize.
	mu.Lock()
	recs := append([]liveserver.TransferRecord(nil), records...)
	mu.Unlock()
	entries, err := liveserver.EntriesFromRecords(recs, w, wmslog.TraceEpoch, replayStart, rcfg.Compression, rand.New(rand.NewSource(1)))
	fatal(err)
	tr, err := trace.FromEntries(entries, wmslog.TraceEpoch, model.Horizon)
	fatal(err)
	clean, report := tr.Sanitize()
	fmt.Println(report)

	char, err := core.Characterize(clean, 1500, []int64{500, 1500, 3000}, 1)
	fatal(err)
	fmt.Printf("\ncharacterization of the wire trace:\n")
	fmt.Printf("  %d clients, %d sessions, %d transfers\n",
		char.Basic.Users, char.Basic.Sessions, char.Basic.Transfers)
	fmt.Printf("  transfer lengths: %s\n", char.Transfer.LengthFit)
	fmt.Printf("  peak concurrent transfers: %d (server completed %d in total)\n",
		char.Transfer.Concurrency.Peak, srv.ServedTransfers())
	fmt.Println("\nThe same pipeline that characterizes month-scale simulated traces")
	fmt.Println("accepts logs produced by real network transfers.")
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
