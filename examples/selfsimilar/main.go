// Self-similarity: the mechanism behind Section 5.3.
//
// The paper ties its transfer-length discussion to Crovella & Bestavros
// (its reference [14]): aggregated heavy-tailed ON/OFF activity produces
// self-similar traffic. This example demonstrates the mechanism with the
// VBR substrate — it generates three aggregates with increasingly heavy
// period tails plus a memoryless reference, estimates the Hurst parameter
// of each with both estimators, and compares against the theoretical
// H = (3 - alpha) / 2.
//
// Run with:
//
//	go run ./examples/selfsimilar
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/vbr"
)

func main() {
	rng := rand.New(rand.NewSource(2002))
	const n = 1 << 16

	tbl := &report.Table{
		Title:   "Heavy-tailed ON/OFF aggregation and self-similarity (paper ref [14])",
		Headers: []string{"Source", "Tail alpha", "H (theory)", "H (variance-time)", "H (R/S)"},
	}

	levels := stats.PowersOfTwo(1024)
	blocks := []int{64, 128, 256, 512, 1024, 2048}

	for _, alpha := range []float64{1.2, 1.5, 1.8} {
		cfg := vbr.DefaultConfig()
		cfg.Alpha = alpha
		gen, err := vbr.NewGenerator(cfg)
		fatal(err)
		series := gen.ActiveSources(n, rng)
		hVT, err := stats.VarianceTimeHurst(series, levels)
		fatal(err)
		hRS, err := stats.RSHurst(series, blocks)
		fatal(err)
		tbl.AddRow(
			fmt.Sprintf("Pareto ON/OFF, alpha=%.1f", alpha),
			fmt.Sprintf("%.1f", alpha),
			fmt.Sprintf("%.2f", cfg.ExpectedHurst()),
			fmt.Sprintf("%.2f", hVT),
			fmt.Sprintf("%.2f", hRS),
		)
	}

	refCfg := vbr.DefaultConfig()
	ref := refCfg.PoissonReference(n, rng)
	hVT, err := stats.VarianceTimeHurst(ref, levels)
	fatal(err)
	hRS, err := stats.RSHurst(ref, blocks)
	fatal(err)
	tbl.AddRow("memoryless reference", "-", "0.50",
		fmt.Sprintf("%.2f", hVT), fmt.Sprintf("%.2f", hRS))

	fatal(tbl.Render(os.Stdout))

	fmt.Println()
	fmt.Println("Heavier period tails (smaller alpha) push H toward 1 — long-range")
	fmt.Println("dependence emerges from aggregation alone. For live media the heavy")
	fmt.Println("tail is client stickiness rather than file size, but the aggregate")
	fmt.Println("byte process inherits the same structure (Section 5.3).")
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
