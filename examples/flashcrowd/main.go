// Flash crowd: the paper's Section 6 observation that "the periodicity
// observed in our reality TV application is likely to be very different
// from that observed in (say) live feeds associated with a soccer game",
// and that the generative processes "can be easily adjusted".
//
// This example swaps only the arrival-rate profile — reality-show diurnal
// versus soccer-game event spike (the paper's Victoria's Secret webcast
// anecdote is the same failure mode) — and shows how the identical
// per-client behaviour model produces radically different load shapes:
// the soccer profile concentrates nearly the whole day's audience into a
// two-hour window.
//
// Run with:
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/analyze"
	"repro/internal/gismo"
	"repro/internal/rate"
	"repro/internal/simulate"
)

func main() {
	fmt.Println("Flash-crowd study: same audience model, two live events")
	fmt.Println()

	// Reality show: the paper's diurnal profile.
	show, err := gismo.Scaled(100, 2)
	fatal(err)

	// Soccer game: same population, same per-session behaviour, but the
	// arrival profile is an event spike at 16:00 (kickoff).
	soccer := show
	profile, err := rate.SoccerGame(show.BaseArrivalRate, 16)
	fatal(err)
	soccer.Profile = profile

	showStats, err := study("reality show (diurnal)", show, 101)
	fatal(err)
	soccerStats, err := study("soccer game (event spike)", soccer, 102)
	fatal(err)

	fmt.Println()
	fmt.Printf("Peak-to-mean concurrency: reality show %.1fx, soccer %.1fx\n",
		showStats.peakToMean, soccerStats.peakToMean)
	fmt.Printf("Share of the day's transfers inside the busiest 2 hours: show %.0f%%, soccer %.0f%%\n",
		showStats.busiest2h*100, soccerStats.busiest2h*100)
	fmt.Println()
	fmt.Println("Same clients, same stickiness, same session structure — but capacity")
	fmt.Println("planning for the soccer feed must provision for an arrival spike the")
	fmt.Println("diurnal profile never produces. This is why the paper argues live-media")
	fmt.Println("characteristics are 'highly dependent on the nature of the live content'.")
}

type eventStats struct {
	peakToMean float64
	busiest2h  float64
}

func study(name string, m gismo.Model, seed int64) (eventStats, error) {
	rng := rand.New(rand.NewSource(seed))
	w, err := gismo.Generate(m, rng)
	if err != nil {
		return eventStats{}, err
	}
	res, err := simulate.Run(w, simulate.DefaultConfig(), rng.Uint64())
	if err != nil {
		return eventStats{}, err
	}

	intervals := make([]analyze.Interval, res.Trace.NumTransfers())
	for i, t := range res.Trace.Transfers {
		intervals[i] = analyze.Interval{Start: t.Start, End: t.End()}
	}
	conc, err := analyze.Concurrency(intervals, m.Horizon)
	if err != nil {
		return eventStats{}, err
	}

	peak := conc.Binned.Max()
	var sum float64
	for _, v := range conc.Binned.Values {
		sum += v
	}
	meanV := sum / float64(len(conc.Binned.Values))

	// Busiest contiguous 2-hour (8-bin) window share of transfer starts.
	perBin := make([]int, (m.Horizon+899)/900)
	for _, t := range res.Trace.Transfers {
		perBin[t.Start/900]++
	}
	best, window := 0, 8
	cur := 0
	for i, c := range perBin {
		cur += c
		if i >= window {
			cur -= perBin[i-window]
		}
		if cur > best {
			best = cur
		}
	}

	fmt.Printf("%-28s %7d sessions %8d transfers, peak concurrency %4.0f\n",
		name+":", w.SessionCount, res.Trace.NumTransfers(), peak)

	return eventStats{
		peakToMean: peak / meanV,
		busiest2h:  float64(best) / float64(res.Trace.NumTransfers()),
	}, nil
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
