// Log analysis: the downstream-user path.
//
// A service operator with a directory of Windows-Media-Server-style logs
// runs exactly this: parse (tolerantly), sanitize (Section 2.4),
// sessionize at T_o = 1,500 s (Section 2.2/Figure 9), characterize all
// three layers, and print the operational summary. This example first
// fabricates a week of logs on disk — including deliberately corrupt
// lines and multi-harvest "spanning" entries — so the robustness
// machinery has something to chew on.
//
// Run with:
//
//	go run ./examples/loganalysis
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/gismo"
	"repro/internal/simulate"
	"repro/internal/trace"
	"repro/internal/wmslog"
)

func main() {
	dir, err := os.MkdirTemp("", "lsm-logs-*")
	fatal(err)
	defer os.RemoveAll(dir)

	// --- 1. Fabricate a week of logs, imperfections included. ---------
	model, err := gismo.Scaled(400, 7)
	fatal(err)
	rng := rand.New(rand.NewSource(99))
	w, err := gismo.Generate(model, rng)
	fatal(err)
	scfg := simulate.DefaultConfig()
	scfg.SpanningPerMillion = 20000 // 2%: visible multi-harvest artifacts
	res, err := simulate.Run(w, scfg, rng.Uint64())
	fatal(err)
	files, err := res.WriteLogs(dir)
	fatal(err)

	// Vandalize one file with garbage lines, as real logs deserve.
	f, err := os.OpenFile(files[0], os.O_APPEND|os.O_WRONLY, 0)
	fatal(err)
	_, err = f.WriteString("corrupted line that is not a log entry\n2002-13-45 99:99:99 nope\n")
	fatal(err)
	fatal(f.Close())
	fmt.Printf("wrote %d daily log files (with %d spanning entries and 2 garbage lines)\n",
		len(files), res.Injected)

	// --- 2. The operator's pipeline. -----------------------------------
	paths, err := filepath.Glob(filepath.Join(dir, "wms-*.log"))
	fatal(err)
	entries, st, err := wmslog.ReadFiles(paths, true) // tolerant mode
	fatal(err)
	fmt.Printf("parsed %d entries, skipped %d malformed lines\n", st.Entries, st.Malformed)

	tr, err := trace.FromEntries(entries, wmslog.TraceEpoch, model.Horizon)
	fatal(err)
	clean, sanReport := tr.Sanitize()
	fmt.Println(sanReport)

	audit := clean.AuditServerLoad(10)
	fmt.Printf("server health: %.2f%% of active time below 10%% CPU\n", audit.TimeBelowFrac*100)

	char, err := core.Characterize(clean, 1500, nil, 1)
	fatal(err)

	fmt.Println("\noperational summary:")
	fmt.Printf("  audience:        %d distinct players from %d ASes in %d countries\n",
		char.Basic.Users, char.Basic.ASes, len(char.Divers.CountryShare))
	fmt.Printf("  volume:          %d sessions, %d transfers, %.1f GB served\n",
		char.Basic.Sessions, char.Basic.Transfers, float64(char.Basic.TotalBytes)/1e9)
	fmt.Printf("  peak audience:   %d concurrent clients\n", char.Client.Concurrency.Peak)
	fmt.Printf("  engagement:      median session %v s, %s\n",
		char.Session.OnMarginal().Quantile(0.5), char.Session.PerSessionFit)
	fmt.Printf("  access quality:  %.1f%% of transfers congestion-bound\n",
		char.Transfer.CongestionFrac*100)
	if len(char.Client.Concurrency.ACF) > 1440 {
		fmt.Printf("  rhythm:          daily autocorrelation %.2f — schedule capacity diurnally\n",
			char.Client.Concurrency.ACF[1440])
	}
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
