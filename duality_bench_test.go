package repro

import (
	"math/rand"
	randv2 "math/rand/v2"
	"testing"

	"repro/internal/dist"
	"repro/internal/gismo"
	"repro/internal/simulate"
	"repro/internal/stats"
)

// BenchmarkExtensionLiveVsStoredDuality measures the paper's central
// conceptual claim (Section 1 / Section 3.5): stored-media access is
// user-driven (Zipf *object popularity*, size-driven transfer lengths),
// live-media access is object-driven (Zipf *client interest*,
// stickiness-driven lengths). Metrics: the object-popularity slope of
// the stored workload, the client-interest slope of the live workload,
// and the length/size rank correlation of each.
func BenchmarkExtensionLiveVsStoredDuality(b *testing.B) {
	f := getFixture(b)
	stored := gismo.DefaultStored(benchDays, f.model.NumClients, 0.1)
	b.ResetTimer()
	var popAlpha, interestAlpha, storedCorr, liveCorr float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i) + 5))
		sw, err := gismo.GenerateStored(stored, rng)
		if err != nil {
			b.Fatal(err)
		}
		// Stored: object popularity Zipf + size-driven lengths.
		counts := make([]int, stored.NumObjects)
		lengths := make([]float64, len(sw.Requests))
		sizes := make([]float64, len(sw.Requests))
		for j, r := range sw.Requests {
			counts[r.Object]++
			lengths[j] = float64(r.Duration)
			sizes[j] = float64(sw.ObjectSeconds[r.Object])
		}
		fit, err := dist.FitZipfCounts(counts)
		if err != nil {
			b.Fatal(err)
		}
		popAlpha = fit.Alpha
		storedCorr, err = stats.SpearmanCorrelation(lengths, sizes)
		if err != nil {
			b.Fatal(err)
		}

		// Live: client interest Zipf + object-independent lengths.
		liveCounts := make(map[int]int)
		liveLen := make([]float64, 0, f.tr.NumTransfers())
		liveObj := make([]float64, 0, f.tr.NumTransfers())
		for _, t := range f.tr.Transfers {
			liveCounts[t.Client]++
			liveLen = append(liveLen, float64(t.Duration))
			liveObj = append(liveObj, float64(t.Object))
		}
		cc := make([]int, 0, len(liveCounts))
		for _, c := range liveCounts {
			cc = append(cc, c)
		}
		lfit, err := dist.FitZipfCounts(cc)
		if err != nil {
			b.Fatal(err)
		}
		interestAlpha = lfit.Alpha
		liveCorr, err = stats.SpearmanCorrelation(liveLen, liveObj)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(popAlpha, "stored_popularity_alpha")
	b.ReportMetric(interestAlpha, "live_interest_alpha")
	b.ReportMetric(storedCorr, "stored_len_size_corr")
	b.ReportMetric(liveCorr, "live_len_object_corr")
}

// BenchmarkExtensionQoSAbandonment runs the paper's stated future work
// (Section 8): what does QoS-driven abandonment do to the
// length/bandwidth correlation? Live (sticky) behaviour shows ~0;
// stored-media-like impatience turns it clearly positive.
func BenchmarkExtensionQoSAbandonment(b *testing.B) {
	f := getFixture(b)
	_ = f
	m, err := gismo.Scaled(benchScale, 3)
	if err != nil {
		b.Fatal(err)
	}
	w, err := gismo.Generate(m, rand.New(rand.NewSource(77)))
	if err != nil {
		b.Fatal(err)
	}
	cfg := simulate.DefaultConfig()
	cfg.SpanningPerMillion = 0
	b.ResetTimer()
	var study *simulate.QoSStudy
	for i := 0; i < b.N; i++ {
		study, err = simulate.RunQoSStudy(w, cfg, simulate.DefaultQoSConfig(), 14400, randv2.New(randv2.NewPCG(uint64(i)+9, 0)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(study.LiveCorrelation, "corr_live_sticky")
	b.ReportMetric(study.AbandonedCorrelation, "corr_with_abandonment")
	b.ReportMetric(float64(study.TransfersCut), "transfers_cut")
}
