package simulate

import (
	"sync/atomic"

	"repro/internal/wmslog"
)

// Lane-local entry arenas.
//
// The sharded serve path used to cycle every *wmslog.Entry through one
// mutex/sync.Pool-backed pool shared by all lane workers and the
// collector — a cross-goroutine get/put pair per transfer. The arena
// replaces it with lane ownership: each worker bump-allocates entries
// from private chunked slabs, and whole chunks (not entries) flow back
// once the collector has sunk every entry they hold. Steady-state
// cross-goroutine traffic is one atomic decrement per entry plus one
// channel operation per entryChunkSize entries; the allocation fast
// path is a bump of a worker-private index.
//
// Lifetime contract (the same one StreamSinks.Entry documents and the
// entryretain analyzer enforces): an entry is valid from laneArena.get
// until its chunk's release — which the collector performs right after
// the Entry sink returns (or when an aborted run drains it). Sinks
// retain by copying, never by keeping the pointer.

const (
	// entryChunkSize is the number of entries per slab: large enough
	// that the per-chunk recycle handoff is noise, small enough that a
	// chunk pinned by one long-lived entry in the reorder buffer wastes
	// little.
	entryChunkSize = 256
	// arenaFreeDepth bounds each lane's free-chunk buffer; chunks
	// recycled beyond it are dropped to the garbage collector.
	arenaFreeDepth = 32
)

// entryChunk is one slab of entries. The owning lane worker
// bump-allocates from entries[used:]; live counts outstanding entries
// plus one hold while the chunk is open for allocation, so it can only
// reach zero — and be recycled — after the worker has moved on AND the
// collector has released every entry.
type entryChunk struct {
	entries []wmslog.Entry
	used    int          // worker-owned bump index
	live    atomic.Int32 // outstanding entries + 1 open-hold
	owner   *laneArena
}

// release returns one entry's reference; the final release recycles
// the whole chunk to its owning lane. Called by the collector (after
// the sink returns, or on abort drain) — never by the worker, which
// holds the open-hold instead.
//
//lsm:hotpath
func (c *entryChunk) release() {
	if c.live.Add(-1) == 0 {
		c.owner.recycle(c)
	}
}

// laneArena is one worker's private entry allocator.
type laneArena struct {
	cur  *entryChunk
	free chan *entryChunk // recycled chunks, pushed by the final release
}

func newLaneArena() *laneArena {
	return &laneArena{free: make(chan *entryChunk, arenaFreeDepth)}
}

// get allocates one entry. Only the owning lane worker calls it; the
// fast path is a bump of the open chunk's index plus one atomic
// increment on a cache line this worker mostly owns.
//
//lsm:hotpath
func (a *laneArena) get() (*wmslog.Entry, *entryChunk) {
	c := a.cur
	if c == nil || c.used == len(c.entries) {
		c = a.refill()
	}
	e := &c.entries[c.used]
	c.used++
	c.live.Add(1)
	return e, c
}

// refill seals the open chunk and installs the next one — recycled if
// the collector has returned any, freshly allocated otherwise.
func (a *laneArena) refill() *entryChunk {
	a.seal()
	var c *entryChunk
	select {
	case c = <-a.free:
		c.used = 0
	default:
		c = &entryChunk{entries: make([]wmslog.Entry, entryChunkSize), owner: a}
	}
	c.live.Store(1) // the open-hold
	a.cur = c
	return c
}

// seal closes the open chunk: the open-hold is dropped, so the chunk
// recycles as soon as (possibly immediately, if the collector already
// released everything) its last entry comes back.
func (a *laneArena) seal() {
	if c := a.cur; c != nil {
		a.cur = nil
		if c.live.Add(-1) == 0 {
			a.recycle(c)
		}
	}
}

// recycle accepts a fully-released chunk for reuse; beyond
// arenaFreeDepth the garbage collector takes it. Any releaser may call
// this (the channel serializes), though in steady state it is the
// collector.
func (a *laneArena) recycle(c *entryChunk) {
	select {
	case a.free <- c:
	default:
	}
}

// close seals the arena at worker exit. Chunks still pinned by
// in-flight entries recycle (or fall to the GC) as the collector
// releases them.
func (a *laneArena) close() { a.seal() }

// put implements entryPool for symmetry; the sharded path never
// returns entries through the arena (the collector releases chunks
// directly), so routing one here is a programming error.
func (a *laneArena) put(e *wmslog.Entry, c *entryChunk) {
	if c != nil {
		c.release()
	}
}

// chunkReleaser is the collector-side entryPool: it only ever returns
// entries, routing each to its owning lane's chunk. The collector
// never allocates entries — the lane workers' arenas do.
type chunkReleaser struct{}

func (chunkReleaser) get() (*wmslog.Entry, *entryChunk) {
	panic("simulate: the collector never allocates entries")
}

//lsm:retain -- the releaser is the recycler: entries are handed back here precisely when the sink is done with them
func (chunkReleaser) put(e *wmslog.Entry, c *entryChunk) {
	if c != nil {
		c.release()
	}
}
