// Package simulate is the discrete-event Windows-Media-Server stand-in:
// it serves a generated request stream (package gismo), models each
// transfer's bandwidth and the server's CPU load, and emits both an
// in-memory trace (package trace) and Windows-Media-Server-style log
// entries (package wmslog).
//
// The paper's trace came from a production server the authors could not
// release; this simulator is the substitution (see DESIGN.md). It
// preserves the behaviours the characterization depends on:
//
//   - unicast transfers only (the server's multicast was disabled);
//   - bimodal transfer bandwidth — client-bound spikes at access-link
//     speeds plus a ~10% congestion-bound low mode (Figure 20);
//   - server CPU that stays below 10% except under extreme concurrency
//     (Section 2.4's sanity check);
//   - 1-second log timestamp resolution, entries written at transfer end;
//   - daily log harvests, plus an optional injection of corrupt
//     "spanning" entries like the multi-harvest artifacts the paper had
//     to sanitize away.
package simulate

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/gismo"
	"repro/internal/heapx"
	"repro/internal/trace"
	"repro/internal/wmslog"
)

// ErrBadConfig reports invalid simulator configuration.
var ErrBadConfig = errors.New("simulate: bad config")

// Config parameterizes the server model.
type Config struct {
	// CongestionFrac is the probability that a transfer is congestion-
	// bound rather than client-bound. The paper estimates "around 10% of
	// all transfers were congestion-bound" (Section 5.4).
	CongestionFrac float64
	// CongestionMu/CongestionSigma are the lognormal parameters of the
	// congestion-bound bandwidth mode, in log-bits/second.
	CongestionMu, CongestionSigma float64
	// BandwidthJitter is the relative jitter applied to client-bound
	// bandwidth (access-link speed), smearing the Figure 20 spikes.
	BandwidthJitter float64
	// EncodingBps caps the effective payload rate used for byte
	// accounting: a live stream cannot deliver more payload than its
	// encoding rate even over a fast link.
	EncodingBps int64
	// CPUPerTransfer is the server CPU percentage consumed per concurrent
	// transfer; CPUNoise adds measurement jitter.
	CPUPerTransfer float64
	CPUNoise       float64
	// LossPerKbps scales packet loss with congestion severity.
	BaseLossRate float64

	// SpanningPerMillion injects, per million genuine transfers, one
	// corrupt entry whose duration exceeds the trace period — the
	// multi-harvest artifacts of Section 2.4. Zero disables injection.
	SpanningPerMillion int

	// Epoch is the wall-clock instant of trace second 0 for log entries.
	Epoch time.Time
}

// DefaultConfig returns the calibrated server model.
func DefaultConfig() Config {
	return Config{
		CongestionFrac:     0.10,
		CongestionMu:       math.Log(9000), // ~9 kbit/s center
		CongestionSigma:    1.0,
		BandwidthJitter:    0.04,
		EncodingBps:        110000, // ~110 kbit/s effective payload
		CPUPerTransfer:     0.002,  // 2,500 concurrent transfers -> 5% CPU
		CPUNoise:           0.3,
		BaseLossRate:       0.001,
		SpanningPerMillion: 40,
		Epoch:              wmslog.TraceEpoch,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.CongestionFrac < 0 || c.CongestionFrac > 1 {
		return fmt.Errorf("%w: congestion fraction %v", ErrBadConfig, c.CongestionFrac)
	}
	if c.CongestionSigma <= 0 {
		return fmt.Errorf("%w: congestion sigma %v", ErrBadConfig, c.CongestionSigma)
	}
	if c.BandwidthJitter < 0 || c.BandwidthJitter >= 1 {
		return fmt.Errorf("%w: bandwidth jitter %v", ErrBadConfig, c.BandwidthJitter)
	}
	if c.EncodingBps <= 0 {
		return fmt.Errorf("%w: encoding rate %d", ErrBadConfig, c.EncodingBps)
	}
	if c.CPUPerTransfer < 0 || c.CPUNoise < 0 {
		return fmt.Errorf("%w: CPU model", ErrBadConfig)
	}
	if c.SpanningPerMillion < 0 {
		return fmt.Errorf("%w: spanning injection %d", ErrBadConfig, c.SpanningPerMillion)
	}
	if c.Epoch.IsZero() {
		return fmt.Errorf("%w: zero epoch", ErrBadConfig)
	}
	return nil
}

// Result is the outcome of a simulation run.
type Result struct {
	Trace *trace.Trace
	// Entries are the log entries in timestamp (transfer end) order,
	// including any injected corrupt entries.
	Entries []*wmslog.Entry
	// PeakConcurrency is the maximum number of simultaneously active
	// transfers observed.
	PeakConcurrency int
	// Injected counts corrupt spanning entries added to Entries.
	Injected int
}

// Run serves the workload and returns the resulting trace and log. It
// is the materializing compatibility wrapper around RunStream: the
// workload is replayed as an event stream and every transfer and log
// entry is collected in memory (entries are copied out of the stream's
// pool). seed drives every server-model draw; equal seeds give
// identical results at any serve-lane count. Scale-sensitive callers
// should use RunStream or RunStreamSharded with sinks instead.
func Run(w *gismo.Workload, cfg Config, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil || len(w.Requests) == 0 {
		return nil, fmt.Errorf("%w: empty workload", ErrBadConfig)
	}
	transfers := make([]trace.Transfer, 0, len(w.Requests))
	entries := make([]*wmslog.Entry, 0, len(w.Requests))
	res, err := RunStream(w.Stream(), w.Population, w.Model.Horizon, cfg, seed, StreamSinks{
		Transfer: func(t trace.Transfer) error {
			transfers = append(transfers, t)
			return nil
		},
		Entry: func(e *wmslog.Entry) error {
			cp := *e
			entries = append(entries, &cp)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	tr, err := trace.New(w.Model.Horizon, transfers)
	if err != nil {
		return nil, err
	}
	return &Result{
		Trace:           tr,
		Entries:         entries,
		PeakConcurrency: res.PeakConcurrency,
		Injected:        res.Injected,
	}, nil
}

// WriteLogs streams the result's entries through a DailyWriter rooted at
// dir, mirroring the paper's daily log harvests. It returns the file
// paths written.
func (r *Result) WriteLogs(dir string) ([]string, error) {
	return r.writeLogs(dir, false)
}

// WriteLogsBinary is WriteLogs in the framed binary wmslog format —
// same daily rotation, same file names, auto-detected by every reader.
func (r *Result) WriteLogsBinary(dir string) ([]string, error) {
	return r.writeLogs(dir, true)
}

func (r *Result) writeLogs(dir string, binary bool) ([]string, error) {
	dw, err := wmslog.NewDailyWriter(dir)
	if err != nil {
		return nil, err
	}
	dw.Binary = binary
	for _, e := range r.Entries {
		if err := dw.Write(e); err != nil {
			dw.Close()
			return nil, err
		}
	}
	if err := dw.Close(); err != nil {
		return nil, err
	}
	return dw.Files(), nil
}

// ObjectURI renders the live-object URI logged for object index i.
func ObjectURI(i int) string {
	return fmt.Sprintf("/live/feed%d", i+1)
}

// concurrencyTracker tracks the number of active transfers as requests
// are admitted in start order. End times within the ring's window land
// in a per-second count ring — O(1) per admission, amortized one ring
// step per simulated second — and only the rare transfer longer than
// the window (the lognormal tail) pays for a min-heap entry. The
// admitted counts are exactly those of the classic end-time heap.
type concurrencyTracker struct {
	ring      []int32 // ends per second, indexed by end & ringMask
	watermark int64   // latest admitted start; ring covers (watermark, watermark+len]
	active    int
	peak      int
	started   bool
	expired   int               // already-over admissions (end <= start), gone at the next admit
	farEnds   heapx.Heap[int64] // ends beyond the ring window
}

// trackerRingSeconds is the ring window (power of two). The default
// transfer-length tail puts ~0.06% of transfers beyond ~2.3 hours, so
// almost every admission stays on the O(1) path.
const trackerRingSeconds = 1 << 13

func newConcurrencyTracker() *concurrencyTracker {
	return &concurrencyTracker{
		ring:    make([]int32, trackerRingSeconds),
		farEnds: heapx.New(func(a, b int64) bool { return a < b }),
	}
}

// admit registers a transfer [start, end) and returns the concurrency
// level including it. Requests must arrive in non-decreasing start
// order. Like the end-time heap this replaces, a transfer whose end is
// at or before its own start (a degenerate zero-length request from an
// external stream) is counted in its own admission and expires at the
// very next one.
func (c *concurrencyTracker) admit(start, end int64) int {
	const mask = trackerRingSeconds - 1
	if !c.started {
		c.watermark = start
		c.started = true
	}
	// Expire everything that ended at or before the new start.
	c.active -= c.expired
	c.expired = 0
	for c.watermark < start {
		c.watermark++
		slot := &c.ring[c.watermark&mask]
		c.active -= int(*slot)
		*slot = 0
	}
	for c.farEnds.Len() > 0 && c.farEnds.Peek() <= start {
		c.farEnds.Pop()
		c.active--
	}
	switch {
	case end <= start:
		// The heap would have popped this end at the next admission
		// (any later start is >= this one); mirror that exactly.
		c.expired++
	case end-c.watermark <= trackerRingSeconds:
		c.ring[end&mask]++
	default:
		c.farEnds.Push(end)
	}
	c.active++
	if c.active > c.peak {
		c.peak = c.active
	}
	return c.active
}
