// Package simulate is the discrete-event Windows-Media-Server stand-in:
// it serves a generated request stream (package gismo), models each
// transfer's bandwidth and the server's CPU load, and emits both an
// in-memory trace (package trace) and Windows-Media-Server-style log
// entries (package wmslog).
//
// The paper's trace came from a production server the authors could not
// release; this simulator is the substitution (see DESIGN.md). It
// preserves the behaviours the characterization depends on:
//
//   - unicast transfers only (the server's multicast was disabled);
//   - bimodal transfer bandwidth — client-bound spikes at access-link
//     speeds plus a ~10% congestion-bound low mode (Figure 20);
//   - server CPU that stays below 10% except under extreme concurrency
//     (Section 2.4's sanity check);
//   - 1-second log timestamp resolution, entries written at transfer end;
//   - daily log harvests, plus an optional injection of corrupt
//     "spanning" entries like the multi-harvest artifacts the paper had
//     to sanitize away.
package simulate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/gismo"
	"repro/internal/trace"
	"repro/internal/wmslog"
)

// ErrBadConfig reports invalid simulator configuration.
var ErrBadConfig = errors.New("simulate: bad config")

// Config parameterizes the server model.
type Config struct {
	// CongestionFrac is the probability that a transfer is congestion-
	// bound rather than client-bound. The paper estimates "around 10% of
	// all transfers were congestion-bound" (Section 5.4).
	CongestionFrac float64
	// CongestionMu/CongestionSigma are the lognormal parameters of the
	// congestion-bound bandwidth mode, in log-bits/second.
	CongestionMu, CongestionSigma float64
	// BandwidthJitter is the relative jitter applied to client-bound
	// bandwidth (access-link speed), smearing the Figure 20 spikes.
	BandwidthJitter float64
	// EncodingBps caps the effective payload rate used for byte
	// accounting: a live stream cannot deliver more payload than its
	// encoding rate even over a fast link.
	EncodingBps int64
	// CPUPerTransfer is the server CPU percentage consumed per concurrent
	// transfer; CPUNoise adds measurement jitter.
	CPUPerTransfer float64
	CPUNoise       float64
	// LossPerKbps scales packet loss with congestion severity.
	BaseLossRate float64

	// SpanningPerMillion injects, per million genuine transfers, one
	// corrupt entry whose duration exceeds the trace period — the
	// multi-harvest artifacts of Section 2.4. Zero disables injection.
	SpanningPerMillion int

	// Epoch is the wall-clock instant of trace second 0 for log entries.
	Epoch time.Time
}

// DefaultConfig returns the calibrated server model.
func DefaultConfig() Config {
	return Config{
		CongestionFrac:     0.10,
		CongestionMu:       math.Log(9000), // ~9 kbit/s center
		CongestionSigma:    1.0,
		BandwidthJitter:    0.04,
		EncodingBps:        110000, // ~110 kbit/s effective payload
		CPUPerTransfer:     0.002,  // 2,500 concurrent transfers -> 5% CPU
		CPUNoise:           0.3,
		BaseLossRate:       0.001,
		SpanningPerMillion: 40,
		Epoch:              wmslog.TraceEpoch,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.CongestionFrac < 0 || c.CongestionFrac > 1 {
		return fmt.Errorf("%w: congestion fraction %v", ErrBadConfig, c.CongestionFrac)
	}
	if c.CongestionSigma <= 0 {
		return fmt.Errorf("%w: congestion sigma %v", ErrBadConfig, c.CongestionSigma)
	}
	if c.BandwidthJitter < 0 || c.BandwidthJitter >= 1 {
		return fmt.Errorf("%w: bandwidth jitter %v", ErrBadConfig, c.BandwidthJitter)
	}
	if c.EncodingBps <= 0 {
		return fmt.Errorf("%w: encoding rate %d", ErrBadConfig, c.EncodingBps)
	}
	if c.CPUPerTransfer < 0 || c.CPUNoise < 0 {
		return fmt.Errorf("%w: CPU model", ErrBadConfig)
	}
	if c.SpanningPerMillion < 0 {
		return fmt.Errorf("%w: spanning injection %d", ErrBadConfig, c.SpanningPerMillion)
	}
	if c.Epoch.IsZero() {
		return fmt.Errorf("%w: zero epoch", ErrBadConfig)
	}
	return nil
}

// Result is the outcome of a simulation run.
type Result struct {
	Trace *trace.Trace
	// Entries are the log entries in timestamp (transfer end) order,
	// including any injected corrupt entries.
	Entries []*wmslog.Entry
	// PeakConcurrency is the maximum number of simultaneously active
	// transfers observed.
	PeakConcurrency int
	// Injected counts corrupt spanning entries added to Entries.
	Injected int
}

// Run serves the workload and returns the resulting trace and log.
func Run(w *gismo.Workload, cfg Config, rng *rand.Rand) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil || len(w.Requests) == 0 {
		return nil, fmt.Errorf("%w: empty workload", ErrBadConfig)
	}

	concurrency := newConcurrencyTracker(len(w.Requests))
	transfers := make([]trace.Transfer, 0, len(w.Requests))
	entries := make([]*wmslog.Entry, 0, len(w.Requests))

	for _, req := range w.Requests {
		client := &w.Population.Clients[req.Client]
		conc := concurrency.admit(req.Start, req.End())
		cpu := cfg.cpuAt(conc, rng)
		bw, congested := cfg.drawBandwidth(client.Access.Bps, rng)
		payload := bw
		if payload > cfg.EncodingBps {
			payload = cfg.EncodingBps
		}
		bytes := payload * req.Duration / 8
		loss := cfg.drawLoss(req.Duration, congested, rng)

		transfers = append(transfers, trace.Transfer{
			Client:    req.Client,
			IP:        client.Placement.IP,
			AS:        client.Placement.ASIndex + 1,
			Country:   client.Placement.Country,
			Object:    req.Object,
			Start:     req.Start,
			Duration:  req.Duration,
			Bytes:     bytes,
			Bandwidth: bw,
			ServerCPU: cpu,
		})
		entries = append(entries, &wmslog.Entry{
			Timestamp:    cfg.Epoch.Add(time.Duration(req.End()) * time.Second),
			ClientIP:     client.Placement.IP,
			PlayerID:     client.PlayerID,
			ClientOS:     client.OS,
			ClientCPU:    client.CPU,
			URIStem:      ObjectURI(req.Object),
			Duration:     req.Duration,
			Bytes:        bytes,
			AvgBandwidth: bw,
			PacketsLost:  loss,
			ServerCPU:    cpu,
			Referer:      "http://show.example.br/aovivo",
			Status:       200,
			ASNumber:     client.Placement.ASIndex + 1,
			Country:      client.Placement.Country,
		})
	}

	injected := cfg.injectSpanning(w, entries, rng)
	entries = append(entries, injected...)
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Timestamp.Before(entries[j].Timestamp)
	})

	tr, err := trace.New(w.Model.Horizon, transfers)
	if err != nil {
		return nil, err
	}
	return &Result{
		Trace:           tr,
		Entries:         entries,
		PeakConcurrency: concurrency.peak,
		Injected:        len(injected),
	}, nil
}

// injectSpanning fabricates the corrupt multi-harvest entries of
// Section 2.4: durations longer than the whole trace period.
func (c *Config) injectSpanning(w *gismo.Workload, genuine []*wmslog.Entry, rng *rand.Rand) []*wmslog.Entry {
	if c.SpanningPerMillion == 0 || len(genuine) == 0 {
		return nil
	}
	n := len(genuine) * c.SpanningPerMillion / 1_000_000
	if n == 0 && rng.Float64() < float64(len(genuine)*c.SpanningPerMillion%1_000_000)/1_000_000 {
		n = 1
	}
	out := make([]*wmslog.Entry, 0, n)
	for i := 0; i < n; i++ {
		src := genuine[rng.Intn(len(genuine))]
		dup := *src
		dup.Duration = w.Model.Horizon + int64(rng.Intn(1_000_000)) + 1
		dup.Bytes = dup.Duration * 1000
		out = append(out, &dup)
	}
	return out
}

// WriteLogs streams the result's entries through a DailyWriter rooted at
// dir, mirroring the paper's daily log harvests. It returns the file
// paths written.
func (r *Result) WriteLogs(dir string) ([]string, error) {
	dw, err := wmslog.NewDailyWriter(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range r.Entries {
		if err := dw.Write(e); err != nil {
			dw.Close()
			return nil, err
		}
	}
	if err := dw.Close(); err != nil {
		return nil, err
	}
	return dw.Files(), nil
}

// ObjectURI renders the live-object URI logged for object index i.
func ObjectURI(i int) string {
	return fmt.Sprintf("/live/feed%d", i+1)
}

// concurrencyTracker tracks the number of active transfers as requests
// are admitted in start order, using a min-heap of end times.
type concurrencyTracker struct {
	ends endHeap
	peak int
}

func newConcurrencyTracker(capacity int) *concurrencyTracker {
	return &concurrencyTracker{ends: make(endHeap, 0, capacity/16+1)}
}

// admit registers a transfer [start, end) and returns the concurrency
// level including it. Requests must arrive in non-decreasing start order.
func (c *concurrencyTracker) admit(start, end int64) int {
	for len(c.ends) > 0 && c.ends[0] <= start {
		c.ends.pop()
	}
	c.ends.push(end)
	if len(c.ends) > c.peak {
		c.peak = len(c.ends)
	}
	return len(c.ends)
}

// endHeap is a minimal int64 min-heap (no container/heap interface
// overhead on the hot path).
type endHeap []int64

func (h *endHeap) push(v int64) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *endHeap) pop() int64 {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l] < (*h)[smallest] {
			smallest = l
		}
		if r < n && (*h)[r] < (*h)[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
