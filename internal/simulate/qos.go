package simulate

import (
	"math/rand/v2"

	"repro/internal/gismo"
	"repro/internal/stats"
	"repro/internal/trace"
)

// QoS-driven abandonment: the paper's stated future work.
//
// "We did not study the impact that network congestion, as reflected by
// increased packet drops or lost connections would have on user access
// patterns. We are currently investigating these issues." (Section 8.)
// The introduction hypothesizes the mechanism: stored-media viewers stop
// when QoS degrades (positive length/QoS correlation) because they can
// come back later; live viewers cannot revisit, so the correlation
// "may be much weaker and/or the mitigating QoS threshold may be
// significantly different".
//
// ApplyQoSAbandonment implements that counterfactual so it can be
// measured: congestion-bound transfers are truncated with probability
// AbandonProb to a uniformly drawn fraction of their intended length.
// Setting AbandonProb high models stored-media-like impatience; zero
// models the paper's observed live behaviour (stickiness regardless of
// QoS).

// QoSConfig parameterizes the abandonment counterfactual.
type QoSConfig struct {
	// AbandonProb is the probability that a congestion-bound transfer is
	// cut short.
	AbandonProb float64
	// MinFraction is the smallest fraction of the intended length an
	// abandoning viewer still watches before giving up.
	MinFraction float64
}

// DefaultQoSConfig models impatient (stored-media-like) viewers.
func DefaultQoSConfig() QoSConfig {
	return QoSConfig{AbandonProb: 0.8, MinFraction: 0.02}
}

// ApplyQoSAbandonment returns a copy of the trace with congestion-bound
// transfers (bandwidth below the threshold) truncated per the config.
// The returned count reports how many transfers were cut.
func ApplyQoSAbandonment(tr *trace.Trace, cfg QoSConfig, congestionBps int64, rng *rand.Rand) (*trace.Trace, int, error) {
	transfers := make([]trace.Transfer, len(tr.Transfers))
	copy(transfers, tr.Transfers)
	cut := 0
	for i := range transfers {
		t := &transfers[i]
		if t.Bandwidth >= congestionBps {
			continue
		}
		if rng.Float64() >= cfg.AbandonProb {
			continue
		}
		frac := cfg.MinFraction + rng.Float64()*(0.5-cfg.MinFraction)
		d := int64(frac * float64(t.Duration))
		if d < 1 {
			d = 1
		}
		if d < t.Duration {
			t.Duration = d
			t.Bytes = t.Bandwidth * d / 8
			cut++
		}
	}
	out, err := trace.New(tr.Horizon, transfers)
	if err != nil {
		return nil, 0, err
	}
	return out, cut, nil
}

// LengthBandwidthCorrelation measures the Spearman rank correlation
// between per-transfer bandwidth and transfer length — the QoS/viewing-
// time relationship the introduction reasons about. It is computed over
// display lengths (⌊t+1⌋).
func LengthBandwidthCorrelation(tr *trace.Trace) (float64, error) {
	lengths := make([]float64, tr.NumTransfers())
	bws := make([]float64, tr.NumTransfers())
	for i, t := range tr.Transfers {
		lengths[i] = float64(t.Duration) + 1
		bws[i] = float64(t.Bandwidth)
	}
	return spearman(lengths, bws)
}

// spearman defers to the stats package.
func spearman(xs, ys []float64) (float64, error) {
	return stats.SpearmanCorrelation(xs, ys)
}

// QoSStudy runs the abandonment counterfactual end to end on a workload:
// it serves the workload once, measures the length/bandwidth correlation
// of the live-behaviour trace (no abandonment), applies stored-media-like
// abandonment, and measures again.
type QoSStudy struct {
	LiveCorrelation      float64 // sticky viewers: near zero
	AbandonedCorrelation float64 // impatient viewers: clearly positive
	TransfersCut         int
}

// RunQoSStudy executes the study. rng seeds the serving pass and
// drives the abandonment draws.
func RunQoSStudy(w *gismo.Workload, serverCfg Config, qos QoSConfig, congestionBps int64, rng *rand.Rand) (*QoSStudy, error) {
	res, err := Run(w, serverCfg, rng.Uint64())
	if err != nil {
		return nil, err
	}
	live, err := LengthBandwidthCorrelation(res.Trace)
	if err != nil {
		return nil, err
	}
	cutTrace, cut, err := ApplyQoSAbandonment(res.Trace, qos, congestionBps, rng)
	if err != nil {
		return nil, err
	}
	abandoned, err := LengthBandwidthCorrelation(cutTrace)
	if err != nil {
		return nil, err
	}
	return &QoSStudy{
		LiveCorrelation:      live,
		AbandonedCorrelation: abandoned,
		TransfersCut:         cut,
	}, nil
}
