package simulate

import (
	"fmt"
	"time"

	"math/rand"

	"repro/internal/gismo"
	"repro/internal/heapx"
	"repro/internal/trace"
	"repro/internal/wmslog"
	"repro/internal/workload"
)

// StreamSinks receives the simulator's output as it is produced.
// Transfer is called in request-start order; Entry is called in log
// order (non-decreasing timestamp — entries are released once no
// still-active transfer can end earlier). Either may be nil. A sink
// error aborts the run.
type StreamSinks struct {
	Transfer func(trace.Transfer) error
	Entry    func(*wmslog.Entry) error
}

// StreamResult summarizes a streamed simulation run.
type StreamResult struct {
	// Transfers is the number of genuine transfers served.
	Transfers int
	// PeakConcurrency is the maximum number of simultaneously active
	// transfers observed.
	PeakConcurrency int
	// Injected counts corrupt spanning entries emitted among the
	// genuine ones (Section 2.4 artifacts).
	Injected int
	// TotalBytes sums bytes served across genuine transfers.
	TotalBytes int64
}

// RunStream serves an event stream, holding O(active transfers) of
// state: the concurrency heap plus a reorder buffer of log entries for
// transfers that have started but not yet ended (entries are
// timestamped at transfer end, requests arrive in start order). It is
// the single serving implementation — Run is a materializing wrapper
// around it.
//
// pop must cover every client ID in the stream; horizon bounds the
// trace. Spanning-entry injection (cfg.SpanningPerMillion) becomes a
// per-transfer Bernoulli draw at the same expected rate as the
// materializing path's fixed count.
func RunStream(src workload.Stream, pop *gismo.Population, horizon int64, cfg Config, rng *rand.Rand, sinks StreamSinks) (*StreamResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pop == nil || pop.Size() == 0 {
		return nil, fmt.Errorf("%w: empty population", ErrBadConfig)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadConfig, horizon)
	}
	defer workload.CloseStream(src)

	res := &StreamResult{}
	concurrency := newConcurrencyTracker()
	pending := newPendingEntries()
	var lastStart int64
	injectP := float64(cfg.SpanningPerMillion) / 1_000_000

	flushThrough := func(start int64, all bool) error {
		for pending.heap.Len() > 0 && (all || pending.heap.Peek().end <= start) {
			e := pending.pop()
			if sinks.Entry != nil {
				if err := sinks.Entry(e); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if ev.Client < 0 || ev.Client >= pop.Size() {
			return nil, fmt.Errorf("%w: client %d outside population of %d", ErrBadConfig, ev.Client, pop.Size())
		}
		if res.Transfers > 0 && ev.Start < lastStart {
			return nil, fmt.Errorf("%w: stream not in start order (%d after %d)", ErrBadConfig, ev.Start, lastStart)
		}
		lastStart = ev.Start
		if err := flushThrough(ev.Start, false); err != nil {
			return nil, err
		}

		client := &pop.Clients[ev.Client]
		conc := concurrency.admit(ev.Start, ev.End())
		cpu := cfg.cpuAt(conc, rng)
		bw, congested := cfg.drawBandwidth(client.Access.Bps, rng)
		payload := bw
		if payload > cfg.EncodingBps {
			payload = cfg.EncodingBps
		}
		bytes := payload * ev.Duration / 8
		loss := cfg.drawLoss(ev.Duration, congested, rng)
		res.Transfers++
		res.TotalBytes += bytes

		if sinks.Transfer != nil {
			err := sinks.Transfer(trace.Transfer{
				Client:    ev.Client,
				IP:        client.Placement.IP,
				AS:        client.Placement.ASIndex + 1,
				Country:   client.Placement.Country,
				Object:    ev.Object,
				Start:     ev.Start,
				Duration:  ev.Duration,
				Bytes:     bytes,
				Bandwidth: bw,
				ServerCPU: cpu,
			})
			if err != nil {
				return nil, err
			}
		}
		entry := &wmslog.Entry{
			Timestamp:    cfg.Epoch.Add(time.Duration(ev.End()) * time.Second),
			ClientIP:     client.Placement.IP,
			PlayerID:     client.PlayerID,
			ClientOS:     client.OS,
			ClientCPU:    client.CPU,
			URIStem:      ObjectURI(ev.Object),
			Duration:     ev.Duration,
			Bytes:        bytes,
			AvgBandwidth: bw,
			PacketsLost:  loss,
			ServerCPU:    cpu,
			Referer:      "http://show.example.br/aovivo",
			Status:       200,
			ASNumber:     client.Placement.ASIndex + 1,
			Country:      client.Placement.Country,
		}
		pending.push(ev.End(), entry)

		// Section 2.4 multi-harvest artifacts: with probability
		// SpanningPerMillion/1e6 the entry gains a corrupt twin whose
		// duration exceeds the trace period.
		if injectP > 0 && rng.Float64() < injectP {
			dup := *entry
			dup.Duration = horizon + int64(rng.Intn(1_000_000)) + 1
			dup.Bytes = dup.Duration * 1000
			pending.push(ev.End(), &dup)
			res.Injected++
		}
	}
	if res.Transfers == 0 {
		return nil, fmt.Errorf("%w: empty workload", ErrBadConfig)
	}
	if err := flushThrough(0, true); err != nil {
		return nil, err
	}
	res.PeakConcurrency = concurrency.peak
	return res, nil
}

// pendingEntries is the reorder buffer of not-yet-emitted log entries,
// a min-heap on (transfer end, admission order). The secondary key
// makes the emission order — and therefore the log bytes — fully
// deterministic under timestamp ties.
type pendingEntries struct {
	heap heapx.Heap[pendingEntry]
	seq  int64
}

type pendingEntry struct {
	end   int64
	seq   int64
	entry *wmslog.Entry
}

func newPendingEntries() pendingEntries {
	return pendingEntries{heap: heapx.New(func(a, b pendingEntry) bool {
		if a.end != b.end {
			return a.end < b.end
		}
		return a.seq < b.seq
	})}
}

func (p *pendingEntries) push(end int64, e *wmslog.Entry) {
	p.heap.Push(pendingEntry{end: end, seq: p.seq, entry: e})
	p.seq++
}

func (p *pendingEntries) pop() *wmslog.Entry {
	return p.heap.Pop().entry
}
