package simulate

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/dist"
	"repro/internal/gismo"
	"repro/internal/heapx"
	"repro/internal/trace"
	"repro/internal/wmslog"
	"repro/internal/workload"
)

// serveLane is the seed-derivation lane of the serve side, disjoint
// from the generator's lanes 0–4 (internal/gismo), so a caller may
// reuse one seed for generation and serving without correlating the
// two. Every per-transfer draw comes from a splitmix stream keyed by
// (seed, serveLane, event.Session, event.Seq) — a pure function of the
// event identity. That is the sharded-serve contract: any partition of
// events across serve lanes draws exactly the same values, so the log
// bytes are invariant under the lane count (mirroring the generator's
// shard-seeding scheme, DESIGN.md).
const serveLane uint64 = 5

// laneHash is the lane the sharded dispatcher's client→lane hash is
// keyed on (Mix64(client, laneHash)). It never derives a random
// stream, but it lives in the lane namespace so no future stream can
// accidentally share its keying — lsmvet's seedlane analyzer keeps the
// whole namespace collision-free.
const laneHash uint64 = 6

// StreamSinks receives the simulator's output as it is produced.
// Transfer is called in request-start order; Entry is called in log
// order (non-decreasing timestamp — entries are released once no
// still-active transfer can end earlier). Either may be nil. A sink
// error aborts the run.
//
// The *wmslog.Entry passed to Entry is pooled: it is valid only for
// the duration of the call and is recycled afterwards. A sink that
// needs to retain it must copy the value.
type StreamSinks struct {
	Transfer func(trace.Transfer) error
	Entry    func(*wmslog.Entry) error
}

// StreamResult summarizes a streamed simulation run.
type StreamResult struct {
	// Transfers is the number of genuine transfers served.
	Transfers int
	// PeakConcurrency is the maximum number of simultaneously active
	// transfers observed.
	PeakConcurrency int
	// Injected counts corrupt spanning entries emitted among the
	// genuine ones (Section 2.4 artifacts).
	Injected int
	// TotalBytes sums bytes served across genuine transfers.
	TotalBytes int64
}

// RunStream serves an event stream sequentially, holding O(active
// transfers) of state: the concurrency heap plus a reorder buffer of
// log entries for transfers that have started but not yet ended
// (entries are timestamped at transfer end, requests arrive in start
// order). Run is a materializing wrapper around it; RunStreamSharded
// is the parallel form, byte-identical at any lane count.
//
// pop must cover every client ID in the stream; horizon bounds the
// trace. seed drives every server-model draw deterministically:
// per-transfer randomness is keyed by (seed, event identity), so equal
// seeds give identical logs regardless of how the serving is
// parallelized. Spanning-entry injection (cfg.SpanningPerMillion) is a
// per-transfer Bernoulli draw at the same expected rate as the
// original materializing path's fixed count.
func RunStream(src workload.Stream, pop *gismo.Population, horizon int64, cfg Config, seed uint64, sinks StreamSinks) (*StreamResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pop == nil || pop.Size() == 0 {
		return nil, fmt.Errorf("%w: empty population", ErrBadConfig)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadConfig, horizon)
	}
	defer workload.CloseStream(src)

	// Single-goroutine serving recycles entries through a plain
	// freelist; only the sharded path pays for sync.Pool.
	pool := &freeEntryPool{}
	es := newEventServer(&cfg, pop, horizon, seed, pool, sinks)
	res := &StreamResult{}
	concurrency := newConcurrencyTracker()
	pending := newPendingEntries(pool)
	var lastStart int64
	var sv served

	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if ev.Client < 0 || ev.Client >= pop.Size() {
			return nil, fmt.Errorf("%w: client %d outside population of %d", ErrBadConfig, ev.Client, pop.Size())
		}
		if res.Transfers > 0 && ev.Start < lastStart {
			return nil, fmt.Errorf("%w: stream not in start order (%d after %d)", ErrBadConfig, ev.Start, lastStart)
		}
		lastStart = ev.Start
		if err := pending.flushThrough(ev.Start, false, sinks.Entry); err != nil {
			return nil, err
		}

		conc := concurrency.admit(ev.Start, ev.End())
		es.serve(ev, conc, &sv)
		res.Transfers++
		res.TotalBytes += sv.bytes

		if sinks.Transfer != nil {
			if err := sinks.Transfer(sv.transfer); err != nil {
				return nil, err
			}
		}
		if sv.entry != nil {
			pending.push(sv.end, sv.entry, sv.entryC)
			if sv.dup != nil {
				pending.push(sv.end, sv.dup, sv.dupC)
			}
		}
		if sv.injected {
			res.Injected++
		}
	}
	if res.Transfers == 0 {
		return nil, fmt.Errorf("%w: empty workload", ErrBadConfig)
	}
	if err := pending.flushThrough(0, true, sinks.Entry); err != nil {
		return nil, err
	}
	res.PeakConcurrency = concurrency.peak
	return res, nil
}

// served is one transfer's complete serving outcome: the trace record,
// the pooled log entry, and — for the rare Section 2.4 injection — a
// corrupt spanning twin. transfer and entry are only populated when
// the run has the corresponding sink. entryC/dupC are the arena chunks
// owning the entries on the sharded path (nil on the sequential path,
// whose freelist pool has no chunks); they ride along so the collector
// can release each entry to its owning lane.
type served struct {
	transfer trace.Transfer
	entry    *wmslog.Entry
	entryC   *entryChunk
	dup      *wmslog.Entry
	dupC     *entryChunk
	end      int64
	bytes    int64
	injected bool
}

// eventServer computes one transfer's server-model outcome from the
// event alone (plus the concurrency level the dispatcher observed).
// Each serve reseeds a splitmix source with the event's derived seed,
// so the draws are a pure function of (seed, Session, Seq) — the
// property both the sequential and the sharded serve paths rely on for
// byte-identical logs. Not safe for concurrent use; sharded serving
// gives each lane its own eventServer over the same seed.
type eventServer struct {
	cfg          *Config
	pop          *gismo.Population
	root         uint64
	src          *dist.SplitMix64
	rng          *rand.Rand
	uris         []string // lazily built object-URI cache, shared by entries
	horizon      int64
	injectP      float64
	pool         entryPool
	wantTransfer bool
	wantEntry    bool
}

func newEventServer(cfg *Config, pop *gismo.Population, horizon int64, seed uint64, pool entryPool, sinks StreamSinks) *eventServer {
	src := dist.NewSplitMix64(0)
	return &eventServer{
		cfg:          cfg,
		pop:          pop,
		root:         dist.Mix64(seed, serveLane),
		src:          src,
		rng:          rand.New(src),
		horizon:      horizon,
		injectP:      float64(cfg.SpanningPerMillion) / 1_000_000,
		pool:         pool,
		wantTransfer: sinks.Transfer != nil,
		wantEntry:    sinks.Entry != nil,
	}
}

// serve computes the outcome of one event at the given concurrency
// level into *sv (overwritten entirely; an out-param so the hot loop
// copies no large struct). The draw order (CPU, bandwidth, loss,
// injection) is fixed — it is part of the deterministic-serve
// contract — and every draw is made regardless of which sinks exist,
// so the outcome never depends on who is listening. Only the
// materialization of the trace record and the log entry is skipped
// for absent sinks.
//
//lsm:hotpath
func (es *eventServer) serve(ev workload.Event, conc int, sv *served) {
	es.src.Seed(int64(dist.Mix64(dist.Mix64(es.root, uint64(ev.Session)), uint64(ev.Seq))))
	client := &es.pop.Clients[ev.Client]
	cfg := es.cfg
	cpu := cfg.cpuAt(conc, es.rng)
	bw, congested := cfg.drawBandwidth(client.Access.Bps, es.rng)
	payload := bw
	if payload > cfg.EncodingBps {
		payload = cfg.EncodingBps
	}
	bytes := payload * ev.Duration / 8
	loss := cfg.drawLoss(ev.Duration, congested, es.rng)

	*sv = served{end: ev.End(), bytes: bytes}
	if es.wantTransfer {
		sv.transfer = trace.Transfer{
			Client:    ev.Client,
			IP:        client.Placement.IP,
			AS:        client.Placement.ASIndex + 1,
			Country:   client.Placement.Country,
			Object:    ev.Object,
			Start:     ev.Start,
			Duration:  ev.Duration,
			Bytes:     bytes,
			Bandwidth: bw,
			ServerCPU: cpu,
		}
	}
	if es.wantEntry {
		entry, chunk := es.pool.get()
		sv.entryC = chunk
		*entry = wmslog.Entry{
			Timestamp:    cfg.Epoch.Add(time.Duration(sv.end) * time.Second),
			ClientIP:     client.Placement.IP,
			PlayerID:     client.PlayerID,
			ClientOS:     client.OS,
			ClientCPU:    client.CPU,
			URIStem:      es.uri(ev.Object),
			Duration:     ev.Duration,
			Bytes:        bytes,
			AvgBandwidth: bw,
			PacketsLost:  loss,
			ServerCPU:    cpu,
			Referer:      "http://show.example.br/aovivo",
			Status:       200,
			ASNumber:     client.Placement.ASIndex + 1,
			Country:      client.Placement.Country,
		}
		sv.entry = entry
	}

	// Section 2.4 multi-harvest artifacts: with probability
	// SpanningPerMillion/1e6 the entry gains a corrupt twin whose
	// duration exceeds the trace period.
	if es.injectP > 0 && es.rng.Float64() < es.injectP {
		sv.injected = true
		dur := es.horizon + int64(es.rng.IntN(1_000_000)) + 1
		if sv.entry != nil {
			dup, chunk := es.pool.get()
			*dup = *sv.entry
			dup.Duration = dur
			dup.Bytes = dur * 1000
			sv.dup = dup
			sv.dupC = chunk
		}
	}
}

// uri returns the cached URI string for an object index, so the hot
// path never re-renders it (entries share the cached string).
func (es *eventServer) uri(obj int) string {
	for obj >= len(es.uris) {
		es.uris = append(es.uris, "")
	}
	if es.uris[obj] == "" {
		es.uris[obj] = ObjectURI(obj)
	}
	return es.uris[obj]
}

// entryPool recycles wmslog.Entry values between the serve workers and
// the sink: a transfer's entry is recycled as soon as the Entry sink
// returns, so a streamed run allocates entries proportional to the
// reorder buffer's high-water mark (~peak concurrency), not to the
// transfer count. get may hand back the entry's owning arena chunk
// (nil for chunkless pools); callers thread it to the matching put so
// arena-backed entries release to the right lane.
type entryPool interface {
	get() (*wmslog.Entry, *entryChunk)
	put(*wmslog.Entry, *entryChunk)
}

// freeEntryPool is the single-goroutine pool the sequential path uses:
// a plain LIFO freelist, no synchronization, no chunks. The sharded
// path uses per-lane arenas instead (see arena.go).
type freeEntryPool struct {
	free []*wmslog.Entry
}

func (ep *freeEntryPool) get() (*wmslog.Entry, *entryChunk) {
	if n := len(ep.free); n > 0 {
		e := ep.free[n-1]
		ep.free = ep.free[:n-1]
		return e, nil
	}
	return new(wmslog.Entry), nil
}

// put returns an entry to the freelist.
//
//lsm:retain -- the pool is the recycler: entries are handed back here precisely when the sink is done with them
func (ep *freeEntryPool) put(e *wmslog.Entry, _ *entryChunk) { ep.free = append(ep.free, e) }

// pendingEntries is the reorder buffer of not-yet-emitted log entries,
// a min-heap on (transfer end, admission order). The secondary key
// makes the emission order — and therefore the log bytes — fully
// deterministic under timestamp ties.
type pendingEntries struct {
	heap heapx.Heap[pendingEntry]
	seq  int64
	pool entryPool
}

type pendingEntry struct {
	end   int64
	seq   int64
	entry *wmslog.Entry
	chunk *entryChunk
}

func newPendingEntries(pool entryPool) pendingEntries {
	return pendingEntries{heap: heapx.New(func(a, b pendingEntry) bool {
		if a.end != b.end {
			return a.end < b.end
		}
		return a.seq < b.seq
	}), pool: pool}
}

// push buffers an entry until the start watermark passes its end time.
//
//lsm:retain -- the reorder buffer owns entries between push and pop; flushThrough recycles them into the pool after the sink call
func (p *pendingEntries) push(end int64, e *wmslog.Entry, c *entryChunk) {
	p.heap.Push(pendingEntry{end: end, seq: p.seq, entry: e, chunk: c})
	p.seq++
}

// flushThrough emits (and recycles) every buffered entry whose end
// time is at or before the start watermark — no still-active transfer
// can end earlier — or everything when all is set.
func (p *pendingEntries) flushThrough(start int64, all bool, sink func(*wmslog.Entry) error) error {
	for p.heap.Len() > 0 && (all || p.heap.Peek().end <= start) {
		pe := p.heap.Pop()
		if sink != nil {
			if err := sink(pe.entry); err != nil {
				p.pool.put(pe.entry, pe.chunk)
				return err
			}
		}
		p.pool.put(pe.entry, pe.chunk)
	}
	return nil
}
