package simulate

import (
	"math"
	"math/rand/v2"
)

// drawBandwidth models Figure 20's two modes.
//
// With probability CongestionFrac the transfer is congestion-bound:
// "extremely limited network resources" put its average bandwidth far
// below any access-link speed, here a low lognormal mode. Otherwise the
// transfer is client-bound: it runs at the client's access-link speed
// with small jitter, producing the discrete spikes on the right-hand side
// of the distribution.
//
// The returned bool reports whether the transfer was congestion-bound.
func (c *Config) drawBandwidth(accessBps int64, rng *rand.Rand) (int64, bool) {
	if rng.Float64() < c.CongestionFrac {
		bw := int64(math.Exp(c.CongestionMu + c.CongestionSigma*rng.NormFloat64()))
		if bw < 100 {
			bw = 100
		}
		// Congestion cannot exceed the access link either.
		if bw > accessBps {
			bw = accessBps
		}
		return bw, true
	}
	jitter := 1 + c.BandwidthJitter*(2*rng.Float64()-1)
	bw := int64(float64(accessBps) * jitter)
	if bw < 100 {
		bw = 100
	}
	return bw, false
}

// drawLoss models client-side packet loss: a small base rate for
// client-bound transfers, an order of magnitude worse under congestion.
func (c *Config) drawLoss(duration int64, congested bool, rng *rand.Rand) int64 {
	rate := c.BaseLossRate
	if congested {
		rate *= 12
	}
	// ~25 packets/second of stream; Poisson-approximate via a normal for
	// large means, exact small-count draw otherwise.
	mean := rate * 25 * float64(duration)
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		return int64(v)
	}
	// Knuth's Poisson draw for small means.
	l := math.Exp(-mean)
	var k int64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1_000 {
			return k
		}
	}
}

// cpuAt models server CPU utilization at a given concurrency level: a
// linear per-transfer cost plus bounded measurement noise, clamped to
// [0, 100]. With the default calibration the server stays far below 10%
// at the paper's peak concurrency (~4,000 transfers), reproducing the
// Section 2.4 audit.
func (c *Config) cpuAt(concurrent int, rng *rand.Rand) float64 {
	cpu := c.CPUPerTransfer*float64(concurrent) + c.CPUNoise*rng.Float64()
	if cpu < 0 {
		cpu = 0
	}
	if cpu > 100 {
		cpu = 100
	}
	return math.Round(cpu*100) / 100
}
