package simulate

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dist"
	"repro/internal/gismo"
	"repro/internal/ring"
	"repro/internal/workload"
)

const (
	// laneRingDepth is the capacity of each lane's input and output
	// SPSC ring: how far the dispatcher may run ahead of a worker, and
	// a worker ahead of the collector, before backpressure parks them.
	laneRingDepth = 512
	// dispatchStage is the per-lane staging-buffer size: the dispatcher
	// accumulates admitted events per lane and publishes them with one
	// bulk ring push (one atomic store + one wake per stage) instead of
	// one per event.
	dispatchStage = 64
	// maxReorderWindow caps the collector's reorder window so a huge
	// lane count cannot balloon the collector's footprint.
	maxReorderWindow = 32768
	// MaxServeLanes bounds the serve worker count.
	MaxServeLanes = 1024
)

// DefaultServeLanes is the default serve-lane count: one lane per
// schedulable CPU (GOMAXPROCS), clamped to [1, MaxServeLanes]. The
// served log is byte-identical at any lane count, so the default only
// chooses throughput, never output.
func DefaultServeLanes() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > MaxServeLanes {
		n = MaxServeLanes
	}
	return n
}

// reorderWindow sizes the collector's reorder window: one full output
// ring per lane, so the rings — not the window — are what backpressure
// a lane that runs ahead. Any size ≥ 1 is deadlock-free (see the
// liveness note on RunStreamSharded); the size only sets how often a
// skewed lane mix stalls placement.
func reorderWindow(lanes int) int {
	w := lanes * laneRingDepth
	if w > maxReorderWindow {
		w = maxReorderWindow
	}
	if w < 2*laneRingDepth {
		w = 2 * laneRingDepth
	}
	return w
}

// laneItem is one admitted event on its way to a serve worker: the
// event, its global admission sequence number, and the concurrency
// level the dispatcher observed at admission.
type laneItem struct {
	ev   workload.Event
	seq  int64
	conc int32
}

// laneResult is one served event on its way back to the collector,
// which restores the exact global admission order by reordering on
// seq.
type laneResult struct {
	seq   int64
	start int64
	sv    served
}

// releaseServed returns a discarded result's pooled entries to their
// owning lane chunks — the abort path, where no sink will ever see
// them.
func releaseServed(sv *served) {
	if sv.entryC != nil {
		sv.entryC.release()
	}
	if sv.dupC != nil {
		sv.dupC.release()
	}
	sv.entry, sv.entryC = nil, nil
	sv.dup, sv.dupC = nil, nil
}

// laneRouter fans admitted events out to the lane input rings through
// per-lane staging buffers: route appends to the event's lane stage,
// and a full stage is published with one SPSC.TryPushN — one atomic
// store and one wake per dispatchStage events instead of one per
// event. All input rings share a single producer gate (the dispatcher
// is the sole producer of every ring), so when no ring can take more
// the dispatcher parks once and any worker's Advance unparks it.
//
// Liveness: flushAll drains *every* lane's stage before parking. If a
// lane's staged items cannot flush, that lane's ring is full of
// strictly earlier, not-yet-served items — so the sequence the
// collector needs next is never stranded in staging; it is always
// already in a ring, a worker, or the reorder window, where the
// backpressure chain drains it.
type laneRouter struct {
	in    []*ring.SPSC[laneItem]
	stage []laneStage
	gate  *ring.Gate // shared producer gate across all input rings
	stop  <-chan struct{}
}

// laneStage is one lane's staging buffer; pos is the first index not
// yet pushed to the ring (a partial flush leaves pos < len(buf)).
type laneStage struct {
	buf []laneItem
	pos int
}

func newLaneRouter(in []*ring.SPSC[laneItem], gate *ring.Gate, stop <-chan struct{}) *laneRouter {
	rt := &laneRouter{in: in, stage: make([]laneStage, len(in)), gate: gate, stop: stop}
	for k := range rt.stage {
		rt.stage[k].buf = make([]laneItem, 0, dispatchStage)
	}
	return rt
}

// route stages it for lane, flushing when the stage fills. It returns
// false only if the run was aborted while blocked on full rings.
//
//lsm:hotpath
func (rt *laneRouter) route(lane int, it laneItem) bool {
	st := &rt.stage[lane]
	st.buf = append(st.buf, it)
	if len(st.buf) < cap(st.buf) {
		return true
	}
	st.pos += rt.in[lane].TryPushN(st.buf[st.pos:])
	if st.pos == len(st.buf) {
		st.buf, st.pos = st.buf[:0], 0
		return true
	}
	return rt.flushAll()
}

// flushRound makes one non-blocking pass over every stage, pushing
// what fits. It reports whether anything remains staged and whether
// this pass moved anything.
func (rt *laneRouter) flushRound() (pending, progress bool) {
	for k := range rt.stage {
		st := &rt.stage[k]
		if st.pos == len(st.buf) {
			st.buf, st.pos = st.buf[:0], 0
			continue
		}
		n := rt.in[k].TryPushN(st.buf[st.pos:])
		if n > 0 {
			progress = true
		}
		st.pos += n
		if st.pos == len(st.buf) {
			st.buf, st.pos = st.buf[:0], 0
		} else {
			pending = true
		}
	}
	return pending, progress
}

// flushAll drains every staged item into the rings, parking on the
// shared producer gate whenever a full pass makes no progress. It
// returns false if the run aborts while parked.
func (rt *laneRouter) flushAll() bool {
	for {
		pending, progress := rt.flushRound()
		if !pending {
			return true
		}
		if progress {
			continue
		}
		rt.gate.Prepare()
		if _, progress = rt.flushRound(); progress {
			rt.gate.Cancel()
			continue
		}
		if !rt.gate.Wait(rt.stop) {
			return false
		}
	}
}

// fusedDispatch merges a ShardedStream's shard slabs directly in the
// dispatcher: a loop-min scan over one cached head per shard, exactly
// the merge gismo's Next runs — but batch-at-a-time over slabs, with
// drained slabs recycled to their producing shard, and without the
// per-event interface call or the separate merge stage. admit is the
// dispatcher's validate-and-stage step; fusedDispatch returns false
// as soon as admit does.
//
//lsm:hotpath
func fusedDispatch(ss workload.ShardedStream, admit func(workload.Event) bool) bool {
	type shardCursor struct {
		hd    workload.Event // == slab[pos]; cached for the scan
		slab  []workload.Event
		pos   int
		shard int
	}
	// The slab contract says slabs are non-empty, but skipping empties
	// here keeps the merge correct for any conforming producer.
	nextSlab := func(s int) ([]workload.Event, bool) {
		for {
			slab, ok := ss.NextSlab(s)
			if !ok {
				return nil, false
			}
			if len(slab) > 0 {
				return slab, true
			}
			ss.RecycleSlab(s, slab)
		}
	}
	cursors := make([]shardCursor, 0, ss.Shards())
	for s := 0; s < ss.Shards(); s++ {
		if slab, ok := nextSlab(s); ok {
			cursors = append(cursors, shardCursor{hd: slab[0], slab: slab, shard: s})
		}
	}
	for len(cursors) > 0 {
		best := 0
		for i := 1; i < len(cursors); i++ {
			if cursors[i].hd.Less(cursors[best].hd) {
				best = i
			}
		}
		c := &cursors[best]
		if !admit(c.hd) {
			return false
		}
		c.pos++
		if c.pos < len(c.slab) {
			c.hd = c.slab[c.pos]
			continue
		}
		ss.RecycleSlab(c.shard, c.slab)
		if slab, ok := nextSlab(c.shard); ok {
			c.slab, c.pos, c.hd = slab, 0, slab[0]
			continue
		}
		last := len(cursors) - 1
		cursors[best] = cursors[last]
		cursors = cursors[:last]
	}
	return true
}

// RunStreamSharded is the parallel form of RunStream: a serial
// dispatcher admits events in start order (computing the concurrency
// level, the only cross-event state) and hash-partitions them across
// lanes client lanes; each lane worker computes its transfers'
// server-model draws and log entries independently, allocating entries
// from a private arena (see arena.go); and a collector merges the lane
// outputs back into admission order before running the same end-time
// reorder buffer as the sequential path.
//
// When src is a workload.ShardedStream (gismo's sharded generator),
// the dispatcher merges the shard slabs inline (see fusedDispatch)
// instead of pulling events one at a time through Next: the
// generate→serve corridor then runs shard → ring → merge+dispatch →
// lane with no intermediate merge goroutine and no per-event
// interface hop.
//
// Because every per-transfer draw is a pure function of (seed, event
// identity) — see serveLane — and the collector restores the exact
// admission order, the sinks observe byte-for-byte the sequence
// RunStream produces: the served log is invariant under the lane
// count. lanes = 1 runs the same pipeline with a single worker.
//
// Every handoff is a bounded SPSC ring (internal/ring): dispatcher →
// worker and worker → collector each have exactly one producer and one
// consumer, so an item crosses a stage for a slot copy plus one atomic
// store — no locks, no channel ops, no per-item allocation. The
// collector multiplexes all output rings through one shared gate and
// places results into a dense-sequence reorder window, leaving any
// result outside the window parked in its lane's ring (which
// backpressures that lane).
//
// Liveness: the result the collector needs next (seq == window lower
// bound) always flows unobstructed — every earlier sequence has been
// emitted, so nothing ahead of it in its lane's rings is blocked, and
// its window slot is by definition free. A lane that receives few (or
// no) events closes its rings at end of stream, which the collector
// observes through the same gate. On abort (a sink error), the stop
// channel unparks every stage and the collector drains the rings,
// releasing entries, until all lanes close.
func RunStreamSharded(src workload.Stream, pop *gismo.Population, horizon int64, cfg Config, seed uint64, lanes int, sinks StreamSinks) (*StreamResult, error) {
	if lanes < 1 || lanes > MaxServeLanes {
		return nil, fmt.Errorf("%w: serve lanes %d", ErrBadConfig, lanes)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pop == nil || pop.Size() == 0 {
		return nil, fmt.Errorf("%w: empty population", ErrBadConfig)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadConfig, horizon)
	}

	stop := make(chan struct{}) // closed by the collector on abort
	collGate := ring.NewGate()  // shared consumer gate: one park site for all output rings
	prodGate := ring.NewGate()  // shared producer gate: one park site for all input rings
	in := make([]*ring.SPSC[laneItem], lanes)
	out := make([]*ring.SPSC[laneResult], lanes)
	for k := 0; k < lanes; k++ {
		in[k] = ring.NewSPSC[laneItem](laneRingDepth, prodGate, ring.NewGate())
		out[k] = ring.NewSPSC[laneResult](laneRingDepth, ring.NewGate(), collGate)
	}

	// Dispatcher: the serial prologue. Validates the stream, tracks
	// concurrency, and fans events out by client hash through per-lane
	// staging buffers (see laneRouter). When the source is a
	// workload.ShardedStream, the K-way merge runs inline here over the
	// shard slabs — the fused form skips the per-event interface call
	// and the generator-side merge goroutine entirely. The dispatcher's
	// error and the concurrency peak are published before the input
	// rings close — which happens-before each worker's output ring
	// closes, which happens-before the collector's final reads (via the
	// WaitGroups below).
	var dispatchErr error
	var peak int
	var admitted int64
	var dispatcherDone sync.WaitGroup
	dispatcherDone.Add(1)
	go func() {
		defer dispatcherDone.Done()
		concurrency := newConcurrencyTracker()
		router := newLaneRouter(in, prodGate, stop)
		var lastStart int64
		var seq int64
		defer func() {
			workload.CloseStream(src)
			peak = concurrency.peak
			admitted = seq
			for _, r := range in {
				r.Close()
			}
		}()
		// admit validates one event, records its concurrency level, and
		// stages it for its lane. It returns false on a stream-contract
		// violation (dispatchErr set) or on abort; either way staged but
		// unflushed items are dropped — the run is failing and the
		// collector only cross-checks counts on the success path.
		admit := func(ev workload.Event) bool {
			if ev.Client < 0 || ev.Client >= pop.Size() {
				dispatchErr = fmt.Errorf("%w: client %d outside population of %d", ErrBadConfig, ev.Client, pop.Size())
				return false
			}
			if seq > 0 && ev.Start < lastStart {
				dispatchErr = fmt.Errorf("%w: stream not in start order (%d after %d)", ErrBadConfig, ev.Start, lastStart)
				return false
			}
			lastStart = ev.Start
			conc := concurrency.admit(ev.Start, ev.End())
			lane := int(dist.Mix64(uint64(ev.Client), laneHash) % uint64(lanes))
			if !router.route(lane, laneItem{ev: ev, seq: seq, conc: int32(conc)}) {
				return false // aborted
			}
			seq++
			return true
		}
		if ss, ok := src.(workload.ShardedStream); ok {
			if !fusedDispatch(ss, admit) {
				return
			}
		} else {
			for {
				ev, ok := src.Next()
				if !ok {
					break
				}
				if !admit(ev) {
					return
				}
			}
		}
		router.flushAll() // publish the tail before the rings close
	}()

	// Lane workers: all the per-transfer computation — server-model
	// draws, byte accounting, entry rendering into arena-backed
	// entries — runs here, in parallel across lanes, each lane
	// funneling into its own output ring.
	var workers sync.WaitGroup
	workers.Add(lanes)
	for k := 0; k < lanes; k++ {
		go func(k int) {
			defer workers.Done()
			defer out[k].Close()
			arena := newLaneArena()
			defer arena.close()
			es := newEventServer(&cfg, pop, horizon, seed, arena, sinks)
			var r laneResult
			for {
				it, ok := in[k].Pop(stop)
				if !ok {
					return // input drained, or aborted
				}
				r.seq = it.seq
				r.start = it.ev.Start
				es.serve(it.ev, int(it.conc), &r.sv)
				if !out[k].Push(r, stop) {
					releaseServed(&r.sv) // aborted: nobody will sink it
					return
				}
			}
		}(k)
	}

	// Collector (this goroutine): place each lane's results into a
	// dense-sequence reorder window, drain the window in admission
	// order through the same transfer-sink / end-time-buffer emission
	// logic as the sequential path, and release each entry's arena
	// chunk once its sink call returns.
	res := &StreamResult{}
	pending := newPendingEntries(chunkReleaser{})
	reorder := ring.NewReorder[laneResult](reorderWindow(lanes))
	var firstErr error
	abort := func(err error) {
		if firstErr == nil {
			firstErr = err
			close(stop)
		}
	}
	emit := func(r *laneResult) error {
		sv := &r.sv
		if err := pending.flushThrough(r.start, false, sinks.Entry); err != nil {
			releaseServed(sv)
			return err
		}
		res.Transfers++
		res.TotalBytes += sv.bytes
		if sinks.Transfer != nil {
			if err := sinks.Transfer(sv.transfer); err != nil {
				releaseServed(sv)
				return err
			}
		}
		if sv.entry != nil {
			pending.push(sv.end, sv.entry, sv.entryC)
			if sv.dup != nil {
				pending.push(sv.end, sv.dup, sv.dupC)
			}
		}
		if sv.injected {
			res.Injected++
		}
		return nil
	}

	// Done lanes are recorded once and then skipped: a permanently-Done
	// ring must not count as fresh work in the park re-check, or the
	// collector would busy-spin from the first lane to finish.
	done := make([]bool, lanes)
	remaining := lanes
	for remaining > 0 {
		progress := false
		for k, r := range out {
			if done[k] {
				continue
			}
			for {
				p, ok := r.Peek()
				if !ok {
					break
				}
				if firstErr != nil {
					// Abort drain: discard, releasing pooled entries.
					releaseServed(&p.sv)
					r.Advance()
					progress = true
					continue
				}
				if !reorder.Placeable(uint64(p.seq)) {
					// Out of window: leave it parked in the ring; the
					// window advances via the lane holding seq == next.
					break
				}
				if err := reorder.Place(uint64(p.seq), *p); err != nil {
					abort(err) // impossible by construction; drained above
					continue
				}
				r.Advance()
				progress = true
			}
			if r.Done() {
				done[k] = true
				remaining--
				progress = true
			}
		}
		for firstErr == nil {
			p, ok := reorder.PeekNext()
			if !ok {
				break
			}
			if err := emit(p); err != nil {
				abort(err)
			}
			reorder.Release()
			progress = true
		}
		if remaining > 0 && !progress {
			// Park until a lane pushes or closes. The re-check must
			// mirror the progress condition exactly: only a placeable
			// head (any head during abort drain) or an unrecorded close
			// is work — an unplaceable head must NOT prevent parking,
			// because its wake arrives via the lane delivering seq ==
			// next.
			collGate.Prepare()
			again := false
			for k, r := range out {
				if done[k] {
					continue
				}
				if p, ok := r.Peek(); ok {
					if firstErr != nil || reorder.Placeable(uint64(p.seq)) {
						again = true
						break
					}
				} else if r.Done() {
					again = true
					break
				}
			}
			if again {
				collGate.Cancel()
			} else {
				collGate.Wait(nil)
			}
		}
	}
	workers.Wait()
	dispatcherDone.Wait()

	// Every ring is closed and drained; recycle anything still buffered
	// before reporting an error (the sinks never see it).
	drainBuffers := func() {
		for reorder.Len() > 0 {
			if p, ok := reorder.PeekNext(); ok {
				releaseServed(&p.sv)
				reorder.Release()
			} else {
				reorder.Skip()
			}
		}
		_ = pending.flushThrough(0, true, nil) // nil sink never errors
	}
	if firstErr != nil {
		drainBuffers()
		return nil, firstErr
	}
	if dispatchErr != nil {
		drainBuffers()
		return nil, dispatchErr
	}
	if n := reorder.Len(); n != 0 {
		seq := reorder.Next()
		drainBuffers()
		return nil, fmt.Errorf("simulate: sharded serve lost sequence %d (%d results stranded)", seq, n)
	}
	if res.Transfers == 0 {
		return nil, fmt.Errorf("%w: empty workload", ErrBadConfig)
	}
	if int64(res.Transfers) != admitted {
		drainBuffers()
		return nil, fmt.Errorf("simulate: sharded serve emitted %d of %d admitted transfers", res.Transfers, admitted)
	}
	if err := pending.flushThrough(0, true, sinks.Entry); err != nil {
		drainBuffers()
		return nil, err
	}
	res.PeakConcurrency = peak
	return res, nil
}
