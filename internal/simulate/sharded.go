package simulate

import (
	"fmt"
	"sync"

	"repro/internal/dist"
	"repro/internal/gismo"
	"repro/internal/heapx"
	"repro/internal/workload"
)

const (
	// serveBatch is the number of events handed across each pipeline
	// channel per operation, amortizing channel overhead.
	serveBatch = 512
	// serveDepth is the per-lane input channel depth, bounding how far
	// the dispatcher runs ahead of a worker.
	serveDepth = 4
	// MaxServeLanes bounds the serve worker count.
	MaxServeLanes = 1024
)

// laneItem is one admitted event on its way to a serve worker: the
// event, its global admission sequence number, and the concurrency
// level the dispatcher observed at admission.
type laneItem struct {
	ev   workload.Event
	seq  int64
	conc int32
}

// laneResult is one served event on its way back to the collector,
// which restores the exact global admission order by reordering on
// seq.
type laneResult struct {
	seq   int64
	start int64
	sv    served
}

// RunStreamSharded is the parallel form of RunStream: a serial
// dispatcher admits events in start order (computing the concurrency
// level, the only cross-event state), hash-partitions them across
// lanes client lanes, each lane worker computes its transfers' server-
// model draws and log entries independently, and a collector reorders
// the results back into admission order (by sequence number) before
// running the same end-time reorder buffer as the sequential path.
//
// Because every per-transfer draw is a pure function of (seed, event
// identity) — see serveLane — and the collector restores the exact
// admission order, the sinks observe byte-for-byte the sequence
// RunStream produces: the served log is invariant under the lane
// count. lanes = 1 runs the same pipeline with a single worker.
//
// Liveness: all workers share one output channel and the collector
// only ever blocks on it, so a lane that happens to receive few (or
// no) events can never wedge the pipeline; the dispatcher force-
// flushes every partial batch once per serveBatch admissions, which
// bounds both the collector's reorder buffer and the latency of a
// cold lane's events.
func RunStreamSharded(src workload.Stream, pop *gismo.Population, horizon int64, cfg Config, seed uint64, lanes int, sinks StreamSinks) (*StreamResult, error) {
	if lanes < 1 || lanes > MaxServeLanes {
		return nil, fmt.Errorf("%w: serve lanes %d", ErrBadConfig, lanes)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pop == nil || pop.Size() == 0 {
		return nil, fmt.Errorf("%w: empty population", ErrBadConfig)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadConfig, horizon)
	}

	pool := newSyncEntryPool()
	stop := make(chan struct{}) // closed by the collector on abort
	laneCh := make([]chan []laneItem, lanes)
	for k := 0; k < lanes; k++ {
		laneCh[k] = make(chan []laneItem, serveDepth)
	}
	outCh := make(chan []laneResult, lanes*serveDepth)
	// Batch slices cycle between the stages through sync.Pools, so the
	// steady-state pipeline allocates no per-batch garbage.
	itemBatches := &batchPool[laneItem]{}
	resultBatches := &batchPool[laneResult]{}

	// Dispatcher: the serial prologue. Validates the stream, tracks
	// concurrency, and fans events out by client hash. Its error and
	// the concurrency peak are published before the lane channels
	// close, which happens-before outCh closes (via the worker
	// WaitGroup), which happens-before the collector reads them.
	var dispatchErr error
	var peak int
	var admitted int64
	go func() {
		defer func() {
			for _, ch := range laneCh {
				close(ch)
			}
		}()
		defer workload.CloseStream(src)
		concurrency := newConcurrencyTracker()
		batches := make([][]laneItem, lanes)
		for k := range batches {
			batches[k] = itemBatches.get()
		}
		send := func(lane int) bool {
			select {
			case laneCh[lane] <- batches[lane]:
				batches[lane] = itemBatches.get()
				return true
			case <-stop:
				return false
			}
		}
		var lastStart int64
		var seq int64
		for {
			ev, ok := src.Next()
			if !ok {
				break
			}
			if ev.Client < 0 || ev.Client >= pop.Size() {
				dispatchErr = fmt.Errorf("%w: client %d outside population of %d", ErrBadConfig, ev.Client, pop.Size())
				break
			}
			if seq > 0 && ev.Start < lastStart {
				dispatchErr = fmt.Errorf("%w: stream not in start order (%d after %d)", ErrBadConfig, ev.Start, lastStart)
				break
			}
			lastStart = ev.Start
			conc := concurrency.admit(ev.Start, ev.End())
			lane := int(dist.Mix64(uint64(ev.Client), laneHash) % uint64(lanes))
			batches[lane] = append(batches[lane], laneItem{ev: ev, seq: seq, conc: int32(conc)})
			seq++
			if len(batches[lane]) == serveBatch {
				if !send(lane) {
					return
				}
			}
			// Flush cadence: a skewed client hash must not strand a
			// cold lane's partial batch (and with it a low seq the
			// collector is waiting to emit) while hot lanes stream on.
			if seq%serveBatch == 0 {
				for l := range batches {
					if len(batches[l]) > 0 && !send(l) {
						return
					}
				}
			}
		}
		for lane, b := range batches {
			if len(b) == 0 {
				continue
			}
			select {
			case laneCh[lane] <- b:
			case <-stop:
				return
			}
		}
		peak = concurrency.peak
		admitted = seq
	}()

	// Lane workers: all the per-transfer computation — server-model
	// draws, byte accounting, entry rendering into pooled entries —
	// runs here, in parallel across lanes, funneling into the shared
	// output channel.
	var workers sync.WaitGroup
	workers.Add(lanes)
	for k := 0; k < lanes; k++ {
		go func(k int) {
			defer workers.Done()
			es := newEventServer(&cfg, pop, horizon, seed, pool, sinks)
			out := resultBatches.get()
			flush := func() bool {
				select {
				case outCh <- out:
					out = resultBatches.get()
					return true
				case <-stop:
					return false
				}
			}
			for batch := range laneCh[k] {
				for _, it := range batch {
					out = append(out, laneResult{seq: it.seq, start: it.ev.Start})
					es.serve(it.ev, int(it.conc), &out[len(out)-1].sv)
				}
				itemBatches.put(batch)
				// One result batch per input batch: results reach the
				// collector as promptly as events reached the worker.
				if len(out) > 0 && !flush() {
					return
				}
			}
		}(k)
	}
	go func() {
		workers.Wait()
		close(outCh)
	}()

	// Collector (this goroutine): reorder the shared result stream
	// back into global admission order with a min-heap on seq —
	// sequence numbers are dense, so the heap drains every run of
	// contiguous results — then run the identical transfer-sink /
	// reorder-buffer emission logic as the sequential path.
	res := &StreamResult{}
	pending := newPendingEntries(pool)
	var firstErr error
	abort := func(err error) {
		if firstErr == nil {
			firstErr = err
			close(stop)
		}
	}
	emit := func(r laneResult) error {
		if err := pending.flushThrough(r.start, false, sinks.Entry); err != nil {
			return err
		}
		res.Transfers++
		res.TotalBytes += r.sv.bytes
		if sinks.Transfer != nil {
			if err := sinks.Transfer(r.sv.transfer); err != nil {
				return err
			}
		}
		if r.sv.entry != nil {
			pending.push(r.sv.end, r.sv.entry)
			if r.sv.dup != nil {
				pending.push(r.sv.end, r.sv.dup)
			}
		}
		if r.sv.injected {
			res.Injected++
		}
		return nil
	}

	reorder := heapx.New(func(a, b laneResult) bool { return a.seq < b.seq })
	var next int64
	for batch := range outCh {
		if firstErr != nil {
			continue // draining so the producers observe stop and exit
		}
		for _, r := range batch {
			reorder.Push(r)
		}
		resultBatches.put(batch)
		for reorder.Len() > 0 && reorder.Peek().seq == next {
			next++
			if err := emit(reorder.Pop()); err != nil {
				abort(err)
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// outCh is closed: the dispatcher and all workers are done and the
	// published error/peak are visible; every result is in the heap.
	if dispatchErr != nil {
		return nil, dispatchErr
	}
	for reorder.Len() > 0 {
		r := reorder.Pop()
		if r.seq != next {
			return nil, fmt.Errorf("simulate: sharded serve lost seq %d (got %d)", next, r.seq)
		}
		next++
		if err := emit(r); err != nil {
			return nil, err
		}
	}
	if res.Transfers == 0 {
		return nil, fmt.Errorf("%w: empty workload", ErrBadConfig)
	}
	if int64(res.Transfers) != admitted {
		return nil, fmt.Errorf("simulate: sharded serve emitted %d of %d admitted transfers", res.Transfers, admitted)
	}
	if err := pending.flushThrough(0, true, sinks.Entry); err != nil {
		return nil, err
	}
	res.PeakConcurrency = peak
	return res, nil
}

// batchPool recycles batch slices across pipeline stages.
type batchPool[T any] struct {
	p sync.Pool
}

func (bp *batchPool[T]) get() []T {
	if v := bp.p.Get(); v != nil {
		return (*v.(*[]T))[:0]
	}
	return make([]T, 0, serveBatch)
}

func (bp *batchPool[T]) put(b []T) {
	bp.p.Put(&b)
}
