package simulate

import "testing"

// TestLaneArenaChunkLifetime pins the arena's refcount protocol: a
// chunk recycles exactly when it is sealed (the worker moved on) AND
// every entry has been released (the collector sank them) — never
// while either side still holds it.
func TestLaneArenaChunkLifetime(t *testing.T) {
	a := newLaneArena()
	type handle struct{ c *entryChunk }
	hs := make([]handle, 0, 2*entryChunkSize)
	for i := 0; i < 2*entryChunkSize; i++ {
		e, c := a.get()
		e.Duration = int64(i)
		hs = append(hs, handle{c})
	}
	first := hs[0].c
	if hs[entryChunkSize-1].c != first {
		t.Fatal("first chunk sealed before entryChunkSize entries")
	}
	second := hs[entryChunkSize].c
	if second == first {
		t.Fatal("chunk did not turn over at entryChunkSize entries")
	}

	// The first chunk is sealed (the arena allocates from the second);
	// releasing all but one of its entries must not recycle it.
	for _, h := range hs[:entryChunkSize-1] {
		h.c.release()
	}
	if len(a.free) != 0 {
		t.Fatal("chunk recycled with an entry still outstanding")
	}
	hs[entryChunkSize-1].c.release()
	if len(a.free) != 1 {
		t.Fatalf("sealed fully-released chunk not recycled: free = %d", len(a.free))
	}

	// The second chunk is still open: releasing every entry must not
	// recycle it — the worker's open-hold keeps it alive for further
	// allocation.
	for _, h := range hs[entryChunkSize:] {
		h.c.release()
	}
	if len(a.free) != 1 {
		t.Fatal("open chunk recycled out from under the worker")
	}
	a.close()
	if len(a.free) != 2 {
		t.Fatalf("free chunks after close = %d, want 2", len(a.free))
	}

	// A fresh allocation must reuse a recycled chunk, not grow the heap.
	_, c := a.get()
	if c != first && c != second {
		t.Fatal("allocation after recycle did not reuse a free chunk")
	}
	a.close()
}

// TestChunkReleaserRoutesToOwner: the collector-side pool releases each
// entry to its owning chunk and tolerates chunkless (sequential-path)
// entries.
func TestChunkReleaserRoutesToOwner(t *testing.T) {
	a := newLaneArena()
	e, c := a.get()
	a.seal()
	var r chunkReleaser
	r.put(e, c)
	if len(a.free) != 1 {
		t.Fatal("release through chunkReleaser did not recycle the sealed chunk")
	}
	r.put(nil, nil) // chunkless entries are a no-op, not a crash

	defer func() {
		if recover() == nil {
			t.Fatal("chunkReleaser.get did not panic")
		}
	}()
	r.get()
}
