package simulate

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// The paper's two live objects each carried "(audio and video) feeds
// captured from one of 48 different cameras embedded in the environment
// surrounding the contestants" (Section 2.1). The camera in use is
// editorial state on the server side — it does not change the logged URI —
// but it drives the content dynamics that make live access object-driven.
// FeedSchedule models it so examples can correlate audience behaviour with
// camera activity.

// NumCameras is the paper's camera count.
const NumCameras = 48

// CameraSwitch is one scheduled switch of a live object to a camera.
type CameraSwitch struct {
	At     int64 // seconds since trace start
	Camera int   // 0-based camera index
}

// FeedSchedule is the camera timeline of one live object.
type FeedSchedule struct {
	Object   int
	Switches []CameraSwitch // sorted by At; first entry at 0
}

// NewFeedSchedule generates a camera timeline over [0, horizon): switches
// arrive as a Poisson process with the given mean dwell time (seconds per
// camera), choosing a uniformly random next camera.
func NewFeedSchedule(object int, horizon int64, meanDwell float64, rng *rand.Rand) (*FeedSchedule, error) {
	if horizon <= 0 || meanDwell <= 0 {
		return nil, fmt.Errorf("%w: horizon=%d meanDwell=%v", ErrBadConfig, horizon, meanDwell)
	}
	fs := &FeedSchedule{Object: object}
	t := int64(0)
	cam := rng.IntN(NumCameras)
	for t < horizon {
		fs.Switches = append(fs.Switches, CameraSwitch{At: t, Camera: cam})
		t += int64(rng.ExpFloat64()*meanDwell) + 1
		next := rng.IntN(NumCameras - 1)
		if next >= cam {
			next++ // uniform over the other 47 cameras
		}
		cam = next
	}
	return fs, nil
}

// CameraAt returns the camera active at time t (clamped to the schedule).
func (fs *FeedSchedule) CameraAt(t int64) int {
	i := sort.Search(len(fs.Switches), func(i int) bool {
		return fs.Switches[i].At > t
	})
	if i == 0 {
		return fs.Switches[0].Camera
	}
	return fs.Switches[i-1].Camera
}

// DwellTimes returns the duration each switch remained active, with the
// final switch running to the horizon.
func (fs *FeedSchedule) DwellTimes(horizon int64) []float64 {
	out := make([]float64, 0, len(fs.Switches))
	for i, sw := range fs.Switches {
		end := horizon
		if i+1 < len(fs.Switches) {
			end = fs.Switches[i+1].At
		}
		out = append(out, float64(end-sw.At))
	}
	return out
}
