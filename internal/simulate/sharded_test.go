package simulate

import (
	"bytes"
	"crypto/md5"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"repro/internal/gismo"
	"repro/internal/trace"
	"repro/internal/wmslog"
	"repro/internal/workload"
)

// serveToLog runs the given serve function over a fresh replay of w and
// returns the md5 of the emitted WMS log plus the run summary.
func serveToLog(t *testing.T, w interface {
	Stream() workload.Stream
}, run func(src workload.Stream, sinks StreamSinks) (*StreamResult, error)) ([md5.Size]byte, *StreamResult) {
	t.Helper()
	var buf bytes.Buffer
	lw := wmslog.NewWriter(&buf)
	res, err := run(w.Stream(), StreamSinks{Entry: lw.Write})
	if err != nil {
		t.Fatal(err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	return md5.Sum(buf.Bytes()), res
}

// TestRunStreamShardedLogInvariant is the sharded-serve contract: the
// served WMS log must be md5-identical between the sequential path and
// the sharded path at every lane count, for the same seed.
func TestRunStreamShardedLogInvariant(t *testing.T) {
	w := testWorkload(t, 21)
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 2000 // exercise injection across lanes
	const seed = 99

	sums := map[string][md5.Size]byte{}
	results := map[string]*StreamResult{}
	sums["sequential"], results["sequential"] = serveToLog(t, w,
		func(src workload.Stream, sinks StreamSinks) (*StreamResult, error) {
			return RunStream(src, w.Population, w.Model.Horizon, cfg, seed, sinks)
		})
	for _, lanes := range []int{1, 4, 8} {
		key := fmt.Sprintf("lanes=%d", lanes)
		sums[key], results[key] = serveToLog(t, w,
			func(src workload.Stream, sinks StreamSinks) (*StreamResult, error) {
				return RunStreamSharded(src, w.Population, w.Model.Horizon, cfg, seed, lanes, sinks)
			})
	}

	base := results["sequential"]
	if base.Injected == 0 {
		t.Fatal("fixture injected nothing; the test would not cover spanning twins")
	}
	for key, sum := range sums {
		if sum != sums["sequential"] {
			t.Errorf("%s: log md5 differs from sequential", key)
		}
		r := results[key]
		if *r != *base {
			t.Errorf("%s: result %+v differs from sequential %+v", key, r, base)
		}
	}
}

// TestRunStreamShardedMatchesSinks pins the transfer-sink order and
// content of the sharded path to the sequential one.
func TestRunStreamShardedMatchesSinks(t *testing.T) {
	w := testWorkload(t, 22)
	cfg := DefaultConfig()
	const seed = 7

	collect := func(run func(src workload.Stream, sinks StreamSinks) (*StreamResult, error)) []trace.Transfer {
		var out []trace.Transfer
		_, err := run(w.Stream(), StreamSinks{
			Transfer: func(tr trace.Transfer) error { out = append(out, tr); return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seqT := collect(func(src workload.Stream, sinks StreamSinks) (*StreamResult, error) {
		return RunStream(src, w.Population, w.Model.Horizon, cfg, seed, sinks)
	})
	shT := collect(func(src workload.Stream, sinks StreamSinks) (*StreamResult, error) {
		return RunStreamSharded(src, w.Population, w.Model.Horizon, cfg, seed, 5, sinks)
	})
	if len(seqT) != len(shT) {
		t.Fatalf("transfer counts differ: %d vs %d", len(seqT), len(shT))
	}
	for i := range seqT {
		if seqT[i] != shT[i] {
			t.Fatalf("transfer %d differs:\nseq:     %+v\nsharded: %+v", i, seqT[i], shT[i])
		}
	}
}

// TestRunStreamShardedValidation: the sharded path must reject exactly
// what the sequential path rejects, without deadlocking its pipeline.
func TestRunStreamShardedValidation(t *testing.T) {
	w := testWorkload(t, 2)
	cfg := DefaultConfig()

	if _, err := RunStreamSharded(w.Stream(), w.Population, w.Model.Horizon, cfg, 1, 0, StreamSinks{}); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := RunStreamSharded(w.Stream(), nil, w.Model.Horizon, cfg, 1, 2, StreamSinks{}); err == nil {
		t.Error("nil population accepted")
	}
	if _, err := RunStreamSharded(workload.NewSliceStream(nil), w.Population, w.Model.Horizon, cfg, 1, 2, StreamSinks{}); err == nil {
		t.Error("empty stream accepted")
	}
	bad := workload.NewSliceStream([]workload.Event{
		{Session: 0, Start: 100, Duration: 1},
		{Session: 1, Start: 50, Duration: 1},
	})
	if _, err := RunStreamSharded(bad, w.Population, w.Model.Horizon, cfg, 1, 2, StreamSinks{}); err == nil {
		t.Error("out-of-order stream accepted")
	}
	escape := workload.NewSliceStream([]workload.Event{
		{Session: 0, Client: w.Population.Size(), Start: 1, Duration: 1},
	})
	if _, err := RunStreamSharded(escape, w.Population, w.Model.Horizon, cfg, 1, 2, StreamSinks{}); err == nil {
		t.Error("client outside population accepted")
	}
}

// TestRunStreamShardedSkewedLanes is the liveness regression test for
// the hash-skew deadlock: a stream whose events all hash to one lane
// (a single client) must still complete at any lane count — the
// collector must never block on a cold lane while hot lanes stall the
// pipeline — AND the maximally skewed log must stay md5-identical to
// the sequential one. Guarded by a timeout so a regression fails
// instead of hanging the suite.
func TestRunStreamShardedSkewedLanes(t *testing.T) {
	m, err := gismo.Scaled(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := gismo.NewPopulation(1, m.Topology, rand.New(rand.NewPCG(4, 0)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 0 // entry count must equal the event count
	const n = 20_000
	const seed = 9

	logMD5 := func(run func(src workload.Stream, sinks StreamSinks) (*StreamResult, error)) ([md5.Size]byte, int, error) {
		var buf bytes.Buffer
		lw := wmslog.NewWriter(&buf)
		res, err := run(&syntheticStream{n: n, clients: 1}, StreamSinks{Entry: lw.Write})
		if err != nil {
			return [md5.Size]byte{}, 0, err
		}
		if err := lw.Flush(); err != nil {
			return [md5.Size]byte{}, 0, err
		}
		return md5.Sum(buf.Bytes()), res.Transfers, nil
	}
	seqSum, seqN, err := logMD5(func(src workload.Stream, sinks StreamSinks) (*StreamResult, error) {
		return RunStream(src, pop, int64(n), cfg, seed, sinks)
	})
	if err != nil {
		t.Fatal(err)
	}
	if seqN != n {
		t.Fatalf("sequential served %d/%d transfers", seqN, n)
	}

	for _, lanes := range []int{2, 4, 8} {
		type outcome struct {
			sum [md5.Size]byte
			n   int
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			sum, served, err := logMD5(func(src workload.Stream, sinks StreamSinks) (*StreamResult, error) {
				return RunStreamSharded(src, pop, int64(n), cfg, seed, lanes, sinks)
			})
			done <- outcome{sum, served, err}
		}()
		select {
		case o := <-done:
			if o.err != nil {
				t.Fatalf("lanes=%d: %v", lanes, o.err)
			}
			if o.n != n {
				t.Fatalf("lanes=%d: served %d/%d transfers", lanes, o.n, n)
			}
			if o.sum != seqSum {
				t.Errorf("lanes=%d: skewed log md5 differs from sequential", lanes)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("lanes=%d: sharded serve deadlocked on a skewed lane distribution", lanes)
		}
	}
}

// TestRunStreamShardedSinkError: a failing sink mid-run aborts the
// whole pipeline promptly — dispatcher, every lane worker, and the
// collector — surfacing the sink's error rather than deadlocking,
// whichever sink fails and at any lane count. Timeout-guarded so a
// liveness regression fails instead of hanging the suite.
func TestRunStreamShardedSinkError(t *testing.T) {
	w := testWorkload(t, 23)
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 2000
	boom := errors.New("sink boom")

	for _, lanes := range []int{1, 4, 8} {
		for _, kind := range []string{"transfer", "entry"} {
			t.Run(fmt.Sprintf("%s/lanes=%d", kind, lanes), func(t *testing.T) {
				n := 0
				fail := func() error {
					n++
					if n == 10 {
						return boom
					}
					return nil
				}
				sinks := StreamSinks{}
				switch kind {
				case "transfer":
					sinks.Transfer = func(tr trace.Transfer) error { return fail() }
					// Entries must still be produced (and then drained
					// without leaking) when the other sink aborts.
					sinks.Entry = func(e *wmslog.Entry) error { return nil }
				case "entry":
					sinks.Entry = func(e *wmslog.Entry) error { return fail() }
				}
				done := make(chan error, 1)
				go func() {
					_, err := RunStreamSharded(w.Stream(), w.Population, w.Model.Horizon, cfg, 1, lanes, sinks)
					done <- err
				}()
				select {
				case err := <-done:
					if !errors.Is(err, boom) {
						t.Fatalf("err = %v, want sink error", err)
					}
				case <-time.After(60 * time.Second):
					t.Fatal("sharded serve wedged after a sink error")
				}
			})
		}
	}
}

// TestRunStreamShardedMemoryBounded is the arena-recycling contract:
// a long sharded run's live heap must stay bounded by the pipeline's
// occupancy (rings + reorder window + in-flight arena chunks), not
// grow with the transfer count — chunks must actually cycle back from
// the collector to the lane workers.
func TestRunStreamShardedMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory measurement in -short mode")
	}
	m, err := gismo.Scaled(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := gismo.NewPopulation(64, m.Topology, rand.New(rand.NewPCG(5, 0)))
	if err != nil {
		t.Fatal(err)
	}

	const n = 400_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 0
	var served int
	res, err := RunStreamSharded(&syntheticStream{n: n, clients: pop.Size()}, pop, int64(n), cfg, 3, 4, StreamSinks{
		Entry: func(e *wmslog.Entry) error { served++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if res.Transfers != n || served != n {
		t.Fatalf("served %d/%d transfers (%d entries)", res.Transfers, n, served)
	}

	// Buffering the entries would cost ~100 MB; the pipeline needs only
	// its rings, the reorder window, and the circulating chunks. Allow
	// a generous 24 MB for noise.
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const limit = 24 << 20
	if growth > limit {
		t.Errorf("live heap grew %d bytes during sharded run, want < %d", growth, limit)
	}
}
