package simulate

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"repro/internal/gismo"
	"repro/internal/trace"
	"repro/internal/wmslog"
	"repro/internal/workload"
)

// TestRunStreamMatchesRun pins the wrapper to the stream: collecting
// RunStream's sinks must reproduce Run exactly, entry for entry. The
// entry sink copies, per the StreamSinks pooling contract.
func TestRunStreamMatchesRun(t *testing.T) {
	w := testWorkload(t, 13)
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 1000

	batch, err := Run(w, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}

	var transfers []trace.Transfer
	var entries []*wmslog.Entry
	res, err := RunStream(w.Stream(), w.Population, w.Model.Horizon, cfg, 5, StreamSinks{
		Transfer: func(tr trace.Transfer) error { transfers = append(transfers, tr); return nil },
		Entry: func(e *wmslog.Entry) error {
			cp := *e
			entries = append(entries, &cp)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != len(w.Requests) {
		t.Fatalf("stream served %d transfers, want %d", res.Transfers, len(w.Requests))
	}
	if res.PeakConcurrency != batch.PeakConcurrency {
		t.Errorf("peak: stream %d vs batch %d", res.PeakConcurrency, batch.PeakConcurrency)
	}
	if res.Injected != batch.Injected {
		t.Errorf("injected: stream %d vs batch %d", res.Injected, batch.Injected)
	}
	if len(entries) != len(batch.Entries) {
		t.Fatalf("entries: stream %d vs batch %d", len(entries), len(batch.Entries))
	}
	for i := range entries {
		if *entries[i] != *batch.Entries[i] {
			t.Fatalf("entry %d differs:\nstream: %+v\nbatch:  %+v", i, entries[i], batch.Entries[i])
		}
	}
	if res.TotalBytes != batch.Trace.TotalBytes() {
		t.Errorf("bytes: stream %d vs batch %d", res.TotalBytes, batch.Trace.TotalBytes())
	}
	// Transfers arrive in start order and match the batch trace's
	// pre-sort content (trace.New re-sorts with a different tie-break,
	// so compare as multisets via totals).
	for i := 1; i < len(transfers); i++ {
		if transfers[i].Start < transfers[i-1].Start {
			t.Fatal("transfer sink not in start order")
		}
	}
}

func TestRunStreamValidatesInput(t *testing.T) {
	w := testWorkload(t, 2)
	cfg := DefaultConfig()

	if _, err := RunStream(w.Stream(), nil, w.Model.Horizon, cfg, 1, StreamSinks{}); err == nil {
		t.Error("nil population accepted")
	}
	if _, err := RunStream(w.Stream(), w.Population, 0, cfg, 1, StreamSinks{}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := RunStream(workload.NewSliceStream(nil), w.Population, w.Model.Horizon, cfg, 1, StreamSinks{}); err == nil {
		t.Error("empty stream accepted")
	}
	// Out-of-order stream must be rejected, not silently mis-served.
	bad := workload.NewSliceStream([]workload.Event{
		{Session: 0, Start: 100, Duration: 1},
		{Session: 1, Start: 50, Duration: 1},
	})
	if _, err := RunStream(bad, w.Population, w.Model.Horizon, cfg, 1, StreamSinks{}); err == nil {
		t.Error("out-of-order stream accepted")
	}
	// Client outside the population must be rejected.
	escape := workload.NewSliceStream([]workload.Event{
		{Session: 0, Client: w.Population.Size(), Start: 1, Duration: 1},
	})
	if _, err := RunStream(escape, w.Population, w.Model.Horizon, cfg, 1, StreamSinks{}); err == nil {
		t.Error("client outside population accepted")
	}
}

// syntheticStream fabricates events lazily so the test can serve far
// more requests than it ever materializes.
type syntheticStream struct {
	n       int
	emitted int
	clients int
}

func (s *syntheticStream) Next() (workload.Event, bool) {
	if s.emitted >= s.n {
		return workload.Event{}, false
	}
	e := workload.Event{
		Session:  s.emitted,
		Client:   s.emitted % s.clients,
		Start:    int64(s.emitted / 4), // ~4 starts per second
		Duration: 30,
	}
	s.emitted++
	return e, true
}

// TestRunStreamMemoryBounded is the ISSUE's memory-bound contract: a
// streamed run must never hold the full request slice. It serves 400k
// synthetic events — which would cost ≥ 19 MB as events alone and
// ~100 MB as buffered log entries — while asserting the live heap
// stays tens of times below that.
func TestRunStreamMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory measurement in -short mode")
	}
	m, err := gismo.Scaled(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := gismo.NewPopulation(200, m.Topology, rand.New(rand.NewPCG(3, 0)))
	if err != nil {
		t.Fatal(err)
	}

	const n = 400_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 0
	src := &syntheticStream{n: n, clients: pop.Size()}
	var served int
	res, err := RunStream(src, pop, int64(n), cfg, 3, StreamSinks{
		Entry: func(e *wmslog.Entry) error { served++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if res.Transfers != n || served != n {
		t.Fatalf("served %d/%d transfers", served, n)
	}

	// Live-heap growth across the run. Materializing the entries alone
	// would add >100 MB; the streamed path needs only the concurrency
	// heap and the reorder buffer (~peak-concurrency entries, here
	// ~120 × 30 s ≈ few thousand). Allow a generous 16 MB for noise.
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const limit = 16 << 20
	if growth > limit {
		t.Errorf("live heap grew %d bytes during streamed run, want < %d (full materialization would be >100MB)", growth, limit)
	}
}

func TestPendingEntriesOrdering(t *testing.T) {
	p := newPendingEntries(&freeEntryPool{})
	ends := []int64{9, 3, 7, 3, 11, 1, 3}
	for i, e := range ends {
		p.push(e, &wmslog.Entry{Duration: int64(i)}, nil)
	}
	var lastEnd int64 = -1
	var lastSeq int64 = -1
	for range ends {
		top := p.heap.Peek()
		p.heap.Pop()
		if top.end < lastEnd {
			t.Fatalf("pop out of end order: %d after %d", top.end, lastEnd)
		}
		if top.end == lastEnd && top.seq < lastSeq {
			t.Fatalf("tie not broken by admission order")
		}
		lastEnd, lastSeq = top.end, top.seq
	}
	if p.heap.Len() != 0 {
		t.Fatal("heap not drained")
	}
}
