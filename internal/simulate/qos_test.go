package simulate

import (
	"math/rand/v2"
	"testing"

	"repro/internal/trace"
)

func TestApplyQoSAbandonmentCutsOnlyCongested(t *testing.T) {
	transfers := []trace.Transfer{
		{Client: 1, Start: 0, Duration: 1000, Bandwidth: 56000, IP: "a", Country: "BR", AS: 1},
		{Client: 2, Start: 0, Duration: 1000, Bandwidth: 5000, IP: "b", Country: "BR", AS: 1},
		{Client: 3, Start: 0, Duration: 1000, Bandwidth: 3000, IP: "c", Country: "BR", AS: 1},
	}
	tr, err := trace.New(10000, transfers)
	if err != nil {
		t.Fatal(err)
	}
	cfg := QoSConfig{AbandonProb: 1.0, MinFraction: 0.02}
	cut, n, err := ApplyQoSAbandonment(tr, cfg, 14400, rand.New(rand.NewPCG(1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("cut %d transfers, want 2", n)
	}
	for _, tt := range cut.Transfers {
		if tt.Bandwidth >= 14400 && tt.Duration != 1000 {
			t.Errorf("client-bound transfer was cut: %+v", tt)
		}
		if tt.Bandwidth < 14400 && tt.Duration >= 1000 {
			t.Errorf("congested transfer not cut: %+v", tt)
		}
	}
	// Original untouched.
	for _, tt := range tr.Transfers {
		if tt.Duration != 1000 {
			t.Fatal("input trace mutated")
		}
	}
}

func TestApplyQoSAbandonmentZeroProb(t *testing.T) {
	tr, err := trace.New(100, []trace.Transfer{
		{Client: 1, Start: 0, Duration: 50, Bandwidth: 1000, IP: "a", Country: "BR", AS: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, n, err := ApplyQoSAbandonment(tr, QoSConfig{AbandonProb: 0, MinFraction: 0.02}, 14400, rand.New(rand.NewPCG(1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("cut %d with zero probability", n)
	}
}

func TestRunQoSStudyShowsCounterfactualCorrelation(t *testing.T) {
	w := testWorkload(t, 30)
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 0
	study, err := RunQoSStudy(w, cfg, DefaultQoSConfig(), 14400, rand.New(rand.NewPCG(31, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if study.TransfersCut == 0 {
		t.Fatal("no transfers cut")
	}
	// Live behaviour: lengths are drawn independently of bandwidth, so
	// the correlation is near zero. Stored-media-like abandonment
	// creates a clearly positive one.
	if study.LiveCorrelation > 0.1 || study.LiveCorrelation < -0.1 {
		t.Errorf("live correlation = %v, want ~0 (stickiness)", study.LiveCorrelation)
	}
	if study.AbandonedCorrelation < study.LiveCorrelation+0.05 {
		t.Errorf("abandonment correlation %v should clearly exceed live %v",
			study.AbandonedCorrelation, study.LiveCorrelation)
	}
}

func TestLengthBandwidthCorrelationErrors(t *testing.T) {
	tr, err := trace.New(100, []trace.Transfer{
		{Client: 1, Start: 0, Duration: 50, Bandwidth: 1000, IP: "a", Country: "BR", AS: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LengthBandwidthCorrelation(tr); err == nil {
		t.Error("single transfer: want error")
	}
}
