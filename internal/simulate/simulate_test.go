package simulate

import (
	"math"
	"math/rand"
	randv2 "math/rand/v2"
	"testing"
	"time"

	"repro/internal/gismo"
	"repro/internal/trace"
	"repro/internal/wmslog"
)

func testWorkload(t *testing.T, seed int64) *gismo.Workload {
	t.Helper()
	m, err := gismo.Scaled(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gismo.Generate(m, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDefaultConfigValidates(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateCatchesEachField(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.CongestionFrac = -0.1 },
		func(c *Config) { c.CongestionFrac = 1.1 },
		func(c *Config) { c.CongestionSigma = 0 },
		func(c *Config) { c.BandwidthJitter = -0.1 },
		func(c *Config) { c.BandwidthJitter = 1 },
		func(c *Config) { c.EncodingBps = 0 },
		func(c *Config) { c.CPUPerTransfer = -1 },
		func(c *Config) { c.CPUNoise = -1 },
		func(c *Config) { c.SpanningPerMillion = -1 },
		func(c *Config) { c.Epoch = time.Time{} },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestRunProducesConsistentTraceAndEntries(t *testing.T) {
	w := testWorkload(t, 1)
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 0
	res, err := Run(w, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumTransfers() != len(w.Requests) {
		t.Fatalf("trace has %d transfers, want %d", res.Trace.NumTransfers(), len(w.Requests))
	}
	if len(res.Entries) != len(w.Requests) {
		t.Fatalf("%d entries, want %d", len(res.Entries), len(w.Requests))
	}
	if res.PeakConcurrency < 1 {
		t.Error("peak concurrency must be at least 1")
	}
	for _, e := range res.Entries {
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid entry: %v", err)
		}
		if e.URIStem != "/live/feed1" && e.URIStem != "/live/feed2" {
			t.Fatalf("bad URI %q", e.URIStem)
		}
	}
	// Entries timestamp-sorted.
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i].Timestamp.Before(res.Entries[i-1].Timestamp) {
			t.Fatal("entries not sorted by timestamp")
		}
	}
}

func TestRunRejectsEmptyWorkload(t *testing.T) {
	if _, err := Run(nil, DefaultConfig(), 1); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	w := testWorkload(t, 1)
	cfg := DefaultConfig()
	cfg.EncodingBps = 0
	if _, err := Run(w, cfg, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestBandwidthBimodal(t *testing.T) {
	w := testWorkload(t, 3)
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 0
	res, err := Run(w, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	var congested, clientBound int
	for _, tr := range res.Trace.Transfers {
		if tr.Bandwidth < 20000 {
			congested++
		}
		// Within jitter of an access class speed?
		for _, ac := range gismo.AccessClasses {
			if math.Abs(float64(tr.Bandwidth-ac.Bps))/float64(ac.Bps) <= cfg.BandwidthJitter+1e-9 {
				clientBound++
				break
			}
		}
	}
	n := float64(res.Trace.NumTransfers())
	if frac := float64(congested) / n; frac < 0.05 || frac > 0.16 {
		t.Errorf("congestion-bound fraction = %v, want ~0.10 (Figure 20)", frac)
	}
	if frac := float64(clientBound) / n; frac < 0.85 {
		t.Errorf("client-bound fraction = %v, want ~0.90", frac)
	}
}

func TestServerStaysUnloaded(t *testing.T) {
	w := testWorkload(t, 5)
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 0
	res, err := Run(w, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	audit := res.Trace.AuditServerLoad(10)
	if audit.TransferBelowFrac < 0.99 {
		t.Errorf("transfers below 10%% CPU = %v, want >= 0.99 (Section 2.4)", audit.TransferBelowFrac)
	}
	if audit.TimeBelowFrac < 0.99 {
		t.Errorf("time below 10%% CPU = %v, want >= 0.99", audit.TimeBelowFrac)
	}
}

func TestSpanningInjection(t *testing.T) {
	w := testWorkload(t, 7)
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 100000 // 10% for a visible sample
	res, err := Run(w, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("no spanning entries injected at 10% rate")
	}
	var spanning int
	for _, e := range res.Entries {
		if e.Duration > w.Model.Horizon {
			spanning++
		}
	}
	if spanning != res.Injected {
		t.Errorf("spanning entries in log = %d, injected = %d", spanning, res.Injected)
	}
	// The sanitization pipeline must drop exactly the injected ones.
	tr, err := trace.FromEntries(res.Entries, cfg.Epoch, w.Model.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	clean, report := tr.Sanitize()
	if report.DroppedSpanning != res.Injected {
		t.Errorf("sanitize dropped %d spanning, want %d", report.DroppedSpanning, res.Injected)
	}
	if clean.NumTransfers() != len(w.Requests) {
		t.Errorf("clean trace has %d transfers, want %d", clean.NumTransfers(), len(w.Requests))
	}
}

func TestWriteLogsRoundTrip(t *testing.T) {
	w := testWorkload(t, 9)
	cfg := DefaultConfig()
	cfg.SpanningPerMillion = 0
	res, err := Run(w, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files, err := res.WriteLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("expected multiple daily files, got %v", files)
	}
	entries, st, err := wmslog.ReadFiles(files, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Malformed != 0 {
		t.Errorf("malformed lines: %d", st.Malformed)
	}
	if len(entries) != len(res.Entries) {
		t.Fatalf("read %d entries, wrote %d", len(entries), len(res.Entries))
	}
	// Round trip into a trace must preserve transfer count and durations.
	tr, err := trace.FromEntries(entries, cfg.Epoch, w.Model.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTransfers() != res.Trace.NumTransfers() {
		t.Errorf("trace transfers: %d vs %d", tr.NumTransfers(), res.Trace.NumTransfers())
	}
	if tr.NumClients() != res.Trace.NumClients() {
		t.Errorf("trace clients: %d vs %d", tr.NumClients(), res.Trace.NumClients())
	}
	if tr.TotalBytes() != res.Trace.TotalBytes() {
		t.Errorf("bytes: %d vs %d", tr.TotalBytes(), res.Trace.TotalBytes())
	}
}

func TestConcurrencyTracker(t *testing.T) {
	c := newConcurrencyTracker()
	if got := c.admit(0, 10); got != 1 {
		t.Errorf("admit 1: %d", got)
	}
	if got := c.admit(5, 15); got != 2 {
		t.Errorf("admit 2: %d", got)
	}
	if got := c.admit(10, 20); got != 2 { // first ended at 10
		t.Errorf("admit 3: %d", got)
	}
	if got := c.admit(100, 110); got != 1 {
		t.Errorf("admit 4: %d", got)
	}
	if c.peak != 2 {
		t.Errorf("peak = %d", c.peak)
	}
}

// TestConcurrencyTrackerZeroDuration mirrors the legacy end-time-heap
// semantics for degenerate transfers: an end at or before its own
// start counts in its own admission and is gone by the next one, even
// at the same start second.
func TestConcurrencyTrackerZeroDuration(t *testing.T) {
	c := newConcurrencyTracker()
	if got := c.admit(10, 10); got != 1 {
		t.Errorf("zero-duration admit: %d, want 1", got)
	}
	if got := c.admit(10, 12); got != 1 { // previous zero-dur expired
		t.Errorf("same-start admit after zero-dur: %d, want 1", got)
	}
	if got := c.admit(11, 13); got != 2 {
		t.Errorf("overlap admit: %d, want 2", got)
	}
	if c.peak != 2 {
		t.Errorf("peak = %d, want 2", c.peak)
	}
}

// TestConcurrencyTrackerLongTransfers drives ends beyond the ring
// window onto the far-end heap and checks they expire exactly like
// ring-resident ends.
func TestConcurrencyTrackerLongTransfers(t *testing.T) {
	c := newConcurrencyTracker()
	const far = trackerRingSeconds * 3
	if got := c.admit(0, far); got != 1 {
		t.Errorf("far admit: %d", got)
	}
	if got := c.admit(1, 5); got != 2 {
		t.Errorf("short under far: %d", got)
	}
	if got := c.admit(6, 10); got != 2 { // short one expired, far survives
		t.Errorf("after short expiry: %d", got)
	}
	if got := c.admit(far, far+10); got != 1 { // far end expired at its end
		t.Errorf("after far expiry: %d", got)
	}
	if c.peak != 2 {
		t.Errorf("peak = %d, want 2", c.peak)
	}
}

func TestObjectURI(t *testing.T) {
	if ObjectURI(0) != "/live/feed1" || ObjectURI(1) != "/live/feed2" {
		t.Error("URI naming changed")
	}
}

func TestFeedSchedule(t *testing.T) {
	rng := randv2.New(randv2.NewPCG(11, 0))
	fs, err := NewFeedSchedule(0, 86400, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Switches) < 100 {
		t.Errorf("switches = %d, want ~288 for 300 s dwell over a day", len(fs.Switches))
	}
	if fs.Switches[0].At != 0 {
		t.Error("schedule must start at 0")
	}
	for i := 1; i < len(fs.Switches); i++ {
		if fs.Switches[i].At <= fs.Switches[i-1].At {
			t.Fatal("switch times not increasing")
		}
		if fs.Switches[i].Camera == fs.Switches[i-1].Camera {
			t.Fatal("consecutive switches to the same camera")
		}
		if fs.Switches[i].Camera < 0 || fs.Switches[i].Camera >= NumCameras {
			t.Fatal("camera out of range")
		}
	}
	// CameraAt agrees with the schedule.
	for _, probe := range []int64{0, 1000, 40000, 86399} {
		cam := fs.CameraAt(probe)
		if cam < 0 || cam >= NumCameras {
			t.Fatalf("CameraAt(%d) = %d", probe, cam)
		}
	}
	dwells := fs.DwellTimes(86400)
	if len(dwells) != len(fs.Switches) {
		t.Fatal("dwell count mismatch")
	}
	var total float64
	for _, d := range dwells {
		if d <= 0 {
			t.Fatal("non-positive dwell")
		}
		total += d
	}
	if total != 86400 {
		t.Errorf("dwells sum to %v, want 86400", total)
	}
}

func TestNewFeedScheduleErrors(t *testing.T) {
	rng := randv2.New(randv2.NewPCG(12, 0))
	if _, err := NewFeedSchedule(0, 0, 300, rng); err == nil {
		t.Error("zero horizon: want error")
	}
	if _, err := NewFeedSchedule(0, 1000, 0, rng); err == nil {
		t.Error("zero dwell: want error")
	}
}
