package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestWelfordMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10_000)
	var w Welford
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*1.4 + 4.4) // lognormal, heavy tail
		w.Add(xs[i])
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != s.N {
		t.Errorf("n: %d vs %d", w.N(), s.N)
	}
	if math.Abs(w.Mean()-s.Mean) > 1e-9*s.Mean {
		t.Errorf("mean: %v vs %v", w.Mean(), s.Mean)
	}
	if math.Abs(w.Variance()-s.Variance) > 1e-6*s.Variance {
		t.Errorf("variance: %v vs %v", w.Variance(), s.Variance)
	}
	if w.Min() != s.Min || w.Max() != s.Max {
		t.Errorf("extrema: [%v, %v] vs [%v, %v]", w.Min(), w.Max(), s.Min, s.Max)
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var whole Welford
	parts := make([]Welford, 4)
	for i := 0; i < 5000; i++ {
		x := rng.NormFloat64()*3 + 10
		whole.Add(x)
		parts[i%4].Add(x)
	}
	var merged Welford
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != whole.N() {
		t.Fatalf("n: %d vs %d", merged.N(), whole.N())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("mean: %v vs %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Variance()-whole.Variance()) > 1e-7 {
		t.Errorf("variance: %v vs %v", merged.Variance(), whole.Variance())
	}
	// Merge into empty.
	var empty Welford
	empty.Merge(whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Error("merge into empty lost state")
	}
}

func TestOnlineBinsMatchesBinCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const horizon, width = 86_400, 900
	ts := make([]int64, 20_000)
	ob, err := NewOnlineBins(horizon, width)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		ts[i] = int64(rng.Intn(horizon + 100)) // some beyond horizon
		ob.Add(ts[i])
	}
	batch, err := BinCounts(ts, horizon, width)
	if err != nil {
		t.Fatal(err)
	}
	got := ob.Series()
	if len(got.Values) != len(batch.Values) {
		t.Fatalf("bins: %d vs %d", len(got.Values), len(batch.Values))
	}
	for i := range got.Values {
		if got.Values[i] != batch.Values[i] {
			t.Fatalf("bin %d: %v vs %v", i, got.Values[i], batch.Values[i])
		}
	}
	if _, err := NewOnlineBins(0, 900); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestLogQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q, err := NewLogQuantile(32)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*1.43 + 4.38) // Figure 19's law
		q.Add(xs[i])
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		exact, err := Quantile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		got := q.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("p=%v: approx %v vs exact %v (rel err %.3f > 0.05)", p, got, exact, rel)
		}
	}
	if q.N() != int64(len(xs)) {
		t.Errorf("n = %d", q.N())
	}
	if _, err := NewLogQuantile(0); err == nil {
		t.Error("0 buckets accepted")
	}
}

func TestHyperLogLogAccuracy(t *testing.T) {
	h, err := NewHyperLogLog(14)
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 200_000
	for i := 0; i < distinct; i++ {
		// Each key added multiple times: cardinality must not change.
		h.AddString(fmt.Sprintf("client-%07d", i))
		if i%3 == 0 {
			h.AddString(fmt.Sprintf("client-%07d", i))
		}
	}
	got := h.Count()
	if rel := math.Abs(got-distinct) / distinct; rel > 0.03 {
		t.Errorf("estimate %v for %d distinct (rel err %.4f > 0.03)", got, distinct, rel)
	}
}

func TestHyperLogLogSmallRange(t *testing.T) {
	h, err := NewHyperLogLog(12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.AddInt(int64(i))
	}
	got := h.Count()
	if got < 8 || got > 12 {
		t.Errorf("small-range estimate %v for 10 distinct", got)
	}
	if _, err := NewHyperLogLog(2); err == nil {
		t.Error("precision 2 accepted")
	}
	if _, err := NewHyperLogLog(19); err == nil {
		t.Error("precision 19 accepted")
	}
}
