package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Online (single-pass) counterparts of the batch estimators, so the
// measurement layer can ride the event stream without materializing
// samples. Accuracy relative to the batch estimators is recorded in
// EXPERIMENTS.md: moments and binned series are exact; quantiles and
// distinct counts are approximate with the bounds documented on each
// type.

// Welford accumulates count, mean, variance and extrema of a sample in
// O(1) state using Welford's algorithm. Mean and variance are exact (up
// to floating point) — they match Summarize on the same data.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add absorbs one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge absorbs another accumulator (Chan et al. parallel update), so
// per-shard accumulators can combine into the global one.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := float64(w.n + o.n)
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / n
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n += o.n
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 when empty).
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	v := w.m2 / float64(w.n)
	if v < 0 {
		return 0
	}
	return v
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// OnlineBins is the streaming form of BinCounts: fixed-width time bins
// over [0, horizon), accumulated one timestamp at a time. Exact — the
// resulting series equals BinCounts on the same timestamps.
type OnlineBins struct {
	width  int64
	values []float64
}

// NewOnlineBins allocates the bins.
func NewOnlineBins(horizon, width int64) (*OnlineBins, error) {
	if width <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon=%d width=%d", ErrBadArgument, horizon, width)
	}
	return &OnlineBins{width: width, values: make([]float64, numBins(horizon, width))}, nil
}

// Add counts one event at timestamp t (seconds since trace start);
// timestamps outside the horizon are ignored, as in BinCounts.
func (b *OnlineBins) Add(t int64) {
	if t < 0 {
		return
	}
	if i := t / b.width; i < int64(len(b.values)) {
		b.values[i]++
	}
}

// Series returns the accumulated series (shared backing array).
func (b *OnlineBins) Series() BinnedSeries {
	return BinnedSeries{Width: b.width, Values: b.values}
}

// LogQuantile approximates the quantiles of a positive sample with a
// geometric-bucket histogram: buckets per decade are fixed, so the
// relative error of any quantile is bounded by the bucket width —
// 32 buckets/decade gives ≤ ~3.7% relative error (half a bucket),
// independent of sample size, in O(buckets) state. Values below 1 are
// clamped into the first bucket (the paper's ⌊t+1⌋ display convention
// makes 1 the natural floor for timing data).
type LogQuantile struct {
	perDecade float64
	counts    []int64
	total     int64
}

// logQuantileDecades spans [1, 10^8) — transfer durations, gaps and
// bandwidths all fit well inside.
const logQuantileDecades = 8

// NewLogQuantile builds the sketch with the given buckets per decade
// (≥ 1; 32 is a good default).
func NewLogQuantile(perDecade int) (*LogQuantile, error) {
	if perDecade < 1 {
		return nil, fmt.Errorf("%w: %d buckets per decade", ErrBadArgument, perDecade)
	}
	return &LogQuantile{
		perDecade: float64(perDecade),
		counts:    make([]int64, perDecade*logQuantileDecades+1),
	}, nil
}

// Add absorbs one observation.
func (q *LogQuantile) Add(x float64) {
	i := 0
	if x > 1 {
		i = int(math.Log10(x) * q.perDecade)
		if i < 0 {
			i = 0
		}
		if i >= len(q.counts) {
			i = len(q.counts) - 1
		}
	}
	q.counts[i]++
	q.total++
}

// N returns the observation count.
func (q *LogQuantile) N() int64 { return q.total }

// Quantile returns the approximate p-quantile (geometric bucket
// midpoint). p outside [0, 1] is clamped.
func (q *LogQuantile) Quantile(p float64) float64 {
	if q.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(p * float64(q.total-1))
	var cum int64
	for i, c := range q.counts {
		cum += c
		if cum > target {
			// Geometric midpoint of bucket i.
			return math.Pow(10, (float64(i)+0.5)/q.perDecade)
		}
	}
	return math.Pow(10, float64(logQuantileDecades))
}

// HyperLogLog estimates the number of distinct 64-bit keys in O(2^p)
// bytes. With precision p=14 (16 KiB of registers) the standard error
// is 1.04/√2^14 ≈ 0.8%. It replaces the exact distinct-count sets
// (clients, IPs) on the streaming measurement path, where an exact set
// over the paper's 691,889-client population would cost tens of MB.
type HyperLogLog struct {
	registers []uint8
	p         uint8
}

// NewHyperLogLog builds an estimator with 2^p registers, 4 ≤ p ≤ 18.
func NewHyperLogLog(p uint8) (*HyperLogLog, error) {
	if p < 4 || p > 18 {
		return nil, fmt.Errorf("%w: hyperloglog precision %d", ErrBadArgument, p)
	}
	return &HyperLogLog{registers: make([]uint8, 1<<p), p: p}, nil
}

// AddHash absorbs one hashed key. A splitmix64 finalizer is applied
// first, so weakly-avalanched hashes (FNV-1a over short keys leaves the
// high bits badly distributed) are safe to feed directly.
func (h *HyperLogLog) AddHash(x uint64) {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // guard bit bounds the rank
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// AddString hashes and absorbs a string key (FNV-1a 64).
func (h *HyperLogLog) AddString(s string) {
	h.AddHash(fnv1a([]byte(s)))
}

// AddInt absorbs an integer key.
func (h *HyperLogLog) AddInt(v int64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.AddHash(fnv1a(buf[:]))
}

// Count returns the cardinality estimate, with the standard small-range
// (linear counting) correction.
func (h *HyperLogLog) Count() float64 {
	m := float64(len(h.registers))
	var sum float64
	var zeros int
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return est
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
