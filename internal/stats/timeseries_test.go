package stats

import (
	"math"
	"testing"
)

func TestBinCounts(t *testing.T) {
	ts := []int64{0, 1, 899, 900, 1700, 2699, 2700, -5, 99999}
	b, err := BinCounts(ts, 2700, 900)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins() != 3 {
		t.Fatalf("bins = %d, want 3", b.Bins())
	}
	want := []float64{3, 2, 1} // out-of-range (-5, 2700, 99999) dropped
	for i := range want {
		if b.Values[i] != want[i] {
			t.Errorf("bin %d = %v, want %v", i, b.Values[i], want[i])
		}
	}
}

func TestBinCountsErrors(t *testing.T) {
	if _, err := BinCounts(nil, 0, 900); err == nil {
		t.Error("zero horizon: want error")
	}
	if _, err := BinCounts(nil, 900, 0); err == nil {
		t.Error("zero width: want error")
	}
}

func TestBinCountsPartialLastBin(t *testing.T) {
	b, err := BinCounts([]int64{0, 950}, 1000, 900)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins() != 2 {
		t.Fatalf("bins = %d, want 2 (ceil)", b.Bins())
	}
	if b.Values[0] != 1 || b.Values[1] != 1 {
		t.Errorf("values = %v", b.Values)
	}
}

func TestBinMeans(t *testing.T) {
	ts := []int64{10, 20, 1000, 1100}
	vs := []float64{2, 4, 10, 20}
	b, err := BinMeans(ts, vs, 1800, 900)
	if err != nil {
		t.Fatal(err)
	}
	if b.Values[0] != 3 || b.Values[1] != 15 {
		t.Errorf("means = %v, want [3 15]", b.Values)
	}
}

func TestBinMeansEmptyBinIsZero(t *testing.T) {
	b, err := BinMeans([]int64{10}, []float64{5}, 2700, 900)
	if err != nil {
		t.Fatal(err)
	}
	if b.Values[1] != 0 || b.Values[2] != 0 {
		t.Errorf("empty bins = %v, want zeros", b.Values[1:])
	}
}

func TestBinMeansErrors(t *testing.T) {
	if _, err := BinMeans([]int64{1}, []float64{1, 2}, 900, 900); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := BinMeans(nil, nil, 0, 900); err == nil {
		t.Error("zero horizon: want error")
	}
}

func TestFoldModuloDay(t *testing.T) {
	// Two days of 4 six-hour bins each; fold onto one day.
	b := BinnedSeries{Width: 21600, Values: []float64{1, 2, 3, 4, 3, 4, 5, 6}}
	folded, err := b.FoldModulo(86400)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4, 5}
	if len(folded.Values) != 4 {
		t.Fatalf("folded bins = %d", len(folded.Values))
	}
	for i := range want {
		if math.Abs(folded.Values[i]-want[i]) > 1e-12 {
			t.Errorf("fold[%d] = %v, want %v", i, folded.Values[i], want[i])
		}
	}
}

func TestFoldModuloErrors(t *testing.T) {
	b := BinnedSeries{Width: 900, Values: make([]float64, 10)}
	if _, err := b.FoldModulo(0); err == nil {
		t.Error("zero period: want error")
	}
	if _, err := b.FoldModulo(1000); err == nil {
		t.Error("period not multiple of width: want error")
	}
}

func TestFoldModuloUnevenTail(t *testing.T) {
	// 1.5 periods: the first half-period phases average over 2 samples,
	// the rest over 1.
	b := BinnedSeries{Width: 1, Values: []float64{1, 2, 3, 4, 9, 10}}
	folded, err := b.FoldModulo(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 3, 4}
	for i := range want {
		if math.Abs(folded.Values[i]-want[i]) > 1e-12 {
			t.Errorf("fold[%d] = %v, want %v", i, folded.Values[i], want[i])
		}
	}
}

func TestBinnedSeriesMaxAndPoints(t *testing.T) {
	b := BinnedSeries{Width: 900, Values: []float64{1, 5, 3}}
	if b.Max() != 5 {
		t.Errorf("Max = %v", b.Max())
	}
	pts := b.Points()
	if pts[1].X != 900 || pts[1].Y != 5 {
		t.Errorf("Points[1] = %+v", pts[1])
	}
	empty := BinnedSeries{}
	if empty.Max() != 0 {
		t.Error("empty Max should be 0")
	}
}

func TestRankFrequencies(t *testing.T) {
	freq := RankFrequencies([]int{1, 0, 3, 6, 0})
	want := []float64{0.6, 0.3, 0.1}
	if len(freq) != 3 {
		t.Fatalf("freq = %v", freq)
	}
	for i := range want {
		if math.Abs(freq[i]-want[i]) > 1e-12 {
			t.Errorf("freq[%d] = %v, want %v", i, freq[i], want[i])
		}
	}
	if RankFrequencies([]int{0, 0}) != nil {
		t.Error("all-zero counts should return nil")
	}
	if RankFrequencies(nil) != nil {
		t.Error("nil counts should return nil")
	}
}

func TestRankFrequenciesSumToOne(t *testing.T) {
	freq := RankFrequencies([]int{5, 3, 9, 1, 1, 7, 2})
	var sum float64
	for i, f := range freq {
		sum += f
		if i > 0 && freq[i] > freq[i-1] {
			t.Error("frequencies not descending")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum = %v", sum)
	}
}
