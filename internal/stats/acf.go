package stats

import "fmt"

// Autocorrelation returns the sample autocorrelation of the series at the
// given lag (in series steps):
//
//	r(l) = Σ (x_t - m)(x_{t+l} - m) / Σ (x_t - m)²
//
// This is the estimator behind Figure 8 (autocorrelation of the number of
// active clients, showing daily peaks at lags that are multiples of 1,440
// minutes).
func Autocorrelation(series []float64, lag int) (float64, error) {
	if lag < 0 {
		return 0, fmt.Errorf("%w: negative lag %d", ErrBadArgument, lag)
	}
	if len(series) == 0 {
		return 0, ErrEmpty
	}
	if lag >= len(series) {
		return 0, fmt.Errorf("%w: lag %d >= series length %d", ErrBadArgument, lag, len(series))
	}
	m := Mean(series)
	var num, den float64
	for t := 0; t < len(series); t++ {
		d := series[t] - m
		den += d * d
	}
	if den == 0 {
		return 0, fmt.Errorf("%w: constant series has undefined autocorrelation", ErrBadArgument)
	}
	for t := 0; t+lag < len(series); t++ {
		num += (series[t] - m) * (series[t+lag] - m)
	}
	return num / den, nil
}

// AutocorrelationFunction evaluates Autocorrelation at every lag in
// 0..maxLag inclusive, returning a slice indexed by lag.
func AutocorrelationFunction(series []float64, maxLag int) ([]float64, error) {
	if maxLag < 0 {
		return nil, fmt.Errorf("%w: negative maxLag %d", ErrBadArgument, maxLag)
	}
	if maxLag >= len(series) {
		return nil, fmt.Errorf("%w: maxLag %d >= series length %d", ErrBadArgument, maxLag, len(series))
	}
	out := make([]float64, maxLag+1)
	for l := 0; l <= maxLag; l++ {
		r, err := Autocorrelation(series, l)
		if err != nil {
			return nil, err
		}
		out[l] = r
	}
	return out, nil
}

// LocalMaxima returns the indices of strict local maxima of the series that
// exceed the threshold, skipping index 0. It is used to verify the ACF's
// daily periodicity (peaks near multiples of 1,440 minutes).
func LocalMaxima(series []float64, threshold float64) []int {
	var out []int
	for i := 1; i+1 < len(series); i++ {
		if series[i] > threshold && series[i] > series[i-1] && series[i] >= series[i+1] {
			out = append(out, i)
		}
	}
	return out
}
