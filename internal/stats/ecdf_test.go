package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasic(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2, 5})
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	cases := []struct{ x, cdf, ccdf float64 }{
		{0, 0, 1},
		{1, 0.2, 1},
		{1.5, 0.2, 0.8},
		{2, 0.6, 0.8},
		{3, 0.8, 0.4},
		{5, 1, 0.2},
		{6, 1, 0},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); math.Abs(got-c.cdf) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.cdf)
		}
		if got := e.CCDF(c.x); math.Abs(got-c.ccdf) > 1e-12 {
			t.Errorf("CCDF(%v) = %v, want %v", c.x, got, c.ccdf)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.CDF(1) != 0 || e.CCDF(1) != 0 || e.Quantile(0.5) != 0 || e.N() != 0 {
		t.Error("empty ECDF should evaluate to zeros")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	if got := e.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := e.Quantile(1); got != 40 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := e.Quantile(0.5); math.Abs(got-25) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want 25", got)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 1, 2, 3})
	cdf := e.CDFPoints()
	wantCDF := []Point{{1, 0.5}, {2, 0.75}, {3, 1}}
	if len(cdf) != len(wantCDF) {
		t.Fatalf("CDFPoints = %v", cdf)
	}
	for i := range wantCDF {
		if cdf[i] != wantCDF[i] {
			t.Errorf("CDFPoints[%d] = %v, want %v", i, cdf[i], wantCDF[i])
		}
	}
	ccdf := e.CCDFPoints()
	wantCCDF := []Point{{1, 1}, {2, 0.5}, {3, 0.25}}
	if len(ccdf) != len(wantCCDF) {
		t.Fatalf("CCDFPoints = %v", ccdf)
	}
	for i := range wantCCDF {
		if ccdf[i] != wantCCDF[i] {
			t.Errorf("CCDFPoints[%d] = %v, want %v", i, ccdf[i], wantCCDF[i])
		}
	}
}

// Property: CDF(x) + exclusive-CCDF(x) == 1, where exclusive CCDF is
// P[X > x] = 1 - CDF(x); and the inclusive CCDF we expose differs from it
// only at sample points.
func TestECDFComplementProperty(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			xs[i] = math.Mod(v, 1000)
		}
		if math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		p := math.Mod(probe, 1000)
		e := NewECDF(xs)
		cdf := e.CDF(p)
		ccdfInclusive := e.CCDF(p)
		// P[X >= p] >= P[X > p] = 1 - P[X <= p].
		return ccdfInclusive >= 1-cdf-1e-12 && cdf >= 0 && cdf <= 1 && ccdfInclusive >= 0 && ccdfInclusive <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelationPeriodicSeries(t *testing.T) {
	// A pure daily sine sampled each minute over 7 days must have ACF
	// peaks at lag 1440 and its multiples — the structure of Figure 8.
	const day = 1440
	series := make([]float64, 7*day)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / day)
	}
	r0, err := Autocorrelation(series, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0-1) > 1e-12 {
		t.Errorf("ACF(0) = %v, want 1", r0)
	}
	rDay, err := Autocorrelation(series, day)
	if err != nil {
		t.Fatal(err)
	}
	if rDay < 0.8 {
		t.Errorf("ACF(1440) = %v, want strong positive", rDay)
	}
	rHalf, err := Autocorrelation(series, day/2)
	if err != nil {
		t.Fatal(err)
	}
	if rHalf > -0.5 {
		t.Errorf("ACF(720) = %v, want strong negative", rHalf)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation(nil, 0); err == nil {
		t.Error("empty: want error")
	}
	if _, err := Autocorrelation([]float64{1, 2}, -1); err == nil {
		t.Error("negative lag: want error")
	}
	if _, err := Autocorrelation([]float64{1, 2}, 2); err == nil {
		t.Error("lag >= len: want error")
	}
	if _, err := Autocorrelation([]float64{3, 3, 3}, 1); err == nil {
		t.Error("constant series: want error")
	}
}

func TestAutocorrelationFunction(t *testing.T) {
	series := []float64{1, 2, 1, 2, 1, 2, 1, 2}
	acf, err := AutocorrelationFunction(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(acf) != 3 {
		t.Fatalf("len = %d", len(acf))
	}
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Errorf("acf[0] = %v", acf[0])
	}
	if acf[1] >= 0 {
		t.Errorf("acf[1] = %v, want negative for alternating series", acf[1])
	}
	if acf[2] <= 0 {
		t.Errorf("acf[2] = %v, want positive for period-2 series", acf[2])
	}
	if _, err := AutocorrelationFunction(series, 99); err == nil {
		t.Error("maxLag too large: want error")
	}
	if _, err := AutocorrelationFunction(series, -1); err == nil {
		t.Error("negative maxLag: want error")
	}
}

func TestLocalMaxima(t *testing.T) {
	series := []float64{0, 1, 0, 2, 0, 3, 0}
	got := LocalMaxima(series, 0.5)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("maxima = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("maxima = %v, want %v", got, want)
		}
	}
	if got := LocalMaxima(series, 2.5); len(got) != 1 || got[0] != 5 {
		t.Errorf("thresholded maxima = %v, want [5]", got)
	}
}
