package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestAggregateSeries(t *testing.T) {
	agg, err := AggregateSeries([]float64{1, 3, 5, 7, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 2 || agg[0] != 2 || agg[1] != 6 {
		t.Errorf("agg = %v", agg)
	}
	if _, err := AggregateSeries([]float64{1}, 0); err == nil {
		t.Error("level 0: want error")
	}
	if _, err := AggregateSeries([]float64{1}, 5); err == nil {
		t.Error("level > len: want error")
	}
}

func TestVarianceTimeHurstWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, 1<<16)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	h, err := VarianceTimeHurst(series, PowersOfTwo(1024))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 0.06 {
		t.Errorf("white-noise H = %v, want ~0.5", h)
	}
}

func TestRSHurstWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series := make([]float64, 1<<15)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	h, err := RSHurst(series, []int{16, 32, 64, 128, 256, 512, 1024})
	if err != nil {
		t.Fatal(err)
	}
	// R/S on short blocks biases slightly above 0.5 (Hurst's own
	// observation); accept [0.45, 0.65].
	if h < 0.45 || h > 0.65 {
		t.Errorf("white-noise R/S H = %v, want ~0.5-0.6", h)
	}
}

func TestHurstRandomWalkIsPersistent(t *testing.T) {
	// A random walk's increments are white noise (H=0.5), but the walk
	// itself is maximally persistent: variance-time on the *levels*
	// should give H near 1.
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 1<<15)
	cum := 0.0
	for i := range series {
		cum += rng.NormFloat64()
		series[i] = cum
	}
	h, err := VarianceTimeHurst(series, PowersOfTwo(512))
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.85 {
		t.Errorf("random-walk H = %v, want near 1", h)
	}
}

func TestHurstErrors(t *testing.T) {
	if _, err := VarianceTimeHurst([]float64{1, 2, 3}, []int{1}); err == nil {
		t.Error("one level: want error")
	}
	if _, err := RSHurst([]float64{1, 2, 3}, []int{4}); err == nil {
		t.Error("one block size: want error")
	}
	constant := make([]float64, 1000)
	if _, err := VarianceTimeHurst(constant, PowersOfTwo(64)); err == nil {
		t.Error("constant series: want error (zero variance)")
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(10)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}
