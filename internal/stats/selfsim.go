package stats

import (
	"fmt"
	"math"
)

// Self-similarity estimators.
//
// Section 5.3 of the paper connects its transfer-length analysis to the
// self-similarity literature: "In [14], Crovella and Bestavros argued
// that the origins of traffic self-similarity can be attributed to the
// heavy-tailed nature of individual file transfers". For live media the
// heavy tail comes from client stickiness instead of file sizes, but the
// mechanism — heavy-tailed ON periods aggregating into long-range-
// dependent traffic — is the same. These estimators let the benchmarks
// verify that the synthetic byte-arrival process inherits that structure.

// AggregateSeries averages the series over non-overlapping blocks of m
// samples, dropping any partial tail block. It is the X^(m) operator of
// the variance-time method.
func AggregateSeries(series []float64, m int) ([]float64, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w: aggregation level %d", ErrBadArgument, m)
	}
	n := len(series) / m
	if n == 0 {
		return nil, fmt.Errorf("%w: series of %d too short for level %d", ErrBadArgument, len(series), m)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < m; j++ {
			sum += series[i*m+j]
		}
		out[i] = sum / float64(m)
	}
	return out, nil
}

// VarianceTimeHurst estimates the Hurst parameter by the variance-time
// method: for a self-similar process, Var[X^(m)] ~ m^(2H-2), so the
// log-log regression of aggregated variance on m has slope 2H-2.
// Levels are the aggregation levels to use (e.g. 1, 2, 4, ..., 1024).
func VarianceTimeHurst(series []float64, levels []int) (float64, error) {
	if len(levels) < 2 {
		return 0, fmt.Errorf("%w: need >= 2 aggregation levels", ErrBadArgument)
	}
	var lx, ly []float64
	for _, m := range levels {
		agg, err := AggregateSeries(series, m)
		if err != nil {
			return 0, err
		}
		if len(agg) < 2 {
			continue
		}
		s, err := Summarize(agg)
		if err != nil {
			return 0, err
		}
		if s.Variance <= 0 {
			continue
		}
		lx = append(lx, math.Log(float64(m)))
		ly = append(ly, math.Log(s.Variance))
	}
	if len(lx) < 2 {
		return 0, fmt.Errorf("%w: too few usable aggregation levels", ErrBadArgument)
	}
	slope, _ := slopeOf(lx, ly)
	h := 1 + slope/2
	return clampHurst(h), nil
}

// RSHurst estimates the Hurst parameter by rescaled-range (R/S) analysis:
// E[R/S](n) ~ n^H. The series is cut into blocks at several sizes; for
// each block the range of the mean-adjusted cumulative sum is divided by
// the block standard deviation, and the log-log regression of the mean
// R/S statistic on block size gives H.
func RSHurst(series []float64, blockSizes []int) (float64, error) {
	if len(blockSizes) < 2 {
		return 0, fmt.Errorf("%w: need >= 2 block sizes", ErrBadArgument)
	}
	var lx, ly []float64
	for _, n := range blockSizes {
		if n < 8 || n > len(series) {
			continue
		}
		var rsSum float64
		var blocks int
		for start := 0; start+n <= len(series); start += n {
			rs, ok := rescaledRange(series[start : start+n])
			if ok {
				rsSum += rs
				blocks++
			}
		}
		if blocks == 0 {
			continue
		}
		lx = append(lx, math.Log(float64(n)))
		ly = append(ly, math.Log(rsSum/float64(blocks)))
	}
	if len(lx) < 2 {
		return 0, fmt.Errorf("%w: too few usable block sizes", ErrBadArgument)
	}
	slope, _ := slopeOf(lx, ly)
	return clampHurst(slope), nil
}

// rescaledRange computes R/S for one block.
func rescaledRange(block []float64) (float64, bool) {
	m := Mean(block)
	var cum, minC, maxC, sumSq float64
	for _, x := range block {
		d := x - m
		cum += d
		if cum < minC {
			minC = cum
		}
		if cum > maxC {
			maxC = cum
		}
		sumSq += d * d
	}
	sd := math.Sqrt(sumSq / float64(len(block)))
	if sd == 0 {
		return 0, false
	}
	return (maxC - minC) / sd, true
}

// slopeOf is a minimal least-squares slope/intercept.
func slopeOf(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sumX, sumY, sumXY, sumXX float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXY += xs[i] * ys[i]
		sumXX += xs[i] * xs[i]
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0, sumY / n
	}
	slope = (n*sumXY - sumX*sumY) / den
	intercept = (sumY - slope*sumX) / n
	return slope, intercept
}

func clampHurst(h float64) float64 {
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

// PowersOfTwo returns 1, 2, 4, ..., up to the largest power <= max: the
// conventional aggregation-level schedule for both estimators.
func PowersOfTwo(max int) []int {
	var out []int
	for m := 1; m <= max; m *= 2 {
		out = append(out, m)
	}
	return out
}
