package stats

import (
	"sort"
)

// ECDF is the empirical cumulative distribution of a sample. It backs the
// "P[X <= x]" (cumulative, center) and "P[X >= x]" (CCDF, right) panels of
// the paper's marginal-distribution figures.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs. An empty sample is allowed but evaluates to
// a zero distribution.
func NewECDF(xs []float64) *ECDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// CDF returns P[X <= x].
func (e *ECDF) CDF(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// CCDF returns P[X >= x] — the inclusive complementary form the paper
// plots (e.g. "P[l(i) >= x]" in Figure 19).
func (e *ECDF) CCDF(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x) // first index with value >= x
	return float64(len(e.sorted)-i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile (p in [0,1]) by order statistic.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	return quantileSorted(e.sorted, p)
}

// Values returns the sorted underlying sample. The slice is shared; treat
// it as read-only.
func (e *ECDF) Values() []float64 { return e.sorted }

// Point is one (X, Y) pair of a plottable series.
type Point struct {
	X, Y float64
}

// CDFPoints returns the step points (x_i, i/n) at each distinct sample
// value, suitable for plotting the cumulative panel.
func (e *ECDF) CDFPoints() []Point {
	return e.points(func(i int) float64 {
		return float64(i+1) / float64(len(e.sorted))
	})
}

// CCDFPoints returns the points (x_i, P[X >= x_i]) at each distinct sample
// value, suitable for plotting the complementary panel on log axes.
func (e *ECDF) CCDFPoints() []Point {
	n := float64(len(e.sorted))
	out := make([]Point, 0, 64)
	for i := 0; i < len(e.sorted); i++ {
		if i > 0 && e.sorted[i] == e.sorted[i-1] {
			continue
		}
		out = append(out, Point{X: e.sorted[i], Y: (n - float64(i)) / n})
	}
	return out
}

// points emits one point per distinct value, with Y computed at the last
// occurrence index of the value.
func (e *ECDF) points(y func(lastIdx int) float64) []Point {
	out := make([]Point, 0, 64)
	for i := 0; i < len(e.sorted); i++ {
		if i+1 < len(e.sorted) && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		out = append(out, Point{X: e.sorted[i], Y: y(i)})
	}
	return out
}
