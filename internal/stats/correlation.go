package stats

import (
	"fmt"
	"math"
	"sort"
)

// PearsonCorrelation returns the sample Pearson correlation coefficient
// of the paired observations. It backs the live-versus-stored duality
// analyses: the paper argues transfer length correlates with object size
// for stored media but with client stickiness for live media, and that
// the QoS/viewing-time correlation differs between the two (Section 1).
func PearsonCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("%w: %d xs vs %d ys", ErrBadArgument, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("%w: need >= 2 pairs", ErrBadArgument)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("%w: constant series has undefined correlation", ErrBadArgument)
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// SpearmanCorrelation returns the Spearman rank correlation: Pearson on
// the rank-transformed data, robust to the heavy tails these workloads
// are full of. Ties receive their average rank.
func SpearmanCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("%w: %d xs vs %d ys", ErrBadArgument, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("%w: need >= 2 pairs", ErrBadArgument)
	}
	return PearsonCorrelation(ranks(xs), ranks(ys))
}

// ranks returns average ranks (1-based) of the values.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j).
		avg := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}
