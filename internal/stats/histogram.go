package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over either a linear or a logarithmic
// axis. The paper's "Frequency" panels (left-hand plots of Figures 3, 5,
// 11, 13, ...) are normalized histograms on log axes.
type Histogram struct {
	// Edges has len(Counts)+1 entries; bin i covers [Edges[i], Edges[i+1]).
	// The final bin is closed on the right.
	Edges  []float64
	Counts []int

	total    int
	under    int // observations below Edges[0]
	over     int // observations above the last edge
	logScale bool
}

// NewLinearHistogram builds a histogram of n equal-width bins over
// [lo, hi].
func NewLinearHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d bins", ErrBadArgument, n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("%w: range [%v, %v]", ErrBadArgument, lo, hi)
	}
	edges := make([]float64, n+1)
	width := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	edges[n] = hi
	return &Histogram{Edges: edges, Counts: make([]int, n)}, nil
}

// NewLogHistogram builds a histogram of n logarithmically spaced bins over
// [lo, hi]; lo must be positive.
func NewLogHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d bins", ErrBadArgument, n)
	}
	if !(hi > lo) || lo <= 0 {
		return nil, fmt.Errorf("%w: log range [%v, %v]", ErrBadArgument, lo, hi)
	}
	edges := make([]float64, n+1)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := range edges {
		edges[i] = math.Exp(logLo + (logHi-logLo)*float64(i)/float64(n))
	}
	edges[0], edges[n] = lo, hi
	return &Histogram{Edges: edges, Counts: make([]int, n), logScale: true}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Edges[0] {
		h.under++
		return
	}
	last := len(h.Edges) - 1
	if x > h.Edges[last] {
		h.over++
		return
	}
	if x == h.Edges[last] {
		h.Counts[last-1]++
		return
	}
	i := h.locate(x)
	h.Counts[i]++
}

func (h *Histogram) locate(x float64) int {
	if h.logScale {
		logLo := math.Log(h.Edges[0])
		logHi := math.Log(h.Edges[len(h.Edges)-1])
		i := int(float64(len(h.Counts)) * (math.Log(x) - logLo) / (logHi - logLo))
		return h.clampAndFix(x, i)
	}
	lo := h.Edges[0]
	hi := h.Edges[len(h.Edges)-1]
	i := int(float64(len(h.Counts)) * (x - lo) / (hi - lo))
	return h.clampAndFix(x, i)
}

// clampAndFix repairs the analytically computed bin index against
// floating-point boundary error by nudging until Edges[i] <= x < Edges[i+1].
func (h *Histogram) clampAndFix(x float64, i int) int {
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	for i > 0 && x < h.Edges[i] {
		i--
	}
	for i < len(h.Counts)-1 && x >= h.Edges[i+1] {
		i++
	}
	return i
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations recorded (including out-of-range).
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the counts below and above the histogram range.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Frequencies returns each bin count divided by the total number of
// observations — the "Frequency" axis of the paper's marginal plots.
// Returns nil if nothing was recorded.
func (h *Histogram) Frequencies() []float64 {
	if h.total == 0 {
		return nil
	}
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Centers returns the representative x of each bin: arithmetic midpoints
// for linear bins, geometric midpoints for logarithmic bins.
func (h *Histogram) Centers() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range out {
		if h.logScale {
			out[i] = math.Sqrt(h.Edges[i] * h.Edges[i+1])
		} else {
			out[i] = (h.Edges[i] + h.Edges[i+1]) / 2
		}
	}
	return out
}
