package stats

import (
	"fmt"
	"sort"
)

// BinnedSeries is a time series of values aggregated into fixed-width bins
// over [0, horizon). The paper uses 900-second (15-minute) bins for the
// temporal panels of Figures 4, 16 and 18 and 60-second bins for the
// autocorrelation of Figure 8.
type BinnedSeries struct {
	Width  int64     // bin width in seconds
	Values []float64 // one aggregate per bin
}

// Bins returns the number of bins.
func (b BinnedSeries) Bins() int { return len(b.Values) }

// numBins computes ceil(horizon/width).
func numBins(horizon, width int64) int {
	return int((horizon + width - 1) / width)
}

// BinCounts buckets event timestamps (seconds since trace start) into
// fixed-width bins and returns per-bin counts. Timestamps outside
// [0, horizon) are ignored.
func BinCounts(timestamps []int64, horizon, width int64) (BinnedSeries, error) {
	if width <= 0 || horizon <= 0 {
		return BinnedSeries{}, fmt.Errorf("%w: horizon=%d width=%d", ErrBadArgument, horizon, width)
	}
	values := make([]float64, numBins(horizon, width))
	for _, t := range timestamps {
		if t < 0 || t >= horizon {
			continue
		}
		values[t/width]++
	}
	return BinnedSeries{Width: width, Values: values}, nil
}

// BinMeans buckets (timestamp, value) samples into fixed-width bins and
// returns the per-bin mean of the values; empty bins hold 0. It backs
// Figure 18 (mean transfer interarrival per 15-minute bin).
func BinMeans(timestamps []int64, values []float64, horizon, width int64) (BinnedSeries, error) {
	if width <= 0 || horizon <= 0 {
		return BinnedSeries{}, fmt.Errorf("%w: horizon=%d width=%d", ErrBadArgument, horizon, width)
	}
	if len(timestamps) != len(values) {
		return BinnedSeries{}, fmt.Errorf("%w: %d timestamps vs %d values", ErrBadArgument, len(timestamps), len(values))
	}
	n := numBins(horizon, width)
	sums := make([]float64, n)
	counts := make([]int, n)
	for i, t := range timestamps {
		if t < 0 || t >= horizon {
			continue
		}
		b := t / width
		sums[b] += values[i]
		counts[b]++
	}
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
	}
	return BinnedSeries{Width: width, Values: sums}, nil
}

// FoldModulo folds the series onto a revolving period of the given length
// in seconds (86,400 for mod-day, 604,800 for mod-week), averaging the
// bins that land on the same phase. Produces the paper's
// "Time (modulo one week)" and "Time (modulo 24 hours)" panels.
func (b BinnedSeries) FoldModulo(period int64) (BinnedSeries, error) {
	if period <= 0 || b.Width <= 0 {
		return BinnedSeries{}, fmt.Errorf("%w: period=%d width=%d", ErrBadArgument, period, b.Width)
	}
	if period%b.Width != 0 {
		return BinnedSeries{}, fmt.Errorf("%w: period %d not a multiple of bin width %d", ErrBadArgument, period, b.Width)
	}
	phases := int(period / b.Width)
	sums := make([]float64, phases)
	counts := make([]int, phases)
	for i, v := range b.Values {
		p := i % phases
		sums[p] += v
		counts[p]++
	}
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
	}
	return BinnedSeries{Width: b.Width, Values: sums}, nil
}

// Max returns the maximum value in the series (0 for an empty series).
func (b BinnedSeries) Max() float64 {
	var m float64
	for _, v := range b.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Points renders the series as (bin start second, value) pairs for
// plotting.
func (b BinnedSeries) Points() []Point {
	out := make([]Point, len(b.Values))
	for i, v := range b.Values {
		out[i] = Point{X: float64(int64(i) * b.Width), Y: v}
	}
	return out
}

// RankFrequencies converts raw per-entity counts into a descending
// relative-frequency vector: element k-1 is the share of the total held by
// the rank-k entity. It backs the rank–frequency panels of Figures 2 and 7.
func RankFrequencies(counts []int) []float64 {
	pos := make([]float64, 0, len(counts))
	var total float64
	for _, c := range counts {
		if c > 0 {
			pos = append(pos, float64(c))
			total += float64(c)
		}
	}
	if total == 0 {
		return nil
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(pos)))
	for i := range pos {
		pos[i] /= total
	}
	return pos
}
