package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Variance-2) > 1e-12 {
		t.Errorf("Variance = %v, want 2", s.Variance)
	}
	if math.Abs(s.Stddev-math.Sqrt2) > 1e-12 {
		t.Errorf("Stddev = %v, want sqrt(2)", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 7 || s.Median != 7 || s.Min != 7 || s.Max != 7 || s.Variance != 0 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.9, 9.1},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("empty quantile: want ErrEmpty")
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("p<0: want error")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("p>1: want error")
	}
}

func TestLogDisplayValue(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 1}, {0.4, 1}, {1, 2}, {2.9, 3}, {-5, 1},
	}
	for _, c := range cases {
		if got := LogDisplayValue(c.in); got != c.want {
			t.Errorf("LogDisplayValue(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: quantile is monotone in p and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(pRaw, qRaw float64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		p := math.Abs(math.Mod(pRaw, 1))
		q := math.Abs(math.Mod(qRaw, 1))
		if p > q {
			p, q = q, p
		}
		qp, err1 := Quantile(xs, p)
		qq, err2 := Quantile(xs, q)
		if err1 != nil || err2 != nil {
			return false
		}
		s, _ := Summarize(xs)
		return qp <= qq && qp >= s.Min && qq <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}
