// Package stats provides the descriptive-statistics substrate for the
// hierarchical workload characterization: summary statistics, linear and
// logarithmic histograms, empirical (complementary) cumulative
// distributions, rank–frequency profiles, autocorrelation functions, and
// time-series binning with modulo folding (mod-day, mod-week) — the exact
// toolkit behind Figures 2–20 of Veloso et al. (IMC 2002).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports an operation on an empty data set.
var ErrEmpty = errors.New("stats: empty data")

// ErrBadArgument reports an out-of-domain argument.
var ErrBadArgument = errors.New("stats: bad argument")

// Summary holds the moments and order statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // population variance
	Stddev   float64
	Min      float64
	Max      float64
	Median   float64
	P90      float64
	P99      float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against floating-point cancellation
	}
	return Summary{
		N:        len(sorted),
		Mean:     mean,
		Variance: variance,
		Stddev:   math.Sqrt(variance),
		Min:      sorted[0],
		Max:      sorted[len(sorted)-1],
		Median:   quantileSorted(sorted, 0.5),
		P90:      quantileSorted(sorted, 0.9),
		P99:      quantileSorted(sorted, 0.99),
	}, nil
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the p-quantile of xs using linear interpolation between
// order statistics. p must be in [0, 1].
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, ErrBadArgument
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p), nil
}

func quantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LogDisplayValue maps a time measurement t (seconds) to ⌊t⌋+1, the
// paper's convention for displaying coarse 1-second-resolution timing data
// on logarithmic axes (Section 2.3: "we have opted to use the function
// ⌊t+1⌋ to represent a time measurement of t seconds").
func LogDisplayValue(t float64) float64 {
	if t < 0 {
		return 1
	}
	return math.Floor(t) + 1
}
