package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := PearsonCorrelation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = PearsonCorrelation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 20000)
	ys := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	r, err := PearsonCorrelation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.03 {
		t.Errorf("independent r = %v, want ~0", r)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := PearsonCorrelation([]float64{1}, []float64{1}); err == nil {
		t.Error("1 pair: want error")
	}
	if _, err := PearsonCorrelation([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := PearsonCorrelation([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("constant xs: want error")
	}
	if _, err := SpearmanCorrelation([]float64{1}, []float64{2}); err == nil {
		t.Error("spearman 1 pair: want error")
	}
	if _, err := SpearmanCorrelation([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("spearman mismatch: want error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman is invariant under monotone transforms: x vs e^x must be
	// exactly 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	r, err := SpearmanCorrelation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("spearman = %v, want 1", r)
	}
}

func TestSpearmanRobustToOutliers(t *testing.T) {
	// One enormous outlier wrecks Pearson but barely moves Spearman.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000}
	ys := []float64{2, 1, 4, 3, 6, 5, 8, 7, 10, 9}
	p, err := PearsonCorrelation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SpearmanCorrelation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.7 {
		t.Errorf("spearman = %v, want strong", s)
	}
	if p < s-0.05 {
		// Pearson dominated by the outlier pair (1000, 9) which is
		// actually concordant here; just confirm both computed.
		t.Logf("pearson %v, spearman %v", p, s)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Errorf("ranks = %v, want %v", r, want)
		}
	}
}
