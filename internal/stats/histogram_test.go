package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearHistogramBasic(t *testing.T) {
	h, err := NewLinearHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if h.Total() != 11 {
		t.Errorf("Total = %d, want 11", h.Total())
	}
	// Bins: [0,2) [2,4) [4,6) [6,8) [8,10]; the value 10 lands in the last.
	want := []int{2, 2, 2, 2, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (counts=%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	u, o := h.OutOfRange()
	if u != 0 || o != 0 {
		t.Errorf("out of range: under=%d over=%d", u, o)
	}
}

func TestLinearHistogramOutOfRange(t *testing.T) {
	h, err := NewLinearHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)
	h.Add(11)
	h.Add(5)
	u, o := h.OutOfRange()
	if u != 1 || o != 1 {
		t.Errorf("under=%d over=%d, want 1, 1", u, o)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewLinearHistogram(0, 10, 0); err == nil {
		t.Error("0 bins: want error")
	}
	if _, err := NewLinearHistogram(10, 0, 5); err == nil {
		t.Error("inverted range: want error")
	}
	if _, err := NewLogHistogram(0, 10, 5); err == nil {
		t.Error("lo=0 log: want error")
	}
	if _, err := NewLogHistogram(1, 1, 5); err == nil {
		t.Error("degenerate log range: want error")
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h, err := NewLogHistogram(1, 1e6, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Edges should be decades: 1, 10, 100, ..., 1e6.
	for i, want := range []float64{1, 10, 100, 1000, 1e4, 1e5, 1e6} {
		if math.Abs(h.Edges[i]-want)/want > 1e-9 {
			t.Errorf("edge %d = %v, want %v", i, h.Edges[i], want)
		}
	}
	h.Add(5)    // bin 0
	h.Add(50)   // bin 1
	h.Add(5e5)  // bin 5
	h.Add(1e6)  // closed top -> bin 5
	h.Add(1)    // bin 0
	h.Add(9.99) // bin 0
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[5] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestHistogramFrequenciesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h, err := NewLogHistogram(1, 1e4, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		h.Add(1 + rng.Float64()*9998)
	}
	var sum float64
	for _, f := range h.Frequencies() {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("frequency sum = %v, want 1 (no out-of-range data)", sum)
	}
}

func TestHistogramFrequenciesEmpty(t *testing.T) {
	h, _ := NewLinearHistogram(0, 1, 2)
	if h.Frequencies() != nil {
		t.Error("empty histogram should return nil frequencies")
	}
}

func TestHistogramCenters(t *testing.T) {
	h, _ := NewLinearHistogram(0, 10, 5)
	c := h.Centers()
	want := []float64{1, 3, 5, 7, 9}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Errorf("center %d = %v, want %v", i, c[i], want[i])
		}
	}
	lh, _ := NewLogHistogram(1, 100, 2)
	lc := lh.Centers()
	if math.Abs(lc[0]-math.Sqrt(10)) > 1e-9 {
		t.Errorf("log center 0 = %v, want sqrt(10)", lc[0])
	}
}

// Property: every in-range observation lands in the bin whose edges
// bracket it, for both scales.
func TestHistogramPlacementProperty(t *testing.T) {
	f := func(xRaw float64, logScale bool) bool {
		x := 1 + math.Abs(math.Mod(xRaw, 9998))
		var h *Histogram
		var err error
		if logScale {
			h, err = NewLogHistogram(1, 10000, 37)
		} else {
			h, err = NewLinearHistogram(1, 10000, 37)
		}
		if err != nil {
			return false
		}
		h.Add(x)
		for i, c := range h.Counts {
			if c == 1 {
				hiOK := x < h.Edges[i+1] || (i == len(h.Counts)-1 && x <= h.Edges[i+1])
				return h.Edges[i] <= x && hiOK
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
