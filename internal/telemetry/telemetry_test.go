package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRenderOrderAndValues(t *testing.T) {
	var served atomic.Int64
	served.Store(41)
	reg := NewRegistry()
	reg.Set("conns_open", func() int64 { return 3 })
	reg.Set("transfers_served", served.Load)
	reg.Set("conns_open", func() int64 { return 5 }) // replace keeps position

	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	served.Add(1)
	want := "conns_open 5\ntransfers_served 41\n"
	if sb.String() != want {
		t.Fatalf("render %q want %q", sb.String(), want)
	}

	sb.Reset()
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "transfers_served 42\n") {
		t.Fatalf("gauge not live: %q", sb.String())
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "conns_open" || got[1] != "transfers_served" {
		t.Fatalf("names %v", got)
	}
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid name")
		}
	}()
	NewRegistry().Set("has space", func() int64 { return 0 })
}

func TestServeEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Set("redirects", func() int64 { return 7 })
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if string(body) != "redirects 7\n" {
		t.Fatalf("body %q", body)
	}

	other, err := http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	other.Body.Close()
	if other.StatusCode != http.StatusNotFound {
		t.Fatalf("root status %d", other.StatusCode)
	}

	post, err := http.Post("http://"+srv.Addr()+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", post.StatusCode)
	}
}
