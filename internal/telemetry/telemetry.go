// Package telemetry exposes process counters as a plain-text HTTP
// endpoint: one "name value" line per registered gauge, in registration
// order. It is the ops surface for the serving binaries — an e2e
// harness or an operator curls /metrics instead of grepping logs for
// status lines.
//
// The format is deliberately primitive (no types, no labels, no
// timestamps): every value is a point-in-time int64 read from a gauge
// function, so the endpoint never caches and never races the counters
// it reports.
package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Gauge reads one counter's current value.
type Gauge func() int64

// Registry holds named gauges. The zero value is not ready — use
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	names  []string
	gauges map[string]Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{gauges: make(map[string]Gauge)}
}

// Set registers g under name, replacing any previous gauge with that
// name (its position in the output is kept). Names are snake_case
// tokens; anything with whitespace is a programming error.
func (r *Registry) Set(name string, g Gauge) {
	if name == "" || strings.ContainsAny(name, " \t\n") {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauges[name]; !ok {
		r.names = append(r.names, name)
	}
	r.gauges[name] = g
}

// Render writes the current values, one "name value" line per gauge in
// registration order. Gauges run outside the registry lock, so a gauge
// may itself take locks (len of a connection map, say) without ordering
// constraints against Set.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	gauges := make([]Gauge, len(names))
	for i, n := range names {
		gauges[i] = r.gauges[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, gauges[i]()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves GET /metrics from the registry; any other path is 404.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Render(w)
	})
	return mux
}

// Names returns the registered metric names, sorted — the stable
// inventory a test asserts against.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	sort.Strings(out)
	return out
}

// Server is a running /metrics endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the endpoint on addr ("127.0.0.1:0" for an ephemeral
// port). The listener is bound before Serve returns, so the reported
// Addr is immediately connectable.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen: %w", err)
	}
	srv := &http.Server{
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error {
	err := s.srv.Close()
	if err == http.ErrServerClosed {
		err = nil
	}
	return err
}
