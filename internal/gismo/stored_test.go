package gismo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/stats"
)

func testStored() StoredModel {
	return DefaultStored(2, 1000, 0.05)
}

func TestStoredModelValidate(t *testing.T) {
	good := testStored()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*StoredModel){
		func(m *StoredModel) { m.Horizon = 0 },
		func(m *StoredModel) { m.NumClients = 0 },
		func(m *StoredModel) { m.NumObjects = 0 },
		func(m *StoredModel) { m.Popularity.Alpha = 0 },
		func(m *StoredModel) { m.Popularity.N = m.NumObjects + 1 },
		func(m *StoredModel) { m.ObjectSize.Sigma = 0 },
		func(m *StoredModel) { m.ArrivalRate = 0 },
		func(m *StoredModel) { m.CompletionMean = 0 },
		func(m *StoredModel) { m.CompletionMean = 1.5 },
	}
	for i, mutate := range mutations {
		m := testStored()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestGenerateStoredBasicShape(t *testing.T) {
	m := testStored()
	w, err := GenerateStored(m, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// ~0.05/s over 2 days = ~8,640 requests.
	if len(w.Requests) < 7000 || len(w.Requests) > 10500 {
		t.Fatalf("requests = %d", len(w.Requests))
	}
	for i, r := range w.Requests {
		if i > 0 && r.Start < w.Requests[i-1].Start {
			t.Fatal("not sorted")
		}
		if r.Object < 0 || r.Object >= m.NumObjects {
			t.Fatal("bad object")
		}
		if r.Duration < 1 || r.Duration > w.ObjectSeconds[r.Object] {
			t.Fatalf("duration %d exceeds object size %d", r.Duration, w.ObjectSeconds[r.Object])
		}
		if r.End() > m.Horizon {
			t.Fatal("escapes horizon")
		}
	}
}

func TestStoredObjectPopularityIsZipf(t *testing.T) {
	m := testStored()
	m.ArrivalRate = 0.3 // more samples for a stable fit
	w, err := GenerateStored(m, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, m.NumObjects)
	for _, r := range w.Requests {
		counts[r.Object]++
	}
	fit, err := dist.FitZipfCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-m.Popularity.Alpha) > 0.25 {
		t.Errorf("object popularity alpha = %v, want ~%v", fit.Alpha, m.Popularity.Alpha)
	}
}

func TestStoredDuality(t *testing.T) {
	// The paper's central claim, measured: for STORED media the transfer
	// length correlates with object size; for LIVE media it does not
	// correlate with anything structural about the (single) object.
	m := testStored()
	m.ArrivalRate = 0.2
	w, err := GenerateStored(m, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	lengths := make([]float64, len(w.Requests))
	sizes := make([]float64, len(w.Requests))
	for i, r := range w.Requests {
		lengths[i] = float64(r.Duration)
		sizes[i] = float64(w.ObjectSeconds[r.Object])
	}
	r, err := stats.SpearmanCorrelation(lengths, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.5 {
		t.Errorf("stored length/size correlation = %v, want strong (size-driven lengths)", r)
	}

	// Live side: lengths are drawn independently of any object property.
	live, err := Scaled(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := Generate(live, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	liveLen := make([]float64, len(lw.Requests))
	liveObj := make([]float64, len(lw.Requests))
	for i, r := range lw.Requests {
		liveLen[i] = float64(r.Duration)
		liveObj[i] = float64(r.Object)
	}
	lr, err := stats.SpearmanCorrelation(liveLen, liveObj)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lr) > 0.1 {
		t.Errorf("live length/object correlation = %v, want ~0 (stickiness-driven lengths)", lr)
	}
}

func TestStoredCompletionMean(t *testing.T) {
	m := testStored()
	m.CompletionMean = 0.55
	rng := rand.New(rand.NewSource(5))
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += watchedFraction(m.CompletionMean, rng)
	}
	got := sum / n
	if math.Abs(got-0.55) > 0.02 {
		t.Errorf("mean watched fraction = %v, want ~0.55", got)
	}
	if f := watchedFraction(1, rng); f != 1 {
		t.Errorf("mean=1 should always watch fully, got %v", f)
	}
}

func TestGenerateStoredRejectsInvalid(t *testing.T) {
	m := testStored()
	m.ArrivalRate = -1
	if _, err := GenerateStored(m, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid model accepted")
	}
}
