package gismo

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/topology"
)

// AccessClass is one client access-link tier. The spikes on the right of
// Figure 20 are "client-bound bandwidth values determined primarily by
// client connection speeds (e.g., various modem speeds, DSL, cable
// modem)".
type AccessClass struct {
	Name string
	Bps  int64   // link capacity in bits/second
	Frac float64 // population share
}

// AccessClasses is the early-2002 Brazilian access mix used by the
// default model: dial-up dominates, with growing DSL/cable tails.
var AccessClasses = []AccessClass{
	{Name: "modem-28.8k", Bps: 28800, Frac: 0.18},
	{Name: "modem-33.6k", Bps: 33600, Frac: 0.22},
	{Name: "modem-56k", Bps: 56000, Frac: 0.34},
	{Name: "isdn-128k", Bps: 128000, Frac: 0.08},
	{Name: "dsl-256k", Bps: 256000, Frac: 0.10},
	{Name: "dsl-512k", Bps: 512000, Frac: 0.05},
	{Name: "cable-1m", Bps: 1000000, Frac: 0.03},
}

// clientOSes and clientCPUs populate the "client environment
// specification" log fields.
var clientOSes = []string{
	"Windows 98", "Windows 2000", "Windows ME", "Windows NT 4.0", "Windows XP",
}

var clientCPUs = []string{
	"Pentium II", "Pentium III", "Pentium 4", "Celeron", "AMD K6",
}

// Client is one unique client entity — the paper's GISMO extension
// "required us to introduce clients as unique entities" (Section 6.2).
type Client struct {
	ID        int
	PlayerID  string // logged player identifier
	Placement topology.Placement
	Access    AccessClass
	OS        string
	CPU       string
}

// Population is the generated client population, indexed by dense client
// ID.
type Population struct {
	Clients []Client
}

// NewPopulation places n clients into the topology and assigns each an
// access class and environment.
func NewPopulation(n int, topoCfg topology.Config, rng *rand.Rand) (*Population, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: population size %d", ErrBadModel, n)
	}
	topo, err := topology.New(topoCfg, rng)
	if err != nil {
		return nil, err
	}
	// Cumulative access-class table.
	cum := make([]float64, len(AccessClasses))
	var acc float64
	for i, c := range AccessClasses {
		acc += c.Frac
		cum[i] = acc
	}

	p := &Population{Clients: make([]Client, n)}
	for i := 0; i < n; i++ {
		p.Clients[i] = Client{
			ID:        i,
			PlayerID:  fmt.Sprintf("player-%07d", i),
			Placement: topo.Place(rng),
			Access:    drawAccess(cum, rng),
			OS:        clientOSes[rng.IntN(len(clientOSes))],
			CPU:       clientCPUs[rng.IntN(len(clientCPUs))],
		}
	}
	return p, nil
}

func drawAccess(cum []float64, rng *rand.Rand) AccessClass {
	u := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if u <= c {
			return AccessClasses[i]
		}
	}
	return AccessClasses[len(AccessClasses)-1]
}

// Size returns the population size.
func (p *Population) Size() int { return len(p.Clients) }
