package gismo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/rate"
	"repro/internal/topology"
)

// The model spec is the interchange format of the calibration loop:
// lsmcal fits a Model off a trace and saves it, lsmgen loads it and
// generates. The format is the Table 2 parameter set as JSON, with the
// arrival profile's hourly/weekly shape serialized explicitly so a
// fitted empirical profile survives the round trip. Save and LoadModel
// are inverses down to the byte: encoding/json renders floats in their
// canonical shortest form and struct fields in declaration order, so
// load → save reproduces the file exactly.

// modelAlias strips Model's custom JSON methods so the spec codec
// controls field handling directly — including LoadModel's
// unknown-field strictness, which would stop at the method boundary if
// the decoder saw a type with its own UnmarshalJSON.
type modelAlias Model

// modelSpec is the on-disk shape: the Table 2 scalars plus the arrival
// profile shape (absent when the model rides the built-in reality-show
// profile).
type modelSpec struct {
	modelAlias
	ProfileHourly *[24]float64 `json:"profile_hourly,omitempty"`
	ProfileDaily  *[7]float64  `json:"profile_daily,omitempty"`
}

// finishDecode rebuilds the non-serialized fields after a decode: the
// rate profile from its serialized shape (anchored at BaseArrivalRate)
// and the default topology when none was set.
func (m *Model) finishDecode(hourly *[24]float64, daily *[7]float64) error {
	if hourly != nil && daily != nil {
		p, err := rate.New(m.BaseArrivalRate, *hourly, *daily, 0)
		if err != nil {
			return err
		}
		m.Profile = p
	}
	if m.Topology.NumAS == 0 {
		m.Topology = topology.DefaultConfig()
	}
	return nil
}

// LoadModel reads a model spec from path and validates it. Decoding is
// strict: unknown fields anywhere in the document are errors, so a
// typoed parameter name fails loudly instead of silently falling back
// to a zero value.
func LoadModel(path string) (Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Model{}, fmt.Errorf("gismo: load model: %w", err)
	}
	var aux modelSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&aux); err != nil {
		return Model{}, fmt.Errorf("gismo: load model %s: %w", path, err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil {
		return Model{}, fmt.Errorf("gismo: load model %s: trailing data after spec object", path)
	}
	m := Model(aux.modelAlias)
	if err := m.finishDecode(aux.ProfileHourly, aux.ProfileDaily); err != nil {
		return Model{}, fmt.Errorf("gismo: load model %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return Model{}, fmt.Errorf("gismo: load model %s: %w", path, err)
	}
	return m, nil
}

// Save validates the model and writes its spec to path, indented, with
// a trailing newline. Field order follows the Model declaration, and
// floats encode in Go's canonical shortest round-trip form, so saving
// a loaded spec reproduces the input byte for byte.
func (m Model) Save(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
