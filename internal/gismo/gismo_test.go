package gismo

import (
	"encoding/json"
	"math"
	"math/rand"
	randv2 "math/rand/v2"
	"testing"

	"repro/internal/dist"
)

// testModel returns a small, fast model with the paper's distributional
// parameters.
func testModel() Model {
	m, err := Scaled(300, 3)
	if err != nil {
		panic(err)
	}
	return m
}

func TestDefaultModelValidates(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Horizon != 28*86400 {
		t.Errorf("horizon = %d, want 28 days", m.Horizon)
	}
	if m.NumClients != 691889 {
		t.Errorf("clients = %d, want Table 1's 691,889", m.NumClients)
	}
	if m.NumObjects != 2 {
		t.Errorf("objects = %d, want 2", m.NumObjects)
	}
	if math.Abs(m.Interest.Alpha-0.4704) > 1e-9 {
		t.Errorf("interest alpha = %v", m.Interest.Alpha)
	}
	if math.Abs(m.TransfersPerSession.Alpha-2.70417) > 1e-9 {
		t.Errorf("per-session alpha = %v", m.TransfersPerSession.Alpha)
	}
}

func TestDefaultExpectedSessionsNearPaperScale(t *testing.T) {
	n, err := ExpectedSessions(Default())
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: > 1.5M sessions. Accept 1.2M–2.2M.
	if n < 1.2e6 || n > 2.2e6 {
		t.Errorf("expected sessions = %v, want ~1.5M", n)
	}
}

func TestScaledValidation(t *testing.T) {
	if _, err := Scaled(0.5, 2); err == nil {
		t.Error("factor < 1: want error")
	}
	if _, err := Scaled(10, 0); err == nil {
		t.Error("0 days: want error")
	}
	m, err := Scaled(1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumClients < 10 {
		t.Error("population floor violated")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateCatchesEachField(t *testing.T) {
	mutations := []func(*Model){
		func(m *Model) { m.Horizon = 0 },
		func(m *Model) { m.NumClients = 0 },
		func(m *Model) { m.NumObjects = 0 },
		func(m *Model) { m.BaseArrivalRate = 0 },
		func(m *Model) { m.PoissonWindow = 0 },
		func(m *Model) { m.Interest.Alpha = 0 },
		func(m *Model) { m.Interest.N = 0 },
		func(m *Model) { m.Interest.N = m.NumClients + 1 },
		func(m *Model) { m.TransfersPerSession.Alpha = -1 },
		func(m *Model) { m.TransfersPerSession.N = 0 },
		func(m *Model) { m.IntraSessionGap.Sigma = 0 },
		func(m *Model) { m.TransferLength.Sigma = -1 },
		func(m *Model) { m.FeedPreference = 1.5 },
		func(m *Model) { m.FeedPreference = -0.1 },
	}
	for i, mutate := range mutations {
		m := Default()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := testModel()
	w, err := Generate(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if w.SessionCount == 0 || len(w.Requests) == 0 {
		t.Fatal("empty workload")
	}
	if len(w.Requests) < w.SessionCount {
		t.Errorf("requests %d < sessions %d", len(w.Requests), w.SessionCount)
	}
	// Requests sorted, inside horizon, valid clients/objects/durations.
	for i, r := range w.Requests {
		if i > 0 && r.Start < w.Requests[i-1].Start {
			t.Fatal("requests not sorted")
		}
		if r.Start < 0 || r.End() > m.Horizon {
			t.Fatalf("request escapes horizon: %+v", r)
		}
		if r.Client < 0 || r.Client >= m.NumClients {
			t.Fatalf("bad client %d", r.Client)
		}
		if r.Object < 0 || r.Object >= m.NumObjects {
			t.Fatalf("bad object %d", r.Object)
		}
		if r.Duration < 1 {
			t.Fatalf("bad duration %d", r.Duration)
		}
	}
}

func TestGenerateDeterministicUnderSeed(t *testing.T) {
	m := testModel()
	gen := func() *Workload {
		w, err := Generate(m, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := gen(), gen()
	if len(a.Requests) != len(b.Requests) || a.SessionCount != b.SessionCount {
		t.Fatalf("non-deterministic sizes: %d/%d vs %d/%d",
			len(a.Requests), a.SessionCount, len(b.Requests), b.SessionCount)
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGenerateTransferLengthsAreLognormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := testModel()
	w, err := Generate(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	lengths := make([]float64, 0, len(w.Requests))
	for _, r := range w.Requests {
		// Exclude horizon-truncated transfers from the fit.
		if r.End() < m.Horizon {
			lengths = append(lengths, float64(r.Duration))
		}
	}
	fit, err := dist.FitLognormal(lengths)
	if err != nil {
		t.Fatal(err)
	}
	// Integer truncation of seconds biases mu slightly; allow 0.3.
	if math.Abs(fit.Mu-m.TransferLength.Mu) > 0.3 {
		t.Errorf("length mu = %v, want ~%v", fit.Mu, m.TransferLength.Mu)
	}
	if math.Abs(fit.Sigma-m.TransferLength.Sigma) > 0.3 {
		t.Errorf("length sigma = %v, want ~%v", fit.Sigma, m.TransferLength.Sigma)
	}
}

func TestGenerateDiurnalShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := testModel()
	w, err := Generate(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Compare trough (04-11h) to evening (19-23h) request starts.
	var trough, evening int
	for _, r := range w.Requests {
		h := (r.Start % 86400) / 3600
		switch {
		case h >= 4 && h < 11:
			trough++
		case h >= 19 && h < 23:
			evening++
		}
	}
	// Evening window is shorter (4h vs 7h) but must still dominate.
	if evening <= 2*trough {
		t.Errorf("evening %d vs trough %d: diurnal shape missing", evening, trough)
	}
}

func TestGenerateInterestSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := testModel()
	w, err := Generate(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, m.NumClients)
	for _, r := range w.Requests {
		counts[r.Client]++
	}
	fit, err := dist.FitZipfCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	// The transfers-per-client slope should be Zipf-ish; the paper
	// measured 0.7194 at full scale. At test scale accept a broad band
	// around the interest parameter.
	if fit.Alpha < 0.2 || fit.Alpha > 1.3 {
		t.Errorf("interest alpha = %v, want skewed Zipf-like", fit.Alpha)
	}
}

func TestGenerateFeedPreference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := testModel()
	m.FeedPreference = 0.6
	w, err := Generate(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	var feed0 int
	for _, r := range w.Requests {
		if r.Object == 0 {
			feed0++
		}
	}
	share := float64(feed0) / float64(len(w.Requests))
	if math.Abs(share-0.6) > 0.05 {
		t.Errorf("feed-0 share = %v, want ~0.6", share)
	}
}

func TestGenerateSingleObjectModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := testModel()
	m.NumObjects = 1
	w, err := Generate(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range w.Requests {
		if r.Object != 0 {
			t.Fatal("single-object model produced object != 0")
		}
	}
}

func TestGenerateRejectsInvalidModel(t *testing.T) {
	m := testModel()
	m.Horizon = -1
	if _, err := Generate(m, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestPopulation(t *testing.T) {
	rng := randv2.New(randv2.NewPCG(7, 0))
	m := testModel()
	pop, err := NewPopulation(200, m.Topology, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Size() != 200 {
		t.Fatalf("size = %d", pop.Size())
	}
	ids := map[string]bool{}
	for _, c := range pop.Clients {
		if c.PlayerID == "" || ids[c.PlayerID] {
			t.Fatal("player IDs must be unique and non-empty")
		}
		ids[c.PlayerID] = true
		if c.Access.Bps <= 0 {
			t.Fatal("client without access class")
		}
		if c.OS == "" || c.CPU == "" {
			t.Fatal("client without environment")
		}
	}
	if _, err := NewPopulation(0, m.Topology, rng); err == nil {
		t.Error("empty population: want error")
	}
}

func TestAccessClassSharesSumToOne(t *testing.T) {
	var sum float64
	for _, c := range AccessClasses {
		sum += c.Frac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("access class shares sum to %v", sum)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := testModel()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Horizon != m.Horizon || back.NumClients != m.NumClients {
		t.Errorf("scale fields lost: %+v", back)
	}
	if back.Interest != m.Interest || back.TransfersPerSession != m.TransfersPerSession {
		t.Errorf("zipf fields lost")
	}
	if back.IntraSessionGap != m.IntraSessionGap || back.TransferLength != m.TransferLength {
		t.Errorf("lognormal fields lost")
	}
	if back.Topology.NumAS == 0 {
		t.Error("topology default not restored")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelJSONWithProfile(t *testing.T) {
	m := testModel()
	p, err := rateRealityShow(m.BaseArrivalRate)
	if err != nil {
		t.Fatal(err)
	}
	m.Profile = p
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Profile == nil {
		t.Fatal("profile lost in round trip")
	}
	if math.Abs(back.Profile.Rate(21*3600)-p.Rate(21*3600)) > 1e-9 {
		t.Error("profile shape changed")
	}
}
