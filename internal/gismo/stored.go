package gismo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dist"
)

// Stored-media workload generation: GISMO's original mode, kept here as
// the contrast class for the paper's central claim.
//
// "Accesses to pre-recorded, stored media objects are user driven; they
// are directly influenced by user preferences — namely, what to access
// and when to do so. Accesses to live media are object driven."
// (Section 1.) The dualities that follow — Zipf *object popularity* for
// stored versus Zipf *client interest* for live, and transfer lengths
// rooted in object size versus client stickiness — are measurable only
// with both generators in hand. StoredModel is the stored side.

// StoredModel parameterizes a classic stored-media (clip library)
// workload.
type StoredModel struct {
	// Horizon is the trace length in seconds.
	Horizon int64 `json:"horizon_seconds"`
	// NumClients is the population size; clients are chosen uniformly
	// (no interest skew — stored access is driven by object choice).
	NumClients int `json:"num_clients"`
	// NumObjects is the clip-library size (hundreds to thousands, versus
	// the live workload's 2).
	NumObjects int `json:"num_objects"`
	// Popularity is the Zipf law of object popularity — the classic
	// result for stored media (Chesire et al., Breslau et al.).
	Popularity ZipfParams `json:"popularity"`
	// ObjectSize is the lognormal law of object durations in seconds.
	ObjectSize LognormalParams `json:"object_size"`
	// ArrivalRate is the request rate in requests/second (stationary:
	// stored access lacks the live feed's synchronizing schedule).
	ArrivalRate float64 `json:"arrival_rate"`
	// CompletionMean in (0, 1] is the mean fraction of an object a
	// viewer watches before stopping (Acharya & Smith observed ~half of
	// requests stop early).
	CompletionMean float64 `json:"completion_mean"`
}

// DefaultStored returns a stored-media model sized against the scaled
// live model it will be compared with.
func DefaultStored(horizonDays, numClients int, arrivalRate float64) StoredModel {
	return StoredModel{
		Horizon:        int64(horizonDays) * 86400,
		NumClients:     numClients,
		NumObjects:     1000,
		Popularity:     ZipfParams{Alpha: 0.8, N: 1000}, // Chesire et al.: Zipf-like object popularity
		ObjectSize:     LognormalParams{Mu: 5.0, Sigma: 1.2},
		ArrivalRate:    arrivalRate,
		CompletionMean: 0.55,
	}
}

// Validate checks the model.
func (m *StoredModel) Validate() error {
	if m.Horizon <= 0 {
		return fmt.Errorf("%w: horizon %d", ErrBadModel, m.Horizon)
	}
	if m.NumClients < 1 || m.NumObjects < 1 {
		return fmt.Errorf("%w: %d clients / %d objects", ErrBadModel, m.NumClients, m.NumObjects)
	}
	if m.Popularity.Alpha <= 0 || m.Popularity.N < 1 || m.Popularity.N > m.NumObjects {
		return fmt.Errorf("%w: popularity %+v", ErrBadModel, m.Popularity)
	}
	if m.ObjectSize.Sigma <= 0 {
		return fmt.Errorf("%w: object size %+v", ErrBadModel, m.ObjectSize)
	}
	if m.ArrivalRate <= 0 {
		return fmt.Errorf("%w: arrival rate %v", ErrBadModel, m.ArrivalRate)
	}
	if m.CompletionMean <= 0 || m.CompletionMean > 1 {
		return fmt.Errorf("%w: completion mean %v", ErrBadModel, m.CompletionMean)
	}
	return nil
}

// StoredWorkload is the generated stored-media request stream.
type StoredWorkload struct {
	Model StoredModel
	// ObjectSeconds holds each object's full duration in seconds.
	ObjectSeconds []int64
	Requests      []Request
}

// GenerateStored produces the stored-media workload: Poisson request
// arrivals; each request picks an object by Zipf popularity and a client
// uniformly; the transfer length is the object's size times a watched
// fraction — length is *size-driven*, the stored-media signature.
func GenerateStored(m StoredModel, rng *rand.Rand) (*StoredWorkload, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	size, err := dist.NewLognormal(m.ObjectSize.Mu, m.ObjectSize.Sigma)
	if err != nil {
		return nil, err
	}
	popularity, err := dist.NewZipf(m.Popularity.Alpha, m.Popularity.N)
	if err != nil {
		return nil, err
	}
	process, err := dist.NewPoissonProcess(m.ArrivalRate)
	if err != nil {
		return nil, err
	}

	w := &StoredWorkload{Model: m, ObjectSeconds: make([]int64, m.NumObjects)}
	for i := range w.ObjectSeconds {
		s := int64(size.Sample(rng))
		if s < 1 {
			s = 1
		}
		w.ObjectSeconds[i] = s
	}

	arrivals := process.ArrivalsIn(rng, 0, float64(m.Horizon), nil)
	w.Requests = make([]Request, 0, len(arrivals))
	for _, at := range arrivals {
		obj := popularity.SampleRank(rng) - 1
		start := int64(at)
		// Watched fraction: Beta-ish via a simple power transform of a
		// uniform, calibrated to CompletionMean.
		frac := watchedFraction(m.CompletionMean, rng)
		d := int64(frac * float64(w.ObjectSeconds[obj]))
		if d < 1 {
			d = 1
		}
		if start+d > m.Horizon {
			d = m.Horizon - start
			if d < 1 {
				continue
			}
		}
		w.Requests = append(w.Requests, Request{
			Client:   rng.Intn(m.NumClients),
			Object:   obj,
			Start:    start,
			Duration: d,
		})
	}
	sort.Slice(w.Requests, func(i, j int) bool { return w.Requests[i].Start < w.Requests[j].Start })
	return w, nil
}

// watchedFraction draws U^(1/m - 1)-style fractions with mean ~mean:
// for U uniform, E[U^k] = 1/(k+1), so k = 1/mean - 1 gives the target.
func watchedFraction(mean float64, rng *rand.Rand) float64 {
	if mean >= 1 {
		return 1
	}
	k := 1/mean - 1
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	f := math.Pow(u, k)
	if f > 1 {
		f = 1
	}
	return f
}
