package gismo

import "repro/internal/rate"

// rateRealityShow re-exports the profile constructor for tests.
var rateRealityShow = rate.RealityShow
