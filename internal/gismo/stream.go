package gismo

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"runtime"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/heapx"
	"repro/internal/workload"
)

// Seed-derivation lanes (DESIGN.md, shard-seeding scheme). Every random
// decision in a streamed generation is keyed to (seed, lane) — or, for
// session bodies, to (seed, session index) — so the emitted event
// sequence is a pure function of the seed, independent of the shard
// count and of goroutine scheduling.
const (
	laneRate       uint64 = 0 // day factors, ramp, event schedule
	lanePopulation uint64 = 1 // client placement and environment
	laneArrivals   uint64 = 2 // Poisson thinning
	laneSessions   uint64 = 3 // root for per-session body streams
	laneInterest   uint64 = 4 // root for per-session interest draws
)

const (
	// streamBatch is the number of events a shard hands to the merge
	// layer per channel operation.
	streamBatch = 512
	// streamBatchDepth is the per-shard channel depth, bounding how far
	// a fast shard can run ahead of the merge point.
	streamBatchDepth = 4
	// MaxShards bounds the shard count.
	MaxShards = 1024
)

// WorkloadStream is the sharded streaming form of Generate: the same
// Section 6 generative model, emitted as a time-ordered event stream
// whose working set is the arrival schedule (16 bytes per session) plus
// the active sessions' pending transfers — never the materialized
// request slice.
//
// Construction draws the global arrival schedule once — the Poisson
// thinning, the inherently serial sliver of the work — from the seed's
// arrival lane. Each of K shards then walks that shared read-only
// schedule; a session's interest variate comes from a counter-mode
// splitmix draw keyed by (seed, session index), so any shard can
// compute it in O(1), and ownership is the variate's K-quantile band:
// clients are partitioned across shards in contiguous interest-weight
// bands, each carrying ~1/K of the sessions, and only the owner pays
// the O(log N) Zipf inversion. Owned sessions are expanded eagerly from
// a per-session splitmix RNG and released once the schedule cursor
// guarantees nothing earlier can appear. The K ordered shard outputs
// are merged back into the (Start, Session, Seq) total order, so the
// stream is byte-identical for every shard count.
type WorkloadStream struct {
	model    Model
	seed     int64
	shards   int
	pop      *Population
	schedule []int64 // session arrival instants, ascending
	merged   workload.Stream
	done     chan struct{}
	closed   atomic.Bool
}

// NewStream validates the model and starts the sharded generator.
// Callers must either drain the stream or Close it.
func NewStream(m Model, seed int64, shards int) (*WorkloadStream, error) {
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadModel, shards)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	profile, err := m.profile()
	if err != nil {
		return nil, err
	}
	rateRng := rand.New(dist.NewSplitMix64(dist.Mix64(uint64(seed), laneRate)))
	rateFn, err := m.effectiveRate(profile.Rate, rateRng)
	if err != nil {
		return nil, err
	}
	pp, err := dist.NewPiecewisePoisson(rateFn, m.PoissonWindow)
	if err != nil {
		return nil, err
	}
	interest, err := dist.NewZipf(m.Interest.Alpha, m.Interest.N)
	if err != nil {
		return nil, err
	}
	perSession, err := dist.NewZipf(m.TransfersPerSession.Alpha, m.TransfersPerSession.N)
	if err != nil {
		return nil, err
	}
	gap, err := m.gapSampler()
	if err != nil {
		return nil, err
	}
	length, err := m.lengthSampler()
	if err != nil {
		return nil, err
	}
	popRng := randv2.New(dist.NewSplitMix64(dist.Mix64(uint64(seed), lanePopulation)))
	pop, err := NewPopulation(m.NumClients, m.Topology, popRng)
	if err != nil {
		return nil, err
	}

	ws := &WorkloadStream{
		model:  m,
		seed:   seed,
		shards: shards,
		pop:    pop,
		done:   make(chan struct{}),
	}
	// The serial prologue: one pass of Poisson thinning fixes every
	// session's arrival instant. Shards share this schedule read-only;
	// everything per-session happens in them.
	arrRng := rand.New(dist.NewSplitMix64(dist.Mix64(uint64(seed), laneArrivals)))
	arrivals := pp.Stream(arrRng, float64(m.Horizon))
	for {
		at, ok := arrivals.Next()
		if !ok {
			break
		}
		ws.schedule = append(ws.schedule, int64(at))
	}

	inputs := make([]workload.Stream, shards)
	for s := 0; s < shards; s++ {
		out := make(chan []workload.Event, streamBatchDepth)
		inputs[s] = &shardOutput{ch: out}
		go ws.runShard(s, out, interest, perSession, gap, length)
	}
	ws.merged = workload.Merge(inputs...)
	return ws, nil
}

// interestUniform is session idx's interest variate in [0, 1): the
// counter-mode splitmix stream of the seed's interest lane evaluated at
// idx. Pure and O(1), so every shard can test ownership without
// replaying a sequential RNG.
func interestUniform(interestRoot uint64, idx int) float64 {
	return float64(dist.Mix64(interestRoot, uint64(idx))>>11) / (1 << 53)
}

// Next implements workload.Stream.
func (ws *WorkloadStream) Next() (workload.Event, bool) {
	if ws.closed.Load() {
		return workload.Event{}, false
	}
	return ws.merged.Next()
}

// Close releases the shard goroutines of a stream that will not be
// drained. It is idempotent; draining to exhaustion makes it a no-op.
func (ws *WorkloadStream) Close() {
	if ws.closed.CompareAndSwap(false, true) {
		close(ws.done)
	}
}

// Population returns the generated client population.
func (ws *WorkloadStream) Population() *Population { return ws.pop }

// Model returns the generating model.
func (ws *WorkloadStream) Model() Model { return ws.model }

// Sessions returns the number of generated sessions (client arrivals).
func (ws *WorkloadStream) Sessions() int { return len(ws.schedule) }

// Shards returns the shard count.
func (ws *WorkloadStream) Shards() int { return ws.shards }

// runShard generates the events of the sessions owned by shard s, in
// stream order, batching them onto out.
func (ws *WorkloadStream) runShard(s int, out chan<- []workload.Event, interest, perSession *dist.Zipf, gap, length dist.Lognormal) {
	defer close(out)
	m := ws.model
	sessionRoot := dist.Mix64(uint64(ws.seed), laneSessions)
	interestRoot := dist.Mix64(uint64(ws.seed), laneInterest)
	interestTotal := interest.Total()
	sessSrc := dist.NewSplitMix64(0)
	sessRng := rand.New(sessSrc)

	pending := newCursorHeap()
	batch := make([]workload.Event, 0, streamBatch)
	flushBatch := func() bool {
		select {
		case out <- batch:
			batch = make([]workload.Event, 0, streamBatch)
			return true
		case <-ws.done:
			return false
		}
	}
	// Exhausted sessions donate their event slices back; expansion
	// reuses them, so steady-state generation allocates one slice per
	// *concurrently pending* session, not per session.
	var spare [][]workload.Event
	step := func() {
		if done := advanceCursor(&pending); done != nil {
			spare = append(spare, done[:0])
		}
	}
	nextBuf := func() []workload.Event {
		if n := len(spare); n > 0 {
			b := spare[n-1]
			spare = spare[:n-1]
			return b
		}
		return nil
	}

	for idx, at := range ws.schedule {
		bound := workload.Event{Start: at, Session: idx}
		// Release pending events that precede the next arrival: no
		// later session can produce anything earlier.
		for pending.Len() > 0 && pending.Peek().head().Less(bound) {
			batch = append(batch, pending.Peek().head())
			if len(batch) == streamBatch && !flushBatch() {
				return
			}
			step()
		}
		u := interestUniform(interestRoot, idx)
		if owner := int(u * float64(ws.shards)); owner == s ||
			(owner >= ws.shards && s == ws.shards-1) { // guard float rounding at u→1
			client := interest.RankOfU(u*interestTotal) - 1
			sessSrc.Seed(int64(dist.Mix64(sessionRoot, uint64(idx))))
			if events := expandSession(&m, idx, client, at, sessRng, perSession, gap, length, nextBuf()); len(events) > 0 {
				pending.Push(newCursor(events))
			} else if events != nil {
				spare = append(spare, events[:0])
			}
		}
	}
	for pending.Len() > 0 {
		batch = append(batch, pending.Peek().head())
		if len(batch) == streamBatch && !flushBatch() {
			return
		}
		step()
	}
	if len(batch) > 0 {
		flushBatch()
	}
}

// expandSession draws one session's transfers from its dedicated RNG:
// transfer count (Zipf), intra-session gaps and lengths (lognormal),
// object choice — the same draw order per transfer as the original
// materializing generator, truncated at the horizon. buf, when
// non-nil, is a recycled slice to expand into (its capacity is reused;
// growth falls back to append's normal allocation).
func expandSession(m *Model, session, client int, start int64, rng *rand.Rand, perSession *dist.Zipf, gap, length dist.Lognormal, buf []workload.Event) []workload.Event {
	n := perSession.SampleRank(rng)
	events := buf
	if events == nil {
		events = make([]workload.Event, 0, n)
	}
	t := start
	for k := 0; k < n; k++ {
		if k > 0 {
			t += int64(gap.Sample(rng))
		}
		if t >= m.Horizon {
			break
		}
		d := int64(length.Sample(rng))
		if d < 1 {
			d = 1
		}
		if t+d > m.Horizon {
			d = m.Horizon - t
			if d < 1 {
				break
			}
		}
		events = append(events, workload.Event{
			Session:  session,
			Seq:      len(events),
			Client:   client,
			Object:   m.pickObject(rng),
			Start:    t,
			Duration: d,
		})
	}
	return events
}

// shardOutput adapts a shard's batch channel to workload.Stream for the
// merge layer. Single-consumer, like every Stream.
type shardOutput struct {
	ch    <-chan []workload.Event
	batch []workload.Event
	pos   int
}

func (so *shardOutput) Next() (workload.Event, bool) {
	for so.pos >= len(so.batch) {
		b, ok := <-so.ch
		if !ok {
			return workload.Event{}, false
		}
		so.batch, so.pos = b, 0
	}
	e := so.batch[so.pos]
	so.pos++
	return e, true
}

// cursor walks one expanded session. Events within a session are in
// stream order by construction (gaps are non-negative, Seq increases).
// The head event is cached inline so heap comparisons — the hottest
// loop of the generator — never chase the events slice.
type cursor struct {
	hd     workload.Event
	events []workload.Event
	pos    int
}

func newCursor(events []workload.Event) cursor {
	return cursor{hd: events[0], events: events}
}

func (c cursor) head() workload.Event { return c.hd }

// newCursorHeap builds the min-heap of session cursors keyed by head
// event.
func newCursorHeap() heapx.Heap[cursor] {
	return heapx.New(func(a, b cursor) bool { return a.hd.Less(b.hd) })
}

// advanceCursor consumes the top cursor's head event: steps it forward
// in place, or removes the cursor when its session is exhausted — in
// which case the session's event slice is returned for reuse.
func advanceCursor(h *heapx.Heap[cursor]) []workload.Event {
	top := h.Top()
	top.pos++
	if top.pos >= len(top.events) {
		done := top.events
		h.Pop()
		return done
	}
	top.hd = top.events[top.pos]
	h.FixTop()
	return nil
}

// DefaultShards picks the shard count for the Generate compatibility
// wrapper: one per CPU, capped. The stream is shard-count-invariant, so
// this only affects speed, never output.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}
