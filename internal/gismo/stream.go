package gismo

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"runtime"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/heapx"
	"repro/internal/ring"
	"repro/internal/workload"
)

// Seed-derivation lanes (DESIGN.md, shard-seeding scheme). Every random
// decision in a streamed generation is keyed to (seed, lane) — or, for
// session bodies, to (seed, session index) — so the emitted event
// sequence is a pure function of the seed, independent of the shard
// count and of goroutine scheduling.
const (
	laneRate       uint64 = 0 // day factors, ramp, event schedule
	lanePopulation uint64 = 1 // client placement and environment
	laneArrivals   uint64 = 2 // Poisson thinning
	laneSessions   uint64 = 3 // root for per-session body streams
	laneInterest   uint64 = 4 // root for per-session interest draws
)

const (
	// streamBatch is the number of events per slab — the unit a shard
	// hands to the merge layer per ring operation.
	streamBatch = 512
	// streamBatchDepth is the per-shard output-ring depth, bounding how
	// far a fast shard can run ahead of the merge point before it
	// parks.
	streamBatchDepth = 4
	// recycleDepth is the per-shard recycle-ring depth: drained slabs
	// flow back to their producing shard through it, so steady-state
	// generation allocates no slabs at all. It covers every slab that
	// can be in flight (output ring + the shard's fill slab + the
	// consumer's drain slab); a slab that finds the ring full falls to
	// the garbage collector.
	recycleDepth = streamBatchDepth + 4
	// MaxShards bounds the shard count.
	MaxShards = 1024
)

// Consumption modes: a stream is drained through exactly one API —
// Next (event-at-a-time K-way merge) or NextSlab/RecycleSlab (the
// fused dispatcher's batch form). Mixing them would split the merge
// state across two consumers, so the first call locks the mode.
const (
	consumeUnset int8 = iota
	consumeNext
	consumeSlab
)

// WorkloadStream is the sharded streaming form of Generate: the same
// Section 6 generative model, emitted as a time-ordered event stream
// whose working set is the arrival schedule (16 bytes per session) plus
// the active sessions' pending transfers — never the materialized
// request slice.
//
// Construction draws the global arrival schedule once — the Poisson
// thinning, the inherently serial sliver of the work — from the seed's
// arrival lane, overlapped with the population build (the other serial
// prologue cost) on a second goroutine, so cold-start latency is the
// max of the two, not their sum. Each of K shards then walks that
// shared read-only schedule; a session's interest variate comes from a
// counter-mode splitmix draw keyed by (seed, session index), so any
// shard can compute it in O(1), and ownership is the variate's
// K-quantile band: clients are partitioned across shards in contiguous
// interest-weight bands, each carrying ~1/K of the sessions, and only
// the owner pays the O(log N) Zipf inversion. Owned sessions are
// expanded eagerly from a per-session splitmix RNG and released once
// the schedule cursor guarantees nothing earlier can appear.
//
// Each shard emits 512-event slabs over a bounded SPSC ring
// (internal/ring) — park/wake backpressure, no channel scheduling —
// and drained slabs return to their producing shard over a recycle
// ring, so steady-state generation allocates nothing at the seam. The
// K ordered shard outputs merge back into the (Start, Session, Seq)
// total order either event-at-a-time through Next, or slab-at-a-time
// through the workload.ShardedStream batch API (NextSlab/RecycleSlab),
// which the fused serve dispatcher consumes directly. Both views are
// byte-identical for every shard count.
type WorkloadStream struct {
	model      Model
	seed       int64
	shards     int
	pop        *Population
	schedule   []int64 // session arrival instants, ascending
	rings      []shardRings
	cursors    []mergeCursor // Next()'s K-way merge state, lazily built
	mode       int8          // consumeUnset / consumeNext / consumeSlab
	done       chan struct{}
	closed     atomic.Bool
	slabAllocs atomic.Int64 // fresh slab allocations (recycle misses)
}

// shardRings is one shard's seam to the merge layer: filled slabs flow
// consumer-ward on out, drained slab backing arrays flow back on rec.
type shardRings struct {
	out *ring.SPSC[[]workload.Event]
	rec *ring.SPSC[[]workload.Event]
}

// mergeCursor walks one shard's slab sequence for the Next() merge.
// The head event is cached inline so the loop-min scan — the hottest
// comparison of the event-at-a-time path — never chases the slab.
type mergeCursor struct {
	hd    workload.Event
	slab  []workload.Event
	pos   int
	shard int
}

// NewStream validates the model and starts the sharded generator.
// Callers must either drain the stream or Close it.
func NewStream(m Model, seed int64, shards int) (*WorkloadStream, error) {
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadModel, shards)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	profile, err := m.profile()
	if err != nil {
		return nil, err
	}
	rateRng := rand.New(dist.NewSplitMix64(dist.Mix64(uint64(seed), laneRate)))
	rateFn, err := m.effectiveRate(profile.Rate, rateRng)
	if err != nil {
		return nil, err
	}
	pp, err := dist.NewPiecewisePoisson(rateFn, m.PoissonWindow)
	if err != nil {
		return nil, err
	}
	interest, err := dist.NewZipf(m.Interest.Alpha, m.Interest.N)
	if err != nil {
		return nil, err
	}
	perSession, err := dist.NewZipf(m.TransfersPerSession.Alpha, m.TransfersPerSession.N)
	if err != nil {
		return nil, err
	}
	gap, err := m.gapSampler()
	if err != nil {
		return nil, err
	}
	length, err := m.lengthSampler()
	if err != nil {
		return nil, err
	}
	// The serial prologue used to run population build, then thinning,
	// then shard spin-up, back to back. The population draws from its
	// own seed lane and the shards never touch it (only the serve side
	// does), so it overlaps with the thinning pass and the shard
	// launch: cold-start latency is max(population, thinning) instead
	// of their sum, and the shards are already expanding sessions while
	// the population is still placing clients.
	type popOutcome struct {
		pop *Population
		err error
	}
	popCh := make(chan popOutcome, 1)
	go func() {
		popRng := randv2.New(dist.NewSplitMix64(dist.Mix64(uint64(seed), lanePopulation)))
		pop, err := NewPopulation(m.NumClients, m.Topology, popRng)
		popCh <- popOutcome{pop, err}
	}()

	ws := &WorkloadStream{
		model:  m,
		seed:   seed,
		shards: shards,
		done:   make(chan struct{}),
	}
	// One pass of Poisson thinning fixes every session's arrival
	// instant. Shards share this schedule read-only; everything
	// per-session happens in them.
	arrRng := rand.New(dist.NewSplitMix64(dist.Mix64(uint64(seed), laneArrivals)))
	arrivals := pp.Stream(arrRng, float64(m.Horizon))
	for {
		at, ok := arrivals.Next()
		if !ok {
			break
		}
		ws.schedule = append(ws.schedule, int64(at))
	}

	ws.rings = make([]shardRings, shards)
	for s := 0; s < shards; s++ {
		ws.rings[s] = shardRings{
			out: ring.NewSPSC[[]workload.Event](streamBatchDepth, ring.NewGate(), ring.NewGate()),
			rec: ring.NewSPSC[[]workload.Event](recycleDepth, ring.NewGate(), ring.NewGate()),
		}
		go ws.runShard(s, ws.rings[s], interest, perSession, gap, length)
	}

	outcome := <-popCh
	if outcome.err != nil {
		ws.Close() // release the already-running shards
		return nil, outcome.err
	}
	ws.pop = outcome.pop
	return ws, nil
}

// interestUniform is session idx's interest variate in [0, 1): the
// counter-mode splitmix stream of the seed's interest lane evaluated at
// idx. Pure and O(1), so every shard can test ownership without
// replaying a sequential RNG.
func interestUniform(interestRoot uint64, idx int) float64 {
	return float64(dist.Mix64(interestRoot, uint64(idx))>>11) / (1 << 53)
}

// Next implements workload.Stream: the event-at-a-time K-way merge
// over the shard rings. The loop-min scan beats heap bookkeeping at
// merge widths this small, and the slab cursors amortize the ring
// traffic to one pop per 512 events.
//
//lsm:hotpath
func (ws *WorkloadStream) Next() (workload.Event, bool) {
	if ws.closed.Load() {
		return workload.Event{}, false
	}
	if ws.mode != consumeNext {
		if ws.mode == consumeSlab {
			panic("gismo: WorkloadStream consumed through both Next and NextSlab")
		}
		ws.mode = consumeNext
		ws.initCursors()
	}
	n := len(ws.cursors)
	if n == 0 {
		return workload.Event{}, false
	}
	best := 0
	for i := 1; i < n; i++ {
		if ws.cursors[i].hd.Less(ws.cursors[best].hd) {
			best = i
		}
	}
	e := ws.cursors[best].hd
	ws.advanceCursor(best)
	return e, true
}

// initCursors primes the merge with each live shard's first slab.
func (ws *WorkloadStream) initCursors() {
	ws.cursors = make([]mergeCursor, 0, ws.shards)
	for s := 0; s < ws.shards; s++ {
		if slab, ok := ws.popSlab(s); ok {
			ws.cursors = append(ws.cursors, mergeCursor{hd: slab[0], slab: slab, shard: s})
		}
	}
}

// advanceCursor steps cursor i past its head: forward within the slab,
// or — at a slab boundary — recycle the drained slab to its shard and
// pull the next one, dropping the cursor when the shard is exhausted.
//
//lsm:hotpath
func (ws *WorkloadStream) advanceCursor(i int) {
	c := &ws.cursors[i]
	c.pos++
	if c.pos < len(c.slab) {
		c.hd = c.slab[c.pos]
		return
	}
	shard := c.shard
	ws.rings[shard].rec.TryPush(c.slab[:0])
	if slab, ok := ws.popSlab(shard); ok {
		c.slab, c.pos, c.hd = slab, 0, slab[0]
		return
	}
	last := len(ws.cursors) - 1
	ws.cursors[i] = ws.cursors[last]
	ws.cursors = ws.cursors[:last]
}

// popSlab pulls the shard's next non-empty slab, parking until the
// shard produces one; false means the shard closed (or the stream was
// closed under the waiter).
func (ws *WorkloadStream) popSlab(s int) ([]workload.Event, bool) {
	for {
		slab, ok := ws.rings[s].out.Pop(ws.done)
		if !ok {
			return nil, false
		}
		if len(slab) > 0 {
			return slab, true
		}
		ws.rings[s].rec.TryPush(slab[:0])
	}
}

// NextSlab implements workload.ShardedStream: the fused dispatcher's
// batch intake. It must not be mixed with Next on the same stream.
//
//lsm:hotpath
func (ws *WorkloadStream) NextSlab(shard int) ([]workload.Event, bool) {
	if ws.mode != consumeSlab {
		if ws.mode == consumeNext {
			panic("gismo: WorkloadStream consumed through both Next and NextSlab")
		}
		ws.mode = consumeSlab
	}
	if ws.closed.Load() {
		return nil, false
	}
	return ws.popSlab(shard)
}

// RecycleSlab implements workload.ShardedStream: the drained slab's
// backing array returns to its producing shard (or, if the shard's
// recycle ring is full, falls to the garbage collector).
//
//lsm:hotpath
func (ws *WorkloadStream) RecycleSlab(shard int, slab []workload.Event) {
	if cap(slab) == 0 {
		return
	}
	ws.rings[shard].rec.TryPush(slab[:0])
}

// Close releases the shard goroutines of a stream that will not be
// drained. It is idempotent; draining to exhaustion makes it a no-op.
func (ws *WorkloadStream) Close() {
	if ws.closed.CompareAndSwap(false, true) {
		close(ws.done)
	}
}

// Population returns the generated client population.
func (ws *WorkloadStream) Population() *Population { return ws.pop }

// Model returns the generating model.
func (ws *WorkloadStream) Model() Model { return ws.model }

// Sessions returns the number of generated sessions (client arrivals).
func (ws *WorkloadStream) Sessions() int { return len(ws.schedule) }

// Shards returns the shard count.
func (ws *WorkloadStream) Shards() int { return ws.shards }

// runShard generates the events of the sessions owned by shard s, in
// stream order, batching them into slabs on the shard's output ring.
// Slabs come from the recycle ring when the consumer has returned any
// (the steady state — zero allocations) and are freshly allocated
// otherwise (cold start, or a consumer that dropped one).
func (ws *WorkloadStream) runShard(s int, rr shardRings, interest, perSession *dist.Zipf, gap, length dist.Lognormal) {
	defer rr.out.Close()
	m := ws.model
	sessionRoot := dist.Mix64(uint64(ws.seed), laneSessions)
	interestRoot := dist.Mix64(uint64(ws.seed), laneInterest)
	interestTotal := interest.Total()
	sessSrc := dist.NewSplitMix64(0)
	sessRng := rand.New(sessSrc)

	pending := newCursorHeap()
	newSlab := func() []workload.Event {
		if slab, ok := rr.rec.TryPop(); ok {
			return slab
		}
		ws.slabAllocs.Add(1)
		return make([]workload.Event, 0, streamBatch)
	}
	batch := newSlab()
	flushBatch := func() bool {
		if !rr.out.Push(batch, ws.done) {
			return false // closed under us; the slab falls to the GC
		}
		batch = newSlab()
		return true
	}
	// Exhausted sessions donate their event slices back; expansion
	// reuses them, so steady-state generation allocates one slice per
	// *concurrently pending* session, not per session.
	var spare [][]workload.Event
	step := func() {
		if done := advanceCursor(&pending); done != nil {
			spare = append(spare, done[:0])
		}
	}
	nextBuf := func() []workload.Event {
		if n := len(spare); n > 0 {
			b := spare[n-1]
			spare = spare[:n-1]
			return b
		}
		return nil
	}

	for idx, at := range ws.schedule {
		bound := workload.Event{Start: at, Session: idx}
		// Release pending events that precede the next arrival: no
		// later session can produce anything earlier.
		for pending.Len() > 0 && pending.Peek().head().Less(bound) {
			batch = append(batch, pending.Peek().head())
			if len(batch) == streamBatch && !flushBatch() {
				return
			}
			step()
		}
		u := interestUniform(interestRoot, idx)
		if owner := int(u * float64(ws.shards)); owner == s ||
			(owner >= ws.shards && s == ws.shards-1) { // guard float rounding at u→1
			client := interest.RankOfU(u*interestTotal) - 1
			sessSrc.Seed(int64(dist.Mix64(sessionRoot, uint64(idx))))
			if events := expandSession(&m, idx, client, at, sessRng, perSession, gap, length, nextBuf()); len(events) > 0 {
				pending.Push(newCursor(events))
			} else if events != nil {
				spare = append(spare, events[:0])
			}
		}
	}
	for pending.Len() > 0 {
		batch = append(batch, pending.Peek().head())
		if len(batch) == streamBatch && !flushBatch() {
			return
		}
		step()
	}
	if len(batch) > 0 {
		flushBatch()
	}
}

// expandSession draws one session's transfers from its dedicated RNG:
// transfer count (Zipf), intra-session gaps and lengths (lognormal),
// object choice — the same draw order per transfer as the original
// materializing generator, truncated at the horizon. buf, when
// non-nil, is a recycled slice to expand into (its capacity is reused;
// growth falls back to append's normal allocation).
func expandSession(m *Model, session, client int, start int64, rng *rand.Rand, perSession *dist.Zipf, gap, length dist.Lognormal, buf []workload.Event) []workload.Event {
	n := perSession.SampleRank(rng)
	events := buf
	if events == nil {
		events = make([]workload.Event, 0, n)
	}
	t := start
	for k := 0; k < n; k++ {
		if k > 0 {
			t += int64(gap.Sample(rng))
		}
		if t >= m.Horizon {
			break
		}
		d := int64(length.Sample(rng))
		if d < 1 {
			d = 1
		}
		if t+d > m.Horizon {
			d = m.Horizon - t
			if d < 1 {
				break
			}
		}
		events = append(events, workload.Event{
			Session:  session,
			Seq:      len(events),
			Client:   client,
			Object:   m.pickObject(rng),
			Start:    t,
			Duration: d,
		})
	}
	return events
}

// cursor walks one expanded session. Events within a session are in
// stream order by construction (gaps are non-negative, Seq increases).
// The head event is cached inline so heap comparisons — the hottest
// loop of the generator — never chase the events slice.
type cursor struct {
	hd     workload.Event
	events []workload.Event
	pos    int
}

func newCursor(events []workload.Event) cursor {
	return cursor{hd: events[0], events: events}
}

func (c cursor) head() workload.Event { return c.hd }

// newCursorHeap builds the min-heap of session cursors keyed by head
// event.
func newCursorHeap() heapx.Heap[cursor] {
	return heapx.New(func(a, b cursor) bool { return a.hd.Less(b.hd) })
}

// advanceCursor consumes the top cursor's head event: steps it forward
// in place, or removes the cursor when its session is exhausted — in
// which case the session's event slice is returned for reuse.
func advanceCursor(h *heapx.Heap[cursor]) []workload.Event {
	top := h.Top()
	top.pos++
	if top.pos >= len(top.events) {
		done := top.events
		h.Pop()
		return done
	}
	top.hd = top.events[top.pos]
	h.FixTop()
	return nil
}

// DefaultShards picks the shard count for the Generate compatibility
// wrapper: one per CPU, capped. The stream is shard-count-invariant, so
// this only affects speed, never output.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}
