package gismo

import (
	"math/rand"
	"testing"
)

func TestRampUpSuppressesEarlyArrivals(t *testing.T) {
	m, err := Scaled(100, 8) // ramp capped at 2 days for an 8-day horizon
	if err != nil {
		t.Fatal(err)
	}
	m.DayVariability = 0 // isolate the ramp
	w, err := Generate(m, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var day1, day5 int
	for _, r := range w.Requests {
		switch r.Start / 86400 {
		case 0:
			day1++
		case 4:
			day5++
		}
	}
	if day1*5 >= day5 {
		t.Errorf("day 1 requests (%d) should be far below day 5 (%d) under the premiere ramp", day1, day5)
	}
}

func TestRampUpDisabled(t *testing.T) {
	m, err := Scaled(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.RampUpDays = 0
	m.DayVariability = 0
	w, err := Generate(m, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	var day1, day3 int
	for _, r := range w.Requests {
		switch r.Start / 86400 {
		case 0:
			day1++
		case 2:
			day3++
		}
	}
	// Without the ramp, day 1 (Sunday) should match or exceed day 3
	// (Tuesday) thanks to the weekend multiplier.
	if day1 < day3/2 {
		t.Errorf("without ramp, day 1 (%d) should be comparable to day 3 (%d)", day1, day3)
	}
}

func TestScaledCapsRampAtQuarterHorizon(t *testing.T) {
	m, err := Scaled(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.RampUpDays > 0.5 {
		t.Errorf("2-day horizon should cap ramp at 0.5 days, got %v", m.RampUpDays)
	}
	full := Default()
	if full.RampUpDays != 3 {
		t.Errorf("28-day default ramp = %v, want 3", full.RampUpDays)
	}
}

func TestDayVariabilityPreservesMeanRoughly(t *testing.T) {
	base, err := Scaled(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	base.RampUpDays = 0

	withVar := base
	withVar.DayVariability = 0.35
	without := base
	without.DayVariability = 0

	count := func(m Model, seed int64) float64 {
		var total int
		const runs = 5
		for s := int64(0); s < runs; s++ {
			w, err := Generate(m, rand.New(rand.NewSource(seed+s)))
			if err != nil {
				t.Fatal(err)
			}
			total += w.SessionCount
		}
		return float64(total) / runs
	}
	a := count(withVar, 10)
	b := count(without, 20)
	// Mean-one lognormal day factors: totals agree within ~20% over
	// 5x7 day-draws.
	if a < 0.75*b || a > 1.35*b {
		t.Errorf("day variability shifted mean sessions: %v vs %v", a, b)
	}
}

func TestRampValidation(t *testing.T) {
	m := Default()
	m.RampUpDays = -1
	if err := m.Validate(); err == nil {
		t.Error("negative ramp days: want error")
	}
	m = Default()
	m.RampUpFloor = 0
	if err := m.Validate(); err == nil {
		t.Error("zero floor with ramp enabled: want error")
	}
	m = Default()
	m.RampUpFloor = 2
	if err := m.Validate(); err == nil {
		t.Error("floor > 1: want error")
	}
	m = Default()
	m.RampUpDays = 0
	m.RampUpFloor = 0 // floor irrelevant when ramp disabled
	if err := m.Validate(); err != nil {
		t.Errorf("disabled ramp should not validate floor: %v", err)
	}
	m = Default()
	m.DayVariability = -0.1
	if err := m.Validate(); err == nil {
		t.Error("negative day variability: want error")
	}
}
