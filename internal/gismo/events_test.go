package gismo

import (
	"math/rand"
	"testing"
)

func TestEventConfigValidate(t *testing.T) {
	if err := (&EventConfig{}).Validate(); err != nil {
		t.Errorf("zero config (disabled) should validate: %v", err)
	}
	if err := (&EventConfig{PerDay: -1}).Validate(); err == nil {
		t.Error("negative per-day: want error")
	}
	if err := (&EventConfig{PerDay: 2, MeanDuration: 0, Amplitude: 3}).Validate(); err == nil {
		t.Error("zero duration with events on: want error")
	}
	if err := (&EventConfig{PerDay: 2, MeanDuration: 100, Amplitude: 0}).Validate(); err == nil {
		t.Error("zero amplitude with events on: want error")
	}
	def := DefaultEvents()
	if err := def.Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
}

func TestScheduleEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := EventConfig{PerDay: 4, MeanDuration: 1200, Amplitude: 2.5}
	horizon := int64(14 * 86400)
	s, err := ScheduleEvents(cfg, horizon, rng)
	if err != nil {
		t.Fatal(err)
	}
	// ~56 expected events; Poisson sd ~7.5.
	if len(s.Events) < 30 || len(s.Events) > 85 {
		t.Errorf("events = %d, want ~56", len(s.Events))
	}
	for i, e := range s.Events {
		if e.Start < 0 || e.End > horizon || e.End <= e.Start {
			t.Fatalf("bad event %+v", e)
		}
		if i > 0 && e.Start < s.Events[i-1].Start {
			t.Fatal("events not sorted")
		}
	}
	// Active fraction ~ 4 * 1200 / 86400 = 5.6%.
	frac := float64(s.ActiveSeconds()) / float64(horizon)
	if frac < 0.02 || frac > 0.12 {
		t.Errorf("active fraction = %v, want ~0.056", frac)
	}
}

func TestScheduleEventsDisabled(t *testing.T) {
	s, err := ScheduleEvents(EventConfig{}, 86400, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 0 || s.ActiveSeconds() != 0 {
		t.Error("disabled config produced events")
	}
	if s.Boost(1000) != 1 {
		t.Error("disabled schedule should not boost")
	}
}

func TestScheduleEventsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ScheduleEvents(DefaultEvents(), 0, rng); err == nil {
		t.Error("zero horizon: want error")
	}
	if _, err := ScheduleEvents(EventConfig{PerDay: -1}, 86400, rng); err == nil {
		t.Error("bad config: want error")
	}
}

func TestBoostInsideAndOutsideEvents(t *testing.T) {
	s := &EventSchedule{
		Config: EventConfig{PerDay: 1, MeanDuration: 100, Amplitude: 4},
		Events: []Event{{Start: 1000, End: 1100}, {Start: 5000, End: 5200}},
	}
	cases := []struct {
		t    float64
		want float64
	}{
		{500, 1}, {1000, 4}, {1050, 4}, {1100, 1}, {3000, 1}, {5100, 4}, {9999, 1},
	}
	for _, c := range cases {
		if got := s.Boost(c.t); got != c.want {
			t.Errorf("Boost(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestBoostOverlappingEvents(t *testing.T) {
	s := &EventSchedule{
		Config: EventConfig{PerDay: 1, MeanDuration: 100, Amplitude: 3},
		Events: []Event{{Start: 100, End: 500}, {Start: 200, End: 300}},
	}
	// Overlap must not stack: still Amplitude.
	if got := s.Boost(250); got != 3 {
		t.Errorf("overlapping boost = %v, want 3", got)
	}
	// The long first event still covers past the short one's end.
	if got := s.Boost(400); got != 3 {
		t.Errorf("boost within long event = %v, want 3", got)
	}
}

func TestActiveSecondsUnion(t *testing.T) {
	s := &EventSchedule{Events: []Event{
		{Start: 0, End: 100},
		{Start: 50, End: 150}, // overlaps: union adds 50
		{Start: 300, End: 400},
	}}
	if got := s.ActiveSeconds(); got != 250 {
		t.Errorf("ActiveSeconds = %d, want 250", got)
	}
}

func TestEventsRaiseConcurrencyDuringBursts(t *testing.T) {
	// Compare request density inside versus outside event windows.
	m, err := Scaled(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.RampUpDays = 0
	m.DayVariability = 0
	m.Events = EventConfig{PerDay: 3, MeanDuration: 3600, Amplitude: 5}

	rng := rand.New(rand.NewSource(9))
	// Regenerate the schedule exactly as Generate does: it consumes the
	// rng in a fixed order (day factors are skipped when variability is
	// zero... they are still drawn? no: factors loop draws only when
	// DayVariability > 0). We instead measure via the generated trace:
	// event windows are unknown, so check the heavy upper tail of
	// 15-minute arrival counts relative to a no-events run.
	w, err := Generate(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m
	m2.Events = EventConfig{}
	w2, err := Generate(m2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	p99 := func(w *Workload) float64 {
		bins := make([]float64, m.Horizon/900+1)
		for _, r := range w.Requests {
			bins[r.Start/900]++
		}
		// Crude p99.
		max1, max2 := 0.0, 0.0
		for _, b := range bins {
			if b > max1 {
				max1, max2 = b, max1
			} else if b > max2 {
				max2 = b
			}
		}
		return (max1 + max2) / 2
	}
	burst, calm := p99(w), p99(w2)
	if burst <= calm*1.3 {
		t.Errorf("event bursts should raise peak bin counts: %v vs %v", burst, calm)
	}
	// Events modulate the session arrival process, so bound the volume
	// change on sessions: the request count additionally multiplies in
	// heavy-tailed per-session transfer draws whose realization noise at
	// this scale swamps any usable bound. This config's expected boost is
	// 1 + (1-e^(-PerDay·MeanDuration/86400))·(Amplitude-1) ≈ 1.47, with
	// ~±0.14 schedule-realization noise from only ~12 events, so cap the
	// ratio at 2x: catches runaway amplification with >3 sigma headroom.
	ratio := float64(w.SessionCount) / float64(w2.SessionCount)
	if ratio < 1.0 || ratio > 2.0 {
		t.Errorf("event session-volume ratio = %.3f (%d vs %d), want boosted but bounded",
			ratio, w.SessionCount, w2.SessionCount)
	}
}
