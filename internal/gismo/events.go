package gismo

import (
	"fmt"
	"math/rand"
	"sort"
)

// In-show event bursts.
//
// Section 3.2 attributes the "wide variability observed in the number of
// concurrently active clients" to three sources: diurnal effects on the
// content, diurnal effects on the population, and "specific activities
// occurring within the reality show". The first two are the rate
// profile; EventConfig models the third — the object-driven component
// that makes live access live: when something happens on camera, viewers
// flock in, regardless of the hour.
type EventConfig struct {
	// PerDay is the mean number of in-show events per day (Poisson).
	PerDay float64 `json:"per_day"`
	// MeanDuration is the mean event duration in seconds (exponential).
	MeanDuration float64 `json:"mean_duration_seconds"`
	// Amplitude is the multiplicative rate boost while an event runs
	// (e.g. 3.0 triples the arrival rate).
	Amplitude float64 `json:"amplitude"`
}

// DefaultEvents is a modest dose of drama: two events a day, half an
// hour each, tripling arrivals.
func DefaultEvents() EventConfig {
	return EventConfig{PerDay: 2, MeanDuration: 1800, Amplitude: 3}
}

// Validate checks the configuration; a zero PerDay disables events.
func (c *EventConfig) Validate() error {
	if c.PerDay < 0 {
		return fmt.Errorf("%w: events per day %v", ErrBadModel, c.PerDay)
	}
	if c.PerDay > 0 && (c.MeanDuration <= 0 || c.Amplitude <= 0) {
		return fmt.Errorf("%w: event duration %v / amplitude %v", ErrBadModel, c.MeanDuration, c.Amplitude)
	}
	return nil
}

// Event is one scheduled in-show happening.
type Event struct {
	Start, End int64
}

// EventSchedule is the burst timeline over a horizon.
type EventSchedule struct {
	Config EventConfig
	Events []Event // sorted by Start, possibly overlapping
}

// ScheduleEvents draws the event timeline: Poisson event starts at
// PerDay/86400 per second, each with an exponential duration.
func ScheduleEvents(cfg EventConfig, horizon int64, rng *rand.Rand) (*EventSchedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadModel, horizon)
	}
	s := &EventSchedule{Config: cfg}
	if cfg.PerDay == 0 {
		return s, nil
	}
	rate := cfg.PerDay / 86400
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if int64(t) >= horizon {
			break
		}
		d := int64(rng.ExpFloat64()*cfg.MeanDuration) + 1
		end := int64(t) + d
		if end > horizon {
			end = horizon
		}
		s.Events = append(s.Events, Event{Start: int64(t), End: end})
	}
	sort.Slice(s.Events, func(i, j int) bool { return s.Events[i].Start < s.Events[j].Start })
	return s, nil
}

// Boost returns the rate multiplier at time t: Amplitude if any event is
// running, 1 otherwise. Overlapping events do not stack (the show has
// one audience).
func (s *EventSchedule) Boost(t float64) float64 {
	ti := int64(t)
	// Events are sorted by start; binary-search the last start <= t and
	// scan back over potential overlaps. Event durations are short, so
	// the scan window is small in practice.
	i := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].Start > ti })
	for j := i - 1; j >= 0; j-- {
		e := s.Events[j]
		if e.End > ti {
			return s.Config.Amplitude
		}
		// Stop scanning once events end too early to overlap t: allow a
		// generous look-back bounded by 50 events.
		if i-j > 50 {
			break
		}
	}
	return 1
}

// ActiveSeconds returns the number of seconds covered by at least one
// event (union length).
func (s *EventSchedule) ActiveSeconds() int64 {
	var total int64
	var coverEnd int64 = -1
	for _, e := range s.Events {
		start := e.Start
		if start < coverEnd {
			start = coverEnd
		}
		if e.End > start {
			total += e.End - start
		}
		if e.End > coverEnd {
			coverEnd = e.End
		}
	}
	return total
}
