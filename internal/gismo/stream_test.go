package gismo

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/workload"
)

// The sharded generator is the canonical producer behind the fused
// serve dispatcher's batch intake.
var _ workload.ShardedStream = (*WorkloadStream)(nil)

func drainStream(t *testing.T, m Model, seed int64, shards int) ([]workload.Event, int) {
	t.Helper()
	ws, err := NewStream(m, seed, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	events := workload.Drain(ws, 0)
	return events, ws.Sessions()
}

// TestStreamShardCountInvariant is the determinism contract of the
// sharded generator: for a fixed seed, shards=1 and shards=8 (and any
// other count) must produce byte-identical event sequences.
func TestStreamShardCountInvariant(t *testing.T) {
	m := testModel()
	const seed = 20020106
	base, baseSessions := drainStream(t, m, seed, 1)
	if len(base) == 0 {
		t.Fatal("empty stream")
	}
	for _, shards := range []int{2, 3, 8} {
		got, sessions := drainStream(t, m, seed, shards)
		if len(got) != len(base) {
			t.Fatalf("shards=%d: %d events, shards=1: %d", shards, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("shards=%d: event %d differs: %+v vs %+v", shards, i, got[i], base[i])
			}
		}
		if sessions != baseSessions {
			t.Errorf("shards=%d: %d sessions, shards=1: %d", shards, sessions, baseSessions)
		}
	}
}

// TestStreamMatchesGenerate pins the compatibility wrapper to the
// stream: Generate must be exactly a drained stream.
func TestStreamMatchesGenerate(t *testing.T) {
	m := testModel()
	rng := rand.New(rand.NewSource(404))
	seed := rng.Int63()
	w, err := Generate(m, rand.New(rand.NewSource(404)))
	if err != nil {
		t.Fatal(err)
	}
	events, sessions := drainStream(t, m, seed, 4)
	if len(events) != len(w.Requests) {
		t.Fatalf("stream %d events vs Generate %d requests", len(events), len(w.Requests))
	}
	for i, e := range events {
		r := w.Requests[i]
		if e.Client != r.Client || e.Object != r.Object || e.Start != r.Start || e.Duration != r.Duration {
			t.Fatalf("event %d: %+v vs request %+v", i, e, r)
		}
	}
	if sessions != w.SessionCount {
		t.Errorf("sessions: stream %d vs Generate %d", sessions, w.SessionCount)
	}
}

func TestStreamOrderAndBounds(t *testing.T) {
	m := testModel()
	ws, err := NewStream(m, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	var prev workload.Event
	n := 0
	for {
		e, ok := ws.Next()
		if !ok {
			break
		}
		if n > 0 && e.Less(prev) {
			t.Fatalf("event %d out of order: %+v after %+v", n, e, prev)
		}
		if e.Start < 0 || e.End() > m.Horizon {
			t.Fatalf("event escapes horizon: %+v", e)
		}
		if e.Client < 0 || e.Client >= m.NumClients {
			t.Fatalf("bad client %d", e.Client)
		}
		if e.Object < 0 || e.Object >= m.NumObjects {
			t.Fatalf("bad object %d", e.Object)
		}
		if e.Duration < 1 {
			t.Fatalf("bad duration %+v", e)
		}
		prev = e
		n++
	}
	if n == 0 {
		t.Fatal("empty stream")
	}
	// Exhausted stream stays exhausted.
	if _, ok := ws.Next(); ok {
		t.Error("exhausted stream yielded an event")
	}
}

// TestStreamCloseWithoutDraining must release the shard goroutines and
// leave the stream unusable but safe.
func TestStreamCloseWithoutDraining(t *testing.T) {
	m := testModel()
	ws, err := NewStream(m, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := ws.Next(); !ok {
			t.Fatal("stream ended after 10 events")
		}
	}
	ws.Close()
	ws.Close() // idempotent
	if _, ok := ws.Next(); ok {
		t.Error("closed stream yielded an event")
	}
}

// TestStreamSlabAPIMatchesNext: merging the NextSlab/RecycleSlab batch
// view by Event.Less must reproduce exactly the sequence Next yields —
// the workload.ShardedStream contract the fused dispatcher relies on.
// Draining every shard to exhaustion also proves no slab (and no
// event) is lost at the ring seam.
func TestStreamSlabAPIMatchesNext(t *testing.T) {
	m := testModel()
	const seed = 20020106
	want, _ := drainStream(t, m, seed, 1)

	ws, err := NewStream(m, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	type cur struct {
		slab  []workload.Event
		pos   int
		shard int
	}
	var cursors []cur
	for s := 0; s < ws.Shards(); s++ {
		if slab, ok := ws.NextSlab(s); ok {
			cursors = append(cursors, cur{slab: slab, shard: s})
		}
	}
	var got []workload.Event
	for len(cursors) > 0 {
		best := 0
		for i := 1; i < len(cursors); i++ {
			if cursors[i].slab[cursors[i].pos].Less(cursors[best].slab[cursors[best].pos]) {
				best = i
			}
		}
		c := &cursors[best]
		got = append(got, c.slab[c.pos])
		c.pos++
		if c.pos == len(c.slab) {
			ws.RecycleSlab(c.shard, c.slab)
			if slab, ok := ws.NextSlab(c.shard); ok {
				c.slab, c.pos = slab, 0
			} else {
				cursors[best] = cursors[len(cursors)-1]
				cursors = cursors[:len(cursors)-1]
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("slab API yielded %d events, Next yields %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d differs: slab API %+v vs Next %+v", i, got[i], want[i])
		}
	}
}

// TestStreamSlabRecyclingBounded: drained slabs must return to their
// producing shard, so a full drain allocates only the slabs that can be
// simultaneously in flight per shard (output ring + fill + drain), not
// one per flush.
func TestStreamSlabRecyclingBounded(t *testing.T) {
	m := testModel()
	const shards = 4
	ws, err := NewStream(m, 20020106, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	n := 0
	for {
		if _, ok := ws.Next(); !ok {
			break
		}
		n++
	}
	// Per shard: the output ring can hold streamBatchDepth slabs, the
	// shard fills one more, and the consumer drains one more. Anything
	// beyond that means recycling is broken and every flush allocates.
	maxAllocs := int64(shards * (streamBatchDepth + 2))
	if got := ws.slabAllocs.Load(); got > maxAllocs {
		t.Errorf("drained %d events with %d slab allocations, want <= %d (recycling broken)", n, got, maxAllocs)
	}
	if n == 0 {
		t.Fatal("empty stream")
	}
}

// TestStreamCloseMidDrain: closing a stream halfway through a drain
// must release every shard goroutine even while shards are parked on
// full output rings, and must stay safe through both consumption APIs.
func TestStreamCloseMidDrain(t *testing.T) {
	m := testModel()
	for name, drain := range map[string]func(ws *WorkloadStream){
		"next": func(ws *WorkloadStream) {
			for i := 0; i < 100; i++ {
				if _, ok := ws.Next(); !ok {
					t.Fatal("stream ended before 100 events")
				}
			}
		},
		"slab": func(ws *WorkloadStream) {
			slab, ok := ws.NextSlab(0)
			if !ok {
				t.Fatal("shard 0 produced no slab")
			}
			ws.RecycleSlab(0, slab)
		},
	} {
		before := runtime.NumGoroutine()
		ws, err := NewStream(m, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		drain(ws)
		ws.Close()
		// The shard goroutines observe the abort at their next ring
		// operation; give them a bounded moment to exit.
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Errorf("%s: %d goroutines before stream, %d after Close — shard goroutines leaked", name, before, got)
		}
		if _, ok := ws.Next(); ok && name == "next" {
			t.Errorf("%s: closed stream yielded an event", name)
		}
	}
}

// TestStreamModeGuard: a stream consumed through Next must panic if the
// slab API is then used on it (and vice versa) — mixing the two would
// split the merge state across consumers and corrupt the order.
func TestStreamModeGuard(t *testing.T) {
	m := testModel()
	ws, err := NewStream(m, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if _, ok := ws.Next(); !ok {
		t.Fatal("empty stream")
	}
	defer func() {
		if recover() == nil {
			t.Error("NextSlab after Next did not panic")
		}
	}()
	ws.NextSlab(0)
}

func TestNewStreamRejectsBadInputs(t *testing.T) {
	m := testModel()
	if _, err := NewStream(m, 1, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewStream(m, 1, MaxShards+1); err == nil {
		t.Error("huge shard count accepted")
	}
	bad := m
	bad.Horizon = -1
	if _, err := NewStream(bad, 1, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestWorkloadStreamReplay(t *testing.T) {
	m := testModel()
	w, err := Generate(m, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	replayed := workload.Drain(w.Stream(), len(w.Requests))
	if len(replayed) != len(w.Requests) {
		t.Fatalf("replayed %d events, want %d", len(replayed), len(w.Requests))
	}
	for i, e := range replayed {
		r := w.Requests[i]
		if e.Client != r.Client || e.Start != r.Start || e.Duration != r.Duration || e.Object != r.Object {
			t.Fatalf("event %d mismatch", i)
		}
		if i > 0 && e.Less(replayed[i-1]) {
			t.Fatal("replayed stream out of order")
		}
	}
}
