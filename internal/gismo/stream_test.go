package gismo

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func drainStream(t *testing.T, m Model, seed int64, shards int) ([]workload.Event, int) {
	t.Helper()
	ws, err := NewStream(m, seed, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	events := workload.Drain(ws, 0)
	return events, ws.Sessions()
}

// TestStreamShardCountInvariant is the determinism contract of the
// sharded generator: for a fixed seed, shards=1 and shards=8 (and any
// other count) must produce byte-identical event sequences.
func TestStreamShardCountInvariant(t *testing.T) {
	m := testModel()
	const seed = 20020106
	base, baseSessions := drainStream(t, m, seed, 1)
	if len(base) == 0 {
		t.Fatal("empty stream")
	}
	for _, shards := range []int{2, 3, 8} {
		got, sessions := drainStream(t, m, seed, shards)
		if len(got) != len(base) {
			t.Fatalf("shards=%d: %d events, shards=1: %d", shards, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("shards=%d: event %d differs: %+v vs %+v", shards, i, got[i], base[i])
			}
		}
		if sessions != baseSessions {
			t.Errorf("shards=%d: %d sessions, shards=1: %d", shards, sessions, baseSessions)
		}
	}
}

// TestStreamMatchesGenerate pins the compatibility wrapper to the
// stream: Generate must be exactly a drained stream.
func TestStreamMatchesGenerate(t *testing.T) {
	m := testModel()
	rng := rand.New(rand.NewSource(404))
	seed := rng.Int63()
	w, err := Generate(m, rand.New(rand.NewSource(404)))
	if err != nil {
		t.Fatal(err)
	}
	events, sessions := drainStream(t, m, seed, 4)
	if len(events) != len(w.Requests) {
		t.Fatalf("stream %d events vs Generate %d requests", len(events), len(w.Requests))
	}
	for i, e := range events {
		r := w.Requests[i]
		if e.Client != r.Client || e.Object != r.Object || e.Start != r.Start || e.Duration != r.Duration {
			t.Fatalf("event %d: %+v vs request %+v", i, e, r)
		}
	}
	if sessions != w.SessionCount {
		t.Errorf("sessions: stream %d vs Generate %d", sessions, w.SessionCount)
	}
}

func TestStreamOrderAndBounds(t *testing.T) {
	m := testModel()
	ws, err := NewStream(m, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	var prev workload.Event
	n := 0
	for {
		e, ok := ws.Next()
		if !ok {
			break
		}
		if n > 0 && e.Less(prev) {
			t.Fatalf("event %d out of order: %+v after %+v", n, e, prev)
		}
		if e.Start < 0 || e.End() > m.Horizon {
			t.Fatalf("event escapes horizon: %+v", e)
		}
		if e.Client < 0 || e.Client >= m.NumClients {
			t.Fatalf("bad client %d", e.Client)
		}
		if e.Object < 0 || e.Object >= m.NumObjects {
			t.Fatalf("bad object %d", e.Object)
		}
		if e.Duration < 1 {
			t.Fatalf("bad duration %+v", e)
		}
		prev = e
		n++
	}
	if n == 0 {
		t.Fatal("empty stream")
	}
	// Exhausted stream stays exhausted.
	if _, ok := ws.Next(); ok {
		t.Error("exhausted stream yielded an event")
	}
}

// TestStreamCloseWithoutDraining must release the shard goroutines and
// leave the stream unusable but safe.
func TestStreamCloseWithoutDraining(t *testing.T) {
	m := testModel()
	ws, err := NewStream(m, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := ws.Next(); !ok {
			t.Fatal("stream ended after 10 events")
		}
	}
	ws.Close()
	ws.Close() // idempotent
	if _, ok := ws.Next(); ok {
		t.Error("closed stream yielded an event")
	}
}

func TestNewStreamRejectsBadInputs(t *testing.T) {
	m := testModel()
	if _, err := NewStream(m, 1, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewStream(m, 1, MaxShards+1); err == nil {
		t.Error("huge shard count accepted")
	}
	bad := m
	bad.Horizon = -1
	if _, err := NewStream(bad, 1, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestWorkloadStreamReplay(t *testing.T) {
	m := testModel()
	w, err := Generate(m, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	replayed := workload.Drain(w.Stream(), len(w.Requests))
	if len(replayed) != len(w.Requests) {
		t.Fatalf("replayed %d events, want %d", len(replayed), len(w.Requests))
	}
	for i, e := range replayed {
		r := w.Requests[i]
		if e.Client != r.Client || e.Start != r.Start || e.Duration != r.Duration || e.Object != r.Object {
			t.Fatalf("event %d mismatch", i)
		}
		if i > 0 && e.Less(replayed[i-1]) {
			t.Fatal("replayed stream out of order")
		}
	}
}
