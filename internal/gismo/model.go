// Package gismo implements the live-streaming-media extension of the
// GISMO workload generator described in Section 6 of Veloso et al.
// (IMC 2002).
//
// GISMO (Jin & Bestavros, "GISMO: Generator of Streaming Media Objects
// and Workloads") originally synthesized workloads for stored media. The
// paper extends it with the two features live content requires:
//
//  1. Non-stationary client arrivals: a piecewise-stationary Poisson
//     process whose mean is keyed to the periodic (diurnal/weekly)
//     profile of Figure 4.
//  2. Clients as unique entities: each generated session is bound to a
//     client drawn from a Zipf "interest" profile (Figure 7 right),
//     reversing the classic object-popularity role of stored media.
//
// The generative model then follows Table 2 exactly: the number of
// transfers in a session is Zipf (Figure 13), the gaps between transfer
// starts inside a session are lognormal (Figure 14), and each transfer's
// length is lognormal (Figure 19).
package gismo

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/rate"
	"repro/internal/topology"
)

// ErrBadModel reports invalid model parameters.
var ErrBadModel = errors.New("gismo: bad model")

// LognormalParams is a JSON-friendly (μ, σ) pair.
type LognormalParams struct {
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
}

// ZipfParams is a JSON-friendly (α, N) pair.
type ZipfParams struct {
	Alpha float64 `json:"alpha"`
	N     int     `json:"n"`
}

// Model is the full parameterization of the live-media workload
// generator: the subset of characterization variables the paper retains
// in Table 2, plus the scale knobs (population, horizon, objects).
type Model struct {
	// Horizon is the trace length in seconds. The paper's trace spans 28
	// days.
	Horizon int64 `json:"horizon_seconds"`
	// NumClients is the client population size (Table 1: 691,889 users).
	NumClients int `json:"num_clients"`
	// NumObjects is the number of live objects (Table 1: 2 feeds).
	NumObjects int `json:"num_objects"`

	// BaseArrivalRate scales the mean client (session) arrival rate, in
	// arrivals per second at profile multiplier 1 — "Mean Client Arrival
	// Rate f(t)" in Table 2.
	BaseArrivalRate float64 `json:"base_arrival_rate"`
	// PoissonWindow is the stationarity window of the piecewise Poisson
	// arrival process, in seconds (the paper uses 15 minutes).
	PoissonWindow float64 `json:"poisson_window_seconds"`

	// Interest is the client interest profile: sessions are assigned to
	// clients by Zipf rank (Table 2: α = 0.4704).
	Interest ZipfParams `json:"interest"`
	// TransfersPerSession is the Zipf law for the number of transfers in
	// a session (Table 2: α = 2.7042).
	TransfersPerSession ZipfParams `json:"transfers_per_session"`
	// IntraSessionGap is the lognormal law for the interarrival of
	// transfers within a session (Table 2: μ = 4.900, σ = 1.321).
	IntraSessionGap LognormalParams `json:"intra_session_gap"`
	// TransferLength is the lognormal law for individual transfer lengths
	// (Table 2: μ = 4.384, σ = 1.427).
	TransferLength LognormalParams `json:"transfer_length"`

	// FeedPreference is the probability that a transfer requests object
	// 0; remaining probability spreads uniformly over the other objects.
	FeedPreference float64 `json:"feed_preference"`

	// DayVariability is the sigma of a per-day lognormal multiplier on
	// the arrival rate, modeling the day-to-day audience swings visible
	// in Figure 4 (left): show events draw crowds, dull days empty the
	// site. Zero disables it. This variability is what produces the
	// mismatch between Figures 5 and 6 at large interarrivals that the
	// paper's footnote 6 attributes to diurnal-mean smoothing.
	DayVariability float64 `json:"day_variability"`

	// RampUpDays models the audience build-up at the start of the trace:
	// the show had just premiered, and the paper's Figures 4 and 18
	// (left) show the first days nearly empty, with mean transfer
	// interarrivals near 1,000 seconds. The arrival rate is multiplied by
	// an exponential ramp from RampUpFloor to 1 over this many days.
	// Zero disables the ramp. These sparse early windows are the source
	// of the shallow (alpha ~ 1) far tail of transfer interarrivals in
	// Figure 17.
	RampUpDays  float64 `json:"ramp_up_days"`
	RampUpFloor float64 `json:"ramp_up_floor"`

	// Events models in-show happenings that spike arrivals regardless of
	// the hour — the object-driven variability source of Section 3.2.
	// The zero value disables events.
	Events EventConfig `json:"events"`

	// Profile shapes the arrival rate over time. Nil means the reality-
	// show diurnal/weekly profile at BaseArrivalRate.
	Profile *rate.Profile `json:"-"`

	// Topology places clients into ASes/countries. Zero value means
	// topology.DefaultConfig.
	Topology topology.Config `json:"-"`
}

// Default returns the paper-calibrated model at full 28-day scale.
//
// BaseArrivalRate is calibrated so the 28-day trace yields on the order
// of 1.5 million sessions (Table 1): the reality-show profile has a mean
// multiplier of roughly 0.75, so 0.85 arrivals/second base gives
// ~0.64/s mean ≈ 1.55M sessions over 2.42M seconds.
func Default() Model {
	return Model{
		Horizon:             28 * 86400,
		NumClients:          691889,
		NumObjects:          2,
		BaseArrivalRate:     0.85,
		PoissonWindow:       900,
		Interest:            ZipfParams{Alpha: 0.4704, N: 691889},
		TransfersPerSession: ZipfParams{Alpha: 2.70417, N: 3000},
		IntraSessionGap:     LognormalParams{Mu: 4.89991, Sigma: 1.32074},
		TransferLength:      LognormalParams{Mu: 4.383921, Sigma: 1.427247},
		FeedPreference:      0.6,
		DayVariability:      0.35,
		Events:              DefaultEvents(),
		RampUpDays:          3,
		RampUpFloor:         0.01,
		Topology:            topology.DefaultConfig(),
	}
}

// Scaled returns the default model shrunk by the given factor on both the
// population and the arrival rate, with the horizon clamped to at least
// two days. factor = 1 reproduces the paper's scale; factor = 100 is a
// laptop-scale trace with the same distributional structure.
func Scaled(factor float64, horizonDays int) (Model, error) {
	if factor < 1 {
		return Model{}, fmt.Errorf("%w: scale factor %v < 1", ErrBadModel, factor)
	}
	if horizonDays < 1 {
		return Model{}, fmt.Errorf("%w: horizon %d days", ErrBadModel, horizonDays)
	}
	m := Default()
	m.Horizon = int64(horizonDays) * 86400
	m.NumClients = int(float64(m.NumClients) / factor)
	if m.NumClients < 10 {
		m.NumClients = 10
	}
	m.Interest.N = m.NumClients
	m.BaseArrivalRate /= factor
	// The premiere ramp is a feature of the full 28-day trace; on short
	// horizons it would swallow most of the trace, so cap it at a
	// quarter of the horizon.
	if quarter := float64(horizonDays) / 4; m.RampUpDays > quarter {
		m.RampUpDays = quarter
	}
	return m, nil
}

// Validate checks all parameters.
func (m *Model) Validate() error {
	if m.Horizon <= 0 {
		return fmt.Errorf("%w: horizon %d", ErrBadModel, m.Horizon)
	}
	if m.NumClients < 1 {
		return fmt.Errorf("%w: %d clients", ErrBadModel, m.NumClients)
	}
	if m.NumObjects < 1 {
		return fmt.Errorf("%w: %d objects", ErrBadModel, m.NumObjects)
	}
	if m.BaseArrivalRate <= 0 || math.IsNaN(m.BaseArrivalRate) {
		return fmt.Errorf("%w: base arrival rate %v", ErrBadModel, m.BaseArrivalRate)
	}
	if m.PoissonWindow <= 0 {
		return fmt.Errorf("%w: poisson window %v", ErrBadModel, m.PoissonWindow)
	}
	if m.Interest.Alpha <= 0 || m.Interest.N < 1 {
		return fmt.Errorf("%w: interest %+v", ErrBadModel, m.Interest)
	}
	if m.Interest.N > m.NumClients {
		return fmt.Errorf("%w: interest support %d exceeds population %d", ErrBadModel, m.Interest.N, m.NumClients)
	}
	if m.TransfersPerSession.Alpha <= 0 || m.TransfersPerSession.N < 1 {
		return fmt.Errorf("%w: transfers per session %+v", ErrBadModel, m.TransfersPerSession)
	}
	if m.IntraSessionGap.Sigma <= 0 {
		return fmt.Errorf("%w: intra-session gap %+v", ErrBadModel, m.IntraSessionGap)
	}
	if m.TransferLength.Sigma <= 0 {
		return fmt.Errorf("%w: transfer length %+v", ErrBadModel, m.TransferLength)
	}
	if m.FeedPreference < 0 || m.FeedPreference > 1 {
		return fmt.Errorf("%w: feed preference %v", ErrBadModel, m.FeedPreference)
	}
	if m.DayVariability < 0 || math.IsNaN(m.DayVariability) {
		return fmt.Errorf("%w: day variability %v", ErrBadModel, m.DayVariability)
	}
	if m.RampUpDays < 0 || math.IsNaN(m.RampUpDays) {
		return fmt.Errorf("%w: ramp-up days %v", ErrBadModel, m.RampUpDays)
	}
	if m.RampUpDays > 0 && (m.RampUpFloor <= 0 || m.RampUpFloor > 1) {
		return fmt.Errorf("%w: ramp-up floor %v", ErrBadModel, m.RampUpFloor)
	}
	if err := m.Events.Validate(); err != nil {
		return err
	}
	return nil
}

// MarshalJSON includes the profile shape alongside the scalar parameters.
func (m Model) MarshalJSON() ([]byte, error) {
	aux := modelSpec{modelAlias: modelAlias(m)}
	if m.Profile != nil {
		aux.ProfileHourly = &m.Profile.Hourly
		aux.ProfileDaily = &m.Profile.Daily
	}
	return json.Marshal(aux)
}

// UnmarshalJSON restores the profile if its shape was serialized. Unlike
// LoadModel it tolerates unknown fields and skips validation — it is
// the embedding-friendly form for containers that carry a Model among
// other fields.
func (m *Model) UnmarshalJSON(data []byte) error {
	aux := struct {
		*modelAlias
		ProfileHourly *[24]float64 `json:"profile_hourly"`
		ProfileDaily  *[7]float64  `json:"profile_daily"`
	}{modelAlias: (*modelAlias)(m)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	return m.finishDecode(aux.ProfileHourly, aux.ProfileDaily)
}

// profile resolves the effective arrival profile.
func (m *Model) profile() (*rate.Profile, error) {
	if m.Profile != nil {
		return m.Profile, nil
	}
	return rate.RealityShow(m.BaseArrivalRate)
}

// gapSampler and lengthSampler resolve the lognormal laws.
func (m *Model) gapSampler() (dist.Lognormal, error) {
	return dist.NewLognormal(m.IntraSessionGap.Mu, m.IntraSessionGap.Sigma)
}

func (m *Model) lengthSampler() (dist.Lognormal, error) {
	return dist.NewLognormal(m.TransferLength.Mu, m.TransferLength.Sigma)
}
