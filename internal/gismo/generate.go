package gismo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dist"
)

// Request is one generated transfer request: client ID, live object, start
// time, and requested length (seconds). The simulator turns requests into
// served transfers and log entries.
type Request struct {
	Client   int
	Object   int
	Start    int64 // seconds since trace start
	Duration int64 // seconds
}

// End returns Start + Duration.
func (r Request) End() int64 { return r.Start + r.Duration }

// Workload is a fully generated synthetic workload: the client population
// plus the request stream in start order.
type Workload struct {
	Model      Model
	Population *Population
	Requests   []Request
	// SessionCount is the number of generated sessions (one per client
	// arrival).
	SessionCount int
}

// Generate runs the Section 6 generative model:
//
//  1. Client arrivals are drawn from a piecewise-stationary Poisson
//     process modulated by the diurnal/weekly profile (Table 2 rows 1–2).
//  2. Each arrival is bound to a client by a Zipf interest draw
//     (Table 2 row 3).
//  3. The session's transfer count is a Zipf draw (row 4); the first
//     transfer starts at the session arrival instant, subsequent starts
//     are separated by lognormal gaps (row 5).
//  4. Each transfer's length is a lognormal draw (row 6), truncated at
//     the trace horizon.
func Generate(m Model, rng *rand.Rand) (*Workload, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	profile, err := m.profile()
	if err != nil {
		return nil, err
	}
	rateFn, err := m.effectiveRate(profile.Rate, rng)
	if err != nil {
		return nil, err
	}
	pp, err := dist.NewPiecewisePoisson(rateFn, m.PoissonWindow)
	if err != nil {
		return nil, err
	}
	interest, err := dist.NewZipf(m.Interest.Alpha, m.Interest.N)
	if err != nil {
		return nil, err
	}
	perSession, err := dist.NewZipf(m.TransfersPerSession.Alpha, m.TransfersPerSession.N)
	if err != nil {
		return nil, err
	}
	gap, err := m.gapSampler()
	if err != nil {
		return nil, err
	}
	length, err := m.lengthSampler()
	if err != nil {
		return nil, err
	}
	pop, err := NewPopulation(m.NumClients, m.Topology, rng)
	if err != nil {
		return nil, err
	}

	arrivals := pp.Arrivals(rng, float64(m.Horizon), nil)
	w := &Workload{
		Model:        m,
		Population:   pop,
		Requests:     make([]Request, 0, len(arrivals)*2),
		SessionCount: len(arrivals),
	}
	// A client's interest rank doubles as its identity: rank r maps to
	// client r-1. A fixed random permutation would decorrelate identity
	// from rank; the dense mapping keeps Figure 7's rank axis meaningful.
	for _, at := range arrivals {
		client := interest.SampleRank(rng) - 1
		w.generateSession(rng, client, int64(at), perSession, gap, length)
	}
	sort.Slice(w.Requests, func(i, j int) bool {
		if w.Requests[i].Start != w.Requests[j].Start {
			return w.Requests[i].Start < w.Requests[j].Start
		}
		return w.Requests[i].Client < w.Requests[j].Client
	})
	return w, nil
}

// effectiveRate composes the periodic profile with the model's
// non-periodic structure: per-day lognormal audience variability
// (mean-one, so the expected session count is preserved), the premiere
// ramp-up of the first RampUpDays days, and in-show event bursts
// (Section 3.2's object-driven variability; with the default dose the
// bursts add ~8% to the mean rate).
func (m *Model) effectiveRate(base func(float64) float64, rng *rand.Rand) (func(float64) float64, error) {
	days := int(m.Horizon/86400) + 1
	factors := make([]float64, days)
	adjust := -0.5 * m.DayVariability * m.DayVariability
	for i := range factors {
		factors[i] = 1
		if m.DayVariability > 0 {
			factors[i] = math.Exp(m.DayVariability*rng.NormFloat64() + adjust)
		}
	}
	ramp := func(t float64) float64 { return 1 }
	if m.RampUpDays > 0 {
		// Exponential ramp: floor at t=0, 1 at t = RampUpDays.
		logFloor := math.Log(m.RampUpFloor)
		horizon := m.RampUpDays * 86400
		ramp = func(t float64) float64 {
			if t >= horizon {
				return 1
			}
			return math.Exp(logFloor * (1 - t/horizon))
		}
	}
	schedule, err := ScheduleEvents(m.Events, m.Horizon, rng)
	if err != nil {
		return nil, err
	}
	return func(t float64) float64 {
		d := int(t / 86400)
		f := 1.0
		if d >= 0 && d < len(factors) {
			f = factors[d]
		}
		return base(t) * f * ramp(t) * schedule.Boost(t)
	}, nil
}

// generateSession emits the transfers of one session beginning at start.
func (w *Workload) generateSession(rng *rand.Rand, client int, start int64, perSession *dist.Zipf, gap, length dist.Lognormal) {
	n := perSession.SampleRank(rng)
	t := start
	for k := 0; k < n; k++ {
		if k > 0 {
			t += int64(gap.Sample(rng))
		}
		if t >= w.Model.Horizon {
			return
		}
		d := int64(length.Sample(rng))
		if d < 1 {
			d = 1
		}
		if t+d > w.Model.Horizon {
			d = w.Model.Horizon - t
			if d < 1 {
				return
			}
		}
		w.Requests = append(w.Requests, Request{
			Client:   client,
			Object:   w.pickObject(rng),
			Start:    t,
			Duration: d,
		})
	}
}

// pickObject selects a live object: object 0 with probability
// FeedPreference, otherwise uniform over the rest.
func (w *Workload) pickObject(rng *rand.Rand) int {
	if w.Model.NumObjects == 1 {
		return 0
	}
	if rng.Float64() < w.Model.FeedPreference {
		return 0
	}
	return 1 + rng.Intn(w.Model.NumObjects-1)
}

// ExpectedSessions returns the expected number of sessions the arrival
// process produces over the model horizon.
func ExpectedSessions(m Model) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	profile, err := m.profile()
	if err != nil {
		return 0, err
	}
	pp, err := dist.NewPiecewisePoisson(profile.Rate, m.PoissonWindow)
	if err != nil {
		return 0, err
	}
	return pp.ExpectedCount(float64(m.Horizon)), nil
}

// String summarizes the workload.
func (w *Workload) String() string {
	return fmt.Sprintf("gismo workload: %d clients, %d sessions, %d requests over %d s",
		w.Population.Size(), w.SessionCount, len(w.Requests), w.Model.Horizon)
}
