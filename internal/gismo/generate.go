package gismo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/workload"
)

// Request is one generated transfer request: client ID, live object, start
// time, and requested length (seconds). The simulator turns requests into
// served transfers and log entries. Session and Seq preserve the
// stream identity the request was generated under — the simulator's
// per-transfer randomness is keyed by it, so a materialized workload
// replayed through Stream serves byte-identically to the live event
// stream.
type Request struct {
	Client   int
	Object   int
	Start    int64 // seconds since trace start
	Duration int64 // seconds
	Session  int   // global session index (arrival order)
	Seq      int   // transfer index within the session
}

// End returns Start + Duration.
func (r Request) End() int64 { return r.Start + r.Duration }

// Workload is a fully materialized synthetic workload: the client
// population plus the request stream in start order. It is the
// compatibility form of the event stream (NewStream) for consumers that
// need random access; scale-sensitive paths should consume the stream
// directly.
type Workload struct {
	Model      Model
	Population *Population
	Requests   []Request
	// SessionCount is the number of generated sessions (one per client
	// arrival).
	SessionCount int
}

// Generate runs the Section 6 generative model:
//
//  1. Client arrivals are drawn from a piecewise-stationary Poisson
//     process modulated by the diurnal/weekly profile (Table 2 rows 1–2).
//  2. Each arrival is bound to a client by a Zipf interest draw
//     (Table 2 row 3).
//  3. The session's transfer count is a Zipf draw (row 4); the first
//     transfer starts at the session arrival instant, subsequent starts
//     are separated by lognormal gaps (row 5).
//  4. Each transfer's length is a lognormal draw (row 6), truncated at
//     the trace horizon.
//
// Generate is a thin wrapper that drains the sharded event stream
// (NewStream) into a slice: rng contributes only the stream seed, and
// the result is identical to consuming the stream at any shard count.
func Generate(m Model, rng *rand.Rand) (*Workload, error) {
	ws, err := NewStream(m, rng.Int63(), DefaultShards())
	if err != nil {
		return nil, err
	}
	return drain(ws, m)
}

// GenerateSeeded is Generate for callers that hold only a seed: the
// stream seed is derived exactly as Generate derives it from a
// rand.New(rand.NewSource(seed)) generator, so the two forms produce
// byte-identical workloads for equal seeds. It exists so consumers
// outside this package need no legacy math/rand plumbing.
func GenerateSeeded(m Model, seed int64) (*Workload, error) {
	return Generate(m, rand.New(rand.NewSource(seed)))
}

// NewStreamSeeded is NewStream with the same seed derivation as
// GenerateSeeded: equal seeds give a stream whose drained form is
// byte-identical to GenerateSeeded's workload.
func NewStreamSeeded(m Model, seed int64, shards int) (*WorkloadStream, error) {
	return NewStream(m, rand.New(rand.NewSource(seed)).Int63(), shards)
}

// drain materializes a stream into a Workload.
func drain(ws *WorkloadStream, m Model) (*Workload, error) {
	defer ws.Close()
	w := &Workload{
		Model:      m,
		Population: ws.Population(),
		Requests:   make([]Request, 0, ws.Sessions()*2),
	}
	for {
		e, ok := ws.Next()
		if !ok {
			break
		}
		w.Requests = append(w.Requests, Request{
			Client:   e.Client,
			Object:   e.Object,
			Start:    e.Start,
			Duration: e.Duration,
			Session:  e.Session,
			Seq:      e.Seq,
		})
	}
	w.SessionCount = ws.Sessions()
	return w, nil
}

// Stream replays the materialized workload as an event stream, reading
// the request slice in place (no copy). Requests carry their original
// (Session, Seq) identity, so the replay is indistinguishable from the
// live generator stream — including to the simulator's identity-keyed
// randomness.
func (w *Workload) Stream() workload.Stream {
	return &requestStream{requests: w.Requests}
}

// requestStream is a zero-copy cursor over a request slice.
type requestStream struct {
	requests []Request
	pos      int
}

// Next implements workload.Stream.
func (rs *requestStream) Next() (workload.Event, bool) {
	if rs.pos >= len(rs.requests) {
		return workload.Event{}, false
	}
	r := rs.requests[rs.pos]
	e := workload.Event{
		Session:  r.Session,
		Seq:      r.Seq,
		Client:   r.Client,
		Object:   r.Object,
		Start:    r.Start,
		Duration: r.Duration,
	}
	rs.pos++
	return e, true
}

// effectiveRate composes the periodic profile with the model's
// non-periodic structure: per-day lognormal audience variability
// (mean-one, so the expected session count is preserved), the premiere
// ramp-up of the first RampUpDays days, and in-show event bursts
// (Section 3.2's object-driven variability; with the default dose the
// bursts add ~8% to the mean rate).
func (m *Model) effectiveRate(base func(float64) float64, rng *rand.Rand) (func(float64) float64, error) {
	days := int(m.Horizon/86400) + 1
	factors := make([]float64, days)
	adjust := -0.5 * m.DayVariability * m.DayVariability
	for i := range factors {
		factors[i] = 1
		if m.DayVariability > 0 {
			factors[i] = math.Exp(m.DayVariability*rng.NormFloat64() + adjust)
		}
	}
	ramp := func(t float64) float64 { return 1 }
	if m.RampUpDays > 0 {
		// Exponential ramp: floor at t=0, 1 at t = RampUpDays.
		logFloor := math.Log(m.RampUpFloor)
		horizon := m.RampUpDays * 86400
		ramp = func(t float64) float64 {
			if t >= horizon {
				return 1
			}
			return math.Exp(logFloor * (1 - t/horizon))
		}
	}
	schedule, err := ScheduleEvents(m.Events, m.Horizon, rng)
	if err != nil {
		return nil, err
	}
	return func(t float64) float64 {
		d := int(t / 86400)
		f := 1.0
		if d >= 0 && d < len(factors) {
			f = factors[d]
		}
		return base(t) * f * ramp(t) * schedule.Boost(t)
	}, nil
}

// pickObject selects a live object: object 0 with probability
// FeedPreference, otherwise uniform over the rest.
func (m *Model) pickObject(rng *rand.Rand) int {
	if m.NumObjects == 1 {
		return 0
	}
	if rng.Float64() < m.FeedPreference {
		return 0
	}
	return 1 + rng.Intn(m.NumObjects-1)
}

// ExpectedSessions returns the expected number of sessions the arrival
// process produces over the model horizon.
func ExpectedSessions(m Model) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	profile, err := m.profile()
	if err != nil {
		return 0, err
	}
	pp, err := dist.NewPiecewisePoisson(profile.Rate, m.PoissonWindow)
	if err != nil {
		return 0, err
	}
	return pp.ExpectedCount(float64(m.Horizon)), nil
}

// String summarizes the workload.
func (w *Workload) String() string {
	return fmt.Sprintf("gismo workload: %d clients, %d sessions, %d requests over %d s",
		w.Population.Size(), w.SessionCount, len(w.Requests), w.Model.Horizon)
}
