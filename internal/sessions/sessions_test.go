package sessions

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// mk builds a trace from (client, start, duration) triples.
func mk(t *testing.T, horizon int64, rows ...[3]int64) *trace.Trace {
	t.Helper()
	transfers := make([]trace.Transfer, len(rows))
	for i, r := range rows {
		transfers[i] = trace.Transfer{
			Client: int(r[0]), Start: r[1], Duration: r[2],
			IP: "1.1.1.1", Country: "BR", AS: 1,
		}
	}
	tr, err := trace.New(horizon, transfers)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSessionizeSplitsOnTimeout(t *testing.T) {
	// Client 1: transfers at [0,10], [100,110], [2000,2010] with To=500:
	// gap 0->100 is 90 (same session), gap 110->2000 is 1890 (new session).
	tr := mk(t, 10000,
		[3]int64{1, 0, 10},
		[3]int64{1, 100, 10},
		[3]int64{1, 2000, 10},
	)
	set, err := Sessionize(tr, 500)
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 2 {
		t.Fatalf("sessions = %d, want 2", set.Count())
	}
	s0, s1 := set.Sessions[0], set.Sessions[1]
	if s0.Start != 0 || s0.End != 110 || s0.Count() != 2 {
		t.Errorf("s0 = %+v", s0)
	}
	if s1.Start != 2000 || s1.End != 2010 || s1.Count() != 1 {
		t.Errorf("s1 = %+v", s1)
	}
	if s0.On() != 110 || s1.On() != 10 {
		t.Errorf("ON times: %d, %d", s0.On(), s1.On())
	}
}

func TestSessionizeGapExactlyTimeoutStays(t *testing.T) {
	// Gap equal to To does not split ("does not exceed").
	tr := mk(t, 10000,
		[3]int64{1, 0, 10},
		[3]int64{1, 510, 10}, // gap = 500 = To
	)
	set, err := Sessionize(tr, 500)
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 1 {
		t.Fatalf("sessions = %d, want 1", set.Count())
	}
}

func TestSessionizeOverlappingTransfersNeverSplit(t *testing.T) {
	// Figure 1: overlapped transfers of the two feeds.
	tr := mk(t, 10000,
		[3]int64{1, 0, 1000},
		[3]int64{1, 400, 100}, // entirely inside the first
		[3]int64{1, 900, 600}, // overlaps the tail
	)
	set, err := Sessionize(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 1 {
		t.Fatalf("sessions = %d, want 1", set.Count())
	}
	if set.Sessions[0].On() != 1500 {
		t.Errorf("ON = %d, want 1500", set.Sessions[0].On())
	}
}

func TestSessionizeRejectsBadTimeout(t *testing.T) {
	tr := mk(t, 100, [3]int64{1, 0, 1})
	if _, err := Sessionize(tr, 0); err == nil {
		t.Error("zero timeout: want error")
	}
	if _, err := Sessionize(tr, -5); err == nil {
		t.Error("negative timeout: want error")
	}
}

func TestSessionizeMultipleClientsIndependent(t *testing.T) {
	tr := mk(t, 10000,
		[3]int64{1, 0, 10},
		[3]int64{2, 5, 10}, // interleaved with client 1 but separate
		[3]int64{1, 5000, 10},
		[3]int64{2, 5005, 10},
	)
	set, err := Sessionize(tr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 4 {
		t.Fatalf("sessions = %d, want 4", set.Count())
	}
	// Globally start-sorted.
	for i := 1; i < len(set.Sessions); i++ {
		if set.Sessions[i].Start < set.Sessions[i-1].Start {
			t.Error("sessions not start-sorted")
		}
	}
}

func TestOffTimes(t *testing.T) {
	// Client 1: session A = [0, 110], session B starts 5000.
	// f = t(B) - t(A) - l(A) = 5000 - 0 - 110 = 4890.
	tr := mk(t, 100000,
		[3]int64{1, 0, 10},
		[3]int64{1, 100, 10},
		[3]int64{1, 5000, 10},
	)
	set, err := Sessionize(tr, 1500)
	if err != nil {
		t.Fatal(err)
	}
	off := set.OffTimes()
	if len(off) != 1 || off[0] != 4890 {
		t.Errorf("OffTimes = %v, want [4890]", off)
	}
}

func TestTransfersPerSessionAndInterarrivals(t *testing.T) {
	tr := mk(t, 100000,
		[3]int64{1, 0, 10},
		[3]int64{1, 30, 10},
		[3]int64{1, 90, 10},
		[3]int64{2, 1000, 20},
	)
	set, err := Sessionize(tr, 1500)
	if err != nil {
		t.Fatal(err)
	}
	counts := set.TransfersPerSession()
	sort.Ints(counts)
	if len(counts) != 2 || counts[0] != 1 || counts[1] != 3 {
		t.Errorf("TransfersPerSession = %v", counts)
	}
	inter := set.IntraSessionInterarrivals()
	sort.Float64s(inter)
	if len(inter) != 2 || inter[0] != 30 || inter[1] != 60 {
		t.Errorf("interarrivals = %v, want [30 60]", inter)
	}
}

func TestTransferOffTimesAndOnRuns(t *testing.T) {
	// One session: [0,10], gap 20, [30,40] overlapped by [35,60], gap 40, [100,110].
	tr := mk(t, 100000,
		[3]int64{1, 0, 10},
		[3]int64{1, 30, 10},
		[3]int64{1, 35, 25},
		[3]int64{1, 100, 10},
	)
	set, err := Sessionize(tr, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 1 {
		t.Fatalf("sessions = %d", set.Count())
	}
	off := set.TransferOffTimes()
	sort.Float64s(off)
	if len(off) != 2 || off[0] != 20 || off[1] != 40 {
		t.Errorf("TransferOffTimes = %v, want [20 40]", off)
	}
	on := set.TransferOnRuns()
	sort.Float64s(on)
	// Runs: [0,10]=10, [30,60]=30, [100,110]=10.
	if len(on) != 3 || on[0] != 10 || on[1] != 10 || on[2] != 30 {
		t.Errorf("TransferOnRuns = %v, want [10 10 30]", on)
	}
	// Every transfer OFF must be <= To by construction.
	for _, o := range off {
		if o > float64(set.Timeout) {
			t.Errorf("transfer OFF %v exceeds To", o)
		}
	}
}

func TestOnTimesAndArrivalTimes(t *testing.T) {
	tr := mk(t, 100000,
		[3]int64{1, 100, 50},
		[3]int64{2, 200, 70},
	)
	set, err := Sessionize(tr, 1500)
	if err != nil {
		t.Fatal(err)
	}
	on := set.OnTimes()
	sort.Float64s(on)
	if on[0] != 50 || on[1] != 70 {
		t.Errorf("OnTimes = %v", on)
	}
	arr := set.ArrivalTimes()
	if arr[0] != 100 || arr[1] != 200 {
		t.Errorf("ArrivalTimes = %v", arr)
	}
}

func TestSweepTimeoutMonotone(t *testing.T) {
	// More timeout -> fewer or equal sessions (merging only).
	tr := mk(t, 100000,
		[3]int64{1, 0, 10},
		[3]int64{1, 500, 10},
		[3]int64{1, 1500, 10},
		[3]int64{1, 4000, 10},
		[3]int64{2, 100, 10},
		[3]int64{2, 3000, 10},
	)
	points, err := SweepTimeout(tr, []int64{100, 500, 1000, 2500, 5000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Sessions > points[i-1].Sessions {
			t.Errorf("session count increased with timeout: %v", points)
		}
	}
	if points[0].Sessions != 6 {
		t.Errorf("smallest timeout should isolate every transfer: %v", points[0])
	}
	if points[len(points)-1].Sessions != 2 {
		t.Errorf("largest timeout should merge per client: %v", points[len(points)-1])
	}
	if _, err := SweepTimeout(tr, []int64{0}); err == nil {
		t.Error("sweep with bad timeout: want error")
	}
}

// Property: sessionization is a partition — every transfer appears in
// exactly one session, and within-session gaps never exceed To.
func TestSessionizePartitionProperty(t *testing.T) {
	f := func(raw []uint32, toRaw uint16) bool {
		to := int64(toRaw%3000) + 1
		rows := make([][3]int64, 0, len(raw))
		for i, r := range raw {
			start := int64(r % 500000)
			dur := int64((r >> 8) % 3600)
			client := int64(i % 5)
			rows = append(rows, [3]int64{client, start, dur})
		}
		transfers := make([]trace.Transfer, len(rows))
		for i, r := range rows {
			transfers[i] = trace.Transfer{Client: int(r[0]), Start: r[1], Duration: r[2], IP: "x", Country: "BR", AS: 1}
		}
		tr, err := trace.New(1000000, transfers)
		if err != nil {
			return false
		}
		set, err := Sessionize(tr, to)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		total := 0
		for _, sess := range set.Sessions {
			coverageEnd := int64(math.MinInt64)
			for _, ti := range sess.Transfers {
				if seen[ti] {
					return false // transfer in two sessions
				}
				seen[ti] = true
				total++
				tt := tr.Transfers[ti]
				if coverageEnd != math.MinInt64 && tt.Start-coverageEnd > to {
					return false // uncut gap
				}
				if tt.End() > coverageEnd {
					coverageEnd = tt.End()
				}
				if tt.Start < sess.Start || tt.End() > sess.End {
					return false // transfer escapes session bounds
				}
			}
		}
		return total == len(tr.Transfers)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
