// Package sessions groups a client's transfers into sessions, making the
// paper's Section 2.2 terminology executable.
//
// A client session is "the interval of time during which the client is
// actively engaged in requesting (and receiving) live objects ... such
// that the duration of any period of no transfers between the server and
// the client does not exceed a preset threshold T_o". Figure 1 relates
// the resulting ON/OFF structure at the session layer (session ON time,
// session OFF a.k.a. "log-off" time) and at the transfer layer (transfer
// ON runs, transfer OFF a.k.a. "think" times, necessarily below T_o).
//
// The paper settles on T_o = 1,500 seconds after the sensitivity sweep of
// Figure 9; DefaultTimeout mirrors that.
package sessions

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/trace"
)

// DefaultTimeout is the paper's session timeout T_o = 1,500 seconds.
const DefaultTimeout int64 = 1500

// ErrBadTimeout reports a non-positive T_o.
var ErrBadTimeout = errors.New("sessions: timeout must be positive")

// Session is one client session: a maximal run of transfers by one client
// with no silent gap exceeding T_o.
type Session struct {
	Client    int
	Transfers []int // indices into the trace's Transfers slice, start order
	Start     int64 // start of the first transfer
	End       int64 // latest end among the session's transfers
}

// On returns the session ON time l(i) = End - Start, in seconds.
func (s Session) On() int64 { return s.End - s.Start }

// Count returns the number of transfers in the session.
func (s Session) Count() int { return len(s.Transfers) }

// Set is the result of sessionizing a trace at a given timeout.
type Set struct {
	Timeout  int64
	Sessions []Session // sorted by (Start, Client)
	tr       *trace.Trace
}

// Sessionize groups each client's transfers into sessions using timeout
// T_o (seconds).
func Sessionize(tr *trace.Trace, timeout int64) (*Set, error) {
	if timeout <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadTimeout, timeout)
	}
	var out []Session
	for client, idxs := range tr.ByClient() { //lsm:nondet -- the sort below re-imposes the (Start, Client) total order
		out = append(out, sessionizeClient(tr, client, idxs, timeout)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Client < out[j].Client
	})
	return &Set{Timeout: timeout, Sessions: out, tr: tr}, nil
}

// sessionizeClient walks one client's start-ordered transfers, closing the
// running session whenever the silent gap (next start minus coverage end)
// exceeds the timeout. Overlapping transfers extend coverage and can never
// split a session.
func sessionizeClient(tr *trace.Trace, client int, idxs []int, timeout int64) []Session {
	var out []Session
	var cur *Session
	for _, i := range idxs {
		t := tr.Transfers[i]
		if cur != nil && t.Start-cur.End > timeout {
			out = append(out, *cur)
			cur = nil
		}
		if cur == nil {
			cur = &Session{Client: client, Start: t.Start, End: t.End()}
		}
		cur.Transfers = append(cur.Transfers, i)
		if t.End() > cur.End {
			cur.End = t.End()
		}
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out
}

// Count returns the number of sessions.
func (s *Set) Count() int { return len(s.Sessions) }

// Trace returns the underlying trace.
func (s *Set) Trace() *trace.Trace { return s.tr }

// OnTimes returns l(i) for every session, honoring the paper's ⌊t+1⌋
// convention via +1 applied by callers when needed; raw seconds here.
func (s *Set) OnTimes() []float64 {
	out := make([]float64, len(s.Sessions))
	for i, sess := range s.Sessions {
		out[i] = float64(sess.On())
	}
	return out
}

// OffTimes returns the session OFF times f(i) = t(j) - t(i) - l(i) for
// every pair of consecutive sessions (i, j) of the same client.
func (s *Set) OffTimes() []float64 {
	// Group session indices per client in start order (Sessions is
	// globally start-sorted, so per-client order is preserved).
	perClient := make(map[int][]int)
	for i, sess := range s.Sessions {
		perClient[sess.Client] = append(perClient[sess.Client], i)
	}
	var out []float64
	for _, idxs := range perClient { //lsm:nondet -- sort.Float64s below re-imposes a total order
		for k := 1; k < len(idxs); k++ {
			prev := s.Sessions[idxs[k-1]]
			next := s.Sessions[idxs[k]]
			off := float64(next.Start - prev.Start - prev.On())
			if off >= 0 {
				out = append(out, off)
			}
		}
	}
	sort.Float64s(out)
	return out
}

// TransfersPerSession returns the transfer count of every session.
func (s *Set) TransfersPerSession() []int {
	out := make([]int, len(s.Sessions))
	for i, sess := range s.Sessions {
		out[i] = sess.Count()
	}
	return out
}

// IntraSessionInterarrivals returns the gaps between consecutive transfer
// start times within each session (Figure 14's variable).
func (s *Set) IntraSessionInterarrivals() []float64 {
	var out []float64
	for _, sess := range s.Sessions {
		for k := 1; k < len(sess.Transfers); k++ {
			a := s.tr.Transfers[sess.Transfers[k-1]].Start
			b := s.tr.Transfers[sess.Transfers[k]].Start
			out = append(out, float64(b-a))
		}
	}
	return out
}

// TransferOffTimes returns the silent gaps inside sessions — the "think"
// (active OFF) times of Figure 1. Every value is <= T_o by construction.
func (s *Set) TransferOffTimes() []float64 {
	var out []float64
	for _, sess := range s.Sessions {
		coverageEnd := int64(-1)
		for _, ti := range sess.Transfers {
			t := s.tr.Transfers[ti]
			if coverageEnd >= 0 && t.Start > coverageEnd {
				out = append(out, float64(t.Start-coverageEnd))
			}
			if t.End() > coverageEnd {
				coverageEnd = t.End()
			}
		}
	}
	return out
}

// TransferOnRuns returns the lengths of maximal intervals within sessions
// during which at least one transfer is active (the transfer ON times of
// Figure 1, which can span overlapped transfers of multiple objects).
func (s *Set) TransferOnRuns() []float64 {
	var out []float64
	for _, sess := range s.Sessions {
		runStart := int64(-1)
		coverageEnd := int64(-1)
		for _, ti := range sess.Transfers {
			t := s.tr.Transfers[ti]
			if runStart < 0 {
				runStart, coverageEnd = t.Start, t.End()
				continue
			}
			if t.Start > coverageEnd {
				out = append(out, float64(coverageEnd-runStart))
				runStart, coverageEnd = t.Start, t.End()
				continue
			}
			if t.End() > coverageEnd {
				coverageEnd = t.End()
			}
		}
		if runStart >= 0 {
			out = append(out, float64(coverageEnd-runStart))
		}
	}
	return out
}

// ArrivalTimes returns every session's start time in seconds, sorted.
func (s *Set) ArrivalTimes() []int64 {
	out := make([]int64, len(s.Sessions))
	for i, sess := range s.Sessions {
		out[i] = sess.Start
	}
	return out
}

// SweepPoint is one (timeout, session count) sample of the Figure 9 curve.
type SweepPoint struct {
	Timeout  int64
	Sessions int
}

// SweepTimeout evaluates the number of sessions at each timeout value —
// the sensitivity analysis of Figure 9 ("the number of sessions does not
// change drastically for T_o > 1,500 seconds").
func SweepTimeout(tr *trace.Trace, timeouts []int64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(timeouts))
	for _, to := range timeouts {
		set, err := Sessionize(tr, to)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Timeout: to, Sessions: set.Count()})
	}
	return out, nil
}
