package core

import (
	"repro/internal/analyze"
	"repro/internal/report"
	"repro/internal/stats"
)

// Figure is one reproduced paper figure: its identifier, caption, and the
// data series of its panels.
type Figure struct {
	ID      string // e.g. "fig04"
	Caption string
	Series  []report.Series
}

// Figures renders every reproduced figure's data series from a
// characterization. The returned slice is ordered by figure number.
func (c *Characterization) Figures() []Figure {
	var out []Figure

	out = append(out, Figure{
		ID:      "fig02",
		Caption: "Client diversity: transfers over ASes, IPs over ASes, transfers over countries",
		Series: []report.Series{
			report.FromRankShare("fig02_as_transfers", c.Divers.ASTransferShare),
			report.FromRankShare("fig02_as_ips", c.Divers.ASIPShare),
			countrySeries("fig02_countries", c.Divers.CountryShare),
		},
	})

	cm := c.Client.Concurrency
	out = append(out, Figure{
		ID:      "fig03",
		Caption: "Marginal distribution of number of active clients",
		Series: []report.Series{
			report.FromECDFCDF("fig03_cdf", cm.Marginal),
			report.FromECDFCCDF("fig03_ccdf", cm.Marginal),
		},
	})
	out = append(out, Figure{
		ID:      "fig04",
		Caption: "Temporal behavior of number of active clients",
		Series: []report.Series{
			report.FromBinned("fig04_trace", cm.Binned, "seconds", "clients"),
			report.FromBinned("fig04_week", cm.WeekFold, "seconds mod week", "clients"),
			report.FromBinned("fig04_day", cm.DayFold, "seconds mod day", "clients"),
		},
	})

	interDisp := analyze.InterarrivalDisplay(c.Client.Interarrivals)
	interECDF := stats.NewECDF(interDisp)
	out = append(out, Figure{
		ID:      "fig05",
		Caption: "Marginal distribution of client interarrival times",
		Series: []report.Series{
			report.FromECDFCDF("fig05_cdf", interECDF),
			report.FromECDFCCDF("fig05_ccdf", interECDF),
		},
	})

	if len(c.Poisson.Interarrivals) > 0 {
		pECDF := stats.NewECDF(c.Poisson.Interarrivals)
		out = append(out, Figure{
			ID:      "fig06",
			Caption: "Interarrival times from a piecewise-stationary Poisson process",
			Series: []report.Series{
				report.FromECDFCDF("fig06_cdf", pECDF),
				report.FromECDFCCDF("fig06_ccdf", pECDF),
			},
		})
	}

	out = append(out, Figure{
		ID:      "fig07",
		Caption: "Client interest profile: transfer and session frequency vs client rank",
		Series: []report.Series{
			report.FromRankShare("fig07_transfers", stats.RankFrequencies(c.Client.TransfersPerClient)),
			report.FromRankShare("fig07_sessions", stats.RankFrequencies(c.Client.SessionsPerClient)),
		},
	})

	out = append(out, Figure{
		ID:      "fig08",
		Caption: "Autocorrelation of number of clients over time (minute lags)",
		Series:  []report.Series{report.FromACF("fig08_acf", cm.ACF)},
	})

	sweepPts := make([]stats.Point, len(c.Sweep))
	for i, p := range c.Sweep {
		sweepPts[i] = stats.Point{X: float64(p.Timeout), Y: float64(p.Sessions)}
	}
	out = append(out, Figure{
		ID:      "fig09",
		Caption: "Number of sessions identified vs session timeout T_o",
		Series: []report.Series{{
			Name: "fig09_sweep", XLabel: "T_o (s)", YLabel: "sessions", Points: sweepPts,
		}},
	})

	hourPts := make([]stats.Point, 24)
	for h := 0; h < 24; h++ {
		hourPts[h] = stats.Point{X: float64(h), Y: c.Session.OnByHour[h]}
	}
	out = append(out, Figure{
		ID:      "fig10",
		Caption: "Session ON time versus session starting hour",
		Series: []report.Series{{
			Name: "fig10_on_by_hour", XLabel: "hour", YLabel: "mean ON (s)", Points: hourPts,
		}},
	})

	onECDF := c.Session.OnMarginal()
	out = append(out, Figure{
		ID:      "fig11",
		Caption: "Marginal distribution of session ON times (lognormal body)",
		Series: []report.Series{
			report.FromECDFCDF("fig11_cdf", onECDF),
			report.FromECDFCCDF("fig11_ccdf", onECDF),
		},
	})

	offECDF := c.Session.OffMarginal()
	out = append(out, Figure{
		ID:      "fig12",
		Caption: "Marginal distribution of session OFF times (exponential)",
		Series: []report.Series{
			report.FromECDFCDF("fig12_cdf", offECDF),
			report.FromECDFCCDF("fig12_ccdf", offECDF),
		},
	})

	perSession := make([]float64, len(c.Session.TransfersPerSession))
	for i, v := range c.Session.TransfersPerSession {
		perSession[i] = float64(v)
	}
	psECDF := stats.NewECDF(perSession)
	out = append(out, Figure{
		ID:      "fig13",
		Caption: "Marginal distribution of number of transfers per session (Zipf)",
		Series: []report.Series{
			report.FromECDFCDF("fig13_cdf", psECDF),
			report.FromECDFCCDF("fig13_ccdf", psECDF),
		},
	})

	intraECDF := stats.NewECDF(analyze.InterarrivalDisplay(c.Session.IntraArrivals))
	out = append(out, Figure{
		ID:      "fig14",
		Caption: "Marginal distribution of transfer interarrivals within a session (lognormal)",
		Series: []report.Series{
			report.FromECDFCDF("fig14_cdf", intraECDF),
			report.FromECDFCCDF("fig14_ccdf", intraECDF),
		},
	})

	tm := c.Transfer.Concurrency
	out = append(out, Figure{
		ID:      "fig15",
		Caption: "Marginal distribution of concurrent transfers",
		Series: []report.Series{
			report.FromECDFCDF("fig15_cdf", tm.Marginal),
			report.FromECDFCCDF("fig15_ccdf", tm.Marginal),
		},
	})
	out = append(out, Figure{
		ID:      "fig16",
		Caption: "Temporal behavior of number of concurrent transfers",
		Series: []report.Series{
			report.FromBinned("fig16_trace", tm.Binned, "seconds", "transfers"),
			report.FromBinned("fig16_week", tm.WeekFold, "seconds mod week", "transfers"),
			report.FromBinned("fig16_day", tm.DayFold, "seconds mod day", "transfers"),
		},
	})

	taECDF := stats.NewECDF(c.Transfer.Interarrivals)
	out = append(out, Figure{
		ID:      "fig17",
		Caption: "Marginal distribution of transfer interarrival times (two-regime tail)",
		Series: []report.Series{
			report.FromECDFCDF("fig17_cdf", taECDF),
			report.FromECDFCCDF("fig17_ccdf", taECDF),
		},
	})
	out = append(out, Figure{
		ID:      "fig18",
		Caption: "Temporal behavior of transfer interarrival times",
		Series: []report.Series{
			report.FromBinned("fig18_trace", c.Transfer.InterarrivalBinned, "seconds", "interarrival (s)"),
			report.FromBinned("fig18_week", c.Transfer.InterarrivalWeek, "seconds mod week", "interarrival (s)"),
			report.FromBinned("fig18_day", c.Transfer.InterarrivalDay, "seconds mod day", "interarrival (s)"),
		},
	})

	lenECDF := stats.NewECDF(c.Transfer.Lengths)
	out = append(out, Figure{
		ID:      "fig19",
		Caption: "Marginal distribution of transfer lengths (lognormal, client stickiness)",
		Series: []report.Series{
			report.FromECDFCDF("fig19_cdf", lenECDF),
			report.FromECDFCCDF("fig19_ccdf", lenECDF),
		},
	})

	bwSeries := bandwidthHistogram("fig20_hist", c.Transfer.Bandwidths)
	bwECDF := stats.NewECDF(c.Transfer.Bandwidths)
	out = append(out, Figure{
		ID:      "fig20",
		Caption: "Transfer bandwidth: bimodal frequency and cumulative distribution",
		Series: []report.Series{
			bwSeries,
			report.FromECDFCDF("fig20_cdf", bwECDF),
		},
	})

	return out
}

func countrySeries(name string, shares map[string]float64) report.Series {
	// Render in the paper's fixed country order where present.
	order := []string{"BR", "US", "AR", "JP", "DE", "CH", "AU", "BE", "BO", "SG", "SV"}
	pts := make([]stats.Point, 0, len(order))
	for i, country := range order {
		if share, ok := shares[country]; ok {
			pts = append(pts, stats.Point{X: float64(i + 1), Y: share})
		}
	}
	return report.Series{Name: name, XLabel: "country index (BR..SV)", YLabel: "share of transfers", Points: pts}
}

func bandwidthHistogram(name string, bws []float64) report.Series {
	if len(bws) == 0 {
		return report.Series{Name: name}
	}
	maxV := 0.0
	for _, b := range bws {
		if b > maxV {
			maxV = b
		}
	}
	h, err := stats.NewLogHistogram(100, maxV+1, 200)
	if err != nil {
		return report.Series{Name: name}
	}
	h.AddAll(bws)
	return report.FromHistogram(name, h)
}
