package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// runOnce caches a full pipeline run shared by the core tests.
var cachedReport *Report

func getReport(t *testing.T) *Report {
	t.Helper()
	if cachedReport != nil {
		return cachedReport
	}
	cfg, err := DefaultConfig(150, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedReport = rep
	return rep
}

func TestDefaultConfigValidates(t *testing.T) {
	cfg, err := DefaultConfig(100, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SessionTimeout != 1500 {
		t.Errorf("timeout = %d, want the paper's 1500", cfg.SessionTimeout)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	cfg, err := DefaultConfig(100, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.SessionTimeout = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero timeout: want error")
	}
	bad = cfg
	bad.Model.NumClients = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad model: want error")
	}
	bad = cfg
	bad.Server.EncodingBps = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad server: want error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	rep := getReport(t)
	c := rep.Char

	if c.Basic.Objects != 2 {
		t.Errorf("objects = %d, want 2", c.Basic.Objects)
	}
	if c.Basic.Users < 100 {
		t.Errorf("users = %d", c.Basic.Users)
	}
	if c.Basic.Transfers <= c.Basic.Sessions {
		t.Errorf("transfers %d should exceed sessions %d", c.Basic.Transfers, c.Basic.Sessions)
	}
	if c.Basic.Days != 7 {
		t.Errorf("days = %d", c.Basic.Days)
	}
	if rep.Audit.TransferBelowFrac < 0.99 {
		t.Errorf("CPU audit = %+v, want unloaded server", rep.Audit)
	}
	if rep.Peak < 1 {
		t.Error("no peak concurrency")
	}
}

func TestRunSanitizesInjectedSpanning(t *testing.T) {
	cfg, err := DefaultConfig(300, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Server.SpanningPerMillion = 50000 // 5%: guaranteed injection
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sanitize.DroppedSpanning == 0 {
		t.Error("expected sanitization to drop injected spanning entries")
	}
}

func TestRoundTripRecoversTable2(t *testing.T) {
	rep := getReport(t)
	m := rep.Config.Model
	c := rep.Char

	// The headline validation: the characterization pipeline recovers
	// the Table 2 parameters the generator was instantiated with.
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"transfers/session alpha", c.Session.PerSessionFit.Alpha, m.TransfersPerSession.Alpha, 0.4},
		{"intra-session mu", c.Session.IntraFit.Mu, m.IntraSessionGap.Mu, 0.25},
		{"intra-session sigma", c.Session.IntraFit.Sigma, m.IntraSessionGap.Sigma, 0.25},
		{"transfer length mu", c.Transfer.LengthFit.Mu, m.TransferLength.Mu, 0.25},
		{"transfer length sigma", c.Transfer.LengthFit.Sigma, m.TransferLength.Sigma, 0.25},
	}
	for _, ck := range checks {
		if math.Abs(ck.got-ck.want) > ck.tol {
			t.Errorf("%s = %v, want %v +- %v", ck.name, ck.got, ck.want, ck.tol)
		}
	}
	// Interest profile skew present (Figure 7 duality).
	if c.Client.InterestSessions.Alpha < 0.15 {
		t.Errorf("sessions-per-client alpha = %v, want Zipf skew", c.Client.InterestSessions.Alpha)
	}
}

func TestPoissonReplicaMatches(t *testing.T) {
	rep := getReport(t)
	p := rep.Char.Poisson
	if len(p.Interarrivals) == 0 {
		t.Fatal("no Poisson replica generated")
	}
	// Figure 6 vs Figure 5: "surprisingly similar" distributions, with a
	// residual gap the paper's footnote 6 attributes to the diurnal mean
	// smoothing out day-to-day variability (our DayVariability + ramp-up)
	// — so close, but not arbitrarily close.
	if p.KS > 0.25 {
		t.Errorf("piecewise-Poisson KS = %v, want close match", p.KS)
	}
	if p.Window != 900 {
		t.Errorf("window = %d, want the paper's 900 s", p.Window)
	}
}

func TestTimeoutSweepShape(t *testing.T) {
	rep := getReport(t)
	sweep := rep.Char.Sweep
	if len(sweep) != len(DefaultTimeoutSweep) {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	// Monotone decreasing; knee: the relative drop beyond 1500 s is small.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Sessions > sweep[i-1].Sessions {
			t.Fatal("sweep not monotone")
		}
	}
	var at1500, at4000 int
	for _, p := range sweep {
		if p.Timeout == 1500 {
			at1500 = p.Sessions
		}
		if p.Timeout == 4000 {
			at4000 = p.Sessions
		}
	}
	drop := float64(at1500-at4000) / float64(at1500)
	if drop > 0.1 {
		t.Errorf("sessions drop %.1f%% beyond T_o=1500, want the Figure 9 flattening", drop*100)
	}
}

func TestComparisonsCoverTable2(t *testing.T) {
	rep := getReport(t)
	comps := rep.Comparisons()
	if len(comps) < 11 {
		t.Fatalf("only %d comparisons", len(comps))
	}
	wantQuantities := []string{
		"client interest alpha (transfers/client)",
		"client interest alpha (sessions/client)",
		"transfers/session Zipf alpha",
		"intra-session gap lognormal mu",
		"transfer length lognormal mu",
		"congestion-bound transfer fraction",
	}
	have := map[string]bool{}
	for _, c := range comps {
		have[c.Quantity] = true
	}
	for _, q := range wantQuantities {
		if !have[q] {
			t.Errorf("missing comparison %q", q)
		}
	}
	// Round-trip quantities must be close to the paper values.
	for _, c := range comps {
		switch c.Quantity {
		case "transfers/session Zipf alpha", "intra-session gap lognormal mu",
			"transfer length lognormal mu", "transfer length lognormal sigma":
			if c.RelErr() > 0.2 {
				t.Errorf("%s rel err = %.1f%%", c.Quantity, c.RelErr()*100)
			}
		}
	}
}

func TestTable1Renders(t *testing.T) {
	rep := getReport(t)
	tbl := rep.Table1()
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "live objects", "691,889", "sessions"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresComplete(t *testing.T) {
	rep := getReport(t)
	figs := rep.Char.Figures()
	wantIDs := []string{
		"fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
		"fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20",
	}
	have := map[string]Figure{}
	for _, f := range figs {
		have[f.ID] = f
	}
	for _, id := range wantIDs {
		f, ok := have[id]
		if !ok {
			t.Errorf("missing figure %s", id)
			continue
		}
		if len(f.Series) == 0 {
			t.Errorf("figure %s has no series", id)
		}
		for _, s := range f.Series {
			// Weekly folds may be empty for short traces, everything else
			// must carry data.
			if len(s.Points) == 0 && !strings.Contains(s.Name, "week") {
				t.Errorf("figure %s series %s is empty", id, s.Name)
			}
		}
	}
}

func TestFmtInt(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"}, {5, "5"}, {999, "999"}, {1000, "1,000"},
		{691889, "691,889"}, {5500000, "5,500,000"}, {-1234, "-1,234"},
	}
	for _, c := range cases {
		if got := fmtInt(c.in); got != c.want {
			t.Errorf("fmtInt(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg, err := DefaultConfig(500, 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Char.Basic != b.Char.Basic {
		t.Errorf("non-deterministic basic stats: %+v vs %+v", a.Char.Basic, b.Char.Basic)
	}
	if a.Char.Transfer.LengthFit != b.Char.Transfer.LengthFit {
		t.Error("non-deterministic fits")
	}
}
