// Package core is the end-to-end reproduction pipeline of Veloso et al.,
// "A Hierarchical Characterization of a Live Streaming Media Workload"
// (IMC 2002).
//
// It wires the substrates together:
//
//	gismo.Generate  -> synthetic request stream (Section 6 model)
//	simulate.Run    -> served transfers + WMS-style logs
//	trace.Sanitize  -> Section 2.4 cleaning
//	sessions        -> Section 2.2 sessionization at T_o
//	analyze         -> Sections 3-5 layer characterizations
//	report          -> figures, tables, paper-vs-measured comparisons
//
// The headline artifact is the round trip: instantiate the generative
// model with the paper's Table 2 parameters, push it through the server
// and the characterization pipeline, and recover the parameters — the
// validation loop the paper itself closes with GISMO.
package core

import (
	"errors"
	"fmt"
	randv2 "math/rand/v2"

	"repro/internal/analyze"
	"repro/internal/dist"
	"repro/internal/gismo"
	"repro/internal/sessions"
	"repro/internal/simulate"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ErrBadConfig reports invalid pipeline configuration.
var ErrBadConfig = errors.New("core: bad config")

// lanePoissonReplica is the seed-derivation lane of the measurement
// side's only random draw — the Figure 6 piecewise-Poisson replica —
// disjoint from the generator's lanes 0–4, the server's serveLane 5,
// and the dispatcher's laneHash 6, so characterizing a trace with the
// same seed that generated it cannot correlate the replica's synthetic
// arrivals with the trace's own randomness (lsmvet's seedlane analyzer
// keeps the namespace collision-free).
const lanePoissonReplica uint64 = 7

// Config parameterizes a full reproduction run.
type Config struct {
	// Model is the generative model (gismo.Default for paper scale,
	// gismo.Scaled for laptop scale).
	Model gismo.Model
	// Server is the simulator configuration.
	Server simulate.Config
	// SessionTimeout is T_o in seconds (paper: 1,500).
	SessionTimeout int64
	// TimeoutSweep holds the T_o values for the Figure 9 sensitivity
	// curve; nil selects DefaultTimeoutSweep.
	TimeoutSweep []int64
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
}

// DefaultTimeoutSweep spans Figure 9's x-axis (up to 4,000 s).
var DefaultTimeoutSweep = []int64{60, 120, 300, 600, 900, 1200, 1500, 2000, 2500, 3000, 3500, 4000}

// DefaultConfig returns a laptop-scale configuration: the paper's
// distributional parameters over a 7-day trace with a population scaled
// down by the given factor (>= 1).
func DefaultConfig(scale float64, days int, seed int64) (Config, error) {
	m, err := gismo.Scaled(scale, days)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Model:          m,
		Server:         simulate.DefaultConfig(),
		SessionTimeout: sessions.DefaultTimeout,
		Seed:           seed,
	}, nil
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if err := c.Server.Validate(); err != nil {
		return err
	}
	if c.SessionTimeout <= 0 {
		return fmt.Errorf("%w: session timeout %d", ErrBadConfig, c.SessionTimeout)
	}
	return nil
}

// BasicStats is Table 1: the trace's basic statistics.
type BasicStats struct {
	Days       int
	Objects    int
	ASes       int
	IPs        int
	Users      int
	Sessions   int
	Transfers  int
	TotalBytes int64
}

// Characterization bundles every layer analysis of a sanitized trace —
// all the material behind Figures 2–20.
type Characterization struct {
	// Horizon is the trace length in seconds — carried so downstream
	// consumers (the calibrate.Fit parameter recovery) need no second
	// look at the trace.
	Horizon  int64
	Timeout  int64
	Basic    BasicStats
	Client   *analyze.ClientLayer
	Session  *analyze.SessionLayer
	Transfer *analyze.TransferLayer
	Divers   *analyze.Diversity
	Sweep    []sessions.SweepPoint

	// ArrivalBins counts session arrivals per 15-minute bin over the
	// horizon — the binned arrival series behind Figure 4, and the
	// series calibrate.Fit reads the empirical rate profile off.
	ArrivalBins stats.BinnedSeries

	// Poisson is the Figure 6 replica: interarrivals synthesized from a
	// piecewise-stationary Poisson process whose rates are read off the
	// measured diurnal profile, plus the two-sample KS distance to the
	// measured interarrivals.
	Poisson PoissonReplica
}

// PoissonReplica is the Figure 6 experiment.
type PoissonReplica struct {
	// Interarrivals are the synthetic interarrival display values.
	Interarrivals []float64
	// KS is the two-sample KS distance between measured and synthetic
	// interarrival distributions; the paper calls the two "surprisingly
	// similar".
	KS float64
	// Window is the stationarity window used (seconds).
	Window int64
}

// Report is the result of a full generative run.
type Report struct {
	Config   Config
	Sessions int // sessions emitted by the generator
	Sanitize trace.SanitizeReport
	Audit    trace.OverloadAudit
	Peak     int // peak concurrent transfers in the simulator
	Char     *Characterization
}

// Run executes the full pipeline: generate, serve, sanitize, sessionize,
// characterize.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w, err := gismo.GenerateSeeded(cfg.Model, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	// The simulator derives all server-model draws from the seed alone
	// (per-event splitmix streams), so Run and RunStreamed serve
	// byte-identical results for equal seeds.
	res, err := simulate.Run(w, cfg.Server, uint64(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	// The in-memory trace from the simulator contains only genuine
	// transfers, but the log path may include injected spanning entries;
	// to exercise the paper's pipeline we go through entries when
	// injection is enabled.
	tr := res.Trace
	if res.Injected > 0 {
		tr, err = trace.FromEntries(res.Entries, cfg.Server.Epoch, cfg.Model.Horizon)
		if err != nil {
			return nil, fmt.Errorf("rebuild from entries: %w", err)
		}
	}
	clean, sanReport := tr.Sanitize()
	char, err := Characterize(clean, cfg.SessionTimeout, cfg.TimeoutSweep, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Report{
		Config:   cfg,
		Sessions: w.SessionCount,
		Sanitize: sanReport,
		Audit:    clean.AuditServerLoad(10),
		Peak:     res.PeakConcurrency,
		Char:     char,
	}, nil
}

// Characterize runs the Sections 3–5 pipeline on an already-sanitized
// trace. seed drives the Figure 6 Poisson replica through a dedicated
// splitmix lane (lanePoissonReplica), so equal (trace, seed) pairs
// characterize identically — the measurement side honors the same
// determinism contract as the generator and the server.
func Characterize(tr *trace.Trace, timeout int64, sweep []int64, seed int64) (*Characterization, error) {
	set, err := sessions.Sessionize(tr, timeout)
	if err != nil {
		return nil, err
	}
	client, err := analyze.AnalyzeClientLayer(set)
	if err != nil {
		return nil, fmt.Errorf("client layer: %w", err)
	}
	session, err := analyze.AnalyzeSessionLayer(set)
	if err != nil {
		return nil, fmt.Errorf("session layer: %w", err)
	}
	transfer, err := analyze.AnalyzeTransferLayer(tr)
	if err != nil {
		return nil, fmt.Errorf("transfer layer: %w", err)
	}
	divers, err := analyze.AnalyzeDiversity(tr)
	if err != nil {
		return nil, fmt.Errorf("diversity: %w", err)
	}
	if sweep == nil {
		sweep = DefaultTimeoutSweep
	}
	sweepPoints, err := sessions.SweepTimeout(tr, sweep)
	if err != nil {
		return nil, fmt.Errorf("timeout sweep: %w", err)
	}

	char := &Characterization{
		Horizon:  tr.Horizon,
		Timeout:  timeout,
		Basic:    basicStats(tr, set),
		Client:   client,
		Session:  session,
		Transfer: transfer,
		Divers:   divers,
		Sweep:    sweepPoints,
	}
	if bins, err := stats.BinCounts(set.ArrivalTimes(), tr.Horizon, analyze.TemporalBin); err == nil {
		char.ArrivalBins = bins
	}
	char.Poisson = BuildPoissonReplica(set, tr.Horizon, client.Interarrivals, seed)
	return char, nil
}

func basicStats(tr *trace.Trace, set *sessions.Set) BasicStats {
	return BasicStats{
		Days:       int(tr.Horizon / 86400),
		Objects:    tr.DistinctObjects(),
		ASes:       tr.DistinctAS(),
		IPs:        tr.DistinctIPs(),
		Users:      tr.NumClients(),
		Sessions:   set.Count(),
		Transfers:  tr.NumTransfers(),
		TotalBytes: tr.TotalBytes(),
	}
}

// BuildPoissonReplica reproduces the Figure 6 experiment: read the mean
// arrival rate per 15-minute slot of the day off the measured session
// arrivals, synthesize a piecewise-stationary Poisson arrival stream over
// the same horizon, and compare interarrival distributions. The
// synthetic draws come from a splitmix generator on the seed's
// dedicated replica lane.
func BuildPoissonReplica(set *sessions.Set, horizon int64, measured []float64, seed int64) PoissonReplica {
	const window = analyze.TemporalBin // 900 s, the paper's 15 minutes
	rng := randv2.New(dist.NewSplitMix64(dist.Mix64(uint64(seed), lanePoissonReplica)))
	arrivals := set.ArrivalTimes()
	counts, err := stats.BinCounts(arrivals, horizon, window)
	if err != nil {
		return PoissonReplica{}
	}
	dayFold, err := counts.FoldModulo(86400)
	if err != nil {
		return PoissonReplica{}
	}
	rateOf := func(t float64) float64 {
		slot := int(int64(t)%86400) / int(window)
		if slot < 0 || slot >= len(dayFold.Values) {
			return 0
		}
		return dayFold.Values[slot] / float64(window)
	}
	pp, err := dist.NewPiecewisePoisson(rateOf, float64(window))
	if err != nil {
		return PoissonReplica{}
	}
	synth := pp.ArrivalsV2(rng, float64(horizon), nil)
	gaps := make([]float64, 0, len(synth))
	for i := 1; i < len(synth); i++ {
		gaps = append(gaps, stats.LogDisplayValue(synth[i]-synth[i-1]))
	}
	rep := PoissonReplica{Interarrivals: gaps, Window: int64(window)}
	if len(gaps) > 0 && len(measured) > 0 {
		disp := analyze.InterarrivalDisplay(measured)
		if ks, err := dist.KolmogorovSmirnov2(disp, gaps); err == nil {
			rep.KS = ks
		}
	}
	return rep
}
