package core

import (
	"fmt"

	"repro/internal/analyze"
	"repro/internal/gismo"
	"repro/internal/simulate"
)

// StreamReport is the result of a streamed end-to-end run: the same
// generate → serve → measure loop as Run, but riding the sharded event
// stream in O(active sessions) memory, with the measurement layer's
// online estimators standing in for the batch characterization.
type StreamReport struct {
	Config Config
	// Shards is the generator shard count used.
	Shards int
	// Sessions is the number of generated sessions.
	Sessions int
	// Served summarizes the serving pass.
	Served simulate.StreamResult
	// Online is the single-pass measurement snapshot.
	Online analyze.OnlineSnapshot
}

// RunStreamed executes the streaming pipeline: sharded generation,
// sharded serving (one serve lane per generator shard), online
// measurement — one pass, no materialized workload, trace or log
// slice. For equal seeds it serves the exact request sequence Run
// serves (the stream is shard-count invariant, Run's generator is a
// drained stream, and the simulator's draws are a pure function of the
// seed and the event identity), so its exact quantities — transfer
// count, bytes, peak concurrency — match Run's, while the sketched
// ones (distinct counts, quantiles) carry the error bounds documented
// on analyze.OnlineLayer.
func RunStreamed(cfg Config, shards int) (*StreamReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws, err := gismo.NewStreamSeeded(cfg.Model, cfg.Seed, shards)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	defer ws.Close()

	online, err := analyze.NewOnlineLayer(cfg.Model.Horizon)
	if err != nil {
		return nil, err
	}
	res, err := simulate.RunStreamSharded(ws, ws.Population(), cfg.Model.Horizon, cfg.Server, uint64(cfg.Seed), shards, simulate.StreamSinks{
		Transfer: online.Add,
	})
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	return &StreamReport{
		Config:   cfg,
		Shards:   shards,
		Sessions: ws.Sessions(),
		Served:   *res,
		Online:   online.Snapshot(),
	}, nil
}
