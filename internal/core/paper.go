package core

import (
	"repro/internal/report"
)

// Paper holds the values reported by Veloso et al. (IMC 2002), used for
// the paper-versus-measured comparisons in EXPERIMENTS.md.
var Paper = struct {
	// Table 1.
	Days      int
	Objects   int
	ASes      int
	IPs       int
	Users     int
	Sessions  int
	Transfers int
	TBytes    float64

	// Figure 7: client interest Zipf slopes.
	InterestTransfersAlpha float64
	InterestSessionsAlpha  float64

	// Figure 11: session ON lognormal.
	SessionOnMu, SessionOnSigma float64

	// Figure 12: session OFF exponential mean (seconds).
	SessionOffMean float64

	// Figure 13: transfers-per-session Zipf slope.
	PerSessionAlpha float64

	// Figure 14: intra-session interarrival lognormal.
	IntraMu, IntraSigma float64

	// Figure 17: two-regime transfer interarrival tail indices.
	TailBodyAlpha, TailFarAlpha float64

	// Figure 19: transfer length lognormal.
	LengthMu, LengthSigma float64

	// Figure 20 / Section 5.4: congestion-bound share of transfers.
	CongestionFrac float64

	// Section 2.4: server CPU below 10% for this fraction of time and of
	// transfers.
	CPUBelowTimeFrac     float64
	CPUBelowTransferFrac float64

	// Figure 9: the T_o beyond which the session count flattens.
	TimeoutKnee int64
}{
	Days:      28,
	Objects:   2,
	ASes:      1010,
	IPs:       364184,
	Users:     691889,
	Sessions:  1500000,
	Transfers: 5500000,
	TBytes:    8,

	InterestTransfersAlpha: 0.719395,
	InterestSessionsAlpha:  0.470438,

	SessionOnMu:    5.23553,
	SessionOnSigma: 1.54432,

	SessionOffMean: 203150,

	PerSessionAlpha: 2.70417,

	IntraMu:    4.89991,
	IntraSigma: 1.32074,

	TailBodyAlpha: 2.8,
	TailFarAlpha:  1.0,

	LengthMu:    4.383921,
	LengthSigma: 1.427247,

	CongestionFrac: 0.10,

	CPUBelowTimeFrac:     0.9999,
	CPUBelowTransferFrac: 0.99,

	TimeoutKnee: 1500,
}

// Comparisons builds the paper-versus-measured rows for every fitted
// quantity — the backbone of EXPERIMENTS.md. Scale-dependent Table 1
// counts are annotated rather than compared numerically.
func (r *Report) Comparisons() []report.Comparison {
	c := r.Char
	out := []report.Comparison{
		{Experiment: "Figure 7L", Quantity: "client interest alpha (transfers/client)",
			Paper: Paper.InterestTransfersAlpha, Measured: c.Client.InterestTransfers.Alpha,
			Note: "Zipf log-log slope"},
		{Experiment: "Figure 7R", Quantity: "client interest alpha (sessions/client)",
			Paper: Paper.InterestSessionsAlpha, Measured: c.Client.InterestSessions.Alpha,
			Note: "Zipf log-log slope"},
		{Experiment: "Figure 11", Quantity: "session ON lognormal mu",
			Paper: Paper.SessionOnMu, Measured: c.Session.OnFit.Mu,
			Note: "emergent from Zipf counts x lognormal gaps/lengths"},
		{Experiment: "Figure 11", Quantity: "session ON lognormal sigma",
			Paper: Paper.SessionOnSigma, Measured: c.Session.OnFit.Sigma,
			Note: "emergent"},
		{Experiment: "Figure 13", Quantity: "transfers/session Zipf alpha",
			Paper: Paper.PerSessionAlpha, Measured: c.Session.PerSessionFit.Alpha,
			Note: "model round trip"},
		{Experiment: "Figure 14", Quantity: "intra-session gap lognormal mu",
			Paper: Paper.IntraMu, Measured: c.Session.IntraFit.Mu,
			Note: "model round trip"},
		{Experiment: "Figure 14", Quantity: "intra-session gap lognormal sigma",
			Paper: Paper.IntraSigma, Measured: c.Session.IntraFit.Sigma,
			Note: "model round trip"},
		{Experiment: "Figure 19", Quantity: "transfer length lognormal mu",
			Paper: Paper.LengthMu, Measured: c.Transfer.LengthFit.Mu,
			Note: "model round trip"},
		{Experiment: "Figure 19", Quantity: "transfer length lognormal sigma",
			Paper: Paper.LengthSigma, Measured: c.Transfer.LengthFit.Sigma,
			Note: "model round trip"},
		{Experiment: "Figure 20", Quantity: "congestion-bound transfer fraction",
			Paper: Paper.CongestionFrac, Measured: c.Transfer.CongestionFrac,
			Note: "bimodal bandwidth"},
		{Experiment: "Section 2.4", Quantity: "fraction of transfers below 10% CPU",
			Paper: Paper.CPUBelowTransferFrac, Measured: r.Audit.TransferBelowFrac,
			Note: "lower bound in paper"},
	}
	if c.Transfer.TailBody.Points > 0 {
		out = append(out, report.Comparison{
			Experiment: "Figure 17", Quantity: "interarrival tail alpha (<= 100 s)",
			Paper: Paper.TailBodyAlpha, Measured: c.Transfer.TailBody.Alpha,
			Note: "power-law CCDF regression"})
	}
	if c.Transfer.TailFar.Points > 0 {
		out = append(out, report.Comparison{
			Experiment: "Figure 17", Quantity: "interarrival tail alpha (> 100 s)",
			Paper: Paper.TailFarAlpha, Measured: c.Transfer.TailFar.Alpha,
			Note: "power-law CCDF regression"})
	}
	if len(c.Session.OffTimes) > 0 {
		out = append(out, report.Comparison{
			Experiment: "Figure 12", Quantity: "session OFF exponential mean (s)",
			Paper: Paper.SessionOffMean, Measured: c.Session.OffFit.MeanValue,
			Note: "scale-dependent: shorter horizon compresses OFF times"})
	}
	return out
}

// Table1 renders the Basic statistics as the paper's Table 1 with the
// paper's values alongside.
func (r *Report) Table1() *report.Table {
	b := r.Char.Basic
	t := &report.Table{
		Title:   "Table 1: Basic statistics of the trace",
		Headers: []string{"Metric", "Measured", "Paper"},
	}
	t.AddRow("Log period (days)", itoa(b.Days), itoa(Paper.Days))
	t.AddRow("Total # of live objects", itoa(b.Objects), itoa(Paper.Objects))
	t.AddRow("Total # of client ASs", itoa(b.ASes), itoa(Paper.ASes))
	t.AddRow("Total # of client IPs", itoa(b.IPs), itoa(Paper.IPs))
	t.AddRow("Total # of users", itoa(b.Users), itoa(Paper.Users))
	t.AddRow("Total # of sessions", itoa(b.Sessions), "> "+itoa(Paper.Sessions))
	t.AddRow("Total # of transfers", itoa(b.Transfers), "> "+itoa(Paper.Transfers))
	t.AddRow("Total content served (GB)", itoa(int(b.TotalBytes/1e9)), "> 8000")
	return t
}

func itoa(v int) string { return fmtInt(int64(v)) }

// fmtInt renders an integer with thousands separators, matching the
// paper's "691,889" style.
func fmtInt(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := ""
	for v >= 1000 {
		s = "," + pad3(v%1000) + s
		v /= 1000
	}
	s = digits(v) + s
	if neg {
		return "-" + s
	}
	return s
}

func pad3(v int64) string {
	d := digits(v)
	for len(d) < 3 {
		d = "0" + d
	}
	return d
}

func digits(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
