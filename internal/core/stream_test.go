package core

import (
	"math"
	"testing"
)

// TestRunStreamedMatchesRun is the pipeline-level contract: the
// streamed pass serves the exact request sequence of the materializing
// pass (equal seeds), so exact quantities agree exactly and sketched
// ones stay inside their documented bounds.
func TestRunStreamedMatchesRun(t *testing.T) {
	cfg, err := DefaultConfig(300, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Server.SpanningPerMillion = 0

	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunStreamed(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	if streamed.Sessions != batch.Sessions {
		t.Errorf("sessions: %d vs %d", streamed.Sessions, batch.Sessions)
	}
	if streamed.Served.PeakConcurrency != batch.Peak {
		t.Errorf("peak: %d vs %d", streamed.Served.PeakConcurrency, batch.Peak)
	}
	if streamed.Served.Transfers != batch.Char.Basic.Transfers {
		t.Errorf("transfers: %d vs %d", streamed.Served.Transfers, batch.Char.Basic.Transfers)
	}
	if streamed.Served.TotalBytes != batch.Char.Basic.TotalBytes {
		t.Errorf("bytes: %d vs %d", streamed.Served.TotalBytes, batch.Char.Basic.TotalBytes)
	}
	if streamed.Online.Objects != batch.Char.Basic.Objects {
		t.Errorf("objects: %d vs %d", streamed.Online.Objects, batch.Char.Basic.Objects)
	}
	if streamed.Online.ASes != batch.Char.Basic.ASes {
		t.Errorf("ASes: %d vs %d", streamed.Online.ASes, batch.Char.Basic.ASes)
	}
	users := float64(batch.Char.Basic.Users)
	if rel := math.Abs(streamed.Online.Clients-users) / users; rel > 0.03 {
		t.Errorf("clients: %v vs %v (rel %.4f)", streamed.Online.Clients, users, rel)
	}
	ips := float64(batch.Char.Basic.IPs)
	if rel := math.Abs(streamed.Online.IPs-ips) / ips; rel > 0.03 {
		t.Errorf("IPs: %v vs %v (rel %.4f)", streamed.Online.IPs, ips, rel)
	}
	if streamed.Online.PeakConcurrency != batch.Peak {
		t.Errorf("online peak: %d vs %d", streamed.Online.PeakConcurrency, batch.Peak)
	}
}

// TestRunStreamedShardInvariant: the report must not depend on the
// shard count.
func TestRunStreamedShardInvariant(t *testing.T) {
	cfg, err := DefaultConfig(400, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunStreamed(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStreamed(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != b.Served {
		t.Errorf("served: %+v vs %+v", a.Served, b.Served)
	}
	if a.Sessions != b.Sessions {
		t.Errorf("sessions: %d vs %d", a.Sessions, b.Sessions)
	}
	if a.Online.Clients != b.Online.Clients || a.Online.LengthP90 != b.Online.LengthP90 {
		t.Error("online snapshot depends on shard count")
	}
}

func TestRunStreamedRejectsBadConfig(t *testing.T) {
	cfg, err := DefaultConfig(300, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SessionTimeout = 0
	if _, err := RunStreamed(cfg, 2); err == nil {
		t.Error("bad config accepted")
	}
	cfg, _ = DefaultConfig(300, 2, 1)
	if _, err := RunStreamed(cfg, 0); err == nil {
		t.Error("0 shards accepted")
	}
}
