// Package liveserver is a working wire implementation of the live
// streaming service the paper measured: a TCP server that streams live
// object data to media clients over a minimal MMS-like control protocol,
// plus a client and a workload replayer.
//
// The discrete-event simulator (package simulate) is how paper-scale
// traces are produced; this package is the complement for small-scale
// end-to-end validation — real sockets, real concurrency, real
// backpressure — so the logging, sessionization and characterization
// pipeline can be exercised against genuinely concurrent network I/O.
// Workloads replay in compressed time (e.g. 1 trace hour per wall
// second).
//
// # Wire protocol
//
// The control channel is line-oriented text; stream data is length-
// prefixed binary. All lines end in '\n'.
//
//	C: HELLO <player-id>
//	S: OK HELLO
//	C: START <uri> [<session> <seq>]
//	S: OK START <uri>
//	S: DATA <n>        (followed by n raw bytes; repeated)
//	C: STOP            (any time after START)
//	S: END <bytes> <frames>
//	C: QUIT
//	S: OK BYE
//
// The optional session/seq tag on START identifies the workload event
// the transfer realizes (the generator's global session index and the
// transfer's position within it). A tagged transfer is logged with the
// tag, which is what makes per-node fleet logs mergeable into one
// deterministic realization (wmslog.MergeFiles) and lets a replay
// harness account for individual lost events under failover. Untagged
// STARTs behave exactly as before.
//
// Any protocol violation produces "ERR <reason>" and closes the
// connection.
package liveserver

import (
	"bufio"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Protocol limits.
const (
	// MaxLineBytes bounds a control line.
	MaxLineBytes = 512
	// MaxFrameBytes bounds one DATA frame.
	MaxFrameBytes = 64 * 1024
)

// ErrProtocol reports a wire-protocol violation.
var ErrProtocol = errors.New("liveserver: protocol error")

// command is one parsed control line.
type command struct {
	verb    string // HELLO, START, STOP, QUIT
	arg     string // player ID or URI, if any
	session int64  // workload session tag on START, UntaggedSession if absent
	seq     int    // transfer index within the session
}

// UntaggedSession marks a transfer whose START carried no session/seq
// tag.
const UntaggedSession int64 = -1

// parseCommand parses one control line from a client.
func parseCommand(line string) (command, error) {
	line = strings.TrimRight(line, "\r\n")
	if len(line) == 0 {
		return command{}, fmt.Errorf("%w: empty command", ErrProtocol)
	}
	verb, arg, _ := strings.Cut(line, " ")
	switch verb {
	case "HELLO":
		if arg == "" || strings.ContainsAny(arg, " \t") {
			return command{}, fmt.Errorf("%w: %s needs one argument", ErrProtocol, verb)
		}
		return command{verb: verb, arg: arg, session: UntaggedSession}, nil
	case "START":
		fields := strings.Fields(arg)
		switch len(fields) {
		case 1:
			return command{verb: verb, arg: fields[0], session: UntaggedSession}, nil
		case 3:
			session, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || session < 0 {
				return command{}, fmt.Errorf("%w: bad session tag %q", ErrProtocol, fields[1])
			}
			seq, err := strconv.Atoi(fields[2])
			if err != nil || seq < 0 {
				return command{}, fmt.Errorf("%w: bad seq tag %q", ErrProtocol, fields[2])
			}
			return command{verb: verb, arg: fields[0], session: session, seq: seq}, nil
		default:
			return command{}, fmt.Errorf("%w: START wants <uri> [<session> <seq>]", ErrProtocol)
		}
	case "STOP", "QUIT":
		if arg != "" {
			return command{}, fmt.Errorf("%w: %s takes no argument", ErrProtocol, verb)
		}
		return command{verb: verb, session: UntaggedSession}, nil
	default:
		return command{}, fmt.Errorf("%w: unknown verb %q", ErrProtocol, verb)
	}
}

// readLine reads one bounded control line.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > MaxLineBytes {
		return "", fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, MaxLineBytes)
	}
	return line, nil
}

// parseDataHeader parses a "DATA <n>" server line.
func parseDataHeader(line string) (int, error) {
	line = strings.TrimRight(line, "\r\n")
	rest, ok := strings.CutPrefix(line, "DATA ")
	if !ok {
		return 0, fmt.Errorf("%w: expected DATA header, got %q", ErrProtocol, line)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 || n > MaxFrameBytes {
		return 0, fmt.Errorf("%w: bad DATA length %q", ErrProtocol, rest)
	}
	return n, nil
}

// parseEnd parses an "END <bytes> <frames>" server line.
func parseEnd(line string) (bytes int64, frames int, err error) {
	line = strings.TrimRight(line, "\r\n")
	rest, ok := strings.CutPrefix(line, "END ")
	if !ok {
		return 0, 0, fmt.Errorf("%w: expected END, got %q", ErrProtocol, line)
	}
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("%w: bad END %q", ErrProtocol, line)
	}
	bytes, err = strconv.ParseInt(parts[0], 10, 64)
	if err != nil || bytes < 0 {
		return 0, 0, fmt.Errorf("%w: bad END bytes %q", ErrProtocol, parts[0])
	}
	frames, err = strconv.Atoi(parts[1])
	if err != nil || frames < 0 {
		return 0, 0, fmt.Errorf("%w: bad END frames %q", ErrProtocol, parts[1])
	}
	return bytes, frames, nil
}
