package liveserver

import (
	"net"
	"strings"
	"testing"
	"time"
)

// readAll reads until deadline or EOF and returns everything received.
func readAvailable(t *testing.T, conn net.Conn, wait time.Duration) string {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(wait))
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			return string(out)
		}
	}
}

func TestMalformedHelloGetsERR(t *testing.T) {
	s := startServer(t, fastConfig())
	for _, line := range []string{"HELLO\n", "HELLO two words\n", "BOGUS x\n", "\n"} {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
		got := readAvailable(t, conn, 2*time.Second)
		if !strings.HasPrefix(got, "ERR ") {
			t.Errorf("line %q: server said %q, want ERR with a reason", line, got)
		}
		conn.Close()
	}
	// The server survives garbage and still serves real clients.
	c, err := Dial(s.Addr(), "p-after")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Watch("/live/feed1", 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedControlLineRejected(t *testing.T) {
	s := startServer(t, fastConfig())
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	long := "HELLO " + strings.Repeat("x", MaxLineBytes) + "\n"
	if _, err := conn.Write([]byte(long)); err != nil {
		t.Fatal(err)
	}
	got := readAvailable(t, conn, 2*time.Second)
	if got != "" && !strings.HasPrefix(got, "ERR ") {
		t.Errorf("server said %q, want ERR or close", got)
	}
}

func TestMidStreamDisconnectReleasesTransfer(t *testing.T) {
	cfg := fastConfig()
	s := startServer(t, cfg)
	c, err := Dial(s.Addr(), "p1")
	if err != nil {
		t.Fatal(err)
	}
	// START then slam the connection mid-transfer.
	if _, err := c.conn.Write([]byte("START /live/feed1\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let a few frames flow
	c.conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.ActiveTransfers() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.ActiveTransfers(); got != 0 {
		t.Fatalf("active transfers = %d after disconnect", got)
	}
	if got := s.ServedTransfers(); got != 0 {
		t.Errorf("aborted transfer was counted as served (%d)", got)
	}
}

func TestSlowReaderDisconnectedByWriteDeadline(t *testing.T) {
	cfg := fastConfig()
	cfg.FrameBytes = MaxFrameBytes // fill socket buffers fast
	cfg.FrameInterval = time.Millisecond
	cfg.WriteTimeout = 200 * time.Millisecond
	s := startServer(t, cfg)

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("HELLO slow\nSTART /live/feed1\n")); err != nil {
		t.Fatal(err)
	}
	// Read nothing: the server's sends eventually fill the kernel
	// buffers and block, and the write deadline must cut the connection
	// loose instead of pinning the handler.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		tracked := len(s.conns)
		s.mu.Unlock()
		if s.ActiveTransfers() == 0 && tracked == 0 {
			if s.ServedTransfers() != 0 {
				t.Fatal("aborted transfer counted as served")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("slow reader still being served after 10s (active=%d)", s.ActiveTransfers())
}

func TestIdleConnectionTimedOut(t *testing.T) {
	cfg := fastConfig()
	cfg.IdleTimeout = 100 * time.Millisecond
	s := startServer(t, cfg)

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The server must drop the half-open connection and
	// free its slot.
	start := time.Now()
	got := readAvailable(t, conn, 5*time.Second)
	if got != "" {
		t.Errorf("idle connection received %q", got)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("idle connection held for %v, want ~100ms close", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("idle connection still tracked")
}

func TestIdleTimeoutDoesNotCutActiveTransfer(t *testing.T) {
	cfg := fastConfig()
	cfg.IdleTimeout = 80 * time.Millisecond
	s := startServer(t, cfg)
	c, err := Dial(s.Addr(), "p1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Watch far longer than the idle timeout: the client is silent the
	// whole time, which is legitimate mid-transfer.
	res, err := c.Watch("/live/feed1", 400*time.Millisecond)
	if err != nil {
		t.Fatalf("transfer cut by idle timeout: %v", err)
	}
	if res.Frames == 0 {
		t.Error("no frames received")
	}
	if res.StartLatency <= 0 {
		t.Error("start latency not measured")
	}
}

func TestBusyRefusalIsExplicitAndFast(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxConns = 1
	s := startServer(t, cfg)

	c1, err := Dial(s.Addr(), "p1")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	begin := time.Now()
	_, err = Dial(s.Addr(), "p2")
	if err == nil {
		t.Fatal("second connection accepted beyond MaxConns=1")
	}
	if !strings.Contains(err.Error(), "busy") {
		t.Errorf("refusal error %q does not mention busy", err)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Errorf("refusal took %v, want immediate", elapsed)
	}
	if s.RefusedConns() != 1 {
		t.Errorf("refused = %d", s.RefusedConns())
	}
	if s.AcceptedConns() != 1 {
		t.Errorf("accepted = %d", s.AcceptedConns())
	}
}

func TestRecordEntryRoundsAndValidates(t *testing.T) {
	now := time.Now()
	r := TransferRecord{
		PlayerID: "player-1",
		RemoteIP: "127.0.0.1",
		URI:      "/live/feed1",
		Start:    now,
		End:      now.Add(1700 * time.Millisecond),
		Bytes:    4096,
		Frames:   3,
	}
	e := RecordEntry(r)
	if err := e.Validate(); err != nil {
		t.Fatalf("entry invalid: %v", err)
	}
	if e.Duration != 2 {
		t.Errorf("duration = %d, want 2 (1.7s rounded)", e.Duration)
	}
	if e.AvgBandwidth == 0 {
		t.Error("bandwidth not computed")
	}
}
