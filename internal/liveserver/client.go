package liveserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is one media player connected to the streaming server.
type Client struct {
	conn   net.Conn
	reader *bufio.Reader
	player string
}

// TransferResult summarizes one completed transfer from the client side.
type TransferResult struct {
	URI      string
	Duration time.Duration
	Bytes    int64
	Frames   int
	// StartLatency is the time from sending START to receiving the
	// server's OK START — the request-grant latency a replay harness
	// tracks as its primary responsiveness signal.
	StartLatency time.Duration
}

// Dial connects and performs the HELLO handshake.
func Dial(addr, playerID string) (*Client, error) {
	if playerID == "" || strings.ContainsAny(playerID, " \t\n") {
		return nil, fmt.Errorf("%w: bad player ID %q", ErrProtocol, playerID)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("liveserver: dial: %w", err)
	}
	c := &Client{conn: conn, reader: bufio.NewReaderSize(conn, 64*1024), player: playerID}
	if err := c.send("HELLO " + playerID); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.expect("OK HELLO"); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Watch runs one transfer: START the object, receive frames for the given
// wall-clock duration, then STOP and drain to END. The STOP is sent by a
// timer goroutine (net.Conn writes are safe for concurrent use), so the
// read loop never has to poll.
func (c *Client) Watch(uri string, duration time.Duration) (TransferResult, error) {
	return c.WatchTagged(uri, UntaggedSession, 0, duration)
}

// WatchTagged is Watch with a workload tag: the server logs the
// transfer with the (session, seq) identity of the workload event it
// realizes. Pass UntaggedSession to omit the tag.
func (c *Client) WatchTagged(uri string, session int64, seq int, duration time.Duration) (TransferResult, error) {
	res := TransferResult{URI: uri}
	start := "START " + uri
	if session >= 0 {
		start += " " + strconv.FormatInt(session, 10) + " " + strconv.Itoa(seq)
	}
	requested := time.Now()
	if err := c.send(start); err != nil {
		return res, err
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := readLine(c.reader)
	if err != nil {
		return res, err
	}
	if !strings.HasPrefix(line, "OK START ") {
		return res, fmt.Errorf("%w: server said %q", ErrProtocol, strings.TrimSpace(line))
	}
	res.StartLatency = time.Since(requested)

	begin := time.Now()
	stop := time.AfterFunc(duration, func() { _ = c.send("STOP") })
	defer stop.Stop()

	// The whole transfer must finish within the requested duration plus a
	// generous drain allowance.
	c.conn.SetReadDeadline(time.Now().Add(duration + 10*time.Second))
	defer c.conn.SetReadDeadline(time.Time{})

	buf := make([]byte, MaxFrameBytes)
	for {
		line, err := readLine(c.reader)
		if err != nil {
			return res, fmt.Errorf("liveserver: read frame header: %w", err)
		}
		switch {
		case strings.HasPrefix(line, "DATA "):
			n, err := parseDataHeader(line)
			if err != nil {
				return res, err
			}
			if _, err := io.ReadFull(c.reader, buf[:n]); err != nil {
				return res, fmt.Errorf("liveserver: frame payload: %w", err)
			}
			res.Bytes += int64(n)
			res.Frames++
		case strings.HasPrefix(line, "END "):
			bytes, frames, err := parseEnd(line)
			if err != nil {
				return res, err
			}
			if bytes != res.Bytes || frames != res.Frames {
				return res, fmt.Errorf("%w: server counted %d bytes / %d frames, client saw %d / %d",
					ErrProtocol, bytes, frames, res.Bytes, res.Frames)
			}
			res.Duration = time.Since(begin)
			return res, nil
		case strings.HasPrefix(line, "ERR "):
			return res, fmt.Errorf("%w: server error: %s", ErrProtocol, strings.TrimSpace(line))
		default:
			return res, fmt.Errorf("%w: unexpected line %q", ErrProtocol, strings.TrimSpace(line))
		}
	}
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	_ = c.send("QUIT")
	c.conn.SetReadDeadline(time.Now().Add(time.Second))
	_, _ = readLine(c.reader) // best-effort OK BYE
	return c.conn.Close()
}

func (c *Client) send(line string) error {
	c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.conn.Write([]byte(line + "\n")); err != nil {
		return fmt.Errorf("liveserver: send %q: %w", line, err)
	}
	return nil
}

func (c *Client) expect(want string) error {
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := readLine(c.reader)
	if err != nil {
		return err
	}
	if strings.TrimSpace(line) != want {
		return fmt.Errorf("%w: expected %q, got %q", ErrProtocol, want, strings.TrimSpace(line))
	}
	return nil
}
