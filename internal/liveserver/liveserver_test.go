package liveserver

import (
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gismo"
	"repro/internal/wmslog"
)

func fastConfig() ServerConfig {
	cfg := DefaultServerConfig()
	cfg.FrameBytes = 256
	cfg.FrameInterval = 5 * time.Millisecond
	return cfg
}

func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestParseCommand(t *testing.T) {
	cases := []struct {
		line    string
		verb    string
		arg     string
		wantErr bool
	}{
		{"HELLO player-1\n", "HELLO", "player-1", false},
		{"START /live/feed1\n", "START", "/live/feed1", false},
		{"STOP\n", "STOP", "", false},
		{"QUIT\n", "QUIT", "", false},
		{"\n", "", "", true},
		{"HELLO\n", "", "", true},
		{"HELLO two words\n", "", "", true},
		{"STOP now\n", "", "", true},
		{"BOGUS\n", "", "", true},
	}
	for _, c := range cases {
		cmd, err := parseCommand(c.line)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseCommand(%q): want error", c.line)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCommand(%q): %v", c.line, err)
			continue
		}
		if cmd.verb != c.verb || cmd.arg != c.arg {
			t.Errorf("parseCommand(%q) = %+v", c.line, cmd)
		}
	}
}

func TestParseDataHeaderAndEnd(t *testing.T) {
	if n, err := parseDataHeader("DATA 1375\n"); err != nil || n != 1375 {
		t.Errorf("DATA: n=%d err=%v", n, err)
	}
	for _, bad := range []string{"DATA x\n", "DATA -1\n", "DATA 9999999\n", "NOPE 5\n"} {
		if _, err := parseDataHeader(bad); err == nil {
			t.Errorf("parseDataHeader(%q): want error", bad)
		}
	}
	if b, f, err := parseEnd("END 2750 2\n"); err != nil || b != 2750 || f != 2 {
		t.Errorf("END: b=%d f=%d err=%v", b, f, err)
	}
	for _, bad := range []string{"END\n", "END 1\n", "END x y\n", "END 1 y\n", "END -1 2\n"} {
		if _, _, err := parseEnd(bad); err == nil {
			t.Errorf("parseEnd(%q): want error", bad)
		}
	}
}

func TestServeRejectsBadConfig(t *testing.T) {
	bad := []ServerConfig{
		{FrameBytes: 0, FrameInterval: time.Millisecond, MaxConns: 1, Objects: []string{"/x"}},
		{FrameBytes: MaxFrameBytes + 1, FrameInterval: time.Millisecond, MaxConns: 1, Objects: []string{"/x"}},
		{FrameBytes: 100, FrameInterval: 0, MaxConns: 1, Objects: []string{"/x"}},
		{FrameBytes: 100, FrameInterval: time.Millisecond, MaxConns: 0, Objects: []string{"/x"}},
		{FrameBytes: 100, FrameInterval: time.Millisecond, MaxConns: 1, Objects: nil},
	}
	for i, cfg := range bad {
		if _, err := Serve("127.0.0.1:0", cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSingleTransfer(t *testing.T) {
	var mu sync.Mutex
	var records []TransferRecord
	cfg := fastConfig()
	cfg.Sink = func(r TransferRecord) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	}
	s := startServer(t, cfg)

	c, err := Dial(s.Addr(), "player-test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Watch("/live/feed1", 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames < 5 {
		t.Errorf("frames = %d, want >= 5 over 100 ms at 5 ms pacing", res.Frames)
	}
	if res.Bytes != int64(res.Frames)*int64(cfg.FrameBytes) {
		t.Errorf("bytes = %d for %d frames of %d", res.Bytes, res.Frames, cfg.FrameBytes)
	}
	if s.ServedTransfers() != 1 {
		t.Errorf("served = %d", s.ServedTransfers())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(records) != 1 {
		t.Fatalf("records = %d", len(records))
	}
	r := records[0]
	if r.PlayerID != "player-test" || r.URI != "/live/feed1" || r.Bytes != res.Bytes {
		t.Errorf("record = %+v", r)
	}
}

func TestMultipleTransfersOneConnection(t *testing.T) {
	s := startServer(t, fastConfig())
	c, err := Dial(s.Addr(), "p1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		uri := "/live/feed1"
		if i%2 == 1 {
			uri = "/live/feed2"
		}
		if _, err := c.Watch(uri, 30*time.Millisecond); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	if s.ServedTransfers() != 3 {
		t.Errorf("served = %d", s.ServedTransfers())
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t, fastConfig())
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr(), "player-"+string(rune('a'+i)))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Watch("/live/feed1", 60*time.Millisecond); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.ServedTransfers() != n {
		t.Errorf("served = %d, want %d", s.ServedTransfers(), n)
	}
}

func TestUnknownObjectRejected(t *testing.T) {
	s := startServer(t, fastConfig())
	c, err := Dial(s.Addr(), "p1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Watch("/live/nope", 20*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "unknown object") {
		t.Fatalf("want unknown-object error, got %v", err)
	}
}

func TestStartWithoutHelloRejected(t *testing.T) {
	s := startServer(t, fastConfig())
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("START /live/feed1\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf[:n]), "ERR") {
		t.Errorf("server said %q, want ERR", buf[:n])
	}
}

func TestMaxConnsRefusesExtras(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxConns = 2
	s := startServer(t, cfg)

	c1, err := Dial(s.Addr(), "p1")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(s.Addr(), "p2")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// The third connection is closed by the server before HELLO gets a
	// reply.
	if _, err := Dial(s.Addr(), "p3"); err == nil {
		t.Fatal("third connection should be refused at MaxConns=2")
	}
	if s.RefusedConns() == 0 {
		t.Error("refused counter not incremented")
	}
}

func TestServerCloseDrainsConnections(t *testing.T) {
	s := startServer(t, fastConfig())
	c, err := Dial(s.Addr(), "p1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain")
	}
}

func TestDialRejectsBadPlayerID(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ""); err == nil {
		t.Error("empty player ID accepted")
	}
	if _, err := Dial("127.0.0.1:1", "two words"); err == nil {
		t.Error("spacey player ID accepted")
	}
}

func TestReplayWorkload(t *testing.T) {
	var mu sync.Mutex
	var records []TransferRecord
	cfg := fastConfig()
	cfg.MaxConns = 128
	cfg.Sink = func(r TransferRecord) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	}
	s := startServer(t, cfg)

	m, err := gismo.Scaled(2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gismo.Generate(m, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	rcfg := ReplayConfig{
		Compression:  20000, // ~2 trace days in ~9 wall seconds
		MaxTransfers: 40,
		Concurrency:  16,
		MinWatch:     20 * time.Millisecond,
	}
	replayStart := time.Now()
	res, err := Replay(s.Addr(), w, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < res.Attempted*8/10 {
		t.Fatalf("completed %d / attempted %d (failed %d)", res.Completed, res.Attempted, res.Failed)
	}
	if res.Bytes == 0 {
		t.Error("no bytes transferred")
	}

	mu.Lock()
	recs := append([]TransferRecord(nil), records...)
	mu.Unlock()
	if len(recs) != res.Completed {
		t.Errorf("server records %d, client completions %d", len(recs), res.Completed)
	}

	// Records decompress into valid log entries that survive the trace
	// pipeline.
	entries, err := EntriesFromRecords(recs, w, wmslog.TraceEpoch, replayStart, rcfg.Compression, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid entry from replay: %v (%+v)", err, e)
		}
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Timestamp.Before(entries[i-1].Timestamp) {
			t.Fatal("entries not sorted")
		}
	}
}

func TestReplayValidation(t *testing.T) {
	m, err := gismo.Scaled(2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gismo.Generate(m, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultReplayConfig()
	bad.Compression = 0
	if _, err := Replay("127.0.0.1:1", w, bad); err == nil {
		t.Error("zero compression accepted")
	}
	if _, err := Replay("127.0.0.1:1", nil, DefaultReplayConfig()); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := EntriesFromRecords(nil, w, wmslog.TraceEpoch, time.Now(), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero compression in EntriesFromRecords accepted")
	}
	if _, err := EntriesFromRecords([]TransferRecord{{PlayerID: "ghost"}}, w, wmslog.TraceEpoch, time.Now(), 100, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown player accepted")
	}
}
