package liveserver

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWatchTaggedLogsSessionRef: a tagged transfer's (session, seq)
// must round-trip through the wire, the sink record, and the rendered
// log entry — the substrate of the fleet's merged-log contract.
func TestWatchTaggedLogsSessionRef(t *testing.T) {
	var mu sync.Mutex
	var records []TransferRecord
	cfg := DefaultServerConfig()
	cfg.FrameBytes = 128
	cfg.FrameInterval = 5 * time.Millisecond
	cfg.Sink = func(r TransferRecord) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	}
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(s.Addr(), "tagged-player")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.WatchTagged("/live/feed1", 4242, 7, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch("/live/feed2", 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(records) != 2 {
		t.Fatalf("got %d records", len(records))
	}
	if records[0].Session != 4242 || records[0].Seq != 7 {
		t.Fatalf("tagged record carries %d.%d", records[0].Session, records[0].Seq)
	}
	if records[1].Session != UntaggedSession {
		t.Fatalf("untagged record carries session %d", records[1].Session)
	}

	tagged := RecordEntry(records[0])
	session, seq, ok := tagged.SessionSeq()
	if !ok || session != 4242 || seq != 7 {
		t.Fatalf("log entry tag %d.%d ok=%v", session, seq, ok)
	}
	untagged := RecordEntry(records[1])
	if _, _, ok := untagged.SessionSeq(); ok {
		t.Fatal("untagged entry grew a session tag")
	}
	if untagged.Referer != "" {
		t.Fatalf("untagged referer %q", untagged.Referer)
	}
}

// TestParseCommandTaggedStart pins the extended START grammar.
func TestParseCommandTaggedStart(t *testing.T) {
	cmd, err := parseCommand("START /live/feed1 12 3\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.arg != "/live/feed1" || cmd.session != 12 || cmd.seq != 3 {
		t.Fatalf("parsed %+v", cmd)
	}
	cmd, err = parseCommand("START /live/feed1\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.session != UntaggedSession {
		t.Fatalf("untagged START parsed session %d", cmd.session)
	}
	for _, bad := range []string{
		"START /live/feed1 12\n",
		"START /live/feed1 12 3 4\n",
		"START /live/feed1 -1 3\n",
		"START /live/feed1 x 3\n",
		"START /live/feed1 12 -3\n",
		"START\n",
	} {
		if _, err := parseCommand(bad); err == nil {
			t.Errorf("parseCommand(%q) accepted", strings.TrimSpace(bad))
		}
	}
}
