package liveserver

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/gismo"
	"repro/internal/wmslog"
)

// ReplayConfig parameterizes a compressed-time workload replay.
type ReplayConfig struct {
	// Compression is trace seconds per wall second (e.g. 600 replays one
	// trace hour in six wall seconds).
	Compression float64
	// MaxTransfers caps the number of requests replayed (0 = all).
	MaxTransfers int
	// Concurrency bounds simultaneous in-flight transfers.
	Concurrency int
	// MinWatch is the minimum wall-clock watch time per transfer, so
	// heavily compressed transfers still exchange at least one frame.
	MinWatch time.Duration
}

// DefaultReplayConfig compresses 10 trace minutes into one wall second.
func DefaultReplayConfig() ReplayConfig {
	return ReplayConfig{
		Compression:  600,
		MaxTransfers: 200,
		Concurrency:  32,
		MinWatch:     120 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c *ReplayConfig) Validate() error {
	if c.Compression <= 0 {
		return fmt.Errorf("%w: compression %v", ErrProtocol, c.Compression)
	}
	if c.MaxTransfers < 0 {
		return fmt.Errorf("%w: max transfers %d", ErrProtocol, c.MaxTransfers)
	}
	if c.Concurrency < 1 {
		return fmt.Errorf("%w: concurrency %d", ErrProtocol, c.Concurrency)
	}
	if c.MinWatch <= 0 {
		return fmt.Errorf("%w: min watch %v", ErrProtocol, c.MinWatch)
	}
	return nil
}

// ReplayResult summarizes a replay.
type ReplayResult struct {
	Attempted int
	Completed int
	Failed    int
	Bytes     int64
	// Wall is the wall-clock duration of the replay.
	Wall time.Duration
}

// Replay drives the workload's request stream against a live server in
// compressed time: each request becomes a real TCP client that HELLOs as
// its player, STARTs its object, watches for the compressed duration,
// and STOPs. Failures (connection refused at capacity, protocol errors)
// are counted, not fatal — mirroring the lost-viewer semantics of live
// content.
func Replay(addr string, w *gismo.Workload, cfg ReplayConfig) (*ReplayResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil || len(w.Requests) == 0 {
		return nil, fmt.Errorf("%w: empty workload", ErrProtocol)
	}
	requests := w.Requests
	if cfg.MaxTransfers > 0 && len(requests) > cfg.MaxTransfers {
		requests = requests[:cfg.MaxTransfers]
	}

	res := &ReplayResult{Attempted: len(requests)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	begin := time.Now()
	origin := requests[0].Start

	for _, req := range requests {
		wallAt := time.Duration(float64(req.Start-origin) / cfg.Compression * float64(time.Second))
		wallDur := time.Duration(float64(req.Duration) / cfg.Compression * float64(time.Second))
		if wallDur < cfg.MinWatch {
			wallDur = cfg.MinWatch
		}
		wg.Add(1)
		go func(req gismo.Request, wallAt, wallDur time.Duration) {
			defer wg.Done()
			if sleep := time.Until(begin.Add(wallAt)); sleep > 0 {
				time.Sleep(sleep)
			}
			sem <- struct{}{}
			defer func() { <-sem }()

			player := w.Population.Clients[req.Client].PlayerID
			bytes, err := replayOne(addr, player, gismoURI(req.Object), wallDur)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				res.Failed++
				return
			}
			res.Completed++
			res.Bytes += bytes
		}(req, wallAt, wallDur)
	}
	wg.Wait()
	res.Wall = time.Since(begin)
	return res, nil
}

func replayOne(addr, player, uri string, watch time.Duration) (int64, error) {
	c, err := Dial(addr, player)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	tr, err := c.Watch(uri, watch)
	if err != nil {
		return 0, err
	}
	return tr.Bytes, nil
}

// gismoURI mirrors simulate.ObjectURI without importing the simulator.
func gismoURI(object int) string {
	return fmt.Sprintf("/live/feed%d", object+1)
}

// EntriesFromRecords converts server transfer records captured during a
// replay into Windows-Media-Server-style log entries with trace-time
// timestamps: wall time is decompressed back into trace seconds from the
// replay origin.
func EntriesFromRecords(records []TransferRecord, w *gismo.Workload, epoch, replayStart time.Time, compression float64, rng *rand.Rand) ([]*wmslog.Entry, error) {
	if compression <= 0 {
		return nil, fmt.Errorf("%w: compression %v", ErrProtocol, compression)
	}
	byPlayer := make(map[string]*gismo.Client, w.Population.Size())
	for i := range w.Population.Clients {
		c := &w.Population.Clients[i]
		byPlayer[c.PlayerID] = c
	}
	entries := make([]*wmslog.Entry, 0, len(records))
	for _, r := range records {
		client, ok := byPlayer[r.PlayerID]
		if !ok {
			return nil, fmt.Errorf("%w: unknown player %q in record", ErrProtocol, r.PlayerID)
		}
		traceEnd := int64(r.End.Sub(replayStart).Seconds() * compression)
		traceDur := int64(r.End.Sub(r.Start).Seconds() * compression)
		if traceDur < 1 {
			traceDur = 1
		}
		if traceEnd < traceDur {
			traceEnd = traceDur
		}
		bw := int64(0)
		if traceDur > 0 {
			bw = r.Bytes * 8 * int64(compression) / traceDur
		}
		entries = append(entries, &wmslog.Entry{
			Timestamp:    epoch.Add(time.Duration(traceEnd) * time.Second),
			ClientIP:     client.Placement.IP,
			PlayerID:     r.PlayerID,
			ClientOS:     client.OS,
			ClientCPU:    client.CPU,
			URIStem:      r.URI,
			Duration:     traceDur,
			Bytes:        r.Bytes,
			AvgBandwidth: bw,
			PacketsLost:  0,
			ServerCPU:    rng.Float64(),
			Referer:      "http://show.example.br/aovivo",
			Status:       200,
			ASNumber:     client.Placement.ASIndex + 1,
			Country:      client.Placement.Country,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Timestamp.Before(entries[j].Timestamp)
	})
	return entries, nil
}
