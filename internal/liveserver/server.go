package liveserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Preformatted control replies: the fixed lines of the protocol are
// written as shared byte slices, so the reply path performs no
// per-message formatting or allocation. Dynamic replies are appended
// into a per-connection scratch buffer (see conn scratch in handle).
var (
	replyOKHello = []byte("OK HELLO\n")
	replyOKBye   = []byte("OK BYE\n")
	replyErrBusy = []byte("ERR busy\n")
)

// TransferRecord is what the server logs when a transfer ends — the
// material a wmslog.Entry is built from in the replay pipeline.
type TransferRecord struct {
	PlayerID string
	RemoteIP string
	URI      string
	Start    time.Time
	End      time.Time
	Bytes    int64
	Frames   int
	// Session and Seq echo the workload tag the client attached to
	// START (Session is UntaggedSession when the START carried none).
	Session int64
	Seq     int
}

// ServerConfig parameterizes the streaming server.
type ServerConfig struct {
	// FrameBytes is the payload size of one DATA frame.
	FrameBytes int
	// FrameInterval is the wall-clock pacing between frames; together
	// with FrameBytes it sets the stream rate.
	FrameInterval time.Duration
	// MaxConns bounds concurrently served connections; further accepts
	// are answered with "ERR busy" and closed immediately (the paper's
	// point: live viewers cannot be deferred, so this is capacity
	// exhaustion made visible, never a hang).
	MaxConns int
	// Objects lists the valid live-object URIs.
	Objects []string
	// Sink receives a record for every completed transfer. May be nil.
	Sink func(TransferRecord)

	// WriteTimeout bounds every control and frame write. A client that
	// stops reading (a stalled player, a dead NAT entry) trips the
	// deadline and is disconnected instead of pinning a handler and its
	// connection slot forever. Zero disables the deadline.
	WriteTimeout time.Duration
	// IdleTimeout bounds the silence the server tolerates while waiting
	// for the next control command outside a transfer — half-open
	// connections release their slot instead of holding capacity. It
	// does not apply mid-transfer, where the client is legitimately
	// silent until STOP. Zero disables the deadline.
	IdleTimeout time.Duration
}

// DefaultServerConfig streams ~110 kbit/s in 1,375-byte frames.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		FrameBytes:    1375,
		FrameInterval: 100 * time.Millisecond,
		MaxConns:      256,
		Objects:       []string{"/live/feed1", "/live/feed2"},
		WriteTimeout:  10 * time.Second,
		IdleTimeout:   60 * time.Second,
	}
}

// Server is the live streaming media server.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	active   atomic.Int64 // concurrently streaming transfers
	served   atomic.Int64 // completed transfers
	refused  atomic.Int64 // connections refused at MaxConns
	accepted atomic.Int64 // connections admitted past MaxConns gating

	payload    []byte // shared frame payload
	dataHeader []byte // preformatted "DATA <n>\n" for the fixed frame size
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.FrameBytes <= 0 || cfg.FrameBytes > MaxFrameBytes {
		return nil, fmt.Errorf("%w: frame bytes %d", ErrProtocol, cfg.FrameBytes)
	}
	if cfg.FrameInterval <= 0 {
		return nil, fmt.Errorf("%w: frame interval %v", ErrProtocol, cfg.FrameInterval)
	}
	if cfg.MaxConns < 1 {
		return nil, fmt.Errorf("%w: max conns %d", ErrProtocol, cfg.MaxConns)
	}
	if cfg.WriteTimeout < 0 || cfg.IdleTimeout < 0 {
		return nil, fmt.Errorf("%w: negative timeout", ErrProtocol)
	}
	if len(cfg.Objects) == 0 {
		return nil, fmt.Errorf("%w: no objects", ErrProtocol)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("liveserver: listen: %w", err)
	}
	s := &Server{
		cfg:        cfg,
		ln:         ln,
		conns:      make(map[net.Conn]struct{}),
		payload:    make([]byte, cfg.FrameBytes),
		dataHeader: []byte(fmt.Sprintf("DATA %d\n", cfg.FrameBytes)),
	}
	for i := range s.payload {
		s.payload[i] = byte('A' + i%26)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ActiveTransfers returns the number of currently streaming transfers.
func (s *Server) ActiveTransfers() int64 { return s.active.Load() }

// ServedTransfers returns the number of completed transfers.
func (s *Server) ServedTransfers() int64 { return s.served.Load() }

// RefusedConns returns the number of connections refused at capacity.
func (s *Server) RefusedConns() int64 { return s.refused.Load() }

// AcceptedConns returns the number of connections admitted (lifetime
// total, not currently open) — with RefusedConns, the accept-loop's full
// accounting, and what lets a replay harness verify connection pooling.
func (s *Server) AcceptedConns() int64 { return s.accepted.Load() }

// OpenConns returns the number of currently open connections (streaming
// or idle between transfers) — the gauge complement of the lifetime
// AcceptedConns counter, for the /metrics surface.
func (s *Server) OpenConns() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.conns))
}

// Close stops accepting, closes every connection, and waits for the
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			s.refused.Add(1)
			// Refuse visibly and asynchronously: the client gets "ERR
			// busy" instead of a silent close, and a peer that has
			// stalled its receive window cannot stall the accept loop.
			go refuse(conn)
			continue
		}
		s.accepted.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// refuse tells a connection beyond MaxConns why it is being dropped.
// Best effort under a short deadline; the connection closes either way.
func refuse(conn net.Conn) {
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	conn.Write(replyErrBusy)
	conn.Close()
}

// armIdle applies the idle control-command deadline, disarmIdle clears
// it for the duration of a transfer (reads blocked in the reader
// goroutine pick up deadline changes immediately).
func (s *Server) armIdle(conn net.Conn) {
	if s.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
}

func (s *Server) disarmIdle(conn net.Conn) {
	if s.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Time{})
	}
}

// armWrite applies the slow-reader write deadline before a write burst.
func (s *Server) armWrite(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

// inbound is one control-channel read: a parsed command or the error
// that ended the read loop.
type inbound struct {
	cmd command
	err error
}

// handle runs one connection's control state machine. Control lines are
// read by a dedicated goroutine and forwarded over a channel so the
// streaming loop can notice STOP between frames; the done channel keeps
// the reader from leaking when handle returns first (the reader could
// otherwise block forever on a channel send after handle stopped
// receiving).
func (s *Server) handle(conn net.Conn) {
	reader := bufio.NewReaderSize(conn, 4096)
	writer := bufio.NewWriterSize(conn, 32*1024)

	in := make(chan inbound)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(in)
		for {
			line, err := readLine(reader)
			var msg inbound
			if err != nil {
				msg = inbound{err: err}
			} else {
				cmd, perr := parseCommand(line)
				msg = inbound{cmd: cmd, err: perr}
			}
			select {
			case in <- msg:
			case <-done:
				return
			}
			if msg.err != nil {
				return
			}
		}
	}()

	// scratch holds every dynamic reply this connection ever formats —
	// ERR reasons, OK START, END — appended with strconv, never fmt,
	// so the control path allocates nothing per message.
	scratch := make([]byte, 0, 128)

	// sendErr renders "ERR <reason><detail>\n" through the appended-
	// bytes path; every error reply, protocol or state-machine, goes
	// through here so error handling is alloc-free and always newline-
	// terminated. detail is usually empty — it exists so callers can
	// attach a client-supplied argument without concatenating strings.
	sendErr := func(reason, detail string) {
		s.armWrite(conn)
		scratch = append(append(append(append(scratch[:0], "ERR "...), reason...), detail...), '\n')
		writer.Write(scratch)
		writer.Flush()
	}

	var playerID string
	remoteIP := remoteIPOf(conn)
	for {
		s.armIdle(conn)
		msg, ok := <-in
		if !ok {
			return
		}
		if msg.err != nil {
			// Malformed command lines get a reason before the close;
			// read errors (EOF, idle timeout) just end the connection.
			if errors.Is(msg.err, ErrProtocol) {
				sendErr(trimErr(msg.err), "")
			}
			return
		}
		switch msg.cmd.verb {
		case "HELLO":
			if playerID != "" {
				sendErr("duplicate HELLO", "")
				return
			}
			playerID = msg.cmd.arg
			s.armWrite(conn)
			writer.Write(replyOKHello)
			if err := writer.Flush(); err != nil {
				return
			}
		case "START":
			if playerID == "" {
				sendErr("HELLO required before START", "")
				return
			}
			if !s.validObject(msg.cmd.arg) {
				sendErr("unknown object ", msg.cmd.arg)
				return
			}
			s.disarmIdle(conn)
			err := s.stream(conn, writer, in, &scratch, playerID, remoteIP, msg.cmd)
			if err != nil {
				return
			}
		case "STOP":
			sendErr("STOP without active transfer", "")
			return
		case "QUIT":
			s.armWrite(conn)
			writer.Write(replyOKBye)
			writer.Flush()
			return
		}
	}
}

// trimErr renders an error for the wire without the package prefix.
func trimErr(err error) string {
	msg := err.Error()
	if cut, ok := strings.CutPrefix(msg, ErrProtocol.Error()+": "); ok {
		return cut
	}
	return msg
}

// stream serves one transfer: frames at the configured pace until the
// client sends STOP (or disconnects). Every write burst runs under the
// configured write deadline, so a reader that has stopped draining its
// socket is disconnected after WriteTimeout instead of blocking the
// handler on a full send buffer; no server lock is ever held across the
// socket I/O (the only shared state touched here is atomic counters).
//
// The data path is allocation-free: the "DATA <n>" header is
// preformatted once per server (the frame size is fixed), the header
// and payload are batched into the bufio writer and flushed as one
// burst per frame, and the END/ERR replies are appended into the
// connection's scratch buffer.
//
//lsm:hotpath
func (s *Server) stream(conn net.Conn, writer *bufio.Writer, in <-chan inbound, scratch *[]byte, playerID, remoteIP string, start0 command) error {
	uri := start0.arg
	s.armWrite(conn)
	*scratch = append(append(append((*scratch)[:0], "OK START "...), uri...), '\n')
	writer.Write(*scratch)
	if err := writer.Flush(); err != nil {
		return err
	}
	s.active.Add(1)
	defer s.active.Add(-1)

	start := time.Now()
	var sent int64
	var frames int
	ticker := time.NewTicker(s.cfg.FrameInterval)
	defer ticker.Stop()
	for {
		select {
		case msg, ok := <-in:
			if !ok || msg.err != nil {
				return io.EOF // client went away (or garbled) mid-stream
			}
			switch msg.cmd.verb {
			case "STOP":
				s.armWrite(conn)
				b := append((*scratch)[:0], "END "...)
				b = strconv.AppendInt(b, sent, 10)
				b = append(b, ' ')
				b = strconv.AppendInt(b, int64(frames), 10)
				*scratch = append(b, '\n')
				writer.Write(*scratch)
				if err := writer.Flush(); err != nil {
					return err
				}
				s.served.Add(1)
				s.emit(playerID, remoteIP, uri, start, sent, frames, start0.session, start0.seq)
				return nil
			case "QUIT":
				return io.EOF
			default:
				s.armWrite(conn)
				*scratch = append(append(append(append((*scratch)[:0], "ERR "...), msg.cmd.verb...), " during transfer"...), '\n')
				writer.Write(*scratch)
				writer.Flush()
				return fmt.Errorf("%w: %s during transfer", ErrProtocol, msg.cmd.verb) //lsm:alloc -- teardown path: runs once per dead connection, never per frame
			}
		case <-ticker.C:
			s.armWrite(conn)
			writer.Write(s.dataHeader)
			if _, err := writer.Write(s.payload); err != nil {
				return err
			}
			if err := writer.Flush(); err != nil {
				return err
			}
			sent += int64(len(s.payload))
			frames++
		}
	}
}

func (s *Server) emit(playerID, remoteIP, uri string, start time.Time, bytes int64, frames int, session int64, seq int) {
	if s.cfg.Sink == nil {
		return
	}
	s.cfg.Sink(TransferRecord{
		PlayerID: playerID,
		RemoteIP: remoteIP,
		URI:      uri,
		Start:    start,
		End:      time.Now(),
		Bytes:    bytes,
		Frames:   frames,
		Session:  session,
		Seq:      seq,
	})
}

func (s *Server) validObject(uri string) bool {
	for _, o := range s.cfg.Objects {
		if o == uri {
			return true
		}
	}
	return false
}

func remoteIPOf(conn net.Conn) string {
	addr := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	if i := strings.LastIndexByte(addr, ':'); i > 0 {
		return addr[:i]
	}
	return addr
}
