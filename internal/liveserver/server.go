package liveserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TransferRecord is what the server logs when a transfer ends — the
// material a wmslog.Entry is built from in the replay pipeline.
type TransferRecord struct {
	PlayerID string
	RemoteIP string
	URI      string
	Start    time.Time
	End      time.Time
	Bytes    int64
	Frames   int
}

// ServerConfig parameterizes the streaming server.
type ServerConfig struct {
	// FrameBytes is the payload size of one DATA frame.
	FrameBytes int
	// FrameInterval is the wall-clock pacing between frames; together
	// with FrameBytes it sets the stream rate.
	FrameInterval time.Duration
	// MaxConns bounds concurrently served connections; further accepts
	// are closed immediately (the paper's point: live viewers cannot be
	// deferred, so this is capacity exhaustion made visible).
	MaxConns int
	// Objects lists the valid live-object URIs.
	Objects []string
	// Sink receives a record for every completed transfer. May be nil.
	Sink func(TransferRecord)
}

// DefaultServerConfig streams ~110 kbit/s in 1,375-byte frames.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		FrameBytes:    1375,
		FrameInterval: 100 * time.Millisecond,
		MaxConns:      256,
		Objects:       []string{"/live/feed1", "/live/feed2"},
	}
}

// Server is the live streaming media server.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
	active  atomic.Int64 // concurrently streaming transfers
	served  atomic.Int64 // completed transfers
	refused atomic.Int64 // connections refused at MaxConns

	payload []byte // shared frame payload
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.FrameBytes <= 0 || cfg.FrameBytes > MaxFrameBytes {
		return nil, fmt.Errorf("%w: frame bytes %d", ErrProtocol, cfg.FrameBytes)
	}
	if cfg.FrameInterval <= 0 {
		return nil, fmt.Errorf("%w: frame interval %v", ErrProtocol, cfg.FrameInterval)
	}
	if cfg.MaxConns < 1 {
		return nil, fmt.Errorf("%w: max conns %d", ErrProtocol, cfg.MaxConns)
	}
	if len(cfg.Objects) == 0 {
		return nil, fmt.Errorf("%w: no objects", ErrProtocol)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("liveserver: listen: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		payload: make([]byte, cfg.FrameBytes),
	}
	for i := range s.payload {
		s.payload[i] = byte('A' + i%26)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ActiveTransfers returns the number of currently streaming transfers.
func (s *Server) ActiveTransfers() int64 { return s.active.Load() }

// ServedTransfers returns the number of completed transfers.
func (s *Server) ServedTransfers() int64 { return s.served.Load() }

// RefusedConns returns the number of connections refused at capacity.
func (s *Server) RefusedConns() int64 { return s.refused.Load() }

// Close stops accepting, closes every connection, and waits for the
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			s.refused.Add(1)
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// handle runs one connection's control state machine. Control commands
// are read by a dedicated goroutine and forwarded over a channel so the
// streaming loop can notice STOP between frames.
func (s *Server) handle(conn net.Conn) {
	reader := bufio.NewReaderSize(conn, 4096)
	writer := bufio.NewWriterSize(conn, 32*1024)

	cmds := make(chan command)
	errs := make(chan error, 1)
	go func() {
		defer close(cmds)
		for {
			line, err := readLine(reader)
			if err != nil {
				errs <- err
				return
			}
			cmd, err := parseCommand(line)
			if err != nil {
				errs <- err
				return
			}
			cmds <- cmd
		}
	}()

	sendErr := func(reason string) {
		fmt.Fprintf(writer, "ERR %s\n", reason)
		writer.Flush()
	}

	var playerID string
	remoteIP := remoteIPOf(conn)
	for {
		cmd, ok := <-cmds
		if !ok {
			return
		}
		switch cmd.verb {
		case "HELLO":
			if playerID != "" {
				sendErr("duplicate HELLO")
				return
			}
			playerID = cmd.arg
			fmt.Fprintf(writer, "OK HELLO\n")
			if err := writer.Flush(); err != nil {
				return
			}
		case "START":
			if playerID == "" {
				sendErr("HELLO required before START")
				return
			}
			if !s.validObject(cmd.arg) {
				sendErr("unknown object " + cmd.arg)
				return
			}
			if err := s.stream(conn, writer, cmds, playerID, remoteIP, cmd.arg); err != nil {
				return
			}
		case "STOP":
			sendErr("STOP without active transfer")
			return
		case "QUIT":
			fmt.Fprintf(writer, "OK BYE\n")
			writer.Flush()
			return
		}
	}
}

// stream serves one transfer: frames at the configured pace until the
// client sends STOP (or disconnects).
func (s *Server) stream(conn net.Conn, writer *bufio.Writer, cmds <-chan command, playerID, remoteIP, uri string) error {
	fmt.Fprintf(writer, "OK START %s\n", uri)
	if err := writer.Flush(); err != nil {
		return err
	}
	s.active.Add(1)
	defer s.active.Add(-1)

	start := time.Now()
	var sent int64
	var frames int
	ticker := time.NewTicker(s.cfg.FrameInterval)
	defer ticker.Stop()
	for {
		select {
		case cmd, ok := <-cmds:
			if !ok {
				return io.EOF // client went away mid-stream
			}
			switch cmd.verb {
			case "STOP":
				fmt.Fprintf(writer, "END %d %d\n", sent, frames)
				if err := writer.Flush(); err != nil {
					return err
				}
				s.served.Add(1)
				s.emit(playerID, remoteIP, uri, start, sent, frames)
				return nil
			case "QUIT":
				return io.EOF
			default:
				fmt.Fprintf(writer, "ERR %s during transfer\n", cmd.verb)
				writer.Flush()
				return fmt.Errorf("%w: %s during transfer", ErrProtocol, cmd.verb)
			}
		case <-ticker.C:
			fmt.Fprintf(writer, "DATA %d\n", len(s.payload))
			if _, err := writer.Write(s.payload); err != nil {
				return err
			}
			if err := writer.Flush(); err != nil {
				return err
			}
			sent += int64(len(s.payload))
			frames++
		}
	}
}

func (s *Server) emit(playerID, remoteIP, uri string, start time.Time, bytes int64, frames int) {
	if s.cfg.Sink == nil {
		return
	}
	s.cfg.Sink(TransferRecord{
		PlayerID: playerID,
		RemoteIP: remoteIP,
		URI:      uri,
		Start:    start,
		End:      time.Now(),
		Bytes:    bytes,
		Frames:   frames,
	})
}

func (s *Server) validObject(uri string) bool {
	for _, o := range s.cfg.Objects {
		if o == uri {
			return true
		}
	}
	return false
}

func remoteIPOf(conn net.Conn) string {
	addr := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	if i := strings.LastIndexByte(addr, ':'); i > 0 {
		return addr[:i]
	}
	return addr
}
