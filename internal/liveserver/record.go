package liveserver

import (
	"math"

	"repro/internal/wmslog"
)

// RecordEntry renders a completed-transfer record as a wall-clock
// Windows-Media-Server-style log entry — the server-side log format the
// whole characterization pipeline consumes. lsmserve writes these
// directly; a compressed-time replay decompresses them back onto the
// trace clock first (loadgen.DecompressEntries).
//
// The duration is rounded (not truncated) to the log's 1-second
// resolution: under time compression every wall second is worth many
// trace seconds, and rounding halves the worst-case start-time error
// when the trace is reconstructed from timestamp minus duration.
//
// The timestamp is logged in UTC: the wire format carries no zone and
// the parser reads timestamps back as UTC, so logging local time would
// skew every reconstructed instant by the host's zone offset on
// non-UTC machines.
// A tagged transfer (Session >= 0) is logged with its workload identity
// in the referer field — the only free-text column the WMS format
// offers — so per-node fleet logs can be merged and diffed by event
// identity (wmslog.SessionRef / Entry.SessionSeq).
func RecordEntry(r TransferRecord) *wmslog.Entry {
	referer := ""
	if r.Session >= 0 {
		referer = wmslog.SessionRef(r.Session, r.Seq)
	}
	return &wmslog.Entry{
		Timestamp:    r.End.UTC(),
		ClientIP:     r.RemoteIP,
		PlayerID:     r.PlayerID,
		URIStem:      r.URI,
		Duration:     int64(math.Round(r.End.Sub(r.Start).Seconds())),
		Bytes:        r.Bytes,
		AvgBandwidth: bandwidthOf(r),
		Referer:      referer,
		Status:       200,
		Country:      "BR",
		ASNumber:     1,
	}
}

// bandwidthOf is the average transfer bandwidth in bits per second.
func bandwidthOf(r TransferRecord) int64 {
	secs := r.End.Sub(r.Start).Seconds()
	if secs <= 0 {
		return 0
	}
	return int64(float64(r.Bytes*8) / secs)
}
