// Package prof wires the standard Go profilers into the pipeline
// commands: every cmd that serves or replays at scale (lsmgen,
// lsmload, lsmserve) registers -cpuprofile, -memprofile and -trace
// flags through one Profiles value, so a perf investigation is always
// one flag away from a pprof/trace artifact (`make profile` is the
// canonical invocation; CI uploads its output on demand).
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles holds the profiling flag values and open output files.
type Profiles struct {
	CPUPath   string
	MemPath   string
	TracePath string

	cpuFile   *os.File
	traceFile *os.File
}

// RegisterFlags registers the three profiling flags on fs (use
// flag.CommandLine for a cmd's default flag set).
func (p *Profiles) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemPath, "memprofile", "", "write an allocation profile to this file at exit")
	fs.StringVar(&p.TracePath, "trace", "", "write a runtime execution trace to this file")
}

// Start begins CPU profiling and execution tracing for every
// registered path. On error it stops whatever it already started.
func (p *Profiles) Start() error {
	if p.CPUPath != "" {
		f, err := os.Create(p.CPUPath)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("prof: start cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	if p.TracePath != "" {
		f, err := os.Create(p.TracePath)
		if err != nil {
			p.stopCPU()
			return fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.stopCPU()
			return fmt.Errorf("prof: start trace: %w", err)
		}
		p.traceFile = f
	}
	return nil
}

// Stop flushes and closes every active profile: it stops the CPU
// profile and the trace, and writes the allocation profile (after a
// GC, so the heap numbers are settled). Safe to call when nothing was
// started; call it exactly once, after the measured work.
func (p *Profiles) Stop() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(p.stopCPU())
	if p.traceFile != nil {
		trace.Stop()
		keep(p.traceFile.Close())
		p.traceFile = nil
	}
	if p.MemPath != "" {
		f, err := os.Create(p.MemPath)
		if err != nil {
			keep(err)
		} else {
			runtime.GC()
			keep(pprof.Lookup("allocs").WriteTo(f, 0))
			keep(f.Close())
		}
	}
	if firstErr != nil {
		return fmt.Errorf("prof: %w", firstErr)
	}
	return nil
}

func (p *Profiles) stopCPU() error {
	if p.cpuFile == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := p.cpuFile.Close()
	p.cpuFile = nil
	return err
}
