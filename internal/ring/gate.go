// Package ring provides the bounded, allocation-free buffers the
// sharded serve pipeline rides on: a single-producer single-consumer
// ring (SPSC) for the dispatcher→lane and lane→collector handoffs, a
// dense-sequence reorder window (Reorder) for the collector's
// order-restoring merge, and the park/wake primitive (Gate) both use
// on their slow paths.
//
// The design target is that the fast path of every operation is a
// couple of plain loads/stores plus one atomic publish — no channel
// send, no mutex, no comparator call — so the per-item pipeline
// overhead stays far below the per-item serve work. Blocking is the
// slow path only: a consumer (or producer) that finds the ring empty
// (full) parks on a Gate and is woken by the other side's next
// publish, so liveness never depends on spinning and the pipeline
// behaves on a single-CPU box exactly as on a many-core one.
package ring

import "sync/atomic"

// Gate is a park/wake point: one waiter, any number of wakers. It is
// the condition-variable analogue that composes with an abort channel
// and costs the fast path a single atomic load.
//
// Protocol (waiter side):
//
//	for {
//		if condition { break }
//		g.Prepare()
//		if condition { g.Cancel(); break } // re-check closes the race
//		if !g.Wait(abort) { return }       // parked; false = aborted
//	}
//
// Wakers call Wake after every publish; Wake is a no-op unless a
// waiter announced itself, so the steady-state cost is one atomic
// load. Spurious wake-ups are possible (a stale token) and harmless —
// the waiter always re-checks its condition in a loop. Lost wake-ups
// are not: Prepare's store is sequenced before the waiter's re-check,
// so a publisher that runs after the re-check observes the waiting
// flag and posts the token.
type Gate struct {
	waiting atomic.Bool
	ch      chan struct{}
}

// NewGate returns a ready Gate.
func NewGate() *Gate {
	return &Gate{ch: make(chan struct{}, 1)}
}

// Prepare announces the intent to park. The caller MUST re-check its
// condition between Prepare and Wait (see the protocol above).
func (g *Gate) Prepare() { g.waiting.Store(true) }

// Cancel retracts a Prepare whose re-check found the condition true,
// dropping any token a concurrent Wake already posted.
func (g *Gate) Cancel() {
	g.waiting.Store(false)
	select {
	case <-g.ch:
	default:
	}
}

// Wait parks until a Wake or until abort is closed; it returns false
// on abort. A nil abort never fires.
func (g *Gate) Wait(abort <-chan struct{}) bool {
	select {
	case <-g.ch:
		return true
	case <-abort:
		g.waiting.Store(false)
		return false
	}
}

// Wake unparks the waiter if one announced itself. Safe to call from
// any goroutine, any number of times; the fast path (no waiter) is a
// single atomic load.
//
//lsm:hotpath
func (g *Gate) Wake() {
	if g.waiting.Load() && g.waiting.Swap(false) {
		select {
		case g.ch <- struct{}{}:
		default:
		}
	}
}
