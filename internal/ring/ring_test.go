package ring

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSPSCFIFO(t *testing.T) {
	r := NewSPSC[int](8, NewGate(), NewGate())
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 8; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {512, 512}, {513, 1024}} {
		if got := NewSPSC[byte](tc.ask, NewGate(), NewGate()).Cap(); got != tc.want {
			t.Errorf("capacity %d rounded to %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestSPSCBlockingStress drives a full producer/consumer pair through a
// tiny ring so both park/wake slow paths run constantly; under -race
// this also proves the slot handoff is properly synchronized.
func TestSPSCBlockingStress(t *testing.T) {
	const n = 200_000
	r := NewSPSC[int](4, NewGate(), NewGate())
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if !r.Push(i, nil) {
				done <- errAt("push aborted", i)
				return
			}
		}
		r.Close()
		done <- nil
	}()
	for i := 0; i < n; i++ {
		v, ok := r.Pop(nil)
		if !ok {
			t.Fatalf("pop %d: ring reported done early", i)
		}
		if v != i {
			t.Fatalf("pop %d = %d, out of order", i, v)
		}
	}
	if _, ok := r.Pop(nil); ok {
		t.Fatal("pop succeeded after the producer's final item")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("ring not done after close and drain")
	}
}

func errAt(msg string, i int) error {
	return &indexedErr{msg: msg, i: i}
}

type indexedErr struct {
	msg string
	i   int
}

func (e *indexedErr) Error() string { return e.msg }

// TestSPSCAbort: both sides must return promptly when the abort channel
// closes while they are parked.
func TestSPSCAbort(t *testing.T) {
	abort := make(chan struct{})
	full := NewSPSC[int](1, NewGate(), NewGate())
	full.TryPush(1)
	empty := NewSPSC[int](1, NewGate(), NewGate())

	var wg sync.WaitGroup
	wg.Add(2)
	results := make(chan bool, 2)
	go func() { defer wg.Done(); results <- full.Push(2, abort) }()
	go func() { defer wg.Done(); _, ok := empty.Pop(abort); results <- ok }()
	time.Sleep(10 * time.Millisecond) // let both park
	close(abort)
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("parked ring operations did not observe the abort")
	}
	for i := 0; i < 2; i++ {
		if <-results {
			t.Fatal("aborted operation reported success")
		}
	}
}

// TestSPSCCloseWakesConsumer: a consumer parked on an empty ring must
// observe a close without any further push.
func TestSPSCCloseWakesConsumer(t *testing.T) {
	r := NewSPSC[int](4, NewGate(), NewGate())
	done := make(chan bool, 1)
	go func() {
		_, ok := r.Pop(nil)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop on closed empty ring returned an item")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not wake the parked consumer")
	}
}

// TestSPSCSharedConsumerGate is the collector topology: one consumer
// multiplexes several rings through a single shared gate, re-scanning
// on every wake. All items from all producers must arrive.
func TestSPSCSharedConsumerGate(t *testing.T) {
	const lanes = 4
	const perLane = 50_000
	shared := NewGate()
	rings := make([]*SPSC[int], lanes)
	for k := range rings {
		rings[k] = NewSPSC[int](8, NewGate(), shared)
	}
	for k := range rings {
		go func(k int) {
			for i := 0; i < perLane; i++ {
				rings[k].Push(k*perLane+i, nil)
			}
			rings[k].Close()
		}(k)
	}

	// The consumer mirrors the collector's topology: done rings are
	// recorded once and then skipped — a ring that stays Done must not
	// count as fresh work in the park re-check, or the consumer would
	// busy-spin (and starve the producers) from the moment the first
	// producer finishes.
	seen := 0
	done := make([]bool, lanes)
	remaining := lanes
	deadline := time.After(60 * time.Second)
	for remaining > 0 {
		progress := false
		for k, r := range rings {
			if done[k] {
				continue
			}
			for {
				_, ok := r.TryPop()
				if !ok {
					break
				}
				seen++
				progress = true
			}
			if r.Done() {
				done[k] = true
				remaining--
				progress = true
			}
		}
		if remaining > 0 && !progress {
			shared.Prepare()
			again := false
			for k, r := range rings {
				if done[k] {
					continue
				}
				if _, ok := r.Peek(); ok || r.Done() {
					again = true
					break
				}
			}
			if again {
				shared.Cancel()
				continue
			}
			select {
			case <-deadline:
				t.Fatalf("multiplexed consumer wedged with %d/%d items", seen, lanes*perLane)
			default:
			}
			shared.Wait(nil)
		}
	}
	if seen != lanes*perLane {
		t.Fatalf("consumed %d items, want %d", seen, lanes*perLane)
	}
}

func TestReorderInOrder(t *testing.T) {
	r := NewReorder[string](4)
	// Arrive out of order: 2, 0, 1, 3.
	for _, seq := range []uint64{2, 0, 1, 3} {
		if err := r.Place(seq, strings.Repeat("x", int(seq))); err != nil {
			t.Fatal(err)
		}
	}
	for want := uint64(0); want < 4; want++ {
		p, ok := r.PeekNext()
		if !ok {
			t.Fatalf("sequence %d not drainable", want)
		}
		if uint64(len(*p)) != want {
			t.Fatalf("drained wrong item for sequence %d", want)
		}
		r.Release()
	}
	if r.Len() != 0 {
		t.Fatalf("window not empty after drain: %d", r.Len())
	}
}

// TestReorderWindowSlides exercises wraparound: the window must keep
// accepting dense sequences far beyond its capacity as it slides.
func TestReorderWindowSlides(t *testing.T) {
	r := NewReorder[uint64](8)
	for seq := uint64(0); seq < 1000; seq++ {
		if !r.Placeable(seq) {
			t.Fatalf("sequence %d not placeable in an empty window", seq)
		}
		if err := r.Place(seq, seq); err != nil {
			t.Fatal(err)
		}
		p, ok := r.PeekNext()
		if !ok || *p != seq {
			t.Fatalf("sequence %d did not drain immediately", seq)
		}
		r.Release()
	}
	if r.Next() != 1000 {
		t.Fatalf("window lower bound = %d, want 1000", r.Next())
	}
}

// TestReorderOverflowDiagnostics: out-of-window and duplicate
// placements are pipeline invariant violations and must return loud
// diagnostic errors — never wedge or silently drop.
func TestReorderOverflowDiagnostics(t *testing.T) {
	r := NewReorder[int](4)

	if err := r.Place(4, 0); err == nil {
		t.Error("placement beyond the window accepted")
	} else if !strings.Contains(err.Error(), "overflow") {
		t.Errorf("overflow error %q does not name the condition", err)
	}
	if r.Placeable(4) {
		t.Error("sequence beyond the window reported placeable")
	}

	if err := r.Place(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Place(1, 0); err == nil {
		t.Error("duplicate placement accepted")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate error %q does not name the condition", err)
	}

	if err := r.Place(0, 0); err != nil {
		t.Fatal(err)
	}
	r.Release() // release 0
	if err := r.Place(0, 0); err == nil {
		t.Error("stale placement accepted")
	} else if !strings.Contains(err.Error(), "already released") {
		t.Errorf("stale error %q does not name the condition", err)
	}
}

// TestGateLostWakeupStress hammers the Prepare/re-check/Wait protocol
// from a waker that toggles a shared condition, ensuring no wake is
// ever lost.
func TestGateLostWakeupStress(t *testing.T) {
	g := NewGate()
	r := NewSPSC[int](1, NewGate(), g)
	const n = 100_000
	go func() {
		for i := 0; i < n; i++ {
			r.Push(i, nil)
		}
		r.Close()
	}()
	got := 0
	deadline := time.After(60 * time.Second)
	for {
		if _, ok := r.TryPop(); ok {
			got++
			continue
		}
		if r.Done() {
			break
		}
		g.Prepare()
		if _, ok := r.Peek(); ok || r.closed.Load() {
			g.Cancel()
			continue
		}
		select {
		case <-deadline:
			t.Fatalf("lost wakeup after %d items", got)
		default:
		}
		g.Wait(nil)
	}
	// Drain whatever raced with the close.
	for {
		if _, ok := r.TryPop(); !ok {
			break
		}
		got++
	}
	if got != n {
		t.Fatalf("consumed %d items, want %d", got, n)
	}
}
