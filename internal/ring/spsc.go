package ring

import "sync/atomic"

// SPSC is a bounded single-producer single-consumer ring buffer. One
// goroutine pushes, one goroutine pops; the two sides synchronize only
// through the head/tail indices, so the fast path of either operation
// is a slot copy plus one atomic store — no lock, no channel, no
// allocation. Capacities are rounded up to a power of two.
//
// Both sides keep a cached copy of the opposite index (headCache /
// tailCache) so the common case reads one shared cache line instead of
// two: the producer re-reads head only when the ring looks full, the
// consumer re-reads tail only when it looks empty — the classic
// Lamport ring refinement.
//
// Blocking Push/Pop park on the ring's gates (see Gate) and honor an
// abort channel, so a stalled peer never wedges the caller. Close is
// the producer's end-of-stream signal: after Close, Pop drains the
// remaining items and then reports done.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	// Consumer-owned line: head plus the consumer's cache of tail.
	_         [64]byte
	head      atomic.Uint64 // next index to pop
	tailCache uint64

	// Producer-owned line: tail plus the producer's cache of head.
	_         [64]byte
	tail      atomic.Uint64 // next index to push
	headCache uint64

	_      [64]byte
	closed atomic.Bool
	prod   *Gate // producer parks here when full; woken by Advance
	cons   *Gate // consumer parks here when empty; woken by Push/Close
}

// NewSPSC returns an SPSC ring holding at least capacity items
// (rounded up to a power of two). prod is the gate the producer parks
// on when the ring is full; cons the gate the consumer parks on when
// it is empty. A consumer multiplexing several rings may share one
// cons gate across all of them and re-scan on every wake.
func NewSPSC[T any](capacity int, prod, cons *Gate) *SPSC[T] {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{
		buf:  make([]T, n),
		mask: uint64(n - 1),
		prod: prod,
		cons: cons,
	}
}

// Cap returns the ring's capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// TryPush appends v if the ring has space, reporting whether it did.
// Producer side only.
//
//lsm:hotpath
func (r *SPSC[T]) TryPush(v T) bool {
	t := r.tail.Load()
	if t-r.headCache >= uint64(len(r.buf)) {
		r.headCache = r.head.Load()
		if t-r.headCache >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	r.cons.Wake()
	return true
}

// TryPushN appends as many items of vs as the ring has space for,
// in order, and returns how many it took. The copies are published with
// a single tail store and a single consumer wake, so a batch of N
// costs one atomic publish instead of N — the dispatcher's staged
// lane flush rides on this. Producer side only.
//
//lsm:hotpath
func (r *SPSC[T]) TryPushN(vs []T) int {
	t := r.tail.Load()
	free := uint64(len(r.buf)) - (t - r.headCache)
	if free < uint64(len(vs)) {
		r.headCache = r.head.Load()
		free = uint64(len(r.buf)) - (t - r.headCache)
	}
	n := len(vs)
	if uint64(n) > free {
		n = int(free)
	}
	if n == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		r.buf[(t+uint64(i))&r.mask] = vs[i]
	}
	r.tail.Store(t + uint64(n))
	r.cons.Wake()
	return n
}

// Push appends v, parking while the ring is full. It returns false if
// abort is closed while waiting (v is not pushed). Producer side only.
func (r *SPSC[T]) Push(v T, abort <-chan struct{}) bool {
	for {
		if r.TryPush(v) {
			return true
		}
		r.prod.Prepare()
		if r.TryPush(v) {
			r.prod.Cancel()
			return true
		}
		if !r.prod.Wait(abort) {
			return false
		}
	}
}

// Peek returns a pointer to the oldest item without consuming it, or
// (nil, false) when the ring is currently empty. The pointee is valid
// until the matching Advance. Consumer side only.
//
//lsm:hotpath
func (r *SPSC[T]) Peek() (*T, bool) {
	h := r.head.Load()
	if h == r.tailCache {
		r.tailCache = r.tail.Load()
		if h == r.tailCache {
			return nil, false
		}
	}
	return &r.buf[h&r.mask], true
}

// Advance consumes the item Peek returned, releasing its slot (and any
// references it held) back to the producer. Consumer side only.
//
//lsm:hotpath
func (r *SPSC[T]) Advance() {
	h := r.head.Load()
	var zero T
	r.buf[h&r.mask] = zero // drop slot references promptly
	r.head.Store(h + 1)
	r.prod.Wake()
}

// TryPop pops the oldest item if one is available. Consumer side only.
//
//lsm:hotpath
func (r *SPSC[T]) TryPop() (T, bool) {
	p, ok := r.Peek()
	if !ok {
		var zero T
		return zero, false
	}
	v := *p
	r.Advance()
	return v, true
}

// Pop returns the next item, parking while the ring is empty. It
// returns false once the ring is closed and fully drained, or when
// abort is closed while waiting. Consumer side only.
func (r *SPSC[T]) Pop(abort <-chan struct{}) (T, bool) {
	var zero T
	for {
		if v, ok := r.TryPop(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Close happens after the producer's final push; one more
			// look catches an item published just before the close.
			return r.TryPop()
		}
		r.cons.Prepare()
		if v, ok := r.TryPop(); ok {
			r.cons.Cancel()
			return v, true
		}
		if r.closed.Load() {
			r.cons.Cancel()
			return r.TryPop()
		}
		if !r.cons.Wait(abort) {
			return zero, false
		}
	}
}

// Close marks the producer done. Items already in the ring remain
// poppable; Pop reports done once they drain. Producer side only;
// Close must follow the final Push.
func (r *SPSC[T]) Close() {
	r.closed.Store(true)
	r.cons.Wake()
}

// Done reports whether the ring is closed and fully drained — the
// consumer will never see another item.
func (r *SPSC[T]) Done() bool {
	return r.closed.Load() && r.head.Load() == r.tail.Load()
}
