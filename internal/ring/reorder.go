package ring

import "fmt"

// Reorder is a dense-sequence reorder window: items tagged with dense
// sequence numbers (0, 1, 2, …) arrive in any order and drain in
// sequence. Because the sequence is dense, slot addressing is direct —
// seq & mask — so Place and PeekNext are O(1) with no comparator
// calls, unlike the heap it replaces: a heap pays O(log n) plus a
// less-func call per push AND per pop even when the input is already
// nearly sorted, which is exactly the dense-seq case.
//
// The window spans [Next, Next+Cap): Placeable reports whether a
// sequence currently fits, and the caller is expected to leave
// out-of-window items at their source (for the sharded collector:
// parked in the producing lane's SPSC ring, which backpressures that
// lane) until the window advances. Place on an out-of-window or
// duplicate sequence — which the pipeline's bounded occupancy makes
// impossible — fails loudly with a diagnostic error rather than
// silently corrupting order.
type Reorder[T any] struct {
	slots  []T
	filled []bool
	mask   uint64
	next   uint64 // lowest sequence not yet released
	count  int
}

// NewReorder returns a window holding at least capacity items (rounded
// up to a power of two).
func NewReorder[T any](capacity int) *Reorder[T] {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Reorder[T]{
		slots:  make([]T, n),
		filled: make([]bool, n),
		mask:   uint64(n - 1),
	}
}

// Cap returns the window capacity.
func (r *Reorder[T]) Cap() int { return len(r.slots) }

// Len returns the number of items currently buffered.
func (r *Reorder[T]) Len() int { return r.count }

// Next returns the lowest sequence number not yet released — the
// window's lower bound.
func (r *Reorder[T]) Next() uint64 { return r.next }

// Placeable reports whether seq currently fits in the window.
//
//lsm:hotpath
func (r *Reorder[T]) Placeable(seq uint64) bool {
	return seq >= r.next && seq-r.next < uint64(len(r.slots))
}

// Place buffers v at seq. A sequence outside the window (stale or too
// far ahead) or already occupied is a pipeline invariant violation and
// returns a diagnostic error; the caller must treat it as fatal.
//
//lsm:hotpath
func (r *Reorder[T]) Place(seq uint64, v T) error {
	if seq < r.next {
		//lsm:alloc -- impossible-by-construction failure diagnostics, never on the hot path
		return fmt.Errorf("ring: reorder sequence %d already released (window starts at %d)", seq, r.next)
	}
	if seq-r.next >= uint64(len(r.slots)) {
		//lsm:alloc -- impossible-by-construction failure diagnostics, never on the hot path
		return fmt.Errorf("ring: reorder overflow: sequence %d outside window [%d, %d)", seq, r.next, r.next+uint64(len(r.slots)))
	}
	i := seq & r.mask
	if r.filled[i] {
		//lsm:alloc -- impossible-by-construction failure diagnostics, never on the hot path
		return fmt.Errorf("ring: duplicate reorder sequence %d", seq)
	}
	r.slots[i] = v
	r.filled[i] = true
	r.count++
	return nil
}

// PeekNext returns a pointer to the item at the window's lower bound,
// or (nil, false) if it has not arrived yet. The pointee is valid
// until the matching Release.
//
//lsm:hotpath
func (r *Reorder[T]) PeekNext() (*T, bool) {
	i := r.next & r.mask
	if !r.filled[i] {
		return nil, false
	}
	return &r.slots[i], true
}

// Skip advances the window past a sequence that never arrived and
// never will — the abort-drain path, where in-flight sequences were
// discarded at their source. It panics if the next slot is filled
// (Release consumes placed items).
func (r *Reorder[T]) Skip() {
	if r.filled[r.next&r.mask] {
		panic("ring: Skip over a placed sequence")
	}
	r.next++
}

// Release frees the slot PeekNext returned and advances the window.
// It panics if the next item has not been placed.
//
//lsm:hotpath
func (r *Reorder[T]) Release() {
	i := r.next & r.mask
	if !r.filled[i] {
		panic("ring: Release before the next sequence was placed")
	}
	var zero T
	r.slots[i] = zero // drop slot references promptly
	r.filled[i] = false
	r.next++
	r.count--
}
