// Package analyze implements the paper's three-layer characterization
// pipeline (Sections 3–5): client-layer, session-layer and transfer-layer
// analyses over a sanitized trace, each producing the statistics and
// distribution fits behind Figures 2–20 and Tables 1–2.
package analyze

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// ErrBadInput reports empty or inconsistent analysis input.
var ErrBadInput = errors.New("analyze: bad input")

// Interval is a half-open activity interval [Start, End) in trace seconds.
type Interval struct {
	Start, End int64
}

// ConcurrencyReport characterizes a level-of-concurrency process c(t):
// the number of simultaneously active intervals at each second. It backs
// Figures 3/4 (active clients) and 15/16 (active transfers).
type ConcurrencyReport struct {
	// Marginal is the distribution of c(t) sampled each second over the
	// trace (Figures 3 and 15).
	Marginal *stats.ECDF
	// Binned is the 15-minute mean of c(t) over the whole trace
	// (Figures 4 and 16, left).
	Binned stats.BinnedSeries
	// WeekFold and DayFold are the revolving weekly and daily views
	// (Figures 4 and 16, center and right).
	WeekFold stats.BinnedSeries
	DayFold  stats.BinnedSeries
	// ACF is the autocorrelation of the minute-binned series at lags
	// 0..MaxACFLagMinutes (Figure 8).
	ACF []float64
	// Peak is the maximum concurrency observed.
	Peak int
}

const (
	// TemporalBin is the paper's 15-minute bin (900 s) for temporal plots.
	TemporalBin int64 = 900
	// ACFBin is the 1-minute bin used for the Figure 8 autocorrelation.
	ACFBin int64 = 60
	// MaxACFLagMinutes covers three daily peaks (Figure 8 plots to ~4000).
	MaxACFLagMinutes = 4000
)

// Concurrency computes the full concurrency report for a set of activity
// intervals over [0, horizon). Intervals outside the horizon are clipped.
func Concurrency(intervals []Interval, horizon int64) (*ConcurrencyReport, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadInput, horizon)
	}
	if len(intervals) == 0 {
		return nil, fmt.Errorf("%w: no intervals", ErrBadInput)
	}
	perSecond := concurrencyPerSecond(intervals, horizon)

	// Marginal distribution of c(t).
	samples := make([]float64, len(perSecond))
	peak := 0
	for i, v := range perSecond {
		samples[i] = float64(v)
		if int(v) > peak {
			peak = int(v)
		}
	}

	binned, err := binMeanSeries(perSecond, TemporalBin)
	if err != nil {
		return nil, err
	}
	// The weekly view needs at least one full week of data to be
	// meaningful; shorter traces skip it.
	weekFold := stats.BinnedSeries{Width: TemporalBin}
	if horizon >= 7*86400 {
		weekFold, err = binned.FoldModulo(7 * 86400)
		if err != nil {
			weekFold = stats.BinnedSeries{Width: TemporalBin}
		}
	}
	dayFold, err := binned.FoldModulo(86400)
	if err != nil {
		return nil, err
	}

	acfSeries, err := binMeanSeries(perSecond, ACFBin)
	if err != nil {
		return nil, err
	}
	maxLag := MaxACFLagMinutes
	if maxLag >= len(acfSeries.Values) {
		maxLag = len(acfSeries.Values) - 1
	}
	var acf []float64
	if maxLag >= 1 {
		acf, err = stats.AutocorrelationFunction(acfSeries.Values, maxLag)
		if err != nil {
			acf = nil // constant series: ACF undefined, report none
		}
	}

	return &ConcurrencyReport{
		Marginal: stats.NewECDF(samples),
		Binned:   binned,
		WeekFold: weekFold,
		DayFold:  dayFold,
		ACF:      acf,
		Peak:     peak,
	}, nil
}

// concurrencyPerSecond sweeps the intervals with a difference array.
func concurrencyPerSecond(intervals []Interval, horizon int64) []int32 {
	diff := make([]int32, horizon+1)
	for _, iv := range intervals {
		lo, hi := iv.Start, iv.End
		if hi <= lo {
			hi = lo + 1 // zero-length activity still occupies its second
		}
		if lo < 0 {
			lo = 0
		}
		if hi > horizon {
			hi = horizon
		}
		if lo >= horizon || hi <= 0 || hi <= lo {
			continue
		}
		diff[lo]++
		diff[hi]--
	}
	out := make([]int32, horizon)
	var run int32
	for s := int64(0); s < horizon; s++ {
		run += diff[s]
		out[s] = run
	}
	return out
}

// binMeanSeries averages a per-second series into fixed-width bins.
func binMeanSeries(perSecond []int32, width int64) (stats.BinnedSeries, error) {
	if width <= 0 {
		return stats.BinnedSeries{}, fmt.Errorf("%w: bin width %d", ErrBadInput, width)
	}
	horizon := int64(len(perSecond))
	n := int((horizon + width - 1) / width)
	values := make([]float64, n)
	for b := 0; b < n; b++ {
		lo := int64(b) * width
		hi := lo + width
		if hi > horizon {
			hi = horizon
		}
		var sum float64
		for s := lo; s < hi; s++ {
			sum += float64(perSecond[s])
		}
		values[b] = sum / float64(hi-lo)
	}
	return stats.BinnedSeries{Width: width, Values: values}, nil
}

// TransferIntervals extracts activity intervals from transfers.
func TransferIntervals(starts, ends []int64) ([]Interval, error) {
	if len(starts) != len(ends) {
		return nil, fmt.Errorf("%w: %d starts vs %d ends", ErrBadInput, len(starts), len(ends))
	}
	out := make([]Interval, len(starts))
	for i := range starts {
		out[i] = Interval{Start: starts[i], End: ends[i]}
	}
	return out, nil
}
