package analyze

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sessions"
	"repro/internal/trace"
)

// ClientShape is one client's workload footprint at the granularity the
// replay validation compares: how many transfers it issued and how many
// sessions they sessionize into.
type ClientShape struct {
	Transfers int
	Sessions  int
}

// MatchReport is the outcome of comparing an offered workload against
// the workload a server actually logged — the end of the
// generate → replay → re-analyze loop. Client identities are densified
// independently on each side (the served trace numbers clients by
// first-seen player ID), so the comparison is identity-agnostic: totals
// plus the multiset of per-client shapes.
type MatchReport struct {
	OfferedTransfers int
	ServedTransfers  int
	OfferedSessions  int
	ServedSessions   int
	OfferedClients   int
	ServedClients    int

	// ShapeMismatches counts per-client (transfers, sessions) shapes
	// present in one trace's multiset but not the other (symmetric
	// difference, in client units).
	ShapeMismatches int

	Timeout int64
}

// Match reports whether the served workload is session- and
// transfer-exact against the offered one.
func (m *MatchReport) Match() bool {
	return m.OfferedTransfers == m.ServedTransfers &&
		m.OfferedSessions == m.ServedSessions &&
		m.OfferedClients == m.ServedClients &&
		m.ShapeMismatches == 0
}

// String renders the comparison.
func (m *MatchReport) String() string {
	var b strings.Builder
	status := "MATCH"
	if !m.Match() {
		status = "MISMATCH"
	}
	fmt.Fprintf(&b, "%s at timeout %d s\n", status, m.Timeout)
	fmt.Fprintf(&b, "transfers: offered %d, served %d\n", m.OfferedTransfers, m.ServedTransfers)
	fmt.Fprintf(&b, "sessions:  offered %d, served %d\n", m.OfferedSessions, m.ServedSessions)
	fmt.Fprintf(&b, "clients:   offered %d, served %d\n", m.OfferedClients, m.ServedClients)
	if m.ShapeMismatches > 0 {
		fmt.Fprintf(&b, "per-client shape mismatches: %d", m.ShapeMismatches)
	} else {
		b.WriteString("per-client shapes identical")
	}
	return b.String()
}

// CompareTraces sessionizes both traces at the given timeout and
// compares them: totals and the multiset of per-client shapes. It is
// the validation step that closes the loop — the workload parsed back
// out of the server's log must be the workload that was offered.
func CompareTraces(offered, served *trace.Trace, timeout int64) (*MatchReport, error) {
	offSet, err := sessions.Sessionize(offered, timeout)
	if err != nil {
		return nil, err
	}
	srvSet, err := sessions.Sessionize(served, timeout)
	if err != nil {
		return nil, err
	}
	offShapes := clientShapes(offered, offSet)
	srvShapes := clientShapes(served, srvSet)

	report := &MatchReport{
		OfferedTransfers: offered.NumTransfers(),
		ServedTransfers:  served.NumTransfers(),
		OfferedSessions:  offSet.Count(),
		ServedSessions:   srvSet.Count(),
		OfferedClients:   len(offShapes),
		ServedClients:    len(srvShapes),
		Timeout:          timeout,
	}

	diff := make(map[ClientShape]int)
	for _, s := range offShapes {
		diff[s]++
	}
	for _, s := range srvShapes {
		diff[s]--
	}
	for _, d := range diff {
		if d > 0 {
			report.ShapeMismatches += d
		} else {
			report.ShapeMismatches -= d
		}
	}
	return report, nil
}

// clientShapes folds a sessionized trace into one shape per client,
// sorted for determinism.
func clientShapes(tr *trace.Trace, set *sessions.Set) []ClientShape {
	byClient := make(map[int]*ClientShape)
	for _, s := range set.Sessions {
		sh := byClient[s.Client]
		if sh == nil {
			sh = &ClientShape{}
			byClient[s.Client] = sh
		}
		sh.Sessions++
		sh.Transfers += s.Count()
	}
	out := make([]ClientShape, 0, len(byClient))
	for _, sh := range byClient {
		out = append(out, *sh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Transfers != out[j].Transfers {
			return out[i].Transfers < out[j].Transfers
		}
		return out[i].Sessions < out[j].Sessions
	})
	return out
}
