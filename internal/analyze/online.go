package analyze

import (
	"fmt"

	"repro/internal/heapx"
	"repro/internal/stats"
	"repro/internal/trace"
)

// OnlineLayer is the single-pass counterpart of the hot estimators the
// batch characterization computes from a materialized trace: basic
// counts, distinct-entity cardinalities, transfer-length and bandwidth
// moments and quantiles, transfer interarrivals, the 15-minute arrival
// series, and peak 1-second transfer concurrency. It consumes transfers
// in start order straight off the serving stream, holding O(1) state
// (plus the fixed bin array), so measurement can ride the same pass
// that generates and serves the workload.
//
// Exactness: counts, bytes, moments, the binned series and peak
// concurrency match the batch pipeline exactly; quantiles come from a
// geometric-bucket sketch (≤ ~4% relative error) and client/IP
// cardinalities from HyperLogLog (≈ 1% standard error). Measured deltas
// are recorded in EXPERIMENTS.md.
type OnlineLayer struct {
	horizon int64

	transfers  int
	totalBytes int64

	clients *stats.HyperLogLog
	ips     *stats.HyperLogLog
	ases    map[int]struct{}
	objects map[int]struct{}

	lengths   stats.Welford
	lengthQ   *stats.LogQuantile
	bandwidth stats.Welford

	interarrival stats.Welford
	lastStart    int64

	arrivals *stats.OnlineBins

	ends heapx.Heap[int64] // min-heap of active transfer end times
	peak int
}

// NewOnlineLayer builds the accumulator for a trace of the given
// horizon (seconds).
func NewOnlineLayer(horizon int64) (*OnlineLayer, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadInput, horizon)
	}
	clients, err := stats.NewHyperLogLog(14)
	if err != nil {
		return nil, err
	}
	ips, err := stats.NewHyperLogLog(14)
	if err != nil {
		return nil, err
	}
	lengthQ, err := stats.NewLogQuantile(32)
	if err != nil {
		return nil, err
	}
	arrivals, err := stats.NewOnlineBins(horizon, TemporalBin)
	if err != nil {
		return nil, err
	}
	return &OnlineLayer{
		horizon:  horizon,
		clients:  clients,
		ips:      ips,
		ases:     make(map[int]struct{}),
		objects:  make(map[int]struct{}),
		lengthQ:  lengthQ,
		arrivals: arrivals,
		ends:     heapx.New(func(a, b int64) bool { return a < b }),
	}, nil
}

// Add absorbs one served transfer. Transfers must arrive in
// non-decreasing start order (the serving stream's order).
func (o *OnlineLayer) Add(t trace.Transfer) error {
	if o.transfers > 0 && t.Start < o.lastStart {
		return fmt.Errorf("%w: transfers not in start order (%d after %d)", ErrBadInput, t.Start, o.lastStart)
	}
	if o.transfers > 0 {
		o.interarrival.Add(float64(t.Start - o.lastStart))
	}
	o.lastStart = t.Start
	o.transfers++
	o.totalBytes += t.Bytes

	o.clients.AddInt(int64(t.Client))
	o.ips.AddString(t.IP)
	o.ases[t.AS] = struct{}{}
	o.objects[t.Object] = struct{}{}

	display := stats.LogDisplayValue(float64(t.Duration))
	o.lengths.Add(display)
	o.lengthQ.Add(display)
	o.bandwidth.Add(float64(t.Bandwidth))
	o.arrivals.Add(t.Start)

	// 1-second concurrency: expire finished transfers, admit this one.
	for o.ends.Len() > 0 && o.ends.Peek() <= t.Start {
		o.ends.Pop()
	}
	o.ends.Push(t.End())
	if o.ends.Len() > o.peak {
		o.peak = o.ends.Len()
	}
	return nil
}

// OnlineSnapshot is the accumulated measurement.
type OnlineSnapshot struct {
	Transfers  int
	TotalBytes int64

	// Clients and IPs are HyperLogLog cardinality estimates.
	Clients float64
	IPs     float64
	ASes    int
	Objects int

	PeakConcurrency int

	LengthMean, LengthStddev    float64
	LengthP50, LengthP90        float64
	LengthP99                   float64
	BandwidthMean               float64
	InterarrivalMean            float64
	Arrivals                    stats.BinnedSeries
	ArrivalsDay, ArrivalsWeekly stats.BinnedSeries
}

// Snapshot renders the current state. The binned series share backing
// arrays with the accumulator.
func (o *OnlineLayer) Snapshot() OnlineSnapshot {
	s := OnlineSnapshot{
		Transfers:        o.transfers,
		TotalBytes:       o.totalBytes,
		Clients:          o.clients.Count(),
		IPs:              o.ips.Count(),
		ASes:             len(o.ases),
		Objects:          len(o.objects),
		PeakConcurrency:  o.peak,
		LengthMean:       o.lengths.Mean(),
		LengthStddev:     o.lengths.Stddev(),
		LengthP50:        o.lengthQ.Quantile(0.5),
		LengthP90:        o.lengthQ.Quantile(0.9),
		LengthP99:        o.lengthQ.Quantile(0.99),
		BandwidthMean:    o.bandwidth.Mean(),
		InterarrivalMean: o.interarrival.Mean(),
		Arrivals:         o.arrivals.Series(),
	}
	if day, err := s.Arrivals.FoldModulo(86400); err == nil {
		s.ArrivalsDay = day
	}
	if week, err := s.Arrivals.FoldModulo(7 * 86400); err == nil {
		s.ArrivalsWeekly = week
	}
	return s
}
