package analyze

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gismo"
	"repro/internal/sessions"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// buildFixture generates, serves, sanitizes and sessionizes a test-scale
// workload once for the layer tests.
type fixture struct {
	model gismo.Model
	tr    *trace.Trace
	set   *sessions.Set
}

var cachedFixture *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if cachedFixture != nil {
		return cachedFixture
	}
	m, err := gismo.Scaled(150, 7)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gismo.Generate(m, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulate.DefaultConfig()
	cfg.SpanningPerMillion = 0
	res, err := simulate.Run(w, cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := res.Trace.Sanitize()
	set, err := sessions.Sessionize(clean, sessions.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	cachedFixture = &fixture{model: m, tr: clean, set: set}
	return cachedFixture
}

func TestClientLayer(t *testing.T) {
	f := getFixture(t)
	cl, err := AnalyzeClientLayer(f.set)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Concurrency.Peak < 1 {
		t.Error("no concurrency")
	}
	if len(cl.Interarrivals) == 0 {
		t.Fatal("no interarrivals")
	}
	for _, a := range cl.Interarrivals {
		if a < 0 {
			t.Fatal("negative interarrival")
		}
	}
	// Interest profile: Zipf-like skew must be present and fits must be
	// plausible.
	if cl.InterestSessions.Alpha <= 0 || cl.InterestTransfers.Alpha <= 0 {
		t.Errorf("interest fits: sessions=%+v transfers=%+v",
			cl.InterestSessions, cl.InterestTransfers)
	}
	if cl.InterestTransfers.Alpha < cl.InterestSessions.Alpha {
		t.Errorf("transfers-per-client skew (%v) should be at least the sessions-per-client skew (%v), as in Figure 7",
			cl.InterestTransfers.Alpha, cl.InterestSessions.Alpha)
	}
	if len(cl.TransfersPerClient) == 0 || len(cl.SessionsPerClient) == 0 {
		t.Error("missing per-client counts")
	}
}

func TestClientLayerDiurnalACF(t *testing.T) {
	f := getFixture(t)
	cl, err := AnalyzeClientLayer(f.set)
	if err != nil {
		t.Fatal(err)
	}
	acf := cl.Concurrency.ACF
	if len(acf) < 1441 {
		t.Fatalf("ACF too short: %d", len(acf))
	}
	// Figure 8: peak near lag 1440 minutes, clearly above the half-day
	// trough. The fixture's per-day audience variability (DayVariability)
	// keeps the one-day peak modest on a 7-day horizon — across seeds it
	// ranges roughly 0.2–0.35 — so assert the structure, not a
	// knife-edge level: a clearly positive daily peak over a negative
	// half-day trough.
	if acf[1440] < 0.15 {
		t.Errorf("ACF(1440) = %v, want clear daily correlation", acf[1440])
	}
	if acf[1440] <= acf[720]+0.2 {
		t.Errorf("ACF(1440)=%v should clearly exceed ACF(720)=%v", acf[1440], acf[720])
	}
}

func TestSessionLayer(t *testing.T) {
	f := getFixture(t)
	sl, err := AnalyzeSessionLayer(f.set)
	if err != nil {
		t.Fatal(err)
	}
	// Session ON times: the generator composes them from Zipf transfer
	// counts and lognormal gaps/lengths, so the fitted body should be a
	// plausible lognormal (Figure 11's message), not a precise recovery.
	if sl.OnFit.Sigma <= 0.5 || sl.OnFit.Sigma > 3 {
		t.Errorf("ON sigma = %v, want high variability", sl.OnFit.Sigma)
	}
	if sl.OnKS > 0.2 {
		t.Errorf("ON lognormal KS = %v, body fit too poor", sl.OnKS)
	}
	// Transfers per session: recover the model's Zipf alpha = 2.70417.
	if math.Abs(sl.PerSessionFit.Alpha-f.model.TransfersPerSession.Alpha) > 0.4 {
		t.Errorf("per-session alpha = %v, want ~%v",
			sl.PerSessionFit.Alpha, f.model.TransfersPerSession.Alpha)
	}
	// Intra-session interarrivals: recover lognormal(4.900, 1.321).
	if math.Abs(sl.IntraFit.Mu-f.model.IntraSessionGap.Mu) > 0.25 {
		t.Errorf("intra mu = %v, want ~%v", sl.IntraFit.Mu, f.model.IntraSessionGap.Mu)
	}
	if math.Abs(sl.IntraFit.Sigma-f.model.IntraSessionGap.Sigma) > 0.25 {
		t.Errorf("intra sigma = %v, want ~%v", sl.IntraFit.Sigma, f.model.IntraSessionGap.Sigma)
	}
	// Session OFF times: exponential fit exists with a large mean.
	if len(sl.OffTimes) > 0 && sl.OffFit.MeanValue <= 0 {
		t.Error("OFF fit missing")
	}
	// Figure 10: weak hour-of-day correlation.
	if sl.OnHourR2 > 0.1 {
		t.Errorf("ON-vs-hour R2 = %v, want weak (Figure 10)", sl.OnHourR2)
	}
}

func TestSessionLayerOnByHourPopulated(t *testing.T) {
	f := getFixture(t)
	sl, err := AnalyzeSessionLayer(f.set)
	if err != nil {
		t.Fatal(err)
	}
	var nonzero int
	for _, v := range sl.OnByHour {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < 12 {
		t.Errorf("only %d hours have ON-time data", nonzero)
	}
}

func TestTransferLayer(t *testing.T) {
	f := getFixture(t)
	tl, err := AnalyzeTransferLayer(f.tr)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer lengths: recover lognormal(4.384, 1.427).
	if math.Abs(tl.LengthFit.Mu-f.model.TransferLength.Mu) > 0.25 {
		t.Errorf("length mu = %v, want ~%v", tl.LengthFit.Mu, f.model.TransferLength.Mu)
	}
	if math.Abs(tl.LengthFit.Sigma-f.model.TransferLength.Sigma) > 0.25 {
		t.Errorf("length sigma = %v, want ~%v", tl.LengthFit.Sigma, f.model.TransferLength.Sigma)
	}
	if tl.LengthKS > 0.1 {
		t.Errorf("length KS = %v", tl.LengthKS)
	}
	// Interarrivals present and non-negative (display >= 1).
	if len(tl.Interarrivals) == 0 {
		t.Fatal("no interarrivals")
	}
	for _, a := range tl.Interarrivals {
		if a < 1 {
			t.Fatalf("display interarrival %v < 1", a)
		}
	}
	// Bandwidth: bimodal with ~10% congestion-bound (Figure 20).
	if len(tl.BandwidthModes) < 3 {
		t.Errorf("detected %d bandwidth modes, want several access-speed spikes", len(tl.BandwidthModes))
	}
	if tl.CongestionFrac < 0.04 || tl.CongestionFrac > 0.16 {
		t.Errorf("congestion fraction = %v, want ~0.10", tl.CongestionFrac)
	}
	if tl.Concurrency.Peak < 1 {
		t.Error("no transfer concurrency")
	}
}

func TestTransferLayerTemporalInterarrivals(t *testing.T) {
	f := getFixture(t)
	tl, err := AnalyzeTransferLayer(f.tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.InterarrivalDay.Values) != 96 {
		t.Fatalf("day fold bins = %d", len(tl.InterarrivalDay.Values))
	}
	// Figure 18 (right): interarrivals in the 5–11 am trough are longer
	// than in the evening peak.
	var trough, evening float64
	var nt, ne int
	for h := 5; h < 11; h++ {
		for q := 0; q < 4; q++ {
			v := tl.InterarrivalDay.Values[h*4+q]
			if v > 0 {
				trough += v
				nt++
			}
		}
	}
	for h := 19; h < 23; h++ {
		for q := 0; q < 4; q++ {
			v := tl.InterarrivalDay.Values[h*4+q]
			if v > 0 {
				evening += v
				ne++
			}
		}
	}
	if nt == 0 || ne == 0 {
		t.Skip("insufficient bins with data")
	}
	trough /= float64(nt)
	evening /= float64(ne)
	if trough <= evening {
		t.Errorf("trough interarrival %v should exceed evening %v", trough, evening)
	}
}

func TestDiversity(t *testing.T) {
	f := getFixture(t)
	d, err := AnalyzeDiversity(f.tr)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumAS < 10 {
		t.Errorf("NumAS = %d", d.NumAS)
	}
	if len(d.ASTransferShare) != d.NumAS {
		t.Errorf("transfer share length %d != NumAS %d", len(d.ASTransferShare), d.NumAS)
	}
	// Shares descending, sum to 1.
	var sum float64
	for i, s := range d.ASTransferShare {
		sum += s
		if i > 0 && s > d.ASTransferShare[i-1] {
			t.Fatal("AS shares not descending")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("AS transfer shares sum to %v", sum)
	}
	if d.CountryShare["BR"] < 0.9 {
		t.Errorf("BR share = %v, want dominant", d.CountryShare["BR"])
	}
	var csum float64
	for _, s := range d.CountryShare {
		csum += s
	}
	if math.Abs(csum-1) > 1e-9 {
		t.Errorf("country shares sum to %v", csum)
	}
}

func TestAnalyzeEmptyInputs(t *testing.T) {
	tr, err := trace.New(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeTransferLayer(tr); err == nil {
		t.Error("empty trace: want error")
	}
	if _, err := AnalyzeDiversity(tr); err == nil {
		t.Error("empty trace: want error")
	}
	set, err := sessions.Sessionize(tr, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeClientLayer(set); err == nil {
		t.Error("empty session set: want error")
	}
	if _, err := AnalyzeSessionLayer(set); err == nil {
		t.Error("empty session set: want error")
	}
}

func TestOffRipples(t *testing.T) {
	sl := &SessionLayer{OffTimes: []float64{
		86000, 86400, 86800, // ~1 day
		172800,         // 2 days
		259200, 260000, // ~3 days
		5000, 40000, // noise
	}}
	r := sl.OffRipples(3, 3600)
	if r[0] < 0.3 {
		t.Errorf("day-1 ripple share = %v", r[0])
	}
	if r[1] <= 0 || r[2] <= 0 {
		t.Errorf("ripples = %v", r)
	}
	empty := &SessionLayer{}
	if got := empty.OffRipples(2, 100); len(got) != 2 || got[0] != 0 {
		t.Errorf("empty ripples = %v", got)
	}
}

func TestInterarrivalDisplay(t *testing.T) {
	got := InterarrivalDisplay([]float64{0, 0.5, 1, 2.9})
	want := []float64{1, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("display[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
