package analyze

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/sessions"
	"repro/internal/stats"
)

// SessionLayer is the Section 4 characterization: session ON/OFF times,
// transfers per session, and intra-session transfer interarrivals.
type SessionLayer struct {
	// OnTimes holds l(i) for every session; OnFit is the lognormal body
	// fit (Figure 11; paper: μ = 5.23553, σ = 1.54432) with OnKS its KS
	// distance.
	OnTimes []float64
	OnFit   dist.Lognormal
	OnKS    float64

	// OffTimes holds f(i) for consecutive same-client sessions; OffFit is
	// the exponential fit (Figure 12; paper: mean = 203,150 s) with OffKS
	// its KS distance.
	OffTimes []float64
	OffFit   dist.Exponential
	OffKS    float64

	// TransfersPerSession holds each session's transfer count;
	// PerSessionFit is its Zipf frequency fit (Figure 13; paper:
	// α = 2.70417).
	TransfersPerSession []int
	PerSessionFit       dist.ZipfFit

	// IntraArrivals holds the within-session transfer interarrival times;
	// IntraFit is the lognormal fit (Figure 14; paper: μ = 4.89991,
	// σ = 1.32074).
	IntraArrivals []float64
	IntraFit      dist.Lognormal
	IntraKS       float64

	// OnByHour is the mean session ON time by starting hour of day
	// (Figure 10); OnHourSlope/OnHourR2 quantify the (weak) correlation.
	OnByHour    [24]float64
	OnHourSlope float64
	OnHourR2    float64
}

// AnalyzeSessionLayer runs the Section 4 pipeline.
func AnalyzeSessionLayer(set *sessions.Set) (*SessionLayer, error) {
	if set.Count() == 0 {
		return nil, fmt.Errorf("%w: empty session set", ErrBadInput)
	}
	out := &SessionLayer{
		OnTimes:       set.OnTimes(),
		OffTimes:      set.OffTimes(),
		IntraArrivals: set.IntraSessionInterarrivals(),
	}
	out.TransfersPerSession = set.TransfersPerSession()

	// Lognormal fit on display values (⌊t+1⌋): the log resolution floor
	// makes sub-second ON times display as 1 s.
	onDisplay := InterarrivalDisplay(out.OnTimes)
	fit, err := dist.FitLognormal(onDisplay)
	if err != nil {
		return nil, fmt.Errorf("session ON fit: %w", err)
	}
	out.OnFit = fit
	if out.OnKS, err = dist.KolmogorovSmirnov(onDisplay, fit.CDF); err != nil {
		return nil, err
	}

	if len(out.OffTimes) > 0 {
		offFit, err := dist.FitExponential(out.OffTimes)
		if err != nil {
			return nil, fmt.Errorf("session OFF fit: %w", err)
		}
		out.OffFit = offFit
		if out.OffKS, err = dist.KolmogorovSmirnov(out.OffTimes, offFit.CDF); err != nil {
			return nil, err
		}
	}

	if out.PerSessionFit, err = dist.FitZipfFrequencies(perSessionFrequencies(out.TransfersPerSession)); err != nil {
		return nil, fmt.Errorf("transfers-per-session fit: %w", err)
	}

	if len(out.IntraArrivals) >= 2 {
		intraDisplay := InterarrivalDisplay(out.IntraArrivals)
		intraFit, err := dist.FitLognormal(intraDisplay)
		if err != nil {
			return nil, fmt.Errorf("intra-session fit: %w", err)
		}
		out.IntraFit = intraFit
		if out.IntraKS, err = dist.KolmogorovSmirnov(intraDisplay, intraFit.CDF); err != nil {
			return nil, err
		}
	}

	out.computeOnByHour(set)
	return out, nil
}

// countFrequencies converts transfer-count observations into a frequency
// vector indexed by value: element k-1 is the fraction of sessions with
// exactly k transfers. This is the x-axis of Figure 13 (frequency versus
// number of transfers per session), which the paper fits to a Zipf law in
// the session count itself.
func countFrequencies(counts []int) []float64 {
	maxV := 0
	for _, c := range counts {
		if c > maxV {
			maxV = c
		}
	}
	freq := make([]float64, maxV)
	for _, c := range counts {
		if c >= 1 {
			freq[c-1]++
		}
	}
	total := float64(len(counts))
	for i := range freq {
		freq[i] /= total
	}
	return freq
}

// perSessionFrequencies prepares the Figure 13 frequency vector for the
// Zipf regression. Bins holding fewer than minObs observations are
// dropped: single-occurrence deep-tail bins flatten the log-log slope at
// small sample sizes (a pure estimation artifact that vanishes at the
// paper's 1.5M-session scale). If the filter leaves too few points the
// unfiltered vector is used.
func perSessionFrequencies(counts []int) []float64 {
	freq := countFrequencies(counts)
	const minObs = 5
	threshold := float64(minObs) / float64(len(counts))
	filtered := make([]float64, len(freq))
	kept := 0
	for i, f := range freq {
		if f >= threshold {
			filtered[i] = f
			kept++
		}
	}
	if kept < 3 {
		return freq
	}
	return filtered
}

// computeOnByHour evaluates mean ON time per session starting hour and
// the regression of ON time on hour (Figure 10's weak correlation).
func (sl *SessionLayer) computeOnByHour(set *sessions.Set) {
	var sums, counts [24]float64
	hours := make([]float64, 0, set.Count())
	ons := make([]float64, 0, set.Count())
	for _, s := range set.Sessions {
		h := int((s.Start % 86400) / 3600)
		if h < 0 {
			h = 0
		}
		on := float64(s.On())
		sums[h] += on
		counts[h]++
		hours = append(hours, float64(h))
		ons = append(ons, on)
	}
	for h := 0; h < 24; h++ {
		if counts[h] > 0 {
			sl.OnByHour[h] = sums[h] / counts[h]
		}
	}
	if slope, _, r2, err := dist.LinearRegression(hours, ons); err == nil {
		sl.OnHourSlope = slope
		sl.OnHourR2 = r2
	}
}

// OffRipples inspects the session OFF distribution for the daily revisit
// ripples the paper observes ("around 1 day, 2 days, 3 days"): it returns
// the fraction of OFF times that land within tolerance of each multiple
// of a day, up to maxDays.
func (sl *SessionLayer) OffRipples(maxDays int, tolerance float64) []float64 {
	out := make([]float64, maxDays)
	if len(sl.OffTimes) == 0 {
		return out
	}
	for _, off := range sl.OffTimes {
		for d := 1; d <= maxDays; d++ {
			center := float64(d) * 86400
			if off >= center-tolerance && off <= center+tolerance {
				out[d-1]++
			}
		}
	}
	for i := range out {
		out[i] /= float64(len(sl.OffTimes))
	}
	return out
}

// OnMarginal returns the ECDF of session ON display values for plotting
// Figure 11's cumulative and CCDF panels.
func (sl *SessionLayer) OnMarginal() *stats.ECDF {
	return stats.NewECDF(InterarrivalDisplay(sl.OnTimes))
}

// OffMarginal returns the ECDF of session OFF times (Figure 12).
func (sl *SessionLayer) OffMarginal() *stats.ECDF {
	return stats.NewECDF(sl.OffTimes)
}
