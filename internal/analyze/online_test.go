package analyze

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// TestOnlineLayerMatchesBatch feeds the shared fixture's sanitized
// trace through the online accumulator and compares every estimator
// against its batch counterpart. Exact quantities must agree exactly;
// sketched ones within their documented error bounds.
func TestOnlineLayerMatchesBatch(t *testing.T) {
	f := getFixture(t)
	tr := f.tr

	ol, err := NewOnlineLayer(tr.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	for _, tf := range tr.Transfers {
		if err := ol.Add(tf); err != nil {
			t.Fatal(err)
		}
	}
	snap := ol.Snapshot()

	// Exact: counts and totals.
	if snap.Transfers != tr.NumTransfers() {
		t.Errorf("transfers: %d vs %d", snap.Transfers, tr.NumTransfers())
	}
	if snap.TotalBytes != tr.TotalBytes() {
		t.Errorf("bytes: %d vs %d", snap.TotalBytes, tr.TotalBytes())
	}
	if snap.ASes != tr.DistinctAS() {
		t.Errorf("ASes: %d vs %d", snap.ASes, tr.DistinctAS())
	}
	if snap.Objects != tr.DistinctObjects() {
		t.Errorf("objects: %d vs %d", snap.Objects, tr.DistinctObjects())
	}

	// Sketched: distinct clients and IPs within ~3%.
	if rel := math.Abs(snap.Clients-float64(tr.NumClients())) / float64(tr.NumClients()); rel > 0.03 {
		t.Errorf("clients: estimate %v vs %d (rel %.4f)", snap.Clients, tr.NumClients(), rel)
	}
	if rel := math.Abs(snap.IPs-float64(tr.DistinctIPs())) / float64(tr.DistinctIPs()); rel > 0.03 {
		t.Errorf("IPs: estimate %v vs %d (rel %.4f)", snap.IPs, tr.DistinctIPs(), rel)
	}

	// Exact: transfer-length moments versus the batch layer's samples.
	tl, err := AnalyzeTransferLayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := stats.Summarize(tl.Lengths)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snap.LengthMean-sum.Mean) > 1e-9*sum.Mean {
		t.Errorf("length mean: %v vs %v", snap.LengthMean, sum.Mean)
	}
	if math.Abs(snap.LengthStddev-sum.Stddev) > 1e-6*sum.Stddev {
		t.Errorf("length stddev: %v vs %v", snap.LengthStddev, sum.Stddev)
	}
	// Sketched: quantiles within ~5%.
	for _, q := range []struct {
		got, want float64
		name      string
	}{
		{snap.LengthP50, sum.Median, "p50"},
		{snap.LengthP90, sum.P90, "p90"},
		{snap.LengthP99, sum.P99, "p99"},
	} {
		if rel := math.Abs(q.got-q.want) / q.want; rel > 0.05 {
			t.Errorf("length %s: %v vs %v (rel %.4f)", q.name, q.got, q.want, rel)
		}
	}

	// Exact: peak 1-second concurrency equals the batch sweep's peak.
	if snap.PeakConcurrency != tl.Concurrency.Peak {
		t.Errorf("peak concurrency: %d vs %d", snap.PeakConcurrency, tl.Concurrency.Peak)
	}

	// Exact: the 15-minute arrival series equals the batch binning.
	starts := make([]int64, tr.NumTransfers())
	for i, tf := range tr.Transfers {
		starts[i] = tf.Start
	}
	batchBins, err := stats.BinCounts(starts, tr.Horizon, TemporalBin)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Arrivals.Values) != len(batchBins.Values) {
		t.Fatalf("bins: %d vs %d", len(snap.Arrivals.Values), len(batchBins.Values))
	}
	for i := range batchBins.Values {
		if snap.Arrivals.Values[i] != batchBins.Values[i] {
			t.Fatalf("bin %d: %v vs %v", i, snap.Arrivals.Values[i], batchBins.Values[i])
		}
	}
	if len(snap.ArrivalsDay.Values) != 96 {
		t.Errorf("daily fold has %d phases, want 96", len(snap.ArrivalsDay.Values))
	}
}

func TestOnlineLayerRejectsDisorder(t *testing.T) {
	ol, err := NewOnlineLayer(1000)
	if err != nil {
		t.Fatal(err)
	}
	f := getFixture(t)
	if err := ol.Add(f.tr.Transfers[1]); err != nil {
		t.Fatal(err)
	}
	early := f.tr.Transfers[1]
	early.Start -= 10
	if err := ol.Add(early); err == nil {
		t.Error("out-of-order transfer accepted")
	}
	if _, err := NewOnlineLayer(0); err == nil {
		t.Error("zero horizon accepted")
	}
}
