package analyze

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestDetectBandwidthModes(t *testing.T) {
	// Three sharp spikes plus a diffuse low mode.
	rng := rand.New(rand.NewSource(1))
	var bws []float64
	add := func(center float64, n int) {
		for i := 0; i < n; i++ {
			bws = append(bws, center*(1+0.03*(2*rng.Float64()-1)))
		}
	}
	add(28800, 400)
	add(56000, 300)
	add(256000, 200)
	for i := 0; i < 100; i++ { // congestion continuum
		bws = append(bws, math.Exp(8+1.2*rng.NormFloat64()))
	}
	modes, congestion := detectBandwidthModes(bws)
	if len(modes) < 3 {
		t.Fatalf("modes = %v", modes)
	}
	found := map[int]bool{}
	for _, m := range modes {
		for _, want := range []float64{28800, 56000, 256000} {
			if math.Abs(m.Bps-want)/want < 0.1 {
				found[int(want)] = true
			}
		}
	}
	if len(found) != 3 {
		t.Errorf("spikes found = %v (modes %v)", found, modes)
	}
	if congestion < 0.05 || congestion > 0.15 {
		t.Errorf("congestion = %v, want ~0.1", congestion)
	}
}

func TestDetectBandwidthModesEmpty(t *testing.T) {
	modes, c := detectBandwidthModes(nil)
	if modes != nil || c != 0 {
		t.Error("empty input should return nothing")
	}
}

func TestDetectBandwidthModesSingleCluster(t *testing.T) {
	bws := []float64{100, 101, 102, 103}
	modes, congestion := detectBandwidthModes(bws)
	if len(modes) != 1 {
		t.Fatalf("modes = %v", modes)
	}
	if math.Abs(modes[0].Share-1) > 1e-9 {
		t.Errorf("share = %v", modes[0].Share)
	}
	if congestion != 0 {
		t.Errorf("congestion = %v", congestion)
	}
}

func TestFitInterarrivalTailsShortInput(t *testing.T) {
	tl := &TransferLayer{Interarrivals: []float64{1, 2, 3}}
	if err := tl.fitInterarrivalTails(); err != nil {
		t.Fatal(err)
	}
	if tl.TailBody.Points != 0 || tl.TailFar.Points != 0 {
		t.Error("short input should not produce fits")
	}
}

func TestAnalyzeTransferLayerSyntheticTwoRegimes(t *testing.T) {
	// Construct interarrivals with an explicit two-regime structure:
	// dense exponential-ish body plus a power-law far tail.
	rng := rand.New(rand.NewSource(2))
	var transfers []trace.Transfer
	tcur := int64(0)
	for i := 0; i < 30000; i++ {
		var gap int64
		if rng.Float64() < 0.97 {
			// Body: Pareto(xm=2, alpha=3), truncated at 100.
			g := 2 / math.Pow(rng.Float64(), 1/3.0)
			if g > 100 {
				g = 100
			}
			gap = int64(g)
		} else {
			// Far tail: Pareto(xm=100, alpha=0.8), truncated.
			gap = int64(100 / math.Pow(rng.Float64(), 1/0.8))
			if gap > 50000 {
				gap = 50000
			}
		}
		tcur += gap
		transfers = append(transfers, trace.Transfer{
			Client: i % 500, Start: tcur, Duration: 10 + int64(rng.Intn(100)),
			IP: "1.1.1.1", Country: "BR", AS: 1, Bandwidth: 56000, Bytes: 1,
		})
	}
	tr, err := trace.New(tcur+1000, transfers)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := AnalyzeTransferLayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	if tl.TailBody.Points == 0 || tl.TailFar.Points == 0 {
		t.Fatal("expected both tail fits")
	}
	if tl.TailBody.Alpha <= tl.TailFar.Alpha {
		t.Errorf("body alpha %v should exceed far alpha %v (paper's two-regime ordering)",
			tl.TailBody.Alpha, tl.TailFar.Alpha)
	}
}
