package analyze

import (
	"math"
	"testing"
)

func TestConcurrencyBasic(t *testing.T) {
	// Two overlapping intervals and one detached.
	intervals := []Interval{
		{Start: 0, End: 10},
		{Start: 5, End: 15},
		{Start: 100, End: 110},
	}
	rep, err := Concurrency(intervals, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Peak != 2 {
		t.Errorf("Peak = %d, want 2", rep.Peak)
	}
	m := rep.Marginal
	// Seconds at concurrency 2: [5,10) = 5 s out of 200.
	if got := 1 - m.CDF(1); math.Abs(got-5.0/200) > 1e-9 {
		t.Errorf("P[c>1] = %v, want 0.025", got)
	}
	// Active seconds: [0,15) + [100,110) = 25.
	if got := m.CCDF(1); math.Abs(got-25.0/200) > 1e-9 {
		t.Errorf("P[c>=1] = %v, want 0.125", got)
	}
}

func TestConcurrencyClipsToHorizon(t *testing.T) {
	intervals := []Interval{
		{Start: -50, End: 10},
		{Start: 90, End: 500},
		{Start: 300, End: 400}, // entirely outside
	}
	rep, err := Concurrency(intervals, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Peak != 1 {
		t.Errorf("Peak = %d, want 1", rep.Peak)
	}
}

func TestConcurrencyZeroLengthInterval(t *testing.T) {
	rep, err := Concurrency([]Interval{{Start: 5, End: 5}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Peak != 1 {
		t.Errorf("zero-length interval should occupy one second; peak = %d", rep.Peak)
	}
}

func TestConcurrencyErrors(t *testing.T) {
	if _, err := Concurrency(nil, 100); err == nil {
		t.Error("no intervals: want error")
	}
	if _, err := Concurrency([]Interval{{0, 1}}, 0); err == nil {
		t.Error("zero horizon: want error")
	}
}

func TestConcurrencyBinnedMeans(t *testing.T) {
	// One interval covering the first 450 seconds: first 900-s bin mean
	// should be 0.5.
	rep, err := Concurrency([]Interval{{Start: 0, End: 450}}, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Binned.Values) != 2 {
		t.Fatalf("bins = %d", len(rep.Binned.Values))
	}
	if math.Abs(rep.Binned.Values[0]-0.5) > 1e-9 {
		t.Errorf("bin 0 mean = %v, want 0.5", rep.Binned.Values[0])
	}
	if rep.Binned.Values[1] != 0 {
		t.Errorf("bin 1 mean = %v, want 0", rep.Binned.Values[1])
	}
}

func TestConcurrencyDailyFold(t *testing.T) {
	// Two days with identical activity: the day fold must equal one day's
	// pattern exactly.
	day := int64(86400)
	intervals := []Interval{
		{Start: 3600, End: 7200},
		{Start: day + 3600, End: day + 7200},
	}
	rep, err := Concurrency(intervals, 2*day)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DayFold.Values) != 96 {
		t.Fatalf("day fold bins = %d, want 96", len(rep.DayFold.Values))
	}
	// Bins 4..7 (seconds 3600..7200) should be 1, rest 0.
	for i, v := range rep.DayFold.Values {
		want := 0.0
		if i >= 4 && i < 8 {
			want = 1.0
		}
		if math.Abs(v-want) > 1e-9 {
			t.Errorf("day fold bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestConcurrencyACFDailyPeak(t *testing.T) {
	// Periodic activity with a 1-day period over 6 days: the ACF at lag
	// 1440 minutes must be strongly positive (Figure 8).
	day := int64(86400)
	var intervals []Interval
	for d := int64(0); d < 6; d++ {
		intervals = append(intervals, Interval{
			Start: d*day + 18*3600,
			End:   d*day + 23*3600,
		})
	}
	rep, err := Concurrency(intervals, 6*day)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ACF) < 1441 {
		t.Fatalf("ACF has %d lags", len(rep.ACF))
	}
	if rep.ACF[0] < 0.999 {
		t.Errorf("ACF(0) = %v", rep.ACF[0])
	}
	if rep.ACF[1440] < 0.7 {
		t.Errorf("ACF(1440 min) = %v, want strong daily peak", rep.ACF[1440])
	}
	if rep.ACF[720] > 0 {
		t.Errorf("ACF(720 min) = %v, want negative at half-day", rep.ACF[720])
	}
}

func TestConcurrencyShortTraceSkipsWeekFold(t *testing.T) {
	rep, err := Concurrency([]Interval{{0, 100}}, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.WeekFold.Values) != 0 {
		t.Error("week fold should be empty for a one-day trace")
	}
	if len(rep.DayFold.Values) == 0 {
		t.Error("day fold should exist for a one-day trace")
	}
}

func TestTransferIntervals(t *testing.T) {
	iv, err := TransferIntervals([]int64{1, 2}, []int64{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if iv[0] != (Interval{1, 5}) || iv[1] != (Interval{2, 9}) {
		t.Errorf("intervals = %v", iv)
	}
	if _, err := TransferIntervals([]int64{1}, []int64{}); err == nil {
		t.Error("length mismatch: want error")
	}
}
