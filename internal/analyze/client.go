package analyze

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/sessions"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ClientLayer is the Section 3 characterization: the client population's
// concurrency profile, interarrival process, and interest profile.
type ClientLayer struct {
	// Concurrency is c(t), the number of clients with an ongoing session
	// (Figures 3, 4 and 8).
	Concurrency *ConcurrencyReport

	// Interarrivals are the gaps a(i) = t(i+1) - t(i) between session
	// arrivals of different clients, in seconds (Figure 5). Zero gaps are
	// kept; display code applies the ⌊t+1⌋ convention.
	Interarrivals []float64

	// TransfersPerClient and SessionsPerClient are the per-client access
	// counts behind the interest profile.
	TransfersPerClient []int
	SessionsPerClient  []int

	// InterestTransfers is the Zipf fit of transfer frequency versus
	// client rank (Figure 7 left; paper: α = 0.7194).
	InterestTransfers dist.ZipfFit
	// InterestSessions is the Zipf fit of session frequency versus client
	// rank (Figure 7 right; paper: α = 0.4704).
	InterestSessions dist.ZipfFit
}

// AnalyzeClientLayer runs the Section 3 pipeline on a sessionized trace.
func AnalyzeClientLayer(set *sessions.Set) (*ClientLayer, error) {
	tr := set.Trace()
	if tr == nil || set.Count() == 0 {
		return nil, fmt.Errorf("%w: empty session set", ErrBadInput)
	}

	// c(t): a client is active while one of its sessions is ongoing.
	intervals := make([]Interval, set.Count())
	for i, s := range set.Sessions {
		intervals[i] = Interval{Start: s.Start, End: s.End}
	}
	conc, err := Concurrency(intervals, tr.Horizon)
	if err != nil {
		return nil, err
	}

	out := &ClientLayer{
		Concurrency:   conc,
		Interarrivals: ClientInterarrivals(set),
	}

	// Interest profile: per-client counts of transfers and sessions.
	byClient := tr.ByClient()
	out.TransfersPerClient = make([]int, 0, len(byClient))
	for _, idxs := range byClient {
		out.TransfersPerClient = append(out.TransfersPerClient, len(idxs))
	}
	sessCounts := make(map[int]int)
	for _, s := range set.Sessions {
		sessCounts[s.Client]++
	}
	out.SessionsPerClient = make([]int, 0, len(sessCounts))
	for _, c := range sessCounts {
		out.SessionsPerClient = append(out.SessionsPerClient, c)
	}

	if out.InterestTransfers, err = dist.FitZipfCounts(out.TransfersPerClient); err != nil {
		return nil, fmt.Errorf("interest (transfers): %w", err)
	}
	if out.InterestSessions, err = dist.FitZipfCounts(out.SessionsPerClient); err != nil {
		return nil, fmt.Errorf("interest (sessions): %w", err)
	}
	return out, nil
}

// ClientInterarrivals computes a(i) = t(i+1) - t(i) over session arrivals,
// skipping consecutive pairs that belong to the same client per the
// paper's definition ("where sessions i and i+1 belong to different
// clients").
func ClientInterarrivals(set *sessions.Set) []float64 {
	type arrival struct {
		t      int64
		client int
	}
	arr := make([]arrival, set.Count())
	for i, s := range set.Sessions {
		arr[i] = arrival{t: s.Start, client: s.Client}
	}
	sort.Slice(arr, func(i, j int) bool { return arr[i].t < arr[j].t })
	out := make([]float64, 0, len(arr))
	for i := 1; i < len(arr); i++ {
		if arr[i].client == arr[i-1].client {
			continue
		}
		out = append(out, float64(arr[i].t-arr[i-1].t))
	}
	return out
}

// InterarrivalDisplay returns the interarrivals shifted by the paper's
// ⌊t+1⌋ display convention, for log-scale plotting and fitting.
func InterarrivalDisplay(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = stats.LogDisplayValue(x)
	}
	return out
}

// Diversity is the Figure 2 characterization of the client population's
// topological and geographical spread.
type Diversity struct {
	// ASTransferShare is the descending share of transfers per AS
	// (Figure 2 left).
	ASTransferShare []float64
	// ASIPShare is the descending share of distinct client IPs per AS
	// (Figure 2 center).
	ASIPShare []float64
	// CountryShare maps country code to its share of transfers
	// (Figure 2 right).
	CountryShare map[string]float64
	// NumAS is the number of distinct ASes observed.
	NumAS int
	// ObjectShare is the descending share of transfers per live object —
	// the feed-preference split (Table 1 observes two feeds). Element 0
	// is the dominant feed's share; calibrate.Fit reads FeedPreference
	// off it.
	ObjectShare []float64
}

// AnalyzeDiversity computes the Figure 2 series from a trace.
func AnalyzeDiversity(tr *trace.Trace) (*Diversity, error) {
	if tr.NumTransfers() == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadInput)
	}
	transferPerAS := make(map[int]int)
	ipsPerAS := make(map[int]map[string]struct{})
	countryCount := make(map[string]int)
	objectCount := make(map[int]int)
	for _, t := range tr.Transfers {
		transferPerAS[t.AS]++
		objectCount[t.Object]++
		set := ipsPerAS[t.AS]
		if set == nil {
			set = make(map[string]struct{})
			ipsPerAS[t.AS] = set
		}
		set[t.IP] = struct{}{}
		countryCount[t.Country]++
	}

	d := &Diversity{NumAS: len(transferPerAS), CountryShare: make(map[string]float64, len(countryCount))}
	tCounts := make([]int, 0, len(transferPerAS))
	for _, c := range transferPerAS {
		tCounts = append(tCounts, c)
	}
	d.ASTransferShare = stats.RankFrequencies(tCounts)

	ipCounts := make([]int, 0, len(ipsPerAS))
	for _, set := range ipsPerAS {
		ipCounts = append(ipCounts, len(set))
	}
	d.ASIPShare = stats.RankFrequencies(ipCounts)

	total := float64(tr.NumTransfers())
	for c, n := range countryCount {
		d.CountryShare[c] = float64(n) / total
	}

	oCounts := make([]int, 0, len(objectCount))
	for _, c := range objectCount {
		oCounts = append(oCounts, c)
	}
	d.ObjectShare = stats.RankFrequencies(oCounts)
	return d, nil
}
