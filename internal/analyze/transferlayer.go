package analyze

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TailSplit is the boundary between Figure 17's two interarrival tail
// regimes: α ≈ 2.8 below 100 seconds, α ≈ 1 above.
const TailSplit = 100.0

// TransferLayer is the Section 5 characterization: transfer concurrency,
// interarrivals (with the two-regime tail), lengths, and bandwidth.
type TransferLayer struct {
	// Concurrency is the number of simultaneously active transfers
	// (Figures 15 and 16).
	Concurrency *ConcurrencyReport

	// Interarrivals are the gaps between consecutive transfer starts
	// across all clients (Figure 17), in display form ⌊t+1⌋.
	Interarrivals []float64
	// TailBody and TailFar are the two power-law regimes of the
	// interarrival CCDF (Figure 17 right; paper: α≈2.8 then α≈1).
	TailBody dist.TailFit
	TailFar  dist.TailFit

	// InterarrivalBinned is the mean interarrival per 15-minute bin over
	// the trace, with weekly and daily folds (Figure 18).
	InterarrivalBinned stats.BinnedSeries
	InterarrivalWeek   stats.BinnedSeries
	InterarrivalDay    stats.BinnedSeries

	// Lengths are the transfer lengths l(j) in display form; LengthFit is
	// the lognormal fit (Figure 19; paper: μ = 4.383921, σ = 1.427247).
	Lengths   []float64
	LengthFit dist.Lognormal
	LengthKS  float64

	// Bandwidths are the per-transfer average bandwidths (bits/second);
	// BandwidthModes are the detected client-bound spikes; CongestionFrac
	// estimates the congestion-bound share (Figure 20; paper: ~10%).
	Bandwidths     []float64
	BandwidthModes []BandwidthMode
	CongestionFrac float64
}

// BandwidthMode is one detected spike in the bandwidth histogram.
type BandwidthMode struct {
	Bps   float64 // mode center
	Share float64 // fraction of transfers in the spike
}

// AnalyzeTransferLayer runs the Section 5 pipeline on a trace.
func AnalyzeTransferLayer(tr *trace.Trace) (*TransferLayer, error) {
	if tr.NumTransfers() == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadInput)
	}
	out := &TransferLayer{}

	// Concurrency of transfers.
	intervals := make([]Interval, tr.NumTransfers())
	starts := make([]int64, tr.NumTransfers())
	for i, t := range tr.Transfers {
		intervals[i] = Interval{Start: t.Start, End: t.End()}
		starts[i] = t.Start
	}
	conc, err := Concurrency(intervals, tr.Horizon)
	if err != nil {
		return nil, err
	}
	out.Concurrency = conc

	// Interarrivals across all transfers (trace is start-sorted).
	raw := make([]float64, 0, tr.NumTransfers()-1)
	for i := 1; i < len(starts); i++ {
		raw = append(raw, float64(starts[i]-starts[i-1]))
	}
	out.Interarrivals = InterarrivalDisplay(raw)
	if err := out.fitInterarrivalTails(); err != nil {
		return nil, err
	}
	if err := out.binInterarrivals(starts, raw, tr.Horizon); err != nil {
		return nil, err
	}

	// Transfer lengths.
	lengths := make([]float64, tr.NumTransfers())
	for i, t := range tr.Transfers {
		lengths[i] = stats.LogDisplayValue(float64(t.Duration))
	}
	out.Lengths = lengths
	fit, err := dist.FitLognormal(lengths)
	if err != nil {
		return nil, fmt.Errorf("transfer length fit: %w", err)
	}
	out.LengthFit = fit
	if out.LengthKS, err = dist.KolmogorovSmirnov(lengths, fit.CDF); err != nil {
		return nil, err
	}

	// Bandwidth modes.
	out.Bandwidths = make([]float64, tr.NumTransfers())
	for i, t := range tr.Transfers {
		out.Bandwidths[i] = float64(t.Bandwidth)
	}
	out.BandwidthModes, out.CongestionFrac = detectBandwidthModes(out.Bandwidths)
	return out, nil
}

// fitInterarrivalTails fits the two regimes of the interarrival CCDF.
// Either fit may fail on a short trace; a zero TailFit marks "not
// estimable".
func (tl *TransferLayer) fitInterarrivalTails() error {
	if len(tl.Interarrivals) < 10 {
		return nil
	}
	if fit, err := dist.FitTail(tl.Interarrivals, 2, TailSplit); err == nil {
		tl.TailBody = fit
	}
	maxV := 0.0
	for _, x := range tl.Interarrivals {
		if x > maxV {
			maxV = x
		}
	}
	if maxV > TailSplit*2 {
		if fit, err := dist.FitTail(tl.Interarrivals, TailSplit, maxV); err == nil {
			tl.TailFar = fit
		}
	}
	return nil
}

// binInterarrivals computes the Figure 18 temporal views: each
// interarrival sample is attributed to the 15-minute bin of the earlier
// transfer's start.
func (tl *TransferLayer) binInterarrivals(starts []int64, raw []float64, horizon int64) error {
	if len(raw) == 0 {
		return nil
	}
	// Display convention: round up to the closest second, minimum 1.
	vals := make([]float64, len(raw))
	for i, v := range raw {
		vals[i] = stats.LogDisplayValue(v)
	}
	binned, err := stats.BinMeans(starts[:len(raw)], vals, horizon, TemporalBin)
	if err != nil {
		return err
	}
	tl.InterarrivalBinned = binned
	if week, err := binned.FoldModulo(7 * 86400); err == nil {
		tl.InterarrivalWeek = week
	}
	if day, err := binned.FoldModulo(86400); err == nil {
		tl.InterarrivalDay = day
	}
	return nil
}

// detectBandwidthModes finds spikes in the bandwidth distribution: values
// are clustered within a ±5% relative window; clusters holding at least
// 1% of transfers count as client-bound modes. The congestion share is
// the fraction of transfers below half the smallest mode center.
func detectBandwidthModes(bws []float64) ([]BandwidthMode, float64) {
	if len(bws) == 0 {
		return nil, 0
	}
	sorted := make([]float64, len(bws))
	copy(sorted, bws)
	sort.Float64s(sorted)

	n := float64(len(sorted))
	var modes []BandwidthMode
	i := 0
	for i < len(sorted) {
		center := sorted[i]
		j := i
		for j < len(sorted) && sorted[j] <= center*1.10 {
			j++
		}
		share := float64(j-i) / n
		if share >= 0.01 && center > 0 {
			// Refine the center to the cluster median.
			modes = append(modes, BandwidthMode{
				Bps:   sorted[(i+j)/2],
				Share: share,
			})
		}
		i = j
	}
	if len(modes) == 0 {
		return modes, 0
	}
	// Everything outside a client-bound spike is congestion-bound: the
	// Figure 20 left mode is a continuum, not a spike, so it is exactly
	// the probability mass the spikes do not explain.
	var spikeMass float64
	for _, m := range modes {
		spikeMass += m.Share
	}
	congestion := 1 - spikeMass
	if congestion < 0 {
		congestion = 0
	}
	return modes, congestion
}
