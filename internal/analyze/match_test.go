package analyze

import (
	"testing"

	"repro/internal/trace"
)

func matchTrace(t *testing.T, rows ...[3]int64) *trace.Trace {
	t.Helper()
	transfers := make([]trace.Transfer, 0, len(rows))
	for _, r := range rows {
		transfers = append(transfers, trace.Transfer{
			Client:   int(r[0]),
			IP:       "0.0.0.0",
			AS:       1,
			Country:  "BR",
			Start:    r[1],
			Duration: r[2],
			Bytes:    1,
		})
	}
	tr, err := trace.New(86400, transfers)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCompareTracesIdentical(t *testing.T) {
	rows := [][3]int64{
		{0, 100, 50}, {0, 200, 50}, // client 0, one session
		{0, 10000, 50}, // client 0, second session at timeout 1500
		{1, 300, 100},  // client 1, one session
	}
	a := matchTrace(t, rows...)
	b := matchTrace(t, rows...)
	rep, err := CompareTraces(a, b, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match() {
		t.Fatalf("identical traces mismatch:\n%s", rep)
	}
	if rep.OfferedSessions != 3 || rep.OfferedClients != 2 {
		t.Fatalf("sessionization off: %+v", rep)
	}
}

// TestCompareTracesIdentityAgnostic: renumbering clients (as the served
// trace does via first-seen player order) must not break the match.
func TestCompareTracesIdentityAgnostic(t *testing.T) {
	a := matchTrace(t, [3]int64{0, 100, 50}, [3]int64{0, 200, 50}, [3]int64{1, 300, 100})
	b := matchTrace(t, [3]int64{7, 100, 50}, [3]int64{7, 200, 50}, [3]int64{2, 300, 100})
	rep, err := CompareTraces(a, b, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match() {
		t.Fatalf("client renumbering broke the match:\n%s", rep)
	}
}

func TestCompareTracesDetectsLostTransfer(t *testing.T) {
	a := matchTrace(t, [3]int64{0, 100, 50}, [3]int64{0, 200, 50}, [3]int64{1, 300, 100})
	b := matchTrace(t, [3]int64{0, 100, 50}, [3]int64{1, 300, 100})
	rep, err := CompareTraces(a, b, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match() {
		t.Fatal("lost transfer not detected")
	}
	if rep.ShapeMismatches == 0 {
		t.Error("shape mismatch not counted")
	}
}

// TestCompareTracesDetectsSessionDrift: same transfers, but one shifted
// across the timeout boundary — transfer counts agree, session counts
// must not.
func TestCompareTracesDetectsSessionDrift(t *testing.T) {
	a := matchTrace(t, [3]int64{0, 100, 50}, [3]int64{0, 1000, 50})  // gap 850 < 1500: one session
	b := matchTrace(t, [3]int64{0, 100, 50}, [3]int64{0, 10000, 50}) // gap: two sessions
	rep, err := CompareTraces(a, b, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match() {
		t.Fatal("session drift not detected")
	}
	if rep.OfferedSessions == rep.ServedSessions {
		t.Error("session totals should differ")
	}
}

func TestCompareTracesBadTimeout(t *testing.T) {
	a := matchTrace(t, [3]int64{0, 100, 50})
	if _, err := CompareTraces(a, a, 0); err == nil {
		t.Fatal("zero timeout accepted")
	}
}
