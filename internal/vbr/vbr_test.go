package vbr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Sources: 0, Alpha: 1.4, MeanOn: 1, MeanOff: 1},
		{Sources: 4, Alpha: 1.0, MeanOn: 1, MeanOff: 1},
		{Sources: 4, Alpha: 2.0, MeanOn: 1, MeanOff: 1},
		{Sources: 4, Alpha: 1.4, MeanOn: 0, MeanOff: 1},
		{Sources: 4, Alpha: 1.4, MeanOn: 1, MeanOff: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestExpectedHurst(t *testing.T) {
	c := Config{Alpha: 1.4}
	if math.Abs(c.ExpectedHurst()-0.8) > 1e-12 {
		t.Errorf("H = %v, want 0.8", c.ExpectedHurst())
	}
}

func TestActiveSourcesStationaryMean(t *testing.T) {
	cfg := DefaultConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	series := g.ActiveSources(20000, rng)
	if len(series) != 20000 {
		t.Fatalf("len = %d", len(series))
	}
	// Stationary mean: Sources * MeanOn / (MeanOn + MeanOff) = 64/3.
	want := float64(cfg.Sources) * cfg.MeanOn / (cfg.MeanOn + cfg.MeanOff)
	got := stats.Mean(series)
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("mean active sources = %v, want ~%v", got, want)
	}
	for _, v := range series {
		if v < 0 || v > float64(cfg.Sources) {
			t.Fatalf("active count %v outside [0, %d]", v, cfg.Sources)
		}
	}
}

func TestAggregateIsSelfSimilar(t *testing.T) {
	// The headline property (Crovella & Bestavros, the paper's [14]):
	// heavy-tailed ON/OFF aggregation must yield H well above the 0.5 of
	// a memoryless process, approaching (3-alpha)/2.
	cfg := DefaultConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	series := g.ActiveSources(1<<16, rng)
	h, err := stats.VarianceTimeHurst(series, stats.PowersOfTwo(1024))
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.65 {
		t.Errorf("aggregate H = %v, want clearly persistent (expected ~%v)", h, cfg.ExpectedHurst())
	}

	// The Poisson reference with the same mean must sit near 0.5.
	ref := cfg.PoissonReference(1<<16, rng)
	hRef, err := stats.VarianceTimeHurst(ref, stats.PowersOfTwo(1024))
	if err != nil {
		t.Fatal(err)
	}
	if hRef > 0.6 {
		t.Errorf("Poisson reference H = %v, want ~0.5", hRef)
	}
	if h <= hRef+0.1 {
		t.Errorf("aggregate H (%v) should clearly exceed reference H (%v)", h, hRef)
	}
}

func TestHeavierTailsRaiseHurst(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	estimate := func(alpha float64) float64 {
		cfg := DefaultConfig()
		cfg.Alpha = alpha
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		series := g.ActiveSources(1<<15, rng)
		h, err := stats.VarianceTimeHurst(series, stats.PowersOfTwo(512))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	heavy := estimate(1.2)  // expected H = 0.9
	light := estimate(1.85) // expected H = 0.575
	if heavy <= light {
		t.Errorf("H(alpha=1.2)=%v should exceed H(alpha=1.85)=%v", heavy, light)
	}
}

func TestBitrateSeries(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const meanBps = 110000.0
	series, err := g.BitrateSeries(10000, meanBps, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := stats.Mean(series)
	if math.Abs(got-meanBps)/meanBps > 0.05 {
		t.Errorf("mean bitrate = %v, want ~%v", got, meanBps)
	}
	for _, v := range series {
		if v < meanBps*0.1-1e-9 {
			t.Fatalf("bitrate %v below the 10%% floor", v)
		}
	}
	if _, err := g.BitrateSeries(100, 0, rng); err == nil {
		t.Error("zero mean bitrate: want error")
	}
}

func TestBytesOver(t *testing.T) {
	series := []float64{800, 800, 1600}
	got, err := BytesOver(series, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 400 {
		t.Errorf("bytes = %d, want 400", got)
	}
	if _, err := BytesOver(series, 2, 2); err == nil {
		t.Error("empty range: want error")
	}
	if _, err := BytesOver(series, -1, 2); err == nil {
		t.Error("negative start: want error")
	}
	if _, err := BytesOver(series, 0, 9); err == nil {
		t.Error("end beyond series: want error")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	gen := func() []float64 {
		g, err := NewGenerator(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return g.ActiveSources(2000, rand.New(rand.NewSource(99)))
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic under fixed seed")
		}
	}
}

func TestNewGeneratorRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha = 3
	if _, err := NewGenerator(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}
