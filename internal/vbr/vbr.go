// Package vbr synthesizes variable-bit-rate content traffic.
//
// GISMO (the workload generator the paper extends) models streaming
// object content with "self-similar variable bit-rate" encoding, a
// feature the paper notes is "still applicable to the synthesis of live
// media workloads" (Section 6.2). This package provides that substrate
// using the generative mechanism of Crovella & Bestavros (reference [14]
// in the paper, discussed in Section 5.3): aggregating many ON/OFF
// sources whose ON and OFF periods are heavy-tailed (Pareto) produces a
// long-range-dependent (self-similar) aggregate with Hurst parameter
// H = (3 - alpha) / 2.
//
// A Generator emits a per-second bit-rate series for one live stream:
// the mean encoding rate modulated by the normalized ON/OFF aggregate —
// scene activity (many "active" sub-sources: motion, audio bursts,
// camera switches) maps naturally onto the ON/OFF abstraction.
package vbr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
)

// ErrBadConfig reports invalid generator parameters.
var ErrBadConfig = errors.New("vbr: bad config")

// Config parameterizes the ON/OFF aggregate.
type Config struct {
	// Sources is the number of independent ON/OFF sub-sources.
	Sources int
	// Alpha is the Pareto tail index of ON and OFF period lengths in
	// (1, 2): heavier tails (smaller alpha) give stronger long-range
	// dependence, H = (3 - alpha) / 2.
	Alpha float64
	// MeanOn and MeanOff are the mean ON and OFF period lengths in
	// seconds (the Pareto scale is derived from them).
	MeanOn, MeanOff float64
}

// DefaultConfig returns a generator calibrated for H ≈ 0.8 (alpha = 1.4),
// the degree of self-similarity commonly reported for compressed video.
func DefaultConfig() Config {
	return Config{
		Sources: 64,
		Alpha:   1.4,
		MeanOn:  5,
		MeanOff: 10,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Sources < 1 {
		return fmt.Errorf("%w: %d sources", ErrBadConfig, c.Sources)
	}
	if c.Alpha <= 1 || c.Alpha >= 2 {
		return fmt.Errorf("%w: alpha %v outside (1, 2)", ErrBadConfig, c.Alpha)
	}
	if c.MeanOn <= 0 || c.MeanOff <= 0 {
		return fmt.Errorf("%w: mean ON %v / OFF %v", ErrBadConfig, c.MeanOn, c.MeanOff)
	}
	return nil
}

// ExpectedHurst returns the asymptotic Hurst parameter of the aggregate,
// H = (3 - alpha) / 2.
func (c *Config) ExpectedHurst() float64 {
	return (3 - c.Alpha) / 2
}

// Generator produces self-similar activity series.
type Generator struct {
	cfg     Config
	on, off dist.Pareto
}

// NewGenerator validates the config and derives the Pareto period laws:
// a Pareto with tail index alpha and scale xm has mean alpha*xm/(alpha-1),
// so xm = mean * (alpha-1) / alpha.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	on, err := dist.NewPareto(cfg.MeanOn*(cfg.Alpha-1)/cfg.Alpha, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	off, err := dist.NewPareto(cfg.MeanOff*(cfg.Alpha-1)/cfg.Alpha, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, on: on, off: off}, nil
}

// ActiveSources generates the per-second count of active (ON) sources
// over n seconds: the raw self-similar aggregate.
func (g *Generator) ActiveSources(n int, rng *rand.Rand) []float64 {
	if n <= 0 {
		return nil
	}
	agg := make([]float64, n)
	for s := 0; s < g.cfg.Sources; s++ {
		g.addSource(agg, rng)
	}
	return agg
}

// addSource overlays one ON/OFF source onto the aggregate. Each source
// starts at a random phase (ON or OFF with stationary probability) so the
// aggregate is stationary from t = 0.
func (g *Generator) addSource(agg []float64, rng *rand.Rand) {
	n := len(agg)
	pOn := g.cfg.MeanOn / (g.cfg.MeanOn + g.cfg.MeanOff)
	on := rng.Float64() < pOn
	t := 0.0
	// Burn a partial first period for phase randomization.
	var period float64
	if on {
		period = g.on.Sample(rng) * rng.Float64()
	} else {
		period = g.off.Sample(rng) * rng.Float64()
	}
	for t < float64(n) {
		if on {
			// Mark the seconds in [floor(t), floor(t+period)): with random
			// phases the floor truncation is unbiased on average.
			lo := int(t)
			hi := int(t + period)
			if hi > n {
				hi = n
			}
			for s := lo; s < hi; s++ {
				agg[s]++
			}
		}
		t += period
		on = !on
		if on {
			period = g.on.Sample(rng)
		} else {
			period = g.off.Sample(rng)
		}
	}
}

// BitrateSeries generates a per-second bit-rate series for a stream with
// the given mean encoding rate (bits/second): the ON/OFF aggregate is
// normalized to mean 1 and scaled, with a floor at 10% of the mean so the
// stream never stalls entirely.
func (g *Generator) BitrateSeries(n int, meanBps float64, rng *rand.Rand) ([]float64, error) {
	if meanBps <= 0 {
		return nil, fmt.Errorf("%w: mean bitrate %v", ErrBadConfig, meanBps)
	}
	agg := g.ActiveSources(n, rng)
	if len(agg) == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrBadConfig)
	}
	var sum float64
	for _, v := range agg {
		sum += v
	}
	mean := sum / float64(len(agg))
	if mean == 0 {
		// Degenerate: no source ever ON; emit the floor.
		out := make([]float64, n)
		for i := range out {
			out[i] = meanBps * 0.1
		}
		return out, nil
	}
	out := make([]float64, n)
	for i, v := range agg {
		r := meanBps * v / mean
		if floor := meanBps * 0.1; r < floor {
			r = floor
		}
		out[i] = r
	}
	return out, nil
}

// BytesOver integrates a bit-rate series over [start, end) seconds and
// returns the byte count — how the simulator would account a transfer
// overlapping the series.
func BytesOver(series []float64, start, end int) (int64, error) {
	if start < 0 || end > len(series) || start >= end {
		return 0, fmt.Errorf("%w: range [%d, %d) over %d samples", ErrBadConfig, start, end, len(series))
	}
	var bits float64
	for i := start; i < end; i++ {
		bits += series[i]
	}
	return int64(bits / 8), nil
}

// PoissonReference generates a memoryless (short-range-dependent)
// reference series with the same mean as an aggregate of the config's
// sources: each second's value is an independent Poisson-like draw. It
// is the H ≈ 0.5 baseline the self-similarity benchmarks contrast
// against.
func (c *Config) PoissonReference(n int, rng *rand.Rand) []float64 {
	mean := float64(c.Sources) * c.MeanOn / (c.MeanOn + c.MeanOff)
	out := make([]float64, n)
	for i := range out {
		// Normal approximation to Poisson(mean), adequate for mean >> 1.
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}
