package report

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSeriesWriteDat(t *testing.T) {
	s := Series{
		Name: "fig3-ccdf", XLabel: "clients", YLabel: "P[X>=x]",
		Points: []stats.Point{{X: 1, Y: 0.9}, {X: 10, Y: 0.1}},
	}
	var buf bytes.Buffer
	if err := s.WriteDat(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# fig3-ccdf\n") {
		t.Errorf("header missing: %q", out)
	}
	if !strings.Contains(out, "1\t0.9\n") || !strings.Contains(out, "10\t0.1\n") {
		t.Errorf("points missing: %q", out)
	}
}

func TestSeriesSaveDat(t *testing.T) {
	dir := t.TempDir()
	s := Series{Name: "weird name/with:chars", Points: []stats.Point{{X: 1, Y: 2}}}
	path, err := s.SaveDat(filepath.Join(dir, "figs"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "weird_name_with_chars.dat" {
		t.Errorf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "1\t2") {
		t.Error("data not written")
	}
}

func TestFromHelpers(t *testing.T) {
	e := stats.NewECDF([]float64{1, 2, 3})
	if s := FromECDFCDF("c", e); len(s.Points) != 3 || s.YLabel != "P[X <= x]" {
		t.Errorf("FromECDFCDF = %+v", s)
	}
	if s := FromECDFCCDF("cc", e); len(s.Points) != 3 || s.Points[0].Y != 1 {
		t.Errorf("FromECDFCCDF = %+v", s)
	}
	b := stats.BinnedSeries{Width: 900, Values: []float64{5, 7}}
	if s := FromBinned("b", b, "t", "c"); len(s.Points) != 2 || s.Points[1].X != 900 {
		t.Errorf("FromBinned = %+v", s)
	}
	if s := FromRankShare("r", []float64{0.6, 0.4}); s.Points[0] != (stats.Point{X: 1, Y: 0.6}) {
		t.Errorf("FromRankShare = %+v", s)
	}
	if s := FromACF("a", []float64{1, 0.5}); s.Points[1] != (stats.Point{X: 1, Y: 0.5}) {
		t.Errorf("FromACF = %+v", s)
	}
	h, err := stats.NewLinearHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1)
	h.Add(6)
	if s := FromHistogram("h", h); len(s.Points) != 2 || s.Points[0].Y != 0.5 {
		t.Errorf("FromHistogram = %+v", s)
	}
	empty, err := stats.NewLinearHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := FromHistogram("e", empty); len(s.Points) != 0 {
		t.Errorf("empty histogram should give no points: %+v", s)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "Table 1", Headers: []string{"Metric", "Value"}}
	tbl.AddRow("Total # of users", "691889")
	tbl.AddRow("Total # of sessions", "1500000")
	tbl.AddRow("short") // missing cell padded
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Metric", "691889", "short"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestComparisonRelErr(t *testing.T) {
	c := Comparison{Paper: 2, Measured: 2.2}
	if math.Abs(c.RelErr()-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", c.RelErr())
	}
	z := Comparison{Paper: 0, Measured: 0}
	if z.RelErr() != 0 {
		t.Error("0/0 should be 0")
	}
	inf := Comparison{Paper: 0, Measured: 1}
	if !math.IsInf(inf.RelErr(), 1) {
		t.Error("x/0 should be +Inf")
	}
}

func TestMarkdownTable(t *testing.T) {
	var buf bytes.Buffer
	err := MarkdownTable(&buf, []Comparison{
		{Experiment: "Figure 11", Quantity: "mu", Paper: 5.23553, Measured: 5.1, Note: "lognormal"},
		{Experiment: "Table 1", Quantity: "bytes", Paper: 0, Measured: 5, Note: "n/a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| Figure 11 | mu | 5.23553 | 5.1 |") {
		t.Errorf("row missing:\n%s", out)
	}
	if !strings.Contains(out, "| - |") {
		t.Errorf("infinite rel err should render as '-':\n%s", out)
	}
}
