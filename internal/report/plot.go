package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotConfig controls ASCII rendering of a Series.
type PlotConfig struct {
	Width  int  // plot area columns (default 72)
	Height int  // plot area rows (default 20)
	LogX   bool // logarithmic x axis (x must be > 0)
	LogY   bool // logarithmic y axis (y must be > 0)
}

// DefaultPlotConfig is the terminal-friendly default.
func DefaultPlotConfig() PlotConfig {
	return PlotConfig{Width: 72, Height: 20}
}

// Plot renders the series as an ASCII scatter plot — the closest a
// terminal gets to the paper's gnuplot panels. Points that cannot be
// represented on a log axis (non-positive values) are skipped.
func (s Series) Plot(w io.Writer, cfg PlotConfig) error {
	if cfg.Width < 8 {
		cfg.Width = 72
	}
	if cfg.Height < 4 {
		cfg.Height = 20
	}

	type xy struct{ x, y float64 }
	pts := make([]xy, 0, len(s.Points))
	for _, p := range s.Points {
		x, y := p.X, p.Y
		if cfg.LogX {
			if x <= 0 {
				continue
			}
			x = math.Log10(x)
		}
		if cfg.LogY {
			if y <= 0 {
				continue
			}
			y = math.Log10(y)
		}
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			continue
		}
		pts = append(pts, xy{x, y})
	}
	if len(pts) == 0 {
		_, err := fmt.Fprintf(w, "%s: no plottable points\n", s.Name)
		return err
	}

	minX, maxX := pts[0].x, pts[0].x
	minY, maxY := pts[0].y, pts[0].y
	for _, p := range pts {
		minX = math.Min(minX, p.x)
		maxX = math.Max(maxX, p.x)
		minY = math.Min(minY, p.y)
		maxY = math.Max(maxY, p.y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, cfg.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for _, p := range pts {
		col := int((p.x - minX) / (maxX - minX) * float64(cfg.Width-1))
		row := int((p.y - minY) / (maxY - minY) * float64(cfg.Height-1))
		grid[cfg.Height-1-row][col] = '*'
	}

	if _, err := fmt.Fprintf(w, "%s\n", s.Name); err != nil {
		return err
	}
	yLabel := func(v float64) string {
		if cfg.LogY {
			return fmt.Sprintf("%9.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", 9)
		switch i {
		case 0:
			label = yLabel(maxY)
		case cfg.Height - 1:
			label = yLabel(minY)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	xLo, xHi := minX, maxX
	if cfg.LogX {
		xLo, xHi = math.Pow(10, minX), math.Pow(10, maxX)
	}
	footer := fmt.Sprintf("%9.3g%s%.3g", xLo,
		strings.Repeat(" ", maxInt(1, cfg.Width-10)), xHi)
	if _, err := fmt.Fprintf(w, "%s +%s\n%s  %s\n",
		strings.Repeat(" ", 9), strings.Repeat("-", cfg.Width),
		strings.Repeat(" ", 9), footer); err != nil {
		return err
	}
	if s.XLabel != "" || s.YLabel != "" || cfg.LogX || cfg.LogY {
		axes := fmt.Sprintf("x: %s, y: %s", s.XLabel, s.YLabel)
		if cfg.LogX {
			axes += " (log x)"
		}
		if cfg.LogY {
			axes += " (log y)"
		}
		if _, err := fmt.Fprintf(w, "%s  [%s]\n", strings.Repeat(" ", 9), axes); err != nil {
			return err
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
