// Package report renders the reproduction's outputs: plottable data
// series (gnuplot-style .dat files) for every figure, ASCII tables, and
// paper-versus-measured comparison rows for EXPERIMENTS.md.
package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/stats"
)

// ErrBadReport reports malformed report construction.
var ErrBadReport = errors.New("report: bad report")

// Series is one plottable (X, Y) data series.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []stats.Point
}

// FromECDFCDF builds the cumulative panel of a marginal figure.
func FromECDFCDF(name string, e *stats.ECDF) Series {
	return Series{Name: name, XLabel: "x", YLabel: "P[X <= x]", Points: e.CDFPoints()}
}

// FromECDFCCDF builds the complementary panel.
func FromECDFCCDF(name string, e *stats.ECDF) Series {
	return Series{Name: name, XLabel: "x", YLabel: "P[X >= x]", Points: e.CCDFPoints()}
}

// FromBinned renders a binned time series.
func FromBinned(name string, b stats.BinnedSeries, xlabel, ylabel string) Series {
	return Series{Name: name, XLabel: xlabel, YLabel: ylabel, Points: b.Points()}
}

// FromRankShare renders a descending rank-frequency vector as
// (rank, share) points (Figures 2 and 7).
func FromRankShare(name string, shares []float64) Series {
	pts := make([]stats.Point, len(shares))
	for i, s := range shares {
		pts[i] = stats.Point{X: float64(i + 1), Y: s}
	}
	return Series{Name: name, XLabel: "rank", YLabel: "share", Points: pts}
}

// FromHistogram renders a normalized histogram as (bin center, frequency)
// points.
func FromHistogram(name string, h *stats.Histogram) Series {
	centers := h.Centers()
	freqs := h.Frequencies()
	pts := make([]stats.Point, 0, len(centers))
	for i := range centers {
		if freqs == nil {
			break
		}
		pts = append(pts, stats.Point{X: centers[i], Y: freqs[i]})
	}
	return Series{Name: name, XLabel: "x", YLabel: "frequency", Points: pts}
}

// FromACF renders an autocorrelation function as (lag, r) points.
func FromACF(name string, acf []float64) Series {
	pts := make([]stats.Point, len(acf))
	for i, r := range acf {
		pts[i] = stats.Point{X: float64(i), Y: r}
	}
	return Series{Name: name, XLabel: "lag", YLabel: "autocorrelation", Points: pts}
}

// WriteDat writes the series in gnuplot format: a comment header followed
// by "x y" lines.
func (s Series) WriteDat(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n# %s\t%s\n", s.Name, s.XLabel, s.YLabel); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%g\t%g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return nil
}

// SaveDat writes the series to a .dat file under dir, deriving the file
// name from the series name.
func (s Series) SaveDat(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s.Name)
	path := filepath.Join(dir, name+".dat")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := s.WriteDat(f); err != nil {
		return "", err
	}
	return path, nil
}

// Table is a simple ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	var total int
	for _, w := range widths {
		total += w + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// Comparison is one paper-versus-measured row of EXPERIMENTS.md.
type Comparison struct {
	Experiment string // e.g. "Figure 11"
	Quantity   string // e.g. "session ON lognormal mu"
	Paper      float64
	Measured   float64
	Note       string
}

// RelErr returns |measured - paper| / |paper| (infinite if paper is 0 and
// measured is not).
func (c Comparison) RelErr() float64 {
	if c.Paper == 0 {
		if c.Measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(c.Measured-c.Paper) / math.Abs(c.Paper)
}

// ComparisonTable renders comparisons as an aligned ASCII table with
// caller-chosen value-column labels — the Table-2-style report of the
// calibration loop, where the columns are "Source" and "Fitted" (or
// "Twin") rather than "Paper" and "Measured". The Comparison.Paper
// field feeds the left column and Measured the right.
func ComparisonTable(w io.Writer, title, leftLabel, rightLabel string, comparisons []Comparison) error {
	t := Table{Title: title, Headers: []string{"Layer", "Quantity", leftLabel, rightLabel, "Rel. err", "Note"}}
	for _, c := range comparisons {
		rel := "-"
		if !math.IsInf(c.RelErr(), 0) {
			rel = fmt.Sprintf("%.1f%%", c.RelErr()*100)
		}
		t.AddRow(c.Experiment, c.Quantity,
			fmt.Sprintf("%.6g", c.Paper), fmt.Sprintf("%.6g", c.Measured), rel, c.Note)
	}
	return t.Render(w)
}

// MarkdownTable renders comparisons as a markdown table for
// EXPERIMENTS.md.
func MarkdownTable(w io.Writer, comparisons []Comparison) error {
	if _, err := fmt.Fprintln(w, "| Experiment | Quantity | Paper | Measured | Rel. err | Note |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, c := range comparisons {
		rel := "-"
		if !math.IsInf(c.RelErr(), 0) {
			rel = fmt.Sprintf("%.1f%%", c.RelErr()*100)
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %.6g | %.6g | %s | %s |\n",
			c.Experiment, c.Quantity, c.Paper, c.Measured, rel, c.Note); err != nil {
			return err
		}
	}
	return nil
}
