package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestPlotLinear(t *testing.T) {
	s := Series{
		Name: "ramp", XLabel: "t", YLabel: "v",
		Points: []stats.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 10, Y: 10}},
	}
	var buf bytes.Buffer
	if err := s.Plot(&buf, DefaultPlotConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ramp") {
		t.Error("missing title")
	}
	if strings.Count(out, "*") != 3 {
		t.Errorf("want 3 points, plot:\n%s", out)
	}
	if !strings.Contains(out, "x: t, y: v") {
		t.Error("missing axis labels")
	}
	lines := strings.Split(out, "\n")
	// First grid row holds the max (top-right star), last holds the min.
	if !strings.Contains(lines[1], "*") {
		t.Error("max point not on top row")
	}
}

func TestPlotLogAxes(t *testing.T) {
	s := Series{
		Name: "ccdf",
		Points: []stats.Point{
			{X: 1, Y: 1}, {X: 10, Y: 0.1}, {X: 100, Y: 0.01},
			{X: 0, Y: 0.5},  // dropped on log x
			{X: 50, Y: -1},  // dropped on log y
			{X: math.NaN()}, // dropped
		},
	}
	var buf bytes.Buffer
	cfg := DefaultPlotConfig()
	cfg.LogX, cfg.LogY = true, true
	if err := s.Plot(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "*") != 3 {
		t.Errorf("want 3 plottable points:\n%s", out)
	}
	if !strings.Contains(out, "(log x)") || !strings.Contains(out, "(log y)") {
		t.Error("log annotations missing")
	}
	// A pure power law renders as a descending diagonal: the top row's
	// star must be left of the bottom row's star.
	lines := strings.Split(out, "\n")
	top := strings.Index(lines[1], "*")
	bottom := -1
	for _, l := range lines {
		if i := strings.Index(l, "*"); i >= 0 {
			bottom = i
		}
	}
	if top < 0 || bottom < 0 || top >= bottom {
		t.Errorf("power law should descend left-to-right (top %d, bottom %d):\n%s", top, bottom, out)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	empty := Series{Name: "empty"}
	if err := empty.Plot(&buf, DefaultPlotConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no plottable points") {
		t.Error("empty series should say so")
	}

	buf.Reset()
	single := Series{Name: "single", Points: []stats.Point{{X: 3, Y: 7}}}
	if err := single.Plot(&buf, DefaultPlotConfig()); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "*") != 1 {
		t.Error("single point should render")
	}

	buf.Reset()
	logEmpty := Series{Name: "neg", Points: []stats.Point{{X: -1, Y: -1}}}
	cfg := DefaultPlotConfig()
	cfg.LogX = true
	if err := logEmpty.Plot(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no plottable points") {
		t.Error("all-dropped series should say so")
	}
}

func TestPlotTinyConfigClamped(t *testing.T) {
	s := Series{Name: "t", Points: []stats.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}}
	var buf bytes.Buffer
	if err := s.Plot(&buf, PlotConfig{Width: 1, Height: 1}); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(buf.String(), "\n")) < 10 {
		t.Error("config should clamp to usable defaults")
	}
}
