// Package scenario provides composable workload transforms: functions
// from one workload.Stream to another that reshape the generated
// workload without breaking its (Start, Session, Seq) total order.
//
// The generator (internal/gismo) reproduces the workload the paper
// measured; the transforms here open the "as many scenarios as you can
// imagine" axis on top of it — flash-crowd spikes, client churn,
// diurnal reshaping, population scaling — while staying streaming
// (O(active) state) and deterministic: a transform's output is a pure
// function of its input stream and its seed, so replays and A/B
// experiments are reproducible.
//
// Transforms compose with Chain and preserve the Stream contract:
// output events are in strict (Start, Session, Seq) order, (Session,
// Seq) pairs are unique, and Close propagates to the source.
package scenario

import (
	"errors"
	"math"

	"repro/internal/dist"
	"repro/internal/workload"
)

// ErrBadScenario reports an invalid transform parameterization.
var ErrBadScenario = errors.New("scenario: bad configuration")

// Transform maps one event stream to another. Implementations must
// preserve the stream total order and propagate Close to the source.
type Transform func(workload.Stream) workload.Stream

// Chain composes transforms left to right: Chain(a, b)(s) == b(a(s)).
func Chain(ts ...Transform) Transform {
	return func(s workload.Stream) workload.Stream {
		for _, t := range ts {
			s = t(s)
		}
		return s
	}
}

// Seed-derivation lanes for the per-session uniform draws, mirroring
// the generator's splitmix lane scheme (internal/gismo): every decision
// is keyed to (seed, lane, session index), so transforms are
// deterministic and independent of each other for the same seed.
const (
	laneThin  uint64 = 101
	laneChurn uint64 = 102
	laneTail  uint64 = 103
)

// sessionUniform returns a uniform [0,1) variate keyed to (seed, lane,
// session). Pure and O(1) — no sequential RNG to replay, so filtering
// transforms hold no per-session state.
func sessionUniform(seed int64, lane uint64, session int) float64 {
	return float64(dist.Mix64(dist.Mix64(uint64(seed), lane), uint64(session))>>11) / (1 << 53)
}

// filterStream drops events for which keep returns false. Dropping
// events can never break the total order.
type filterStream struct {
	inner workload.Stream
	keep  func(workload.Event) bool
}

func (f *filterStream) Next() (workload.Event, bool) {
	for {
		e, ok := f.inner.Next()
		if !ok {
			return workload.Event{}, false
		}
		if f.keep(e) {
			return e, true
		}
	}
}

func (f *filterStream) Close() { workload.CloseStream(f.inner) }

// Thin keeps each session independently with probability p — population
// down-scaling that preserves the per-session structure exactly (a kept
// session keeps all its transfers). The decision is keyed to (seed,
// session), so thinning commutes with any transform that does not
// renumber sessions.
func Thin(p float64, seed int64) (Transform, error) {
	if p <= 0 || p > 1 {
		return nil, errors.Join(ErrBadScenario, errors.New("thin probability must be in (0,1]"))
	}
	return func(s workload.Stream) workload.Stream {
		return &filterStream{inner: s, keep: func(e workload.Event) bool {
			return sessionUniform(seed, laneThin, e.Session) < p
		}}
	}, nil
}

// Churn makes a fraction of viewers leave early: with probability frac a
// session is truncated after a geometrically distributed number of
// transfers with the given mean (at least one transfer always
// survives). Truncation drops a Seq suffix, so ordering and the
// remaining events are untouched — the streaming analogue of the
// paper's short-session observation under interrupted viewing.
func Churn(frac, meanKeep float64, seed int64) (Transform, error) {
	if frac < 0 || frac > 1 {
		return nil, errors.Join(ErrBadScenario, errors.New("churn fraction must be in [0,1]"))
	}
	if meanKeep < 1 {
		return nil, errors.Join(ErrBadScenario, errors.New("churn mean kept transfers must be >= 1"))
	}
	return func(s workload.Stream) workload.Stream {
		return &filterStream{inner: s, keep: func(e workload.Event) bool {
			if sessionUniform(seed, laneChurn, e.Session) >= frac {
				return true
			}
			return e.Seq < churnCap(seed, e.Session, meanKeep)
		}}
	}, nil
}

// churnCap is the number of transfers a churned session keeps: 1 plus a
// geometric tail with the configured mean, inverted from the session's
// tail variate.
func churnCap(seed int64, session int, meanKeep float64) int {
	u := sessionUniform(seed, laneTail, session)
	if meanKeep <= 1 {
		return 1
	}
	// Geometric tail with success probability q = 1/mean, inverted:
	// floor(ln u / ln(1-q)) extra transfers beyond the first.
	q := 1 / meanKeep
	if u <= 0 {
		return 1
	}
	tail := int(math.Log(u) / math.Log(1-q))
	if tail < 0 {
		tail = 0
	}
	return 1 + tail
}
