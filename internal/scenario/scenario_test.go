package scenario

import (
	"testing"

	"repro/internal/gismo"
	"repro/internal/workload"
)

// baseStream returns a fresh generated stream for transform tests. The
// fixed seed makes every call produce the identical event sequence.
func baseStream(t *testing.T) workload.Stream {
	t.Helper()
	m, err := gismo.Scaled(2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := gismo.NewStream(m, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ws.Close)
	return ws
}

func drain(t *testing.T, s workload.Stream) []workload.Event {
	t.Helper()
	events := workload.Drain(s, 0)
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	return events
}

// checkOrder asserts the strict (Start, Session, Seq) total order and
// (Session, Seq) uniqueness the Stream contract requires.
func checkOrder(t *testing.T, events []workload.Event) {
	t.Helper()
	seen := make(map[[2]int]struct{}, len(events))
	for i, e := range events {
		if i > 0 && !events[i-1].Less(e) {
			t.Fatalf("order violated at %d: %+v then %+v", i, events[i-1], e)
		}
		key := [2]int{e.Session, e.Seq}
		if _, dup := seen[key]; dup {
			t.Fatalf("duplicate (session, seq) = %v", key)
		}
		seen[key] = struct{}{}
	}
}

func sameEvents(a, b []workload.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestThinDeterministicSubset(t *testing.T) {
	base := drain(t, baseStream(t))
	thin, err := Thin(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	out1 := drain(t, thin(workload.NewSliceStream(base)))
	out2 := drain(t, thin(workload.NewSliceStream(base)))
	if !sameEvents(out1, out2) {
		t.Fatal("thinning is not deterministic")
	}
	checkOrder(t, out1)
	if len(out1) >= len(base) {
		t.Fatalf("thinning kept everything: %d of %d", len(out1), len(base))
	}

	// Whole-session property: a session is either fully kept or fully
	// dropped.
	counts := func(events []workload.Event) map[int]int {
		m := make(map[int]int)
		for _, e := range events {
			m[e.Session]++
		}
		return m
	}
	baseCounts, thinCounts := counts(base), counts(out1)
	for s, n := range thinCounts {
		if baseCounts[s] != n {
			t.Fatalf("session %d partially thinned: %d of %d transfers", s, n, baseCounts[s])
		}
	}
}

func TestThinValidates(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.01} {
		if _, err := Thin(p, 1); err == nil {
			t.Errorf("Thin(%v) accepted", p)
		}
	}
}

func TestChurnTruncatesSuffixesOnly(t *testing.T) {
	base := drain(t, baseStream(t))
	churn, err := Churn(0.6, 1.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, churn(workload.NewSliceStream(base)))
	again := drain(t, churn(workload.NewSliceStream(base)))
	if !sameEvents(out, again) {
		t.Fatal("churn is not deterministic")
	}
	checkOrder(t, out)
	if len(out) >= len(base) {
		t.Skip("churn dropped nothing at this seed; widen the workload")
	}

	// Per-session prefix property: the kept Seqs of every session are a
	// contiguous prefix starting at 0.
	maxSeq := make(map[int]int)
	seqCount := make(map[int]int)
	for _, e := range out {
		if e.Seq > maxSeq[e.Session] {
			maxSeq[e.Session] = e.Seq
		}
		seqCount[e.Session]++
	}
	for s, n := range seqCount {
		if maxSeq[s] != n-1 {
			t.Fatalf("session %d kept a non-prefix: %d events, max seq %d", s, n, maxSeq[s])
		}
	}
	// No session loses its first transfer.
	baseSessions := make(map[int]struct{})
	for _, e := range base {
		baseSessions[e.Session] = struct{}{}
	}
	outSessions := make(map[int]struct{})
	for _, e := range out {
		outSessions[e.Session] = struct{}{}
	}
	if len(outSessions) != len(baseSessions) {
		t.Fatalf("churn dropped whole sessions: %d of %d", len(outSessions), len(baseSessions))
	}
}

func TestChurnValidates(t *testing.T) {
	if _, err := Churn(-0.1, 2, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := Churn(0.5, 0.5, 1); err == nil {
		t.Error("mean below one accepted")
	}
}

func TestTimeWarpSpeedUpPreservesStructure(t *testing.T) {
	base := drain(t, baseStream(t))
	warp, err := SpeedUp(4)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := TimeWarp(warp)
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, tw(workload.NewSliceStream(base)))
	again := drain(t, tw(workload.NewSliceStream(base)))
	if !sameEvents(out, again) {
		t.Fatal("time warp is not deterministic")
	}
	checkOrder(t, out)
	if len(out) != len(base) {
		t.Fatalf("warp changed event count: %d != %d", len(out), len(base))
	}
	// Same (Session, Seq, Duration) multiset; starts compressed 4x.
	byKey := make(map[[2]int]workload.Event, len(base))
	for _, e := range base {
		byKey[[2]int{e.Session, e.Seq}] = e
	}
	for _, e := range out {
		orig, ok := byKey[[2]int{e.Session, e.Seq}]
		if !ok {
			t.Fatalf("warp invented event %+v", e)
		}
		if e.Duration != orig.Duration || e.Client != orig.Client || e.Object != orig.Object {
			t.Fatalf("warp mutated non-time fields: %+v vs %+v", e, orig)
		}
		if e.Start != orig.Start/4 {
			t.Fatalf("warp start %d, want %d", e.Start, orig.Start/4)
		}
	}
}

func TestDiurnalWarpMonotoneAndSpanPreserving(t *testing.T) {
	warp, err := Diurnal(0.8, 86400)
	if err != nil {
		t.Fatal(err)
	}
	prev := warp(0)
	for tm := int64(1); tm <= 2*86400; tm += 97 {
		cur := warp(tm)
		if cur < prev {
			t.Fatalf("warp not monotone at t=%d: %d < %d", tm, cur, prev)
		}
		prev = cur
	}
	// Full periods map onto themselves (the intensity integrates to 1).
	if got := warp(86400); got < 86398 || got > 86402 {
		t.Errorf("warp(period) = %d, want ≈ period", got)
	}
}

func TestWarpValidates(t *testing.T) {
	if _, err := TimeWarp(nil); err == nil {
		t.Error("nil warp accepted")
	}
	if _, err := SpeedUp(0); err == nil {
		t.Error("zero speedup accepted")
	}
	if _, err := Diurnal(1.0, 86400); err == nil {
		t.Error("amplitude 1 accepted")
	}
	if _, err := Diurnal(0.5, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestFlashCrowdInjectsWindowedSessions(t *testing.T) {
	base := drain(t, baseStream(t))
	fc := FlashCrowd{
		At:       3600,
		Duration: 1800,
		Sessions: 200,
		Clients:  100,
		Objects:  2,
		Horizon:  2 * 86400,
	}
	inject, err := fc.Inject(11)
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, inject(workload.NewSliceStream(base)))
	again := drain(t, inject(workload.NewSliceStream(base)))
	if !sameEvents(out, again) {
		t.Fatal("flash crowd is not deterministic")
	}
	checkOrder(t, out)
	if len(out) <= len(base) {
		t.Fatalf("nothing injected: %d <= %d", len(out), len(base))
	}

	sessions := make(map[int]struct{})
	for _, e := range out {
		if e.Session < FlashSessionBase {
			continue
		}
		sessions[e.Session] = struct{}{}
		if e.Seq == 0 && (e.Start < fc.At || e.Start >= fc.At+fc.Duration) {
			t.Fatalf("injected session arrives at %d, outside [%d, %d)", e.Start, fc.At, fc.At+fc.Duration)
		}
		if e.End() > fc.Horizon {
			t.Fatalf("injected event escapes horizon: %+v", e)
		}
		if e.Client < 0 || e.Client >= fc.Clients {
			t.Fatalf("injected client %d outside population", e.Client)
		}
	}
	if len(sessions) != fc.Sessions {
		t.Fatalf("injected %d sessions, want %d", len(sessions), fc.Sessions)
	}
}

func TestFlashCrowdValidates(t *testing.T) {
	good := FlashCrowd{At: 0, Duration: 100, Sessions: 1, Clients: 1, Objects: 1, Horizon: 200}
	bad := []func(*FlashCrowd){
		func(c *FlashCrowd) { c.Duration = 0 },
		func(c *FlashCrowd) { c.At = -1 },
		func(c *FlashCrowd) { c.Sessions = 0 },
		func(c *FlashCrowd) { c.Clients = 0 },
		func(c *FlashCrowd) { c.Objects = 0 },
		func(c *FlashCrowd) { c.Horizon = 0 },
		func(c *FlashCrowd) { c.MeanTransfers = 0.5 },
		func(c *FlashCrowd) { c.SessionBase = 100 },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if _, err := c.Inject(1); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := good.Inject(1); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestChainComposesInOrder(t *testing.T) {
	base := drain(t, baseStream(t))
	thin, err := Thin(0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	warp, err := SpeedUp(2)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := TimeWarp(warp)
	if err != nil {
		t.Fatal(err)
	}
	chained := Chain(thin, tw)
	out := drain(t, chained(workload.NewSliceStream(base)))
	manual := drain(t, tw(thin(workload.NewSliceStream(base))))
	if !sameEvents(out, manual) {
		t.Fatal("Chain(a, b) != b(a(s))")
	}
	checkOrder(t, out)
}

// TestTransformsOnLiveShardedStream applies a full chain directly to the
// sharded generator (not a materialized copy) and checks the output is
// identical to transforming the drained events — the transforms are
// truly streaming.
func TestTransformsOnLiveShardedStream(t *testing.T) {
	m, err := gismo.Scaled(2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	thin, err := Thin(0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	fc := FlashCrowd{At: 1000, Duration: 5000, Sessions: 50, Clients: 30, Objects: 2, Horizon: m.Horizon}
	inject, err := fc.Inject(13)
	if err != nil {
		t.Fatal(err)
	}
	chain := Chain(thin, inject)

	live, err := gismo.NewStream(m, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	outLive := drain(t, chain(live))

	materialized := drain(t, baseStream(t)) // same model, seed 42
	outSlice := drain(t, chain(workload.NewSliceStream(materialized)))
	if !sameEvents(outLive, outSlice) {
		t.Fatal("transform output differs between live and materialized source")
	}
	checkOrder(t, outLive)
}

func TestCloseReachesSource(t *testing.T) {
	src := &closeSpy{}
	thin, err := Thin(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	warp, _ := SpeedUp(2)
	tw, err := TimeWarp(warp)
	if err != nil {
		t.Fatal(err)
	}
	fc := FlashCrowd{At: 0, Duration: 10, Sessions: 1, Clients: 1, Objects: 1, Horizon: 100}
	inject, err := fc.Inject(1)
	if err != nil {
		t.Fatal(err)
	}
	s := Chain(thin, tw, inject)(src)
	workload.CloseStream(s)
	if !src.closed {
		t.Fatal("Close did not propagate to the source")
	}
}

// closeSpy yields an endless event sequence so no layer can drop it as
// drained; Close must reach it through the whole chain.
type closeSpy struct {
	closed bool
	n      int
}

func (c *closeSpy) Next() (workload.Event, bool) {
	c.n++
	return workload.Event{Session: c.n, Start: int64(c.n)}, true
}
func (c *closeSpy) Close() { c.closed = true }

// TestSessionUniformStable pins the hash-derived variates: shifting
// these would silently re-randomize every seeded scenario.
func TestSessionUniformStable(t *testing.T) {
	u1 := sessionUniform(1, laneThin, 0)
	u2 := sessionUniform(1, laneThin, 0)
	if u1 != u2 {
		t.Fatal("sessionUniform not pure")
	}
	if u1 < 0 || u1 >= 1 {
		t.Fatalf("sessionUniform out of range: %v", u1)
	}
	// Distinct lanes and sessions decorrelate.
	if sessionUniform(1, laneThin, 0) == sessionUniform(1, laneChurn, 0) {
		t.Error("lanes collide")
	}
	if sessionUniform(1, laneThin, 1) == sessionUniform(1, laneThin, 2) {
		t.Error("sessions collide")
	}
}
