package scenario

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/dist"
	"repro/internal/workload"
)

// FlashSessionBase is the default first session index for injected
// sessions. Generated workloads number sessions densely from zero, so
// any base far above the base workload's session count keeps (Session,
// Seq) pairs unique. Chained injections must use disjoint bases (see
// FlashCrowd.SessionBase).
const FlashSessionBase = 1 << 31

// FlashCrowd parameterizes a flash-crowd injection: Sessions extra
// sessions arriving inside [At, At+Duration), on top of whatever the
// base stream carries — the "sudden event draws a crowd" scenario the
// paper's reality show lived on (prize nights, evictions). Setting the
// window to the whole horizon turns it into population up-scaling.
type FlashCrowd struct {
	At       int64 // window start, trace seconds
	Duration int64 // window length, trace seconds
	Sessions int   // sessions injected into the window
	Clients  int   // population size the crowd is drawn from
	Objects  int   // live objects the crowd requests
	Horizon  int64 // trace horizon; transfers are truncated to it

	// MeanTransfers is the mean transfers per injected session (1 plus
	// an exponential tail). Zero means 1.5.
	MeanTransfers float64
	// GapMu/GapSigma and LengthMu/LengthSigma are the lognormal laws for
	// intra-session gaps and transfer lengths. Zero values default to
	// the paper's Table 2 fits (gap μ 4.900 σ 1.321, length μ 4.384
	// σ 1.427).
	GapMu, GapSigma       float64
	LengthMu, LengthSigma float64

	// SessionBase overrides the first injected session index (0 means
	// FlashSessionBase). Chained FlashCrowd transforms must use bases
	// at least 1<<24 apart so injected session indices never collide.
	SessionBase int
}

func (fc *FlashCrowd) withDefaults() FlashCrowd {
	c := *fc
	if c.MeanTransfers == 0 {
		c.MeanTransfers = 1.5
	}
	if c.GapMu == 0 && c.GapSigma == 0 {
		c.GapMu, c.GapSigma = 4.89991, 1.32074
	}
	if c.LengthMu == 0 && c.LengthSigma == 0 {
		c.LengthMu, c.LengthSigma = 4.383921, 1.427247
	}
	if c.SessionBase == 0 {
		c.SessionBase = FlashSessionBase
	}
	return c
}

// Validate checks the configuration (after defaulting).
func (fc *FlashCrowd) Validate() error {
	if fc.At < 0 || fc.Duration <= 0 {
		return fmt.Errorf("%w: flash window [%d, +%d)", ErrBadScenario, fc.At, fc.Duration)
	}
	if fc.Sessions < 1 {
		return fmt.Errorf("%w: %d flash sessions", ErrBadScenario, fc.Sessions)
	}
	if fc.Clients < 1 {
		return fmt.Errorf("%w: flash population %d", ErrBadScenario, fc.Clients)
	}
	if fc.Objects < 1 {
		return fmt.Errorf("%w: %d flash objects", ErrBadScenario, fc.Objects)
	}
	if fc.Horizon <= fc.At {
		return fmt.Errorf("%w: horizon %d before flash window start %d", ErrBadScenario, fc.Horizon, fc.At)
	}
	if fc.MeanTransfers < 1 {
		return fmt.Errorf("%w: mean transfers per flash session %v < 1", ErrBadScenario, fc.MeanTransfers)
	}
	if fc.SessionBase < 1<<20 {
		return fmt.Errorf("%w: session base %d too low (would collide with generated sessions)", ErrBadScenario, fc.SessionBase)
	}
	return nil
}

// Inject builds the flash-crowd transform: the injected sessions are
// materialized up front (memory is O(injected events), which a flash
// window bounds by construction) and merged with the base stream, so
// the combined stream keeps the total order at O(1) merge cost.
func (fc FlashCrowd) Inject(seed int64) (Transform, error) {
	cfg := fc.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	events, err := cfg.events(seed)
	if err != nil {
		return nil, err
	}
	return func(s workload.Stream) workload.Stream {
		return workload.Merge(s, workload.NewSliceStream(events))
	}, nil
}

// events draws the injected sessions from a dedicated splitmix-seeded
// RNG: arrival instants uniform over the window (sorted, so injected
// session indices follow arrival order like the generator's), then a
// transfer count (1 plus an exponential tail) and lognormal gap/length
// draws per session.
func (fc *FlashCrowd) events(seed int64) ([]workload.Event, error) {
	gap, err := dist.NewLognormal(fc.GapMu, fc.GapSigma)
	if err != nil {
		return nil, err
	}
	length, err := dist.NewLognormal(fc.LengthMu, fc.LengthSigma)
	if err != nil {
		return nil, err
	}
	rng := rand.New(dist.NewSplitMix64(dist.Mix64(uint64(seed), uint64(fc.SessionBase))))

	arrivals := make([]int64, fc.Sessions)
	for i := range arrivals {
		arrivals[i] = fc.At + rng.Int64N(fc.Duration)
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })

	events := make([]workload.Event, 0, fc.Sessions*2)
	for i, at := range arrivals {
		n := 1
		if fc.MeanTransfers > 1 {
			n = 1 + int(rng.ExpFloat64()*(fc.MeanTransfers-1))
		}
		t := at
		session := fc.SessionBase + i
		for k := 0; k < n; k++ {
			if k > 0 {
				t += int64(gap.SampleV2(rng))
			}
			if t >= fc.Horizon {
				break
			}
			d := int64(length.SampleV2(rng))
			if d < 1 {
				d = 1
			}
			if t+d > fc.Horizon {
				d = fc.Horizon - t
				if d < 1 {
					break
				}
			}
			events = append(events, workload.Event{
				Session:  session,
				Seq:      k,
				Client:   rng.IntN(fc.Clients),
				Object:   rng.IntN(fc.Objects),
				Start:    t,
				Duration: d,
			})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Less(events[j]) })
	return events, nil
}
