package scenario

import (
	"errors"
	"math"

	"repro/internal/heapx"
	"repro/internal/workload"
)

// Warp is a monotone non-decreasing mapping of trace time. TimeWarp
// applies it to event start instants; monotonicity is what keeps the
// warped stream totally ordered with a bounded reorder buffer.
type Warp func(int64) int64

// TimeWarp remaps event start times through f, reshaping arrival
// density — diurnal shift, slow-motion, compression — while leaving
// durations (viewer behavior) untouched.
//
// A monotone warp preserves the Start order but can collapse distinct
// input instants onto one output second, and events tied on Start must
// still come out in ascending (Session, Seq) order — which the input
// does not guarantee across different original instants. The stream
// therefore holds warped events in a small reorder heap and releases
// one only when every event still inside the source maps strictly
// later. The buffer's size is bounded by the number of events the warp
// maps to a single output second.
func TimeWarp(f Warp) (Transform, error) {
	if f == nil {
		return nil, errors.Join(ErrBadScenario, errors.New("nil warp"))
	}
	return func(s workload.Stream) workload.Stream {
		return &warpStream{
			inner: s,
			f:     f,
			h:     heapx.New(func(a, b workload.Event) bool { return a.Less(b) }),
		}
	}, nil
}

type warpStream struct {
	inner workload.Stream
	f     Warp
	h     heapx.Heap[workload.Event]
	done  bool
	bound int64 // f(latest input Start): no future output can precede it
}

func (w *warpStream) Next() (workload.Event, bool) {
	for {
		if w.h.Len() > 0 && (w.done || w.h.Peek().Start < w.bound) {
			return w.h.Pop(), true
		}
		if w.done {
			return workload.Event{}, false
		}
		e, ok := w.inner.Next()
		if !ok {
			w.done = true
			continue
		}
		warped := w.f(e.Start)
		if warped < w.bound {
			// Non-monotone warp: clamp rather than emit out of order.
			warped = w.bound
		}
		w.bound = warped
		e.Start = warped
		w.h.Push(e)
	}
}

func (w *warpStream) Close() { workload.CloseStream(w.inner) }

// SpeedUp builds a warp that compresses trace time by factor (>1 packs
// the same events into less time, raising arrival intensity; <1
// stretches it).
func SpeedUp(factor float64) (Warp, error) {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, errors.Join(ErrBadScenario, errors.New("speedup factor must be positive and finite"))
	}
	return func(t int64) int64 {
		return int64(float64(t) / factor)
	}, nil
}

// Diurnal builds a warp that reshapes arrival density sinusoidally with
// the given period: instantaneous rate is multiplied by
// 1 + amplitude*sin(2πt/period), amplitude in [0,1). The warp is the
// integral of that intensity, so it is monotone and maps the horizon
// onto itself — a synthetic time-of-day (or prime-time) shift layered
// over whatever diurnal structure the model already has.
func Diurnal(amplitude float64, period int64) (Warp, error) {
	if amplitude < 0 || amplitude >= 1 {
		return nil, errors.Join(ErrBadScenario, errors.New("diurnal amplitude must be in [0,1)"))
	}
	if period <= 0 {
		return nil, errors.Join(ErrBadScenario, errors.New("diurnal period must be positive"))
	}
	p := float64(period)
	return func(t int64) int64 {
		x := float64(t)
		// ∫(1 + A sin(2πu/p))du = t + A·p/(2π)·(1 − cos(2πt/p))
		return int64(x + amplitude*p/(2*math.Pi)*(1-math.Cos(2*math.Pi*x/p)))
	}, nil
}
