package wmslog

import (
	"bytes"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// binaryTestEntries builds a deterministic entry set with the repetition
// profile of a real access log: few distinct players, URIs, OS/CPU
// classes and countries across many entries.
func binaryTestEntries(n int) []*Entry {
	rng := rand.New(rand.NewPCG(8, 2002))
	epoch := time.Date(2002, 1, 7, 0, 0, 0, 0, time.UTC)
	oses := []string{"Windows 98", "Windows 2000", "Windows NT", ""}
	cpus := []string{"Pentium III", "Pentium II", ""}
	uris := []string{"/live/feed1", "/live/feed2"}
	countries := []string{"BR", "US", "PT", ""}
	out := make([]*Entry, 0, n)
	for i := 0; i < n; i++ {
		e := &Entry{
			Timestamp:    epoch.Add(time.Duration(i) * 3 * time.Second),
			ClientIP:     "10.0.0." + string(rune('0'+i%10)),
			PlayerID:     "player-" + string(rune('a'+i%23)),
			ClientOS:     oses[i%len(oses)],
			ClientCPU:    cpus[i%len(cpus)],
			URIStem:      uris[i%len(uris)],
			Duration:     int64(rng.IntN(4000)),
			Bytes:        int64(rng.IntN(1 << 25)),
			AvgBandwidth: 110000,
			PacketsLost:  int64(rng.IntN(5)),
			ServerCPU:    float64(rng.IntN(10001)) / 100,
			Referer:      SessionRef(int64(i/3), i%3),
			Status:       200,
			ASNumber:     1916,
			Country:      countries[i%len(countries)],
		}
		out = append(out, e)
	}
	return out
}

// TestBinaryRoundTripFields: encode → decode through a shared-format
// stream preserves every field exactly.
func TestBinaryRoundTripFields(t *testing.T) {
	entries := binaryTestEntries(500)
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for _, e := range entries {
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bw.Count() != int64(len(entries)) {
		t.Fatalf("Count %d want %d", bw.Count(), len(entries))
	}
	if !bytes.HasPrefix(buf.Bytes(), binaryMagic) {
		t.Fatal("stream does not open with the binary magic")
	}

	got, st, err := ReadAll(bytes.NewReader(buf.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) || st.Binary != len(entries) || st.Entries != len(entries) {
		t.Fatalf("decoded %d entries (stats %+v), want %d", len(got), st, len(entries))
	}
	for i, e := range entries {
		g := got[i]
		if !g.Timestamp.Equal(e.Timestamp) || g.ClientIP != e.ClientIP ||
			g.PlayerID != e.PlayerID || g.ClientOS != e.ClientOS ||
			g.ClientCPU != e.ClientCPU || g.URIStem != e.URIStem ||
			g.Duration != e.Duration || g.Bytes != e.Bytes ||
			g.AvgBandwidth != e.AvgBandwidth || g.PacketsLost != e.PacketsLost ||
			g.ServerCPU != e.ServerCPU || g.Referer != e.Referer ||
			g.Status != e.Status || g.ASNumber != e.ASNumber || g.Country != e.Country {
			t.Fatalf("entry %d differs\nin:  %+v\nout: %+v", i, e, g)
		}
	}
}

// TestBinaryTextRoundTripByteIdentical: text → binary → text is
// byte-identical, so every md5/realization-digest contract defined over
// the text form holds across a binary detour.
func TestBinaryTextRoundTripByteIdentical(t *testing.T) {
	entries := binaryTestEntries(300)

	render := func(es []*Entry) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range es {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		return buf.Bytes()
	}
	text1 := render(entries)

	parsed, _, err := ReadAll(bytes.NewReader(text1), false)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin)
	for _, e := range parsed {
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()
	back, _, err := ReadAll(bytes.NewReader(bin.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(back), text1) {
		t.Fatal("text → binary → text round trip not byte-identical")
	}
	if bin.Len() >= len(text1) {
		t.Errorf("binary form (%d bytes) not smaller than text (%d bytes)", bin.Len(), len(text1))
	}
}

// TestBinaryServerCPUPrecision: centi-percent encoding must agree with
// the text encoder digit for digit, including values that are not
// exactly representable in binary floating point.
func TestBinaryServerCPUPrecision(t *testing.T) {
	for _, cpu := range []float64{0, 0.01, 0.1, 0.29, 1.0 / 3 * 100 / 100, 4.37, 33.33, 99.99, 100} {
		e := testEntryAt(time.Date(2002, 1, 7, 1, 2, 3, 0, time.UTC), 1, 0)
		e.ServerCPU = cpu
		text := AppendEntry(nil, e)

		d := NewBinaryDict()
		rec := AppendEntryBinary(nil, e, d)
		_, n := uvarintOf(rec)
		var back Entry
		if err := ParseBinary(&back, rec[n:], NewBinaryDict()); err != nil {
			t.Fatalf("cpu %v: %v", cpu, err)
		}
		if got := AppendEntry(nil, &back); string(got) != string(text) {
			t.Errorf("cpu %v: text disagrees\nwant %q\ngot  %q", cpu, text, got)
		}
	}
}

func uvarintOf(b []byte) (uint64, int) {
	var v uint64
	for i, c := range b {
		v |= uint64(c&0x7f) << (7 * i)
		if c < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// TestBinaryDictCap: strings past the cap stay inline on both sides, so
// encoder and decoder numbering never diverges.
func TestBinaryDictCap(t *testing.T) {
	d := NewBinaryDict()
	for i := 0; i < binaryDictCap; i++ {
		d.ents = append(d.ents, dictEntry{safe: true})
	}
	pre := len(d.ents)
	b := appendBinaryString(nil, "overflow", d)
	if len(d.ents) != pre {
		t.Fatal("string admitted past the cap")
	}
	// The overflow string still decodes (inline), and still is not
	// admitted on the decode side either.
	s, safe, rest, ok := takeBinaryString(b, d)
	if !ok || s != "overflow" || !safe || len(rest) != 0 {
		t.Fatalf("inline decode: %q %v %d %v", s, safe, len(rest), ok)
	}
	if len(d.ents) != pre {
		t.Fatal("decode admitted past the cap")
	}
}

// TestBinaryTruncation: every strict prefix of a valid stream either
// decodes fewer whole entries or fails loudly — never a partial entry,
// tolerant mode or not.
func TestBinaryTruncation(t *testing.T) {
	entries := binaryTestEntries(10)
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for _, e := range entries {
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()
	full := buf.Bytes()

	wholeDecoded := func(cut int) ([]*Entry, error) {
		got, _, err := ReadAll(bytes.NewReader(full[:cut]), true) // tolerant: must still fail loudly
		return got, err
	}
	sawError := false
	for cut := len(binaryMagic) + 1; cut < len(full); cut++ {
		got, err := wholeDecoded(cut)
		if err == nil && len(got) >= len(entries) {
			t.Fatalf("cut %d: truncated stream decoded all %d entries", cut, len(got))
		}
		if err != nil {
			sawError = true
		}
		// Whatever decoded must be a prefix of the real entry sequence,
		// fully formed.
		for i, e := range got {
			if !e.Timestamp.Equal(entries[i].Timestamp) || e.PlayerID != entries[i].PlayerID {
				t.Fatalf("cut %d: partial/corrupt entry %d emitted", cut, i)
			}
		}
	}
	if !sawError {
		t.Fatal("no truncation point errored — truncation is silent")
	}
}

// TestBinaryCorruption: flipped bytes in the stream surface as errors
// in strict and tolerant mode alike (corrupt records that still decode
// to a structurally valid entry are undetectable by design; the test
// only demands that no error is ever silently skipped).
func TestBinaryCorruption(t *testing.T) {
	entries := binaryTestEntries(20)
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for _, e := range entries {
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()
	full := buf.Bytes()

	// Zero out the length prefix of the first record: length 0 is
	// structurally invalid and must fail loudly even in tolerant mode.
	corrupt := append([]byte(nil), full...)
	corrupt[len(binaryMagic)] = 0
	if _, _, err := ReadAll(bytes.NewReader(corrupt), true); err == nil {
		t.Fatal("zero-length record accepted")
	}

	// A length prefix past maxBinaryRecord is a corrupt frame.
	huge := append([]byte(nil), binaryMagic...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // ~34 GB
	if _, _, err := ReadAll(bytes.NewReader(huge), true); err == nil {
		t.Fatal("oversized record length accepted")
	}

	// An out-of-range dictionary back-reference must be ErrFormat.
	var rec Entry
	bad := []byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x7f} // ts=1, zeros, dict ref 126
	if err := ParseBinary(&rec, bad, NewBinaryDict()); err == nil {
		t.Fatal("out-of-range dictionary reference accepted")
	}
}

// TestParserAutoDetect: the parser keeps reading text streams (headers
// included) and empty inputs exactly as before, and flips to binary on
// the magic without any flag.
func TestParserAutoDetect(t *testing.T) {
	e := testEntryAt(time.Date(2002, 1, 7, 3, 4, 5, 0, time.UTC), 7, 3)

	var text bytes.Buffer
	w := NewWriter(&text)
	if err := w.Write(e); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, st, err := ReadAll(bytes.NewReader(text.Bytes()), false)
	if err != nil || len(got) != 1 || st.Binary != 0 {
		t.Fatalf("text: %v entries=%d stats=%+v", err, len(got), st)
	}

	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin)
	if err := bw.Write(e); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got, st, err = ReadAll(bytes.NewReader(bin.Bytes()), false)
	if err != nil || len(got) != 1 || st.Binary != 1 {
		t.Fatalf("binary: %v entries=%d stats=%+v", err, len(got), st)
	}

	for _, short := range []string{"", "#", "2002", string(binaryMagic[:3])} {
		got, _, err := ReadAll(strings.NewReader(short), true)
		if err != nil || len(got) != 0 {
			t.Fatalf("short input %q: %v entries=%d", short, err, len(got))
		}
	}
}

// TestDailyWriterBinary: daily rotation in binary mode produces one
// self-contained binary file per day that ReadFiles decodes back.
func TestDailyWriterBinary(t *testing.T) {
	dir := t.TempDir()
	dw, err := NewDailyBinaryWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := binaryTestEntries(2000)
	epoch := time.Date(2002, 1, 7, 0, 0, 0, 0, time.UTC)
	for i, e := range entries {
		// Re-space to one entry per minute so the set spans >1 calendar day.
		e.Timestamp = epoch.Add(time.Duration(i) * time.Minute)
	}
	for _, e := range entries {
		if err := dw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	files := dw.Files()
	if len(files) < 2 {
		t.Fatalf("expected multiple daily files, got %v", files)
	}
	for _, f := range files {
		head := make([]byte, len(binaryMagic))
		r, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(r, head); err != nil || !bytes.Equal(head, binaryMagic) {
			t.Fatalf("%s: not a binary log (%v %x)", f, err, head)
		}
		r.Close()
	}
	got, st, err := ReadFiles(files, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) || st.Binary != len(entries) {
		t.Fatalf("reread %d entries (stats %+v), want %d", len(got), st, len(entries))
	}
	if dw.Entries() != int64(len(entries)) {
		t.Fatalf("Entries() %d want %d", dw.Entries(), len(entries))
	}
}

// TestMergeFilesMixedFormats: a merge across text, binary and gzipped
// inputs yields the same bytes and realization digest as an all-text
// merge of the same entries.
func TestMergeFilesMixedFormats(t *testing.T) {
	dir := t.TempDir()
	epoch := time.Date(2002, 1, 7, 0, 0, 0, 0, time.UTC)
	var all []*Entry
	for s := int64(0); s < 60; s++ {
		for q := 0; q < 3; q++ {
			e := testEntryAt(epoch.Add(time.Duration(s)*5*time.Second), s, q)
			e.PlayerID = "player-" + string(rune('a'+s%5))
			all = append(all, e)
		}
	}
	parts := make([][]*Entry, 3)
	for i, e := range all {
		parts[(i*7)%3] = append(parts[(i*7)%3], e)
	}

	writeText := func(name string, es []*Entry) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWriter(f)
		for _, e := range es {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		f.Close()
		return path
	}
	writeBinary := func(name string, es []*Entry) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := NewBinaryWriter(f)
		for _, e := range es {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		f.Close()
		return path
	}

	mixed := []string{
		writeText("wms-a.log", parts[0]),
		writeBinary("wms-b.log", parts[1]),
		writeBinary("wms-c.log", parts[2]),
	}
	// Gzip the binary one: format detection must compose with the gz layer.
	gz, err := CompressFile(mixed[1])
	if err != nil {
		t.Fatal(err)
	}
	mixed[1] = gz

	allText := []string{
		writeText("wms-x.log", parts[0]),
		writeText("wms-y.log", parts[1]),
		writeText("wms-z.log", parts[2]),
	}

	var mixedOut, textOut bytes.Buffer
	mixedStats, err := MergeFiles(&mixedOut, mixed)
	if err != nil {
		t.Fatal(err)
	}
	textStats, err := MergeFiles(&textOut, allText)
	if err != nil {
		t.Fatal(err)
	}
	if mixedStats.Entries != len(all) || textStats.Entries != len(all) {
		t.Fatalf("entries: mixed %d text %d want %d", mixedStats.Entries, textStats.Entries, len(all))
	}
	if mixedStats.Realization != textStats.Realization {
		t.Fatalf("mixed realization %s != text %s", mixedStats.Realization, textStats.Realization)
	}
	if !bytes.Equal(mixedOut.Bytes(), textOut.Bytes()) {
		t.Fatal("mixed-format merge is not byte-identical to the all-text merge")
	}

	// A truncated binary input fails the merge loudly.
	data, err := os.ReadFile(mixed[2])
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "wms-trunc.log")
	if err := os.WriteFile(trunc, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	if _, err := MergeFiles(&sink, []string{trunc}); err == nil {
		t.Fatal("truncated binary log merged without error")
	}
}

// TestBinarySyncWriter: SyncWriter over a BinaryWriter serializes
// concurrent producers into one decodable stream.
func TestBinarySyncWriter(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSyncWriter(NewBinaryWriter(&buf))
	entries := binaryTestEntries(200)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := g; i < len(entries); i += 4 {
				if err := sw.Write(entries[i]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadAll(bytes.NewReader(buf.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) || sw.Count() != int64(len(entries)) {
		t.Fatalf("decoded %d, Count %d, want %d", len(got), sw.Count(), len(entries))
	}
}
