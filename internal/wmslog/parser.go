package wmslog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ParseStats accumulates per-parse bookkeeping: how many lines were
// consumed, how many were comments/headers, and how many were malformed
// (and skipped, in tolerant mode). Binary records count as both a line
// and an entry, and additionally under Binary, so a mixed-format
// ReadFiles pass can report how much of its input took the fast
// framing.
type ParseStats struct {
	Lines     int
	Comments  int
	Entries   int
	Malformed int
	// Binary counts entries decoded from the binary framing.
	Binary int
}

// parserMode is the detected stream format.
type parserMode int

const (
	modeUndetected parserMode = iota
	modeText
	modeBinary
)

// Parser reads entries from a single log stream, auto-detecting the
// format by magic bytes: a stream opening with the binary magic is
// decoded as framed binary records, anything else as the W3C-style
// text format. No flag ever selects the format — the bytes do.
//
// In strict mode (default) any malformed line aborts with an error
// identifying the line number. In tolerant mode malformed text lines
// are counted and skipped — the disposition a measurement pipeline
// needs for month-scale production logs. Binary corruption is ALWAYS
// fatal, tolerant or not: the length-prefixed framing cannot be
// resynchronized after a bad record, so skipping would silently drop
// an unbounded tail. A truncated or corrupt binary file is a loud
// error and never emits a partial entry.
type Parser struct {
	Tolerant bool

	br      *bufio.Reader
	mode    parserMode
	scanner *bufio.Scanner // text mode
	dict    *BinaryDict    // binary mode
	recBuf  []byte         // binary mode: buffer for records spanning br's window
	slab    []Entry        // binary mode: batch-allocated entries, handed out once each
	stats   ParseStats
	fields  []string // column order from the #Fields header, nil until seen
}

// NewParser wraps r.
func NewParser(r io.Reader) *Parser {
	return &Parser{br: bufio.NewReaderSize(r, 1<<16)}
}

// Stats returns the bookkeeping so far.
func (p *Parser) Stats() ParseStats { return p.stats }

// detect sniffs the stream format from its first bytes. A stream too
// short to carry the magic is text (possibly empty).
func (p *Parser) detect() {
	prefix, _ := p.br.Peek(len(binaryMagic))
	if bytes.Equal(prefix, binaryMagic) {
		p.br.Discard(len(binaryMagic))
		p.mode = modeBinary
		p.dict = NewBinaryDict()
		return
	}
	p.mode = modeText
	p.scanner = bufio.NewScanner(p.br)
	p.scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
}

// Next returns the next entry, or io.EOF when the stream is exhausted.
//
// Text data lines go through the ParseAppend fast path first — the
// strict canonical format the encoder emits, decoded without scratch
// allocations — and only fall back to the tolerant legacy column
// splitter (repeated whitespace, arbitrary float formats) when the
// fast path rejects them. Binary streams decode record by record
// through ParseBinary.
func (p *Parser) Next() (*Entry, error) {
	if p.mode == modeUndetected {
		p.detect()
	}
	if p.mode == modeBinary {
		return p.nextBinary()
	}
	for p.scanner.Scan() {
		p.stats.Lines++
		raw := bytes.TrimSpace(p.scanner.Bytes())
		if len(raw) == 0 {
			p.stats.Comments++
			continue
		}
		if raw[0] == '#' {
			p.stats.Comments++
			if rest, ok := bytes.CutPrefix(raw, []byte("#Fields:")); ok {
				p.fields = strings.Fields(string(rest))
			}
			continue
		}
		e, err := p.parseData(raw)
		if err != nil {
			p.stats.Malformed++
			if p.Tolerant {
				continue
			}
			return nil, fmt.Errorf("line %d: %w", p.stats.Lines, err)
		}
		p.stats.Entries++
		return e, nil
	}
	if err := p.scanner.Err(); err != nil {
		return nil, fmt.Errorf("wmslog: scan: %w", err)
	}
	return nil, io.EOF
}

// nextBinary decodes one length-prefixed binary record. Any framing or
// decode error is fatal regardless of Tolerant: after a bad record the
// stream offset is unknowable, so there is nothing to skip to.
//
// The common case decodes in place: the record is Peeked out of the
// bufio window and Discarded after the parse (ParseBinary never
// retains the payload — inline strings are copied at interning), so no
// bytes move. Only a record spanning the window boundary is copied out
// through recBuf. Entries come from a batch-allocated slab, handed out
// exactly once each, so a caller can retain them while the parser
// amortizes the per-entry allocation.
func (p *Parser) nextBinary() (*Entry, error) {
	n, err := binary.ReadUvarint(p.br)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("wmslog: binary record %d: length prefix: %w", p.stats.Lines+1, err)
	}
	if n == 0 || n > maxBinaryRecord {
		return nil, fmt.Errorf("wmslog: binary record %d: %w: record length %d", p.stats.Lines+1, ErrFormat, n)
	}
	rec, perr := p.br.Peek(int(n))
	if perr != nil {
		// Record spans the buffered window (or the stream is short):
		// copy it out. ReadFull consumes what Peek only looked at.
		if uint64(cap(p.recBuf)) < n {
			p.recBuf = make([]byte, n)
		}
		rec = p.recBuf[:n]
		if _, err := io.ReadFull(p.br, rec); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("wmslog: binary record %d: truncated: want %d payload bytes: %w", p.stats.Lines+1, n, io.ErrUnexpectedEOF)
			}
			return nil, fmt.Errorf("wmslog: binary record %d: %w", p.stats.Lines+1, err)
		}
	}
	if len(p.slab) == 0 {
		p.slab = make([]Entry, 512)
	}
	e := &p.slab[0]
	p.slab = p.slab[1:]
	if err := ParseBinary(e, rec, p.dict); err != nil {
		return nil, fmt.Errorf("wmslog: binary record %d: %w", p.stats.Lines+1, err)
	}
	if perr == nil {
		p.br.Discard(int(n))
	}
	p.stats.Lines++
	p.stats.Entries++
	p.stats.Binary++
	return e, nil
}

// parseData decodes one data line: canonical fast path, then the
// tolerant legacy splitter.
func (p *Parser) parseData(raw []byte) (*Entry, error) {
	if p.fields != nil && !sameFields(p.fields, Fields) {
		return nil, fmt.Errorf("%w: unsupported field set %v", ErrFormat, p.fields)
	}
	e := &Entry{}
	if err := ParseAppend(e, raw); err == nil {
		return e, nil
	}
	return p.parseLine(string(raw))
}

// parseLine decodes one data line according to the canonical Fields
// order with the tolerant legacy splitter.
func (p *Parser) parseLine(line string) (*Entry, error) {
	cols := strings.Fields(line)
	if len(cols) != len(Fields) {
		return nil, fmt.Errorf("%w: %d columns, want %d", ErrFormat, len(cols), len(Fields))
	}
	ts, err := time.Parse("2006-01-02 15:04:05", cols[0]+" "+cols[1])
	if err != nil {
		return nil, fmt.Errorf("%w: timestamp %q %q: %v", ErrFormat, cols[0], cols[1], err)
	}
	e := &Entry{
		Timestamp: ts,
		ClientIP:  cols[2],
		PlayerID:  cols[3],
		ClientOS:  undash(cols[4]),
		ClientCPU: undash(cols[5]),
		URIStem:   cols[6],
		Referer:   undash(cols[12]),
		Country:   undash(cols[15]),
	}
	if e.Duration, err = parseInt(cols[7], "x-duration"); err != nil {
		return nil, err
	}
	if e.Bytes, err = parseInt(cols[8], "sc-bytes"); err != nil {
		return nil, err
	}
	if e.AvgBandwidth, err = parseInt(cols[9], "avgbandwidth"); err != nil {
		return nil, err
	}
	if e.PacketsLost, err = parseInt(cols[10], "c-pkts-lost"); err != nil {
		return nil, err
	}
	if e.ServerCPU, err = strconv.ParseFloat(cols[11], 64); err != nil {
		return nil, fmt.Errorf("%w: s-cpu-util %q", ErrFormat, cols[11])
	}
	status, err := strconv.Atoi(cols[13])
	if err != nil {
		return nil, fmt.Errorf("%w: sc-status %q", ErrFormat, cols[13])
	}
	e.Status = status
	asn, err := strconv.Atoi(cols[14])
	if err != nil {
		return nil, fmt.Errorf("%w: s-as %q", ErrFormat, cols[14])
	}
	e.ASNumber = asn
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

func parseInt(s, field string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q", ErrFormat, field, s)
	}
	return v, nil
}

func sameFields(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ReadAll parses every entry from r, in tolerant or strict mode.
func ReadAll(r io.Reader, tolerant bool) ([]*Entry, ParseStats, error) {
	p := NewParser(r)
	p.Tolerant = tolerant
	var out []*Entry
	for {
		e, err := p.Next()
		if err == io.EOF {
			return out, p.Stats(), nil
		}
		if err != nil {
			return out, p.Stats(), err
		}
		out = append(out, e)
	}
}

// ReadFiles parses a set of daily log files (in name order, which is date
// order for DailyWriter output) and concatenates their entries.
func ReadFiles(paths []string, tolerant bool) ([]*Entry, ParseStats, error) {
	sorted := make([]string, len(paths))
	copy(sorted, paths)
	sort.Strings(sorted)

	var all []*Entry
	var total ParseStats
	for _, path := range sorted {
		r, closer, err := openLog(path)
		if err != nil {
			return all, total, err
		}
		entries, st, err := ReadAll(r, tolerant)
		closer.Close()
		total.Lines += st.Lines
		total.Comments += st.Comments
		total.Entries += st.Entries
		total.Malformed += st.Malformed
		total.Binary += st.Binary
		all = append(all, entries...)
		if err != nil {
			return all, total, fmt.Errorf("wmslog: parse %s: %w", path, err)
		}
	}
	return all, total, nil
}
