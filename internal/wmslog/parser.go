package wmslog

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ParseStats accumulates per-parse bookkeeping: how many lines were
// consumed, how many were comments/headers, and how many were malformed
// (and skipped, in tolerant mode).
type ParseStats struct {
	Lines     int
	Comments  int
	Entries   int
	Malformed int
}

// Parser reads entries from a single log stream.
//
// In strict mode (default) any malformed line aborts with an error
// identifying the line number. In tolerant mode malformed lines are
// counted and skipped — the disposition a measurement pipeline needs for
// month-scale production logs.
type Parser struct {
	Tolerant bool

	scanner *bufio.Scanner
	stats   ParseStats
	fields  []string // column order from the #Fields header, nil until seen
}

// NewParser wraps r.
func NewParser(r io.Reader) *Parser {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Parser{scanner: sc}
}

// Stats returns the bookkeeping so far.
func (p *Parser) Stats() ParseStats { return p.stats }

// Next returns the next entry, or io.EOF when the stream is exhausted.
//
// Data lines go through the ParseAppend fast path first — the strict
// canonical format the encoder emits, decoded without scratch
// allocations — and only fall back to the tolerant legacy column
// splitter (repeated whitespace, arbitrary float formats) when the
// fast path rejects them.
func (p *Parser) Next() (*Entry, error) {
	for p.scanner.Scan() {
		p.stats.Lines++
		raw := bytes.TrimSpace(p.scanner.Bytes())
		if len(raw) == 0 {
			p.stats.Comments++
			continue
		}
		if raw[0] == '#' {
			p.stats.Comments++
			if rest, ok := bytes.CutPrefix(raw, []byte("#Fields:")); ok {
				p.fields = strings.Fields(string(rest))
			}
			continue
		}
		e, err := p.parseData(raw)
		if err != nil {
			p.stats.Malformed++
			if p.Tolerant {
				continue
			}
			return nil, fmt.Errorf("line %d: %w", p.stats.Lines, err)
		}
		p.stats.Entries++
		return e, nil
	}
	if err := p.scanner.Err(); err != nil {
		return nil, fmt.Errorf("wmslog: scan: %w", err)
	}
	return nil, io.EOF
}

// parseData decodes one data line: canonical fast path, then the
// tolerant legacy splitter.
func (p *Parser) parseData(raw []byte) (*Entry, error) {
	if p.fields != nil && !sameFields(p.fields, Fields) {
		return nil, fmt.Errorf("%w: unsupported field set %v", ErrFormat, p.fields)
	}
	e := &Entry{}
	if err := ParseAppend(e, raw); err == nil {
		return e, nil
	}
	return p.parseLine(string(raw))
}

// parseLine decodes one data line according to the canonical Fields
// order with the tolerant legacy splitter.
func (p *Parser) parseLine(line string) (*Entry, error) {
	cols := strings.Fields(line)
	if len(cols) != len(Fields) {
		return nil, fmt.Errorf("%w: %d columns, want %d", ErrFormat, len(cols), len(Fields))
	}
	ts, err := time.Parse("2006-01-02 15:04:05", cols[0]+" "+cols[1])
	if err != nil {
		return nil, fmt.Errorf("%w: timestamp %q %q: %v", ErrFormat, cols[0], cols[1], err)
	}
	e := &Entry{
		Timestamp: ts,
		ClientIP:  cols[2],
		PlayerID:  cols[3],
		ClientOS:  undash(cols[4]),
		ClientCPU: undash(cols[5]),
		URIStem:   cols[6],
		Referer:   undash(cols[12]),
		Country:   undash(cols[15]),
	}
	if e.Duration, err = parseInt(cols[7], "x-duration"); err != nil {
		return nil, err
	}
	if e.Bytes, err = parseInt(cols[8], "sc-bytes"); err != nil {
		return nil, err
	}
	if e.AvgBandwidth, err = parseInt(cols[9], "avgbandwidth"); err != nil {
		return nil, err
	}
	if e.PacketsLost, err = parseInt(cols[10], "c-pkts-lost"); err != nil {
		return nil, err
	}
	if e.ServerCPU, err = strconv.ParseFloat(cols[11], 64); err != nil {
		return nil, fmt.Errorf("%w: s-cpu-util %q", ErrFormat, cols[11])
	}
	status, err := strconv.Atoi(cols[13])
	if err != nil {
		return nil, fmt.Errorf("%w: sc-status %q", ErrFormat, cols[13])
	}
	e.Status = status
	asn, err := strconv.Atoi(cols[14])
	if err != nil {
		return nil, fmt.Errorf("%w: s-as %q", ErrFormat, cols[14])
	}
	e.ASNumber = asn
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

func parseInt(s, field string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q", ErrFormat, field, s)
	}
	return v, nil
}

func sameFields(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ReadAll parses every entry from r, in tolerant or strict mode.
func ReadAll(r io.Reader, tolerant bool) ([]*Entry, ParseStats, error) {
	p := NewParser(r)
	p.Tolerant = tolerant
	var out []*Entry
	for {
		e, err := p.Next()
		if err == io.EOF {
			return out, p.Stats(), nil
		}
		if err != nil {
			return out, p.Stats(), err
		}
		out = append(out, e)
	}
}

// ReadFiles parses a set of daily log files (in name order, which is date
// order for DailyWriter output) and concatenates their entries.
func ReadFiles(paths []string, tolerant bool) ([]*Entry, ParseStats, error) {
	sorted := make([]string, len(paths))
	copy(sorted, paths)
	sort.Strings(sorted)

	var all []*Entry
	var total ParseStats
	for _, path := range sorted {
		r, closer, err := openLog(path)
		if err != nil {
			return all, total, err
		}
		entries, st, err := ReadAll(r, tolerant)
		closer.Close()
		total.Lines += st.Lines
		total.Comments += st.Comments
		total.Entries += st.Entries
		total.Malformed += st.Malformed
		all = append(all, entries...)
		if err != nil {
			return all, total, fmt.Errorf("wmslog: parse %s: %w", path, err)
		}
	}
	return all, total, nil
}
