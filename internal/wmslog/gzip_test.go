package wmslog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCompressAndReadBack(t *testing.T) {
	dir := t.TempDir()
	dw, err := NewDailyWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e := sampleEntry(TraceEpoch.Add(time.Duration(i) * time.Minute))
		if err := dw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	files := dw.Files()
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}

	gzPath, err := CompressFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(gzPath, ".log.gz") {
		t.Errorf("gz path = %s", gzPath)
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Error("original should be removed after compression")
	}

	entries, st, err := ReadFiles([]string{gzPath}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 || st.Entries != 10 || st.Malformed != 0 {
		t.Errorf("read %d entries (stats %+v)", len(entries), st)
	}
}

func TestFindLogsMixed(t *testing.T) {
	dir := t.TempDir()
	dw, err := NewDailyWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two days of entries.
	for _, ts := range []time.Time{TraceEpoch.Add(time.Hour), TraceEpoch.Add(25 * time.Hour)} {
		if err := dw.Write(sampleEntry(ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	files := dw.Files()
	// Compress only the first day.
	if _, err := CompressFile(files[0]); err != nil {
		t.Fatal(err)
	}

	found, err := FindLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 {
		t.Fatalf("found %v", found)
	}
	entries, _, err := ReadFiles(found, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("entries = %d", len(entries))
	}
}

func TestCompressFileErrors(t *testing.T) {
	if _, err := CompressFile(filepath.Join(t.TempDir(), "missing.log")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestOpenLogRejectsCorruptGzip(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "wms-x.log.gz")
	if err := os.WriteFile(bad, []byte("this is not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFiles([]string{bad}, true); err == nil {
		t.Error("corrupt gzip: want error")
	}
}
