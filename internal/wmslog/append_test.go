package wmslog

import (
	"math/rand/v2"
	"strings"
	"testing"
	"time"
)

// randomEntry draws a structurally valid entry: exactly what Validate
// accepts, over wide value ranges including the dash/underscore
// encodings of the optional fields.
func randomEntry(rng *rand.Rand) *Entry {
	word := func(minLen int, spaces bool) string {
		const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.:/-%"
		n := minLen + rng.IntN(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			if spaces && i > 0 && i < n-1 && rng.IntN(6) == 0 {
				b.WriteByte(' ')
				continue
			}
			b.WriteByte(letters[rng.IntN(len(letters))])
		}
		return b.String()
	}
	optional := func() string {
		if rng.IntN(4) == 0 {
			return ""
		}
		return word(1, true)
	}
	return &Entry{
		Timestamp: time.Date(1980+rng.IntN(120), time.Month(1+rng.IntN(12)), 1+rng.IntN(28),
			rng.IntN(24), rng.IntN(60), rng.IntN(60), 0, time.UTC),
		ClientIP:     word(1, false),
		PlayerID:     word(1, false),
		ClientOS:     optional(),
		ClientCPU:    optional(),
		URIStem:      word(1, false),
		Duration:     rng.Int64N(1 << 40),
		Bytes:        rng.Int64N(1 << 50),
		AvgBandwidth: rng.Int64N(1 << 40),
		PacketsLost:  rng.Int64N(1 << 30),
		ServerCPU:    float64(rng.IntN(10001)) / 100,
		Referer:      optional(),
		Status:       rng.IntN(1000),
		ASNumber:     rng.IntN(1 << 20),
		Country:      optional(),
	}
}

// legacyLine renders an entry through the original fmt-based encoder —
// the reference AppendEntry must match byte for byte.
func legacyLine(e *Entry) string {
	var b strings.Builder
	e.marshalLine(&b)
	return b.String()
}

// TestAppendEntryMatchesLegacy is the encoder-equivalence property:
// AppendEntry output is byte-identical to the legacy Fprintf encoder
// for arbitrary valid entries.
func TestAppendEntryMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 0))
	for i := 0; i < 5000; i++ {
		e := randomEntry(rng)
		if err := e.Validate(); err != nil {
			t.Fatalf("generator produced invalid entry: %v", err)
		}
		got := string(AppendEntry(nil, e))
		want := legacyLine(e)
		if got != want {
			t.Fatalf("iteration %d: encoders disagree\nappend: %q\nlegacy: %q\nentry: %+v", i, got, want, e)
		}
	}
}

// TestAppendEntryMatchesLegacyEdgeCases pins the boundary values the
// random sweep may miss.
func TestAppendEntryMatchesLegacyEdgeCases(t *testing.T) {
	base := func() *Entry {
		return &Entry{
			Timestamp: time.Date(2002, 1, 6, 0, 0, 0, 0, time.UTC),
			ClientIP:  "10.0.0.1", PlayerID: "p", URIStem: "/live/feed1",
		}
	}
	cases := map[string]func(*Entry){
		"zero values":       func(e *Entry) {},
		"cpu 100":           func(e *Entry) { e.ServerCPU = 100 },
		"cpu tiny":          func(e *Entry) { e.ServerCPU = 0.004999 },
		"cpu two decimals":  func(e *Entry) { e.ServerCPU = 99.99 },
		"underscored field": func(e *Entry) { e.ClientOS = "Windows 98 SE" },
		"literal dash":      func(e *Entry) { e.Country = "-" },
		"year 0042":         func(e *Entry) { e.Timestamp = time.Date(42, 7, 9, 3, 4, 5, 0, time.UTC) },
		"end of day":        func(e *Entry) { e.Timestamp = time.Date(2002, 12, 31, 23, 59, 59, 0, time.UTC) },
		"big numbers": func(e *Entry) {
			e.Duration = 1<<62 - 1
			e.Bytes = 1<<62 - 1
			e.AvgBandwidth = 1<<62 - 1
			e.PacketsLost = 1<<62 - 1
			e.Status = 1<<31 - 1
			e.ASNumber = 1<<31 - 1
		},
		"negative status": func(e *Entry) { e.Status = -7; e.ASNumber = -42 },
	}
	for name, mutate := range cases {
		e := base()
		mutate(e)
		got := string(AppendEntry(nil, e))
		want := legacyLine(e)
		if got != want {
			t.Errorf("%s: encoders disagree\nappend: %q\nlegacy: %q", name, got, want)
		}
	}
}

// TestAppendEntryParseRoundTrip is the decode property: ParseAppend
// over AppendEntry output recovers the entry. ServerCPU is quantized
// by the %.2f wire format, so the re-encoded line — not the float bit
// pattern — is the fixpoint; underscores decode as spaces by design,
// so optional fields containing literal underscores are excluded (the
// legacy parser has the same lossiness).
func TestAppendEntryParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 0))
	for i := 0; i < 5000; i++ {
		e := randomEntry(rng)
		line := AppendEntry(nil, e)
		var back Entry
		if err := ParseAppend(&back, line); err != nil {
			t.Fatalf("iteration %d: ParseAppend(%q): %v", i, line, err)
		}
		reencoded := AppendEntry(nil, &back)
		if string(reencoded) != string(line) {
			t.Fatalf("iteration %d: round trip not a fixpoint\nfirst:  %q\nsecond: %q", i, line, reencoded)
		}
		cmp := *e
		cmp.ServerCPU = back.ServerCPU // quantized by the wire format
		// Optional fields fold through the dash encoding: a literal
		// "-" reads back as absent (same lossiness as the legacy
		// parser); the wire bytes above are the authoritative check.
		for _, f := range []*string{&cmp.ClientOS, &cmp.ClientCPU, &cmp.Referer, &cmp.Country} {
			if *f == "-" {
				*f = ""
			}
		}
		if cmp != back {
			t.Fatalf("iteration %d: fields differ\nin:  %+v\nout: %+v", i, e, back)
		}
	}
}

// TestParseAppendAgreesWithLegacyParser: every canonical line must
// decode identically through the fast path and the tolerant splitter.
func TestParseAppendAgreesWithLegacyParser(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 0))
	p := &Parser{}
	for i := 0; i < 2000; i++ {
		e := randomEntry(rng)
		line := AppendEntry(nil, e)
		var fast Entry
		if err := ParseAppend(&fast, line); err != nil {
			t.Fatalf("fast path rejected canonical line %q: %v", line, err)
		}
		legacy, err := p.parseLine(string(line))
		if err != nil {
			t.Fatalf("legacy parser rejected canonical line %q: %v", line, err)
		}
		if fast != *legacy {
			t.Fatalf("parsers disagree on %q\nfast:   %+v\nlegacy: %+v", line, fast, *legacy)
		}
	}
}

// TestParseAppendRejectsMalformed: the fast path must fail (never
// mis-parse) on lines outside the canonical format.
func TestParseAppendRejectsMalformed(t *testing.T) {
	good := string(AppendEntry(nil, &Entry{
		Timestamp: time.Date(2002, 1, 6, 1, 2, 3, 0, time.UTC),
		ClientIP:  "10.0.0.1", PlayerID: "p", URIStem: "/u", ServerCPU: 1.25,
	}))
	bad := []string{
		"",
		"2002-01-06",
		good + " extra",
		strings.Replace(good, " ", "  ", 1),     // doubled separator
		strings.Replace(good, "1.25", "1.2", 1), // not 2 decimals
		strings.Replace(good, "1.25", "1.2e0", 1), // scientific
		strings.Replace(good, "2002-01-06", "2002-13-06", 1),
		strings.Replace(good, "2002-01-06", "2002-02-30", 1),
		strings.Replace(good, "01:02:03", "25:02:03", 1),
		strings.Replace(good, "01:02:03", "01:02:3x", 1),
		// int64 overflow must error like strconv's ErrRange, not wrap:
		// 19 digits > MaxInt64 in the sc-status column.
		strings.Replace(good, " 0 -", " 9300000000000000000 -", 1),
		// A tab inside a column: strings.Fields would split it into an
		// extra column, so the fast path must not accept it as one.
		strings.Replace(good, "10.0.0.1", "10.0\t0.1", 1),
		// Non-ASCII (incl. unicode whitespace like U+00A0) defers to
		// the legacy splitter rather than risking a field mismatch.
		strings.Replace(good, "10.0.0.1", "10.0\u00a00.1", 1),
	}
	for _, line := range bad {
		var e Entry
		if err := ParseAppend(&e, []byte(line)); err == nil {
			t.Errorf("ParseAppend accepted %q", line)
		}
	}
}

// TestAppendEntryZeroAlloc pins the tentpole property: encoding into a
// pre-sized buffer allocates nothing, and a warm Writer allocates
// nothing per entry.
func TestAppendEntryZeroAlloc(t *testing.T) {
	e := &Entry{
		Timestamp: time.Date(2002, 1, 6, 1, 2, 3, 0, time.UTC),
		ClientIP:  "200.131.17.42", PlayerID: "player-1", ClientOS: "Windows 98",
		ClientCPU: "Pentium III", URIStem: "/live/feed1", Duration: 1742,
		Bytes: 23953750, AvgBandwidth: 110000, PacketsLost: 3, ServerCPU: 4.37,
		Referer: "http://a/b", Status: 200, ASNumber: 1916, Country: "BR",
	}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendEntry(buf[:0], e)
	}); n != 0 {
		t.Errorf("AppendEntry allocates %v/op, want 0", n)
	}

	lw := NewWriter(discard{})
	if err := lw.Write(e); err != nil { // header + buffer warm-up
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := lw.Write(e); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm Writer.Write allocates %v/op, want 0", n)
	}
}

// discard is io.Discard without the io import ambiguity in asserts.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
