package wmslog

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"time"
)

// FuzzAppendEntryRoundTrip fuzzes the encode/decode pair over
// arbitrary field values: any structurally valid entry must encode
// identically to the legacy Fprintf path, parse back through
// ParseAppend, and re-encode to the same bytes.
func FuzzAppendEntryRoundTrip(f *testing.F) {
	f.Add(int64(1010275384), "10.0.0.1", "player-1", "Windows 98", "Pentium III",
		"/live/feed1", int64(1742), int64(23953750), int64(110000), int64(3),
		int64(437), "http://show.example.br/aovivo", 200, 1916, "BR")
	f.Add(int64(0), "a", "b", "", "", "/", int64(0), int64(0), int64(0), int64(0),
		int64(0), "", 0, 0, "")
	f.Add(int64(1<<40), "x", "y", "has space", "-", "/u", int64(1<<60), int64(1<<60),
		int64(1<<60), int64(1<<60), int64(10000), "ref", -5, -6, "B R")

	f.Fuzz(func(t *testing.T, unix int64, ip, player, osName, cpu, uri string,
		duration, bytesServed, bw, lost int64, cpuCenti int64,
		referer string, status, asn int, country string) {
		e := &Entry{
			// Clamp into the 4-digit-year range the wire format (and
			// time.Parse round-tripping) covers.
			Timestamp:    time.Unix(((unix%253402300800)+253402300800)%253402300800, 0).UTC(),
			ClientIP:     ip,
			PlayerID:     player,
			ClientOS:     osName,
			ClientCPU:    cpu,
			URIStem:      uri,
			Duration:     duration,
			Bytes:        bytesServed,
			AvgBandwidth: bw,
			PacketsLost:  lost,
			ServerCPU:    float64(((cpuCenti%10001)+10001)%10001) / 100,
			Referer:      referer,
			Status:       status,
			ASNumber:     asn,
			Country:      country,
		}
		if err := e.Validate(); err != nil {
			t.Skip() // fuzzer fabricated an entry the writer would refuse
		}

		line := AppendEntry(nil, e)

		// Property 1: byte-identical to the legacy encoder.
		var legacy strings.Builder
		e.marshalLine(&legacy)
		if string(line) != legacy.String() {
			t.Fatalf("encoders disagree\nappend: %q\nlegacy: %q", line, legacy.String())
		}

		// Property 2: ParseAppend accepts every encoder-produced line
		// made of the fast path's byte alphabet and re-encodes it to
		// the same bytes. Lines carrying control or non-ASCII bytes in
		// field content are deliberately deferred to the tolerant
		// legacy parser, so a rejection is only legal for those.
		var back Entry
		if err := ParseAppend(&back, line); err != nil {
			for _, c := range line {
				if c != ' ' && (c < 0x21 || c >= 0x80) {
					return // justified conservative rejection
				}
			}
			t.Fatalf("fast path rejected all-ASCII canonical line %q: %v", line, err)
		}
		if got := AppendEntry(nil, &back); string(got) != string(line) {
			t.Fatalf("round trip not a fixpoint\nfirst:  %q\nsecond: %q", line, got)
		}

		// Property 3: non-float fields survive exactly, modulo the
		// documented underscore/space folding of optional fields.
		fold := func(s string) string {
			if s == "-" {
				return "" // a literal dash reads back as absent, like empty
			}
			return strings.ReplaceAll(s, "_", " ")
		}
		if back.ClientIP != e.ClientIP || back.PlayerID != e.PlayerID ||
			back.URIStem != e.URIStem || back.Status != e.Status ||
			back.ASNumber != e.ASNumber || back.Duration != e.Duration ||
			back.Bytes != e.Bytes || back.AvgBandwidth != e.AvgBandwidth ||
			back.PacketsLost != e.PacketsLost ||
			!back.Timestamp.Equal(e.Timestamp) ||
			back.ClientOS != fold(e.ClientOS) || back.ClientCPU != fold(e.ClientCPU) ||
			back.Referer != fold(e.Referer) || back.Country != fold(e.Country) {
			t.Fatalf("fields differ\nin:  %+v\nout: %+v", e, back)
		}
	})
}

// FuzzBinaryRoundTrip fuzzes the binary framing: any writer-accepted
// entry must survive binary → Entry → text → Entry with every field
// intact, and ParseBinary must never panic on arbitrary record bytes.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(int64(1010275384), "10.0.0.1", "player-1", "Windows 98", "Pentium III",
		"/live/feed1", int64(1742), int64(23953750), int64(110000), int64(3),
		int64(437), "http://show.example.br/aovivo", 200, 1916, "BR", []byte{})
	f.Add(int64(1), "a", "b", "", "", "/", int64(0), int64(0), int64(0), int64(0),
		int64(0), "", 0, 0, "", []byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x7f})
	f.Add(int64(1<<40), "x", "y", "os", "-", "/u", int64(1<<60), int64(1<<60),
		int64(1<<60), int64(1<<60), int64(10000), "ref", 404, 7, "PT",
		[]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, unix int64, ip, player, osName, cpu, uri string,
		duration, bytesServed, bw, lost int64, cpuCenti int64,
		referer string, status, asn int, country string, raw []byte) {
		// Robustness half: arbitrary record bytes must error or decode,
		// never panic — including against a dictionary that has state.
		var junk Entry
		d := NewBinaryDict()
		d.admit("seed", true)
		_ = ParseBinary(&junk, raw, d)

		e := &Entry{
			Timestamp:    time.Unix(((unix%253402300800)+253402300800)%253402300800, 0).UTC(),
			ClientIP:     ip,
			PlayerID:     player,
			ClientOS:     osName,
			ClientCPU:    cpu,
			URIStem:      uri,
			Duration:     duration,
			Bytes:        bytesServed,
			AvgBandwidth: bw,
			PacketsLost:  lost,
			ServerCPU:    float64(((cpuCenti%10001)+10001)%10001) / 100,
			Referer:      referer,
			Status:       status,
			ASNumber:     asn,
			Country:      country,
		}
		if err := e.Validate(); err != nil {
			t.Skip() // fuzzer fabricated an entry the writer would refuse
		}
		if e.Status < math.MinInt32 || e.Status > math.MaxInt32 ||
			e.ASNumber < math.MinInt32 || e.ASNumber > math.MaxInt32 {
			t.Skip() // beyond the wire format's int32 range for these fields
		}

		// Binary → Entry: encode twice through one dictionary so both the
		// inline-first and the back-reference encodings are exercised.
		dict := NewBinaryDict()
		rec1 := AppendEntryBinary(nil, e, dict)
		rec2 := AppendEntryBinary(nil, e, dict)
		rdict := NewBinaryDict()
		var got1, got2 Entry
		for i, rec := range [][]byte{rec1, rec2} {
			ln, n := binary.Uvarint(rec)
			if n <= 0 || uint64(len(rec)-n) != ln {
				t.Fatalf("encoding %d: bad frame: len %d prefix %d of %d", i, ln, n, len(rec))
			}
			out := &got1
			if i == 1 {
				out = &got2
			}
			if err := ParseBinary(out, rec[n:], rdict); err != nil {
				t.Fatalf("encoding %d rejected: %v", i, err)
			}
		}
		for _, got := range []*Entry{&got1, &got2} {
			if !got.Timestamp.Equal(e.Timestamp) || got.ClientIP != e.ClientIP ||
				got.PlayerID != e.PlayerID || got.ClientOS != e.ClientOS ||
				got.ClientCPU != e.ClientCPU || got.URIStem != e.URIStem ||
				got.Duration != e.Duration || got.Bytes != e.Bytes ||
				got.AvgBandwidth != e.AvgBandwidth || got.PacketsLost != e.PacketsLost ||
				got.ServerCPU != e.ServerCPU || got.Referer != e.Referer ||
				got.Status != e.Status || got.ASNumber != e.ASNumber ||
				got.Country != e.Country {
				t.Fatalf("binary fields differ\nin:  %+v\nout: %+v", e, got)
			}
		}

		// Entry → text → Entry: the decoded entry renders to canonical
		// text that parses back equal, so a binary detour never disturbs
		// the text-form digest contracts. Lines outside the fast path's
		// byte alphabet are deferred to the tolerant parser by design.
		line := AppendEntry(nil, &got1)
		var back Entry
		if err := ParseAppend(&back, line); err != nil {
			for _, c := range line {
				if c != ' ' && (c < 0x21 || c >= 0x80) {
					return // justified conservative rejection
				}
			}
			t.Fatalf("text reparse rejected %q: %v", line, err)
		}
		if got := AppendEntry(nil, &back); string(got) != string(line) {
			t.Fatalf("binary → text not a fixpoint\nfirst:  %q\nsecond: %q", line, got)
		}
	})
}
