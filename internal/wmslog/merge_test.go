package wmslog

import (
	"bytes"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSessionRefRoundTrip(t *testing.T) {
	cases := []struct {
		session int64
		seq     int
	}{{0, 0}, {1, 2}, {123456789, 42}, {1 << 40, 999}}
	for _, c := range cases {
		ref := SessionRef(c.session, c.seq)
		s, q, ok := ParseSessionRef(ref)
		if !ok || s != c.session || q != c.seq {
			t.Errorf("round trip %d.%d via %q -> %d %d %v", c.session, c.seq, ref, s, q, ok)
		}
	}
	for _, bad := range []string{"", "-", "http://example.com", "event-", "event-1", "event-x.1", "event-1.x", "event--1.0", "event-1.-2"} {
		if _, _, ok := ParseSessionRef(bad); ok {
			t.Errorf("ParseSessionRef(%q) accepted", bad)
		}
	}
}

func TestSessionRefSurvivesLogRoundTrip(t *testing.T) {
	e := testEntryAt(time.Date(2002, 1, 7, 3, 4, 5, 0, time.UTC), 7, 3)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(e); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, _, err := ReadAll(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries", len(entries))
	}
	s, q, ok := entries[0].SessionSeq()
	if !ok || s != 7 || q != 3 {
		t.Fatalf("tag did not survive: %d %d %v", s, q, ok)
	}
}

// testEntryAt builds a valid tagged entry.
func testEntryAt(ts time.Time, session int64, seq int) *Entry {
	return &Entry{
		Timestamp:    ts,
		ClientIP:     "127.0.0.1",
		PlayerID:     "player-1",
		URIStem:      "/live/feed1",
		Duration:     10,
		Bytes:        1000,
		AvgBandwidth: 800,
		Referer:      SessionRef(session, seq),
		Status:       200,
		ASNumber:     1,
		Country:      "BR",
	}
}

// TestMergeEntriesDeterministicOrder: the merged order must be
// (end-time, session, seq) regardless of how entries are partitioned
// across files or ordered within one file.
func TestMergeEntriesDeterministicOrder(t *testing.T) {
	epoch := time.Date(2002, 1, 7, 0, 0, 0, 0, time.UTC)
	var all []*Entry
	session := int64(0)
	for i := 0; i < 300; i++ {
		// Many entries share a timestamp (1-second log resolution), so
		// the session/seq key must carry the order.
		ts := epoch.Add(time.Duration(i/10) * time.Second)
		all = append(all, testEntryAt(ts, session, i%3))
		if i%3 == 2 {
			session++
		}
	}

	rng := rand.New(rand.NewPCG(1, 2))
	baseline := ""
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]*Entry(nil), all...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		k := 1 + trial
		files := make([][]*Entry, k)
		for i, e := range shuffled {
			files[i%k] = append(files[i%k], e)
		}
		merged := MergeEntries(files)
		if len(merged) != len(all) {
			t.Fatalf("trial %d: merged %d of %d", trial, len(merged), len(all))
		}
		for i := 1; i < len(merged); i++ {
			if keyOf(merged[i]).less(keyOf(merged[i-1])) {
				t.Fatalf("trial %d: merged order violated at %d", trial, i)
			}
		}
		var rendered bytes.Buffer
		w := NewWriter(&rendered)
		for _, e := range merged {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		if trial == 0 {
			baseline = rendered.String()
		} else if rendered.String() != baseline {
			t.Fatalf("trial %d: merged bytes differ from baseline for the same entry set", trial)
		}
	}
}

// TestMergeEntriesUntaggedDeterministic: untagged entries share one
// key rank per second, so the rendered-line tiebreak must make their
// merged order independent of partitioning too.
func TestMergeEntriesUntaggedDeterministic(t *testing.T) {
	epoch := time.Date(2002, 1, 7, 0, 0, 0, 0, time.UTC)
	var all []*Entry
	for i := 0; i < 60; i++ {
		e := testEntryAt(epoch.Add(time.Duration(i/20)*time.Second), 0, 0)
		e.Referer = "" // untagged
		e.PlayerID = "player-" + string(rune('a'+i%7))
		e.Bytes = int64(100 + i)
		all = append(all, e)
	}
	rng := rand.New(rand.NewPCG(7, 9))
	render := func(files [][]*Entry) string {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range MergeEntries(files) {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		return buf.String()
	}
	baseline := render([][]*Entry{all})
	for trial := 0; trial < 4; trial++ {
		shuffled := append([]*Entry(nil), all...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		files := make([][]*Entry, 3)
		for i, e := range shuffled {
			files[i%3] = append(files[i%3], e)
		}
		if render(files) != baseline {
			t.Fatalf("trial %d: untagged merge depends on partitioning", trial)
		}
	}
}

// TestMergeFilesAndRealizationDigest: merging K per-node files yields
// the same realization digest as the single-file serve of the same
// realization, and a different realization digests differently.
func TestMergeFilesAndRealizationDigest(t *testing.T) {
	dir := t.TempDir()
	epoch := time.Date(2002, 1, 7, 0, 0, 0, 0, time.UTC)
	var all []*Entry
	for s := int64(0); s < 40; s++ {
		for q := 0; q < 3; q++ {
			e := testEntryAt(epoch.Add(time.Duration(s)*7*time.Second), s, q)
			e.PlayerID = "player-" + string(rune('a'+s%5))
			all = append(all, e)
		}
	}

	writeLog := func(name string, entries []*Entry) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWriter(f)
		for _, e := range entries {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}

	// Partition "by node" pseudo-randomly, with per-node wall-clock
	// jitter in the timestamps (what distinct fleet nodes produce).
	var nodeFiles []string
	parts := make([][]*Entry, 3)
	for i, e := range all {
		n := (i * 7) % 3
		jittered := *e
		jittered.Timestamp = e.Timestamp.Add(time.Duration(n) * 0) // same second: log resolution
		parts[n] = append(parts[n], &jittered)
	}
	for n, p := range parts {
		nodeFiles = append(nodeFiles, writeLog("node"+string(rune('0'+n))+".log", p))
	}
	single := writeLog("single.log", all)

	var mergedFleet bytes.Buffer
	fleetStats, err := MergeFiles(&mergedFleet, nodeFiles)
	if err != nil {
		t.Fatal(err)
	}
	var mergedSingle bytes.Buffer
	singleStats, err := MergeFiles(&mergedSingle, []string{single})
	if err != nil {
		t.Fatal(err)
	}
	if fleetStats.Entries != len(all) || singleStats.Entries != len(all) {
		t.Fatalf("entry counts: fleet %d single %d want %d", fleetStats.Entries, singleStats.Entries, len(all))
	}
	if fleetStats.Tagged != len(all) {
		t.Fatalf("tagged %d of %d", fleetStats.Tagged, len(all))
	}
	if fleetStats.Realization != singleStats.Realization {
		t.Fatalf("fleet realization %s != single %s", fleetStats.Realization, singleStats.Realization)
	}
	if !bytes.Equal(mergedFleet.Bytes(), mergedSingle.Bytes()) {
		t.Fatal("merged fleet log is not byte-identical to merged single log")
	}

	// The merged file parses back to the same entries.
	entries, _, err := ReadAll(bytes.NewReader(mergedFleet.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(all) {
		t.Fatalf("reparsed %d of %d", len(entries), len(all))
	}

	// A different realization (one transfer lost) digests differently.
	lossy := writeLog("lossy.log", all[1:])
	var mergedLossy bytes.Buffer
	lossyStats, err := MergeFiles(&mergedLossy, []string{lossy})
	if err != nil {
		t.Fatal(err)
	}
	if lossyStats.Realization == fleetStats.Realization {
		t.Fatal("lost transfer not reflected in realization digest")
	}
}

// TestMergeFilesStrict: a corrupt node log fails the merge instead of
// silently thinning the realization.
func TestMergeFilesStrict(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.log")
	if err := os.WriteFile(path, []byte("#Fields: "+"date time c-ip\nnot a log line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := MergeFiles(&buf, []string{path}); err == nil {
		t.Fatal("corrupt log merged without error")
	}
}
