// Package wmslog implements a Windows-Media-Server-style access log: the
// on-disk substrate the paper's trace arrived in (Section 2.3).
//
// Each log entry records one client/server request/response pair, written
// when the transfer completes, and carries the seven field groups the
// paper enumerates: client identification (IP, player ID), client
// environment (OS, CPU), requested object (URI), transfer statistics
// (duration, bytes, average bandwidth, packet loss), server load (CPU
// utilization), other metadata (referer, protocol status), and a
// 1-second-resolution timestamp.
//
// The format is a W3C-extended-style space-separated text file with a
// "#Fields:" header, one entry per line, harvested into one file per day
// at midnight — matching the paper's daily log harvests.
package wmslog

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// ErrFormat reports a malformed log line or header.
var ErrFormat = errors.New("wmslog: malformed log data")

// Fields is the canonical column list written in the "#Fields:" header.
// Order matters: Entry encoding and decoding follow it.
var Fields = []string{
	"date",         // YYYY-MM-DD of entry generation
	"time",         // HH:MM:SS of entry generation (1-second resolution)
	"c-ip",         // client IP address
	"c-playerid",   // unique player (client software) ID
	"c-os",         // client operating system
	"c-cpu",        // client CPU class
	"cs-uri-stem",  // requested live object URI
	"x-duration",   // transfer length in seconds
	"sc-bytes",     // bytes served for the transfer
	"avgbandwidth", // average transfer bandwidth in bits/second
	"c-pkts-lost",  // packets lost client-side
	"s-cpu-util",   // server CPU utilization percentage at log time
	"cs(Referer)",  // referer URI
	"sc-status",    // protocol status code
	"s-as",         // origin AS number of the client (resolved offline)
	"s-country",    // origin country of the client (resolved offline)
}

// Entry is one access-log record. Timestamps are wall-clock; the trace
// layer converts them to seconds since trace start.
type Entry struct {
	Timestamp    time.Time // when the entry was generated (transfer end)
	ClientIP     string
	PlayerID     string // unique client software identifier
	ClientOS     string
	ClientCPU    string
	URIStem      string // requested live object, e.g. "/live/feed1"
	Duration     int64  // transfer length in whole seconds
	Bytes        int64  // bytes served
	AvgBandwidth int64  // bits per second
	PacketsLost  int64
	ServerCPU    float64 // server CPU utilization percent
	Referer      string
	Status       int
	ASNumber     int
	Country      string
}

// Validate performs structural sanity checks on an entry before writing.
func (e *Entry) Validate() error {
	if e.Timestamp.IsZero() {
		return fmt.Errorf("%w: zero timestamp", ErrFormat)
	}
	if e.ClientIP == "" || strings.ContainsAny(e.ClientIP, " \t\n") {
		return fmt.Errorf("%w: bad client IP %q", ErrFormat, e.ClientIP)
	}
	if e.PlayerID == "" || strings.ContainsAny(e.PlayerID, " \t\n") {
		return fmt.Errorf("%w: bad player ID %q", ErrFormat, e.PlayerID)
	}
	if e.URIStem == "" || strings.ContainsAny(e.URIStem, " \t\n") {
		return fmt.Errorf("%w: bad URI %q", ErrFormat, e.URIStem)
	}
	if e.Duration < 0 {
		return fmt.Errorf("%w: negative duration %d", ErrFormat, e.Duration)
	}
	if e.Bytes < 0 || e.AvgBandwidth < 0 || e.PacketsLost < 0 {
		return fmt.Errorf("%w: negative transfer statistics", ErrFormat)
	}
	if e.ServerCPU < 0 || e.ServerCPU > 100 {
		return fmt.Errorf("%w: server CPU %v out of [0,100]", ErrFormat, e.ServerCPU)
	}
	return nil
}

// Start returns the transfer start time (Timestamp minus Duration).
func (e *Entry) Start() time.Time {
	return e.Timestamp.Add(-time.Duration(e.Duration) * time.Second)
}

// marshalLine renders the entry as one log line in Fields order.
func (e *Entry) marshalLine(b *strings.Builder) {
	b.WriteString(e.Timestamp.Format("2006-01-02"))
	b.WriteByte(' ')
	b.WriteString(e.Timestamp.Format("15:04:05"))
	fmt.Fprintf(b, " %s %s %s %s %s %d %d %d %d %.2f %s %d %d %s",
		e.ClientIP,
		e.PlayerID,
		dashIfEmpty(e.ClientOS),
		dashIfEmpty(e.ClientCPU),
		e.URIStem,
		e.Duration,
		e.Bytes,
		e.AvgBandwidth,
		e.PacketsLost,
		e.ServerCPU,
		dashIfEmpty(e.Referer),
		e.Status,
		e.ASNumber,
		dashIfEmpty(e.Country),
	)
}

func dashIfEmpty(s string) string {
	if s == "" {
		return "-"
	}
	// Field values are space-separated; spaces inside values would break
	// the line format, so encode them.
	return strings.ReplaceAll(s, " ", "_")
}

func undash(s string) string {
	if s == "-" {
		return ""
	}
	return strings.ReplaceAll(s, "_", " ")
}
