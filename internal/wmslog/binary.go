package wmslog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// Binary framing ("trace v2"): a compact length-prefixed record format
// for the same Entry the text log carries, designed for fleet-scale
// re-analysis where the ~704 ns / 11 allocs per parsed text line is the
// floor under `lsmload -check`, MergeFiles, and every characterization
// pass. The text form stays canonical — RealizationDigest and all
// committed md5 contracts are defined over the text rendering — and
// the binary form is a lossless carrier for it: text → binary → text
// is byte-identical for every canonical line.
//
// File layout:
//
//	file   := magic record*
//	magic  := 0xBF 'W' 'M' 'S' 'B' '1'          (6 bytes)
//	record := uvarint(len(payload)) payload
//
// A payload mirrors Entry in fixed field order — numeric fields first
// as varints, then the seven string fields:
//
//	payload := varint(unixSeconds)    // entry timestamp, 1 s resolution
//	           uvarint(centiCPU)      // ServerCPU in centi-percent
//	           uvarint(Duration) uvarint(Bytes)
//	           uvarint(AvgBandwidth) uvarint(PacketsLost)
//	           varint(Status) varint(ASNumber)
//	           str(ClientIP) str(PlayerID) str(ClientOS) str(ClientCPU)
//	           str(URIStem) str(Referer) str(Country)
//	str     := uvarint(0) uvarint(len) bytes    // first occurrence, interned
//	         | uvarint(dictIndex+1)             // back-reference
//
// Strings are dictionary-coded: the first occurrence travels inline and
// both sides append it to a shared dictionary (capped at binaryDictCap
// entries; beyond the cap strings stay inline and are not assigned, so
// encoder and decoder state never diverge). Access-log string fields
// repeat heavily — player IDs, URIs, OS/CPU classes, countries — so a
// steady-state record is all varints and back-references: decoding
// allocates no strings at all, which is where the ~10× parse win over
// the text fast path comes from.
//
// ServerCPU travels in centi-percent rather than float bits because the
// text form renders it as "%.2f": centi-units are exactly the precision
// the canonical format can express, making the text↔binary conversion
// bijective instead of merely close.

// binaryMagic identifies a framed binary wmslog stream. The first byte
// is deliberately outside ASCII so no text log (which starts with '#'
// or a digit) can collide with it.
var binaryMagic = []byte{0xbf, 'W', 'M', 'S', 'B', '1'}

// maxBinaryRecord bounds one record's payload; anything larger is a
// corrupt length prefix, not a log entry.
const maxBinaryRecord = 1 << 20

// binaryDictCap caps the shared string dictionary. Encoder and decoder
// apply the same cap, so their numbering always agrees; strings past
// the cap simply travel inline.
const binaryDictCap = 1 << 20

// Timestamp validity as unix-second bounds, so the per-record check is
// two integer compares instead of a calendar conversion. These are
// exactly Entry.Validate's rule — year within [0, 9999] and not the
// zero Time:
//
//	minBinaryUnix = time.Date(0, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
//	maxBinaryUnix = time.Date(9999, 12, 31, 23, 59, 59, 0, time.UTC).Unix()
//	zeroTimeUnix  = time.Time{}.Unix()
const (
	minBinaryUnix = -62167219200
	maxBinaryUnix = 253402300799
	zeroTimeUnix  = -62135596800
)

// dictEntry is one interned string with its cached charset verdict:
// whether it is clean for the mandatory text fields (no space/tab/
// newline — Entry.Validate's charset rule), computed once at admission
// so per-record validation of repeated strings is an index lookup, not
// a scan. One struct per entry keeps the decode-side access a single
// cache line instead of two parallel slices.
type dictEntry struct {
	s    string
	safe bool
}

// BinaryDict is the shared string-interning state of one binary stream
// (one per file; records are not self-contained). The zero value is
// not ready — use NewBinaryDict.
type BinaryDict struct {
	ents []dictEntry
	// index is the encode-side reverse map, built lazily so a pure
	// decoder never pays for it.
	index map[string]uint32
}

// NewBinaryDict returns an empty dictionary.
func NewBinaryDict() *BinaryDict {
	return &BinaryDict{}
}

// admit appends s to the dictionary if there is room, mirroring on both
// the encode and decode side.
func (d *BinaryDict) admit(s string, safe bool) {
	if len(d.ents) >= binaryDictCap {
		return
	}
	if d.index != nil {
		d.index[s] = uint32(len(d.ents))
	}
	d.ents = append(d.ents, dictEntry{s: s, safe: safe})
}

// lookup returns the dictionary index of s on the encode side.
func (d *BinaryDict) lookup(s string) (uint32, bool) {
	if d.index == nil {
		// First encode use: build the reverse map for whatever the
		// dictionary already holds (a dict used decode-first).
		d.index = make(map[string]uint32, len(d.ents)+64)
		for i, v := range d.ents {
			d.index[v.s] = uint32(i)
		}
	}
	idx, ok := d.index[s]
	return idx, ok
}

// stringSafe is Entry.Validate's charset rule for mandatory fields.
func stringSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n':
			return false
		}
	}
	return true
}

// AppendEntryBinary appends one framed binary record for e to b —
// uvarint payload length, then the payload — threading string
// interning through d, and returns the extended slice. It is the
// binary twin of AppendEntry: steady state (all strings already in the
// dictionary) it performs no allocation beyond growing b.
//
// The entry is not validated here; BinaryWriter.Write validates before
// encoding, exactly like the text Writer.
//
//lsm:hotpath
func AppendEntryBinary(b []byte, e *Entry, d *BinaryDict) []byte {
	mark := len(b)
	b = binary.AppendVarint(b, e.Timestamp.Unix())
	b = binary.AppendUvarint(b, uint64(centiOf(e.ServerCPU)))
	b = binary.AppendUvarint(b, uint64(e.Duration))
	b = binary.AppendUvarint(b, uint64(e.Bytes))
	b = binary.AppendUvarint(b, uint64(e.AvgBandwidth))
	b = binary.AppendUvarint(b, uint64(e.PacketsLost))
	b = binary.AppendVarint(b, int64(e.Status))
	b = binary.AppendVarint(b, int64(e.ASNumber))
	b = appendBinaryString(b, e.ClientIP, d)
	b = appendBinaryString(b, e.PlayerID, d)
	b = appendBinaryString(b, e.ClientOS, d)
	b = appendBinaryString(b, e.ClientCPU, d)
	b = appendBinaryString(b, e.URIStem, d)
	b = appendBinaryString(b, e.Referer, d)
	b = appendBinaryString(b, e.Country, d)

	// Frame: insert the uvarint payload length before the payload. The
	// payload was appended first because its length is unknown until
	// encoded; the insertion is one bounded memmove, no allocation.
	var pre [binary.MaxVarintLen64]byte
	pn := binary.PutUvarint(pre[:], uint64(len(b)-mark))
	b = append(b, pre[:pn]...)
	copy(b[mark+pn:], b[mark:len(b)-pn])
	copy(b[mark:], pre[:pn])
	return b
}

// appendBinaryString encodes one dictionary-coded string field.
//
//lsm:hotpath
func appendBinaryString(b []byte, s string, d *BinaryDict) []byte {
	if idx, ok := d.lookup(s); ok {
		return binary.AppendUvarint(b, uint64(idx)+1)
	}
	b = binary.AppendUvarint(b, 0)
	b = binary.AppendUvarint(b, uint64(len(s)))
	b = append(b, s...)
	d.admit(s, stringSafe(s))
	return b
}

// centiOf renders ServerCPU at the text format's precision: the
// centi-percent value "%.2f" would print. The fast path covers values
// that are exactly representable centi-units (everything a parsed log
// carries); the slow path formats through the same strconv rounding
// the text encoder uses, so the two encoders can never disagree on the
// last digit.
func centiOf(f float64) int64 {
	c := int64(math.Round(f * 100))
	if c >= -(1<<53)/100 && c <= (1<<53)/100 && float64(c)/100 == f {
		return c
	}
	var scratch [32]byte
	s := strconv.AppendFloat(scratch[:0], f, 'f', 2, 64)
	whole, err := atoi64(s[:len(s)-3])
	if err != nil {
		return c // non-finite: unreachable for validated entries
	}
	frac := int64(s[len(s)-2]-'0')*10 + int64(s[len(s)-1]-'0')
	if s[0] == '-' {
		return whole*100 - frac
	}
	return whole*100 + frac
}

// ParseBinary decodes one record payload (the bytes after the length
// prefix) into *e, overwriting every field and threading string
// interning through d. It enforces the same invariants Entry.Validate
// does — mandatory fields non-empty and space-free, non-negative
// transfer statistics, ServerCPU within [0,100], non-zero timestamp —
// inline, using the dictionary's cached charset verdicts so repeated
// strings are validated by index lookup, not by rescanning.
//
// Any structural violation — short payload, trailing bytes, an
// out-of-range dictionary reference, an overlong string — is ErrFormat.
//
//lsm:hotpath
func ParseBinary(e *Entry, rec []byte, d *BinaryDict) error {
	unix, rec, ok := takeVarint(rec)
	if !ok || unix < minBinaryUnix || unix > maxBinaryUnix || unix == zeroTimeUnix {
		return errBinaryField("timestamp")
	}
	e.Timestamp = time.Unix(unix, 0).UTC()
	centi, rec, ok := takeUvarint(rec)
	if !ok || centi > 10000 {
		return errBinaryField("s-cpu-util")
	}
	e.ServerCPU = float64(centi) / 100
	var v uint64
	if v, rec, ok = takeUvarint(rec); !ok || v > math.MaxInt64 {
		return errBinaryField("x-duration")
	}
	e.Duration = int64(v)
	if v, rec, ok = takeUvarint(rec); !ok || v > math.MaxInt64 {
		return errBinaryField("sc-bytes")
	}
	e.Bytes = int64(v)
	if v, rec, ok = takeUvarint(rec); !ok || v > math.MaxInt64 {
		return errBinaryField("avgbandwidth")
	}
	e.AvgBandwidth = int64(v)
	if v, rec, ok = takeUvarint(rec); !ok || v > math.MaxInt64 {
		return errBinaryField("c-pkts-lost")
	}
	e.PacketsLost = int64(v)
	var sv int64
	if sv, rec, ok = takeVarint(rec); !ok || sv < math.MinInt32 || sv > math.MaxInt32 {
		return errBinaryField("sc-status")
	}
	e.Status = int(sv)
	if sv, rec, ok = takeVarint(rec); !ok || sv < math.MinInt32 || sv > math.MaxInt32 {
		return errBinaryField("s-as")
	}
	e.ASNumber = int(sv)

	var safe bool
	if e.ClientIP, safe, rec, ok = takeBinaryString(rec, d); !ok || e.ClientIP == "" || !safe {
		return errBinaryField("c-ip")
	}
	if e.PlayerID, safe, rec, ok = takeBinaryString(rec, d); !ok || e.PlayerID == "" || !safe {
		return errBinaryField("c-playerid")
	}
	if e.ClientOS, _, rec, ok = takeBinaryString(rec, d); !ok {
		return errBinaryField("c-os")
	}
	if e.ClientCPU, _, rec, ok = takeBinaryString(rec, d); !ok {
		return errBinaryField("c-cpu")
	}
	if e.URIStem, safe, rec, ok = takeBinaryString(rec, d); !ok || e.URIStem == "" || !safe {
		return errBinaryField("cs-uri-stem")
	}
	if e.Referer, _, rec, ok = takeBinaryString(rec, d); !ok {
		return errBinaryField("cs(Referer)")
	}
	if e.Country, _, rec, ok = takeBinaryString(rec, d); !ok {
		return errBinaryField("s-country")
	}
	if len(rec) != 0 {
		return errBinaryTrailing()
	}
	return nil
}

// takeVarint consumes one zigzag varint from rec. The one-byte case is
// kept small enough to inline at every call site; multi-byte values
// (timestamps, Status, ASNumber) take the outlined slow path.
//
//lsm:hotpath
func takeVarint(rec []byte) (int64, []byte, bool) {
	if len(rec) != 0 && rec[0] < 0x80 {
		ux := uint64(rec[0])
		x := int64(ux >> 1)
		if ux&1 != 0 {
			x = ^x
		}
		return x, rec[1:], true
	}
	return takeVarintSlow(rec)
}

//lsm:hotpath
func takeVarintSlow(rec []byte) (int64, []byte, bool) {
	if len(rec) >= 2 && rec[1] < 0x80 {
		ux := uint64(rec[0]&0x7f) | uint64(rec[1])<<7
		x := int64(ux >> 1)
		if ux&1 != 0 {
			x = ^x
		}
		return x, rec[2:], true
	}
	v, n := binary.Varint(rec)
	if n <= 0 {
		return 0, rec, false
	}
	return v, rec[n:], true
}

// takeUvarint consumes one uvarint from rec. String back-references,
// packet counts, and CPU centi-units fit one byte in the common case;
// that path is kept small enough to inline at every call site.
//
//lsm:hotpath
func takeUvarint(rec []byte) (uint64, []byte, bool) {
	if len(rec) != 0 && rec[0] < 0x80 {
		return uint64(rec[0]), rec[1:], true
	}
	return takeUvarintSlow(rec)
}

//lsm:hotpath
func takeUvarintSlow(rec []byte) (uint64, []byte, bool) {
	if len(rec) >= 2 && rec[1] < 0x80 {
		return uint64(rec[0]&0x7f) | uint64(rec[1])<<7, rec[2:], true
	}
	v, n := binary.Uvarint(rec)
	if n <= 0 {
		return 0, rec, false
	}
	return v, rec[n:], true
}

// takeBinaryString consumes one dictionary-coded string. safe reports
// the cached charset verdict (no space/tab/newline) for the string.
//
//lsm:hotpath
func takeBinaryString(rec []byte, d *BinaryDict) (s string, safe bool, rest []byte, ok bool) {
	code, rec, ok := takeUvarint(rec)
	if !ok {
		return "", false, rec, false
	}
	if code > 0 {
		idx := code - 1
		if idx >= uint64(len(d.ents)) {
			return "", false, rec, false
		}
		de := &d.ents[idx]
		return de.s, de.safe, rec, true
	}
	ln, rec, ok := takeUvarint(rec)
	if !ok || ln > uint64(len(rec)) {
		return "", false, rec, false
	}
	s = string(rec[:ln])
	safe = stringSafe(s)
	d.admit(s, safe)
	return s, safe, rec[ln:], true
}

// The decode error constructors live outside the hot path: they run
// only on malformed input, where the parse is about to abort anyway.

func errBinaryField(field string) error {
	return fmt.Errorf("%w: binary field %s", ErrFormat, field)
}

func errBinaryTrailing() error {
	return fmt.Errorf("%w: trailing bytes in binary record", ErrFormat)
}

// BinaryWriter streams entries in the framed binary format, magic
// header first. It mirrors Writer: entries are validated and fully
// rendered before Write returns, never retained.
type BinaryWriter struct {
	w          *bufio.Writer
	dict       *BinaryDict
	buf        []byte // per-writer scratch record, reused across entries
	count      int64
	wroteMagic bool
}

// NewBinaryWriter wraps w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{
		w:    bufio.NewWriterSize(w, 1<<16),
		dict: NewBinaryDict(),
		buf:  make([]byte, 0, 256),
	}
}

// Write validates and appends one entry.
func (bw *BinaryWriter) Write(e *Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if !bw.wroteMagic {
		if _, err := bw.w.Write(binaryMagic); err != nil {
			return fmt.Errorf("wmslog: write binary magic: %w", err)
		}
		bw.wroteMagic = true
	}
	bw.buf = AppendEntryBinary(bw.buf[:0], e, bw.dict)
	if _, err := bw.w.Write(bw.buf); err != nil {
		return fmt.Errorf("wmslog: write binary entry: %w", err)
	}
	bw.count++
	return nil
}

// Count returns the number of entries written.
func (bw *BinaryWriter) Count() int64 { return bw.count }

// Flush flushes buffered data to the underlying writer.
func (bw *BinaryWriter) Flush() error { return bw.w.Flush() }
