package wmslog

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// header lines written at the top of every log file.
const (
	softwareHeader = "#Software: Synthetic Windows Media Server (repro of Veloso et al., IMC 2002)"
	versionHeader  = "#Version: 1.0"
)

// EntryWriter is the sink contract shared by the text Writer and the
// BinaryWriter: validate-and-append one entry, flush buffered bytes,
// report how many entries were written. SyncWriter and DailyWriter are
// generic over it, so every pipeline stage picks its on-disk format by
// constructor, not by code path.
type EntryWriter interface {
	Write(e *Entry) error
	Flush() error
	Count() int64
}

// Writer streams entries to a single io.Writer with the standard header.
type Writer struct {
	w           *bufio.Writer
	wroteHeader bool
	count       int64
	buf         []byte // per-writer scratch line, reused across entries
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// Write validates and appends one entry. The entry is fully rendered
// before the call returns; Writer never retains it.
func (lw *Writer) Write(e *Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if !lw.wroteHeader {
		if err := lw.writeHeader(); err != nil {
			return err
		}
		lw.wroteHeader = true
	}
	lw.buf = AppendEntry(lw.buf[:0], e)
	lw.buf = append(lw.buf, '\n')
	if _, err := lw.w.Write(lw.buf); err != nil {
		return fmt.Errorf("wmslog: write entry: %w", err)
	}
	lw.count++
	return nil
}

func (lw *Writer) writeHeader() error {
	for _, line := range []string{
		softwareHeader,
		versionHeader,
		"#Fields: " + strings.Join(Fields, " "),
	} {
		if _, err := lw.w.WriteString(line + "\n"); err != nil {
			return fmt.Errorf("wmslog: write header: %w", err)
		}
	}
	return nil
}

// Count returns the number of entries written.
func (lw *Writer) Count() int64 { return lw.count }

// Flush flushes buffered data to the underlying writer.
func (lw *Writer) Flush() error { return lw.w.Flush() }

// SyncWriter makes an EntryWriter safe for concurrent use — the form a
// live server's completion sink needs, where connection handlers finish
// (and log) concurrently. Each Write is atomic: entries never
// interleave within a record, though their order across writers is
// whatever the scheduler produced (entry timestamps, not file order,
// carry time).
type SyncWriter struct {
	mu sync.Mutex
	w  EntryWriter
}

// NewSyncWriter wraps w. The underlying writer must no longer be used
// directly.
func NewSyncWriter(w EntryWriter) *SyncWriter {
	return &SyncWriter{w: w}
}

// Write validates and appends one entry.
func (sw *SyncWriter) Write(e *Entry) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Write(e)
}

// Flush flushes buffered data to the underlying writer.
func (sw *SyncWriter) Flush() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Flush()
}

// Count returns the number of entries written.
func (sw *SyncWriter) Count() int64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Count()
}

// DailyWriter splits entries across one log file per calendar day,
// mirroring the paper's midnight log harvests ("Logs were harvested daily
// (at midnight)", Section 2.3). Files are named
// "wms-YYYY-MM-DD.log" inside Dir.
//
// Entries must be written in non-decreasing timestamp order; the writer
// rotates when an entry's date moves past the current file's date.
//
// With Binary set, daily files carry the length-prefixed binary framing
// instead of text lines. Each file opens its own dictionary (a reader
// never needs cross-file state), and downstream readers auto-detect the
// format by magic bytes, so mixed text/binary directories merge fine.
type DailyWriter struct {
	Dir    string
	Binary bool

	cur     *os.File
	curDay  int // packed y*10000 + m*100 + d of the open file, 0 when none
	writer  EntryWriter
	files   []string
	entries int64
}

// NewDailyWriter creates the directory if needed and returns a writer
// producing text daily files.
func NewDailyWriter(dir string) (*DailyWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wmslog: create log dir: %w", err)
	}
	return &DailyWriter{Dir: dir}, nil
}

// NewDailyBinaryWriter is NewDailyWriter with the binary framing.
func NewDailyBinaryWriter(dir string) (*DailyWriter, error) {
	dw, err := NewDailyWriter(dir)
	if err != nil {
		return nil, err
	}
	dw.Binary = true
	return dw, nil
}

// Write routes the entry to the file for its calendar day. The day
// check is a packed-integer compare, so the hot path formats no date
// string — only an actual rotation (once per simulated day) does.
func (dw *DailyWriter) Write(e *Entry) error {
	y, m, d := e.Timestamp.Date()
	day := y*10000 + int(m)*100 + d
	if day != dw.curDay {
		if err := dw.rotate(day, e.Timestamp); err != nil {
			return err
		}
	}
	if err := dw.writer.Write(e); err != nil {
		return err
	}
	dw.entries++
	return nil
}

func (dw *DailyWriter) rotate(day int, ts time.Time) error {
	if err := dw.closeCurrent(); err != nil {
		return err
	}
	name := filepath.Join(dw.Dir, "wms-"+ts.Format("2006-01-02")+".log")
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("wmslog: rotate to %s: %w", name, err)
	}
	dw.cur = f
	dw.curDay = day
	if dw.Binary {
		dw.writer = NewBinaryWriter(f)
	} else {
		dw.writer = NewWriter(f)
	}
	dw.files = append(dw.files, name)
	return nil
}

func (dw *DailyWriter) closeCurrent() error {
	if dw.cur == nil {
		return nil
	}
	if err := dw.writer.Flush(); err != nil {
		dw.cur.Close()
		return err
	}
	if err := dw.cur.Close(); err != nil {
		return fmt.Errorf("wmslog: close log file: %w", err)
	}
	dw.cur = nil
	dw.writer = nil
	return nil
}

// Close flushes and closes the current file.
func (dw *DailyWriter) Close() error { return dw.closeCurrent() }

// Files returns the paths of all files written so far, in creation order.
func (dw *DailyWriter) Files() []string {
	out := make([]string, len(dw.files))
	copy(out, dw.files)
	return out
}

// Entries returns the total number of entries written across all files.
func (dw *DailyWriter) Entries() int64 { return dw.entries }

// TraceEpoch is the default wall-clock instant of trace second 0:
// midnight, Sunday 2002-01-06 — "28 days in early 2002" starting on a
// Sunday, as in Figure 4 (left).
var TraceEpoch = time.Date(2002, time.January, 6, 0, 0, 0, 0, time.UTC)
