package wmslog

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/heapx"
)

// A fleet of media servers produces one transfer log per node; the
// verification machinery (analyze.CompareTraces, md5-identical log
// contracts) wants one log. MergeFiles is the bridge: a deterministic
// K-way merge of per-node logs into a single log whose entry order
// depends only on entry content — (end-time, session, seq, rendered
// line) — never on which node served a transfer or how goroutines
// interleaved their completion writes. Two fleet runs that serve the
// same realization merge to the same file modulo wall-clock jitter, and
// RealizationDigest below removes even that: it hashes the
// timing-independent identity of the realization, so a pure-hash-policy
// fleet run is byte-comparable to a single-node serve of the same
// workload.

// SessionRef renders a workload event identity as the referer-field tag
// a tagged transfer is logged with. The format has no spaces (referer
// is one space-separated column) and survives the round trip through
// dash-encoding.
func SessionRef(session int64, seq int) string {
	return "event-" + strconv.FormatInt(session, 10) + "." + strconv.Itoa(seq)
}

// ParseSessionRef decodes a SessionRef tag. ok is false for any other
// referer content (foreign logs carry real referer URIs).
func ParseSessionRef(s string) (session int64, seq int, ok bool) {
	rest, found := strings.CutPrefix(s, "event-")
	if !found {
		return 0, 0, false
	}
	sess, seqs, found := strings.Cut(rest, ".")
	if !found {
		return 0, 0, false
	}
	session, err := strconv.ParseInt(sess, 10, 64)
	if err != nil || session < 0 {
		return 0, 0, false
	}
	seq, err = strconv.Atoi(seqs)
	if err != nil || seq < 0 {
		return 0, 0, false
	}
	return session, seq, true
}

// SessionSeq returns the workload event identity a tagged transfer was
// logged with, or ok=false for untagged entries.
func (e *Entry) SessionSeq() (session int64, seq int, ok bool) {
	return ParseSessionRef(e.Referer)
}

// mergeKey is the deterministic total order MergeFiles sorts by:
// end-time first (the log's native order), then the workload event
// identity, then — for untagged entries only — the fully rendered line
// as the final tiebreak. Tagged entries are unique by (session, seq),
// so rendering their lines up front would only double the merge's
// memory for a tiebreak that never fires; untagged entries share one
// key rank per second and need the content order to merge
// reproducibly across partitionings.
type mergeKey struct {
	unix    int64
	session int64
	seq     int
	line    string
}

func keyOf(e *Entry) mergeKey {
	k := mergeKey{unix: e.Timestamp.Unix(), session: int64(UntaggedKeySession), seq: 0}
	if s, q, ok := e.SessionSeq(); ok {
		k.session, k.seq = s, q
		return k
	}
	k.line = string(AppendEntry(nil, e))
	return k
}

// UntaggedKeySession is the session rank untagged entries merge under:
// below every real tag, so tagged and untagged entries never interleave
// ambiguously within one timestamp.
const UntaggedKeySession = -1

func (k mergeKey) less(o mergeKey) bool {
	if k.unix != o.unix {
		return k.unix < o.unix
	}
	if k.session != o.session {
		return k.session < o.session
	}
	if k.seq != o.seq {
		return k.seq < o.seq
	}
	return k.line < o.line
}

// MergeStats summarizes one merge.
type MergeStats struct {
	Files   int
	Entries int
	// Tagged counts entries carrying a session/seq workload tag.
	Tagged int
	// Binary counts input entries that arrived in the binary framing
	// (inputs are format-mixed freely; the merged output is always
	// canonical text).
	Binary int
	// Realization is the hex md5 of the merged realization — see
	// RealizationDigest.
	Realization string
}

// MergeEntries merges per-node entry slices into one slice in the
// deterministic (end-time, session, seq, line) order. Inputs need not
// be sorted (a node's completion sink writes in goroutine-completion
// order, which can invert neighbors around a second boundary); each
// input is sorted first, then the sorted runs K-way merge through one
// shared heap of cursors.
func MergeEntries(files [][]*Entry) []*Entry {
	type cursor struct {
		entries []*Entry
		keys    []mergeKey
		pos     int
	}
	total := 0
	cursors := make([]*cursor, 0, len(files))
	for _, entries := range files {
		if len(entries) == 0 {
			continue
		}
		idx := make([]int, len(entries))
		keys := make([]mergeKey, len(entries))
		for i, e := range entries {
			idx[i] = i
			keys[i] = keyOf(e)
		}
		sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]].less(keys[idx[b]]) })
		c := &cursor{
			entries: make([]*Entry, len(entries)),
			keys:    make([]mergeKey, len(entries)),
		}
		for i, j := range idx {
			c.entries[i] = entries[j]
			c.keys[i] = keys[j]
		}
		cursors = append(cursors, c)
		total += len(entries)
	}

	h := heapx.New(func(a, b *cursor) bool { return a.keys[a.pos].less(b.keys[b.pos]) })
	for _, c := range cursors {
		h.Push(c)
	}
	out := make([]*Entry, 0, total)
	for h.Len() > 0 {
		c := *h.Top()
		out = append(out, c.entries[c.pos])
		c.pos++
		if c.pos < len(c.entries) {
			h.FixTop()
		} else {
			h.Pop()
		}
	}
	return out
}

// MergeFiles parses each per-node log (strictly — a corrupt node log
// must fail the merge, not silently thin it), merges the entries
// deterministically, and writes one canonical log to w. The returned
// stats carry the realization digest of the merged log.
func MergeFiles(w io.Writer, paths []string) (MergeStats, error) {
	stats := MergeStats{Files: len(paths)}
	files := make([][]*Entry, 0, len(paths))
	for _, path := range paths {
		r, closer, err := openLog(path)
		if err != nil {
			return stats, err
		}
		entries, st, err := ReadAll(r, false)
		closer.Close()
		if err != nil {
			return stats, fmt.Errorf("wmslog: merge %s: %w", path, err)
		}
		stats.Binary += st.Binary
		files = append(files, entries)
	}
	merged := MergeEntries(files)

	lw := NewWriter(w)
	for _, e := range merged {
		if err := lw.Write(e); err != nil {
			return stats, err
		}
	}
	if err := lw.Flush(); err != nil {
		return stats, err
	}
	stats.Entries = len(merged)
	for _, e := range merged {
		if _, _, ok := e.SessionSeq(); ok {
			stats.Tagged++
		}
	}
	stats.Realization = RealizationDigest(merged)
	return stats, nil
}

// RealizationDigest hashes the timing-independent identity of a served
// workload realization: the multiset of (session, seq, player, URI)
// tuples, canonically ordered. Wall-clock fields (timestamps, measured
// durations, byte counts) are excluded, so two serves of the same
// offered workload — one fleet-merged, one single-node — digest
// identically exactly when they served the same transfers for the same
// clients, regardless of node assignment or scheduling jitter. Only
// tagged entries carry an identity; for untagged entries the tuple
// degenerates to (player, URI), which still pins the per-client object
// multiset.
func RealizationDigest(entries []*Entry) string {
	type ident struct {
		session int64
		seq     int
		player  string
		uri     string
	}
	ids := make([]ident, len(entries))
	for i, e := range entries {
		id := ident{session: int64(UntaggedKeySession), player: e.PlayerID, uri: e.URIStem}
		if s, q, ok := e.SessionSeq(); ok {
			id.session, id.seq = s, q
		}
		ids[i] = id
	}
	sort.Slice(ids, func(a, b int) bool {
		x, y := ids[a], ids[b]
		if x.session != y.session {
			return x.session < y.session
		}
		if x.seq != y.seq {
			return x.seq < y.seq
		}
		if x.player != y.player {
			return x.player < y.player
		}
		return x.uri < y.uri
	})
	h := md5.New()
	var buf []byte
	for _, id := range ids {
		buf = strconv.AppendInt(buf[:0], id.session, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(id.seq), 10)
		buf = append(buf, ' ')
		buf = append(buf, id.player...)
		buf = append(buf, ' ')
		buf = append(buf, id.uri...)
		buf = append(buf, '\n')
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}
