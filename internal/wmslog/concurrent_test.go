package wmslog

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSyncWriterConcurrentRoundTrip hammers one log through concurrent
// writers — the shape of a live server's completion sink — and checks
// the result parses back losslessly: every entry intact, none torn or
// interleaved.
func TestSyncWriterConcurrentRoundTrip(t *testing.T) {
	const writers = 16
	const perWriter = 200

	var buf bytes.Buffer
	var bufMu sync.Mutex
	sw := NewSyncWriter(NewWriter(lockedWriter{mu: &bufMu, w: &buf}))

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := &Entry{
					Timestamp:    TraceEpoch.Add(time.Duration(w*perWriter+i) * time.Second),
					ClientIP:     fmt.Sprintf("10.0.%d.%d", w, i%250),
					PlayerID:     fmt.Sprintf("player-%02d-%04d", w, i),
					ClientOS:     "Windows 98",
					ClientCPU:    "Pentium III",
					URIStem:      "/live/feed1",
					Duration:     int64(i + 1),
					Bytes:        int64(1000 * (i + 1)),
					AvgBandwidth: 110000,
					ServerCPU:    12.5,
					Status:       200,
					ASNumber:     w + 1,
					Country:      "BR",
				}
				if err := sw.Write(e); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != writers*perWriter {
		t.Fatalf("count = %d, want %d", sw.Count(), writers*perWriter)
	}

	entries, st, err := ReadAll(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Malformed != 0 {
		t.Fatalf("%d malformed lines after concurrent writes", st.Malformed)
	}
	if len(entries) != writers*perWriter {
		t.Fatalf("parsed %d entries, want %d", len(entries), writers*perWriter)
	}

	// Every written entry comes back exactly once.
	seen := make(map[string]*Entry, len(entries))
	for _, e := range entries {
		if _, dup := seen[e.PlayerID]; dup {
			t.Fatalf("player %s appears twice", e.PlayerID)
		}
		seen[e.PlayerID] = e
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			id := fmt.Sprintf("player-%02d-%04d", w, i)
			e, ok := seen[id]
			if !ok {
				t.Fatalf("entry %s lost", id)
			}
			if e.Duration != int64(i+1) || e.Bytes != int64(1000*(i+1)) || e.ASNumber != w+1 {
				t.Fatalf("entry %s corrupted: %+v", id, e)
			}
		}
	}
}

// lockedWriter guards the test buffer: the SyncWriter serializes entry
// writes, but Flush pushes bufio contents into the underlying writer,
// and bytes.Buffer itself is not safe for the final concurrent read.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
