package wmslog

import (
	"fmt"
	"strconv"
	"time"
)

// AppendEntry appends e rendered as one log line (no trailing newline)
// to b and returns the extended slice. The output is byte-identical to
// the legacy fmt.Fprintf encoder (marshalLine) for every valid entry —
// the equivalence the property tests in append_test.go pin — but does
// not allocate: all numeric fields go through strconv.Append*, the
// timestamp is rendered digit by digit, and string fields are copied
// straight from the entry.
//
// This is the hot-path encoder: Writer, SyncWriter and DailyWriter all
// route through it with a reused scratch buffer, so the serve pipeline
// writes log lines without any per-entry allocation.
//
//lsm:hotpath
func AppendEntry(b []byte, e *Entry) []byte {
	b = appendDate(b, e.Timestamp)
	b = append(b, ' ')
	b = appendClock(b, e.Timestamp)
	b = append(b, ' ')
	b = appendRawField(b, e.ClientIP)
	b = append(b, ' ')
	b = appendRawField(b, e.PlayerID)
	b = append(b, ' ')
	b = appendDashField(b, e.ClientOS)
	b = append(b, ' ')
	b = appendDashField(b, e.ClientCPU)
	b = append(b, ' ')
	b = appendRawField(b, e.URIStem)
	b = append(b, ' ')
	b = strconv.AppendInt(b, e.Duration, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, e.Bytes, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, e.AvgBandwidth, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, e.PacketsLost, 10)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, e.ServerCPU, 'f', 2, 64)
	b = append(b, ' ')
	b = appendDashField(b, e.Referer)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(e.Status), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(e.ASNumber), 10)
	b = append(b, ' ')
	b = appendDashField(b, e.Country)
	return b
}

// appendDate renders t's date as YYYY-MM-DD, matching Format("2006-01-02").
func appendDate(b []byte, t time.Time) []byte {
	y, m, d := t.Date()
	b = appendPadInt(b, y, 4)
	b = append(b, '-')
	b = appendPadInt(b, int(m), 2)
	b = append(b, '-')
	return appendPadInt(b, d, 2)
}

// appendClock renders t's time of day as HH:MM:SS, matching
// Format("15:04:05") at the log's 1-second resolution.
func appendClock(b []byte, t time.Time) []byte {
	h, m, s := t.Clock()
	b = appendPadInt(b, h, 2)
	b = append(b, ':')
	b = appendPadInt(b, m, 2)
	b = append(b, ':')
	return appendPadInt(b, s, 2)
}

// appendPadInt appends v left-padded with zeros to the given width,
// like time.Time.Format's fixed-width verbs (a wider value keeps all
// its digits; negatives fall back to plain formatting).
func appendPadInt(b []byte, v, width int) []byte {
	if v < 0 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	var digits [20]byte
	n := 0
	for x := v; x > 0; x /= 10 {
		digits[n] = byte('0' + x%10)
		n++
	}
	if n == 0 {
		digits[0], n = '0', 1
	}
	for i := n; i < width; i++ {
		b = append(b, '0')
	}
	for i := n - 1; i >= 0; i-- {
		b = append(b, digits[i])
	}
	return b
}

// appendRawField copies a mandatory field (validated non-empty and
// space-free) verbatim.
func appendRawField(b []byte, s string) []byte {
	return append(b, s...)
}

// appendDashField is the append form of dashIfEmpty: "-" for the empty
// string, spaces encoded as underscores otherwise.
func appendDashField(b []byte, s string) []byte {
	if s == "" {
		return append(b, '-')
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			c = '_'
		}
		b = append(b, c)
	}
	return b
}

// ParseAppend is the decoding twin of AppendEntry: it parses one
// canonical data line (exactly 16 single-space-separated columns in
// Fields order, 2-decimal s-cpu-util) into *e, overwriting every field.
// It allocates only the retained string fields — timestamps and all
// numeric columns are decoded in place, with no scratch split or
// sub-string slices — so it is the fast path Parser.Next tries before
// falling back to the tolerant legacy column splitter (which accepts
// repeated whitespace and arbitrary float formats).
//
// The line must not include the trailing newline.
//
//lsm:hotpath
func ParseAppend(e *Entry, line []byte) error {
	cols := fieldSplitter{line: line}
	date, ok := cols.next()
	clock, ok2 := cols.next()
	if !ok || !ok2 {
		return errTruncated()
	}
	ts, err := parseTimestamp(date, clock)
	if err != nil {
		return err
	}
	e.Timestamp = ts
	if e.ClientIP, ok = cols.nextString(); !ok {
		return errMissing("c-ip")
	}
	if e.PlayerID, ok = cols.nextString(); !ok {
		return errMissing("c-playerid")
	}
	if e.ClientOS, ok = cols.nextUndashed(); !ok {
		return errMissing("c-os")
	}
	if e.ClientCPU, ok = cols.nextUndashed(); !ok {
		return errMissing("c-cpu")
	}
	if e.URIStem, ok = cols.nextString(); !ok {
		return errMissing("cs-uri-stem")
	}
	if e.Duration, err = cols.nextInt("x-duration"); err != nil {
		return err
	}
	if e.Bytes, err = cols.nextInt("sc-bytes"); err != nil {
		return err
	}
	if e.AvgBandwidth, err = cols.nextInt("avgbandwidth"); err != nil {
		return err
	}
	if e.PacketsLost, err = cols.nextInt("c-pkts-lost"); err != nil {
		return err
	}
	if e.ServerCPU, err = cols.nextFixed2("s-cpu-util"); err != nil {
		return err
	}
	if e.Referer, ok = cols.nextUndashed(); !ok {
		return errMissing("cs(Referer)")
	}
	status, err := cols.nextInt("sc-status")
	if err != nil {
		return err
	}
	e.Status = int(status)
	asn, err := cols.nextInt("s-as")
	if err != nil {
		return err
	}
	e.ASNumber = int(asn)
	if e.Country, ok = cols.nextUndashed(); !ok {
		return errMissing("s-country")
	}
	if !cols.done() {
		return errTrailing()
	}
	return e.Validate()
}

// The fast path's error constructors live outside the //lsm:hotpath
// decoder body: they run only on malformed input, where the line is
// about to take the allocating legacy fallback anyway.

func errTruncated() error { return fmt.Errorf("%w: truncated line", ErrFormat) }

func errMissing(field string) error { return fmt.Errorf("%w: missing %s", ErrFormat, field) }

func errTrailing() error { return fmt.Errorf("%w: trailing columns", ErrFormat) }

// fieldSplitter walks single-space-separated columns without allocating.
type fieldSplitter struct {
	line []byte
	pos  int
}

// next returns the next column. It is deliberately stricter than the
// tolerant splitter: control bytes (tab included) and non-ASCII bytes
// fail the column, sending the line to the legacy path — the fast
// path must never *accept* a line `strings.Fields` would split
// differently (tabs, unicode whitespace), and over-rejecting is safe
// because rejection only means falling back.
func (f *fieldSplitter) next() ([]byte, bool) {
	if f.pos >= len(f.line) {
		return nil, false
	}
	start := f.pos
	for f.pos < len(f.line) && f.line[f.pos] != ' ' {
		if c := f.line[f.pos]; c < 0x21 || c >= 0x80 {
			return nil, false
		}
		f.pos++
	}
	col := f.line[start:f.pos]
	if f.pos < len(f.line) {
		f.pos++ // skip the single separator
	}
	if len(col) == 0 {
		return nil, false // empty column: doubled space, not canonical
	}
	return col, true
}

func (f *fieldSplitter) done() bool { return f.pos >= len(f.line) }

func (f *fieldSplitter) nextString() (string, bool) {
	col, ok := f.next()
	if !ok {
		return "", false
	}
	return string(col), true
}

// nextUndashed reads a dash-encoded optional field: "-" decodes to the
// empty string without allocating; underscores decode back to spaces.
func (f *fieldSplitter) nextUndashed() (string, bool) {
	col, ok := f.next()
	if !ok {
		return "", false
	}
	if len(col) == 1 && col[0] == '-' {
		return "", true
	}
	s := make([]byte, len(col))
	for i, c := range col {
		if c == '_' {
			c = ' '
		}
		s[i] = c
	}
	return string(s), true
}

func (f *fieldSplitter) nextInt(field string) (int64, error) {
	col, ok := f.next()
	if !ok {
		return 0, fmt.Errorf("%w: missing %s", ErrFormat, field)
	}
	v, err := atoi64(col)
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q", ErrFormat, field, col)
	}
	return v, nil
}

// nextFixed2 parses the fixed 2-decimal float the encoder emits
// ("%.2f"). Anything else — scientific notation, other precisions,
// magnitudes beyond exact centi-unit range — fails, sending the line
// down the legacy strconv.ParseFloat path. The value is computed as
// one correctly-rounded division of exact integers, so it is
// bit-identical to what strconv.ParseFloat returns for the same text.
func (f *fieldSplitter) nextFixed2(field string) (float64, error) {
	col, ok := f.next()
	if !ok {
		return 0, fmt.Errorf("%w: missing %s", ErrFormat, field)
	}
	if len(col) < 4 || col[len(col)-3] != '.' {
		return 0, fmt.Errorf("%w: %s %q not fixed-point", ErrFormat, field, col)
	}
	whole, err := atoi64(col[:len(col)-3])
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q", ErrFormat, field, col)
	}
	d1, d2 := col[len(col)-2], col[len(col)-1]
	if d1 < '0' || d1 > '9' || d2 < '0' || d2 > '9' {
		return 0, fmt.Errorf("%w: %s %q", ErrFormat, field, col)
	}
	const maxExact = (1 << 53) / 100 // centi-units stay exactly representable
	if whole > maxExact || whole < -maxExact {
		return 0, fmt.Errorf("%w: %s %q out of fast-path range", ErrFormat, field, col)
	}
	centi := whole*100 + int64(int(d1-'0')*10+int(d2-'0'))
	if col[0] == '-' {
		centi = whole*100 - int64(int(d1-'0')*10+int(d2-'0'))
	}
	return float64(centi) / 100, nil
}

// atoi64 is a strict base-10 integer parse over bytes (optional
// leading minus, digits only), avoiding the string conversion strconv
// needs. Overflow is an error, like strconv.ParseInt's ErrRange —
// never a silent wrap.
func atoi64(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, ErrFormat
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i++
		if len(b) == 1 {
			return 0, ErrFormat
		}
	}
	limit := uint64(1<<63 - 1) // MaxInt64; MinInt64's magnitude when negative
	if neg {
		limit = 1 << 63
	}
	var v uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, ErrFormat
		}
		d := uint64(c - '0')
		if v > (limit-d)/10 { // overflow: error like strconv's ErrRange
			return 0, ErrFormat
		}
		v = v*10 + d
	}
	if neg {
		if v == 1<<63 {
			return -1 << 63, nil
		}
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseTimestamp decodes "YYYY-MM-DD" + "HH:MM:SS" without the layout
// machinery of time.Parse. Like time.Parse it yields UTC and rejects
// out-of-range components.
func parseTimestamp(date, clock []byte) (time.Time, error) {
	if len(date) != 10 || date[4] != '-' || date[7] != '-' ||
		len(clock) != 8 || clock[2] != ':' || clock[5] != ':' {
		return time.Time{}, fmt.Errorf("%w: timestamp %q %q", ErrFormat, date, clock)
	}
	y, err1 := atoiFixed(date[0:4])
	mo, err2 := atoiFixed(date[5:7])
	d, err3 := atoiFixed(date[8:10])
	h, err4 := atoiFixed(clock[0:2])
	mi, err5 := atoiFixed(clock[3:5])
	s, err6 := atoiFixed(clock[6:8])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil ||
		mo < 1 || mo > 12 || d < 1 || d > daysIn(y, mo) || h > 23 || mi > 59 || s > 59 {
		return time.Time{}, fmt.Errorf("%w: timestamp %q %q", ErrFormat, date, clock)
	}
	return time.Date(y, time.Month(mo), d, h, mi, s, 0, time.UTC), nil
}

// atoiFixed parses an all-digit field.
func atoiFixed(b []byte) (int, error) {
	v := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, ErrFormat
		}
		v = v*10 + int(c-'0')
	}
	return v, nil
}

// daysIn mirrors time.Date's normalization boundary so the fast path
// rejects exactly the dates time.Parse would reject.
func daysIn(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	}
	if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
		return 29
	}
	return 28
}
