package wmslog

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleEntry(ts time.Time) *Entry {
	return &Entry{
		Timestamp:    ts,
		ClientIP:     "200.17.34.5",
		PlayerID:     "player-000042",
		ClientOS:     "Windows 98",
		ClientCPU:    "Pentium III",
		URIStem:      "/live/feed1",
		Duration:     135,
		Bytes:        579840,
		AvgBandwidth: 34359,
		PacketsLost:  3,
		ServerCPU:    2.41,
		Referer:      "http://show.example.br/",
		Status:       200,
		ASNumber:     7,
		Country:      "BR",
	}
}

func TestEntryValidate(t *testing.T) {
	ts := TraceEpoch.Add(time.Hour)
	good := sampleEntry(ts)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	mutations := []func(*Entry){
		func(e *Entry) { e.Timestamp = time.Time{} },
		func(e *Entry) { e.ClientIP = "" },
		func(e *Entry) { e.ClientIP = "1.2 .3.4" },
		func(e *Entry) { e.PlayerID = "" },
		func(e *Entry) { e.URIStem = "" },
		func(e *Entry) { e.Duration = -1 },
		func(e *Entry) { e.Bytes = -1 },
		func(e *Entry) { e.AvgBandwidth = -1 },
		func(e *Entry) { e.PacketsLost = -1 },
		func(e *Entry) { e.ServerCPU = -0.1 },
		func(e *Entry) { e.ServerCPU = 101 },
	}
	for i, mutate := range mutations {
		e := sampleEntry(ts)
		mutate(e)
		if err := e.Validate(); err == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
	}
}

func TestEntryStart(t *testing.T) {
	ts := TraceEpoch.Add(1000 * time.Second)
	e := sampleEntry(ts)
	want := ts.Add(-135 * time.Second)
	if !e.Start().Equal(want) {
		t.Errorf("Start = %v, want %v", e.Start(), want)
	}
}

func TestWriterParserRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := TraceEpoch.Add(90 * time.Second)
	in := []*Entry{
		sampleEntry(ts),
		sampleEntry(ts.Add(5 * time.Second)),
	}
	in[1].ClientOS = "" // exercise the dash encoding
	in[1].Referer = ""
	in[1].Country = ""
	for _, e := range in {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	text := buf.String()
	if !strings.HasPrefix(text, "#Software:") {
		t.Error("missing #Software header")
	}
	if !strings.Contains(text, "#Fields: date time c-ip") {
		t.Error("missing #Fields header")
	}

	out, st, err := ReadAll(strings.NewReader(text), false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Malformed != 0 || st.Comments != 3 {
		t.Errorf("stats = %+v", st)
	}
	if len(out) != 2 {
		t.Fatalf("parsed %d entries", len(out))
	}
	for i := range in {
		if !out[i].Timestamp.Equal(in[i].Timestamp) {
			t.Errorf("entry %d timestamp %v != %v", i, out[i].Timestamp, in[i].Timestamp)
		}
		a, b := *in[i], *out[i]
		a.Timestamp, b.Timestamp = time.Time{}, time.Time{}
		if a != b {
			t.Errorf("entry %d round trip:\n in: %+v\nout: %+v", i, a, b)
		}
	}
}

func TestSpacesInFreeTextFields(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	e := sampleEntry(TraceEpoch.Add(time.Minute))
	e.ClientOS = "Windows NT 4.0"
	if err := w.Write(e); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	out, _, err := ReadAll(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ClientOS != "Windows NT 4.0" {
		t.Errorf("ClientOS = %q", out[0].ClientOS)
	}
}

func TestParserStrictRejectsMalformed(t *testing.T) {
	text := "#Fields: " + strings.Join(Fields, " ") + "\n" +
		"2002-01-06 00:01:30 1.2.3.4 p1 - - /live/feed1 10 1000 800 0 1.00 - 200 1 BR\n" +
		"this line is garbage\n"
	_, st, err := ReadAll(strings.NewReader(text), false)
	if err == nil {
		t.Fatal("want error in strict mode")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should identify line 3: %v", err)
	}
	if st.Entries != 1 {
		t.Errorf("entries before failure = %d", st.Entries)
	}
}

func TestParserTolerantSkipsMalformed(t *testing.T) {
	good := "2002-01-06 00:01:30 1.2.3.4 p1 - - /live/feed1 10 1000 800 0 1.00 - 200 1 BR"
	lines := []string{
		good,
		"garbage",
		"2002-99-99 00:01:30 1.2.3.4 p1 - - /live/feed1 10 1000 800 0 1.00 - 200 1 BR", // bad date
		"2002-01-06 00:01:31 1.2.3.4 p1 - - /live/feed1 -5 1000 800 0 1.00 - 200 1 BR", // negative duration
		"2002-01-06 00:01:32 1.2.3.4 p1 - - /live/feed1 xx 1000 800 0 1.00 - 200 1 BR", // bad int
		"2002-01-06 00:01:33 1.2.3.4 p1 - - /live/feed1 10 1000 800 0 abc - 200 1 BR",  // bad float
		"2002-01-06 00:01:34 1.2.3.4 p1 - - /live/feed1 10 1000 800 0 1.00 - xyz 1 BR", // bad status
		"2002-01-06 00:01:35 1.2.3.4 p1 - - /live/feed1 10 1000 800 0 1.00 - 200 q BR", // bad AS
		good,
	}
	out, st, err := ReadAll(strings.NewReader(strings.Join(lines, "\n")), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("parsed %d entries, want 2", len(out))
	}
	if st.Malformed != 7 {
		t.Errorf("malformed = %d, want 7", st.Malformed)
	}
}

func TestParserRejectsForeignFieldSet(t *testing.T) {
	text := "#Fields: date time something-else\n" +
		"2002-01-06 00:01:30 1.2.3.4\n"
	_, _, err := ReadAll(strings.NewReader(text), false)
	if err == nil {
		t.Fatal("foreign field set should be rejected")
	}
}

func TestParserEmptyInput(t *testing.T) {
	out, st, err := ReadAll(strings.NewReader(""), false)
	if err != nil || len(out) != 0 || st.Entries != 0 {
		t.Errorf("empty input: out=%v st=%+v err=%v", out, st, err)
	}
}

func TestWriterRejectsInvalidEntry(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	e := sampleEntry(TraceEpoch)
	e.Duration = -1
	if err := w.Write(e); err == nil {
		t.Fatal("invalid entry accepted")
	}
}

func TestDailyWriterRotation(t *testing.T) {
	dir := t.TempDir()
	dw, err := NewDailyWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Entries across three calendar days.
	times := []time.Time{
		TraceEpoch.Add(10 * time.Second),
		TraceEpoch.Add(23 * time.Hour),
		TraceEpoch.Add(25 * time.Hour),
		TraceEpoch.Add(49 * time.Hour),
	}
	for _, ts := range times {
		if err := dw.Write(sampleEntry(ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	files := dw.Files()
	if len(files) != 3 {
		t.Fatalf("files = %v, want 3", files)
	}
	wantNames := []string{"wms-2002-01-06.log", "wms-2002-01-07.log", "wms-2002-01-08.log"}
	for i, f := range files {
		if filepath.Base(f) != wantNames[i] {
			t.Errorf("file %d = %s, want %s", i, filepath.Base(f), wantNames[i])
		}
	}
	if dw.Entries() != 4 {
		t.Errorf("Entries = %d", dw.Entries())
	}

	// Re-read everything through ReadFiles.
	all, st, err := ReadFiles(files, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 || st.Entries != 4 {
		t.Errorf("read back %d entries (stats %+v)", len(all), st)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Timestamp.Before(all[i-1].Timestamp) {
			t.Error("entries out of order after ReadFiles")
		}
	}
}

func TestReadFilesMissingFile(t *testing.T) {
	if _, _, err := ReadFiles([]string{"/nonexistent/zzz.log"}, false); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestDailyWriterCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "logs")
	dw, err := NewDailyWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Write(sampleEntry(TraceEpoch.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dw.Files()[0]); err != nil {
		t.Fatal(err)
	}
}

func TestTraceEpochIsSunday(t *testing.T) {
	if TraceEpoch.Weekday() != time.Sunday {
		t.Errorf("TraceEpoch is %v, want Sunday (Figure 4 starts on Sun)", TraceEpoch.Weekday())
	}
}
