package wmslog

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Month-scale production logs are archived compressed. These helpers let
// the parser consume ".log.gz" files transparently and let operators
// compress harvested days in place.

// Open opens a log file for reading, transparently decompressing ".gz"
// files. The returned closer closes both layers. The reader carries
// whatever format the file holds — feed it to NewParser, which detects
// text vs binary by magic bytes.
func Open(path string) (io.Reader, io.Closer, error) {
	return openLog(path)
}

// openLog opens a log file for reading, transparently decompressing
// ".gz" files. The returned closer closes both layers.
func openLog(path string) (io.Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wmslog: open %s: %w", path, err)
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wmslog: gzip %s: %w", path, err)
	}
	return zr, &stackedCloser{inner: zr, outer: f}, nil
}

type stackedCloser struct {
	inner io.Closer
	outer io.Closer
}

func (s *stackedCloser) Close() error {
	err := s.inner.Close()
	if cerr := s.outer.Close(); err == nil {
		err = cerr
	}
	return err
}

// CompressFile gzips one log file to "<path>.gz" and removes the
// original — the archival step after a daily harvest.
func CompressFile(path string) (string, error) {
	in, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("wmslog: open %s: %w", path, err)
	}
	defer in.Close()

	outPath := path + ".gz"
	out, err := os.Create(outPath)
	if err != nil {
		return "", fmt.Errorf("wmslog: create %s: %w", outPath, err)
	}
	zw := gzip.NewWriter(out)
	if _, err := io.Copy(zw, in); err != nil {
		zw.Close()
		out.Close()
		os.Remove(outPath)
		return "", fmt.Errorf("wmslog: compress %s: %w", path, err)
	}
	if err := zw.Close(); err != nil {
		out.Close()
		os.Remove(outPath)
		return "", err
	}
	if err := out.Close(); err != nil {
		os.Remove(outPath)
		return "", err
	}
	if err := os.Remove(path); err != nil {
		return "", fmt.Errorf("wmslog: remove original %s: %w", path, err)
	}
	return outPath, nil
}

// FindLogs globs a directory for daily log files, compressed or not,
// returning them in name (= date) order.
func FindLogs(dir string) ([]string, error) {
	plain, err := filepath.Glob(filepath.Join(dir, "wms-*.log"))
	if err != nil {
		return nil, err
	}
	gz, err := filepath.Glob(filepath.Join(dir, "wms-*.log.gz"))
	if err != nil {
		return nil, err
	}
	return append(plain, gz...), nil
}
