package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged for equal seeds", i)
		}
	}
	a.Seed(42)
	c := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatalf("Seed did not reset the stream at draw %d", i)
		}
	}
}

func TestSplitMix64IsUsableSource(t *testing.T) {
	rng := rand.New(NewSplitMix64(7))
	n := 200_000
	var sum float64
	for i := 0; i < n; i++ {
		u := rng.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
	// Int63 must be non-negative (rand.Source contract).
	src := NewSplitMix64(9)
	for i := 0; i < 1000; i++ {
		if src.Int63() < 0 {
			t.Fatal("Int63 returned a negative value")
		}
	}
}

func TestMix64LanesDecorrelated(t *testing.T) {
	seen := make(map[uint64]uint64)
	for lane := uint64(0); lane < 10_000; lane++ {
		v := Mix64(2002, lane)
		if prev, dup := seen[v]; dup {
			t.Fatalf("lanes %d and %d collide", prev, lane)
		}
		seen[v] = lane
	}
	if Mix64(1, 0) == Mix64(2, 0) {
		t.Error("different seeds map to the same child seed")
	}
	if Mix64(3, 5) != Mix64(3, 5) {
		t.Error("Mix64 not deterministic")
	}
}

func TestPoissonStreamMatchesArrivals(t *testing.T) {
	pp, err := NewPiecewisePoisson(func(t float64) float64 {
		return 0.02 + 0.01*math.Sin(t/3600)
	}, 900)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 200_000
	batch := pp.Arrivals(rand.New(rand.NewSource(11)), horizon, nil)
	st := pp.Stream(rand.New(rand.NewSource(11)), horizon)
	var streamed []float64
	for {
		v, ok := st.Next()
		if !ok {
			break
		}
		streamed = append(streamed, v)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("stream emitted %d arrivals, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i] != batch[i] {
			t.Fatalf("arrival %d: stream %v vs batch %v", i, streamed[i], batch[i])
		}
	}
	if _, ok := st.Next(); ok {
		t.Error("exhausted stream produced another arrival")
	}
}

func TestPoissonStreamEmptyHorizon(t *testing.T) {
	pp, err := NewPiecewisePoisson(func(float64) float64 { return 1 }, 900)
	if err != nil {
		t.Fatal(err)
	}
	st := pp.Stream(rand.New(rand.NewSource(1)), 0)
	if _, ok := st.Next(); ok {
		t.Error("zero horizon produced an arrival")
	}
}
