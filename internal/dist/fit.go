package dist

import (
	"fmt"
	"math"
	"sort"
)

// LinearRegression fits y = slope·x + intercept by ordinary least
// squares and returns the coefficient of determination R².
func LinearRegression(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("%w: regression over %d xs vs %d ys", ErrBadFit, len(xs), len(ys))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return 0, 0, 0, fmt.Errorf("%w: regression needs >= 2 points, got %d", ErrBadFit, len(xs))
	}
	var sx, sy float64
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return 0, 0, 0, fmt.Errorf("%w: regression point (%v, %v)", ErrBadFit, xs[i], ys[i])
		}
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("%w: regression with zero x variance", ErrBadFit)
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		// A perfectly flat line is fit exactly.
		return slope, intercept, 1, nil
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2, nil
}

// ZipfFit is an estimated Zipf law: the magnitude of the log-log
// rank/frequency slope, with the regression diagnostics.
type ZipfFit struct {
	Alpha     float64 // power-law exponent (positive)
	Intercept float64 // log-log intercept
	R2        float64 // regression R²
	Points    int     // rank points entering the regression
}

// String renders the fit the way the paper annotates its figures.
func (f ZipfFit) String() string {
	return fmt.Sprintf("zipf fit(alpha=%.4f, r2=%.3f, points=%d)", f.Alpha, f.R2, f.Points)
}

// FitZipfCounts estimates the Zipf exponent from raw per-entity access
// counts (per-client transfers, per-object requests, per-AS placements):
// positive counts are ranked in descending order and log(count) is
// regressed on log(rank) — GISMO's least-squares rank-plot technique.
func FitZipfCounts(counts []int) (ZipfFit, error) {
	pos := make([]float64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			pos = append(pos, float64(c))
		}
	}
	if len(pos) < 2 {
		return ZipfFit{}, fmt.Errorf("%w: zipf fit needs >= 2 positive counts, got %d", ErrBadFit, len(pos))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(pos)))
	xs := make([]float64, len(pos))
	ys := make([]float64, len(pos))
	for i, c := range pos {
		xs[i] = math.Log(float64(i + 1))
		ys[i] = math.Log(c)
	}
	slope, intercept, r2, err := LinearRegression(xs, ys)
	if err != nil {
		return ZipfFit{}, err
	}
	return ZipfFit{Alpha: -slope, Intercept: intercept, R2: r2, Points: len(pos)}, nil
}

// FitZipfMLE estimates the exponent of a finite-support Zipf pmf
// P(k) ∝ k^(-alpha), k ∈ [1, n], by maximum likelihood over observed
// values. Unlike the rank-plot regression (FitZipfCounts), which
// weights every rank equally and so lets the sparse tail drag the
// slope, the MLE matches the body of the distribution — the estimator
// of choice when the fitted law feeds a generator whose output must
// pass a distributional (KS) comparison against the sample. Solved by
// bisection on the monotone score equation; the estimate is clamped to
// [0.05, 20].
func FitZipfMLE(values []int, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("%w: zipf MLE support %d", ErrBadFit, n)
	}
	var meanLog float64
	var count int
	for _, v := range values {
		if v < 1 || v > n {
			continue
		}
		meanLog += math.Log(float64(v))
		count++
	}
	if count < 2 {
		return 0, fmt.Errorf("%w: zipf MLE needs >= 2 in-support values, got %d", ErrBadFit, count)
	}
	meanLog /= float64(count)

	// score(alpha) = E_alpha[log K] - meanLog, strictly decreasing in
	// alpha; its root is the MLE.
	score := func(alpha float64) float64 {
		var h, hl float64
		for k := 1; k <= n; k++ {
			w := math.Pow(float64(k), -alpha)
			h += w
			hl += math.Log(float64(k)) * w
		}
		return hl/h - meanLog
	}
	lo, hi := 0.05, 20.0
	if score(lo) <= 0 {
		return lo, nil // sample flatter than the support allows
	}
	if score(hi) >= 0 {
		return hi, nil // essentially all mass at k = 1
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if score(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// FitZipfFrequencies estimates the Zipf exponent from a frequency vector
// indexed by value: freq[k-1] is the relative frequency of value k
// (Figure 13's frequency-versus-transfers-per-session axis, or a
// rank-share vector). Zero bins are skipped.
func FitZipfFrequencies(freq []float64) (ZipfFit, error) {
	xs := make([]float64, 0, len(freq))
	ys := make([]float64, 0, len(freq))
	for i, f := range freq {
		if f <= 0 {
			continue
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return ZipfFit{}, fmt.Errorf("%w: zipf frequency[%d] = %v", ErrBadFit, i, f)
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(f))
	}
	if len(xs) < 2 {
		return ZipfFit{}, fmt.Errorf("%w: zipf fit needs >= 2 positive frequencies, got %d", ErrBadFit, len(xs))
	}
	slope, intercept, r2, err := LinearRegression(xs, ys)
	if err != nil {
		return ZipfFit{}, err
	}
	return ZipfFit{Alpha: -slope, Intercept: intercept, R2: r2, Points: len(xs)}, nil
}

// TailFit is an estimated power-law tail over a value window: the slope
// magnitude of the log-log complementary CDF (Figure 17's two-regime
// interarrival tails). The zero value marks "not estimable".
type TailFit struct {
	Alpha     float64 // tail index (positive)
	Intercept float64 // log-log intercept
	R2        float64 // regression R²
	Points    int     // distinct sample values entering the regression
	Lo, Hi    float64 // fitted window (lo, hi]
}

// String renders the fit.
func (f TailFit) String() string {
	return fmt.Sprintf("tail fit(alpha=%.3f, r2=%.3f, window=(%g, %g], points=%d)", f.Alpha, f.R2, f.Lo, f.Hi, f.Points)
}

// FitTail estimates the power-law index over the window (lo, hi]: the
// samples falling inside the window form a conditional empirical CCDF,
// and log(CCDF) is regressed on log(value) over the window's distinct
// values. Restricting the CCDF to the window isolates each regime, so
// the heavy far tail does not flatten the body estimate.
func FitTail(samples []float64, lo, hi float64) (TailFit, error) {
	if !(lo < hi) || lo < 0 || math.IsNaN(lo) || math.IsNaN(hi) {
		return TailFit{}, fmt.Errorf("%w: tail window (%v, %v]", ErrBadFit, lo, hi)
	}
	sub := make([]float64, 0, len(samples))
	for _, x := range samples {
		if x > lo && x <= hi {
			sub = append(sub, x)
		}
	}
	if len(sub) < 3 {
		return TailFit{}, fmt.Errorf("%w: %d samples in tail window (%v, %v]", ErrBadFit, len(sub), lo, hi)
	}
	sort.Float64s(sub)
	n := float64(len(sub))
	xs := make([]float64, 0, len(sub))
	ys := make([]float64, 0, len(sub))
	for i := 0; i < len(sub); {
		v := sub[i]
		j := i
		for j < len(sub) && sub[j] == v {
			j++
		}
		// CCDF at v: fraction of the window's samples strictly above v.
		// The largest value has CCDF 0 and is skipped (log undefined).
		if ccdf := float64(len(sub)-j) / n; ccdf > 0 && v > 0 {
			xs = append(xs, math.Log(v))
			ys = append(ys, math.Log(ccdf))
		}
		i = j
	}
	if len(xs) < 3 {
		return TailFit{}, fmt.Errorf("%w: %d distinct values in tail window (%v, %v]", ErrBadFit, len(xs), lo, hi)
	}
	slope, intercept, r2, err := LinearRegression(xs, ys)
	if err != nil {
		return TailFit{}, err
	}
	return TailFit{Alpha: -slope, Intercept: intercept, R2: r2, Points: len(xs), Lo: lo, Hi: hi}, nil
}
