// Package dist is the statistical substrate of the reproduction: the
// samplers, estimators, and goodness-of-fit measures behind every
// Table 2 / Figures 13–19 artifact of Veloso et al. (IMC 2002) and the
// GISMO-style generator (Jin & Bestavros) built on top of them.
//
// Samplers: Lognormal, Exponential, Pareto (continuous), Zipf (ranked
// discrete), Alias (arbitrary discrete weights), PoissonProcess
// (homogeneous) and PiecewisePoisson (piecewise-stationary, the paper's
// Section 3.3 arrival model).
//
// Estimators: FitLognormal and FitExponential (maximum likelihood),
// FitZipfCounts and FitZipfFrequencies (log-log rank/frequency
// regression, GISMO's own technique), FitTail (log-log complementary-CDF
// regression for power-law tail indices, Figure 17), and the
// LinearRegression primitive they share.
//
// Goodness of fit: KolmogorovSmirnov (one-sample, against any CDF) and
// KolmogorovSmirnov2 (two-sample, the Figure 6 comparison).
package dist

import "errors"

// ErrBadParam reports invalid distribution parameters.
var ErrBadParam = errors.New("dist: bad parameter")

// ErrBadFit reports input on which an estimator cannot operate (empty,
// degenerate, or out-of-domain samples).
var ErrBadFit = errors.New("dist: bad fit input")

// RateFunc is a time-varying arrival rate: arrivals per second at
// absolute time t (seconds since trace start).
type RateFunc func(t float64) float64
