package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf is the ranked discrete power law over {1, …, N}:
// P[rank = k] ∝ k^(-Alpha). It is the paper's law for client interest
// (Table 2 row 3, Figure 7) and transfers per session (row 4,
// Figure 13), and GISMO's law for stored-object popularity.
type Zipf struct {
	Alpha float64
	N     int
	// cum[k-1] is the cumulative unnormalized weight of ranks 1..k.
	cum []float64
}

// NewZipf builds the sampler. The cumulative table costs O(N) once;
// each draw is then an O(log N) binary search.
func NewZipf(alpha float64, n int) (*Zipf, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("%w: zipf alpha %v", ErrBadParam, alpha)
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: zipf n %d", ErrBadParam, n)
	}
	cum := make([]float64, n)
	var total float64
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -alpha)
		cum[k-1] = total
	}
	return &Zipf{Alpha: alpha, N: n, cum: cum}, nil
}

// SampleRank draws a rank in [1, N] by inverting the cumulative table.
func (z *Zipf) SampleRank(rng *rand.Rand) int {
	return z.RankOfU(rng.Float64() * z.Total())
}

// Total returns the total unnormalized weight (the scale of RankOfU's
// domain).
func (z *Zipf) Total() float64 { return z.cum[len(z.cum)-1] }

// RankOfU inverts the cumulative table for a pre-drawn variate
// u ∈ [0, Total()). Splitting the draw from the inversion lets callers
// derive u from a counter-mode RNG (sharded generation binds sessions to
// clients by u-band, so ownership is O(1) and only the owner pays the
// O(log N) search).
func (z *Zipf) RankOfU(u float64) int {
	i := sort.SearchFloat64s(z.cum, u)
	// SearchFloat64s returns the first index with cum >= u; u == cum[i]
	// has probability zero, and u < Total() guarantees i < N.
	if i >= z.N {
		i = z.N - 1
	}
	return i + 1
}

// PMF returns P[rank = k], or 0 outside [1, N].
func (z *Zipf) PMF(k int) float64 {
	if k < 1 || k > z.N {
		return 0
	}
	p := math.Pow(float64(k), -z.Alpha) / z.cum[len(z.cum)-1]
	return p
}

// CDF returns P[rank <= k] treating the rank as a real-valued threshold,
// so it can feed the one-sample KS machinery.
func (z *Zipf) CDF(x float64) float64 {
	k := int(math.Floor(x))
	if k < 1 {
		return 0
	}
	if k >= z.N {
		return 1
	}
	return z.cum[k-1] / z.cum[len(z.cum)-1]
}

// String renders the law.
func (z *Zipf) String() string {
	return fmt.Sprintf("zipf(alpha=%.4f, n=%d)", z.Alpha, z.N)
}
