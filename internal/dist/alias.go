package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Alias draws indices from an arbitrary discrete weight vector in O(1)
// per draw using Walker–Vose alias tables. The topology layer uses it
// for country and AS placement (Figure 2's skewed shares).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds the table. Weights must be non-negative, finite, and
// sum to a positive total; they need not be normalized.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("%w: alias table with no weights", ErrBadParam)
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: alias weight[%d] = %v", ErrBadParam, i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: alias weights sum to %v", ErrBadParam, total)
	}

	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	// Scale weights to mean 1, then split into under/over-full columns.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are exactly-full columns.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Draw returns an index distributed per the construction weights.
func (a *Alias) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the number of categories.
func (a *Alias) Len() int { return len(a.prob) }
