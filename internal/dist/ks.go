package dist

import (
	"fmt"
	"sort"
)

// KolmogorovSmirnov computes the one-sample KS distance between the
// empirical distribution of samples and a model CDF: the supremum of
// |F_n(x) - F(x)|. The paper reports this distance for every Table 2
// body fit.
func KolmogorovSmirnov(samples []float64, cdf func(float64) float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("%w: KS on empty sample", ErrBadFit)
	}
	if cdf == nil {
		return 0, fmt.Errorf("%w: KS with nil CDF", ErrBadFit)
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		// The empirical CDF jumps from i/n to (i+1)/n at x; the model can
		// deviate most on either side of the step.
		if below := f - float64(i)/n; below > d {
			d = below
		}
		if above := float64(i+1)/n - f; above > d {
			d = above
		}
	}
	return d, nil
}

// KolmogorovSmirnov2 computes the two-sample KS distance between the
// empirical distributions of a and b — the Figure 6 comparison between
// measured and synthesized interarrivals.
func KolmogorovSmirnov2(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("%w: two-sample KS on %d vs %d samples", ErrBadFit, len(a), len(b))
	}
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)

	na, nb := float64(len(sa)), float64(len(sb))
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		// Advance both ECDFs past every sample equal to v before
		// comparing, so ties contribute their full joint step.
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		if diff := float64(i)/na - float64(j)/nb; diff > d {
			d = diff
		} else if -diff > d {
			d = -diff
		}
	}
	return d, nil
}
