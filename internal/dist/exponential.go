package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Exponential is the one-parameter exponential law, parameterized by its
// mean — the paper's fit for session OFF times (Figure 12; mean
// 203,150 s).
type Exponential struct {
	// MeanValue is the distribution mean 1/λ in the sample's units.
	MeanValue float64
}

// NewExponential validates the mean.
func NewExponential(mean float64) (Exponential, error) {
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return Exponential{}, fmt.Errorf("%w: exponential mean %v", ErrBadParam, mean)
	}
	return Exponential{MeanValue: mean}, nil
}

// Sample draws one variate.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * e.MeanValue
}

// CDF evaluates P[X <= x].
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-x/e.MeanValue)
}

// Rate returns λ = 1/mean.
func (e Exponential) Rate() float64 { return 1 / e.MeanValue }

// String renders the fit.
func (e Exponential) String() string {
	return fmt.Sprintf("exponential(mean=%.1f)", e.MeanValue)
}

// FitExponential estimates the mean by maximum likelihood (the sample
// mean). Samples must be non-negative with a positive mean.
func FitExponential(samples []float64) (Exponential, error) {
	if len(samples) == 0 {
		return Exponential{}, fmt.Errorf("%w: exponential fit on empty sample", ErrBadFit)
	}
	var sum float64
	for _, x := range samples {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Exponential{}, fmt.Errorf("%w: exponential fit sample %v", ErrBadFit, x)
		}
		sum += x
	}
	mean := sum / float64(len(samples))
	if mean <= 0 {
		return Exponential{}, fmt.Errorf("%w: exponential fit mean %v", ErrBadFit, mean)
	}
	return Exponential{MeanValue: mean}, nil
}
