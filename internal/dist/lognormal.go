package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Lognormal is the two-parameter lognormal law: ln X ~ N(Mu, Sigma²).
// It is the paper's body fit for session ON times (Figure 11),
// intra-session gaps (Figure 14), and transfer lengths (Figure 19).
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// NewLognormal validates the parameters.
func NewLognormal(mu, sigma float64) (Lognormal, error) {
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return Lognormal{}, fmt.Errorf("%w: lognormal mu %v", ErrBadParam, mu)
	}
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return Lognormal{}, fmt.Errorf("%w: lognormal sigma %v", ErrBadParam, sigma)
	}
	return Lognormal{Mu: mu, Sigma: sigma}, nil
}

// Sample draws one variate: exp(Mu + Sigma·Z).
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// CDF evaluates P[X <= x].
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / (l.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

// Median returns exp(Mu).
func (l Lognormal) Median() float64 { return math.Exp(l.Mu) }

// Mean returns exp(Mu + Sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// String renders the fit the way the paper's Table 2 states it.
func (l Lognormal) String() string {
	return fmt.Sprintf("lognormal(mu=%.4f, sigma=%.4f)", l.Mu, l.Sigma)
}

// FitLognormal estimates (Mu, Sigma) by maximum likelihood: the mean and
// standard deviation of the log-samples. All samples must be positive.
func FitLognormal(samples []float64) (Lognormal, error) {
	if len(samples) < 2 {
		return Lognormal{}, fmt.Errorf("%w: lognormal fit needs >= 2 samples, got %d", ErrBadFit, len(samples))
	}
	var sum float64
	logs := make([]float64, len(samples))
	for i, x := range samples {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Lognormal{}, fmt.Errorf("%w: lognormal fit sample %v", ErrBadFit, x)
		}
		logs[i] = math.Log(x)
		sum += logs[i]
	}
	mu := sum / float64(len(logs))
	var ss float64
	for _, lx := range logs {
		d := lx - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(logs)-1))
	if sigma <= 0 {
		return Lognormal{}, fmt.Errorf("%w: degenerate lognormal sample (zero variance)", ErrBadFit)
	}
	return Lognormal{Mu: mu, Sigma: sigma}, nil
}
