package dist

import (
	"math"
	"math/rand"
	"testing"
)

// Round-trip tolerances mirror the repo's parameter-recovery tests:
// generate from known parameters, refit, recover.

func TestLognormalRoundTrip(t *testing.T) {
	ln, err := NewLognormal(4.89991, 1.32074) // Table 2: intra-session gaps
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = ln.Sample(rng)
	}
	fit, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-ln.Mu) > 0.02 {
		t.Errorf("mu = %v, want ~%v", fit.Mu, ln.Mu)
	}
	if math.Abs(fit.Sigma-ln.Sigma) > 0.02 {
		t.Errorf("sigma = %v, want ~%v", fit.Sigma, ln.Sigma)
	}
	// KS self-consistency: a sample against its own law must sit near the
	// n^(-1/2) fluctuation scale.
	d, err := KolmogorovSmirnov(xs, fit.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.02 {
		t.Errorf("KS distance %v against own fit", d)
	}
}

func TestLognormalCDFShape(t *testing.T) {
	ln := Lognormal{Mu: 2, Sigma: 0.5}
	if got := ln.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v", got)
	}
	if got := ln.CDF(ln.Median()); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(median) = %v, want 0.5", got)
	}
	if got := ln.CDF(1e12); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(inf-ish) = %v", got)
	}
	if m := ln.Mean(); math.Abs(m-math.Exp(2.125)) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
}

func TestLognormalErrors(t *testing.T) {
	if _, err := NewLognormal(1, 0); err == nil {
		t.Error("sigma 0 accepted")
	}
	if _, err := NewLognormal(math.NaN(), 1); err == nil {
		t.Error("NaN mu accepted")
	}
	if _, err := FitLognormal(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := FitLognormal([]float64{1, -2, 3}); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := FitLognormal([]float64{5, 5, 5}); err == nil {
		t.Error("degenerate sample accepted")
	}
}

func TestExponentialRoundTrip(t *testing.T) {
	ex, err := NewExponential(203150) // Figure 12: session OFF mean
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = ex.Sample(rng)
	}
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.MeanValue-ex.MeanValue)/ex.MeanValue > 0.02 {
		t.Errorf("mean = %v, want ~%v", fit.MeanValue, ex.MeanValue)
	}
	d, err := KolmogorovSmirnov(xs, fit.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.02 {
		t.Errorf("KS distance %v against own fit", d)
	}
	if r := fit.Rate(); math.Abs(r*fit.MeanValue-1) > 1e-12 {
		t.Errorf("rate %v inconsistent with mean %v", r, fit.MeanValue)
	}
}

func TestExponentialErrors(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := FitExponential(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := FitExponential([]float64{0, 0}); err == nil {
		t.Error("zero-mean sample accepted")
	}
	if _, err := FitExponential([]float64{1, -1}); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestParetoSamplesAndTailRecovery(t *testing.T) {
	p, err := NewPareto(2, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 60000)
	for i := range xs {
		xs[i] = p.Sample(rng)
		if xs[i] < p.Xm {
			t.Fatalf("sample %v below scale %v", xs[i], p.Xm)
		}
	}
	// The log-log CCDF of a pure Pareto is a line of slope -alpha.
	fit, err := FitTail(xs, p.Xm, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-p.Alpha) > 0.1 {
		t.Errorf("tail alpha = %v, want ~%v", fit.Alpha, p.Alpha)
	}
	if got := p.CDF(p.Xm / 2); got != 0 {
		t.Errorf("CDF below xm = %v", got)
	}
	if got := p.CDF(4); math.Abs(got-(1-math.Pow(0.5, 1.4))) > 1e-12 {
		t.Errorf("CDF(4) = %v", got)
	}
	if m := p.Mean(); math.Abs(m-1.4*2/0.4) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
	if m := (Pareto{Xm: 1, Alpha: 0.9}).Mean(); !math.IsInf(m, 1) {
		t.Errorf("alpha<=1 mean = %v, want +Inf", m)
	}
}

func TestParetoErrors(t *testing.T) {
	if _, err := NewPareto(0, 1); err == nil {
		t.Error("zero xm accepted")
	}
	if _, err := NewPareto(1, 0); err == nil {
		t.Error("zero alpha accepted")
	}
}

func TestZipfRoundTrip(t *testing.T) {
	z, err := NewZipf(0.8, 1000) // GISMO stored-media popularity
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, z.N)
	const draws = 80000
	for i := 0; i < draws; i++ {
		r := z.SampleRank(rng)
		if r < 1 || r > z.N {
			t.Fatalf("rank %d out of [1, %d]", r, z.N)
		}
		counts[r-1]++
	}
	fit, err := FitZipfCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-z.Alpha) > 0.25 {
		t.Errorf("zipf alpha = %v, want ~%v", fit.Alpha, z.Alpha)
	}
	// Rank 1 must dominate: its empirical share tracks the PMF.
	share := float64(counts[0]) / draws
	if math.Abs(share-z.PMF(1)) > 0.01 {
		t.Errorf("rank-1 share %v vs pmf %v", share, z.PMF(1))
	}
}

func TestZipfPMFAndCDF(t *testing.T) {
	z, err := NewZipf(2.70417, 50) // Table 2: transfers per session
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for k := 1; k <= z.N; k++ {
		sum += z.PMF(k)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("pmf sums to %v", sum)
	}
	if z.PMF(0) != 0 || z.PMF(z.N+1) != 0 {
		t.Error("pmf outside support")
	}
	if got := z.CDF(0.5); got != 0 {
		t.Errorf("CDF(0.5) = %v", got)
	}
	if got := z.CDF(float64(z.N)); got != 1 {
		t.Errorf("CDF(N) = %v", got)
	}
	if got := z.CDF(1); math.Abs(got-z.PMF(1)) > 1e-12 {
		t.Errorf("CDF(1) = %v, want pmf(1) = %v", got, z.PMF(1))
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 10); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := NewZipf(1, 0); err == nil {
		t.Error("zero n accepted")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{0.7, 0.2, 0.06, 0.04}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != len(weights) {
		t.Fatalf("len = %d", a.Len())
	}
	rng := rand.New(rand.NewSource(5))
	counts := make([]float64, len(weights))
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[a.Draw(rng)]++
	}
	for i, w := range weights {
		got := counts[i] / draws
		if math.Abs(got-w) > 0.01 {
			t.Errorf("category %d share %v, want %v", i, got, w)
		}
	}
}

func TestAliasSingleAndErrors(t *testing.T) {
	a, err := NewAlias([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		if a.Draw(rng) != 0 {
			t.Fatal("single-category alias drew nonzero")
		}
	}
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestSamplersDeterministicUnderSeed(t *testing.T) {
	run := func() [4]float64 {
		rng := rand.New(rand.NewSource(7))
		ln := Lognormal{Mu: 1, Sigma: 0.5}
		ex := Exponential{MeanValue: 10}
		pa := Pareto{Xm: 1, Alpha: 1.5}
		z, err := NewZipf(1.2, 100)
		if err != nil {
			t.Fatal(err)
		}
		return [4]float64{ln.Sample(rng), ex.Sample(rng), pa.Sample(rng), float64(z.SampleRank(rng))}
	}
	if run() != run() {
		t.Error("samplers are not deterministic under a fixed seed")
	}
}
