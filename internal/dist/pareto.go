package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Pareto is the classic power-law distribution with scale Xm and tail
// index Alpha: P[X > x] = (Xm/x)^Alpha for x >= Xm. It drives the
// heavy-tailed ON/OFF periods of the self-similar VBR substrate
// (Crovella & Bestavros, reference [14] of the paper).
type Pareto struct {
	Xm    float64 // scale: smallest possible value
	Alpha float64 // tail index
}

// NewPareto validates the parameters.
func NewPareto(xm, alpha float64) (Pareto, error) {
	if xm <= 0 || math.IsNaN(xm) || math.IsInf(xm, 0) {
		return Pareto{}, fmt.Errorf("%w: pareto xm %v", ErrBadParam, xm)
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return Pareto{}, fmt.Errorf("%w: pareto alpha %v", ErrBadParam, alpha)
	}
	return Pareto{Xm: xm, Alpha: alpha}, nil
}

// Sample draws one variate by inversion: Xm · U^(-1/Alpha).
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Xm * math.Pow(u, -1/p.Alpha)
}

// CDF evaluates P[X <= x].
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Mean returns Alpha·Xm/(Alpha-1), or +Inf when Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// String renders the law.
func (p Pareto) String() string {
	return fmt.Sprintf("pareto(xm=%.3f, alpha=%.3f)", p.Xm, p.Alpha)
}
