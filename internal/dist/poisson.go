package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// PoissonProcess is a homogeneous Poisson arrival process with a fixed
// rate (arrivals per second) — the stored-media request stream, whose
// access lacks the live feed's synchronizing schedule.
type PoissonProcess struct {
	Rate float64
}

// NewPoissonProcess validates the rate.
func NewPoissonProcess(rate float64) (*PoissonProcess, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("%w: poisson rate %v", ErrBadParam, rate)
	}
	return &PoissonProcess{Rate: rate}, nil
}

// ArrivalsIn generates the arrival instants in [t0, t1) by exponential
// gaps, appending to buf (pass nil to allocate fresh).
func (p *PoissonProcess) ArrivalsIn(rng *rand.Rand, t0, t1 float64, buf []float64) []float64 {
	out := buf[:0]
	if t1 <= t0 {
		return out
	}
	t := t0 + rng.ExpFloat64()/p.Rate
	for t < t1 {
		out = append(out, t)
		t += rng.ExpFloat64() / p.Rate
	}
	return out
}

// PiecewisePoisson is the paper's Section 3.3 arrival model: a Poisson
// process that is stationary within windows of fixed width, with the
// window rate read off a time-varying rate function (the diurnal/weekly
// profile, Figure 4). The paper uses 15-minute windows.
type PiecewisePoisson struct {
	rate   RateFunc
	window float64
}

// NewPiecewisePoisson validates the rate function and window width.
func NewPiecewisePoisson(rateFn RateFunc, window float64) (*PiecewisePoisson, error) {
	if rateFn == nil {
		return nil, fmt.Errorf("%w: nil rate function", ErrBadParam)
	}
	if window <= 0 || math.IsNaN(window) || math.IsInf(window, 0) {
		return nil, fmt.Errorf("%w: poisson window %v", ErrBadParam, window)
	}
	return &PiecewisePoisson{rate: rateFn, window: window}, nil
}

// windowRates evaluates the per-window stationary rates over [0, horizon):
// the rate function sampled at each window's midpoint, clamped at 0.
func (p *PiecewisePoisson) windowRates(horizon float64) []float64 {
	n := int(math.Ceil(horizon / p.window))
	rates := make([]float64, n)
	for k := range rates {
		mid := (float64(k) + 0.5) * p.window
		if mid > horizon {
			mid = (float64(k)*p.window + horizon) / 2
		}
		if r := p.rate(mid); r > 0 && !math.IsNaN(r) && !math.IsInf(r, 0) {
			rates[k] = r
		}
	}
	return rates
}

// Arrivals generates all arrival instants in [0, horizon) by Lewis–
// Shedler thinning: candidates are drawn from a homogeneous process at
// the maximum window rate and accepted with probability λ(window)/λmax.
// Results are appended to buf (pass nil to allocate fresh) and are
// strictly increasing.
func (p *PiecewisePoisson) Arrivals(rng *rand.Rand, horizon float64, buf []float64) []float64 {
	out := buf[:0]
	if horizon <= 0 {
		return out
	}
	rates := p.windowRates(horizon)
	var maxRate float64
	for _, r := range rates {
		if r > maxRate {
			maxRate = r
		}
	}
	if maxRate == 0 {
		return out
	}
	t := rng.ExpFloat64() / maxRate
	for t < horizon {
		k := int(t / p.window)
		if k >= len(rates) {
			k = len(rates) - 1
		}
		if rng.Float64()*maxRate < rates[k] {
			out = append(out, t)
		}
		t += rng.ExpFloat64() / maxRate
	}
	return out
}

// PoissonStream is a lazy arrival iterator over [0, horizon): the same
// Lewis–Shedler thinning as Arrivals, pulled one arrival at a time so
// the consumer never materializes the arrival slice. Given the same rng
// state, the emitted sequence is draw-for-draw identical to Arrivals.
type PoissonStream struct {
	rates   []float64
	maxRate float64
	window  float64
	horizon float64
	rng     *rand.Rand
	t       float64
	primed  bool
}

// Stream returns a lazy arrival iterator over [0, horizon).
func (p *PiecewisePoisson) Stream(rng *rand.Rand, horizon float64) *PoissonStream {
	s := &PoissonStream{window: p.window, horizon: horizon, rng: rng}
	if horizon <= 0 {
		s.primed = true
		s.t = horizon
		return s
	}
	s.rates = p.windowRates(horizon)
	for _, r := range s.rates {
		if r > s.maxRate {
			s.maxRate = r
		}
	}
	return s
}

// Next returns the next arrival instant, or false when the horizon is
// exhausted. Arrivals are strictly increasing.
func (s *PoissonStream) Next() (float64, bool) {
	if s.maxRate == 0 {
		return 0, false
	}
	if !s.primed {
		s.t = s.rng.ExpFloat64() / s.maxRate
		s.primed = true
	}
	for s.t < s.horizon {
		t := s.t
		k := int(t / s.window)
		if k >= len(s.rates) {
			k = len(s.rates) - 1
		}
		accept := s.rng.Float64()*s.maxRate < s.rates[k]
		s.t += s.rng.ExpFloat64() / s.maxRate
		if accept {
			return t, true
		}
	}
	return 0, false
}

// ExpectedCount integrates the piecewise-constant rate over [0, horizon):
// the expected number of arrivals.
func (p *PiecewisePoisson) ExpectedCount(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	var sum float64
	for k, r := range p.windowRates(horizon) {
		span := p.window
		if rest := horizon - float64(k)*p.window; rest < span {
			span = rest
		}
		sum += r * span
	}
	return sum
}
