package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearRegressionExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	slope, intercept, r2, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("fit y = %vx + %v, want y = 2x + 1", slope, intercept)
	}
	if math.Abs(r2-1) > 1e-12 {
		t.Errorf("r2 = %v, want 1", r2)
	}
}

func TestLinearRegressionFlatLine(t *testing.T) {
	slope, intercept, r2, err := LinearRegression([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if slope != 0 || intercept != 4 || r2 != 1 {
		t.Errorf("flat fit: slope %v intercept %v r2 %v", slope, intercept, r2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, _, _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinearRegression([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("zero x variance accepted")
	}
	if _, _, _, err := LinearRegression([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("NaN point accepted")
	}
}

func TestFitZipfCountsExactLaw(t *testing.T) {
	// Counts proportional to k^-alpha recover alpha exactly (R² = 1 up to
	// integer rounding noise).
	const alpha = 1.1
	counts := make([]int, 500)
	for k := 1; k <= len(counts); k++ {
		counts[k-1] = int(1e7 * math.Pow(float64(k), -alpha))
	}
	fit, err := FitZipfCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 0.01 {
		t.Errorf("alpha = %v, want ~%v", fit.Alpha, alpha)
	}
	if fit.R2 < 0.999 {
		t.Errorf("r2 = %v", fit.R2)
	}
	if fit.Points != len(counts) {
		t.Errorf("points = %d", fit.Points)
	}
}

func TestFitZipfCountsIgnoresZerosAndOrder(t *testing.T) {
	// Unsorted input with zero entries: ranking is internal.
	counts := []int{0, 4, 0, 100, 20, 0, 9}
	fit, err := FitZipfCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Points != 4 {
		t.Errorf("points = %d, want 4 positive counts", fit.Points)
	}
	if fit.Alpha <= 0 {
		t.Errorf("alpha = %v, want positive skew", fit.Alpha)
	}
}

func TestFitZipfCountsErrors(t *testing.T) {
	if _, err := FitZipfCounts(nil); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := FitZipfCounts([]int{0, 0, 5}); err == nil {
		t.Error("single positive count accepted")
	}
}

func TestFitZipfFrequenciesRecoversPMF(t *testing.T) {
	// The exact Zipf pmf over values 1..N is a pure power law in the
	// value, so the regression recovers alpha to machine-ish precision.
	z, err := NewZipf(2.70417, 40)
	if err != nil {
		t.Fatal(err)
	}
	freq := make([]float64, z.N)
	for k := 1; k <= z.N; k++ {
		freq[k-1] = z.PMF(k)
	}
	fit, err := FitZipfFrequencies(freq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-z.Alpha) > 1e-9 {
		t.Errorf("alpha = %v, want %v", fit.Alpha, z.Alpha)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Errorf("r2 = %v", fit.R2)
	}
}

func TestFitZipfFrequenciesSkipsZeroBins(t *testing.T) {
	freq := []float64{0.8, 0, 0.1, 0, 0.05}
	fit, err := FitZipfFrequencies(freq)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Points != 3 {
		t.Errorf("points = %d, want 3", fit.Points)
	}
	if _, err := FitZipfFrequencies([]float64{0.5, 0, 0}); err == nil {
		t.Error("single positive bin accepted")
	}
	if _, err := FitZipfFrequencies([]float64{0.5, math.NaN()}); err == nil {
		t.Error("NaN frequency accepted")
	}
}

func TestFitTailTwoRegimes(t *testing.T) {
	// A mixture of a steep body (alpha 3, truncated at 100) and a shallow
	// far tail (alpha 0.8 above 100) — Figure 17's structure. Windowed
	// conditional CCDFs must separate the two regimes.
	rng := rand.New(rand.NewSource(8))
	var xs []float64
	for i := 0; i < 40000; i++ {
		if rng.Float64() < 0.97 {
			g := 2 / math.Pow(1-rng.Float64(), 1/3.0)
			if g > 100 {
				g = 100
			}
			xs = append(xs, math.Floor(g)+1)
		} else {
			g := 100 / math.Pow(1-rng.Float64(), 1/0.8)
			if g > 50000 {
				g = 50000
			}
			xs = append(xs, math.Floor(g)+1)
		}
	}
	body, err := FitTail(xs, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	far, err := FitTail(xs, 100, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if body.Alpha <= far.Alpha {
		t.Errorf("body alpha %v should exceed far alpha %v", body.Alpha, far.Alpha)
	}
	if body.Alpha < 2 || body.Alpha > 4.5 {
		t.Errorf("body alpha = %v, want near 3", body.Alpha)
	}
	if far.Alpha < 0.5 || far.Alpha > 1.2 {
		t.Errorf("far alpha = %v, want near 0.8", far.Alpha)
	}
	if body.Lo != 2 || body.Hi != 100 || body.Points == 0 {
		t.Errorf("body window metadata: %+v", body)
	}
}

func TestFitTailErrors(t *testing.T) {
	if _, err := FitTail([]float64{1, 2, 3}, 5, 10); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := FitTail([]float64{6, 7, 8}, 10, 5); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := FitTail([]float64{6, 6, 6, 6}, 5, 10); err == nil {
		t.Error("degenerate window accepted")
	}
	var zero TailFit
	if zero.Points != 0 {
		t.Error("zero TailFit must mark not-estimable")
	}
}

func TestKolmogorovSmirnovExact(t *testing.T) {
	// Empirical {1, 2, 3, 4} against U(0, 4): F(x) = x/4. The largest
	// deviation is 1/4 at each step.
	uniform := func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 4:
			return 1
		default:
			return x / 4
		}
	}
	d, err := KolmogorovSmirnov([]float64{4, 2, 1, 3}, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.25) > 1e-12 {
		t.Errorf("D = %v, want 0.25", d)
	}
	if _, err := KolmogorovSmirnov(nil, uniform); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err == nil {
		t.Error("nil CDF accepted")
	}
}

func TestKolmogorovSmirnov2(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, err := KolmogorovSmirnov2(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("identical samples D = %v", d)
	}
	d, err = KolmogorovSmirnov2([]float64{1, 2, 3}, []float64{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("disjoint samples D = %v, want 1", d)
	}
	// Shifted uniforms: D equals the shift fraction.
	d, err = KolmogorovSmirnov2([]float64{1, 2, 3, 4}, []float64{2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.25) > 1e-12 {
		t.Errorf("shifted D = %v, want 0.25", d)
	}
	if _, err := KolmogorovSmirnov2(nil, a); err == nil {
		t.Error("empty first sample accepted")
	}
	if _, err := KolmogorovSmirnov2(a, nil); err == nil {
		t.Error("empty second sample accepted")
	}
}

func TestKolmogorovSmirnov2LargeSelfConsistency(t *testing.T) {
	// Two independent samples of one law: D must be near the two-sample
	// fluctuation scale sqrt((na+nb)/(na*nb)).
	rng := rand.New(rand.NewSource(9))
	ln := Lognormal{Mu: 4.38, Sigma: 1.43}
	a := make([]float64, 20000)
	b := make([]float64, 20000)
	for i := range a {
		a[i] = ln.Sample(rng)
		b[i] = ln.Sample(rng)
	}
	d, err := KolmogorovSmirnov2(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.03 {
		t.Errorf("self-consistency D = %v", d)
	}
}

func TestFitZipfMLERecoversAlpha(t *testing.T) {
	// Draw from the sampler the generator uses, refit by MLE.
	const alpha, n = 2.7, 50
	z, err := NewZipf(alpha, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	values := make([]int, 5000)
	for i := range values {
		values[i] = z.SampleRank(rng)
	}
	got, err := FitZipfMLE(values, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-alpha) > 0.1 {
		t.Errorf("alpha = %v, want ~%v", got, alpha)
	}
}

func TestFitZipfMLEEdgeCases(t *testing.T) {
	if _, err := FitZipfMLE([]int{1}, 10); err == nil {
		t.Error("single sample: want error")
	}
	if _, err := FitZipfMLE([]int{1, 2}, 0); err == nil {
		t.Error("bad support: want error")
	}
	// All mass at k=1 clamps at the upper bound instead of diverging.
	got, err := FitZipfMLE([]int{1, 1, 1, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("degenerate sample alpha = %v, want clamp 20", got)
	}
	// Out-of-support values are ignored.
	if _, err := FitZipfMLE([]int{0, 11, 12}, 10); err == nil {
		t.Error("no in-support values: want error")
	}
}
