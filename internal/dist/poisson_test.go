package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestPoissonProcessArrivals(t *testing.T) {
	p, err := NewPoissonProcess(0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	arr := p.ArrivalsIn(rng, 100, 10100, nil)
	// Expect ~5000 arrivals; allow 4 sigma (~283).
	if n := float64(len(arr)); math.Abs(n-5000) > 300 {
		t.Errorf("arrivals = %v, want ~5000", n)
	}
	for i, a := range arr {
		if a < 100 || a >= 10100 {
			t.Fatalf("arrival %v outside [100, 10100)", a)
		}
		if i > 0 && a <= arr[i-1] {
			t.Fatal("arrivals not strictly increasing")
		}
	}
	if got := p.ArrivalsIn(rng, 5, 5, nil); len(got) != 0 {
		t.Errorf("empty span produced %d arrivals", len(got))
	}
	if _, err := NewPoissonProcess(0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestPoissonProcessReusesBuffer(t *testing.T) {
	p, err := NewPoissonProcess(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	buf := make([]float64, 0, 4096)
	out := p.ArrivalsIn(rng, 0, 1000, buf)
	if len(out) == 0 || &out[0] != &buf[:1][0] {
		t.Error("buffer not reused")
	}
}

func TestPiecewisePoissonModulation(t *testing.T) {
	// Rate 1/s in the first half, 0.1/s in the second half.
	const horizon = 40000.0
	rateFn := func(ts float64) float64 {
		if ts < horizon/2 {
			return 1
		}
		return 0.1
	}
	pp, err := NewPiecewisePoisson(rateFn, 900)
	if err != nil {
		t.Fatal(err)
	}
	arr := pp.Arrivals(rand.New(rand.NewSource(12)), horizon, nil)
	var first, second int
	for i, a := range arr {
		if a < 0 || a >= horizon {
			t.Fatalf("arrival %v outside horizon", a)
		}
		if i > 0 && a <= arr[i-1] {
			t.Fatal("arrivals not strictly increasing")
		}
		if a < horizon/2 {
			first++
		} else {
			second++
		}
	}
	if math.Abs(float64(first)-20000) > 600 {
		t.Errorf("first-half arrivals = %d, want ~20000", first)
	}
	if math.Abs(float64(second)-2000) > 250 {
		t.Errorf("second-half arrivals = %d, want ~2000", second)
	}
	want := 0.55 * horizon
	if got := pp.ExpectedCount(horizon); math.Abs(got-want)/want > 0.01 {
		t.Errorf("expected count = %v, want ~%v", got, want)
	}
}

func TestPiecewisePoissonZeroRateWindows(t *testing.T) {
	// Rate is zero after t = 1000: no arrivals may land there.
	rateFn := func(ts float64) float64 {
		if ts < 1000 {
			return 2
		}
		return 0
	}
	pp, err := NewPiecewisePoisson(rateFn, 100)
	if err != nil {
		t.Fatal(err)
	}
	arr := pp.Arrivals(rand.New(rand.NewSource(13)), 5000, nil)
	if len(arr) == 0 {
		t.Fatal("no arrivals in the active region")
	}
	for _, a := range arr {
		if a >= 1000 {
			t.Fatalf("arrival %v in a zero-rate window", a)
		}
	}
	all0 := func(float64) float64 { return 0 }
	pp0, err := NewPiecewisePoisson(all0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := pp0.Arrivals(rand.New(rand.NewSource(14)), 5000, nil); len(got) != 0 {
		t.Errorf("zero-rate process produced %d arrivals", len(got))
	}
	if got := pp0.ExpectedCount(5000); got != 0 {
		t.Errorf("zero-rate expected count = %v", got)
	}
}

func TestPiecewisePoissonPartialWindow(t *testing.T) {
	pp, err := NewPiecewisePoisson(func(float64) float64 { return 1 }, 900)
	if err != nil {
		t.Fatal(err)
	}
	// Horizon not a multiple of the window: the last partial window
	// contributes only its remainder.
	if got := pp.ExpectedCount(1000); math.Abs(got-1000) > 1e-9 {
		t.Errorf("expected count = %v, want 1000", got)
	}
	if got := pp.ExpectedCount(0); got != 0 {
		t.Errorf("expected count at 0 horizon = %v", got)
	}
}

func TestPiecewisePoissonDeterministicUnderSeed(t *testing.T) {
	rateFn := func(ts float64) float64 { return 0.3 + 0.2*math.Sin(ts/5000) }
	pp, err := NewPiecewisePoisson(rateFn, 900)
	if err != nil {
		t.Fatal(err)
	}
	a := pp.Arrivals(rand.New(rand.NewSource(15)), 30000, nil)
	b := pp.Arrivals(rand.New(rand.NewSource(15)), 30000, nil)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrival streams differ under equal seeds")
		}
	}
}

func TestPiecewisePoissonErrors(t *testing.T) {
	if _, err := NewPiecewisePoisson(nil, 900); err == nil {
		t.Error("nil rate function accepted")
	}
	if _, err := NewPiecewisePoisson(func(float64) float64 { return 1 }, 0); err == nil {
		t.Error("zero window accepted")
	}
}
