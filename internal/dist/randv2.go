package dist

import (
	"math"
	randv2 "math/rand/v2"
)

// This file holds the math/rand/v2 entry points of the samplers. The
// repo is migrating generator-side draws off legacy math/rand one
// consumer at a time (simulate moved in PR 4; topology and the
// flash-crowd scenario move in this PR); the legacy methods stay until
// the last consumer (gismo's session machinery, vbr) crosses over.
// SplitMix64 satisfies both source interfaces, so a migrated consumer
// keeps its seed-lane derivation and changes only the stream drawn
// from it.

// DrawV2 is Draw for a math/rand/v2 generator.
func (a *Alias) DrawV2(rng *randv2.Rand) int {
	i := rng.IntN(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// SampleV2 is Sample for a math/rand/v2 generator.
func (l Lognormal) SampleV2(rng *randv2.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}
