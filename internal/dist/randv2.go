package dist

import (
	"math"
	randv2 "math/rand/v2"
)

// This file holds the math/rand/v2 entry points of the samplers. The
// repo is migrating generator-side draws off legacy math/rand one
// consumer at a time (simulate moved in PR 4; topology and the
// flash-crowd scenario move in this PR); the legacy methods stay until
// the last consumer (gismo's session machinery, vbr) crosses over.
// SplitMix64 satisfies both source interfaces, so a migrated consumer
// keeps its seed-lane derivation and changes only the stream drawn
// from it.

// DrawV2 is Draw for a math/rand/v2 generator.
func (a *Alias) DrawV2(rng *randv2.Rand) int {
	i := rng.IntN(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// SampleV2 is Sample for a math/rand/v2 generator.
func (l Lognormal) SampleV2(rng *randv2.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// ArrivalsV2 is Arrivals for a math/rand/v2 generator: the same
// Lewis–Shedler thinning, draw for draw, over a v2 source. It exists
// for consumers that key their randomness to a splitmix seed lane
// (core's Figure 6 Poisson replica) instead of a legacy *rand.Rand.
func (p *PiecewisePoisson) ArrivalsV2(rng *randv2.Rand, horizon float64, buf []float64) []float64 {
	out := buf[:0]
	if horizon <= 0 {
		return out
	}
	rates := p.windowRates(horizon)
	var maxRate float64
	for _, r := range rates {
		if r > maxRate {
			maxRate = r
		}
	}
	if maxRate == 0 {
		return out
	}
	t := rng.ExpFloat64() / maxRate
	for t < horizon {
		k := int(t / p.window)
		if k >= len(rates) {
			k = len(rates) - 1
		}
		if rng.Float64()*maxRate < rates[k] {
			out = append(out, t)
		}
		t += rng.ExpFloat64() / maxRate
	}
	return out
}
