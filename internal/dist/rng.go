package dist

// SplitMix64 is a tiny, fast, seedable rand.Source64 (Steele, Lea &
// Flood, "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014).
//
// Its 8-byte state is what makes the sharded workload generator viable:
// every session gets its own decorrelated random stream derived from
// (seed, session index) alone, so a shard can reseed one source per
// session instead of allocating the ~5 KB state of the default Go
// source, and the generated workload is independent of how sessions are
// partitioned across shards.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a source seeded with the given state.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

const (
	splitmixGamma = 0x9E3779B97F4A7C15 // 2^64 / golden ratio
	splitmixMulA  = 0xBF58476D1CE4E5B9
	splitmixMulB  = 0x94D049BB133111EB
)

// mix64 is the splitmix64 output finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= splitmixMulA
	z ^= z >> 27
	z *= splitmixMulB
	z ^= z >> 31
	return z
}

// Uint64 advances the state by the golden-ratio gamma and finalizes it.
func (s *SplitMix64) Uint64() uint64 {
	s.state += splitmixGamma
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *SplitMix64) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed implements rand.Source, resetting the state.
func (s *SplitMix64) Seed(seed int64) {
	s.state = uint64(seed)
}

// Mix64 derives a decorrelated child seed from a parent seed and a
// stream (lane) index: the splitmix64 finalizer applied to the parent
// advanced by lane+1 gammas. Equal inputs give equal outputs;
// neighbouring lanes give statistically independent streams. This is the
// shard-seeding scheme of the streaming generator (DESIGN.md): child
// RNGs keyed by (seed, lane) are reproducible without any shared state.
func Mix64(seed, lane uint64) uint64 {
	return mix64(seed + (lane+1)*splitmixGamma)
}
