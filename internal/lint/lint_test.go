package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture tests follow the analysistest convention: a fixture line
// carrying a "// want `re`" comment expects exactly one diagnostic on
// that line per backtick-quoted regexp, and every diagnostic must be
// wanted. Fixtures live under testdata/src/<analyzer>/ — outside the
// build (the toolchain ignores testdata), but loaded through the same
// Loader lsmvet uses, so directive suppression, type resolution, and
// position accounting are tested end to end.

// One shared loader across the test run: the standard library is
// source-checked once, not once per fixture.
var (
	loaderOnce sync.Once
	sharedL    *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedL, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return sharedL
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want ((?:`[^`]*` ?)+)")

// loadExpectations scans a fixture directory's sources for want
// comments, keyed by "file.go:line".
func loadExpectations(t *testing.T, dir string) map[string][]*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]*expectation{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, quoted := range regexp.MustCompile("`[^`]*`").FindAllString(m[1], -1) {
				re, err := regexp.Compile(strings.Trim(quoted, "`"))
				if err != nil {
					t.Fatalf("%s: bad want regexp %s: %v", key, quoted, err)
				}
				wants[key] = append(wants[key], &expectation{re: re})
			}
		}
	}
	return wants
}

// runFixture checks the analyzers' diagnostics over one fixture package
// against its want annotations, both directions.
func runFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l, []*Package{pkg}, analyzers)
	wants := loadExpectations(t, dir)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, exp := range wants[key] {
			if !exp.matched {
				t.Errorf("%s: want diagnostic matching %q, got none", key, exp.re)
			}
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	// The fixture package is outside DeterministicPackages by
	// construction; widen the scope to it.
	runFixture(t, "testdata/src/determinism", NewDeterminism(func(string) bool { return true }))
}

func TestHotpathFixture(t *testing.T) {
	runFixture(t, "testdata/src/hotpath", NewHotpath())
}

func TestEntryRetainFixture(t *testing.T) {
	runFixture(t, "testdata/src/entryretain", NewEntryRetain())
}

func TestSeedlaneFixture(t *testing.T) {
	runFixture(t, "testdata/src/seedlane", NewSeedlane())
}

// TestUnknownDirective pins the driver behavior that a typoed //lsm:
// verb is itself a finding rather than a silent no-op suppression.
func TestUnknownDirective(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir("testdata/src/directive")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l, []*Package{pkg}, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "directive" || !strings.Contains(diags[0].Message, "unknown //lsm: directive") {
		t.Fatalf("unexpected diagnostic: %v", diags[0])
	}
}

// TestRepoClean is the check CI's lint job enforces: the default suite
// over the whole module must be finding-free.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	l := testLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(l, pkgs, DefaultAnalyzers()) {
		t.Errorf("%s", d)
	}
}
