package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewHotpath builds the hotpath analyzer: inside functions annotated
// //lsm:hotpath it flags the allocation sources PR 4 drove out of the
// serve path —
//
//   - any call into package fmt (Sprintf and friends allocate and
//     reflect),
//   - non-constant string concatenation (each + builds a fresh string),
//   - implicit boxing of a concrete non-pointer value into an
//     interface (call arguments, assignments, returns, conversions),
//   - make with no size hint (grows from zero on first insert).
//
// Individual audited allocations (cold error paths, once-per-conn
// setup) are granted with //lsm:alloc.
func NewHotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocating constructs in //lsm:hotpath functions",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !FuncAnnotated(fn, VerbHotpath) {
					continue
				}
				checkHotpathBody(pass, fn)
			}
		}
	}
	return a
}

func checkHotpathBody(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotpathCall(pass, name, n)
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			tv, ok := info.Types[n]
			if !ok || tv.Value != nil { // constant concat folds at compile time
				return true
			}
			if isString(tv.Type) {
				pass.Reportf(n.OpPos, []string{VerbAlloc},
					"string concatenation in //lsm:hotpath %s allocates; append to a reused []byte instead", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.TokPos, []string{VerbAlloc},
					"string += in //lsm:hotpath %s allocates; append to a reused []byte instead", name)
			}
			checkHotpathAssignBoxing(pass, name, n)
		case *ast.ReturnStmt:
			checkHotpathReturnBoxing(pass, name, fn, n)
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, name string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	// fmt.* calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), []string{VerbAlloc},
					"fmt.%s call in //lsm:hotpath %s: fmt boxes every operand and allocates; use strconv appends or preformatted bytes", sel.Sel.Name, name)
				return
			}
		}
	}
	// Builtins and conversions.
	if funTV, ok := info.Types[call.Fun]; ok {
		if funTV.IsType() {
			// Explicit conversion: T(x). Boxing only when T is an
			// interface and x is a boxable concrete value.
			if isIface(funTV.Type) && len(call.Args) == 1 && boxes(info.TypeOf(call.Args[0])) {
				pass.Reportf(call.Pos(), []string{VerbAlloc},
					"conversion to interface in //lsm:hotpath %s boxes the value (allocates)", name)
			}
			return
		}
		if funTV.IsBuiltin() {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) == 1 {
				pass.Reportf(call.Pos(), []string{VerbAlloc},
					"make without a size hint in //lsm:hotpath %s: presize it or hoist the allocation out of the hot path", name)
			}
			return
		}
	}
	// Ordinary call: flag concrete non-pointer arguments landing in
	// interface parameters (the implicit boxing fmt-style APIs cause).
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isIface(pt) && boxes(info.TypeOf(arg)) && !isUntypedNil(info, arg) {
			pass.Reportf(arg.Pos(), []string{VerbAlloc},
				"argument boxed into interface parameter in //lsm:hotpath %s (allocates)", name)
		}
	}
}

func checkHotpathAssignBoxing(pass *Pass, name string, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		return // multi-value RHS carries its own types through
	}
	info := pass.Pkg.Info
	for i, lhs := range n.Lhs {
		lt := info.TypeOf(lhs)
		if n.Tok == token.DEFINE {
			// x := y infers x's type from y — no conversion happens.
			continue
		}
		if isIface(lt) && boxes(info.TypeOf(n.Rhs[i])) && !isUntypedNil(info, n.Rhs[i]) {
			pass.Reportf(n.Rhs[i].Pos(), []string{VerbAlloc},
				"value boxed into interface on assignment in //lsm:hotpath %s (allocates)", name)
		}
	}
}

func checkHotpathReturnBoxing(pass *Pass, name string, fn *ast.FuncDecl, n *ast.ReturnStmt) {
	info := pass.Pkg.Info
	sig, ok := info.TypeOf(fn.Name).(*types.Signature)
	if !ok || sig.Results() == nil || len(n.Results) != sig.Results().Len() {
		return
	}
	for i, res := range n.Results {
		rt := sig.Results().At(i).Type()
		if isIface(rt) && boxes(info.TypeOf(res)) && !isUntypedNil(info, res) {
			pass.Reportf(res.Pos(), []string{VerbAlloc},
				"return value boxed into interface result in //lsm:hotpath %s (allocates)", name)
		}
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether storing a value of type t into an interface
// allocates: concrete non-pointer types do (the value is copied to the
// heap); pointers, channels, maps, funcs, and existing interfaces fit
// the data word.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		k := t.Underlying().(*types.Basic).Kind()
		return k != types.UnsafePointer && k != types.UntypedNil
	}
	return true
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return true
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
