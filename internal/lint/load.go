// Package lint is the repo's compile-time contract checker: a small
// go/analysis-style framework plus the analyzers behind `lsmvet`
// (determinism, hotpath, entryretain, seedlane — see DESIGN.md
// "Enforced invariants").
//
// The framework is built on the standard library only (go/parser,
// go/types, go/importer): the build environment pins no external
// modules, so golang.org/x/tools is deliberately not a dependency.
// Standard-library imports are type-checked from source via the
// compiler's "source" importer; module-local packages are resolved by
// walking the module tree, so the whole loader works offline.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package plus the side tables
// the analyzers need.
type Package struct {
	Path       string // import path, e.g. repro/internal/wmslog
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Directives *Directives
}

// Loader parses and type-checks packages of one module. It memoizes by
// import path, so shared dependencies are checked once per run.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader rooted at the module containing dir (dir or
// any parent must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer walks GOROOT package sources through
	// go/build. With cgo enabled it would try to preprocess packages
	// like net through the cgo tool; the pure-Go fallbacks type-check
	// identically for analysis purposes and need no toolchain exec.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// local reports whether path belongs to this module.
func (l *Loader) local(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads the package in a single directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.Load(path)
}

// Load parses and type-checks one module-local package (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: loaderImporter{l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		// A broken package cannot be analyzed soundly; surface the
		// first error rather than reporting half-typed findings.
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	p := &Package{
		Path:       path,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Directives: collectDirectives(l.Fset, files),
	}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of one directory, in a fixed
// filename order so diagnostics are stable run to run.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadAll loads every package under the module root, skipping testdata,
// hidden directories, and build outputs — the `./...` pattern.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "bin" || name == "profiles" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// loaderImporter routes module-local imports through the Loader and
// everything else (the standard library) through the source importer.
type loaderImporter struct{ l *Loader }

func (i loaderImporter) Import(path string) (*types.Package, error) {
	if i.l.local(path) {
		p, err := i.l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return i.l.std.Import(path)
}
