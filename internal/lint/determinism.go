package lint

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages is the scope of the determinism analyzer: the
// packages whose output is contractually a pure function of (seed,
// config) — the byte-identical-logs-at-any-shard-count guarantee rests
// on them never reading ambient state.
var DeterministicPackages = map[string]bool{
	"repro/internal/gismo":    true,
	"repro/internal/simulate": true,
	"repro/internal/scenario": true,
	"repro/internal/workload": true,
	"repro/internal/wmslog":   true,
	"repro/internal/dist":     true,
	"repro/internal/sessions": true,
	"repro/internal/rate":     true,
	"repro/internal/ring":     true,
	// The fused generate→serve corridor spans these two as of the
	// ring-seam front half: heapx orders every shard's pending sessions,
	// core drives the end-to-end streamed run.
	"repro/internal/heapx": true,
	"repro/internal/core":  true,
	// The calibration loop (fit → twin → validate) is reproducible by
	// contract: equal (characterization, seed) inputs yield equal models,
	// twins, and reports.
	"repro/internal/calibrate": true,
}

// wallclockFuncs are the package time functions that read (or schedule
// against) the wall clock.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randConstructors are the math/rand{,/v2} package functions that build
// seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// NewDeterminism builds the determinism analyzer. scope selects the
// packages to check; nil means DeterministicPackages. It flags
//
//   - wall-clock reads (time.Now and friends) — suppress with
//     //lsm:wallclock (or //lsm:nondet),
//   - draws from the global math/rand or math/rand/v2 source (any
//     package-level function except the seeded constructors) — every
//     draw must come from a splitmix-lane-seeded generator,
//   - `range` over a map — iteration order is randomized per run, so a
//     map walk feeding any ordered output breaks byte-identity;
//     suppress order-insensitive walks with //lsm:nondet.
func NewDeterminism(scope func(pkgPath string) bool) *Analyzer {
	if scope == nil {
		scope = func(p string) bool { return DeterministicPackages[p] }
	}
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, global-rand, and map-order reads in deterministic packages",
	}
	a.Run = func(pass *Pass) {
		if !scope(pass.Pkg.Path) {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					checkDeterminismSelector(pass, n)
				case *ast.RangeStmt:
					if t := pass.Pkg.Info.TypeOf(n.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(), []string{VerbNondet},
								"range over map in deterministic package %s: iteration order is randomized; sort the keys or annotate //lsm:nondet if order cannot reach any output", pass.Pkg.Types.Name())
						}
					}
				}
				return true
			})
		}
	}
	return a
}

func checkDeterminismSelector(pass *Pass, sel *ast.SelectorExpr) {
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.Pkg.Info.Uses[x].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if wallclockFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), []string{VerbWallclock, VerbNondet},
				"wall-clock read time.%s in deterministic package %s: outputs must be a pure function of (seed, config); annotate //lsm:wallclock if audited", sel.Sel.Name, pass.Pkg.Types.Name())
		}
	case "math/rand", "math/rand/v2":
		obj, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || randConstructors[obj.Name()] {
			return
		}
		pass.Reportf(sel.Pos(), []string{VerbNondet},
			"global %s.%s draw in deterministic package %s: draw from a splitmix-lane-seeded generator instead", pn.Imported().Name(), sel.Sel.Name, pass.Pkg.Types.Name())
	}
}
