package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive verbs. The grammar is
//
//	//lsm:<verb> [-- reason]
//
// written either as a trailing comment on the offending line, as a
// comment line directly above it, or inside a function's doc comment
// (covering the whole function). `hotpath` is an annotation (it opts a
// function INTO checking); the rest are audited suppressions and should
// carry a reason.
const (
	// VerbHotpath marks a function as allocation-critical: the hotpath
	// analyzer checks every call and expression in its body.
	VerbHotpath = "hotpath"
	// VerbWallclock grants an audited wall-clock read (time.Now and
	// friends) inside a deterministic package.
	VerbWallclock = "wallclock"
	// VerbNondet grants any determinism exception: wall-clock reads,
	// global rand draws, or map iteration feeding output.
	VerbNondet = "nondet"
	// VerbAlloc grants an allocation exception inside an //lsm:hotpath
	// function.
	VerbAlloc = "alloc"
	// VerbRetain grants retention of a sink *wmslog.Entry pointer (the
	// annotated code owns the entry, or clones before the pool reuses it).
	VerbRetain = "retain"
	// VerbLanedup grants a deliberately shared splitmix seed lane.
	VerbLanedup = "lanedup"
)

var knownVerbs = map[string]bool{
	VerbHotpath:   true,
	VerbWallclock: true,
	VerbNondet:    true,
	VerbAlloc:     true,
	VerbRetain:    true,
	VerbLanedup:   true,
}

const directivePrefix = "//lsm:"

// Directives indexes one package's //lsm: comments for suppression and
// annotation lookup.
type Directives struct {
	// byLine maps filename → line → verbs granted on that line. A
	// directive covers its own line and the next one, so both trailing
	// and line-above placements work.
	byLine map[string]map[int][]string
	// funcRanges holds doc-comment directives covering whole bodies.
	funcRanges []funcDirective
	// Unknown collects malformed or unrecognized //lsm: comments; the
	// driver reports them so a typoed suppression fails loudly instead
	// of silently not suppressing.
	Unknown []Unknown
}

type funcDirective struct {
	verb     string
	from, to token.Pos
}

// Unknown is one unparseable //lsm: directive.
type Unknown struct {
	Pos  token.Pos
	Text string
}

// parseDirective splits "//lsm:verb -- reason" into its verb, reporting
// ok=false for text that does not carry a known verb.
func parseDirective(text string) (verb string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", false
	}
	verb = rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb = rest[:i]
	}
	return verb, knownVerbs[verb]
}

func collectDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				verb, ok := parseDirective(c.Text)
				if !ok {
					d.Unknown = append(d.Unknown, Unknown{Pos: c.Pos(), Text: c.Text})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], verb)
				lines[pos.Line+1] = append(lines[pos.Line+1], verb)
			}
		}
		// Doc-comment directives cover the whole declaration they
		// document (function bodies in practice).
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				return true
			}
			for _, c := range fn.Doc.List {
				if verb, ok := parseDirective(c.Text); ok {
					d.funcRanges = append(d.funcRanges, funcDirective{verb: verb, from: fn.Pos(), to: fn.End()})
				}
			}
			return true
		})
	}
	return d
}

// SuppressedAt reports whether any of the verbs is granted at pos.
func (d *Directives) SuppressedAt(fset *token.FileSet, pos token.Pos, verbs ...string) bool {
	p := fset.Position(pos)
	for _, verb := range d.byLine[p.Filename][p.Line] {
		for _, want := range verbs {
			if verb == want {
				return true
			}
		}
	}
	for _, fr := range d.funcRanges {
		if pos < fr.from || pos >= fr.to {
			continue
		}
		for _, want := range verbs {
			if fr.verb == want {
				return true
			}
		}
	}
	return false
}

// FuncAnnotated reports whether fn's doc comment carries the verb.
func FuncAnnotated(fn *ast.FuncDecl, verb string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if v, ok := parseDirective(c.Text); ok && v == verb {
			return true
		}
	}
	return false
}
