package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewSeedlane builds the seedlane analyzer. Every independent random
// stream in the system is derived as dist.Mix64(seed, lane); the
// streams are only independent while the lane numbers are unique
// (gismo owns 0–4, the simulator's per-transfer draws own lane 5 — the
// contract RunStreamSharded depends on). The analyzer collects, across
// the whole repo,
//
//   - integer constants following the lane naming convention
//     (laneFoo / fooLane), and
//   - constant second arguments of dist.Mix64 calls,
//
// and fails when two distinct declarations or call sites share a
// value. A deliberately shared lane is granted with //lsm:lanedup.
func NewSeedlane() *Analyzer {
	type candidate struct {
		value int64
		name  string // const name, or the literal text for bare literals
		obj   types.Object
		pos   token.Pos
		pkg   *Package
		fset  *token.FileSet
	}
	var cands []candidate
	seenObj := map[types.Object]bool{}

	addConst := func(pass *Pass, obj types.Object, name string, pos token.Pos) {
		c, ok := obj.(*types.Const)
		if !ok || seenObj[obj] {
			return
		}
		v, exact := constant.Int64Val(constant.ToInt(c.Val()))
		if !exact {
			return
		}
		seenObj[obj] = true
		cands = append(cands, candidate{value: v, name: name, obj: obj, pos: pos, pkg: pass.Pkg, fset: pass.Fset()})
	}

	a := &Analyzer{
		Name: "seedlane",
		Doc:  "forbid duplicate splitmix seed-lane constants repo-wide",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ValueSpec:
					for _, name := range n.Names {
						if !isLaneName(name.Name) {
							continue
						}
						addConst(pass, info.Defs[name], name.Name, name.Pos())
					}
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Mix64" || len(n.Args) != 2 {
						return true
					}
					x, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					pn, ok := info.Uses[x].(*types.PkgName)
					if !ok || pn.Imported().Path() != "repro/internal/dist" {
						return true
					}
					arg := ast.Unparen(n.Args[1])
					// Conversions like uint64(laneFoo) carry the
					// constant through; unwrap one conversion layer.
					if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
						if tv, ok := info.Types[conv.Fun]; ok && tv.IsType() {
							arg = ast.Unparen(conv.Args[0])
						}
					}
					if id, ok := arg.(*ast.Ident); ok {
						addConst(pass, info.Uses[id], id.Name, id.Pos())
						return true
					}
					if sel2, ok := arg.(*ast.SelectorExpr); ok {
						addConst(pass, info.Uses[sel2.Sel], sel2.Sel.Name, sel2.Pos())
						return true
					}
					// Bare literal lane: every occurrence is its own
					// declaration site, so two call sites using the
					// same literal collide (name the lane instead).
					if tv, ok := info.Types[arg]; ok && tv.Value != nil {
						if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
							cands = append(cands, candidate{
								value: v,
								name:  fmt.Sprintf("literal %d", v),
								pos:   arg.Pos(),
								pkg:   pass.Pkg,
								fset:  pass.Fset(),
							})
						}
					}
				}
				return true
			})
		}
	}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		byValue := map[int64][]candidate{}
		for _, c := range cands {
			byValue[c.value] = append(byValue[c.value], c)
		}
		values := make([]int64, 0, len(byValue))
		for v := range byValue {
			values = append(values, v)
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		for _, v := range values {
			group := byValue[v]
			if len(group) < 2 {
				continue
			}
			var names []string
			for _, c := range group {
				names = append(names, fmt.Sprintf("%s (%s)", c.name, c.fset.Position(c.pos)))
			}
			for _, c := range group {
				if c.pkg.Directives.SuppressedAt(c.fset, c.pos, VerbLanedup, VerbNondet) {
					continue
				}
				report(c.fset.Position(c.pos),
					"seed lane %d is claimed by %d sites: %s — lanes key independent random streams and must be unique (annotate //lsm:lanedup if sharing is deliberate)",
					v, len(group), strings.Join(names, ", "))
			}
		}
	}
	return a
}

// isLaneName matches the repo's lane naming convention: a camel-case
// segment exactly "lane"/"Lane" at the start or end of the identifier
// (laneRate, serveLane, LaneFoo). "Lanes" (counts, bounds) does not
// match.
func isLaneName(name string) bool {
	if rest, ok := cutAnyPrefix(name, "lane", "Lane"); ok {
		return rest == "" || (rest[0] >= 'A' && rest[0] <= 'Z') || (rest[0] >= '0' && rest[0] <= '9') || rest[0] == '_'
	}
	if strings.HasSuffix(name, "Lane") {
		return true
	}
	return false
}

func cutAnyPrefix(s string, prefixes ...string) (rest string, ok bool) {
	for _, p := range prefixes {
		if r, found := strings.CutPrefix(s, p); found {
			return r, true
		}
	}
	return "", false
}
