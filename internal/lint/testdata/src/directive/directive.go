// Package directive carries a typoed //lsm: verb: the driver must
// surface it as a finding instead of a silent no-op suppression.
package directive

//lsm:hotpth
func typo() {}
