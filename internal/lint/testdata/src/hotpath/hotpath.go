// Package hotpath exercises the hotpath analyzer: allocation sources
// inside //lsm:hotpath functions are findings; identical constructs in
// unannotated functions, constant folds, and //lsm:alloc-audited sites
// are not.
package hotpath

import "fmt"

type sink interface{ accept(any) }

//lsm:hotpath
func hot(s sink, n int, parts []string) string {
	fmt.Println(n)             // want `fmt\.Println call in //lsm:hotpath hot`
	out := parts[0] + parts[1] // want `string concatenation in //lsm:hotpath hot`
	out += "!"                 // want `string \+= in //lsm:hotpath hot`
	s.accept(n)                // want `argument boxed into interface parameter`
	m := make(map[int]int)     // want `make without a size hint`
	m[n] = n
	var v any
	v = n // want `value boxed into interface on assignment`
	_ = v
	_ = any(n) // want `conversion to interface`
	folded := "a" + "b"
	return out + folded // want `string concatenation in //lsm:hotpath hot`
}

//lsm:hotpath
func boxedReturn(n int) any {
	return n // want `return value boxed into interface result`
}

//lsm:hotpath
func clean(buf []byte, n int) []byte {
	sized := make([]byte, 0, n)
	sized = append(sized, byte(n&0xff))
	return append(buf, sized...)
}

//lsm:hotpath
func coldError(err error) string {
	return fmt.Sprintf("cold: %v", err) //lsm:alloc -- teardown path, once per connection
}

func unannotated(n int) string {
	return fmt.Sprintf("%d", n)
}
