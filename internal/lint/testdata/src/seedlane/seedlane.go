// Package seedlane exercises the repo-wide seed-lane registry: two
// declarations (or Mix64 call sites) claiming one lane value collide
// unless //lsm:lanedup grants the sharing.
package seedlane

import "repro/internal/dist"

const (
	laneAlpha  uint64 = 1
	laneBeta   uint64 = 2 // want `seed lane 2 is claimed by 2 sites`
	laneDup    uint64 = 2 // want `seed lane 2 is claimed by 2 sites`
	laneMirror uint64 = 3 // want `seed lane 3 is claimed by 2 sites`
	sharedLane uint64 = 3 //lsm:lanedup -- deliberately mirrors laneMirror for the suppression case
)

func mix(seed uint64) uint64 {
	a := dist.Mix64(seed, laneAlpha)
	b := dist.Mix64(seed, 9) // want `seed lane 9 is claimed by 2 sites`
	c := dist.Mix64(seed, 9) // want `seed lane 9 is claimed by 2 sites`
	return a ^ b ^ c ^ laneBeta ^ laneDup ^ sharedLane ^ laneMirror
}
