// Package entryretain exercises the entryretain analyzer against the
// pooled-entry contract: a sink *wmslog.Entry is recycled after the
// call, so the pointer must not outlive it. Value copies are safe;
// //lsm:retain grants audited ownership.
package entryretain

import "repro/internal/wmslog"

type holder struct {
	last *wmslog.Entry
}

var global *wmslog.Entry

func (h *holder) sinkField(e *wmslog.Entry) {
	h.last = e // want `stored in a struct field`
}

func sinkSlice(buf []*wmslog.Entry, e *wmslog.Entry) {
	buf[0] = e         // want `stored in a slice or map`
	_ = append(buf, e) // want `appended to a slice`
}

func sinkGlobal(e *wmslog.Entry) {
	global = e // want `stored in a package-level variable`
}

func sinkAlias(e *wmslog.Entry) {
	alias := e
	global = alias // want `stored in a package-level variable`
}

func sinkChan(ch chan *wmslog.Entry, e *wmslog.Entry) {
	ch <- e // want `sent on a channel`
}

func sinkGoroutine(e *wmslog.Entry) {
	go consume(e) // want `passed to a goroutine`
}

func sinkClosure(e *wmslog.Entry) func() int64 {
	return func() int64 { return e.Bytes } // want `captured by a closure`
}

func sinkComposite(e *wmslog.Entry) []*wmslog.Entry {
	return []*wmslog.Entry{e} // want `stored in a composite literal`
}

func sinkCopy(e *wmslog.Entry) wmslog.Entry {
	cp := *e // copying the value is the sanctioned way to retain
	return cp
}

func consume(e *wmslog.Entry) {
	_ = e.Bytes
}

//lsm:retain -- this fixture function owns its entries (parser-style)
func owner(e *wmslog.Entry) {
	global = e
}
