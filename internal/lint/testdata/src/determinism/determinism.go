// Package determinism exercises the determinism analyzer: wall-clock
// reads, global-rand draws, and map ranges are findings; seeded
// generators and directive-audited sites are not.
package determinism

import (
	"math/rand"
	randv2 "math/rand/v2"
	"sort"
	"time"
)

func wallclock() time.Time {
	return time.Now() // want `wall-clock read time\.Now`
}

func auditedWallclock() time.Time {
	return time.Now() //lsm:wallclock -- operator-facing timestamp, never reaches an output
}

func timers(d time.Duration) {
	t := time.NewTimer(d) // want `wall-clock read time\.NewTimer`
	t.Stop()
}

func globalDraws() int {
	a := rand.Intn(10)   // want `global rand\.Intn draw`
	b := randv2.IntN(10) // want `global rand\.IntN draw`
	return a + b
}

func seededDraws() int {
	r := rand.New(rand.NewSource(1))
	r2 := randv2.New(randv2.NewPCG(1, 2))
	return r.Intn(10) + r2.IntN(10)
}

func mapRange(m map[int]int) int {
	total := 0
	for _, v := range m { // want `range over map in deterministic package`
		total += v
	}
	return total
}

func sortedMapRange(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m { //lsm:nondet -- sorted below before any output
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
