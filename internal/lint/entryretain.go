package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// entryPtrType is the pooled type whose lifetime the analyzer guards.
const entryPtrType = "*repro/internal/wmslog.Entry"

// NewEntryRetain builds the entryretain analyzer: the simulator pools
// log entries and recycles them the moment a StreamSinks.Entry call
// returns (the copy-to-retain contract, DESIGN.md §1b). Any function
// taking a *wmslog.Entry parameter therefore must not let the POINTER
// outlive the call: storing it in a field, slice, map, channel,
// package variable, or goroutine/closure is a use-after-recycle bug in
// waiting. Copying the value (`cp := *e`) is always safe and never
// flagged. Functions that own their entries (parsers, mergers) carry
// //lsm:retain with a reason.
func NewEntryRetain() *Analyzer {
	a := &Analyzer{
		Name: "entryretain",
		Doc:  "forbid retaining a sink *wmslog.Entry past the call",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var ftype *ast.FuncType
				var body *ast.BlockStmt
				switch n := n.(type) {
				case *ast.FuncDecl:
					ftype, body = n.Type, n.Body
				case *ast.FuncLit:
					ftype, body = n.Type, n.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				tainted := entryParams(pass, ftype)
				if len(tainted) > 0 {
					checkRetention(pass, body, tainted)
				}
				return true
			})
		}
	}
	return a
}

// entryParams collects the function's parameters of type *wmslog.Entry.
func entryParams(pass *Pass, ftype *ast.FuncType) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	if ftype.Params == nil {
		return tainted
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			obj := pass.Pkg.Info.Defs[name]
			if obj != nil && types.TypeString(obj.Type(), nil) == entryPtrType {
				tainted[obj] = true
			}
		}
	}
	return tainted
}

// checkRetention walks one function body with the given tainted
// objects. Local aliases (`x := e`, `x = e`) propagate taint; any flow
// of a tainted pointer into storage that outlives the call is flagged.
func checkRetention(pass *Pass, body *ast.BlockStmt, tainted map[types.Object]bool) {
	info := pass.Pkg.Info
	taintedExpr := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && tainted[info.Uses[id]]
	}

	// Fixed-point alias propagation: `x := e` chains can appear in any
	// order relative to their uses.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !taintedExpr(as.Rhs[i]) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					// Aliases of package-level vars are retention, not
					// aliasing; handled below.
					if obj.Parent() != nil && obj.Parent() != pass.Pkg.Types.Scope() {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	report := func(pos token.Pos, how string) {
		pass.Reportf(pos, []string{VerbRetain},
			"sink *wmslog.Entry %s: the entry is pooled and recycled after the sink returns — copy the value (cp := *e) to retain, or annotate //lsm:retain if this code owns the entry", how)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !taintedExpr(n.Rhs[i]) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					report(n.Rhs[i].Pos(), "stored in a struct field")
				case *ast.IndexExpr:
					report(n.Rhs[i].Pos(), "stored in a slice or map")
				case *ast.Ident:
					if obj := info.Uses[l]; obj != nil && obj.Parent() == pass.Pkg.Types.Scope() {
						report(n.Rhs[i].Pos(), "stored in a package-level variable")
					}
				}
			}
		case *ast.SendStmt:
			if taintedExpr(n.Value) {
				report(n.Value.Pos(), "sent on a channel")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if taintedExpr(arg) {
					report(arg.Pos(), "passed to a goroutine")
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "append" {
					for _, arg := range n.Args[1:] {
						if taintedExpr(arg) {
							report(arg.Pos(), "appended to a slice")
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if taintedExpr(v) {
					report(v.Pos(), "stored in a composite literal")
				}
			}
		case *ast.FuncLit:
			// A closure can run after the sink returns; any use of the
			// pointer inside one is a retention unless the closure is
			// part of the synchronous call (callers annotate those).
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if ok && tainted[info.Uses[id]] {
					report(id.Pos(), "captured by a closure")
					return false
				}
				return true
			})
			return false // inner FuncLits re-checked from their own params only
		}
		return true
	})
}
