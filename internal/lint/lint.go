package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding, position-resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one checking pass. Run is invoked once per package;
// Finish, if set, once after every package has been visited (for
// repo-wide checks like seedlane). Analyzers carrying per-run state are
// built fresh by their New* constructor for every Run call.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
	// Finish reports cross-package findings. Suppression is the
	// analyzer's job here: it holds the package a position belongs to,
	// the driver does not.
	Finish func(report func(pos token.Position, format string, args ...any))
}

// Pass hands one package to one analyzer.
type Pass struct {
	Loader   *Loader
	Pkg      *Package
	analyzer *Analyzer
	sink     *runSink
}

// Fset returns the file set shared by every package in the run.
func (p *Pass) Fset() *token.FileSet { return p.Loader.Fset }

// Suppressed reports whether a diagnostic at pos is covered by an
// //lsm: directive granting one of the verbs.
func (p *Pass) Suppressed(pos token.Pos, verbs ...string) bool {
	return p.Pkg.Directives.SuppressedAt(p.Loader.Fset, pos, verbs...)
}

// Reportf records a diagnostic unless a directive with one of the
// verbs covers pos.
func (p *Pass) Reportf(pos token.Pos, verbs []string, format string, args ...any) {
	if len(verbs) > 0 && p.Suppressed(pos, verbs...) {
		return
	}
	p.sink.add(Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Loader.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

type runSink struct {
	diags []Diagnostic
}

func (s *runSink) add(d Diagnostic) { s.diags = append(s.diags, d) }

// Run applies the analyzers to the packages and returns the surviving
// diagnostics in a stable (file, line, column, analyzer) order.
// Unknown //lsm: directives are themselves diagnostics: a typoed
// suppression must fail loudly.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	sink := &runSink{}
	for _, pkg := range pkgs {
		for _, u := range pkg.Directives.Unknown {
			sink.add(Diagnostic{
				Analyzer: "directive",
				Pos:      l.Fset.Position(u.Pos),
				Message:  fmt.Sprintf("unknown //lsm: directive %q (want one of hotpath, wallclock, nondet, alloc, retain, lanedup)", u.Text),
			})
		}
	}
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range pkgs {
				a.Run(&Pass{Loader: l, Pkg: pkg, analyzer: a, sink: sink})
			}
		}
		if a.Finish != nil {
			name := a.Name
			a.Finish(func(pos token.Position, format string, args ...any) {
				sink.add(Diagnostic{
					Analyzer: name,
					Pos:      pos,
					Message:  fmt.Sprintf(format, args...),
				})
			})
		}
	}
	sort.Slice(sink.diags, func(i, j int) bool {
		a, b := sink.diags[i], sink.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return sink.diags
}
