package lint

// DefaultAnalyzers returns a fresh instance of the full lsmvet suite.
// Instances carry per-run state (seedlane accumulates candidates
// across packages), so a new slice is built for every Run.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(nil),
		NewHotpath(),
		NewEntryRetain(),
		NewSeedlane(),
	}
}
