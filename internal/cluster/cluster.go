// Package cluster is the horizontal-scale axis of the live streaming
// service: a fleet of liveserver nodes behind a deterministic
// redirector front-end, the way the paper's production workload was
// actually served (a server farm, not one socket loop).
//
// The front-end speaks two line protocols on one listener, dispatched
// by the first verb of a connection:
//
// Clients (media players / the load generator):
//
//	C: HELLO <player-id>
//	S: OK HELLO
//	C: START <uri> [<session> <seq>]
//	S: REDIRECT <host:port>          (or "ERR no nodes")
//	...                              (more STARTs allowed)
//	C: QUIT
//	S: OK BYE
//
// The client then dials the redirected node and replays the transfer
// there with the full liveserver protocol. One hop, bounded: a node
// never redirects, so a client that receives a second REDIRECT is
// talking to a misconfigured fleet and must stop following.
//
// Nodes (liveserver processes):
//
//	N: REGISTER <host:port>
//	S: OK REGISTER
//	N: BEAT <active> <served>        (periodic, on the same connection)
//	S: OK                            (or "ERR unregistered" after expiry)
//
// Liveness is dual: the registration connection dropping deregisters
// the node immediately (a killed process fails over in milliseconds),
// and a heartbeat older than the TTL expires it even while the
// connection lingers (a wedged process fails over within one TTL). A
// node whose BEAT is answered with "ERR unregistered" re-REGISTERs on
// the same connection — the heartbeat-expiry re-registration path.
//
// Node choice is a pluggable Policy over (player, uri): "hash"
// (rendezvous hashing — deterministic for a fixed node set, the policy
// under which a fleet serve is byte-comparable to a single-node serve),
// "least-loaded" (minimum reported active transfers), and
// "round-robin".
package cluster

import (
	"errors"
)

// ErrCluster reports a fleet-protocol violation.
var ErrCluster = errors.New("cluster: protocol error")

// MaxLineBytes bounds one control line on the fleet port.
const MaxLineBytes = 512
