package cluster

import (
	"fmt"
	"hash/maphash"
	"sync/atomic"
)

// Policy picks a serving node for one (player, uri) route. Pick sees
// the alive node set in deterministic (address-sorted) order and
// returns ok=false when the set is empty.
type Policy interface {
	Name() string
	Pick(player, uri string, nodes []Node) (addr string, ok bool)
}

// NewPolicy resolves a policy by name: "hash", "least-loaded",
// "round-robin".
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "hash":
		return &hashPolicy{}, nil
	case "least-loaded":
		return &leastLoadedPolicy{}, nil
	case "round-robin":
		return &roundRobinPolicy{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q (want hash, least-loaded, round-robin)", name)
	}
}

// routeSeed is the shared maphash seed: fixed at process start so every
// Pick in one redirector scores identically, which is all rendezvous
// hashing needs (determinism across processes is not required — the
// contract is per-redirector route stability).
var routeSeed = maphash.MakeSeed()

// routeScore is the rendezvous (highest-random-weight) score of one
// (player, uri, node) triple.
func routeScore(player, uri, addr string) uint64 {
	var h maphash.Hash
	h.SetSeed(routeSeed)
	h.WriteString(player)
	h.WriteByte(0)
	h.WriteString(uri)
	h.WriteByte(0)
	h.WriteString(addr)
	return h.Sum64()
}

// hashPolicy is rendezvous hashing over (player, uri): each route
// sticks to one node for as long as that node lives, and removing a
// node moves only that node's routes — the consistent-hashing property
// that keeps failover churn minimal. For a fixed node set the
// assignment is a pure function of the route, so a whole replay is
// reproducible node-by-node within one redirector run.
type hashPolicy struct{}

func (*hashPolicy) Name() string { return "hash" }

func (*hashPolicy) Pick(player, uri string, nodes []Node) (string, bool) {
	if len(nodes) == 0 {
		return "", false
	}
	best := nodes[0].Addr
	bestScore := routeScore(player, uri, best)
	for _, n := range nodes[1:] {
		if s := routeScore(player, uri, n.Addr); s > bestScore {
			best, bestScore = n.Addr, s
		}
	}
	return best, true
}

// leastLoadedPolicy picks the node with the fewest reported active
// transfers, breaking ties by the rendezvous score so equally loaded
// nodes still spread deterministically per route.
type leastLoadedPolicy struct{}

func (*leastLoadedPolicy) Name() string { return "least-loaded" }

func (*leastLoadedPolicy) Pick(player, uri string, nodes []Node) (string, bool) {
	if len(nodes) == 0 {
		return "", false
	}
	best := nodes[0]
	bestScore := routeScore(player, uri, best.Addr)
	for _, n := range nodes[1:] {
		s := routeScore(player, uri, n.Addr)
		if n.Active < best.Active || (n.Active == best.Active && s > bestScore) {
			best, bestScore = n, s
		}
	}
	return best.Addr, true
}

// roundRobinPolicy cycles through the (sorted) alive set.
type roundRobinPolicy struct {
	next atomic.Uint64
}

func (*roundRobinPolicy) Name() string { return "round-robin" }

func (p *roundRobinPolicy) Pick(player, uri string, nodes []Node) (string, bool) {
	if len(nodes) == 0 {
		return "", false
	}
	i := p.next.Add(1) - 1
	return nodes[i%uint64(len(nodes))].Addr, true
}
