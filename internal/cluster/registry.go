package cluster

import (
	"sort"
	"sync"
	"time"
)

// Node is one registered liveserver as the redirector sees it.
type Node struct {
	Addr string
	// Active and Served are the node's last-reported load counters.
	Active int64
	Served int64
	// LastBeat is when the node last registered or heartbeat.
	LastBeat time.Time

	// gen identifies which registration owns this entry (see Register).
	gen int64
}

// Registry tracks the live node set under a heartbeat TTL. All methods
// are safe for concurrent use; expiry is evaluated lazily on read, so
// there is no background sweeper to leak.
type Registry struct {
	ttl time.Duration

	mu    sync.Mutex
	nodes map[string]*Node

	registered int64 // lifetime REGISTER count (re-registrations included)
	expired    int64 // nodes dropped by TTL expiry
}

// NewRegistry returns a registry expiring nodes whose last heartbeat is
// older than ttl.
func NewRegistry(ttl time.Duration) *Registry {
	return &Registry{ttl: ttl, nodes: make(map[string]*Node)}
}

// Register adds (or refreshes) a node and returns the registration's
// generation token. A later registration of the same address (a node
// that reconnected) gets a new generation; Deregister requires the
// token, so a stale connection's cleanup cannot wipe the fresh entry.
func (r *Registry) Register(addr string, now time.Time) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registered++
	r.nodes[addr] = &Node{Addr: addr, LastBeat: now, gen: r.registered}
	return r.registered
}

// Beat refreshes a node's liveness and load. It returns false when the
// node is not currently registered — either never was, or its TTL
// expired — in which case the caller must re-register.
func (r *Registry) Beat(addr string, active, served int64, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[addr]
	if !ok {
		return false
	}
	if now.Sub(n.LastBeat) > r.ttl {
		delete(r.nodes, addr)
		r.expired++
		return false
	}
	n.Active, n.Served, n.LastBeat = active, served, now
	return true
}

// Deregister removes a node (registration connection closed), but only
// while the entry still belongs to the given registration generation —
// if the node already re-registered over a new connection, the stale
// connection's cleanup must not remove it.
func (r *Registry) Deregister(addr string, gen int64) {
	r.mu.Lock()
	if n, ok := r.nodes[addr]; ok && n.gen == gen {
		delete(r.nodes, addr)
	}
	r.mu.Unlock()
}

// Alive returns the unexpired node set, sorted by address so every
// caller sees the same deterministic order. Expired nodes are pruned as
// a side effect.
func (r *Registry) Alive(now time.Time) []Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Node, 0, len(r.nodes))
	for addr, n := range r.nodes {
		if now.Sub(n.LastBeat) > r.ttl {
			delete(r.nodes, addr)
			r.expired++
			continue
		}
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Registered returns the lifetime REGISTER count; Expired the number of
// TTL expiries. Together they make re-registration observable.
func (r *Registry) Registered() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.registered
}

// Expired returns the number of nodes dropped by TTL expiry.
func (r *Registry) Expired() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.expired
}
