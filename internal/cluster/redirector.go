package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RedirectorConfig parameterizes the fleet front-end.
type RedirectorConfig struct {
	// Policy picks the serving node per (player, uri) route.
	Policy Policy
	// TTL expires a node whose heartbeats stop arriving. Node death is
	// usually detected faster — the registration connection dropping
	// deregisters immediately — so the TTL is the wedged-process bound.
	TTL time.Duration
	// IdleTimeout drops client connections silent between commands;
	// WriteTimeout bounds every reply write. Zero disables either.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
}

// DefaultRedirectorConfig expires silent nodes after 2 seconds.
func DefaultRedirectorConfig() RedirectorConfig {
	p, _ := NewPolicy("hash")
	return RedirectorConfig{
		Policy:       p,
		TTL:          2 * time.Second,
		IdleTimeout:  60 * time.Second,
		WriteTimeout: 5 * time.Second,
	}
}

// Redirector is the fleet front-end: one TCP listener serving both the
// client redirect protocol and the node registration protocol.
type Redirector struct {
	cfg RedirectorConfig
	reg *Registry
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	redirects atomic.Int64
	noNodes   atomic.Int64
}

// ServeRedirector starts a redirector on addr ("127.0.0.1:0" for an
// ephemeral port).
func ServeRedirector(addr string, cfg RedirectorConfig) (*Redirector, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrCluster)
	}
	if cfg.TTL <= 0 {
		return nil, fmt.Errorf("%w: TTL %v", ErrCluster, cfg.TTL)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	r := &Redirector{
		cfg:   cfg,
		reg:   NewRegistry(cfg.TTL),
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the listening address.
func (r *Redirector) Addr() string { return r.ln.Addr().String() }

// Registry exposes the node registry (status displays, tests).
func (r *Redirector) Registry() *Registry { return r.reg }

// Redirects returns the number of REDIRECT replies issued.
func (r *Redirector) Redirects() int64 { return r.redirects.Load() }

// NoNodeErrors returns the number of STARTs refused for lack of nodes.
func (r *Redirector) NoNodeErrors() int64 { return r.noNodes.Load() }

// OpenConns returns the number of currently open connections (client
// and node sessions alike), for the /metrics surface.
func (r *Redirector) OpenConns() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(len(r.conns))
}

// Close stops accepting, closes every connection, and drains handlers.
func (r *Redirector) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	err := r.ln.Close()
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	return err
}

func (r *Redirector) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		if !r.track(conn) {
			conn.Close()
			continue
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.untrack(conn)
			r.handle(conn)
		}()
	}
}

func (r *Redirector) track(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.conns[conn] = struct{}{}
	return true
}

func (r *Redirector) untrack(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
	conn.Close()
}

// reply writes one line under the write deadline.
func (r *Redirector) reply(conn net.Conn, w *bufio.Writer, line string) error {
	if r.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
	}
	if _, err := w.WriteString(line + "\n"); err != nil {
		return err
	}
	return w.Flush()
}

// readCommand reads one bounded line and splits it into verb + fields.
// The reader's buffer is sized to MaxLineBytes (see handle), so a peer
// streaming an endless newline-free line is rejected as soon as the
// buffer fills rather than accumulating without limit.
func readCommand(reader *bufio.Reader) (string, []string, error) {
	line, err := reader.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return "", nil, fmt.Errorf("%w: line exceeds %d bytes", ErrCluster, MaxLineBytes)
	}
	if err != nil {
		return "", nil, err
	}
	fields := strings.Fields(string(line))
	if len(fields) == 0 {
		return "", nil, fmt.Errorf("%w: empty command", ErrCluster)
	}
	return fields[0], fields[1:], nil
}

// handle dispatches one connection by its first verb: REGISTER starts a
// node session, HELLO a client session; anything else is an error.
func (r *Redirector) handle(conn net.Conn) {
	reader := bufio.NewReaderSize(conn, MaxLineBytes)
	writer := bufio.NewWriterSize(conn, 4096)
	if r.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(r.cfg.IdleTimeout))
	}
	verb, args, err := readCommand(reader)
	if err != nil {
		return
	}
	switch verb {
	case "REGISTER":
		r.nodeSession(conn, reader, writer, verb, args)
	case "HELLO":
		r.clientSession(conn, reader, writer, args)
	default:
		r.reply(conn, writer, "ERR unknown verb "+verb)
	}
}

// nodeSession serves one node's registration connection: REGISTER and
// BEAT lines until EOF, which deregisters the node immediately (dead
// process → fast failover). A BEAT after TTL expiry is answered with
// "ERR unregistered"; the node re-REGISTERs on the same connection.
func (r *Redirector) nodeSession(conn net.Conn, reader *bufio.Reader, writer *bufio.Writer, verb string, args []string) {
	registered := ""
	var gen int64
	defer func() {
		if registered != "" {
			r.reg.Deregister(registered, gen)
		}
	}()
	for {
		switch verb {
		case "REGISTER":
			if len(args) != 1 || args[0] == "" {
				r.reply(conn, writer, "ERR REGISTER wants <host:port>")
				return
			}
			if registered != "" && registered != args[0] {
				// One connection registers one node; a second address
				// would leave the first undead on EOF.
				r.reply(conn, writer, "ERR already registered as "+registered)
				return
			}
			registered = args[0]
			gen = r.reg.Register(registered, time.Now())
			if err := r.reply(conn, writer, "OK REGISTER"); err != nil {
				return
			}
		case "BEAT":
			if registered == "" {
				r.reply(conn, writer, "ERR BEAT before REGISTER")
				return
			}
			active, served, perr := parseBeat(args)
			if perr != nil {
				r.reply(conn, writer, "ERR "+perr.Error())
				return
			}
			msg := "OK"
			if !r.reg.Beat(registered, active, served, time.Now()) {
				msg = "ERR unregistered"
			}
			if err := r.reply(conn, writer, msg); err != nil {
				return
			}
		default:
			r.reply(conn, writer, "ERR unknown verb "+verb)
			return
		}
		if r.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(r.cfg.IdleTimeout))
		}
		var err error
		verb, args, err = readCommand(reader)
		if err != nil {
			return
		}
	}
}

func parseBeat(args []string) (active, served int64, err error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("BEAT wants <active> <served>")
	}
	active, err = strconv.ParseInt(args[0], 10, 64)
	if err != nil || active < 0 {
		return 0, 0, fmt.Errorf("bad BEAT active %q", args[0])
	}
	served, err = strconv.ParseInt(args[1], 10, 64)
	if err != nil || served < 0 {
		return 0, 0, fmt.Errorf("bad BEAT served %q", args[1])
	}
	return active, served, nil
}

// clientSession serves one client's route lookups: HELLO has been read;
// each START is answered with a REDIRECT to the picked node. The
// session/seq tag, if present, is accepted and ignored — routing is by
// (player, uri) only, so a route's node does not depend on which
// transfer of a session asks.
func (r *Redirector) clientSession(conn net.Conn, reader *bufio.Reader, writer *bufio.Writer, args []string) {
	if len(args) != 1 || args[0] == "" {
		r.reply(conn, writer, "ERR HELLO wants <player-id>")
		return
	}
	player := args[0]
	if err := r.reply(conn, writer, "OK HELLO"); err != nil {
		return
	}
	for {
		if r.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(r.cfg.IdleTimeout))
		}
		verb, args, err := readCommand(reader)
		if err != nil {
			return
		}
		switch verb {
		case "START":
			if len(args) != 1 && len(args) != 3 {
				r.reply(conn, writer, "ERR START wants <uri> [<session> <seq>]")
				return
			}
			uri := args[0]
			addr, ok := r.cfg.Policy.Pick(player, uri, r.reg.Alive(time.Now()))
			if !ok {
				r.noNodes.Add(1)
				if err := r.reply(conn, writer, "ERR no nodes"); err != nil {
					return
				}
				continue
			}
			r.redirects.Add(1)
			if err := r.reply(conn, writer, "REDIRECT "+addr); err != nil {
				return
			}
		case "QUIT":
			r.reply(conn, writer, "OK BYE")
			return
		default:
			r.reply(conn, writer, "ERR unknown verb "+verb)
			return
		}
	}
}
