package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Agent is the node-side half of the fleet protocol: it registers a
// liveserver with the redirector and heartbeats its load until closed,
// reconnecting with backoff when the front-end drops, and
// re-registering in place when a beat is answered with
// "ERR unregistered" (heartbeat-expiry recovery).
type Agent struct {
	frontend  string
	advertise string
	interval  time.Duration
	load      func() (active, served int64)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu         sync.Mutex
	registers  int64
	beatErrors int64
}

// StartAgent registers advertise with the redirector at frontend and
// heartbeats every interval. load supplies the node's current
// (active, served) counters.
func StartAgent(frontend, advertise string, interval time.Duration, load func() (int64, int64)) (*Agent, error) {
	if frontend == "" || advertise == "" {
		return nil, fmt.Errorf("%w: empty frontend or advertise address", ErrCluster)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("%w: beat interval %v", ErrCluster, interval)
	}
	if load == nil {
		load = func() (int64, int64) { return 0, 0 }
	}
	a := &Agent{
		frontend:  frontend,
		advertise: advertise,
		interval:  interval,
		load:      load,
		stop:      make(chan struct{}),
	}
	a.wg.Add(1)
	go a.run()
	return a, nil
}

// Registers returns how many REGISTER lines the agent has sent —
// greater than one means the agent recovered from an expiry or a
// dropped front-end connection.
func (a *Agent) Registers() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.registers
}

// BeatErrors returns how many heartbeats the front-end refused (each
// one triggers an in-place re-registration).
func (a *Agent) BeatErrors() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.beatErrors
}

// Close stops the heartbeat loop and its connection. Idempotent.
func (a *Agent) Close() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}

func (a *Agent) run() {
	defer a.wg.Done()
	backoff := a.interval
	for {
		select {
		case <-a.stop:
			return
		default:
		}
		if a.session() {
			backoff = a.interval // clean loss: retry promptly
		} else if backoff < 2*time.Second {
			backoff *= 2
		}
		select {
		case <-a.stop:
			return
		case <-time.After(backoff):
		}
	}
}

// session runs one registration connection to completion. It returns
// true when the connection was established (so the reconnect backoff
// resets), false on dial failure.
func (a *Agent) session() bool {
	conn, err := net.DialTimeout("tcp", a.frontend, 2*time.Second)
	if err != nil {
		return false
	}
	defer conn.Close()
	reader := bufio.NewReaderSize(conn, 1024)

	send := func(line string) error {
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_, err := conn.Write([]byte(line + "\n"))
		return err
	}
	recv := func() (string, error) {
		conn.SetReadDeadline(time.Now().Add(2*time.Second + a.interval))
		line, err := reader.ReadString('\n')
		return strings.TrimSpace(line), err
	}
	register := func() bool {
		if send("REGISTER "+a.advertise) != nil {
			return false
		}
		line, err := recv()
		if err != nil || line != "OK REGISTER" {
			return false
		}
		a.mu.Lock()
		a.registers++
		a.mu.Unlock()
		return true
	}

	if !register() {
		return true
	}
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return true
		case <-ticker.C:
		}
		active, served := a.load()
		if send("BEAT "+strconv.FormatInt(active, 10)+" "+strconv.FormatInt(served, 10)) != nil {
			return true
		}
		line, err := recv()
		if err != nil {
			return true
		}
		if line != "OK" {
			a.mu.Lock()
			a.beatErrors++
			a.mu.Unlock()
			// Expired (or otherwise refused): re-register in place.
			if !register() {
				return true
			}
		}
	}
}

// Lookup asks the redirector at frontend where (player, uri) is served:
// one HELLO/START/QUIT exchange, returning the redirected node address.
// It is the client-side resolve primitive the load generator's
// redirect-following cache is built on.
func Lookup(frontend, player, uri string, timeout time.Duration) (string, error) {
	conn, err := net.DialTimeout("tcp", frontend, timeout)
	if err != nil {
		return "", fmt.Errorf("cluster: lookup dial: %w", err)
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	conn.SetDeadline(deadline)
	reader := bufio.NewReaderSize(conn, 1024)

	exchange := func(sendLine string) (string, error) {
		if _, err := conn.Write([]byte(sendLine + "\n")); err != nil {
			return "", err
		}
		line, err := reader.ReadString('\n')
		if err != nil {
			return "", err
		}
		return strings.TrimSpace(line), nil
	}
	line, err := exchange("HELLO " + player)
	if err != nil {
		return "", fmt.Errorf("cluster: lookup: %w", err)
	}
	if line != "OK HELLO" {
		return "", fmt.Errorf("%w: lookup HELLO answered %q", ErrCluster, line)
	}
	line, err = exchange("START " + uri)
	if err != nil {
		return "", fmt.Errorf("cluster: lookup: %w", err)
	}
	addr, ok := strings.CutPrefix(line, "REDIRECT ")
	if !ok || addr == "" {
		return "", fmt.Errorf("%w: lookup answered %q", ErrCluster, line)
	}
	// Best-effort goodbye; the address is already in hand.
	conn.Write([]byte("QUIT\n"))
	return addr, nil
}
