package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

func TestRegistryExpiry(t *testing.T) {
	r := NewRegistry(time.Second)
	t0 := time.Unix(1000, 0)
	r.Register("a:1", t0)
	r.Register("b:2", t0)

	alive := r.Alive(t0.Add(500 * time.Millisecond))
	if len(alive) != 2 || alive[0].Addr != "a:1" || alive[1].Addr != "b:2" {
		t.Fatalf("alive = %+v", alive)
	}
	if !r.Beat("a:1", 3, 10, t0.Add(900*time.Millisecond)) {
		t.Fatal("in-TTL beat refused")
	}
	// b has not beaten; at t0+1.5s it is expired, a is not.
	alive = r.Alive(t0.Add(1500 * time.Millisecond))
	if len(alive) != 1 || alive[0].Addr != "a:1" {
		t.Fatalf("post-expiry alive = %+v", alive)
	}
	if alive[0].Active != 3 || alive[0].Served != 10 {
		t.Fatalf("load not recorded: %+v", alive[0])
	}
	if r.Expired() != 1 {
		t.Fatalf("expired = %d", r.Expired())
	}
	// A beat from the expired node must be refused, forcing re-register.
	if r.Beat("b:2", 0, 0, t0.Add(2*time.Second)) {
		t.Fatal("beat from expired node accepted")
	}
	if !r.Beat("a:1", 3, 11, t0.Add(1600*time.Millisecond)) {
		t.Fatal("a's in-TTL beat refused")
	}
	r.Register("b:2", t0.Add(2*time.Second))
	if len(r.Alive(t0.Add(2*time.Second))) != 2 {
		t.Fatal("re-registration did not revive the node")
	}
	if r.Registered() != 3 {
		t.Fatalf("registered = %d", r.Registered())
	}
}

// TestRegistryStaleDeregisterIgnored: a deregister from a superseded
// registration (an old connection's cleanup racing a node's reconnect)
// must not remove the fresh entry.
func TestRegistryStaleDeregisterIgnored(t *testing.T) {
	r := NewRegistry(time.Minute)
	t0 := time.Unix(1000, 0)
	gen1 := r.Register("a:1", t0)
	gen2 := r.Register("a:1", t0.Add(time.Second)) // reconnect
	if gen1 == gen2 {
		t.Fatal("re-registration reused the generation token")
	}
	r.Deregister("a:1", gen1) // stale cleanup
	if len(r.Alive(t0.Add(time.Second))) != 1 {
		t.Fatal("stale deregister removed the fresh registration")
	}
	r.Deregister("a:1", gen2)
	if len(r.Alive(t0.Add(time.Second))) != 0 {
		t.Fatal("owned deregister did not remove the node")
	}
}

func TestHashPolicyStickyAndMinimalChurn(t *testing.T) {
	p, err := NewPolicy("hash")
	if err != nil {
		t.Fatal(err)
	}
	nodes := []Node{{Addr: "n1:1"}, {Addr: "n2:2"}, {Addr: "n3:3"}}
	routes := make(map[string]string)
	for c := 0; c < 200; c++ {
		for _, uri := range []string{"/live/feed1", "/live/feed2"} {
			player := fmt.Sprintf("player-%03d", c)
			addr, ok := p.Pick(player, uri, nodes)
			if !ok {
				t.Fatal("pick failed with nodes present")
			}
			routes[player+" "+uri] = addr
			// Sticky: repeated picks agree.
			again, _ := p.Pick(player, uri, nodes)
			if again != addr {
				t.Fatalf("route %s %s flapped %s -> %s", player, uri, addr, again)
			}
		}
	}
	used := make(map[string]int)
	for _, a := range routes {
		used[a]++
	}
	if len(used) != 3 {
		t.Fatalf("hash policy used %d of 3 nodes: %v", len(used), used)
	}

	// Remove one node: only its routes may move.
	survivors := []Node{{Addr: "n1:1"}, {Addr: "n3:3"}}
	for key, before := range routes {
		player, uri, _ := strings.Cut(key, " ")
		after, _ := p.Pick(player, uri, survivors)
		if before != "n2:2" && after != before {
			t.Fatalf("route %s moved %s -> %s though its node survived", key, before, after)
		}
		if before == "n2:2" && after == "n2:2" {
			t.Fatalf("route %s still on removed node", key)
		}
	}

	if _, ok := p.Pick("p", "/u", nil); ok {
		t.Fatal("pick succeeded on empty node set")
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	p, err := NewPolicy("least-loaded")
	if err != nil {
		t.Fatal(err)
	}
	nodes := []Node{{Addr: "n1:1", Active: 5}, {Addr: "n2:2", Active: 1}, {Addr: "n3:3", Active: 9}}
	for c := 0; c < 20; c++ {
		addr, ok := p.Pick(fmt.Sprintf("p%d", c), "/u", nodes)
		if !ok || addr != "n2:2" {
			t.Fatalf("least-loaded picked %s", addr)
		}
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	p, err := NewPolicy("round-robin")
	if err != nil {
		t.Fatal(err)
	}
	nodes := []Node{{Addr: "a:1"}, {Addr: "b:2"}}
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		addr, _ := p.Pick("p", "/u", nodes)
		seen[addr]++
	}
	if seen["a:1"] != 5 || seen["b:2"] != 5 {
		t.Fatalf("round robin skewed: %v", seen)
	}
	if _, err := NewPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// rawNode registers addr over a raw connection and returns it (the test
// controls beats explicitly).
func rawNode(t *testing.T, frontend, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", frontend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	r := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("REGISTER " + addr + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "OK REGISTER" {
		t.Fatalf("REGISTER answered %q err %v", strings.TrimSpace(line), err)
	}
	return conn, r
}

func testRedirector(t *testing.T, ttl time.Duration, policy string) *Redirector {
	t.Helper()
	cfg := DefaultRedirectorConfig()
	cfg.TTL = ttl
	p, err := NewPolicy(policy)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = p
	rd, err := ServeRedirector("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	return rd
}

// TestRedirectorRoutesAndFastDeregister: lookups route across the
// registered set; dropping a node's registration connection moves its
// routes immediately (no TTL wait).
func TestRedirectorRoutesAndFastDeregister(t *testing.T) {
	rd := testRedirector(t, 5*time.Second, "hash")
	connA, _ := rawNode(t, rd.Addr(), "10.0.0.1:9001")
	rawNode(t, rd.Addr(), "10.0.0.2:9002")

	routes := make(map[string]string)
	for c := 0; c < 40; c++ {
		player := fmt.Sprintf("player-%02d", c)
		addr, err := Lookup(rd.Addr(), player, "/live/feed1", time.Second)
		if err != nil {
			t.Fatal(err)
		}
		routes[player] = addr
	}
	used := map[string]bool{}
	for _, a := range routes {
		used[a] = true
	}
	if len(used) != 2 {
		t.Fatalf("routes used %d nodes: %v", len(used), used)
	}

	connA.Close() // node process dies: conn EOF deregisters immediately
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(rd.Registry().Alive(time.Now())) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead node still registered after conn close")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for player := range routes {
		addr, err := Lookup(rd.Addr(), player, "/live/feed1", time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if addr != "10.0.0.2:9002" {
			t.Fatalf("route %s still points at dead node %s", player, addr)
		}
	}
	if rd.Redirects() == 0 {
		t.Fatal("redirect counter never moved")
	}
}

// TestRedirectorNoNodes: a fleet with no registered nodes refuses
// visibly.
func TestRedirectorNoNodes(t *testing.T) {
	rd := testRedirector(t, time.Second, "hash")
	_, err := Lookup(rd.Addr(), "p", "/live/feed1", time.Second)
	if err == nil || !strings.Contains(err.Error(), "no nodes") {
		t.Fatalf("lookup with no nodes: %v", err)
	}
	if rd.NoNodeErrors() != 1 {
		t.Fatalf("no-node counter = %d", rd.NoNodeErrors())
	}
}

// TestAgentHeartbeatExpiryReRegistration: an agent whose beat interval
// exceeds the redirector TTL gets "ERR unregistered" answers and must
// recover by re-registering on the same connection — the node stays
// routable without ever reconnecting.
func TestAgentHeartbeatExpiryReRegistration(t *testing.T) {
	rd := testRedirector(t, 60*time.Millisecond, "hash")
	agent, err := StartAgent(rd.Addr(), "10.0.0.9:9009", 150*time.Millisecond, func() (int64, int64) { return 1, 2 })
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	deadline := time.Now().Add(3 * time.Second)
	for {
		if agent.Registers() >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent re-registered only %d times under TTL expiry", agent.Registers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Despite constant expiry, the node is routable right after each
	// re-registration.
	if reg := rd.Registry().Registered(); reg < 3 {
		t.Fatalf("registry saw %d registrations", reg)
	}
	if agent.BeatErrors() == 0 {
		t.Fatal("re-registrations happened without refused beats")
	}
}

// TestAgentReconnects: the agent survives a redirector restart at the
// same address.
func TestAgentReconnects(t *testing.T) {
	cfg := DefaultRedirectorConfig()
	cfg.TTL = 5 * time.Second
	rd, err := ServeRedirector("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := rd.Addr()

	agent, err := StartAgent(addr, "10.0.0.5:9005", 30*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	waitFor(t, time.Second, func() bool { return len(rd.Registry().Alive(time.Now())) == 1 })

	rd.Close()
	rd2, err := ServeRedirector(addr, cfg)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer rd2.Close()
	waitFor(t, 3*time.Second, func() bool { return len(rd2.Registry().Alive(time.Now())) == 1 })
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
