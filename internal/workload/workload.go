// Package workload defines the pull-based, time-ordered event-stream
// interface the generate → serve → measure pipeline runs on.
//
// The pipeline used to materialize every request as an in-memory slice
// before serving it; at the paper's full scale (691,889 clients, ~5.5M
// transfers over 28 days) that caps throughput on memory. A Stream
// instead yields one Event at a time in a deterministic total order, so
// the simulator and the online estimators hold only O(active sessions)
// of state while the generator shards the work across CPUs
// (internal/gismo's sharded generator is the canonical producer).
package workload

// Event is one scheduled transfer request flowing through the pipeline.
// Session and Seq identify the event's provenance: Session is the
// global session index in arrival order, Seq the transfer's position
// within its session. Together with Start they define the stream's
// total order, which is what makes sharded generation reproducible: any
// partitioning of sessions across shards merges back into the same
// sequence.
type Event struct {
	Session  int   // global session index (unique, arrival order)
	Seq      int   // transfer index within the session
	Client   int   // dense client ID
	Object   int   // live object index
	Start    int64 // seconds since trace start
	Duration int64 // seconds
}

// End returns Start + Duration.
func (e Event) End() int64 { return e.Start + e.Duration }

// Less reports whether e precedes f in the stream's total order:
// (Start, Session, Seq) lexicographically. Within a session, Seq
// increases with time, so this order is consistent with time order.
func (e Event) Less(f Event) bool {
	if e.Start != f.Start {
		return e.Start < f.Start
	}
	if e.Session != f.Session {
		return e.Session < f.Session
	}
	return e.Seq < f.Seq
}

// Stream is a pull-based, time-ordered event source. Next returns the
// next event in (Start, Session, Seq) order, or false when the stream
// is exhausted. Streams are single-consumer: Next must not be called
// concurrently.
type Stream interface {
	Next() (Event, bool)
}

// Closer is the optional teardown half of a Stream: producers backed by
// goroutines (the sharded generator) implement it so an abandoned
// stream does not leak. Close is idempotent; a fully drained stream
// does not need it.
type Closer interface {
	Close()
}

// CloseStream closes s if it implements Closer.
func CloseStream(s Stream) {
	if c, ok := s.(Closer); ok {
		c.Close()
	}
}

// ShardedStream is the batch form of a sharded Stream: the producer
// emits K independent, internally ordered per-shard slabs, and a
// consumer that understands the shard structure (the fused serve
// dispatcher) pulls whole slabs per shard and runs the K-way merge
// itself — skipping the event-at-a-time Next interface hop and the
// intermediate copy a generic merge stage would cost.
//
// The contract mirrors the sharded generator's: the concatenation of
// each shard's slabs is in (Start, Session, Seq) stream order, shards
// never repeat a (Session, Seq) pair, and merging the K shard
// sequences by Event.Less reproduces exactly the sequence Next yields.
// A returned slab is valid until the matching RecycleSlab; recycling
// hands the backing array to the producing shard for reuse, so a
// consumer that recycles promptly keeps the seam allocation-free.
//
// A stream must be consumed through exactly one of the two APIs —
// Next, or the NextSlab/RecycleSlab pair; mixing them would split the
// merge state and corrupt the order.
type ShardedStream interface {
	Stream
	Closer
	// Shards returns the shard count K. Shard indices are 0..K-1.
	Shards() int
	// NextSlab returns the shard's next ordered slab of events,
	// blocking until one is ready, or false when the shard is
	// exhausted (or the stream was closed).
	NextSlab(shard int) ([]Event, bool)
	// RecycleSlab returns a fully consumed slab to its producing
	// shard. The slab must not be touched afterwards.
	RecycleSlab(shard int, slab []Event)
}

// SliceStream replays a materialized event slice. The slice must
// already be in stream order.
type SliceStream struct {
	events []Event
	pos    int
}

// NewSliceStream wraps events, which must be in (Start, Session, Seq)
// order.
func NewSliceStream(events []Event) *SliceStream {
	return &SliceStream{events: events}
}

// Next implements Stream.
func (s *SliceStream) Next() (Event, bool) {
	if s.pos >= len(s.events) {
		return Event{}, false
	}
	e := s.events[s.pos]
	s.pos++
	return e, true
}

// Drain pulls the stream to exhaustion and returns all events. sizeHint
// (may be 0) pre-allocates the result.
func Drain(s Stream, sizeHint int) []Event {
	out := make([]Event, 0, sizeHint)
	for {
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}
