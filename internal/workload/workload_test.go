package workload

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventLessTotalOrder(t *testing.T) {
	a := Event{Start: 1, Session: 0, Seq: 0}
	b := Event{Start: 1, Session: 0, Seq: 1}
	c := Event{Start: 1, Session: 2, Seq: 0}
	d := Event{Start: 2, Session: 0, Seq: 0}
	for _, tc := range []struct {
		lo, hi Event
	}{{a, b}, {a, c}, {b, c}, {c, d}, {a, d}} {
		if !tc.lo.Less(tc.hi) {
			t.Errorf("want %+v < %+v", tc.lo, tc.hi)
		}
		if tc.hi.Less(tc.lo) {
			t.Errorf("want !(%+v < %+v)", tc.hi, tc.lo)
		}
	}
	if a.Less(a) {
		t.Error("irreflexivity violated")
	}
}

func TestSliceStreamDrain(t *testing.T) {
	events := []Event{
		{Start: 0, Session: 0},
		{Start: 3, Session: 1},
		{Start: 3, Session: 1, Seq: 1},
	}
	got := Drain(NewSliceStream(events), 0)
	if len(got) != len(events) {
		t.Fatalf("drained %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
	s := NewSliceStream(nil)
	if _, ok := s.Next(); ok {
		t.Error("empty stream yielded an event")
	}
}

func TestMergeRestoresTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Build a ground-truth ordered sequence, then deal sessions across K
	// "shards" and verify the merge reproduces the sequence exactly.
	var all []Event
	for sess := 0; sess < 500; sess++ {
		start := int64(rng.Intn(10_000))
		n := 1 + rng.Intn(5)
		t0 := start
		for k := 0; k < n; k++ {
			all = append(all, Event{
				Session: sess, Seq: k, Client: sess % 37,
				Start: t0, Duration: 1 + int64(rng.Intn(30)),
			})
			t0 += int64(rng.Intn(40)) // zero gaps allowed: ties within a session
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })

	for _, k := range []int{1, 2, 3, 8} {
		parts := make([][]Event, k)
		for _, e := range all {
			parts[e.Session%k] = append(parts[e.Session%k], e)
		}
		streams := make([]Stream, k)
		for i := range parts {
			streams[i] = NewSliceStream(parts[i])
		}
		got := Drain(Merge(streams...), len(all))
		if len(got) != len(all) {
			t.Fatalf("k=%d: merged %d events, want %d", k, len(got), len(all))
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("k=%d: event %d: %+v != %+v", k, i, got[i], all[i])
			}
		}
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	if _, ok := Merge().Next(); ok {
		t.Error("merge of nothing yielded an event")
	}
	m := Merge(NewSliceStream(nil), NewSliceStream([]Event{{Start: 1}}), NewSliceStream(nil))
	got := Drain(m, 0)
	if len(got) != 1 || got[0].Start != 1 {
		t.Fatalf("got %+v", got)
	}
}

type closeSpy struct {
	SliceStream
	closed bool
}

func (c *closeSpy) Close() { c.closed = true }

func TestCloseStreamPropagates(t *testing.T) {
	spy := &closeSpy{}
	CloseStream(spy)
	if !spy.closed {
		t.Error("Closer not invoked")
	}
	// Merge.Close must close remaining inputs.
	spy2 := &closeSpy{SliceStream: *NewSliceStream([]Event{{Start: 1}, {Start: 2}})}
	m := Merge(spy2, NewSliceStream([]Event{{Start: 3}}))
	if _, ok := m.Next(); !ok {
		t.Fatal("merge empty")
	}
	CloseStream(m)
	if !spy2.closed {
		t.Error("merge close did not propagate")
	}
}
