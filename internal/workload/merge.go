package workload

// Merge combines already-ordered streams into one ordered stream. The
// result follows the (Start, Session, Seq) total order, so merging is
// deterministic regardless of how events were partitioned across the
// inputs — the property the sharded generator's reproducibility rests
// on. Inputs must each be in stream order; events must not repeat a
// (Session, Seq) pair across inputs.
func Merge(streams ...Stream) Stream {
	switch len(streams) {
	case 0:
		return NewSliceStream(nil)
	case 1:
		return streams[0]
	}
	m := &mergeStream{inputs: make([]mergeHead, 0, len(streams))}
	for _, s := range streams {
		if e, ok := s.Next(); ok {
			m.inputs = append(m.inputs, mergeHead{src: s, head: e})
		}
	}
	return m
}

type mergeHead struct {
	src  Stream
	head Event
}

// mergeStream is a loop-min K-way merge. K is the shard count (small),
// so a linear scan beats heap bookkeeping and stays allocation-free.
type mergeStream struct {
	inputs []mergeHead
}

// Next implements Stream.
func (m *mergeStream) Next() (Event, bool) {
	if len(m.inputs) == 0 {
		return Event{}, false
	}
	best := 0
	for i := 1; i < len(m.inputs); i++ {
		if m.inputs[i].head.Less(m.inputs[best].head) {
			best = i
		}
	}
	e := m.inputs[best].head
	if next, ok := m.inputs[best].src.Next(); ok {
		m.inputs[best].head = next
	} else {
		last := len(m.inputs) - 1
		m.inputs[best] = m.inputs[last]
		m.inputs = m.inputs[:last]
	}
	return e, true
}

// Close implements Closer, closing any input that needs it.
func (m *mergeStream) Close() {
	for _, in := range m.inputs {
		CloseStream(in.src)
	}
	m.inputs = nil
}
