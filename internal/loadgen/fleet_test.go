package loadgen

import (
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/analyze"
	"repro/internal/cluster"
	"repro/internal/liveserver"
	"repro/internal/trace"
	"repro/internal/wmslog"
	"repro/internal/workload"
)

// fleetNode is one in-process liveserver with its heartbeat agent and
// collected log entries.
type fleetNode struct {
	srv   *liveserver.Server
	agent *cluster.Agent

	mu      sync.Mutex
	entries []*wmslog.Entry
}

func (n *fleetNode) logged() []*wmslog.Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*wmslog.Entry(nil), n.entries...)
}

// kill simulates a node process dying: server and heartbeat connection
// drop together, as they do when the process is killed.
func (n *fleetNode) kill() {
	n.agent.Close()
	n.srv.Close()
}

// startFleet brings up a redirector and nodes, waiting until every node
// is registered and routable.
func startFleet(t *testing.T, nodes int, policy string) (*cluster.Redirector, []*fleetNode) {
	t.Helper()
	rcfg := cluster.DefaultRedirectorConfig()
	p, err := cluster.NewPolicy(policy)
	if err != nil {
		t.Fatal(err)
	}
	rcfg.Policy = p
	rcfg.TTL = 2 * time.Second
	rd, err := cluster.ServeRedirector("127.0.0.1:0", rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })

	out := make([]*fleetNode, nodes)
	for i := range out {
		n := &fleetNode{}
		cfg := liveserver.DefaultServerConfig()
		cfg.FrameBytes = 256
		cfg.FrameInterval = 5 * time.Millisecond
		cfg.MaxConns = 256
		cfg.Sink = func(r liveserver.TransferRecord) {
			e := liveserver.RecordEntry(r)
			n.mu.Lock()
			n.entries = append(n.entries, e)
			n.mu.Unlock()
		}
		srv, err := liveserver.Serve("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.srv = srv
		agent, err := cluster.StartAgent(rd.Addr(), srv.Addr(), 100*time.Millisecond,
			func() (int64, int64) { return srv.ActiveTransfers(), srv.ServedTransfers() })
		if err != nil {
			t.Fatal(err)
		}
		n.agent = agent
		t.Cleanup(func() { agent.Close(); srv.Close() })
		out[i] = n
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(rd.Registry().Alive(time.Now())) != nodes {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d nodes registered", len(rd.Registry().Alive(time.Now())), nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return rd, out
}

// singleSessionEvents builds one well-separated session per client:
// robust to failover-induced start shifts because no intra-session gap
// comes near the timeout. Client starts stagger across spread and
// transfers are gap trace-seconds apart, so with gap large relative to
// spread/clients the sessions overlap — every instant of the replay has
// many clients mid-session.
func singleSessionEvents(clients, transfers int, spread, gap int64) []workload.Event {
	var events []workload.Event
	for c := 0; c < clients; c++ {
		start := int64(c) * spread / int64(clients)
		for k := 0; k < transfers; k++ {
			events = append(events, workload.Event{
				Session:  c,
				Seq:      k,
				Client:   c,
				Object:   (c + k) % 2,
				Start:    start + int64(k)*gap,
				Duration: 100,
			})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Less(events[j]) })
	return events
}

// compareFiltered compares offered-minus-failed against the merged
// served entries.
func compareFiltered(t *testing.T, events []workload.Event, failed []workload.Event, merged []*wmslog.Entry, res *Result, horizon, timeout int64) *analyze.MatchReport {
	t.Helper()
	lost := make(map[[2]int]bool, len(failed))
	for _, ev := range failed {
		lost[[2]int{ev.Session, ev.Seq}] = true
	}
	kept := events[:0:0]
	for _, ev := range events {
		if !lost[[2]int{ev.Session, ev.Seq}] {
			kept = append(kept, ev)
		}
	}
	offered, err := OfferedTrace(kept, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Reconcile the end-of-transfer race around a node kill: an entry a
	// node committed for an event the client recorded lost, or a
	// double-serve from a successful retry.
	merged, droppedLost, droppedDup := ReconcileServed(merged, failed)
	if droppedLost > 0 || droppedDup > 0 {
		t.Logf("reconciled served log: %d recorded-lost entries, %d duplicate serves", droppedLost, droppedDup)
	}
	decompressed, err := DecompressEntries(merged, res.Begin, res.Origin, res.Compression, wmslog.TraceEpoch)
	if err != nil {
		t.Fatal(err)
	}
	served, err := trace.FromEntries(decompressed, wmslog.TraceEpoch, horizon)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyze.CompareTraces(offered, served, timeout)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestFleetClosedLoopMatchesSingleNode is the acceptance loop in
// process: a 3-node fleet behind the hash redirector serves a replayed
// workload with zero losses, the merged per-node logs MATCH the offered
// workload, and the fleet's realization digest equals a single-node
// serve of the same workload.
func TestFleetClosedLoopMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("socket e2e in -short mode")
	}
	events := singleSessionEvents(30, 3, 20000, 500)
	const horizon, timeout, compression = 40000, 10000, 20000

	rd, nodes := startFleet(t, 3, "hash")
	cfg := fastReplayConfig()
	cfg.Compression = compression
	cfg.MaxConns = 128
	cfg.Frontend = true
	res, err := Replay(rd.Addr(), workload.NewSliceStream(events), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != len(events) {
		t.Fatalf("fleet replay lost transfers: %s", res)
	}
	if res.Redirects == 0 || res.RedirectCacheHits == 0 {
		t.Fatalf("redirect rail silent: %d lookups, %d hits", res.Redirects, res.RedirectCacheHits)
	}

	perNode := make([][]*wmslog.Entry, len(nodes))
	servingNodes := 0
	for i, n := range nodes {
		perNode[i] = n.logged()
		if len(perNode[i]) > 0 {
			servingNodes++
		}
	}
	if servingNodes < 2 {
		t.Fatalf("hash policy routed everything to %d node(s)", servingNodes)
	}
	merged := wmslog.MergeEntries(perNode)
	if len(merged) != len(events) {
		t.Fatalf("merged %d entries for %d events", len(merged), len(events))
	}
	report := compareFiltered(t, events, nil, merged, res, horizon, timeout)
	if !report.Match() {
		t.Fatalf("merged fleet log does not match offered workload:\n%s", report)
	}

	// Single-node serve of the same workload: same realization digest.
	var mu sync.Mutex
	var single []*wmslog.Entry
	srv := testServer(t, 256, func(r liveserver.TransferRecord) {
		e := liveserver.RecordEntry(r)
		mu.Lock()
		single = append(single, e)
		mu.Unlock()
	})
	scfg := fastReplayConfig()
	scfg.Compression = compression
	scfg.MaxConns = 128
	sres, err := Replay(srv.Addr(), workload.NewSliceStream(events), scfg)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Failed != 0 {
		t.Fatalf("single-node replay lost transfers: %s", sres)
	}
	mu.Lock()
	singleMerged := wmslog.MergeEntries([][]*wmslog.Entry{single})
	mu.Unlock()
	if got, want := wmslog.RealizationDigest(merged), wmslog.RealizationDigest(singleMerged); got != want {
		t.Fatalf("fleet realization %s != single-node realization %s", got, want)
	}
	t.Logf("fleet closed loop:\n%s\n%s", report, res)
}

// TestFleetFailoverReroutesMidRun kills one of three nodes mid-replay:
// transfers re-route through the front-end, the recovery shows up in
// the metrics, and the merged logs still MATCH the offered workload
// minus exactly the recorded lost events.
func TestFleetFailoverReroutesMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("socket e2e in -short mode")
	}
	// Sessions overlap: 40 clients stagger starts over 3 wall seconds
	// while each session runs ~1.8 wall seconds, so the kill at 1.5 s
	// lands with many clients mid-session — cached routes to the dead
	// node must fail over on their next transfer.
	events := singleSessionEvents(40, 4, 30000, 6000)
	const horizon, timeout, compression = 50000, 14000, 10000

	rd, nodes := startFleet(t, 3, "hash")
	cfg := fastReplayConfig()
	cfg.Compression = compression
	cfg.MaxConns = 128
	cfg.Frontend = true

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(1500 * time.Millisecond)
		nodes[1].kill()
	}()
	res, err := Replay(rd.Addr(), workload.NewSliceStream(events), cfg)
	if err != nil {
		t.Fatal(err)
	}
	<-killed

	if res.Completed+len(res.FailedEvents) != len(events) {
		t.Fatalf("events unaccounted for: %d completed + %d failed != %d", res.Completed, len(res.FailedEvents), len(events))
	}
	if nodes[1].srv.ServedTransfers() == 0 {
		t.Skip("killed node never served; kill landed before its first route")
	}
	if res.Failovers == 0 && res.Failed == 0 {
		t.Fatal("node died mid-run but neither a failover nor a failure was recorded")
	}

	perNode := make([][]*wmslog.Entry, len(nodes))
	for i, n := range nodes {
		perNode[i] = n.logged()
	}
	merged := wmslog.MergeEntries(perNode)
	report := compareFiltered(t, events, res.FailedEvents, merged, res, horizon, timeout)
	if !report.Match() {
		t.Fatalf("post-failover merged log does not match offered-minus-lost:\n%s\n%s", report, res)
	}
	t.Logf("failover loop: %d failovers, %d lost\n%s", res.Failovers, res.Failed, res)
}

// TestReconcileServed pins the two end-of-transfer races: a
// recorded-lost event whose entry a node had already committed, and a
// duplicate serve from a successful retry. Untagged entries pass
// through untouched.
func TestReconcileServed(t *testing.T) {
	entry := func(session int64, seq int) *wmslog.Entry {
		return &wmslog.Entry{PlayerID: "p", URIStem: "/u", Referer: wmslog.SessionRef(session, seq)}
	}
	untagged := &wmslog.Entry{PlayerID: "p", URIStem: "/u"}
	entries := []*wmslog.Entry{
		entry(1, 0), entry(2, 0), entry(2, 0), // duplicate serve of 2.0
		entry(3, 0), // committed but recorded lost
		untagged,
	}
	failed := []workload.Event{{Session: 3, Seq: 0}}
	kept, droppedLost, droppedDup := ReconcileServed(entries, failed)
	if droppedLost != 1 || droppedDup != 1 {
		t.Fatalf("dropped lost=%d dup=%d", droppedLost, droppedDup)
	}
	if len(kept) != 3 {
		t.Fatalf("kept %d entries", len(kept))
	}
	if kept[2] != untagged {
		t.Fatal("untagged entry did not pass through")
	}
}

// TestFleetNodeDiesBetweenRedirectAndConnect covers the cached-route
// race: the front-end redirected a route to a node that dies before the
// client connects. The client must retry through the front-end and land
// on a surviving node.
func TestFleetNodeDiesBetweenRedirectAndConnect(t *testing.T) {
	rd, _ := startFleet(t, 1, "hash")

	// A route cached to an address nobody listens on anymore.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	cfg := fastReplayConfig()
	cfg.Frontend = true
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m := newMetrics()
	r := &runner{
		addr:     rd.Addr(),
		cfg:      cfg,
		slots:    make(chan struct{}, 4),
		m:        m,
		resolver: newResolver(rd.Addr(), time.Second, m),
		begin:    time.Now(),
		origin:   0,
	}
	ev := workload.Event{Session: 1, Seq: 0, Client: 0, Object: 0, Start: 0, Duration: 1}
	r.resolver.cache[routeKey{ev.Client, ev.Object}] = deadAddr

	c, addr := r.perform(nil, "", ev, false)
	if c == nil {
		t.Fatalf("transfer not recovered through front-end: %s", m.result())
	}
	c.Close()
	if addr == deadAddr {
		t.Fatal("still routed at the dead address")
	}
	res := m.result()
	if res.Failovers != 1 || res.Failed != 0 || res.Completed != 1 {
		t.Fatalf("unexpected metrics after recovery: %s", res)
	}
	if got := r.resolver.cache[routeKey{ev.Client, ev.Object}]; got != addr {
		t.Fatalf("sticky cache not refreshed: %q", got)
	}
}

// TestFleetRedirectLoopBounded covers the misconfigured fleet: the
// "node" a route redirects to is itself a redirector. The client must
// refuse the second hop, fail the transfer fast, and say why.
func TestFleetRedirectLoopBounded(t *testing.T) {
	rd, _ := startFleet(t, 1, "hash")

	// Register the redirector itself as a node: every route now
	// redirects to a server that answers START with another REDIRECT.
	conn, err := net.Dial("tcp", rd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("REGISTER " + rd.Addr() + "\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}

	cfg := fastReplayConfig()
	cfg.Frontend = true
	cfg.FailoverAttempts = 3
	events := []workload.Event{{Session: 1, Seq: 0, Client: 9999, Object: 0, Start: 0, Duration: 1}}

	// 9999 does not collide with the live node's routes; keep resolving
	// until the loop-route lands on the redirector (rendezvous may pick
	// the real node for some players).
	begin := time.Now()
	var res *Result
	for c := 0; c < 50; c++ {
		events[0].Client = 9000 + c
		r, err := Replay(rd.Addr(), workload.NewSliceStream(events), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res = r
		if res.RedirectLoops > 0 {
			break
		}
	}
	if res.RedirectLoops == 0 {
		t.Fatal("no route ever hit the looping node")
	}
	if res.Failovers != 0 {
		t.Fatal("redirect loop must not trigger failover retries")
	}
	if elapsed := time.Since(begin); elapsed > 20*time.Second {
		t.Fatalf("loop detection took %v — not bounded", elapsed)
	}
}
