package loadgen

import (
	"sync"
	"testing"
	"time"

	"repro/internal/liveserver"
	"repro/internal/workload"
)

func testServer(t *testing.T, maxConns int, sink func(liveserver.TransferRecord)) *liveserver.Server {
	t.Helper()
	cfg := liveserver.DefaultServerConfig()
	cfg.FrameBytes = 256
	cfg.FrameInterval = 5 * time.Millisecond
	cfg.MaxConns = maxConns
	cfg.Sink = sink
	s, err := liveserver.Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func fastReplayConfig() Config {
	cfg := DefaultConfig()
	cfg.Compression = 100
	cfg.MinWatch = 20 * time.Millisecond
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Compression = 0 },
		func(c *Config) { c.MaxConns = 0 },
		func(c *Config) { c.MinWatch = 0 },
		func(c *Config) { c.IdleConn = 0 },
		func(c *Config) { c.MaxTransfers = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestReplaySequentialClientPoolsConnection: one client, several
// non-overlapping transfers — the pool must reuse a single connection.
func TestReplaySequentialClientPoolsConnection(t *testing.T) {
	var mu sync.Mutex
	var records []liveserver.TransferRecord
	s := testServer(t, 16, func(r liveserver.TransferRecord) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	})

	// Client 3: four transfers with clear gaps, never overlapping.
	events := []workload.Event{
		{Session: 0, Seq: 0, Client: 3, Object: 0, Start: 0, Duration: 2},
		{Session: 0, Seq: 1, Client: 3, Object: 1, Start: 10, Duration: 2},
		{Session: 0, Seq: 2, Client: 3, Object: 0, Start: 20, Duration: 2},
		{Session: 0, Seq: 3, Client: 3, Object: 1, Start: 30, Duration: 2},
	}
	res, err := Replay(s.Addr(), workload.NewSliceStream(events), fastReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 || res.Failed != 0 {
		t.Fatalf("completed %d failed %d: %s", res.Completed, res.Failed, res)
	}
	if res.Conns != 1 {
		t.Errorf("dialed %d conns for sequential same-client transfers, want 1", res.Conns)
	}
	if got := s.AcceptedConns(); got != 1 {
		t.Errorf("server accepted %d conns, want 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(records) != 4 {
		t.Fatalf("server logged %d transfers", len(records))
	}
	for _, r := range records {
		if r.PlayerID != "player-0000003" {
			t.Errorf("wrong player: %s", r.PlayerID)
		}
	}
}

// TestReplayOverlappingSameClientUsesOverflow: a client whose transfers
// overlap in trace time needs parallel connections, not serialization.
func TestReplayOverlappingSameClientUsesOverflow(t *testing.T) {
	s := testServer(t, 16, nil)
	// Two transfers by client 1 overlapping for their whole duration.
	events := []workload.Event{
		{Session: 0, Seq: 0, Client: 1, Object: 0, Start: 0, Duration: 60},
		{Session: 1, Seq: 0, Client: 1, Object: 1, Start: 5, Duration: 60},
	}
	cfg := fastReplayConfig()
	cfg.MinWatch = 100 * time.Millisecond
	res, err := Replay(s.Addr(), workload.NewSliceStream(events), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d: %s", res.Completed, res)
	}
	if res.Conns != 2 {
		t.Errorf("dialed %d conns for overlapping transfers, want 2", res.Conns)
	}
	if res.PeakConns != 2 {
		t.Errorf("peak conns %d, want 2", res.PeakConns)
	}
}

// TestReplayBackpressureBoundsConnections: more concurrently active
// clients than MaxConns — the replay must stay within budget and still
// complete everything.
func TestReplayBackpressureBoundsConnections(t *testing.T) {
	s := testServer(t, 64, nil)
	var events []workload.Event
	// 12 distinct clients all active at once; budget of 3 connections.
	for i := 0; i < 12; i++ {
		events = append(events, workload.Event{
			Session: i, Client: i, Object: i % 2, Start: int64(i), Duration: 30,
		})
	}
	cfg := fastReplayConfig()
	cfg.MaxConns = 3
	cfg.IdleConn = 50 * time.Millisecond
	res, err := Replay(s.Addr(), workload.NewSliceStream(events), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 12 {
		t.Fatalf("completed %d of 12: %s", res.Completed, res)
	}
	if res.PeakConns > 3 {
		t.Fatalf("peak conns %d exceeds budget 3", res.PeakConns)
	}
}

// TestReplayCountsRefusals: a server at capacity refuses visibly and
// the replay books it as a refusal, not a crash.
func TestReplayCountsRefusals(t *testing.T) {
	s := testServer(t, 1, nil)
	events := []workload.Event{
		{Session: 0, Client: 0, Object: 0, Start: 0, Duration: 60},
		{Session: 1, Client: 1, Object: 0, Start: 1, Duration: 60},
		{Session: 2, Client: 2, Object: 0, Start: 2, Duration: 60},
	}
	cfg := fastReplayConfig()
	cfg.MinWatch = 200 * time.Millisecond
	res, err := Replay(s.Addr(), workload.NewSliceStream(events), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Refused == 0 {
		t.Fatalf("expected refusals at MaxConns=1: %s", res)
	}
	if res.Completed+res.Failed != res.Attempted {
		t.Fatalf("accounting leak: %d + %d != %d", res.Completed, res.Failed, res.Attempted)
	}
}

func TestReplayMaxTransfersStopsEarlyAndCloses(t *testing.T) {
	s := testServer(t, 8, nil)
	src := &countingStream{limitless: true}
	cfg := fastReplayConfig()
	cfg.MaxTransfers = 5
	res, err := Replay(s.Addr(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempted != 5 {
		t.Fatalf("attempted %d, want 5", res.Attempted)
	}
	if !src.closed {
		t.Error("stream not closed after MaxTransfers")
	}
}

func TestReplayRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Compression = -1
	if _, err := Replay("127.0.0.1:1", workload.NewSliceStream(nil), cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestReplayEmptyStream(t *testing.T) {
	res, err := Replay("127.0.0.1:1", workload.NewSliceStream(nil), fastReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempted != 0 || res.Completed != 0 {
		t.Fatalf("phantom transfers: %+v", res)
	}
}

// countingStream yields an endless sequence of instant events.
type countingStream struct {
	n         int
	limitless bool
	closed    bool
}

func (c *countingStream) Next() (workload.Event, bool) {
	if !c.limitless && c.n >= 3 {
		return workload.Event{}, false
	}
	e := workload.Event{Session: c.n, Client: c.n % 4, Start: int64(c.n), Duration: 1}
	c.n++
	return e, true
}

func (c *countingStream) Close() { c.closed = true }
