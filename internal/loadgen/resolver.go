package loadgen

import (
	"sync"
	"time"

	"repro/internal/cluster"
)

// routeKey identifies one (client, object) route — the granularity the
// fleet redirector hashes on.
type routeKey struct {
	client int
	object int
}

// resolver is the redirect-following half of a fleet replay: it asks
// the front-end where a route is served, follows exactly that one hop,
// and caches the answer per route (sticky — a client's transfers for an
// object keep landing on the node the front-end picked, matching how a
// real player caches its redirect). Lookup latency is recorded in the
// replay metrics; a cached route costs nothing.
//
// The hop bound is structural: resolve returns a node address and the
// transfer path never interprets a further REDIRECT (a node that
// redirects is a misconfigured fleet and fails the transfer visibly as
// a redirect loop), so no chain of front-ends can make the client
// wander.
type resolver struct {
	frontend string
	timeout  time.Duration
	m        *metrics

	mu    sync.Mutex
	cache map[routeKey]string
}

func newResolver(frontend string, timeout time.Duration, m *metrics) *resolver {
	return &resolver{
		frontend: frontend,
		timeout:  timeout,
		m:        m,
		cache:    make(map[routeKey]string),
	}
}

// resolve returns the serving node for the route, consulting the sticky
// cache first.
func (r *resolver) resolve(key routeKey, player, uri string) (string, error) {
	r.mu.Lock()
	addr, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		r.m.redirectHit()
		return addr, nil
	}
	begin := time.Now()
	addr, err := cluster.Lookup(r.frontend, player, uri, r.timeout)
	if err != nil {
		return "", err
	}
	r.m.redirected(time.Since(begin))
	r.mu.Lock()
	r.cache[key] = addr
	r.mu.Unlock()
	return addr, nil
}

// invalidate drops the route's cached node, but only if it still points
// at the address the caller observed failing — a concurrent re-resolve
// may already have installed a fresh answer worth keeping.
func (r *resolver) invalidate(key routeKey, stale string) {
	r.mu.Lock()
	if r.cache[key] == stale {
		delete(r.cache, key)
	}
	r.mu.Unlock()
}
