package loadgen

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/analyze"
	"repro/internal/gismo"
	"repro/internal/liveserver"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/wmslog"
	"repro/internal/workload"
)

// runClosedLoop replays events against a real TCP server, decompresses
// the entries the server logged, and compares the served workload
// against the offered one. This is the loop the package exists to
// close: generate → replay over sockets → parse the log → re-analyze.
func runClosedLoop(t *testing.T, events []workload.Event, horizon int64, cfg Config, maxConns int, timeout int64) (*analyze.MatchReport, *Result) {
	t.Helper()
	var mu sync.Mutex
	var entries []*wmslog.Entry
	srv := testServer(t, maxConns, func(r liveserver.TransferRecord) {
		e := liveserver.RecordEntry(r)
		mu.Lock()
		entries = append(entries, e)
		mu.Unlock()
	})

	res, err := Replay(srv.Addr(), workload.NewSliceStream(events), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("replay failures break exactness: %s", res)
	}
	if res.Completed != len(events) {
		t.Fatalf("completed %d of %d", res.Completed, len(events))
	}

	mu.Lock()
	logged := append([]*wmslog.Entry(nil), entries...)
	mu.Unlock()
	decompressed, err := DecompressEntries(logged, res.Begin, res.Origin, res.Compression, wmslog.TraceEpoch)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range decompressed {
		if err := e.Validate(); err != nil {
			t.Fatalf("decompressed entry invalid: %v (%+v)", err, e)
		}
	}
	served, err := trace.FromEntries(decompressed, wmslog.TraceEpoch, horizon)
	if err != nil {
		t.Fatal(err)
	}
	offered, err := OfferedTrace(events, horizon)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyze.CompareTraces(offered, served, timeout)
	if err != nil {
		t.Fatal(err)
	}
	return report, res
}

// TestClosedLoopSyntheticExactMatch uses a hand-built workload whose
// session structure sits far from the timeout boundary on both sides,
// so the match must be exact despite the log's 1-second wall
// resolution: 24 clients, each with two sessions of three transfers.
func TestClosedLoopSyntheticExactMatch(t *testing.T) {
	const (
		clients     = 24
		intraGap    = 400   // trace seconds between session transfers
		interGap    = 20000 // silent gap between a client's two sessions
		duration    = 100
		compression = 4000
		timeout     = 10000 // margin ±2*compression on both sides
	)
	var events []workload.Event
	session := 0
	for c := 0; c < clients; c++ {
		for s := 0; s < 2; s++ {
			start := int64(100*c) + int64(s)*int64(interGap+2*intraGap+duration)
			for k := 0; k < 3; k++ {
				events = append(events, workload.Event{
					Session:  session,
					Seq:      k,
					Client:   c,
					Object:   (c + k) % 2,
					Start:    start + int64(k*intraGap),
					Duration: duration,
				})
			}
			session++
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Less(events[j]) })
	horizon := int64(2 * (interGap + 10*intraGap + duration))

	cfg := DefaultConfig()
	cfg.Compression = compression
	cfg.MaxConns = 64
	cfg.MinWatch = 25 * time.Millisecond
	report, res := runClosedLoop(t, events, horizon, cfg, 128, timeout)

	if !report.Match() {
		t.Fatalf("served workload does not match offered:\n%s", report)
	}
	if report.OfferedSessions != clients*2 {
		t.Fatalf("offered sessions = %d, want %d", report.OfferedSessions, clients*2)
	}
	if report.OfferedTransfers != clients*2*3 {
		t.Fatalf("offered transfers = %d", report.OfferedTransfers)
	}
	t.Logf("synthetic closed loop:\n%s\n%s", report, res)
}

// TestClosedLoopGismoFlashCrowd drives the full pipeline the tentpole
// names: sharded generator → scenario transforms (thin + flash crowd)
// → TCP replay → log decompression → re-analysis, with the session
// timeout chosen in the largest silent-gap void so the log's wall-clock
// quantization cannot flip a session boundary.
func TestClosedLoopGismoFlashCrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("socket e2e in -short mode")
	}
	m, err := gismo.Scaled(3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Horizon = 1800 // half a trace hour is plenty for the loop
	m.RampUpDays = 0 // the premiere ramp would empty a 30-minute trace
	m.BaseArrivalRate = 0.25
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	thin, err := scenario.Thin(0.9, 17)
	if err != nil {
		t.Fatal(err)
	}
	inject, err := scenario.FlashCrowd{
		At:       300,
		Duration: 600,
		Sessions: 80,
		Clients:  m.NumClients,
		Objects:  m.NumObjects,
		Horizon:  m.Horizon,
	}.Inject(23)
	if err != nil {
		t.Fatal(err)
	}

	ws, err := gismo.NewStream(m, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	events := workload.Drain(scenario.Chain(thin, inject)(ws), 0)
	if len(events) < 100 {
		t.Fatalf("workload too thin for a meaningful loop: %d events", len(events))
	}

	const compression = 300
	offered, err := OfferedTrace(events, m.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	timeout, ok := SafeTimeout(offered, 3*compression)
	if !ok {
		t.Fatal("no quantization-safe session timeout exists for this seed; adjust the workload")
	}

	cfg := DefaultConfig()
	cfg.Compression = compression
	cfg.MaxConns = 128
	cfg.MinWatch = 25 * time.Millisecond
	report, res := runClosedLoop(t, events, m.Horizon, cfg, 256, timeout)
	if !report.Match() {
		t.Fatalf("served workload does not match offered:\n%s", report)
	}
	if res.PeakConns < 2 {
		t.Errorf("suspiciously serial replay: peak conns %d", res.PeakConns)
	}
	t.Logf("gismo+flash closed loop (%d events, timeout %d):\n%s\n%s", len(events), timeout, report, res)
}
