package loadgen

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/liveserver"
	"repro/internal/stats"
	"repro/internal/workload"
)

type failureKind int

const (
	failureNone failureKind = iota
	failureDial
	failureRefused
	failureProtocol
	failureRedirectLoop
)

// metrics is the online measurement rail of a replay: Welford moments
// and a log-bucket quantile sketch (the same estimators the streaming
// characterization uses), accumulated under one mutex. Completion rates
// are a few thousand per second at most, far below contention range.
type metrics struct {
	mu sync.Mutex

	completed int
	failed    int
	dialErrs  int
	refused   int
	protoErrs int
	bytes     int64
	frames    int64

	dialLat  stats.Welford // seconds
	startLat stats.Welford // milliseconds
	startQ   *stats.LogQuantile
	lag      stats.Welford // seconds behind the virtual schedule

	curConns  int
	peakConns int
	dials     int

	// Fleet-mode rail: front-end lookups, sticky-cache hits, redirect
	// latency, transfers recovered by re-routing after a node failure,
	// and redirect-loop refusals (a "node" that answered with another
	// REDIRECT — the one-hop bound tripping).
	redirects    int
	redirHits    int
	redirLat     stats.Welford // milliseconds
	failovers    int
	loops        int
	failedEvents []workload.Event
}

func newMetrics() *metrics {
	q, err := stats.NewLogQuantile(32)
	if err != nil {
		panic(err) // static argument; cannot fail
	}
	return &metrics{startQ: q}
}

func (m *metrics) addLag(d time.Duration) {
	m.mu.Lock()
	m.lag.Add(d.Seconds())
	m.mu.Unlock()
}

func (m *metrics) connOpened() {
	m.mu.Lock()
	m.curConns++
	if m.curConns > m.peakConns {
		m.peakConns = m.curConns
	}
	m.mu.Unlock()
}

func (m *metrics) connClosed() {
	m.mu.Lock()
	m.curConns--
	m.mu.Unlock()
}

func (m *metrics) dialed(d time.Duration) {
	m.mu.Lock()
	m.dials++
	m.dialLat.Add(d.Seconds())
	m.mu.Unlock()
}

// lost records one ultimately failed transfer: exactly one failure
// count and one taxonomy bucket per lost workload event, however many
// retries it took to give up, plus the event itself so a validation
// pass can exclude exactly the lost events from the offered workload.
func (m *metrics) lost(ev workload.Event, err error) {
	m.mu.Lock()
	m.failed++
	switch classify(err) {
	case failureRefused:
		m.refused++
	case failureRedirectLoop:
		m.loops++
	case failureDial:
		m.dialErrs++
	default:
		m.protoErrs++
	}
	m.failedEvents = append(m.failedEvents, ev)
	m.mu.Unlock()
}

func (m *metrics) redirected(d time.Duration) {
	m.mu.Lock()
	m.redirects++
	m.redirLat.Add(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

func (m *metrics) redirectHit() {
	m.mu.Lock()
	m.redirHits++
	m.mu.Unlock()
}

func (m *metrics) failedOver() {
	m.mu.Lock()
	m.failovers++
	m.mu.Unlock()
}

func (m *metrics) transferDone(res liveserver.TransferResult) {
	ms := float64(res.StartLatency) / float64(time.Millisecond)
	m.mu.Lock()
	m.completed++
	m.bytes += res.Bytes
	m.frames += int64(res.Frames)
	m.startLat.Add(ms)
	m.startQ.Add(ms)
	m.mu.Unlock()
}

// Result is the measured outcome of a replay.
type Result struct {
	Attempted int
	Completed int
	Failed    int

	// Failure taxonomy: refused at capacity ("ERR busy"), dial/network
	// errors, protocol errors or timeouts.
	Refused        int
	DialErrors     int
	ProtocolErrors int

	Bytes  int64
	Frames int64
	Wall   time.Duration

	// Begin, Origin and Compression pin the virtual clock: trace second
	// Origin replayed at wall instant Begin, Compression trace seconds
	// per wall second. DecompressEntries needs all three to map the
	// server's wall-clock log back onto the trace clock.
	Begin       time.Time
	Origin      int64
	Compression float64

	// Conns is the lifetime number of connections opened; PeakConns the
	// maximum simultaneously open.
	Conns     int
	PeakConns int

	// Fleet-mode measurements (all zero in a direct replay): Redirects
	// counts front-end route lookups, RedirectCacheHits sticky-cache
	// hits, RedirectLatencyMean the lookup round trip in milliseconds.
	// Failovers counts transfers recovered by re-resolving through the
	// front-end after their node failed; RedirectLoops counts transfers
	// refused because the redirected "node" answered with another
	// REDIRECT (the one-hop bound).
	Redirects           int
	RedirectCacheHits   int
	RedirectLatencyMean float64
	Failovers           int
	RedirectLoops       int

	// FailedEvents are the workload events of ultimately lost transfers
	// (empty on a clean replay): exactly what a merged-log validation
	// must exclude from the offered workload under failover.
	FailedEvents []workload.Event

	// DialLatency and Lag are in seconds, StartLatency* in
	// milliseconds. Lag is how far dispatch ran behind the virtual
	// schedule (0 when the scheduler kept up).
	DialLatencyMean                                                     float64
	StartLatencyMean, StartLatencyP50, StartLatencyP95, StartLatencyP99 float64
	LagMean, LagMax                                                     float64
	LagSamples                                                          int

	// ThroughputBps is payload bits per wall second over the replay.
	ThroughputBps float64
}

func (m *metrics) result() *Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	res := &Result{
		Completed:        m.completed,
		Failed:           m.failed,
		Refused:          m.refused,
		DialErrors:       m.dialErrs,
		ProtocolErrors:   m.protoErrs,
		Bytes:            m.bytes,
		Frames:           m.frames,
		Conns:            m.dials,
		PeakConns:        m.peakConns,
		DialLatencyMean:  m.dialLat.Mean(),
		StartLatencyMean: m.startLat.Mean(),
		LagSamples:       m.lag.N(),

		Redirects:         m.redirects,
		RedirectCacheHits: m.redirHits,
		Failovers:         m.failovers,
		RedirectLoops:     m.loops,
		FailedEvents:      append([]workload.Event(nil), m.failedEvents...),
	}
	if m.redirLat.N() > 0 {
		res.RedirectLatencyMean = m.redirLat.Mean()
	}
	if m.startQ.N() > 0 {
		res.StartLatencyP50 = m.startQ.Quantile(0.5)
		res.StartLatencyP95 = m.startQ.Quantile(0.95)
		res.StartLatencyP99 = m.startQ.Quantile(0.99)
	}
	if m.lag.N() > 0 {
		res.LagMean = m.lag.Mean()
		res.LagMax = m.lag.Max()
	}
	return res
}

// String renders the replay report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d/%d transfers (%d failed: %d refused, %d dial, %d protocol)\n",
		r.Completed, r.Attempted, r.Failed, r.Refused, r.DialErrors, r.ProtocolErrors)
	fmt.Fprintf(&b, "wall %.1fs at compression %.0fx, %d conns (peak %d concurrent)\n",
		r.Wall.Seconds(), r.Compression, r.Conns, r.PeakConns)
	fmt.Fprintf(&b, "payload %.1f MB, %.2f Mbit/s, %d frames\n",
		float64(r.Bytes)/1e6, r.ThroughputBps/1e6, r.Frames)
	fmt.Fprintf(&b, "start latency mean %.2f ms (p50 %.2f, p95 %.2f, p99 %.2f); dial mean %.2f ms\n",
		r.StartLatencyMean, r.StartLatencyP50, r.StartLatencyP95, r.StartLatencyP99, r.DialLatencyMean*1e3)
	if r.Redirects > 0 || r.RedirectCacheHits > 0 {
		fmt.Fprintf(&b, "fleet: %d redirect lookups (%d cached, mean %.2f ms), %d rerouted after node failure, %d redirect loops blocked\n",
			r.Redirects, r.RedirectCacheHits, r.RedirectLatencyMean, r.Failovers, r.RedirectLoops)
	}
	if r.LagSamples > 0 {
		fmt.Fprintf(&b, "scheduler lag: mean %.1f ms, max %.1f ms over %d late dispatches",
			r.LagMean*1e3, r.LagMax*1e3, r.LagSamples)
	} else {
		b.WriteString("scheduler kept up with the virtual clock")
	}
	return b.String()
}
