package loadgen

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/liveserver"
	"repro/internal/stats"
)

type failureKind int

const (
	failureNone failureKind = iota
	failureDial
	failureRefused
	failureProtocol
)

// metrics is the online measurement rail of a replay: Welford moments
// and a log-bucket quantile sketch (the same estimators the streaming
// characterization uses), accumulated under one mutex. Completion rates
// are a few thousand per second at most, far below contention range.
type metrics struct {
	mu sync.Mutex

	completed int
	failed    int
	dialErrs  int
	refused   int
	protoErrs int
	bytes     int64
	frames    int64

	dialLat  stats.Welford // seconds
	startLat stats.Welford // milliseconds
	startQ   *stats.LogQuantile
	lag      stats.Welford // seconds behind the virtual schedule

	curConns  int
	peakConns int
	dials     int
}

func newMetrics() *metrics {
	q, err := stats.NewLogQuantile(32)
	if err != nil {
		panic(err) // static argument; cannot fail
	}
	return &metrics{startQ: q}
}

func (m *metrics) addLag(d time.Duration) {
	m.mu.Lock()
	m.lag.Add(d.Seconds())
	m.mu.Unlock()
}

func (m *metrics) connOpened() {
	m.mu.Lock()
	m.curConns++
	if m.curConns > m.peakConns {
		m.peakConns = m.curConns
	}
	m.mu.Unlock()
}

func (m *metrics) connClosed() {
	m.mu.Lock()
	m.curConns--
	m.mu.Unlock()
}

func (m *metrics) dialed(d time.Duration) {
	m.mu.Lock()
	m.dials++
	m.dialLat.Add(d.Seconds())
	m.mu.Unlock()
}

func (m *metrics) dialFailed(err error) {
	m.mu.Lock()
	m.failed++
	if classify(err) == failureRefused {
		m.refused++
	} else {
		m.dialErrs++
	}
	m.mu.Unlock()
}

func (m *metrics) transferFailed(err error) {
	m.mu.Lock()
	m.failed++
	if classify(err) == failureRefused {
		m.refused++
	} else {
		m.protoErrs++
	}
	m.mu.Unlock()
}

func (m *metrics) transferDone(res liveserver.TransferResult) {
	ms := float64(res.StartLatency) / float64(time.Millisecond)
	m.mu.Lock()
	m.completed++
	m.bytes += res.Bytes
	m.frames += int64(res.Frames)
	m.startLat.Add(ms)
	m.startQ.Add(ms)
	m.mu.Unlock()
}

// Result is the measured outcome of a replay.
type Result struct {
	Attempted int
	Completed int
	Failed    int

	// Failure taxonomy: refused at capacity ("ERR busy"), dial/network
	// errors, protocol errors or timeouts.
	Refused        int
	DialErrors     int
	ProtocolErrors int

	Bytes  int64
	Frames int64
	Wall   time.Duration

	// Begin, Origin and Compression pin the virtual clock: trace second
	// Origin replayed at wall instant Begin, Compression trace seconds
	// per wall second. DecompressEntries needs all three to map the
	// server's wall-clock log back onto the trace clock.
	Begin       time.Time
	Origin      int64
	Compression float64

	// Conns is the lifetime number of connections opened; PeakConns the
	// maximum simultaneously open.
	Conns     int
	PeakConns int

	// DialLatency and Lag are in seconds, StartLatency* in
	// milliseconds. Lag is how far dispatch ran behind the virtual
	// schedule (0 when the scheduler kept up).
	DialLatencyMean                                                     float64
	StartLatencyMean, StartLatencyP50, StartLatencyP95, StartLatencyP99 float64
	LagMean, LagMax                                                     float64
	LagSamples                                                          int

	// ThroughputBps is payload bits per wall second over the replay.
	ThroughputBps float64
}

func (m *metrics) result() *Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	res := &Result{
		Completed:        m.completed,
		Failed:           m.failed,
		Refused:          m.refused,
		DialErrors:       m.dialErrs,
		ProtocolErrors:   m.protoErrs,
		Bytes:            m.bytes,
		Frames:           m.frames,
		Conns:            m.dials,
		PeakConns:        m.peakConns,
		DialLatencyMean:  m.dialLat.Mean(),
		StartLatencyMean: m.startLat.Mean(),
		LagSamples:       m.lag.N(),
	}
	if m.startQ.N() > 0 {
		res.StartLatencyP50 = m.startQ.Quantile(0.5)
		res.StartLatencyP95 = m.startQ.Quantile(0.95)
		res.StartLatencyP99 = m.startQ.Quantile(0.99)
	}
	if m.lag.N() > 0 {
		res.LagMean = m.lag.Mean()
		res.LagMax = m.lag.Max()
	}
	return res
}

// String renders the replay report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d/%d transfers (%d failed: %d refused, %d dial, %d protocol)\n",
		r.Completed, r.Attempted, r.Failed, r.Refused, r.DialErrors, r.ProtocolErrors)
	fmt.Fprintf(&b, "wall %.1fs at compression %.0fx, %d conns (peak %d concurrent)\n",
		r.Wall.Seconds(), r.Compression, r.Conns, r.PeakConns)
	fmt.Fprintf(&b, "payload %.1f MB, %.2f Mbit/s, %d frames\n",
		float64(r.Bytes)/1e6, r.ThroughputBps/1e6, r.Frames)
	fmt.Fprintf(&b, "start latency mean %.2f ms (p50 %.2f, p95 %.2f, p99 %.2f); dial mean %.2f ms\n",
		r.StartLatencyMean, r.StartLatencyP50, r.StartLatencyP95, r.StartLatencyP99, r.DialLatencyMean*1e3)
	if r.LagSamples > 0 {
		fmt.Fprintf(&b, "scheduler lag: mean %.1f ms, max %.1f ms over %d late dispatches",
			r.LagMean*1e3, r.LagMax*1e3, r.LagSamples)
	} else {
		b.WriteString("scheduler kept up with the virtual clock")
	}
	return b.String()
}
