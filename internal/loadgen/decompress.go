package loadgen

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/trace"
	"repro/internal/wmslog"
	"repro/internal/workload"
)

// DecompressEntries maps the server's wall-clock log entries from a
// compressed-time replay back onto the trace clock, producing entries
// a characterization run can consume as if the trace had been served in
// real time: timestamps become epoch + trace seconds, durations are
// re-expanded by the compression factor, and bandwidths are recomputed
// against trace-time durations.
//
// begin/origin/compression come from the replay's Result: wall instant
// begin corresponds to trace second origin, and every wall second spans
// compression trace seconds. The server log's 1-second resolution
// therefore quantizes reconstructed instants to ±compression trace
// seconds — validation must compare at a granularity (session timeout)
// comfortably above that.
func DecompressEntries(entries []*wmslog.Entry, begin time.Time, origin int64, compression float64, epoch time.Time) ([]*wmslog.Entry, error) {
	if compression <= 0 {
		return nil, fmt.Errorf("%w: compression %v", ErrBadConfig, compression)
	}
	out := make([]*wmslog.Entry, 0, len(entries))
	for _, e := range entries {
		traceEnd := origin + int64(math.Round(e.Timestamp.Sub(begin).Seconds()*compression))
		traceDur := int64(math.Round(float64(e.Duration) * compression))
		if traceDur < 1 {
			traceDur = 1
		}
		if traceEnd < traceDur {
			traceEnd = traceDur
		}
		bw := int64(0)
		if traceDur > 0 {
			bw = e.Bytes * 8 / traceDur
		}
		d := *e
		d.Timestamp = epoch.Add(time.Duration(traceEnd) * time.Second)
		d.Duration = traceDur
		d.AvgBandwidth = bw
		out = append(out, &d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Timestamp.Before(out[j].Timestamp) })
	return out, nil
}

// SafeTimeout finds a session timeout in the widest void of the
// offered workload's silent-gap distribution, at least slack
// trace-seconds from any actual gap. Decompression noise below slack
// then cannot move any gap across the timeout, so offered and served
// session counts can be compared exactly. Reasonable slack is a few
// multiples of the compression factor (the log's wall-second resolution
// re-expanded). Returns false if no gap-free band that wide exists.
func SafeTimeout(tr *trace.Trace, slack int64) (int64, bool) {
	gaps := []int64{0}
	for _, idxs := range tr.ByClient() {
		coverage := int64(-1)
		for _, i := range idxs {
			tx := tr.Transfers[i]
			if coverage >= 0 && tx.Start > coverage {
				gaps = append(gaps, tx.Start-coverage)
			}
			if end := tx.End(); end > coverage {
				coverage = end
			}
		}
	}
	// A timeout above every observed gap is valid too (no session ever
	// splits), so the search space extends past the horizon.
	gaps = append(gaps, 4*tr.Horizon)
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })

	var best, bestWidth int64
	for i := 1; i < len(gaps); i++ {
		if w := gaps[i] - gaps[i-1]; w > bestWidth {
			bestWidth = w
			best = gaps[i-1] + w/2
		}
	}
	if bestWidth/2 < slack || best < 1 {
		return 0, false
	}
	return best, true
}

// OfferedTrace materializes a replayed event sequence as a trace, so
// the offered workload can run through the same sessionization and
// characterization as the served one. Only the fields the session and
// transfer layers read from a replay comparison — client, start,
// duration — carry workload information; wire-level fields are stubbed.
func OfferedTrace(events []workload.Event, horizon int64) (*trace.Trace, error) {
	transfers := make([]trace.Transfer, 0, len(events))
	for _, e := range events {
		transfers = append(transfers, trace.Transfer{
			Client:   e.Client,
			IP:       "0.0.0.0",
			AS:       1,
			Country:  "BR",
			Object:   e.Object,
			Start:    e.Start,
			Duration: e.Duration,
			Bytes:    1,
		})
	}
	return trace.New(horizon, transfers)
}
