package loadgen

import (
	"repro/internal/wmslog"
	"repro/internal/workload"
)

// ReconcileServed reconciles a served entry set with a replay's
// failure record under the at-least-once semantics of failover
// retries. Two races around a node's death make the raw log disagree
// with the client's accounting, both through the same window — the
// node commits a transfer's log entry just before sending END, and the
// client can fail after that commit:
//
//   - The client's retries all fail and the event is recorded lost,
//     but the first node had already logged it. Validation excludes
//     the event from the offered side, so the stray served entry must
//     go too (droppedLost).
//   - A retry succeeds on another node, so the event is logged twice.
//     The duplicate — same (session, seq) tag — is dropped, keeping
//     the first occurrence (droppedDup).
//
// Only tagged entries can be reconciled; untagged entries pass
// through. The counts are returned so a validation pass can report
// what it reconciled instead of silently absorbing it.
func ReconcileServed(entries []*wmslog.Entry, failed []workload.Event) (kept []*wmslog.Entry, droppedLost, droppedDup int) {
	type ident struct {
		session int64
		seq     int
	}
	lost := make(map[ident]bool, len(failed))
	for _, ev := range failed {
		lost[ident{int64(ev.Session), ev.Seq}] = true
	}
	seen := make(map[ident]bool, len(entries))
	kept = make([]*wmslog.Entry, 0, len(entries))
	for _, e := range entries {
		s, q, ok := e.SessionSeq()
		if !ok {
			kept = append(kept, e)
			continue
		}
		id := ident{s, q}
		switch {
		case lost[id]:
			droppedLost++
		case seen[id]:
			droppedDup++
		default:
			seen[id] = true
			kept = append(kept, e)
		}
	}
	return kept, droppedLost, droppedDup
}
