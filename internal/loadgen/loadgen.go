// Package loadgen replays generated workloads against the live TCP
// streaming server (internal/liveserver) — the closing of the
// generate → serve → measure loop over real sockets.
//
// The discrete-event simulator (internal/simulate) produces paper-scale
// traces without touching the network; this package is its wire-level
// complement: every workload event becomes a real transfer on a real
// connection, scheduled on a virtual clock that compresses trace time
// by a configurable factor, under a bounded connection budget with
// backpressure, and measured online with the stats estimators
// (latency, throughput, scheduling lag, failure taxonomy).
//
// # Connection model
//
// Connections are pooled per client: a client's transfers ride one
// persistent connection (HELLO once, many STARTs), matching how media
// players actually behave and keeping the connection count near the
// number of concurrently active clients rather than active transfers.
// Two deviations are handled explicitly:
//
//   - Overlapping transfers by one client (the generator's gap draws
//     allow a transfer to start before the previous one ends) run on
//     ephemeral overflow connections, because the control protocol is
//     one transfer per connection at a time. Serializing them instead
//     would shift start times and corrupt the replayed session
//     structure.
//   - The connection budget (MaxConns) covers pooled and overflow
//     connections alike. When the budget is exhausted the dispatcher
//     first retires idle pooled connections (stalest first), then
//     blocks — backpressure, surfaced in the result as scheduling lag
//     rather than silent connection-count growth.
package loadgen

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/liveserver"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// ErrBadConfig reports an invalid replay configuration.
var ErrBadConfig = errors.New("loadgen: bad configuration")

// Config parameterizes a replay.
type Config struct {
	// Compression is trace seconds per wall second: 600 replays one
	// trace hour in six wall seconds.
	Compression float64
	// MaxConns bounds concurrently open connections (pooled + overflow).
	MaxConns int
	// MinWatch floors the wall-clock watch time of a transfer so that
	// heavily compressed transfers still exchange at least one frame.
	MinWatch time.Duration
	// IdleConn is how long an idle pooled connection may hold a
	// connection slot before the dispatcher may retire it under
	// pressure. Keep it below the server's IdleTimeout, or the server
	// retires the connection first and the pool pays a redial.
	IdleConn time.Duration
	// MaxTransfers caps replayed events (0 = drain the stream).
	MaxTransfers int

	// Frontend marks the replay target as a fleet redirector front-end
	// (internal/cluster) rather than a liveserver: every (client,
	// object) route is resolved through it — HELLO/START answered with
	// REDIRECT — and the transfer runs against the redirected node.
	// Routes are cached sticky per (client, object); exactly one
	// redirect hop is ever followed. When a node dies, affected
	// transfers re-resolve through the front-end (bounded retries) and
	// the recovery is recorded in the metrics as a failover.
	Frontend bool
	// ResolveTimeout bounds one front-end route lookup.
	ResolveTimeout time.Duration
	// FailoverAttempts is how many times a failed transfer re-resolves
	// and retries before being counted lost (fleet mode only).
	FailoverAttempts int

	// PlayerOf maps a client index to the player ID sent in HELLO. Nil
	// uses the generator's population naming (player-%07d).
	PlayerOf func(client int) string
	// URIOf maps an object index to its live URI. Nil uses the
	// simulator's object naming (/live/feedN).
	URIOf func(object int) string
}

// DefaultConfig replays one trace hour in six wall seconds over at most
// 256 connections.
func DefaultConfig() Config {
	return Config{
		Compression:      600,
		MaxConns:         256,
		MinWatch:         40 * time.Millisecond,
		IdleConn:         2 * time.Second,
		ResolveTimeout:   5 * time.Second,
		FailoverAttempts: 3,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Compression <= 0 {
		return fmt.Errorf("%w: compression %v", ErrBadConfig, c.Compression)
	}
	if c.MaxConns < 1 {
		return fmt.Errorf("%w: max conns %d", ErrBadConfig, c.MaxConns)
	}
	if c.MinWatch <= 0 {
		return fmt.Errorf("%w: min watch %v", ErrBadConfig, c.MinWatch)
	}
	if c.IdleConn <= 0 {
		return fmt.Errorf("%w: idle conn %v", ErrBadConfig, c.IdleConn)
	}
	if c.MaxTransfers < 0 {
		return fmt.Errorf("%w: max transfers %d", ErrBadConfig, c.MaxTransfers)
	}
	if c.Frontend {
		if c.ResolveTimeout <= 0 {
			return fmt.Errorf("%w: resolve timeout %v", ErrBadConfig, c.ResolveTimeout)
		}
		if c.FailoverAttempts < 0 {
			return fmt.Errorf("%w: failover attempts %d", ErrBadConfig, c.FailoverAttempts)
		}
	}
	return nil
}

func (c *Config) playerOf(client int) string {
	if c.PlayerOf != nil {
		return c.PlayerOf(client)
	}
	return fmt.Sprintf("player-%07d", client)
}

func (c *Config) uriOf(object int) string {
	if c.URIOf != nil {
		return c.URIOf(object)
	}
	return simulate.ObjectURI(object)
}

// Replay drives the stream against the server at addr. It consumes the
// stream in order on a single dispatcher goroutine — the virtual-time
// scheduler — and returns when every dispatched transfer has finished.
// Transfer failures (refusals at capacity, protocol errors, timeouts)
// are counted, not fatal: live viewers that cannot be served are lost,
// which is exactly the phenomenon worth measuring.
func Replay(addr string, stream workload.Stream, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &runner{
		addr:  addr,
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxConns),
		m:     newMetrics(),
	}
	if cfg.Frontend {
		r.resolver = newResolver(addr, cfg.ResolveTimeout, r.m)
	}
	workers := make(map[int]*worker)

	dispatched := 0
	for {
		if cfg.MaxTransfers > 0 && dispatched >= cfg.MaxTransfers {
			workload.CloseStream(stream)
			break
		}
		ev, ok := stream.Next()
		if !ok {
			break
		}
		if dispatched == 0 {
			r.begin = time.Now()
			r.origin = ev.Start
		}
		dispatched++
		if sleep := time.Until(r.wallAt(ev.Start)); sleep > 0 {
			time.Sleep(sleep)
		} else if sleep < 0 {
			r.m.addLag(-sleep)
		}
		r.dispatch(workers, ev)
	}
	for _, w := range workers {
		close(w.jobs)
	}
	r.wg.Wait()

	res := r.m.result()
	res.Attempted = dispatched
	res.Begin = r.begin
	res.Origin = r.origin
	res.Compression = cfg.Compression
	if dispatched > 0 {
		res.Wall = time.Since(r.begin)
		if secs := res.Wall.Seconds(); secs > 0 {
			res.ThroughputBps = float64(res.Bytes*8) / secs
		}
	}
	return res, nil
}

// runner is the shared state of one replay.
type runner struct {
	addr     string
	cfg      Config
	slots    chan struct{} // connection budget: one token per open conn
	wg       sync.WaitGroup
	m        *metrics
	resolver *resolver // non-nil in fleet (front-end) mode
	begin    time.Time
	origin   int64
}

// wallAt maps a trace instant onto the replay's wall clock.
func (r *runner) wallAt(traceSec int64) time.Time {
	return r.begin.Add(time.Duration(float64(traceSec-r.origin) / r.cfg.Compression * float64(time.Second)))
}

// worker is the dispatcher's handle on one pooled per-client
// connection. jobs is unbuffered: a non-blocking send succeeds exactly
// when the worker goroutine is parked between transfers, so "send
// failed" is the overlap signal that routes to an overflow connection.
// busy mirrors that state for the reaper: closing a mid-transfer
// worker would free no capacity (its slot releases only when the
// transfer ends), so eviction must target parked workers only.
type worker struct {
	jobs     chan workload.Event
	lastUsed time.Time
	busy     atomic.Bool
}

// dispatch routes one event: pooled connection if the client has an
// idle one, a fresh pooled worker if the client has none, an ephemeral
// overflow connection if the client's worker is mid-transfer.
func (r *runner) dispatch(workers map[int]*worker, ev workload.Event) {
	if w, ok := workers[ev.Client]; ok {
		select {
		case w.jobs <- ev:
			w.lastUsed = time.Now()
			return
		default: // worker mid-transfer: the client overlaps itself
		}
		r.acquireSlot(workers)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.releaseSlot()
			c, _ := r.perform(nil, "", ev, false)
			if c != nil {
				c.Close()
			}
		}()
		return
	}
	r.acquireSlot(workers)
	w := &worker{jobs: make(chan workload.Event), lastUsed: time.Now()}
	workers[ev.Client] = w
	r.wg.Add(1)
	go r.runWorker(w)
	w.jobs <- ev
}

// acquireSlot takes one connection token, applying backpressure: when
// the budget is exhausted it retires idle pooled connections (stalest
// first) and waits for completions. The dispatcher stalling here is by
// design — the stall shows up as scheduling lag on subsequent events
// instead of an unbounded connection count.
func (r *runner) acquireSlot(workers map[int]*worker) {
	for {
		select {
		case r.slots <- struct{}{}:
			r.m.connOpened()
			return
		default:
		}
		r.reap(workers)
		select {
		case r.slots <- struct{}{}:
			r.m.connOpened()
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (r *runner) releaseSlot() {
	<-r.slots
	r.m.connClosed()
}

// reap retires parked pooled connections idle longer than IdleConn; if
// none qualify it retires the single stalest parked one, so a pool
// full of recently-used-but-idle connections cannot stall the budget.
// Mid-transfer workers are never candidates: closing one frees no
// capacity (its slot releases only when the transfer ends), so under
// pressure from busy workers the right move is to wait for
// completions, which the acquireSlot retry loop does.
func (r *runner) reap(workers map[int]*worker) {
	now := time.Now()
	var stalest int
	var stalestAt time.Time
	found := false
	for client, w := range workers {
		if w.busy.Load() {
			continue
		}
		if now.Sub(w.lastUsed) > r.cfg.IdleConn {
			close(w.jobs)
			delete(workers, client)
			found = true
			continue
		}
		if !found && (stalestAt.IsZero() || w.lastUsed.Before(stalestAt)) {
			stalest, stalestAt = client, w.lastUsed
		}
	}
	if !found && !stalestAt.IsZero() {
		close(workers[stalest].jobs)
		delete(workers, stalest)
	}
}

// runWorker serves one client's transfer sequence over a pooled
// connection, dialing lazily and holding its connection slot until
// retired. In fleet mode the connection is pinned to the node of the
// client's most recent route: a route to a different node closes it and
// redials (clients mostly re-watch one object, so the pin rarely
// moves).
func (r *runner) runWorker(w *worker) {
	defer r.wg.Done()
	defer r.releaseSlot()
	var c *liveserver.Client
	var cAddr string
	for ev := range w.jobs {
		w.busy.Store(true)
		c, cAddr = r.perform(c, cAddr, ev, true)
		w.busy.Store(false)
	}
	if c != nil {
		c.Close()
	}
}

// perform runs one transfer, returning the connection and its node
// address for reuse (nil if it died). A pooled connection that fails
// gets one redial-and-retry against the same node: the usual cause is
// the server's idle timeout having harvested it between transfers,
// which is the pool's fault, not the workload's. In fleet mode a
// transfer that still fails re-resolves its route through the front-end
// and retries on whatever node the fleet now names — the failover path;
// recoveries are counted, and a transfer lost after all retries is
// recorded with its workload event so validation can exclude exactly
// the lost events.
func (r *runner) perform(c *liveserver.Client, cAddr string, ev workload.Event, pooled bool) (*liveserver.Client, string) {
	addr, err := r.routeOf(ev)
	if err == nil {
		if c != nil && cAddr != addr {
			c.Close()
			c = nil
		}
		fresh := c == nil
		if c == nil {
			c, err = r.dial(addr, ev.Client)
		}
		if err == nil {
			err = r.watch(c, ev)
			if err != nil && pooled && !fresh {
				c.Close()
				c, err = r.dial(addr, ev.Client)
				if err == nil {
					err = r.watch(c, ev)
				}
			}
		}
	} else if c != nil {
		// Route lookup failed; the pooled connection's node is unknown
		// for this event, so it cannot be reused.
		c.Close()
		c = nil
	}
	// Fleet failover: every failure — including the initial route
	// lookup's — gets the same bounded re-resolve-and-retry, except a
	// redirect loop, where re-resolving would hand back the same
	// misconfigured answer: that fails fast under the one-hop bound.
	if err != nil && r.resolver != nil && classify(err) != failureRedirectLoop {
		if c != nil {
			c.Close()
			c = nil
		}
		key := routeKey{ev.Client, ev.Object}
		failedAddr := addr
		for attempt := 0; attempt < r.cfg.FailoverAttempts && err != nil; attempt++ {
			r.resolver.invalidate(key, addr)
			// Give the front-end a beat to notice the death; the first
			// retry is immediate (a killed node deregisters instantly).
			time.Sleep(time.Duration(attempt) * 50 * time.Millisecond)
			if addr, err = r.routeOf(ev); err != nil {
				continue
			}
			if c, err = r.dial(addr, ev.Client); err != nil {
				continue
			}
			if err = r.watch(c, ev); err != nil {
				c.Close()
				c = nil
				if classify(err) == failureRedirectLoop {
					break // misconfigured fleet: retrying cannot help
				}
			}
		}
		// A failover is a recovery whose route actually moved — a retry
		// that succeeded on the same node was a transient blip, not a
		// reroute, and must not inflate the node-failure evidence.
		if err == nil && addr != failedAddr {
			r.m.failedOver()
		}
	}
	if err != nil {
		r.m.lost(ev, err)
		if c != nil {
			c.Close()
		}
		return nil, ""
	}
	return c, addr
}

// routeOf names the node serving the event: the fixed server address in
// direct mode, the front-end's (cached) answer in fleet mode.
func (r *runner) routeOf(ev workload.Event) (string, error) {
	if r.resolver == nil {
		return r.addr, nil
	}
	return r.resolver.resolve(routeKey{ev.Client, ev.Object}, r.cfg.playerOf(ev.Client), r.cfg.uriOf(ev.Object))
}

// dial opens and HELLOs a connection to addr for the client, recording
// dial latency on success.
func (r *runner) dial(addr string, client int) (*liveserver.Client, error) {
	begin := time.Now()
	c, err := liveserver.Dial(addr, r.cfg.playerOf(client))
	if err != nil {
		return nil, err
	}
	r.m.dialed(time.Since(begin))
	return c, nil
}

// watch runs the transfer: watch until the event's end instant on the
// virtual clock (so a late start shortens the watch instead of shifting
// the transfer's end), floored at MinWatch. The transfer is tagged with
// its workload event identity, which the server logs — the key the
// fleet's merged-log verification joins on.
func (r *runner) watch(c *liveserver.Client, ev workload.Event) error {
	dur := time.Until(r.wallAt(ev.End()))
	if dur < r.cfg.MinWatch {
		dur = r.cfg.MinWatch
	}
	res, err := c.WatchTagged(r.cfg.uriOf(ev.Object), int64(ev.Session), ev.Seq, dur)
	if err != nil {
		return err
	}
	r.m.transferDone(res)
	return nil
}

// classify buckets a transfer or dial error for the failure taxonomy.
func classify(err error) failureKind {
	switch {
	case err == nil:
		return failureNone
	case strings.Contains(err.Error(), "busy"):
		return failureRefused
	case strings.Contains(err.Error(), "REDIRECT"):
		return failureRedirectLoop
	case strings.Contains(err.Error(), "dial"):
		return failureDial
	default:
		return failureProtocol
	}
}
