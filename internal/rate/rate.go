// Package rate models the periodic (diurnal and weekly) arrival-rate
// profiles that modulate the piecewise-stationary Poisson client arrival
// process of Veloso et al. (IMC 2002), Section 3.4 and Figure 4.
//
// The paper observes that the number of active clients is strongly
// periodic: diurnal variation dominates (a deep trough from roughly 4am to
// 11am, a peak in the evening), with a weaker weekly effect (weekends
// slightly busier than weekdays). A Profile captures exactly that
// structure: a base rate shaped by a 24-hour multiplier curve and a 7-day
// multiplier curve.
package rate

import (
	"errors"
	"fmt"
	"math"
)

// Seconds per calendar unit.
const (
	SecondsPerHour = 3600
	SecondsPerDay  = 86400
	SecondsPerWeek = 7 * SecondsPerDay
)

// ErrBadProfile reports an invalid profile construction.
var ErrBadProfile = errors.New("rate: bad profile")

// Profile is a periodic arrival-rate function: Rate(t) is the
// instantaneous arrival rate (arrivals per second) at t seconds since
// trace start. Trace start is taken to be midnight on DayOffset
// (0 = Sunday), matching the paper's midnight log harvests.
type Profile struct {
	// Base is the overall scale, in arrivals per second, applied when both
	// multipliers are 1.
	Base float64
	// Hourly holds 24 non-negative multipliers, one per hour of day.
	Hourly [24]float64
	// Daily holds 7 non-negative multipliers, one per day of week
	// (0 = Sunday).
	Daily [7]float64
	// DayOffset rotates the week so that t=0 falls on this weekday
	// (0 = Sunday). The paper's trace begins on a Sunday (Figure 4 left
	// starts at "Sun").
	DayOffset int
}

// New validates and returns a Profile.
func New(base float64, hourly [24]float64, daily [7]float64, dayOffset int) (*Profile, error) {
	if base <= 0 || math.IsNaN(base) || math.IsInf(base, 0) {
		return nil, fmt.Errorf("%w: base rate %v", ErrBadProfile, base)
	}
	for i, h := range hourly {
		if h < 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			return nil, fmt.Errorf("%w: hourly[%d] = %v", ErrBadProfile, i, h)
		}
	}
	for i, d := range daily {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("%w: daily[%d] = %v", ErrBadProfile, i, d)
		}
	}
	if dayOffset < 0 || dayOffset > 6 {
		return nil, fmt.Errorf("%w: day offset %d", ErrBadProfile, dayOffset)
	}
	p := &Profile{Base: base, Hourly: hourly, Daily: daily, DayOffset: dayOffset}
	return p, nil
}

// Rate returns the instantaneous arrival rate at t seconds since trace
// start. Negative times are clamped to 0.
func (p *Profile) Rate(t float64) float64 {
	if t < 0 {
		t = 0
	}
	sec := int64(t)
	secOfDay := sec % SecondsPerDay
	hour := int(secOfDay / SecondsPerHour)
	day := int((sec/SecondsPerDay + int64(p.DayOffset)) % 7)
	// Smooth the hourly curve by linear interpolation between hour
	// midpoints so the rate has no artificial discontinuities at hour
	// boundaries.
	frac := float64(secOfDay%SecondsPerHour)/SecondsPerHour - 0.5
	h0 := hour
	h1 := hour
	w := 0.0
	if frac >= 0 {
		h1 = (hour + 1) % 24
		w = frac
	} else {
		h1 = (hour + 23) % 24
		w = -frac
	}
	hourly := p.Hourly[h0]*(1-w) + p.Hourly[h1]*w
	return p.Base * hourly * p.Daily[day]
}

// RateFunc adapts the profile to the dist.RateFunc signature.
func (p *Profile) RateFunc() func(float64) float64 {
	return p.Rate
}

// MeanRate integrates Rate over [0, horizon) seconds (by 60-second
// midpoint quadrature, exact enough for piecewise-linear profiles) and
// returns the average arrival rate.
func (p *Profile) MeanRate(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	const step = 60.0
	var sum float64
	var n int
	for t := step / 2; t < horizon; t += step {
		sum += p.Rate(t)
		n++
	}
	if n == 0 {
		return p.Rate(horizon / 2)
	}
	return sum / float64(n)
}

// ExpectedArrivals returns the expected number of arrivals in
// [0, horizon) seconds.
func (p *Profile) ExpectedArrivals(horizon float64) float64 {
	return p.MeanRate(horizon) * horizon
}

// Scaled returns a copy of the profile with the base rate multiplied by
// factor, preserving shape. It is how examples re-scale the workload to
// different population sizes.
func (p *Profile) Scaled(factor float64) (*Profile, error) {
	return New(p.Base*factor, p.Hourly, p.Daily, p.DayOffset)
}
