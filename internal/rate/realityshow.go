package rate

// RealityShowHourly is the 24-hour multiplier curve approximating Figure 4
// (right) of the paper: a deep trough between 4am and 11am ("no interesting
// contestant activities"), a ramp through the afternoon, and an evening
// peak around 21h–23h when users flock to the site. Values are relative to
// the daily mean shape; the absolute scale comes from Profile.Base.
var RealityShowHourly = [24]float64{
	0.95, // 00h — late-evening tail
	0.70, // 01h
	0.45, // 02h
	0.28, // 03h
	0.15, // 04h — trough begins (paper: 4am–11am quiet)
	0.10, // 05h
	0.08, // 06h
	0.08, // 07h
	0.10, // 08h
	0.14, // 09h
	0.22, // 10h
	0.40, // 11h — trough ends
	0.60, // 12h
	0.72, // 13h
	0.80, // 14h
	0.85, // 15h
	0.90, // 16h
	0.95, // 17h
	1.05, // 18h — early evening rise
	1.20, // 19h
	1.35, // 20h
	1.50, // 21h — prime-time peak
	1.45, // 22h
	1.20, // 23h
}

// RealityShowDaily is the 7-day multiplier (0 = Sunday): weekends carry a
// slightly higher load than weekdays, per Figure 4 (center).
var RealityShowDaily = [7]float64{
	1.15, // Sun
	0.95, // Mon
	0.95, // Tue
	0.96, // Wed
	0.97, // Thu
	1.00, // Fri
	1.12, // Sat
}

// RealityShow returns the default profile used throughout the
// reproduction: the Figure 4 diurnal/weekly shape at the given base rate
// (arrivals per second at multiplier 1), starting on a Sunday like the
// paper's trace.
func RealityShow(base float64) (*Profile, error) {
	return New(base, RealityShowHourly, RealityShowDaily, 0)
}

// Flat returns a constant-rate profile, useful as the stationary baseline
// in ablation benches (what Figure 6 would look like without diurnal
// modulation).
func Flat(base float64) (*Profile, error) {
	var hourly [24]float64
	for i := range hourly {
		hourly[i] = 1
	}
	var daily [7]float64
	for i := range daily {
		daily[i] = 1
	}
	return New(base, hourly, daily, 0)
}

// SoccerGame returns a profile for the paper's hypothesized alternative
// application (Section 6: "the periodicity observed in our reality TV
// application is likely to be very different from that observed in live
// feeds associated with a soccer game"): near-zero background with a
// sharp two-hour event window starting at the given hour.
func SoccerGame(base float64, kickoffHour int) (*Profile, error) {
	var hourly [24]float64
	for i := range hourly {
		hourly[i] = 0.02
	}
	for h := kickoffHour - 1; h <= kickoffHour+2; h++ {
		idx := ((h % 24) + 24) % 24
		switch {
		case h == kickoffHour-1:
			hourly[idx] = 0.5 // pre-game ramp
		case h == kickoffHour || h == kickoffHour+1:
			hourly[idx] = 3.0 // the match
		default:
			hourly[idx] = 0.3 // post-game tail
		}
	}
	var daily [7]float64
	for i := range daily {
		daily[i] = 1
	}
	return New(base, hourly, daily, 0)
}
