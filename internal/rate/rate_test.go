package rate

import (
	"math"
	"testing"
	"testing/quick"
)

func flatHourly() [24]float64 {
	var h [24]float64
	for i := range h {
		h[i] = 1
	}
	return h
}

func flatDaily() [7]float64 {
	var d [7]float64
	for i := range d {
		d[i] = 1
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, flatHourly(), flatDaily(), 0); err == nil {
		t.Error("zero base: want error")
	}
	if _, err := New(-1, flatHourly(), flatDaily(), 0); err == nil {
		t.Error("negative base: want error")
	}
	h := flatHourly()
	h[3] = -0.5
	if _, err := New(1, h, flatDaily(), 0); err == nil {
		t.Error("negative hourly: want error")
	}
	h[3] = math.NaN()
	if _, err := New(1, h, flatDaily(), 0); err == nil {
		t.Error("NaN hourly: want error")
	}
	d := flatDaily()
	d[6] = math.Inf(1)
	if _, err := New(1, flatHourly(), d, 0); err == nil {
		t.Error("Inf daily: want error")
	}
	if _, err := New(1, flatHourly(), flatDaily(), 7); err == nil {
		t.Error("day offset 7: want error")
	}
	if _, err := New(1, flatHourly(), flatDaily(), -1); err == nil {
		t.Error("negative day offset: want error")
	}
}

func TestFlatProfileIsConstant(t *testing.T) {
	p, err := Flat(2.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 1800, 3600, 86400, 86400 * 3.7, 604800} {
		if got := p.Rate(tt); math.Abs(got-2.5) > 1e-12 {
			t.Errorf("Rate(%v) = %v, want 2.5", tt, got)
		}
	}
}

func TestRateNegativeTimeClamped(t *testing.T) {
	p, _ := Flat(1)
	if got := p.Rate(-100); got != 1 {
		t.Errorf("Rate(-100) = %v", got)
	}
}

func TestRealityShowShape(t *testing.T) {
	p, err := RealityShow(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-trough (6:30am Sunday) must be far below prime time (9:30pm).
	trough := p.Rate(6*SecondsPerHour + 1800)
	peak := p.Rate(21*SecondsPerHour + 1800)
	if trough >= peak/5 {
		t.Errorf("trough %v not well below peak %v", trough, peak)
	}
	// Weekend (Sunday, t=0 day) above Monday at the same hour.
	sun := p.Rate(20 * SecondsPerHour)
	mon := p.Rate(float64(SecondsPerDay) + 20*SecondsPerHour)
	if sun <= mon {
		t.Errorf("Sunday rate %v should exceed Monday rate %v", sun, mon)
	}
}

func TestRateHourlyInterpolationIsContinuous(t *testing.T) {
	p, err := RealityShow(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Sample across an hour boundary with 1-second steps: adjacent rates
	// must not jump by more than the profile slope allows.
	prev := p.Rate(10*SecondsPerHour - 30)
	for s := -29; s <= 30; s++ {
		cur := p.Rate(10*SecondsPerHour + float64(s))
		if math.Abs(cur-prev) > 0.001 {
			t.Fatalf("rate jump %v -> %v at offset %d", prev, cur, s)
		}
		prev = cur
	}
}

func TestDayOffsetRotation(t *testing.T) {
	var daily [7]float64
	daily[3] = 1 // only Wednesday is active
	p, err := New(1, flatHourly(), daily, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With offset 3, t=0 is Wednesday: rate should be 1 on day 0.
	if got := p.Rate(3600); got != 1 {
		t.Errorf("day-0 rate = %v, want 1", got)
	}
	// Day 1 is Thursday: rate 0.
	if got := p.Rate(float64(SecondsPerDay) + 3600); got != 0 {
		t.Errorf("day-1 rate = %v, want 0", got)
	}
}

func TestMeanRateFlat(t *testing.T) {
	p, _ := Flat(3)
	if got := p.MeanRate(float64(SecondsPerDay)); math.Abs(got-3) > 1e-9 {
		t.Errorf("MeanRate = %v, want 3", got)
	}
	if got := p.ExpectedArrivals(1000); math.Abs(got-3000) > 1e-6 {
		t.Errorf("ExpectedArrivals = %v, want 3000", got)
	}
	if p.MeanRate(0) != 0 {
		t.Error("MeanRate(0) should be 0")
	}
}

func TestScaledPreservesShape(t *testing.T) {
	p, err := RealityShow(2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Scaled(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 7777, 50000, 300000} {
		if math.Abs(s.Rate(tt)-3*p.Rate(tt)) > 1e-9 {
			t.Errorf("Scaled rate mismatch at %v", tt)
		}
	}
	if _, err := p.Scaled(0); err == nil {
		t.Error("scale to zero: want error")
	}
}

func TestSoccerGameProfile(t *testing.T) {
	p, err := SoccerGame(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	match := p.Rate(16*SecondsPerHour + 1800)
	background := p.Rate(4*SecondsPerHour + 1800)
	if match < 50*background {
		t.Errorf("match rate %v should dwarf background %v", match, background)
	}
}

func TestSoccerGameWrapsMidnight(t *testing.T) {
	p, err := SoccerGame(1, 23)
	if err != nil {
		t.Fatal(err)
	}
	// Kickoff 23h: the second match hour wraps to 0h.
	if p.Hourly[0] != 3.0 {
		t.Errorf("hour 0 multiplier = %v, want 3.0 (wrapped match hour)", p.Hourly[0])
	}
	if p.Hourly[22] != 0.5 {
		t.Errorf("hour 22 multiplier = %v, want 0.5 (pre-game)", p.Hourly[22])
	}
}

// Property: rate is non-negative everywhere and periodic with period one
// week for a zero day offset.
func TestRateProperties(t *testing.T) {
	p, err := RealityShow(1.5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		tt := math.Abs(math.Mod(raw, SecondsPerWeek))
		if math.IsNaN(tt) {
			return true
		}
		r := p.Rate(tt)
		rNext := p.Rate(tt + SecondsPerWeek)
		return r >= 0 && math.Abs(r-rNext) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
