package heapx

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := New(func(a, b int64) bool { return a < b })
	want := make([]int64, 2000)
	for i := range want {
		want[i] = int64(rng.Intn(500)) // plenty of duplicates
		h.Push(want[i])
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		if h.Peek() != w {
			t.Fatalf("peek %d: got %d want %d", i, h.Peek(), w)
		}
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d: got %d want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("len = %d after draining", h.Len())
	}
}

func TestHeapReplaceTopAndFixTop(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	for _, v := range []int{5, 1, 9, 3, 7} {
		h.Push(v)
	}
	h.ReplaceTop(8) // 1 -> 8
	if h.Peek() != 3 {
		t.Fatalf("peek after ReplaceTop = %d, want 3", h.Peek())
	}
	*h.Top() = 100
	h.FixTop()
	if h.Peek() != 5 {
		t.Fatalf("peek after FixTop = %d, want 5", h.Peek())
	}
	got := []int{}
	for h.Len() > 0 {
		got = append(got, h.Pop())
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("drain not sorted: %v", got)
	}
}

func TestHeapStructElements(t *testing.T) {
	type item struct {
		key, seq int64
	}
	h := New(func(a, b item) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	})
	for i, k := range []int64{3, 1, 3, 2, 1} {
		h.Push(item{key: k, seq: int64(i)})
	}
	var prev item
	for i := 0; h.Len() > 0; i++ {
		cur := h.Pop()
		if i > 0 && (cur.key < prev.key || (cur.key == prev.key && cur.seq < prev.seq)) {
			t.Fatalf("out of order: %+v after %+v", cur, prev)
		}
		prev = cur
	}
}
