// Package heapx is a minimal generic binary min-heap. The streaming
// pipeline keeps several per-event heaps on hot paths — active transfer
// end times, the log-entry reorder buffer, per-shard session cursors —
// and they all share this one implementation instead of hand-rolling
// sift loops. Unlike container/heap there is no interface indirection,
// and FixTop supports the mutate-the-minimum pattern (advance a cursor
// in place) without a pop/push pair.
package heapx

// Heap is a binary min-heap ordered by less. The zero value with a
// non-nil less (use New) is ready to use.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) Heap[T] {
	return Heap[T]{less: less}
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.items) }

// Peek returns the minimum element. It panics on an empty heap.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Push adds v.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

// Pop removes and returns the minimum element. It panics on an empty
// heap.
func (h *Heap[T]) Pop() T {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	var zero T
	h.items[n] = zero // release references held by the slot
	h.items = h.items[:n]
	h.siftDown()
	return top
}

// ReplaceTop overwrites the minimum element with v and restores heap
// order — a pop/push pair without the slide. It panics on an empty
// heap.
func (h *Heap[T]) ReplaceTop(v T) {
	h.items[0] = v
	h.siftDown()
}

// FixTop restores heap order after the caller mutated the minimum
// element in place (e.g. advanced a cursor).
func (h *Heap[T]) FixTop() { h.siftDown() }

// Top returns a pointer to the minimum element for in-place mutation;
// call FixTop afterwards. It panics on an empty heap.
func (h *Heap[T]) Top() *T { return &h.items[0] }

func (h *Heap[T]) siftDown() {
	n := len(h.items)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
