// Package topology synthesizes the client population's network placement:
// Autonomous Systems, IP addresses, and countries.
//
// The paper (Section 3.1, Figure 2) maps 364,184 client IPs onto 1,010
// ASes across 11 countries, with heavily skewed AS "popularity" (both in
// transfers and IP counts) dominated by Brazil. We reproduce that
// structure with a Zipf-weighted AS assignment: each AS draws a weight
// k^(-alpha); clients pick an AS from the weighted table, receive a
// synthetic IP inside the AS's /16-ish block, and inherit the AS's
// country.
package topology

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/dist"
)

// ErrBadModel reports invalid model parameters.
var ErrBadModel = errors.New("topology: bad model")

// Countries lists the 11 country codes of Figure 2 (right), ordered by
// trace share: Brazil dominates by orders of magnitude.
var Countries = []string{"BR", "US", "AR", "JP", "DE", "CH", "AU", "BE", "BO", "SG", "SV"}

// CountryWeights approximates Figure 2 (right): the BR bar sits near 1,
// the rest fall off over roughly five decades.
var CountryWeights = []float64{
	0.975,   // BR
	0.015,   // US
	0.005,   // AR
	0.002,   // JP
	0.0015,  // DE
	0.0006,  // CH
	0.0004,  // AU
	0.0002,  // BE
	0.0001,  // BO
	0.00005, // SG
	0.00002, // SV
}

// AS describes one synthetic Autonomous System.
type AS struct {
	Number  int    // synthetic AS number (1-based rank order)
	Country string // ISO-ish country code
	// ipBase is the top 16 bits of the AS's synthetic address block.
	ipBase uint32
}

// Model is a generated AS/country topology from which client placements
// are drawn.
type Model struct {
	ASes  []AS
	alias *dist.Alias // Zipf-weighted AS selector
}

// Placement is one client's network placement.
type Placement struct {
	ASIndex int    // index into Model.ASes
	IP      string // dotted-quad synthetic IP
	Country string
}

// Config parameterizes the topology model. The zero value is not valid;
// use DefaultConfig.
type Config struct {
	NumAS     int     // number of ASes (paper: 1,010)
	Alpha     float64 // Zipf skew of AS popularity
	Countries []string
	Weights   []float64 // relative country weights, same length as Countries
}

// DefaultConfig mirrors the paper's Table 1 / Figure 2 topology scale.
func DefaultConfig() Config {
	return Config{
		NumAS:     1010,
		Alpha:     1.1, // Figure 2's AS rank-share spans ~6 decades over 3 decades of rank
		Countries: Countries,
		Weights:   CountryWeights,
	}
}

// New builds a topology: ASes are assigned countries by weighted draw and
// popularity weights k^(-alpha) by construction rank.
func New(cfg Config, rng *rand.Rand) (*Model, error) {
	if cfg.NumAS < 1 {
		return nil, fmt.Errorf("%w: NumAS=%d", ErrBadModel, cfg.NumAS)
	}
	if cfg.Alpha <= 0 || math.IsNaN(cfg.Alpha) {
		return nil, fmt.Errorf("%w: Alpha=%v", ErrBadModel, cfg.Alpha)
	}
	if len(cfg.Countries) == 0 || len(cfg.Countries) != len(cfg.Weights) {
		return nil, fmt.Errorf("%w: %d countries vs %d weights", ErrBadModel, len(cfg.Countries), len(cfg.Weights))
	}
	countryAlias, err := dist.NewAlias(cfg.Weights)
	if err != nil {
		return nil, fmt.Errorf("topology: country weights: %w", err)
	}

	m := &Model{ASes: make([]AS, cfg.NumAS)}
	weights := make([]float64, cfg.NumAS)
	for i := 0; i < cfg.NumAS; i++ {
		country := cfg.Countries[countryAlias.DrawV2(rng)]
		// The top-ranked ASes are Brazilian in the paper's trace; force
		// rank 1-3 to BR so the country histogram keeps its shape even
		// for tiny NumAS.
		if i < 3 {
			country = cfg.Countries[0]
		}
		m.ASes[i] = AS{
			Number:  i + 1,
			Country: country,
			ipBase:  uint32(10+i%200)<<24 | uint32(rng.IntN(256))<<16,
		}
		weights[i] = math.Pow(float64(i+1), -cfg.Alpha)
	}
	alias, err := dist.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("topology: AS weights: %w", err)
	}
	m.alias = alias
	return m, nil
}

// Place draws a placement for one client: a Zipf-ranked AS, a synthetic
// IP in its block, and the AS's country.
func (m *Model) Place(rng *rand.Rand) Placement {
	i := m.alias.DrawV2(rng)
	as := m.ASes[i]
	host := rng.Uint32() & 0xFFFF // host bits within the AS /16 block
	ip := as.ipBase | host
	return Placement{
		ASIndex: i,
		IP:      formatIPv4(ip),
		Country: as.Country,
	}
}

// NumAS returns the number of ASes in the model.
func (m *Model) NumAS() int { return len(m.ASes) }

func formatIPv4(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
