package topology

import (
	"math"
	"math/rand/v2"
	"net"
	"testing"

	"repro/internal/dist"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	bad := []Config{
		{NumAS: 0, Alpha: 1, Countries: []string{"BR"}, Weights: []float64{1}},
		{NumAS: 10, Alpha: 0, Countries: []string{"BR"}, Weights: []float64{1}},
		{NumAS: 10, Alpha: 1, Countries: nil, Weights: nil},
		{NumAS: 10, Alpha: 1, Countries: []string{"BR", "US"}, Weights: []float64{1}},
		{NumAS: 10, Alpha: 1, Countries: []string{"BR"}, Weights: []float64{-1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, rng); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestDefaultConfigMatchesPaperScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumAS != 1010 {
		t.Errorf("NumAS = %d, want 1010 (Table 1)", cfg.NumAS)
	}
	if len(cfg.Countries) != 11 {
		t.Errorf("countries = %d, want 11 (Figure 2)", len(cfg.Countries))
	}
	if cfg.Countries[0] != "BR" {
		t.Error("BR must dominate")
	}
}

func TestPlaceProducesValidIPs(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	m, err := New(DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	seenCountry := map[string]bool{}
	for i := 0; i < 5000; i++ {
		p := m.Place(rng)
		if p.ASIndex < 0 || p.ASIndex >= m.NumAS() {
			t.Fatalf("AS index %d out of range", p.ASIndex)
		}
		if net.ParseIP(p.IP) == nil {
			t.Fatalf("invalid IP %q", p.IP)
		}
		if p.Country != m.ASes[p.ASIndex].Country {
			t.Fatal("placement country does not match AS country")
		}
		seenCountry[p.Country] = true
	}
	if !seenCountry["BR"] {
		t.Error("no Brazilian placements in 5000 draws")
	}
}

func TestASPopularityIsZipf(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	cfg := DefaultConfig()
	m, err := New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, m.NumAS())
	const draws = 500000
	for i := 0; i < draws; i++ {
		counts[m.Place(rng).ASIndex]++
	}
	fit, err := dist.FitZipfCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-cfg.Alpha) > 0.35 {
		t.Errorf("AS popularity alpha = %v, want ~%v", fit.Alpha, cfg.Alpha)
	}
	// Rank-1 AS should dominate: it must hold well over 10% of placements.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/draws < 0.1 {
		t.Errorf("top AS share = %v, want skewed dominance", float64(max)/draws)
	}
}

func TestBrazilDominatesTransfers(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 0))
	m, err := New(DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var br, total int
	for i := 0; i < 100000; i++ {
		if m.Place(rng).Country == "BR" {
			br++
		}
		total++
	}
	share := float64(br) / float64(total)
	if share < 0.9 {
		t.Errorf("BR share = %v, want >= 0.9 (Figure 2 right)", share)
	}
}

func TestSmallTopology(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	cfg := DefaultConfig()
	cfg.NumAS = 1
	m, err := New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Place(rng)
	if p.ASIndex != 0 {
		t.Error("single-AS model must place into AS 0")
	}
	if p.Country != "BR" {
		t.Error("top-ranked AS must be BR")
	}
}

func TestPlacementsDeterministicUnderSeed(t *testing.T) {
	build := func() []Placement {
		rng := rand.New(rand.NewPCG(77, 0))
		m, err := New(DefaultConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Placement, 100)
		for i := range out {
			out[i] = m.Place(rng)
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
