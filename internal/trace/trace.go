// Package trace holds the in-memory form of the workload: one record per
// unicast transfer, with times expressed in whole seconds since trace
// start (the logs have 1-second resolution, Section 2.3 of the paper).
//
// A Trace is what the characterization pipeline consumes; it is built
// either directly from the generator/simulator or by parsing Windows-
// Media-Server-style log files (package wmslog).
package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/wmslog"
)

// ErrBadTrace reports structural problems with trace construction.
var ErrBadTrace = errors.New("trace: bad trace")

// Transfer is one unicast live-object transfer: the result of a start/stop
// request pair by a client (Section 2.2, Transfer Layer).
type Transfer struct {
	Client    int    // dense client index (player ID)
	IP        string // client IP for this session
	AS        int    // origin autonomous system (1-based)
	Country   string
	Object    int   // live object index (0-based; the paper has 2)
	Start     int64 // seconds since trace start
	Duration  int64 // transfer length in seconds
	Bytes     int64
	Bandwidth int64 // average bits/second
	ServerCPU float64
}

// End returns Start + Duration.
func (t Transfer) End() int64 { return t.Start + t.Duration }

// Trace is a complete workload: transfers sorted by start time over a
// fixed horizon.
type Trace struct {
	Horizon   int64 // trace length in seconds (paper: 28 days)
	Transfers []Transfer

	byClient map[int][]int // client -> indices into Transfers, start-sorted
}

// New builds a trace from transfers, sorting them by start time (ties by
// client then object, for determinism).
func New(horizon int64, transfers []Transfer) (*Trace, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadTrace, horizon)
	}
	ts := make([]Transfer, len(transfers))
	copy(ts, transfers)
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Start != ts[j].Start {
			return ts[i].Start < ts[j].Start
		}
		if ts[i].Client != ts[j].Client {
			return ts[i].Client < ts[j].Client
		}
		return ts[i].Object < ts[j].Object
	})
	return &Trace{Horizon: horizon, Transfers: ts}, nil
}

// NumTransfers returns the number of transfers.
func (tr *Trace) NumTransfers() int { return len(tr.Transfers) }

// NumClients returns the number of distinct clients.
func (tr *Trace) NumClients() int { return len(tr.ByClient()) }

// ByClient returns, for each client, the indices of its transfers in
// start order. The map is computed once and cached.
func (tr *Trace) ByClient() map[int][]int {
	if tr.byClient == nil {
		m := make(map[int][]int)
		for i, t := range tr.Transfers {
			m[t.Client] = append(m[t.Client], i)
		}
		tr.byClient = m
	}
	return tr.byClient
}

// TotalBytes sums bytes served across all transfers.
func (tr *Trace) TotalBytes() int64 {
	var sum int64
	for _, t := range tr.Transfers {
		sum += t.Bytes
	}
	return sum
}

// DistinctIPs counts distinct client IPs in the trace.
func (tr *Trace) DistinctIPs() int {
	set := make(map[string]struct{})
	for _, t := range tr.Transfers {
		set[t.IP] = struct{}{}
	}
	return len(set)
}

// DistinctAS counts distinct origin ASes.
func (tr *Trace) DistinctAS() int {
	set := make(map[int]struct{})
	for _, t := range tr.Transfers {
		set[t.AS] = struct{}{}
	}
	return len(set)
}

// DistinctObjects counts distinct live objects.
func (tr *Trace) DistinctObjects() int {
	set := make(map[int]struct{})
	for _, t := range tr.Transfers {
		set[t.Object] = struct{}{}
	}
	return len(set)
}

// FromEntries converts parsed log entries into a Trace. epoch is the
// wall-clock instant of trace second 0; horizon is the trace length in
// seconds. Client and object identities are densified: player IDs and URI
// stems are mapped to consecutive integers in first-seen order.
//
// Entries are timestamped at transfer end (that is when the server logs
// them), so Start = timestamp - duration; entries whose computed interval
// escapes [0, horizon] are kept here and removed by Sanitize, mirroring
// the paper's two-step handling.
func FromEntries(entries []*wmslog.Entry, epoch time.Time, horizon int64) (*Trace, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadTrace, horizon)
	}
	clients := make(map[string]int)
	objects := make(map[string]int)
	transfers := make([]Transfer, 0, len(entries))
	for _, e := range entries {
		cid, ok := clients[e.PlayerID]
		if !ok {
			cid = len(clients)
			clients[e.PlayerID] = cid
		}
		oid, ok := objects[e.URIStem]
		if !ok {
			oid = len(objects)
			objects[e.URIStem] = oid
		}
		end := int64(e.Timestamp.Sub(epoch) / time.Second)
		transfers = append(transfers, Transfer{
			Client:    cid,
			IP:        e.ClientIP,
			AS:        e.ASNumber,
			Country:   e.Country,
			Object:    oid,
			Start:     end - e.Duration,
			Duration:  e.Duration,
			Bytes:     e.Bytes,
			Bandwidth: e.AvgBandwidth,
			ServerCPU: e.ServerCPU,
		})
	}
	return New(horizon, transfers)
}
