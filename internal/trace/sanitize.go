package trace

import (
	"fmt"
)

// SanitizeReport records what sanitization removed and why, echoing
// Section 2.4 of the paper.
type SanitizeReport struct {
	Input           int // transfers before sanitization
	Kept            int
	DroppedSpanning int // duration exceeds the trace period (multi-harvest artifacts)
	DroppedOutside  int // interval escapes [0, horizon]
	DroppedNegative int // negative start or duration (corrupt arithmetic)
}

// String implements fmt.Stringer.
func (r SanitizeReport) String() string {
	return fmt.Sprintf("sanitize: kept %d/%d (dropped %d spanning, %d outside, %d negative)",
		r.Kept, r.Input, r.DroppedSpanning, r.DroppedOutside, r.DroppedNegative)
}

// Sanitize returns a new trace with problem entries removed:
//
//   - transfers whose duration exceeds the trace period — the paper found
//     "entries identified request/response activities that span durations
//     longer than the 28-day period of the trace", attributed them to
//     accesses spanning multiple log harvests, and excluded them;
//   - transfers whose [start, end] interval escapes [0, horizon];
//   - transfers with negative start or duration.
func (tr *Trace) Sanitize() (*Trace, SanitizeReport) {
	report := SanitizeReport{Input: len(tr.Transfers)}
	kept := make([]Transfer, 0, len(tr.Transfers))
	for _, t := range tr.Transfers {
		switch {
		case t.Duration < 0:
			report.DroppedNegative++
		case t.Duration > tr.Horizon:
			report.DroppedSpanning++
		case t.Start < 0 || t.End() > tr.Horizon:
			report.DroppedOutside++
		default:
			kept = append(kept, t)
		}
	}
	report.Kept = len(kept)
	out := &Trace{Horizon: tr.Horizon, Transfers: kept}
	return out, report
}

// OverloadAudit is the server-load check of Section 2.4: the fraction of
// time (in 1-second bins spanned by at least one transfer) and the
// fraction of transfers for which server CPU utilization stayed below the
// threshold. The paper reports both above 99% at a 10% threshold, which
// justifies treating the characterization as load-unbiased.
type OverloadAudit struct {
	Threshold         float64
	TimeBelowFrac     float64 // fraction of active seconds below threshold
	TransferBelowFrac float64 // fraction of transfers below threshold
}

// AuditServerLoad computes the overload audit at the given CPU threshold
// (percent). Each transfer contributes its logged CPU reading to every
// second it spans (a faithful stand-in for the paper's per-second
// averaging of CPU samples).
func (tr *Trace) AuditServerLoad(threshold float64) OverloadAudit {
	audit := OverloadAudit{Threshold: threshold}
	if len(tr.Transfers) == 0 {
		audit.TimeBelowFrac = 1
		audit.TransferBelowFrac = 1
		return audit
	}
	var below int
	for _, t := range tr.Transfers {
		if t.ServerCPU < threshold {
			below++
		}
	}
	audit.TransferBelowFrac = float64(below) / float64(len(tr.Transfers))

	// Per-second audit via a sweep over transfer intervals: accumulate
	// (sum, count) per second only for seconds with activity. To bound
	// memory for month-long traces we bin at 1-second resolution using a
	// difference-array over the horizon.
	if tr.Horizon <= 0 {
		audit.TimeBelowFrac = 1
		return audit
	}
	sum := make([]float64, tr.Horizon+1)
	cnt := make([]int32, tr.Horizon+1)
	for _, t := range tr.Transfers {
		lo, hi := t.Start, t.End()
		if lo < 0 {
			lo = 0
		}
		if hi > tr.Horizon {
			hi = tr.Horizon
		}
		if hi <= lo {
			hi = lo + 1 // zero-length transfers still occupy their second
			if hi > tr.Horizon {
				continue
			}
		}
		sum[lo] += t.ServerCPU
		sum[hi] -= t.ServerCPU
		cnt[lo]++
		cnt[hi]--
	}
	var active, belowTime int64
	var runSum float64
	var runCnt int32
	for s := int64(0); s < tr.Horizon; s++ {
		runSum += sum[s]
		runCnt += cnt[s]
		if runCnt > 0 {
			active++
			if runSum/float64(runCnt) < threshold {
				belowTime++
			}
		}
	}
	if active == 0 {
		audit.TimeBelowFrac = 1
	} else {
		audit.TimeBelowFrac = float64(belowTime) / float64(active)
	}
	return audit
}
