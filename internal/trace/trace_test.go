package trace

import (
	"testing"
	"time"

	"repro/internal/wmslog"
)

func mkTransfer(client int, start, dur int64) Transfer {
	return Transfer{
		Client:   client,
		IP:       "10.0.0.1",
		AS:       1,
		Country:  "BR",
		Object:   0,
		Start:    start,
		Duration: dur,
		Bytes:    dur * 4000,
	}
}

func TestNewSortsTransfers(t *testing.T) {
	tr, err := New(1000, []Transfer{
		mkTransfer(2, 500, 10),
		mkTransfer(1, 100, 10),
		mkTransfer(3, 100, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Transfers[0].Start != 100 || tr.Transfers[0].Client != 1 {
		t.Errorf("first transfer = %+v", tr.Transfers[0])
	}
	if tr.Transfers[1].Client != 3 {
		t.Errorf("tie broken wrong: %+v", tr.Transfers[1])
	}
	if tr.Transfers[2].Start != 500 {
		t.Errorf("last transfer = %+v", tr.Transfers[2])
	}
}

func TestNewRejectsBadHorizon(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("zero horizon: want error")
	}
	if _, err := New(-5, nil); err == nil {
		t.Error("negative horizon: want error")
	}
}

func TestByClientAndCounts(t *testing.T) {
	tr, err := New(1000, []Transfer{
		mkTransfer(1, 100, 10),
		mkTransfer(2, 150, 10),
		mkTransfer(1, 300, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumClients() != 2 || tr.NumTransfers() != 3 {
		t.Errorf("clients=%d transfers=%d", tr.NumClients(), tr.NumTransfers())
	}
	byC := tr.ByClient()
	if len(byC[1]) != 2 || len(byC[2]) != 1 {
		t.Errorf("ByClient = %v", byC)
	}
	// Indices must reference client-1 transfers in start order.
	if tr.Transfers[byC[1][0]].Start != 100 || tr.Transfers[byC[1][1]].Start != 300 {
		t.Error("ByClient indices out of order")
	}
}

func TestAggregates(t *testing.T) {
	a := mkTransfer(1, 0, 10)
	b := mkTransfer(2, 5, 10)
	b.IP = "10.0.0.2"
	b.AS = 2
	b.Object = 1
	tr, err := New(100, []Transfer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.TotalBytes(); got != 80000 {
		t.Errorf("TotalBytes = %d", got)
	}
	if tr.DistinctIPs() != 2 || tr.DistinctAS() != 2 || tr.DistinctObjects() != 2 {
		t.Errorf("distinct: ips=%d as=%d obj=%d", tr.DistinctIPs(), tr.DistinctAS(), tr.DistinctObjects())
	}
}

func TestSanitize(t *testing.T) {
	horizon := int64(1000)
	transfers := []Transfer{
		mkTransfer(1, 100, 50),  // kept
		mkTransfer(2, 0, 1000),  // kept (exactly fills horizon)
		mkTransfer(3, 10, 2000), // spanning: duration > horizon
		mkTransfer(4, 990, 50),  // outside: end > horizon
		mkTransfer(5, -10, 20),  // outside: start < 0
		{Client: 6, Start: 5, Duration: -3, IP: "x", Country: "BR"}, // negative
	}
	tr, err := New(horizon, transfers)
	if err != nil {
		t.Fatal(err)
	}
	clean, report := tr.Sanitize()
	if report.Input != 6 || report.Kept != 2 {
		t.Errorf("report = %+v", report)
	}
	if report.DroppedSpanning != 1 || report.DroppedOutside != 2 || report.DroppedNegative != 1 {
		t.Errorf("report = %+v", report)
	}
	if clean.NumTransfers() != 2 {
		t.Errorf("clean has %d transfers", clean.NumTransfers())
	}
	for _, tt := range clean.Transfers {
		if tt.Start < 0 || tt.End() > horizon {
			t.Errorf("unsanitized transfer survived: %+v", tt)
		}
	}
}

func TestSanitizeReportString(t *testing.T) {
	r := SanitizeReport{Input: 10, Kept: 7, DroppedSpanning: 1, DroppedOutside: 2}
	s := r.String()
	if s == "" {
		t.Error("empty report string")
	}
}

func TestAuditServerLoadAllLow(t *testing.T) {
	transfers := make([]Transfer, 100)
	for i := range transfers {
		tt := mkTransfer(i, int64(i*10), 20)
		tt.ServerCPU = 2.0
		transfers[i] = tt
	}
	tr, err := New(2000, transfers)
	if err != nil {
		t.Fatal(err)
	}
	audit := tr.AuditServerLoad(10)
	if audit.TransferBelowFrac != 1 {
		t.Errorf("TransferBelowFrac = %v", audit.TransferBelowFrac)
	}
	if audit.TimeBelowFrac != 1 {
		t.Errorf("TimeBelowFrac = %v", audit.TimeBelowFrac)
	}
}

func TestAuditServerLoadDetectsOverload(t *testing.T) {
	low := mkTransfer(1, 0, 100)
	low.ServerCPU = 1
	high := mkTransfer(2, 200, 100)
	high.ServerCPU = 90
	tr, err := New(300, []Transfer{low, high})
	if err != nil {
		t.Fatal(err)
	}
	audit := tr.AuditServerLoad(10)
	if audit.TransferBelowFrac != 0.5 {
		t.Errorf("TransferBelowFrac = %v, want 0.5", audit.TransferBelowFrac)
	}
	// 100 low seconds + 100 high seconds active.
	if audit.TimeBelowFrac != 0.5 {
		t.Errorf("TimeBelowFrac = %v, want 0.5", audit.TimeBelowFrac)
	}
}

func TestAuditServerLoadEmptyTrace(t *testing.T) {
	tr, err := New(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	audit := tr.AuditServerLoad(10)
	if audit.TimeBelowFrac != 1 || audit.TransferBelowFrac != 1 {
		t.Errorf("empty audit = %+v", audit)
	}
}

func TestAuditZeroLengthTransfer(t *testing.T) {
	z := mkTransfer(1, 50, 0)
	z.ServerCPU = 50
	tr, err := New(100, []Transfer{z})
	if err != nil {
		t.Fatal(err)
	}
	audit := tr.AuditServerLoad(10)
	// The zero-length transfer occupies one second at CPU 50.
	if audit.TimeBelowFrac != 0 {
		t.Errorf("TimeBelowFrac = %v, want 0", audit.TimeBelowFrac)
	}
}

func TestFromEntries(t *testing.T) {
	epoch := wmslog.TraceEpoch
	entries := []*wmslog.Entry{
		{
			Timestamp: epoch.Add(200 * time.Second), ClientIP: "1.1.1.1",
			PlayerID: "alpha", URIStem: "/live/feed1", Duration: 50,
			Bytes: 1000, AvgBandwidth: 160, ServerCPU: 1, Status: 200,
			ASNumber: 3, Country: "BR",
		},
		{
			Timestamp: epoch.Add(400 * time.Second), ClientIP: "2.2.2.2",
			PlayerID: "beta", URIStem: "/live/feed2", Duration: 100,
			Bytes: 2000, AvgBandwidth: 160, ServerCPU: 2, Status: 200,
			ASNumber: 4, Country: "US",
		},
		{
			Timestamp: epoch.Add(500 * time.Second), ClientIP: "1.1.1.1",
			PlayerID: "alpha", URIStem: "/live/feed2", Duration: 10,
			Bytes: 50, AvgBandwidth: 40, ServerCPU: 1, Status: 200,
			ASNumber: 3, Country: "BR",
		},
	}
	tr, err := FromEntries(entries, epoch, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTransfers() != 3 || tr.NumClients() != 2 || tr.DistinctObjects() != 2 {
		t.Fatalf("trace: %d transfers, %d clients, %d objects",
			tr.NumTransfers(), tr.NumClients(), tr.DistinctObjects())
	}
	// First entry: end=200, duration=50 -> start=150.
	if tr.Transfers[0].Start != 150 || tr.Transfers[0].Duration != 50 {
		t.Errorf("first transfer = %+v", tr.Transfers[0])
	}
	// Same player ID maps to the same dense client.
	if tr.Transfers[0].Client != tr.Transfers[2].Client {
		t.Error("player 'alpha' split across client IDs")
	}
	if _, err := FromEntries(nil, epoch, 0); err == nil {
		t.Error("zero horizon: want error")
	}
}
