package calibrate

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/gismo"
	"repro/internal/simulate"
)

// buildSource generates a workload from a known model, serves it, and
// characterizes the result — the ground truth the round-trip tests fit
// against.
func buildSource(t *testing.T) (*core.Characterization, gismo.Model) {
	t.Helper()
	truth, err := gismo.Scaled(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gismo.GenerateSeeded(truth, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(w, simulate.DefaultConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := res.Trace.Sanitize()
	char, err := core.Characterize(clean, 1500, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	return char, truth
}

// within asserts |got - want| / |want| <= tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > tol {
		t.Errorf("%s = %.4f, want %.4f within %.0f%% (off by %.1f%%)",
			name, got, want, tol*100, rel*100)
	}
}

// TestFitRecoversKnownParameters is the self-calibration round trip:
// parameters fitted from a synthetic trace must land within documented
// tolerance of the generating model. Tolerances reflect estimation
// noise at this test's scale (a few thousand transfers), not fit bias:
// the lognormal laws recover tightly, the Zipf exponents carry the
// finite-sample spread of log-log regression on a few hundred ranks,
// and the interest alpha is the loosest because light clients dominate
// the rank tail (the paper fits it over 691,889 clients; this trace has
// under a thousand).
func TestFitRecoversKnownParameters(t *testing.T) {
	char, truth := buildSource(t)
	m, rep := Fit(char)
	if err := m.Validate(); err != nil {
		t.Fatalf("fitted model invalid: %v", err)
	}

	if m.Horizon != truth.Horizon {
		t.Errorf("horizon = %d, want %d", m.Horizon, truth.Horizon)
	}
	if m.NumClients != char.Basic.Users {
		t.Errorf("clients = %d, want %d", m.NumClients, char.Basic.Users)
	}
	if m.NumObjects != truth.NumObjects {
		t.Errorf("objects = %d, want %d", m.NumObjects, truth.NumObjects)
	}

	within(t, "intra-session gap mu", m.IntraSessionGap.Mu, truth.IntraSessionGap.Mu, 0.10)
	within(t, "intra-session gap sigma", m.IntraSessionGap.Sigma, truth.IntraSessionGap.Sigma, 0.25)
	within(t, "transfer length mu", m.TransferLength.Mu, truth.TransferLength.Mu, 0.10)
	within(t, "transfer length sigma", m.TransferLength.Sigma, truth.TransferLength.Sigma, 0.10)
	within(t, "transfers/session alpha", m.TransfersPerSession.Alpha, truth.TransfersPerSession.Alpha, 0.30)
	within(t, "feed preference", m.FeedPreference, truth.FeedPreference, 0.15)
	if m.Interest.Alpha <= 0 || m.Interest.Alpha > 2*truth.Interest.Alpha {
		t.Errorf("interest alpha = %.4f, want in (0, %.4f]", m.Interest.Alpha, 2*truth.Interest.Alpha)
	}

	// The arrival-rate calibration is exact by construction: the fitted
	// process's expected session count equals the observed one.
	within(t, "expected sessions", rep.ExpectedSessions, float64(rep.SourceSessions), 0.01)
	if rep.ProfileDays != 3 {
		t.Errorf("profile days = %d, want 3", rep.ProfileDays)
	}
}

// TestTwinPassesValidation closes the loop: a twin regenerated from the
// fitted model must be statistically indistinguishable from its source
// at alpha 0.01 on every tested layer.
func TestTwinPassesValidation(t *testing.T) {
	char, _ := buildSource(t)
	m, _ := Fit(char)
	twin, err := Twin(m, 11, 1500)
	if err != nil {
		t.Fatal(err)
	}
	rep := Validate(char, twin)
	if rejects := rep.Rejections(); len(rejects) > 0 {
		for _, r := range rejects {
			t.Errorf("KS rejects: %s", r)
		}
	}
	var ran int
	for _, c := range rep.Checks {
		if !c.Skipped {
			ran++
		}
	}
	if ran < 6 {
		t.Errorf("only %d KS tests ran, want >= 6", ran)
	}
	if len(rep.Comparison) == 0 {
		t.Error("empty comparison table")
	}
}

// TestTwinDeterministic: equal (model, seed) pairs twin identically.
func TestTwinDeterministic(t *testing.T) {
	char, _ := buildSource(t)
	m, _ := Fit(char)
	a, err := Twin(m, 3, 1500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Twin(m, 3, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if a.Basic != b.Basic {
		t.Errorf("twin basics differ: %+v vs %+v", a.Basic, b.Basic)
	}
	if a.Poisson.KS != b.Poisson.KS {
		t.Errorf("replica KS differs: %v vs %v", a.Poisson.KS, b.Poisson.KS)
	}
}

// TestValidationReportGolden pins the rendered fitted-vs-source report.
// The whole loop is a pure function of the seeds, so the bytes are
// stable; regenerate with UPDATE_GOLDEN=1 go test ./internal/calibrate.
func TestValidationReportGolden(t *testing.T) {
	char, _ := buildSource(t)
	m, _ := Fit(char)
	twin, err := Twin(m, 11, 1500)
	if err != nil {
		t.Fatal(err)
	}
	rep := Validate(char, twin)
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "validation_report.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.String(), want)
	}
}

// TestFitDegenerateFallbacks: an impoverished characterization (empty
// layers, no arrival series) still yields a model that validates, with
// every fallback recorded in the notes.
func TestFitDegenerateFallbacks(t *testing.T) {
	char := &core.Characterization{
		Horizon:  86400,
		Client:   &analyze.ClientLayer{},
		Session:  &analyze.SessionLayer{},
		Transfer: &analyze.TransferLayer{},
		Divers:   &analyze.Diversity{},
	}
	m, rep := Fit(char)
	if err := m.Validate(); err != nil {
		t.Fatalf("degenerate fit does not validate: %v", err)
	}
	paper := gismo.Default()
	if m.Interest.Alpha != paper.Interest.Alpha {
		t.Errorf("interest alpha = %v, want paper default %v", m.Interest.Alpha, paper.Interest.Alpha)
	}
	if m.IntraSessionGap != paper.IntraSessionGap {
		t.Errorf("intra-session gap = %+v, want paper default", m.IntraSessionGap)
	}
	if len(rep.Notes) < 5 {
		t.Errorf("only %d notes for a fully degenerate fit: %v", len(rep.Notes), rep.Notes)
	}
}
