package calibrate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gismo"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// Twin regenerates a synthetic workload from a fitted model and runs it
// through the same serve → sanitize → characterize pipeline the source
// went through, so Validate compares like with like. Generation rides
// the sharded event stream and the sharded simulator; the realization
// is a pure function of (model, seed) at any shard count.
func Twin(m gismo.Model, seed int64, timeout int64) (*core.Characterization, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	shards := gismo.DefaultShards()
	ws, err := gismo.NewStreamSeeded(m, seed, shards)
	if err != nil {
		return nil, fmt.Errorf("calibrate: twin generate: %w", err)
	}
	defer ws.Close()

	var transfers []trace.Transfer
	_, err = simulate.RunStreamSharded(ws, ws.Population(), m.Horizon, simulate.DefaultConfig(), uint64(seed), simulate.DefaultServeLanes(), simulate.StreamSinks{
		Transfer: func(t trace.Transfer) error {
			transfers = append(transfers, t)
			return nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("calibrate: twin serve: %w", err)
	}
	tr, err := trace.New(m.Horizon, transfers)
	if err != nil {
		return nil, fmt.Errorf("calibrate: twin trace: %w", err)
	}
	clean, _ := tr.Sanitize()
	char, err := core.Characterize(clean, timeout, nil, seed)
	if err != nil {
		return nil, fmt.Errorf("calibrate: twin characterize: %w", err)
	}
	return char, nil
}
