// Package calibrate closes the paper's digital-twin loop: it maps a
// hierarchical characterization (core.Characterize) back onto the
// Table 2 parameter set of the extended GISMO generator, regenerates a
// synthetic twin workload from the fitted model, and validates the twin
// against its source layer by layer — the observe → fit → generate →
// validate cycle Veloso et al. close with GISMO in Section 6.
//
// The package is in lsmvet's determinism scope: Fit, Twin and Validate
// are pure functions of their inputs (plus an explicit seed), so a
// calibration is exactly reproducible.
package calibrate

import (
	"fmt"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gismo"
	"repro/internal/rate"
	"repro/internal/topology"
)

// binsPerHour is how many of the characterization's 900-second arrival
// bins make one hour of the diurnal profile.
const binsPerHour = 3600 / int(analyze.TemporalBin)

// binsPerDay is the number of arrival bins per day.
const binsPerDay = 86400 / int(analyze.TemporalBin)

// FitReport carries the fit's diagnostics: where each parameter came
// from, which fell back to the paper's defaults, and how well the
// recovered arrival model matches the source's session count.
type FitReport struct {
	// SourceSessions is the session count the arrival rate was
	// calibrated against.
	SourceSessions int
	// ExpectedSessions is the fitted model's expected session count
	// over the horizon — calibration makes this match SourceSessions.
	ExpectedSessions float64
	// InterestR2 and PerSessionR2 are the R² of the two Zipf log-log
	// regressions backing the interest and transfers-per-session laws.
	InterestR2   float64
	PerSessionR2 float64
	// ProfileDays is the number of complete days of arrivals that fed
	// the daily (weekly) profile fold.
	ProfileDays int
	// Notes records fit decisions: defaulted parameters, degenerate
	// inputs, structure absorbed into the empirical profile.
	Notes []string
}

func (r *FitReport) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fit maps a characterization onto the Table 2 parameter set using the
// same estimators the characterization itself ran (dist.FitLognormal,
// dist.FitZipfCounts, dist.FitTail), plus arrival-rate and profile
// recovery from the binned arrival series. It never fails: a degenerate
// layer falls back to the paper's published value for that parameter,
// and every fallback is recorded in the report, so the returned model
// always validates.
//
// Day-to-day audience variability, the premiere ramp-up and in-show
// event bursts are not refit as free parameters: their realized effect
// on the source trace is already baked into the empirical rate profile
// the fit recovers (the same smoothing the paper's footnote 6 applies
// to Figure 6), so the model carries them as zero.
func Fit(char *core.Characterization) (gismo.Model, FitReport) {
	var rep FitReport
	paper := gismo.Default()

	m := gismo.Model{
		Horizon:       char.Horizon,
		PoissonWindow: float64(analyze.TemporalBin),
		Topology:      topology.DefaultConfig(),
	}
	if m.Horizon <= 0 {
		m.Horizon = 86400
		rep.notef("horizon %d invalid; defaulted to 1 day", char.Horizon)
	}

	m.NumClients = char.Basic.Users
	if m.NumClients < 1 {
		m.NumClients = 1
		rep.notef("no clients observed; population defaulted to 1")
	}
	m.NumObjects = char.Basic.Objects
	if m.NumObjects < 1 {
		m.NumObjects = 1
		rep.notef("no objects observed; defaulted to 1")
	}

	// Client layer: the Zipf interest profile over session counts
	// (Figure 7 right) — the law the generator binds arrivals to
	// clients with.
	m.Interest = gismo.ZipfParams{Alpha: char.Client.InterestSessions.Alpha, N: m.NumClients}
	rep.InterestR2 = char.Client.InterestSessions.R2
	if m.Interest.Alpha <= 0 {
		m.Interest.Alpha = paper.Interest.Alpha
		rep.notef("interest Zipf degenerate; defaulted to paper alpha %.4f", paper.Interest.Alpha)
	}

	// Session layer: transfers per session (Figure 13) and
	// intra-session gaps (Figure 14).
	maxPerSession := 0
	for _, c := range char.Session.TransfersPerSession {
		if c > maxPerSession {
			maxPerSession = c
		}
	}
	m.TransfersPerSession = gismo.ZipfParams{Alpha: char.Session.PerSessionFit.Alpha, N: maxPerSession}
	rep.PerSessionR2 = char.Session.PerSessionFit.R2
	if m.TransfersPerSession.Alpha <= 0 {
		m.TransfersPerSession.Alpha = paper.TransfersPerSession.Alpha
		rep.notef("transfers-per-session Zipf degenerate; defaulted to paper alpha %.4f", paper.TransfersPerSession.Alpha)
	}
	if m.TransfersPerSession.N < 1 {
		m.TransfersPerSession.N = paper.TransfersPerSession.N
		rep.notef("no per-session counts; support defaulted to %d", paper.TransfersPerSession.N)
	}
	// The rank-plot regression lets the sparse tail drag the exponent;
	// since this law feeds the generator directly, refine it by maximum
	// likelihood so the twin's count distribution matches the source's.
	if alpha, err := dist.FitZipfMLE(char.Session.TransfersPerSession, m.TransfersPerSession.N); err == nil {
		m.TransfersPerSession.Alpha = alpha
	}
	m.IntraSessionGap = gismo.LognormalParams{Mu: char.Session.IntraFit.Mu, Sigma: char.Session.IntraFit.Sigma}
	if m.IntraSessionGap.Sigma <= 0 {
		m.IntraSessionGap = paper.IntraSessionGap
		rep.notef("intra-session gap fit degenerate; defaulted to paper (mu %.3f, sigma %.3f)",
			m.IntraSessionGap.Mu, m.IntraSessionGap.Sigma)
	}

	// Transfer layer: lognormal lengths (Figure 19).
	m.TransferLength = gismo.LognormalParams{Mu: char.Transfer.LengthFit.Mu, Sigma: char.Transfer.LengthFit.Sigma}
	if m.TransferLength.Sigma <= 0 {
		m.TransferLength = paper.TransferLength
		rep.notef("transfer length fit degenerate; defaulted to paper (mu %.3f, sigma %.3f)",
			m.TransferLength.Mu, m.TransferLength.Sigma)
	}

	// Feed preference: the dominant object's observed transfer share.
	m.FeedPreference = 1
	if len(char.Divers.ObjectShare) > 0 {
		m.FeedPreference = char.Divers.ObjectShare[0]
	} else {
		rep.notef("no object shares observed; feed preference defaulted to 1")
	}

	// Arrival process: recover the empirical diurnal/weekly profile from
	// the binned arrival series, then set the base rate so the model's
	// expected session count equals the observed one.
	hourly, daily, days := foldProfile(char, &rep)
	rep.ProfileDays = days
	m.Profile = nil
	if p, err := rate.New(1, hourly, daily, 0); err == nil {
		m.Profile = p
	} else {
		rep.notef("recovered profile invalid (%v); using built-in reality-show profile", err)
	}

	sessions := char.Basic.Sessions
	rep.SourceSessions = sessions
	m.BaseArrivalRate = calibrateBase(&m, sessions, &rep)
	if m.Profile != nil {
		m.Profile.Base = m.BaseArrivalRate
	}
	if exp, err := gismo.ExpectedSessions(m); err == nil {
		rep.ExpectedSessions = exp
	}

	rep.notef("day variability, ramp-up and event bursts carried as zero: their realized effect is absorbed into the empirical rate profile")
	return m, rep
}

// foldProfile reads the 24 hourly and 7 daily rate multipliers off the
// binned arrival series, each normalized to mean 1 (a flat fold when
// the series is missing or empty).
func foldProfile(char *core.Characterization, rep *FitReport) (hourly [24]float64, daily [7]float64, days int) {
	for i := range hourly {
		hourly[i] = 1
	}
	for i := range daily {
		daily[i] = 1
	}
	bins := char.ArrivalBins
	if len(bins.Values) == 0 || bins.Width != analyze.TemporalBin {
		rep.notef("no binned arrival series; profile left flat")
		return hourly, daily, 0
	}

	// Hourly: fold onto the day, then average the bins of each hour.
	if fold, err := bins.FoldModulo(86400); err == nil && len(fold.Values) == binsPerDay {
		var vals [24]float64
		var mean float64
		for h := 0; h < 24; h++ {
			var sum float64
			for b := 0; b < binsPerHour; b++ {
				sum += fold.Values[h*binsPerHour+b]
			}
			vals[h] = sum / float64(binsPerHour)
			mean += vals[h]
		}
		mean /= 24
		if mean > 0 {
			for h := range vals {
				hourly[h] = vals[h] / mean
			}
		}
	}

	// Daily: average each complete day's arrival rate by day-of-week.
	days = len(bins.Values) / binsPerDay
	var sums [7]float64
	var counts [7]int
	for d := 0; d < days; d++ {
		var sum float64
		for b := 0; b < binsPerDay; b++ {
			sum += bins.Values[d*binsPerDay+b]
		}
		sums[d%7] += sum
		counts[d%7]++
	}
	var mean float64
	var seen int
	var vals [7]float64
	for i := range sums {
		if counts[i] > 0 {
			vals[i] = sums[i] / float64(counts[i])
			mean += vals[i]
			seen++
		}
	}
	if seen > 0 {
		mean /= float64(seen)
	}
	if mean > 0 {
		for i := range vals {
			if counts[i] > 0 {
				daily[i] = vals[i] / mean
			}
		}
	}
	if days < 7 {
		rep.notef("horizon covers %d complete day(s); weekly profile flat beyond them", days)
	}
	return hourly, daily, days
}

// calibrateBase sets the base arrival rate so the piecewise-Poisson
// process's expected session count over the horizon equals the observed
// one. Expected arrivals scale linearly in the base rate, so one
// evaluation at base 1 suffices.
func calibrateBase(m *gismo.Model, sessions int, rep *FitReport) float64 {
	fallback := float64(sessions) / float64(m.Horizon)
	if sessions < 1 {
		rep.notef("no sessions observed; base rate defaulted to 1/horizon")
		return 1 / float64(m.Horizon)
	}
	if m.Profile == nil {
		return fallback
	}
	probe := *m.Profile
	probe.Base = 1
	expected := probe.ExpectedArrivals(float64(m.Horizon))
	if expected <= 0 {
		rep.notef("profile integrates to zero; base rate defaulted to sessions/horizon")
		return fallback
	}
	return float64(sessions) / expected
}
