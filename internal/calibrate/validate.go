package calibrate

import (
	"fmt"
	"io"
	"math"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/report"
)

// DefaultAlpha is the significance level of the per-layer KS tests. At
// trace-scale sample sizes the KS test has power to reject on tiny
// distributional differences, so the loop tests at 1% rather than 5%.
const DefaultAlpha = 0.01

// KSCheck is one two-sample Kolmogorov–Smirnov test between a source
// layer and its twin.
type KSCheck struct {
	// Layer names the compared quantity, e.g. "session/intra-gaps".
	Layer string
	// D is the two-sample KS statistic.
	D float64
	// Critical is the rejection threshold at the report's alpha:
	// c(alpha) * sqrt((n+m)/(n*m)).
	Critical float64
	// N and M are the source and twin sample sizes.
	N, M int
	// Reject is D > Critical.
	Reject bool
	// Skipped marks a layer with an empty sample on either side; the
	// test carries no verdict.
	Skipped bool
}

// String renders the check as one report line.
func (k KSCheck) String() string {
	if k.Skipped {
		return fmt.Sprintf("%-28s skipped (n=%d, m=%d)", k.Layer, k.N, k.M)
	}
	verdict := "ok"
	if k.Reject {
		verdict = "REJECT"
	}
	return fmt.Sprintf("%-28s D=%.4f critical=%.4f (n=%d, m=%d) %s", k.Layer, k.D, k.Critical, k.N, k.M, verdict)
}

// ValidationReport is the layer-by-layer verdict on a twin: KS tests
// over every fitted marginal plus a Table-2-style source-versus-twin
// comparison of the recovered parameters and headline counts.
type ValidationReport struct {
	// Alpha is the significance level the critical values are at.
	Alpha float64
	// Checks holds one KS test per compared layer.
	Checks []KSCheck
	// Comparison holds the fitted-versus-source scalar rows (Paper
	// field = source, Measured field = twin).
	Comparison []report.Comparison
}

// Rejections returns the checks whose KS test rejected.
func (r *ValidationReport) Rejections() []KSCheck {
	var out []KSCheck
	for _, c := range r.Checks {
		if c.Reject {
			out = append(out, c)
		}
	}
	return out
}

// Render writes the full report: the KS table then the comparison
// table.
func (r *ValidationReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Two-sample KS tests (alpha %.2g):\n", r.Alpha); err != nil {
		return err
	}
	for _, c := range r.Checks {
		if _, err := fmt.Fprintf(w, "  %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return report.ComparisonTable(w, "Source vs twin (Table 2 recovery):", "Source", "Twin", r.Comparison)
}

// ksCritical is the large-sample two-sample KS rejection threshold at
// significance alpha: c(alpha) * sqrt((n+m)/(n*m)).
func ksCritical(alpha float64, n, m int) float64 {
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}

// check runs one two-sample KS test, skipping empty sides.
func check(layer string, alpha float64, src, twin []float64) KSCheck {
	k := KSCheck{Layer: layer, N: len(src), M: len(twin)}
	if len(src) == 0 || len(twin) == 0 {
		k.Skipped = true
		return k
	}
	d, err := dist.KolmogorovSmirnov2(src, twin)
	if err != nil {
		k.Skipped = true
		return k
	}
	k.D = d
	k.Critical = ksCritical(alpha, k.N, k.M)
	k.Reject = d > k.Critical
	return k
}

// Validate compares a twin characterization against its source layer by
// layer: a two-sample KS test per fitted marginal (client
// interarrivals, session ON/OFF times, transfers per session,
// intra-session gaps, transfer lengths and interarrivals), plus
// source-versus-twin comparison rows over the recovered Table 2
// parameters and the headline counts. Interarrival-style quantities
// compare in the paper's ⌊t+1⌋ display form, matching how their fits
// were estimated.
func Validate(source, twin *core.Characterization) ValidationReport {
	rep := ValidationReport{Alpha: DefaultAlpha}

	rep.Checks = append(rep.Checks,
		check("client/interarrivals", rep.Alpha,
			analyze.InterarrivalDisplay(source.Client.Interarrivals),
			analyze.InterarrivalDisplay(twin.Client.Interarrivals)),
		check("session/on-times", rep.Alpha,
			analyze.InterarrivalDisplay(source.Session.OnTimes),
			analyze.InterarrivalDisplay(twin.Session.OnTimes)),
		check("session/off-times", rep.Alpha, source.Session.OffTimes, twin.Session.OffTimes),
		check("session/transfers", rep.Alpha,
			countsToFloats(source.Session.TransfersPerSession),
			countsToFloats(twin.Session.TransfersPerSession)),
		check("session/intra-gaps", rep.Alpha,
			analyze.InterarrivalDisplay(source.Session.IntraArrivals),
			analyze.InterarrivalDisplay(twin.Session.IntraArrivals)),
		check("transfer/lengths", rep.Alpha, source.Transfer.Lengths, twin.Transfer.Lengths),
		check("transfer/interarrivals", rep.Alpha, source.Transfer.Interarrivals, twin.Transfer.Interarrivals),
	)

	cmp := func(layer, quantity string, src, tw float64, note string) {
		rep.Comparison = append(rep.Comparison, report.Comparison{
			Experiment: layer, Quantity: quantity, Paper: src, Measured: tw, Note: note,
		})
	}
	cmp("basic", "clients", float64(source.Basic.Users), float64(twin.Basic.Users), "Table 1")
	cmp("basic", "sessions", float64(source.Basic.Sessions), float64(twin.Basic.Sessions), "Table 1")
	cmp("basic", "transfers", float64(source.Basic.Transfers), float64(twin.Basic.Transfers), "Table 1")
	cmp("client", "peak concurrent clients", float64(source.Client.Concurrency.Peak), float64(twin.Client.Concurrency.Peak), "Figure 3")
	cmp("client", "interest Zipf alpha", source.Client.InterestSessions.Alpha, twin.Client.InterestSessions.Alpha, "Figure 7, Table 2")
	cmp("session", "ON lognormal mu", source.Session.OnFit.Mu, twin.Session.OnFit.Mu, "Figure 11")
	cmp("session", "ON lognormal sigma", source.Session.OnFit.Sigma, twin.Session.OnFit.Sigma, "Figure 11")
	cmp("session", "transfers/session alpha", source.Session.PerSessionFit.Alpha, twin.Session.PerSessionFit.Alpha, "Figure 13, Table 2")
	cmp("session", "intra-gap lognormal mu", source.Session.IntraFit.Mu, twin.Session.IntraFit.Mu, "Figure 14, Table 2")
	cmp("session", "intra-gap lognormal sigma", source.Session.IntraFit.Sigma, twin.Session.IntraFit.Sigma, "Figure 14, Table 2")
	cmp("transfer", "length lognormal mu", source.Transfer.LengthFit.Mu, twin.Transfer.LengthFit.Mu, "Figure 19, Table 2")
	cmp("transfer", "length lognormal sigma", source.Transfer.LengthFit.Sigma, twin.Transfer.LengthFit.Sigma, "Figure 19, Table 2")
	cmp("transfer", "peak concurrent transfers", float64(source.Transfer.Concurrency.Peak), float64(twin.Transfer.Concurrency.Peak), "Figure 15")
	return rep
}

// countsToFloats widens an int sample for the KS test.
func countsToFloats(counts []int) []float64 {
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c)
	}
	return out
}
