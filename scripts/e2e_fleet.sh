#!/usr/bin/env bash
# Fleet end-to-end: three lsmserve nodes behind an lsmfleet redirector
# serve a replayed flash-crowd workload over real TCP.
#
# Phase A (hash policy): the replay must complete with zero lost
# transfers, the per-node logs K-way-merge into one canonical log that
# MATCHes the offered workload exactly, and the merged realization
# digest must be md5-identical to a single-node serve of the same
# workload.
#
# Phase B (failover): one node is SIGKILLed mid-replay; transfers must
# re-route through the front-end (visible in the loadgen metrics), and
# the merged logs must still MATCH the offered workload minus exactly
# the transfers the replay recorded as lost.
#
# Readiness and fleet-side assertions go through the /metrics ops
# surface (lsmfleet/lsmserve -metrics), not by grepping process logs:
# node registration, redirect counts, per-node serve counters, busy
# refusals, and the post-kill live-node count are all read with curl.
#
# Artifacts (server/client output, per-node logs, merged logs, metas)
# land in $OUT; on success a temp OUT is removed, on failure it is kept
# (CI sets OUT inside the workspace and uploads it).
set -euo pipefail

BIN=${BIN:-bin}
PORT=${PORT:-18600} # redirector; nodes take PORT+1..PORT+3
MPORT=$((PORT + 20)) # /metrics: fleet at MPORT, node i at MPORT+i
FLEET_METRICS="http://127.0.0.1:$MPORT/metrics"
CLEAN_OUT=0
if [ -z "${OUT:-}" ]; then
    OUT=$(mktemp -d)
    CLEAN_OUT=1
else
    mkdir -p "$OUT"
fi

STATUS=fail
PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    if [ "$STATUS" = ok ]; then
        [ "$CLEAN_OUT" = 1 ] && rm -rf "$OUT"
    else
        echo "e2e fleet: FAIL — artifacts kept in $OUT" >&2
    fi
}
trap cleanup EXIT

# wait_grep FILE PATTERN — poll up to ~10s for PATTERN to appear.
wait_grep() {
    for _ in $(seq 1 100); do
        if grep -q "$2" "$1" 2>/dev/null; then return 0; fi
        sleep 0.1
    done
    echo "timed out waiting for '$2' in $1" >&2
    return 1
}

# metric URL NAME — print NAME's value from a /metrics endpoint.
metric() { curl -sf "$1" | sed -n "s/^$2 //p"; }

# wait_metric URL NAME VALUE — poll up to ~10s for NAME to read VALUE.
wait_metric() {
    local v=
    for _ in $(seq 1 100); do
        v=$(metric "$1" "$2" 2>/dev/null || true)
        if [ "$v" = "$3" ]; then return 0; fi
        sleep 0.1
    done
    echo "timed out waiting for $2=$3 at $1 (last: ${v:-unreachable})" >&2
    return 1
}

# The same ~100-client, 1-trace-hour flash-crowd workload the single
# node e2e replays, so fleet and single-node realizations are
# comparable.
WORKLOAD=(-scale 6919 -hours 1 -no-ramp -rate 0.03 -seed 7 -flash 300:600:100)
REPLAY=(-compression 600 -conns 200)

start_fleet() { # $1 = phase dir
    local dir="$OUT/$1"
    mkdir -p "$dir"
    "$BIN"/lsmfleet -addr "127.0.0.1:$PORT" -policy hash \
        -metrics "127.0.0.1:$MPORT" > "$dir/fleet.out" 2>&1 &
    PIDS+=($!)
    FLEET_PID=$!
    # The metrics endpoint answering means the redirector is up.
    wait_metric "$FLEET_METRICS" nodes_up 0
    NODE_PIDS=()
    for i in 1 2 3; do
        "$BIN"/lsmserve -addr "127.0.0.1:$((PORT + i))" -log "$dir/node$i.log" \
            -fleet "127.0.0.1:$PORT" -beat 200ms \
            -metrics "127.0.0.1:$((MPORT + i))" \
            -max-conns 600 -write-timeout 15s > "$dir/node$i.out" 2>&1 &
        PIDS+=($!)
        NODE_PIDS+=($!)
    done
    wait_metric "$FLEET_METRICS" nodes_up 3
}

stop_fleet() { # graceful: flush node logs, then stop the redirector
    for p in "${NODE_PIDS[@]}"; do kill -INT "$p" 2>/dev/null || true; done
    for p in "${NODE_PIDS[@]}"; do wait "$p" 2>/dev/null || true; done
    kill -INT "$FLEET_PID" 2>/dev/null || true
    wait "$FLEET_PID" 2>/dev/null || true
}

echo "=== phase A: 3-node hash fleet, exact merged-log match ==="
start_fleet a
"$BIN"/lsmload -addr "127.0.0.1:$PORT" -frontend \
    "${WORKLOAD[@]}" "${REPLAY[@]}" -meta "$OUT/a/meta.json" | tee "$OUT/a/replay.out"

# Fleet-side view of the replay, read from /metrics while the
# processes are still up: routing happened, nothing was refused for
# lack of nodes, no heartbeat expired, and the hash policy actually
# spread the workload across the per-node serve counters.
curl -sf "$FLEET_METRICS" | tee "$OUT/a/fleet.metrics"
REDIRECTS=$(metric "$FLEET_METRICS" redirects)
if [ "$REDIRECTS" -eq 0 ]; then
    echo "front-end issued no redirects" >&2
    exit 1
fi
if [ "$(metric "$FLEET_METRICS" no_node_errors)" -ne 0 ]; then
    echo "front-end refused lookups for lack of nodes" >&2
    exit 1
fi
if [ "$(metric "$FLEET_METRICS" heartbeat_expiries)" -ne 0 ]; then
    echo "heartbeat expiries with all nodes healthy" >&2
    exit 1
fi
SERVING=0
for i in 1 2 3; do
    url="http://127.0.0.1:$((MPORT + i))/metrics"
    curl -sf "$url" > "$OUT/a/node$i.metrics"
    n=$(metric "$url" transfers_served)
    refused=$(metric "$url" conns_refused)
    echo "node$i served $n transfers ($refused refused)"
    if [ "$refused" -ne 0 ]; then
        echo "node$i hit its connection cap during the replay" >&2
        exit 1
    fi
    if [ "$n" -gt 0 ]; then SERVING=$((SERVING + 1)); fi
done
if [ "$SERVING" -lt 2 ]; then
    echo "hash policy routed everything to $SERVING node(s)" >&2
    exit 1
fi
echo "front-end issued $REDIRECTS redirects across $SERVING serving nodes"
stop_fleet

"$BIN"/lsmfleet -merge "$OUT/a/merged.log" \
    "$OUT/a/node1.log" "$OUT/a/node2.log" "$OUT/a/node3.log" | tee "$OUT/a/merge.out"
"$BIN"/lsmload -check "$OUT/a/meta.json" -logs "$OUT/a/merged.log"

echo "=== phase A': single-node serve of the same workload ==="
mkdir -p "$OUT/single"
"$BIN"/lsmserve -addr "127.0.0.1:$((PORT + 4))" -log "$OUT/single/single.log" \
    -max-conns 600 -write-timeout 15s > "$OUT/single/server.out" 2>&1 &
PIDS+=($!)
SINGLE_PID=$!
wait_grep "$OUT/single/server.out" "live streaming server on"
"$BIN"/lsmload -addr "127.0.0.1:$((PORT + 4))" \
    "${WORKLOAD[@]}" "${REPLAY[@]}" -meta "$OUT/single/meta.json" > "$OUT/single/replay.out" 2>&1
kill -INT "$SINGLE_PID" && wait "$SINGLE_PID" || true
"$BIN"/lsmfleet -merge "$OUT/single/merged.log" "$OUT/single/single.log" | tee "$OUT/single/merge.out"

FLEET_MD5=$(grep -o 'realization md5=.*' "$OUT/a/merge.out")
SINGLE_MD5=$(grep -o 'realization md5=.*' "$OUT/single/merge.out")
if [ "$FLEET_MD5" != "$SINGLE_MD5" ]; then
    echo "fleet realization ($FLEET_MD5) != single-node realization ($SINGLE_MD5)" >&2
    exit 1
fi
echo "fleet and single-node realizations agree: $FLEET_MD5"

echo "=== phase B: kill-one-node failover mid-replay ==="
start_fleet b
(
    sleep 2.5
    kill -KILL "${NODE_PIDS[1]}" 2>/dev/null || true
    echo "killed node2 (pid ${NODE_PIDS[1]})"
) &
KILLER=$!
"$BIN"/lsmload -addr "127.0.0.1:$PORT" -frontend \
    "${WORKLOAD[@]}" "${REPLAY[@]}" -max-failures 200 \
    -meta "$OUT/b/meta.json" | tee "$OUT/b/replay.out"
wait "$KILLER" || true

# The kill must be visible on the ops surface: the dead node's
# registration connection dropped, so the fleet reports 2 live nodes
# (immediate deregistration — the heartbeat TTL is only the
# wedged-process bound, so expiries stay 0 here).
curl -sf "$FLEET_METRICS" | tee "$OUT/b/fleet.metrics"
NODES_UP=$(metric "$FLEET_METRICS" nodes_up)
if [ "$NODES_UP" -ne 2 ]; then
    echo "fleet reports $NODES_UP live node(s) after the kill, want 2" >&2
    exit 1
fi
stop_fleet

# The reroute must be visible in the loadgen metrics.
REROUTED=$(sed -n 's/.* \([0-9][0-9]*\) rerouted after node failure.*/\1/p' "$OUT/b/replay.out")
if [ -z "$REROUTED" ] || [ "$REROUTED" -eq 0 ]; then
    echo "no failover recorded in loadgen metrics after killing a node" >&2
    exit 1
fi
echo "loadgen rerouted $REROUTED transfers after the kill"

# Merged logs (including the killed node's flushed prefix) must match
# the offered workload minus exactly the recorded lost transfers.
"$BIN"/lsmfleet -merge "$OUT/b/merged.log" \
    "$OUT/b/node1.log" "$OUT/b/node2.log" "$OUT/b/node3.log" | tee "$OUT/b/merge.out"
"$BIN"/lsmload -check "$OUT/b/meta.json" -logs "$OUT/b/merged.log"

STATUS=ok
echo "e2e fleet: PASS"
