#!/usr/bin/env bash
# End-to-end smoke of the closed loop: lsmserve serves over real TCP,
# lsmload replays a generated ~100-client workload with a flash-crowd
# scenario at compressed virtual time, and the served WMS log is parsed
# back and compared against the offered workload — exact session and
# transfer counts or the script fails. The served log is then detoured
# through the framed binary format: text → binary → text must be
# byte-identical and -check must accept the binary file directly.
set -euo pipefail

BIN=${BIN:-bin}
PORT=${PORT:-18555}
DIR=$(mktemp -d)
trap 'kill "$SRV" 2>/dev/null || true; rm -rf "$DIR"' EXIT

"$BIN"/lsmserve -addr "127.0.0.1:$PORT" -log "$DIR/transfers.log" \
    -max-conns 600 -write-timeout 15s > "$DIR/server.out" 2>&1 &
SRV=$!

# Wait for the listener.
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    sleep 0.1
done

# ~100 clients (paper population / 6919), 1 trace hour in ~6 wall
# seconds, plus 100 flash-crowd sessions in a 10-minute window.
"$BIN"/lsmload -addr "127.0.0.1:$PORT" \
    -scale 6919 -hours 1 -no-ramp -rate 0.03 -seed 7 \
    -flash 300:600:100 \
    -compression 600 -conns 200 -meta "$DIR/meta.json"

# Flush the transfer log via graceful shutdown before validating.
kill -INT "$SRV"
wait "$SRV" || true

"$BIN"/lsmload -check "$DIR/meta.json" -logs "$DIR/transfers.log"

# Binary fast-path detour over the real served log: the conversion must
# round-trip byte for byte, and -check must parse the binary file
# directly (format auto-detected by magic bytes, no flag).
"$BIN"/lsmlog convert -to binary "$DIR/transfers.log" "$DIR/transfers.bin"
"$BIN"/lsmlog convert -to text "$DIR/transfers.bin" "$DIR/roundtrip.log"
cmp "$DIR/transfers.log" "$DIR/roundtrip.log"
"$BIN"/lsmload -check "$DIR/meta.json" -logs "$DIR/transfers.bin"
echo "binary round trip: PASS"
echo "e2e smoke: PASS"
