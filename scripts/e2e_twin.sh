#!/usr/bin/env bash
# End-to-end smoke of the digital-twin calibration loop: lsmgen writes
# a small synthetic workload's daily logs, lsmcal characterizes them,
# fits the Table 2 parameter set, regenerates a twin and validates it —
# under -strict, any rejecting KS test fails the script. The fitted
# spec then feeds generation directly: lsmgen -model must accept it and
# re-save it byte-identically (the load → save fixed point), and the
# regenerated logs must themselves characterize and fit cleanly.
set -euo pipefail

BIN=${BIN:-bin}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

echo "=== generate source workload ==="
"$BIN"/lsmgen -out "$DIR/logs" -scale 400 -days 3 -seed 7

echo "=== fit + twin-validate (strict) ==="
"$BIN"/lsmcal -logs "$DIR/logs" -days 3 -seed 7 -o "$DIR/model.json" -twin -strict

echo "=== fitted spec feeds generation; load -> save is byte-identical ==="
"$BIN"/lsmgen -out "$DIR/logs2" -model "$DIR/model.json" -seed 9 \
    -save-model "$DIR/model2.json"
cmp "$DIR/model.json" "$DIR/model2.json"
echo "model spec round trip: PASS"

echo "=== regenerated workload re-characterizes cleanly ==="
"$BIN"/lsmcal -logs "$DIR/logs2" -days 3 -seed 9 -o "$DIR/model3.json" > "$DIR/refit.out"
grep -q "model spec written" "$DIR/refit.out"

echo "e2e twin loop: PASS"
