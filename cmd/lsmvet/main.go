// Command lsmvet checks the repo's determinism, zero-allocation, and
// entry-lifetime contracts at the source level (DESIGN.md "Enforced
// invariants"): the byte-identical-logs and md5-equal-realization
// guarantees rest on invariants (no wall-clock or global-rand reads in
// deterministic packages, no allocating calls in //lsm:hotpath
// functions, never retaining a pooled *wmslog.Entry, unique splitmix
// seed lanes) that fixture-md5 tests only catch after the fact; lsmvet
// fails the diff that breaks them.
//
// Usage:
//
//	lsmvet [-list] [packages]
//
// Packages are directory patterns: `./...` (the default) walks the
// whole module; anything else is a directory holding one package.
// Exits 1 when any undirected diagnostic is found. Audited exceptions
// are granted in source with //lsm: directives (see -list).
//
// The suite is built on the standard library's go/types driven from
// source, not golang.org/x/tools (the build environment pins no
// external modules), so lsmvet runs standalone rather than as a `go
// vet -vettool` plugin.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and directive verbs, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lsmvet [-list] [./... | package dirs]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("\ndirectives: //lsm:hotpath (annotation), //lsm:wallclock, //lsm:nondet, //lsm:alloc, //lsm:retain, //lsm:lanedup (audited exceptions; add `-- reason`)\n")
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	l, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		switch pat {
		case "./...", "...", "all":
			all, err := l.LoadAll()
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, all...)
		default:
			p, err := l.LoadDir(pat)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, p)
		}
	}

	diags := lint.Run(l, pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lsmvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmvet:", err)
	os.Exit(2)
}
