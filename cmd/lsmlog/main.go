// Command lsmlog is the wmslog archive toolbox.
//
// convert re-encodes a log between the canonical text format and the
// framed binary fast path, losslessly in both directions:
//
//	lsmlog convert -to binary harvested.log harvested.bin
//	lsmlog convert -to text harvested.bin roundtrip.log
//
// The input format is auto-detected by magic bytes (never by flag or
// extension), gzip-compressed inputs decode transparently, and an
// output path ending in ".gz" is gzip-compressed. Converting text →
// binary → text reproduces the canonical file byte for byte, so a
// binary archive detour preserves every md5 and realization-digest
// contract. Conversion streams entry by entry: month-scale archives
// convert in O(1) memory.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/wmslog"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "convert":
		err = runConvert(os.Args[2:], os.Stdout)
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "lsmlog: unknown subcommand %q\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmlog:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: lsmlog convert -to text|binary <in> <out>")
}

// runConvert streams <in> (format auto-detected, gz transparent) into
// <out> in the requested format.
func runConvert(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	to := fs.String("to", "", "target format: text or binary (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to != "text" && *to != "binary" {
		return fmt.Errorf("convert: -to %q: want text or binary", *to)
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("convert: want <in> <out>, got %d arguments", fs.NArg())
	}
	inPath, outPath := fs.Arg(0), fs.Arg(1)

	r, closer, err := wmslog.Open(inPath)
	if err != nil {
		return err
	}
	defer closer.Close()

	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	var sink io.Writer = out
	var zw *gzip.Writer
	if strings.HasSuffix(outPath, ".gz") {
		zw = gzip.NewWriter(out)
		sink = zw
	}
	var ew wmslog.EntryWriter
	if *to == "binary" {
		ew = wmslog.NewBinaryWriter(sink)
	} else {
		ew = wmslog.NewWriter(sink)
	}

	fail := func(err error) error {
		out.Close()
		os.Remove(outPath)
		return err
	}
	p := wmslog.NewParser(r)
	for {
		e, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(fmt.Errorf("convert %s: %w", inPath, err))
		}
		if err := ew.Write(e); err != nil {
			return fail(err)
		}
	}
	if err := ew.Flush(); err != nil {
		return fail(err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return fail(err)
		}
	}
	if err := out.Close(); err != nil {
		os.Remove(outPath)
		return err
	}
	st := p.Stats()
	fmt.Fprintf(w, "converted %d entries (%d binary in) from %s to %s (%s)\n",
		st.Entries, st.Binary, inPath, outPath, *to)
	return nil
}
