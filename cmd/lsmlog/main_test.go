package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wmslog"
)

func writeTextLog(t *testing.T, path string, n int) []byte {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := wmslog.NewWriter(f)
	epoch := time.Date(2002, 1, 7, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		e := &wmslog.Entry{
			Timestamp:    epoch.Add(time.Duration(i) * time.Second),
			ClientIP:     "10.0.0.1",
			PlayerID:     "player-" + string(rune('a'+i%3)),
			ClientOS:     "Windows 98",
			URIStem:      "/live/feed1",
			Duration:     int64(i),
			Bytes:        int64(1000 + i),
			AvgBandwidth: 110000,
			ServerCPU:    float64(i%10000) / 100,
			Referer:      wmslog.SessionRef(int64(i), 0),
			Status:       200,
			ASNumber:     1916,
			Country:      "BR",
		}
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestConvertRoundTrip: text → binary → text is byte-identical, and the
// binary intermediate is detected and reported.
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.log")
	bin := filepath.Join(dir, "src.bin")
	back := filepath.Join(dir, "back.log")
	orig := writeTextLog(t, src, 200)

	var out bytes.Buffer
	if err := runConvert([]string{"-to", "binary", src, bin}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "converted 200 entries (0 binary in)") {
		t.Fatalf("to-binary output: %q", out.String())
	}
	binData, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(binData) >= len(orig) {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", len(binData), len(orig))
	}

	out.Reset()
	if err := runConvert([]string{"-to", "text", bin, back}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "converted 200 entries (200 binary in)") {
		t.Fatalf("to-text output: %q", out.String())
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("text -> binary -> text round trip is not byte-identical")
	}
}

// TestConvertGzip: gz input decodes transparently and a .gz output is
// compressed.
func TestConvertGzip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.log")
	orig := writeTextLog(t, src, 50)
	gzPath, err := wmslog.CompressFile(src)
	if err != nil {
		t.Fatal(err)
	}

	binGz := filepath.Join(dir, "out.bin.gz")
	var out bytes.Buffer
	if err := runConvert([]string{"-to", "binary", gzPath, binGz}, &out); err != nil {
		t.Fatal(err)
	}
	backEntries, st, err := wmslog.ReadFiles([]string{binGz}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(backEntries) != 50 || st.Binary != 50 {
		t.Fatalf("gz binary output reread: %d entries, stats %+v", len(backEntries), st)
	}

	back := filepath.Join(dir, "back.log")
	if err := runConvert([]string{"-to", "text", binGz, back}, &out); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("gz round trip is not byte-identical")
	}
}

// TestConvertErrors: bad -to, wrong arity, and corrupt input all fail,
// and a failed conversion leaves no partial output file behind.
func TestConvertErrors(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := runConvert([]string{"-to", "xml", "a", "b"}, &out); err == nil {
		t.Fatal("bad -to accepted")
	}
	if err := runConvert([]string{"-to", "text", "only-in"}, &out); err == nil {
		t.Fatal("missing output arg accepted")
	}

	src := filepath.Join(dir, "src.log")
	bin := filepath.Join(dir, "src.bin")
	writeTextLog(t, src, 20)
	if err := runConvert([]string{"-to", "binary", src, bin}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.bin")
	if err := os.WriteFile(trunc, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "dst.log")
	if err := runConvert([]string{"-to", "text", trunc, dst}, &out); err == nil {
		t.Fatal("truncated binary converted without error")
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("partial output left behind: %v", err)
	}
}
