package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/gismo"
	"repro/internal/simulate"
	"repro/internal/wmslog"
)

// writeTestLogs fabricates a small log directory.
func writeTestLogs(t *testing.T) (dir string, days int) {
	t.Helper()
	m, err := gismo.Scaled(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	w, err := gismo.Generate(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(w, simulate.DefaultConfig(), rng.Uint64())
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	if _, err := res.WriteLogs(dir); err != nil {
		t.Fatal(err)
	}
	return dir, 2
}

func TestRunCharacterizesLogs(t *testing.T) {
	dir, days := writeTestLogs(t)
	figDir := filepath.Join(t.TempDir(), "figs")
	if err := run(dir, days, 1500, figDir, 1, ""); err != nil {
		t.Fatal(err)
	}
	dats, err := filepath.Glob(filepath.Join(figDir, "*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dats) < 20 {
		t.Errorf("only %d figure files written", len(dats))
	}
}

func TestRunPlotModes(t *testing.T) {
	dir, days := writeTestLogs(t)
	if err := run(dir, days, 1500, "", 1, "list"); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, days, 1500, "", 1, "fig19"); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, days, 1500, "", 1, "fig99"); err == nil {
		t.Error("unknown figure: want error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(t.TempDir(), 2, 1500, "", 1, ""); err == nil {
		t.Error("empty log dir: want error")
	}
}

func TestRunAcceptsCompressedLogs(t *testing.T) {
	dir, days := writeTestLogs(t)
	paths, err := filepath.Glob(filepath.Join(dir, "wms-*.log"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no logs: %v", err)
	}
	// Compress every daily file; the characterizer must not notice.
	for _, p := range paths {
		if _, err := wmslog.CompressFile(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := run(dir, days, 1500, "", 1, ""); err != nil {
		t.Fatal(err)
	}
}
