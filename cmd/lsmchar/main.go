// Command lsmchar runs the hierarchical characterization of Veloso et al.
// (IMC 2002) over a directory of Windows-Media-Server-style log files:
// sanitization (Section 2.4), client layer (Section 3), session layer
// (Section 4), and transfer layer (Section 5).
//
// Usage:
//
//	lsmchar -logs logs/ -days 7 [-timeout 1500] [-figs figures/]
//
// It prints Table 1 and the fitted distributions, and with -figs writes
// one gnuplot-style .dat file per figure panel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/wmslog"
)

func main() {
	var (
		logs    = flag.String("logs", "", "directory of wms-*.log files (required)")
		days    = flag.Int("days", 7, "trace horizon in days")
		timeout = flag.Int64("timeout", 1500, "session timeout T_o in seconds")
		figs    = flag.String("figs", "", "optional directory for figure .dat files")
		seed    = flag.Int64("seed", 1, "seed for the Figure 6 Poisson replica")
		plot    = flag.String("plot", "", "render one figure as ASCII (e.g. fig19); 'list' shows ids")
	)
	flag.Parse()
	if *logs == "" {
		fmt.Fprintln(os.Stderr, "lsmchar: -logs is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*logs, *days, *timeout, *figs, *seed, *plot); err != nil {
		fmt.Fprintln(os.Stderr, "lsmchar:", err)
		os.Exit(1)
	}
}

func run(logDir string, days int, timeout int64, figDir string, seed int64, plot string) error {
	paths, err := wmslog.FindLogs(logDir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no wms-*.log or wms-*.log.gz files under %s", logDir)
	}
	entries, st, err := wmslog.ReadFiles(paths, true)
	if err != nil {
		return err
	}
	fmt.Printf("parsed %d entries from %d files (%d malformed lines skipped)\n",
		st.Entries, len(paths), st.Malformed)

	horizon := int64(days) * 86400
	tr, err := trace.FromEntries(entries, wmslog.TraceEpoch, horizon)
	if err != nil {
		return err
	}
	clean, sanReport := tr.Sanitize()
	fmt.Println(sanReport)
	audit := clean.AuditServerLoad(10)
	fmt.Printf("server load audit: %.4f%% of active time and %.4f%% of transfers below %.0f%% CPU\n",
		audit.TimeBelowFrac*100, audit.TransferBelowFrac*100, audit.Threshold)

	char, err := core.Characterize(clean, timeout, nil, seed)
	if err != nil {
		return err
	}
	printCharacterization(char)

	if figDir != "" {
		var count int
		for _, fig := range char.Figures() {
			for _, s := range fig.Series {
				if len(s.Points) == 0 {
					continue
				}
				if _, err := s.SaveDat(figDir); err != nil {
					return err
				}
				count++
			}
		}
		fmt.Printf("wrote %d figure series under %s\n", count, figDir)
	}
	if plot != "" {
		return renderPlot(char, plot)
	}
	return nil
}

// renderPlot draws one figure's panels as ASCII scatter plots. The
// marginal figures render on log-log axes like the paper's panels.
func renderPlot(char *core.Characterization, id string) error {
	figs := char.Figures()
	if id == "list" {
		for _, f := range figs {
			fmt.Printf("  %s  %s\n", f.ID, f.Caption)
		}
		return nil
	}
	for _, f := range figs {
		if f.ID != id {
			continue
		}
		fmt.Printf("\n%s: %s\n\n", f.ID, f.Caption)
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				continue
			}
			cfg := report.DefaultPlotConfig()
			// CCDF and rank-share panels live on log-log axes.
			if strings.Contains(s.Name, "ccdf") || strings.Contains(s.Name, "fig07") ||
				strings.Contains(s.Name, "fig02_as") || strings.Contains(s.Name, "hist") {
				cfg.LogX, cfg.LogY = true, true
			}
			if err := s.Plot(os.Stdout, cfg); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return fmt.Errorf("unknown figure %q (use -plot list)", id)
}

func printCharacterization(c *core.Characterization) {
	b := c.Basic
	fmt.Printf("\nTable 1 (measured): %d days, %d objects, %d ASes, %d IPs, %d users, %d sessions, %d transfers, %.2f GB\n",
		b.Days, b.Objects, b.ASes, b.IPs, b.Users, b.Sessions, b.Transfers, float64(b.TotalBytes)/1e9)

	fmt.Println("\nClient layer (Section 3):")
	fmt.Printf("  peak concurrent clients: %d\n", c.Client.Concurrency.Peak)
	fmt.Printf("  interest (transfers/client): %s\n", c.Client.InterestTransfers)
	fmt.Printf("  interest (sessions/client):  %s\n", c.Client.InterestSessions)
	if len(c.Client.Concurrency.ACF) > 1440 {
		fmt.Printf("  ACF at 1-day lag: %.3f\n", c.Client.Concurrency.ACF[1440])
	}
	fmt.Printf("  piecewise-Poisson replica KS: %.4f (window %d s)\n", c.Poisson.KS, c.Poisson.Window)

	fmt.Println("\nSession layer (Section 4):")
	fmt.Printf("  ON times:  %s (KS %.4f)\n", c.Session.OnFit, c.Session.OnKS)
	if len(c.Session.OffTimes) > 0 {
		fmt.Printf("  OFF times: %s (KS %.4f)\n", c.Session.OffFit, c.Session.OffKS)
	}
	fmt.Printf("  transfers/session: %s\n", c.Session.PerSessionFit)
	fmt.Printf("  intra-session gaps: %s (KS %.4f)\n", c.Session.IntraFit, c.Session.IntraKS)
	fmt.Printf("  ON-vs-hour correlation R2: %.4f (weak per Figure 10)\n", c.Session.OnHourR2)

	fmt.Println("\nTransfer layer (Section 5):")
	fmt.Printf("  peak concurrent transfers: %d\n", c.Transfer.Concurrency.Peak)
	if c.Transfer.TailBody.Points > 0 {
		fmt.Printf("  interarrival tail (<=100 s): %s\n", c.Transfer.TailBody)
	}
	if c.Transfer.TailFar.Points > 0 {
		fmt.Printf("  interarrival tail (>100 s):  %s\n", c.Transfer.TailFar)
	}
	fmt.Printf("  lengths: %s (KS %.4f)\n", c.Transfer.LengthFit, c.Transfer.LengthKS)
	fmt.Printf("  bandwidth modes: %d detected, congestion-bound fraction %.3f\n",
		len(c.Transfer.BandwidthModes), c.Transfer.CongestionFrac)
	for _, m := range c.Transfer.BandwidthModes {
		fmt.Printf("    mode at %.0f bps (share %.3f)\n", m.Bps, m.Share)
	}
}
